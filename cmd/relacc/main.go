// Command relacc runs relative-accuracy deduction on CSV data:
//
//	relacc deduce -data instance.csv [-master master.csv] -rules rules.txt
//	relacc topk   -data instance.csv [-master master.csv] -rules rules.txt -k 10 [-algo topkct|rankjoin|topkcth] [-par N]
//	relacc check  -data instance.csv [-master master.csv] -rules rules.txt -candidate cand.csv
//	relacc rules  -rules rules.txt -data instance.csv [-master master.csv]
//
// The instance CSV holds the tuples of ONE entity (header = attribute
// names); the optional master CSV holds master data; the rule file uses
// the textual rule language (see internal/ruledsl):
//
//	phi1: t1[league] = t2[league] , t1[rnds] < t2[rnds] -> t1 <= t2 @ rnds
//	phi6: master te[FN] = tm[FN] , tm[season] = "1994-95" -> te[league] = tm[league]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/model"
	"repro/internal/rule"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dataPath := fs.String("data", "", "entity instance CSV (required)")
	masterPath := fs.String("master", "", "master relation CSV")
	rulesPath := fs.String("rules", "", "accuracy rule file (required)")
	k := fs.Int("k", 10, "number of candidate targets (topk)")
	algo := fs.String("algo", "topkct", "top-k algorithm: topkct, rankjoin or topkcth")
	par := fs.Int("par", -1, "concurrent candidate checks (1 = sequential, -1 = GOMAXPROCS)")
	candPath := fs.String("candidate", "", "candidate tuple CSV (check)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	switch cmd {
	case "deduce", "topk", "check", "rules":
	default:
		usage()
		os.Exit(2)
	}
	if *dataPath == "" || *rulesPath == "" {
		fmt.Fprintln(os.Stderr, "relacc: -data and -rules are required")
		os.Exit(2)
	}

	sess, ie, rs, err := load(*dataPath, *masterPath, *rulesPath)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "rules":
		fmt.Printf("%d rules validated\n%s", rs.Len(), core.FormatRules(rs))
		return
	case "deduce":
		res := sess.Deduce()
		if !res.CR {
			fmt.Printf("specification is NOT Church-Rosser: %s\n", res.Conflict)
			os.Exit(1)
		}
		fmt.Println("specification is Church-Rosser")
		printTarget(ie.Schema(), res.Target)
	case "topk":
		var a core.Algorithm
		switch *algo {
		case "topkct":
			a = core.AlgoTopKCT
		case "rankjoin":
			a = core.AlgoRankJoinCT
		case "topkcth":
			a = core.AlgoTopKCTh
		default:
			fatal(fmt.Errorf("unknown algorithm %q", *algo))
		}
		res := sess.Deduce()
		if !res.CR {
			fatal(fmt.Errorf("specification is not Church-Rosser: %s", res.Conflict))
		}
		if res.Target.Complete() {
			fmt.Println("deduced target is already complete:")
			printTarget(ie.Schema(), res.Target)
			return
		}
		fmt.Println("deduced (incomplete) target:")
		printTarget(ie.Schema(), res.Target)
		cands, stats, err := sess.TopK(core.Preference{K: *k, Parallel: *par}, a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("top-%d candidate targets (%d checks):\n", *k, stats.Checks)
		for i, c := range cands {
			fmt.Printf("%2d. score=%.1f %s\n", i+1, c.Score, c.Tuple)
		}
	case "check":
		if *candPath == "" {
			fatal(fmt.Errorf("-candidate is required for check"))
		}
		_, tuples, err := csvio.ReadRelationFile(*candPath)
		if err != nil {
			fatal(err)
		}
		if len(tuples) != 1 {
			fatal(fmt.Errorf("candidate file must hold exactly one tuple, got %d", len(tuples)))
		}
		// Rebuild the candidate over the instance schema by attribute name.
		cand := model.NewTuple(ie.Schema())
		for _, a := range tuples[0].Schema().Attrs() {
			if v, ok := tuples[0].Get(a); ok {
				cand.Set(a, v)
			}
		}
		if sess.Check(cand) {
			fmt.Println("candidate PASSES the chase check")
		} else {
			fmt.Println("candidate FAILS the chase check")
			os.Exit(1)
		}
	}
}

func load(dataPath, masterPath, rulesPath string) (*core.Session, *model.EntityInstance, *rule.Set, error) {
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	ie, err := csvio.ReadEntityInstance(f, "instance")
	if err != nil {
		return nil, nil, nil, err
	}
	var im *model.MasterRelation
	if masterPath != "" {
		mf, err := os.Open(masterPath)
		if err != nil {
			return nil, nil, nil, err
		}
		defer mf.Close()
		im, err = csvio.ReadMaster(mf, "master")
		if err != nil {
			return nil, nil, nil, err
		}
	}
	text, err := os.ReadFile(rulesPath)
	if err != nil {
		return nil, nil, nil, err
	}
	var ms *model.Schema
	if im != nil {
		ms = im.Schema()
	}
	rules, err := core.ParseRules(string(text), ie.Schema(), ms)
	if err != nil {
		return nil, nil, nil, err
	}
	sess, err := core.NewSession(ie, im, rules)
	if err != nil {
		return nil, nil, nil, err
	}
	return sess, ie, rules, nil
}

func printTarget(schema *model.Schema, t *model.Tuple) {
	for a := 0; a < schema.Arity(); a++ {
		v := t.At(a)
		mark := " "
		if v.IsNull() {
			mark = "?"
		}
		fmt.Printf("  %s %-14s = %s\n", mark, schema.Attr(a), v)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: relacc <deduce|topk|check|rules> -data instance.csv -rules rules.txt [flags]`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "relacc:", err)
	os.Exit(1)
}
