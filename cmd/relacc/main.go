// Command relacc runs relative-accuracy deduction on CSV data:
//
//	relacc deduce -data instance.csv [-master master.csv] -rules rules.txt
//	relacc topk   -data instance.csv [-master master.csv] -rules rules.txt -k 10 [-algo topkct|rankjoin|topkcth] [-par N]
//	relacc check  -data instance.csv [-master master.csv] -rules rules.txt -candidate cand.csv
//	relacc rules  -rules rules.txt -data instance.csv [-master master.csv]
//	relacc batch  -data relation.csv [-master master.csv] -rules rules.txt [-by id | -key a,b] [-workers N] [-topk K] [-algo ...] [-o fused.csv]
//	relacc append -data base.csv -delta delta.csv [-master master.csv] -rules rules.txt -by id [-workers N] [-topk K] [-algo ...] [-o fused.csv]
//
// deduce/topk/check operate on the tuples of ONE entity; batch takes a
// whole relation of many entities, groups it into entity instances —
// by exact match on an identifier column (-by) or by similarity-based
// entity resolution on key attributes (-key) — and runs the deduce →
// top-k pipeline over all of them on a worker pool, printing one
// verdict per entity plus a summary. -o writes the settled targets
// (deduced complete, or filled from the best candidate) as CSV.
//
// batch and append take -stream on|off|auto and -window N: the
// streaming path decodes rows one at a time, seals entities as the
// bounded window retires them, and feeds the worker pool with
// backpressure, so memory is proportional to the window, never to the
// relation — with output identical to the materialized path. auto (the
// default) streams when the -by input arrives in contiguous per-key
// runs (sorted input does).
//
// append is the incremental face of batch: the base relation is
// deduced once, then the delta relation's tuples are routed by the -by
// identifier into the live per-entity sessions and only the touched
// entities are re-deduced — through delta instantiation, not a
// rebuild — printing one re-deduced verdict per touched entity. The
// delta CSV must carry the same columns as the base; -o writes the
// settled targets of the final state of every entity.
//
// The optional master CSV holds master data; the rule file uses the
// textual rule language (see internal/ruledsl):
//
//	phi1: t1[league] = t2[league] , t1[rnds] < t2[rnds] -> t1 <= t2 @ rnds
//	phi6: master te[FN] = tm[FN] , tm[season] = "1994-95" -> te[league] = tm[league]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/er"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/rule"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dataPath := fs.String("data", "", "entity instance CSV (required)")
	masterPath := fs.String("master", "", "master relation CSV")
	rulesPath := fs.String("rules", "", "accuracy rule file (required)")
	k := fs.Int("k", 10, "number of candidate targets (topk)")
	algo := fs.String("algo", "topkct", "top-k algorithm: topkct, rankjoin or topkcth")
	par := fs.Int("par", -1, "concurrent candidate checks (1 = sequential, -1 = GOMAXPROCS)")
	candPath := fs.String("candidate", "", "candidate tuple CSV (check)")
	deltaPath := fs.String("delta", "", "append: delta relation CSV (same columns as -data)")
	by := fs.String("by", "", "batch/append: group entities by exact match on this column")
	key := fs.String("key", "", "batch: comma-separated key attributes for similarity-based grouping")
	threshold := fs.Float64("threshold", 0, "batch: similarity threshold for -key grouping (0 = 0.85)")
	workers := fs.Int("workers", 0, "batch: concurrent entities (0 = GOMAXPROCS)")
	topK := fs.Int("topk", 0, "batch: candidates per incomplete entity (0 = deduce only)")
	outPath := fs.String("o", "", "batch: write settled targets to this CSV")
	verbose := fs.Bool("v", false, "batch: print every entity (default: only unsettled ones)")
	stream := fs.String("stream", "auto", "batch/append: constant-memory streaming ingest: on, off, or auto (stream when -by input is run-length sorted)")
	window := fs.Int("window", 1024, "batch/append: max open entities in the streaming group window (0 = unbounded)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	switch cmd {
	case "deduce", "topk", "check", "rules":
		// All flags parse on one shared FlagSet; reject the other
		// mode's flags loudly instead of silently ignoring them.
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "by", "key", "threshold", "workers", "topk", "o", "v", "delta", "stream", "window":
				fatal(fmt.Errorf("flag -%s applies to batch/append; %s uses -k and -par", f.Name, cmd))
			}
		})
	case "batch":
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "k", "par", "candidate", "delta":
				fatal(fmt.Errorf("flag -%s does not apply to batch; batch uses -topk and -workers", f.Name))
			}
		})
		runBatch(batchArgs{
			data: *dataPath, master: *masterPath, rules: *rulesPath,
			by: *by, key: *key, threshold: *threshold,
			workers: *workers, topK: *topK, algo: *algo,
			out: *outPath, verbose: *verbose,
			stream: *stream, window: *window,
		})
		return
	case "append":
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "k", "par", "candidate", "key", "threshold":
				fatal(fmt.Errorf("flag -%s does not apply to append; append routes deltas by -by", f.Name))
			}
		})
		runAppend(appendArgs{
			data: *dataPath, delta: *deltaPath, master: *masterPath, rules: *rulesPath,
			by: *by, workers: *workers, topK: *topK, algo: *algo,
			out: *outPath, verbose: *verbose,
			stream: *stream, window: *window,
		})
		return
	default:
		usage()
		os.Exit(2)
	}
	if *dataPath == "" || *rulesPath == "" {
		fmt.Fprintln(os.Stderr, "relacc: -data and -rules are required")
		os.Exit(2)
	}

	sess, ie, rs, err := load(*dataPath, *masterPath, *rulesPath)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "rules":
		fmt.Printf("%d rules validated\n%s", rs.Len(), core.FormatRules(rs))
		return
	case "deduce":
		res := sess.Deduce()
		if !res.CR {
			fmt.Printf("specification is NOT Church-Rosser: %s\n", res.Conflict)
			os.Exit(1)
		}
		fmt.Println("specification is Church-Rosser")
		printTarget(ie.Schema(), res.Target)
	case "topk":
		a, err := pipeline.ParseAlgorithm(*algo)
		if err != nil {
			fatal(err)
		}
		res := sess.Deduce()
		if !res.CR {
			fatal(fmt.Errorf("specification is not Church-Rosser: %s", res.Conflict))
		}
		if res.Target.Complete() {
			fmt.Println("deduced target is already complete:")
			printTarget(ie.Schema(), res.Target)
			return
		}
		fmt.Println("deduced (incomplete) target:")
		printTarget(ie.Schema(), res.Target)
		cands, stats, err := sess.TopK(core.Preference{K: *k, Parallel: *par}, a)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("top-%d candidate targets (%d checks):\n", *k, stats.Checks)
		for i, c := range cands {
			fmt.Printf("%2d. score=%.1f %s\n", i+1, c.Score, c.Tuple)
		}
	case "check":
		if *candPath == "" {
			fatal(fmt.Errorf("-candidate is required for check"))
		}
		_, tuples, err := csvio.ReadRelationFile(*candPath)
		if err != nil {
			fatal(err)
		}
		if len(tuples) != 1 {
			fatal(fmt.Errorf("candidate file must hold exactly one tuple, got %d", len(tuples)))
		}
		// Rebuild the candidate over the instance schema by attribute name.
		cand := model.NewTuple(ie.Schema())
		for _, a := range tuples[0].Schema().Attrs() {
			if v, ok := tuples[0].Get(a); ok {
				cand.Set(a, v)
			}
		}
		if sess.Check(cand) {
			fmt.Println("candidate PASSES the chase check")
		} else {
			fmt.Println("candidate FAILS the chase check")
			os.Exit(1)
		}
	}
}

func load(dataPath, masterPath, rulesPath string) (*core.Session, *model.EntityInstance, *rule.Set, error) {
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	ie, err := csvio.ReadEntityInstance(f, "instance")
	if err != nil {
		return nil, nil, nil, err
	}
	im, rules, err := loadMasterAndRules(masterPath, rulesPath, ie.Schema())
	if err != nil {
		return nil, nil, nil, err
	}
	sess, err := core.NewSession(ie, im, rules)
	if err != nil {
		return nil, nil, nil, err
	}
	return sess, ie, rules, nil
}

// loadMasterAndRules loads the optional master CSV and parses the rule
// file against the given entity schema; shared by the single-entity
// modes and batch.
func loadMasterAndRules(masterPath, rulesPath string, entity *model.Schema) (*model.MasterRelation, *rule.Set, error) {
	var im *model.MasterRelation
	if masterPath != "" {
		mf, err := os.Open(masterPath)
		if err != nil {
			return nil, nil, err
		}
		defer mf.Close()
		im, err = csvio.ReadMaster(mf, "master")
		if err != nil {
			return nil, nil, err
		}
	}
	text, err := os.ReadFile(rulesPath)
	if err != nil {
		return nil, nil, err
	}
	var ms *model.Schema
	if im != nil {
		ms = im.Schema()
	}
	rules, err := core.ParseRules(string(text), entity, ms)
	if err != nil {
		return nil, nil, err
	}
	return im, rules, nil
}

type batchArgs struct {
	data, master, rules string
	by, key             string
	threshold           float64
	workers, topK       int
	algo                string
	out                 string
	verbose             bool
	stream              string
	window              int
}

// useStreaming decides the ingest path for batch and append: -stream on
// forces the constant-memory pipeline, off forbids it, and auto probes
// the input — streaming becomes the default when the relation arrives
// grouped by -by in contiguous runs (sorted input is, and so is any
// export that emitted entities one at a time), the one shape that
// streams at any window size. The probe is one cheap sequential pass;
// a probe failure just falls back to the materialized path, which will
// report the real error.
func useStreaming(mode, data, by string) bool {
	switch mode {
	case "on":
		return true
	case "off":
		return false
	case "auto":
	default:
		fatal(fmt.Errorf("-stream must be on, off or auto (got %q)", mode))
	}
	if by == "" || data == "" {
		return false
	}
	f, err := os.Open(data)
	if err != nil {
		return false
	}
	defer f.Close()
	ok, err := ingest.RunLength(f, data, by)
	return err == nil && ok
}

// readHeaderSchema opens the relation just long enough to read its
// header row: the streaming paths need the schema to parse rules
// against before the single full pass begins.
func readHeaderSchema(path string) (*model.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	it, err := csvio.NewTupleIterator(f, path)
	if err != nil {
		return nil, err
	}
	return it.Schema(), nil
}

// runBatch is the multi-entity pipeline front end: relation CSV in,
// per-entity verdicts and a summary out.
func runBatch(a batchArgs) {
	if a.data == "" || a.rules == "" {
		fmt.Fprintln(os.Stderr, "relacc: -data and -rules are required")
		os.Exit(2)
	}
	if (a.by == "") == (a.key == "") {
		fmt.Fprintln(os.Stderr, "relacc: batch needs exactly one of -by (identifier column) or -key (ER key attributes)")
		os.Exit(2)
	}
	alg, err := pipeline.ParseAlgorithm(a.algo)
	if err != nil {
		fatal(err)
	}
	if useStreaming(a.stream, a.data, a.by) {
		if a.by == "" {
			fatal(fmt.Errorf("-stream on needs -by: similarity grouping (-key) must see the whole relation"))
		}
		runBatchStream(a, alg)
		return
	}

	schema, tuples, err := csvio.ReadRelationFile(a.data)
	if err != nil {
		fatal(err)
	}
	im, rules, err := loadMasterAndRules(a.master, a.rules, schema)
	if err != nil {
		fatal(err)
	}

	var entities []*model.EntityInstance
	if a.by != "" {
		entities, err = er.GroupBy(tuples, schema, a.by)
	} else {
		entities, err = er.Resolve(tuples, schema, er.Config{
			KeyAttrs:  strings.Split(a.key, ","),
			Threshold: a.threshold,
		})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d tuples grouped into %d entities\n", len(tuples), len(entities))

	var settled []*model.Tuple
	sum, err := pipeline.Stream(entities, pipeline.Config{
		Master:  im,
		Rules:   rules,
		Workers: a.workers,
		TopK:    a.topK,
		Algo:    alg,
	}, func(r pipeline.Result) error {
		target := settledTarget(r)
		if target != nil {
			settled = append(settled, target)
		}
		if a.verbose || target == nil {
			printEntityLine(fmt.Sprintf("%d", r.Index), r, a.verbose)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(sum.String())

	if a.out != "" {
		writeSettled(a.out, schema, settled, len(entities))
	}
}

// runBatchStream is runBatch on the constant-memory pipeline: rows
// decode one at a time, entities seal as the window retires them, and
// verdicts (and -o rows) stream out while later rows are still being
// read — identical output to the materialized path, memory bounded by
// the window and the worker pool instead of the relation's length.
func runBatchStream(a batchArgs, alg pipeline.Algorithm) {
	schema, err := readHeaderSchema(a.data)
	if err != nil {
		fatal(err)
	}
	im, rules, err := loadMasterAndRules(a.master, a.rules, schema)
	if err != nil {
		fatal(err)
	}
	cfg := pipeline.Config{
		Master:  im,
		Rules:   rules,
		Workers: a.workers,
		TopK:    a.topK,
		Algo:    alg,
	}
	opts := ingest.Options{By: a.by, Window: er.Window{MaxEntities: a.window}}
	fmt.Printf("streaming %s grouped by %s (window %d)\n", a.data, a.by, a.window)

	var sum pipeline.Summary
	settled := 0
	run := func(rw *csvio.RelationWriter) error {
		f, err := os.Open(a.data)
		if err != nil {
			return err
		}
		defer f.Close()
		sum, err = ingest.StreamCSV(f, a.data, opts, cfg, func(r pipeline.Result) error {
			target := settledTarget(r)
			if target != nil {
				settled++
				if rw != nil {
					if err := rw.Write(target); err != nil {
						return err
					}
				}
			}
			if a.verbose || target == nil {
				printEntityLine(fmt.Sprintf("%d", r.Index), r, a.verbose)
			}
			return nil
		})
		return err
	}
	if a.out == "" {
		if err := run(nil); err != nil {
			fatal(err)
		}
	} else {
		// The whole run happens inside the atomic write: settled rows
		// stream straight into the temp file as their entities resolve,
		// and the rename publishes the complete output only after the
		// stream ends cleanly.
		if err := atomicWrite(a.out, func(w io.Writer) error {
			rw, err := csvio.NewRelationWriter(w, schema)
			if err != nil {
				return err
			}
			if err := run(rw); err != nil {
				return err
			}
			return rw.Flush()
		}); err != nil {
			fatal(err)
		}
	}
	fmt.Println(sum.String())
	if a.out != "" {
		fmt.Printf("wrote %d settled targets (of %d entities) to %s\n", settled, sum.Entities, a.out)
	}
}

type appendArgs struct {
	data, delta, master, rules string
	by                         string
	workers, topK              int
	algo                       string
	out                        string
	verbose                    bool
	stream                     string
	window                     int
}

// runAppend is the incremental pipeline front end: the base relation
// seeds live per-entity sessions, the delta relation's tuples are
// routed to them by the -by identifier, and only the touched entities
// are re-deduced (through chase-level delta instantiation).
func runAppend(a appendArgs) {
	if a.data == "" || a.delta == "" || a.rules == "" {
		fmt.Fprintln(os.Stderr, "relacc: append needs -data, -delta and -rules")
		os.Exit(2)
	}
	if a.by == "" {
		fmt.Fprintln(os.Stderr, "relacc: append needs -by (the identifier column routing delta tuples)")
		os.Exit(2)
	}
	alg, err := pipeline.ParseAlgorithm(a.algo)
	if err != nil {
		fatal(err)
	}
	if useStreaming(a.stream, a.data, a.by) {
		runAppendStream(a, alg)
		return
	}
	schema, baseTuples, err := csvio.ReadRelationFile(a.data)
	if err != nil {
		fatal(err)
	}
	im, rules, err := loadMasterAndRules(a.master, a.rules, schema)
	if err != nil {
		fatal(err)
	}
	baseUps, baseLabels, err := groupUpdates(baseTuples, schema, a.by)
	if err != nil {
		fatal(err)
	}

	u, err := pipeline.NewUpdater(schema, pipeline.Config{
		Master:  im,
		Rules:   rules,
		Workers: a.workers,
		TopK:    a.topK,
		Algo:    alg,
	})
	if err != nil {
		fatal(err)
	}
	baseResults, baseSum, err := u.Apply(baseUps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("base: %d tuples grouped into %d entities\n", len(baseTuples), len(baseUps))
	if a.verbose {
		for i, r := range baseResults {
			printEntityLine(baseLabels[i], r, true)
		}
	}
	fmt.Println("base:", baseSum.String())

	deltaUps, deltaResults, preVersion := applyDelta(u, schema, a)

	if a.out != "" {
		// The two Apply phases already deduced every entity's final
		// state: base results stand except where the delta re-deduced
		// the entity. Merging avoids re-running deduction and top-k
		// search over the whole stream just to write the output.
		final := map[string]pipeline.Result{}
		var keys []string
		for i, r := range baseResults {
			final[baseUps[i].Key] = r
			keys = append(keys, baseUps[i].Key)
		}
		for i, r := range deltaResults {
			key := deltaUps[i].Key
			if r.Err != nil {
				// Two failure phases, two outcomes (see Updater.Apply):
				// if the version did not advance the delta was never
				// absorbed and the base result still describes the
				// entity; if it did advance, the evidence IS in but no
				// fresh target exists — the base target would be stale,
				// so the entity is dropped, exactly as a batch over
				// base+delta would emit no settled target for it.
				if u.Version(key) != preVersion[key] {
					delete(final, key)
				}
				continue
			}
			if _, seen := final[key]; !seen {
				keys = append(keys, key)
			}
			final[key] = r
		}
		var settled []*model.Tuple
		entities := 0
		for _, k := range keys {
			r, ok := final[k]
			if !ok {
				continue
			}
			entities++
			if target := settledTarget(r); target != nil {
				settled = append(settled, target)
			}
		}
		writeSettled(a.out, schema, settled, entities)
	}
}

// applyDelta runs the delta phase both append paths share: the delta
// CSV is read (deltas are the small side of an append), remapped onto
// the base schema, routed into the live entities by the -by key, and
// every touched entity's re-deduced verdict printed. It returns what
// the materialized -o merge needs; the streaming path snapshots the
// updater instead.
func applyDelta(u *pipeline.Updater, schema *model.Schema, a appendArgs) ([]pipeline.Update, []pipeline.Result, map[string]int) {
	deltaSchema, deltaTuples, err := csvio.ReadRelationFile(a.delta)
	if err != nil {
		fatal(err)
	}
	deltaTuples, err = remapTuples(deltaTuples, deltaSchema, schema)
	if err != nil {
		fatal(err)
	}
	deltaUps, deltaLabels, err := groupUpdates(deltaTuples, schema, a.by)
	if err != nil {
		fatal(err)
	}
	newKeys := 0
	preVersion := make(map[string]int, len(deltaUps))
	for i := range deltaUps {
		v := u.Version(deltaUps[i].Key)
		preVersion[deltaUps[i].Key] = v
		if v < 0 {
			newKeys++
		}
	}
	deltaResults, deltaSum, err := u.Apply(deltaUps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("delta: %d tuples touched %d entities (%d new); re-deduced targets:\n",
		len(deltaTuples), len(deltaUps), newKeys)
	for i, r := range deltaResults {
		printEntityLine(deltaLabels[i], r, a.verbose)
	}
	fmt.Println("delta:", deltaSum.String())
	return deltaUps, deltaResults, preVersion
}

// runAppendStream is runAppend with the base relation seeded through
// the constant-memory chain: tuples decode and intern one at a time,
// the bounded window turns each sealed entity into one update, and the
// live sessions build up in modest batches. The delta phase is the
// shared materialized one (deltas are small); -o snapshots the final
// state of every live entity.
func runAppendStream(a appendArgs, alg pipeline.Algorithm) {
	f, err := os.Open(a.data)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	it, err := csvio.NewTupleIterator(f, a.data)
	if err != nil {
		fatal(err)
	}
	schema := it.Schema()
	im, rules, err := loadMasterAndRules(a.master, a.rules, schema)
	if err != nil {
		fatal(err)
	}
	u, err := pipeline.NewUpdater(schema, pipeline.Config{
		Master:  im,
		Rules:   rules,
		Workers: a.workers,
		TopK:    a.topK,
		Algo:    alg,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("streaming %s into live entities by %s (window %d)\n", a.data, a.by, a.window)
	baseSum, err := ingest.SeedUpdater(u, it, ingest.SeedOptions{
		By:     a.by,
		Window: er.Window{MaxEntities: a.window},
		Sink: func(r pipeline.Result) error {
			if a.verbose {
				printEntityLine(entityLabel(r, a.by), r, true)
			}
			return nil
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("base: %d entities seeded\n", u.Len())
	fmt.Println("base:", baseSum.String())

	_, _, _ = applyDelta(u, schema, a)

	if a.out != "" {
		// Snapshot re-deduces nothing that has not changed (deductions
		// are memoized per version); it is the final state of every
		// entity in registration order — the same order the
		// materialized merge writes.
		_, results, _, err := u.Snapshot()
		if err != nil {
			fatal(err)
		}
		var settled []*model.Tuple
		for _, r := range results {
			if target := settledTarget(r); target != nil {
				settled = append(settled, target)
			}
		}
		writeSettled(a.out, schema, settled, len(results))
	}
}

// entityLabel recovers the display label — what the -by column says —
// from a streamed result, matching the labels groupUpdates produces
// (Result.Key is the type-tagged routing key, not for humans).
func entityLabel(r pipeline.Result, by string) string {
	if r.Instance != nil {
		if ts := r.Instance.Tuples(); len(ts) > 0 {
			if v, ok := ts[0].Get(by); ok && !v.IsNull() {
				return v.String()
			}
		}
	}
	return r.Key
}

// settledTarget returns the target a result settles on: the complete
// deduced target, the best verified candidate, or nil when the entity
// stays unsettled. Both batch and append derive their -o output and
// verdict lines from it.
func settledTarget(r pipeline.Result) *model.Tuple {
	switch r.Status() {
	case "complete":
		return r.Deduction.Target
	case "candidates":
		return r.Candidates[0].Tuple
	}
	return nil
}

// writeSettled writes the settled targets as CSV, shared by the batch
// and append -o paths.
func writeSettled(path string, schema *model.Schema, settled []*model.Tuple, entities int) {
	if err := atomicWrite(path, func(w io.Writer) error {
		return csvio.WriteRelation(w, schema, settled)
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d settled targets (of %d entities) to %s\n", len(settled), entities, path)
}

// atomicWrite writes path through a temp file in the same directory
// plus a rename, so a run that dies mid-write (a later fatal, a write
// error, a kill) never leaves a truncated or partial file where the
// caller asked for output — path either keeps its previous content or
// holds the complete new one.
func atomicWrite(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must get its temp file in the SAME directory:
		// CreateTemp("") would use os.TempDir, and renaming out of a
		// tmpfs /tmp fails cross-device.
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	// CreateTemp makes the file 0600; restore os.Create semantics so
	// the rename does not silently turn a shared output owner-only —
	// keep an existing destination's mode, else 0666 filtered by the
	// umask, exactly what os.Create would have produced.
	var mode os.FileMode
	if st, err := os.Stat(path); err == nil {
		mode = st.Mode().Perm()
	} else {
		mode = os.FileMode(0o666) &^ os.FileMode(processUmask())
	}
	if err := f.Chmod(mode); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// printEntityLine renders one per-entity verdict; batch labels entities
// by index, append by key.
// printEntityLine reports one entity's outcome; withTiming (verbose
// mode) appends the per-entity wall-clock time (pipeline.Result.Elapsed)
// so slow entities stand out inside an otherwise fast batch.
func printEntityLine(label string, r pipeline.Result, withTiming bool) {
	target := settledTarget(r)
	line := fmt.Sprintf("entity %-12s [%d tuples]  %-17s", label, r.Instance.Size(), r.Status())
	switch {
	case r.Err != nil:
		line += " " + r.Err.Error()
	case r.Status() == "not-church-rosser":
		line += " " + r.Deduction.Conflict
	case target != nil:
		line += " " + target.String()
	default:
		line += " " + r.Deduction.Target.String()
	}
	if withTiming {
		line += fmt.Sprintf("  (%s)", r.Elapsed.Round(time.Microsecond))
	}
	fmt.Println(line)
}

// groupUpdates routes a relation's tuples into keyed updates on the
// shared pipeline helper; append mode keys by the value's type-tagged
// identity (Value.Key), with the display label carrying what the
// column actually says.
func groupUpdates(tuples []*model.Tuple, schema *model.Schema, by string) ([]pipeline.Update, []string, error) {
	return pipeline.GroupUpdates(tuples, schema, by,
		func(v model.Value) (string, error) { return v.Key(), nil })
}

// remapTuples rebuilds tuples read under one schema object onto the
// base schema (schemas match by pointer identity everywhere else, and
// the delta CSV necessarily parses into its own schema object). The
// column sets must agree; order may differ.
func remapTuples(tuples []*model.Tuple, from, to *model.Schema) ([]*model.Tuple, error) {
	for _, attr := range from.Attrs() {
		if to.Index(attr) < 0 {
			return nil, fmt.Errorf("delta column %q is not in the base relation", attr)
		}
	}
	if from.Arity() != to.Arity() {
		return nil, fmt.Errorf("delta has %d columns, base has %d", from.Arity(), to.Arity())
	}
	out := make([]*model.Tuple, len(tuples))
	for i, t := range tuples {
		nt := model.NewTuple(to)
		for a, attr := range from.Attrs() {
			nt.Set(attr, t.At(a))
		}
		out[i] = nt
	}
	return out, nil
}

func printTarget(schema *model.Schema, t *model.Tuple) {
	for a := 0; a < schema.Arity(); a++ {
		v := t.At(a)
		mark := " "
		if v.IsNull() {
			mark = "?"
		}
		fmt.Printf("  %s %-14s = %s\n", mark, schema.Attr(a), v)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: relacc <deduce|topk|check|rules|batch|append> -data data.csv -rules rules.txt [flags]
  deduce/topk/check/rules operate on one entity's tuples;
  batch groups a multi-entity relation (-by col | -key a,b) and runs the
  pipeline over it (-workers N -topk K -algo topkct|rankjoin|topkcth -o out.csv);
  append deduces a base relation, then routes -delta tuples to the live
  entities by -by and incrementally re-deduces only the touched ones;
  -stream on|off|auto and -window N pick the constant-memory ingest path
  (auto streams -by input whose rows arrive in contiguous per-key runs)`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "relacc:", err)
	os.Exit(1)
}
