package main

import (
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestAtomicWrite pins the temp-file-plus-rename mechanism the -o paths
// rely on: success replaces the destination completely, failure leaves
// the previous content byte-identical, and neither path strands a temp
// file next to the output.
func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("old content\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := atomicWrite(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new content\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new content\n" {
		t.Fatalf("after success: %q", got)
	}

	// A writer that emits half the output and then fails models the
	// truncated-CSV bug: the destination must keep the SUCCESSFUL run's
	// content, not the torn prefix.
	boom := errors.New("boom")
	err = atomicWrite(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "torn pre"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "new content\n" {
		t.Fatalf("failed write touched the destination: %q", got)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "out.csv" {
			t.Fatalf("stranded temp file %q", e.Name())
		}
	}
}

// TestAtomicWriteBareFilename: a destination with no directory part
// (`-o fused.csv`, as the README shows) must stage its temp file in
// the CURRENT directory, not os.TempDir — renaming out of a tmpfs
// /tmp would fail cross-device.
func TestAtomicWriteBareFilename(t *testing.T) {
	dir := t.TempDir()
	// os.Chdir + restore rather than t.Chdir: CI builds at the go.mod
	// language version (1.22), which predates testing.T.Chdir.
	prev, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(prev) })
	if err = atomicWrite("out.csv", func(w io.Writer) error {
		_, err := io.WriteString(w, "bare\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, err := os.ReadFile(filepath.Join(dir, "out.csv")); err != nil || string(got) != "bare\n" {
		t.Fatalf("bare-filename write: %q, %v", got, err)
	}
	// A fresh destination gets os.Create's mode: 0666 through the
	// process umask — neither CreateTemp's 0600 nor an umask-ignoring
	// blanket 0644.
	um := processUmask()
	st, err := os.Stat(filepath.Join(dir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if want := os.FileMode(0o666) &^ os.FileMode(um); st.Mode().Perm() != want {
		t.Fatalf("fresh output mode = %v, want %v (umask %04o)", st.Mode().Perm(), want, um)
	}
}

// TestBatchWritesSettledCSV drives the real binary end to end: a small
// relation is grouped by id, deduced, and -o must hold the settled
// targets with no temp droppings left behind.
func TestBatchWritesSettledCSV(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "relation.csv")
	rules := filepath.Join(dir, "rules.txt")
	out := filepath.Join(dir, "settled.csv")
	// Two entities: m1 has conflicting rnds/jersey settled by the rules
	// (higher rnds is more current and carries the jersey number); m2 is
	// a singleton and settles trivially.
	if err := os.WriteFile(data, []byte(
		"id,league,rnds,jersey\n"+
			"m1,east,30,45\n"+
			"m1,east,80,23\n"+
			"m2,west,10,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rules, []byte(
		"phi1: t1[league] = t2[league] , t1[rnds] < t2[rnds] -> t1 <= t2 @ rnds\n"+
			"phi2: t1 < t2 @ rnds -> t1 <= t2 @ jersey\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "run", ".", "batch",
		"-data", data, "-rules", rules, "-by", "id", "-o", out)
	cmd.Env = os.Environ()
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("relacc batch: %v\n%s", err, outBytes)
	}
	if !strings.Contains(string(outBytes), "settled targets") {
		t.Fatalf("unexpected output:\n%s", outBytes)
	}
	content, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(content)), "\n")
	if len(lines) != 3 { // header + one settled target per entity
		t.Fatalf("settled CSV holds %d lines:\n%s", len(lines), content)
	}
	if lines[0] != "id,league,rnds,jersey" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(string(content), "m1,east,80,23") {
		t.Fatalf("m1 not settled on the more accurate tuple:\n%s", content)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stranded temp file %q", e.Name())
		}
	}
}
