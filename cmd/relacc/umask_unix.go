//go:build unix

package main

import "syscall"

// processUmask reads the process umask (set-and-restore is the only
// POSIX way to read it; the window where it is zeroed is before any
// concurrent file creation this CLI performs).
func processUmask() int {
	um := syscall.Umask(0)
	syscall.Umask(um)
	return um
}
