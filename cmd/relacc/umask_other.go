//go:build !unix

package main

// processUmask: no umask outside unix; 0 leaves fresh outputs at
// 0666, which is what os.Create produces on such platforms anyway.
func processUmask() int { return 0 }
