// Command relaccd is the relative-accuracy serving daemon: it seeds a
// sharded update stream from a relation CSV and serves evidence
// appends and deduction queries over HTTP/JSON until shut down.
//
//	relaccd -data seed.csv -rules rules.txt -by id [-master master.csv]
//	        [-addr 127.0.0.1:8080] [-workers N] [-topk K] [-algo topkct|rankjoin|topkcth]
//	        [-max-inflight N] [-data-dir DIR] [-fsync always|interval|never]
//	        [-snapshot-every N] [-max-entity-tuples N] [-window N]
//
// The CSV's header defines the entity schema every appended tuple must
// conform to; its rows (may be none) are grouped into entities by the
// -by identifier column and deduced once at startup. The seed streams:
// rows decode one at a time into the live store, so a large seed CSV
// never materializes in memory; -window bounds the open-entity set (0 =
// unbounded, safe for any row order — a bound needs the seed grouped in
// contiguous -by runs, e.g. sorted on the identifier). -topk configures
// the candidate search run when an APPEND leaves an entity incomplete
// (0 = deduce only); the /topk query endpoint picks its own k and algo
// per request. The daemon listens on -addr (use port 0 to let the
// kernel pick; the chosen address is printed), serves until SIGINT or
// SIGTERM, then drains in-flight requests and exits 0.
//
// With -data-dir the store is DURABLE: every applied batch is written
// to a CRC-checksummed write-ahead log under the directory before it
// touches an entity (-fsync picks the sync policy), and on boot the
// daemon recovers the previous process's state — snapshot first, then
// the log tail — instead of re-seeding from CSV. -snapshot-every N
// checkpoints after every N appends; a checkpoint also runs on
// graceful shutdown, so a clean restart replays an empty log. A torn
// record left by a crash mid-append is detected by CRC and dropped,
// never partially applied (see internal/wal).
//
// See internal/server for the routes and the JSON wire format, and
// README.md for a curl quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chase"
	"repro/internal/csvio"
	"repro/internal/er"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/rule"
	"repro/internal/ruledsl"
	"repro/internal/server"
	"repro/internal/topk"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	dataPath := flag.String("data", "", "seed relation CSV; its header defines the schema (required)")
	masterPath := flag.String("master", "", "master relation CSV")
	rulesPath := flag.String("rules", "", "accuracy rule file (required)")
	by := flag.String("by", "", "identifier column grouping seed rows into entities (required with seed rows)")
	workers := flag.Int("workers", 0, "concurrent entities per Apply batch (0 = GOMAXPROCS)")
	topK := flag.Int("topk", 0, "candidates searched when an append leaves an entity incomplete (0 = deduce only)")
	algo := flag.String("algo", "topkct", "append-time top-k algorithm: topkct, rankjoin or topkcth")
	maxInFlight := flag.Int("max-inflight", 0, "concurrently served requests (0 = 256)")
	maxChecks := flag.Int("max-checks", 100_000, "chase-check budget per candidate search; exhausting it returns the candidates found so far (0 = unlimited)")
	maxTopK := flag.Int("max-k", 0, "largest ?k= a topk query may request (0 = 100)")
	dataDir := flag.String("data-dir", "", "durable store directory (WAL + snapshots); empty = memory-only")
	fsync := flag.String("fsync", "always", "WAL sync policy: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "cadence of -fsync=interval")
	snapshotEvery := flag.Int("snapshot-every", 0, "checkpoint after every N appends (0 = only on shutdown / POST /v1/snapshot)")
	maxEntityTuples := flag.Int("max-entity-tuples", 0, "evidence tuples one entity may accumulate; appends past it fail with 422 (0 = unbounded)")
	window := flag.Int("window", 0, "max open entities while streaming the seed (0 = unbounded; a bound needs the seed grouped in contiguous -by runs, e.g. sorted)")
	verdictCache := flag.Bool("verdict-cache", true, "memoise chase candidate checks per grounding version")
	verdictCacheCap := flag.Int("verdict-cache-cap", 0, "verdict-cache entries per grounding version (0 = default, negative = unbounded)")
	settledCache := flag.Bool("settled-cache", true, "memoise each entity's last (version, k, algo) query answer")
	flag.Parse()
	if *dataPath == "" || *rulesPath == "" {
		fmt.Fprintln(os.Stderr, "relaccd: -data and -rules are required")
		os.Exit(2)
	}
	alg, err := pipeline.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}
	syncPolicy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}

	// The seed streams: only the header is read here (fixing the
	// schema); rows decode one at a time at seed time, so a large seed
	// CSV never materializes in memory.
	dataFile, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	defer dataFile.Close()
	it, err := csvio.NewTupleIterator(dataFile, *dataPath)
	if err != nil {
		fatal(err)
	}
	schema := it.Schema()
	var im *model.MasterRelation
	if *masterPath != "" {
		mf, err := os.Open(*masterPath)
		if err != nil {
			fatal(err)
		}
		im, err = csvio.ReadMaster(mf, "master")
		mf.Close()
		if err != nil {
			fatal(err)
		}
	}
	text, err := os.ReadFile(*rulesPath)
	if err != nil {
		fatal(err)
	}
	var ms *model.Schema
	if im != nil {
		ms = im.Schema()
	}
	parsed, err := ruledsl.Parse(string(text))
	if err != nil {
		fatal(err)
	}
	rules, err := rule.NewSet(schema, ms, parsed...)
	if err != nil {
		fatal(err)
	}

	u, err := pipeline.NewUpdater(schema, pipeline.Config{
		Master:  im,
		Rules:   rules,
		Workers: *workers,
		TopK:    *topK,
		Algo:    alg,
		// Bound the work ONE candidate search may do: the problem is
		// NP-complete, and a serving daemon must degrade to partial
		// candidates rather than let one entity pin a core forever.
		Pref: topk.Preference{MaxChecks: *maxChecks},
		// Bound the evidence ONE entity may accumulate: with a durable
		// log the absorb failure replays identically on recovery.
		MaxEntityTuples: *maxEntityTuples,
		// The two read-path caches are semantically invisible (cached
		// answers are byte-identical to recomputing); the flags exist
		// for measurement and emergency memory relief.
		Options: chase.Options{
			DisableVerdictCache: !*verdictCache,
			VerdictCacheCap:     *verdictCacheCap,
		},
		DisableSettledCache: !*settledCache,
	})
	if err != nil {
		fatal(err)
	}

	// Durable mode: open the store, replay what the previous process
	// left, and only then attach the log so replayed batches are not
	// re-logged. Recovered state is authoritative — the CSV seed ran
	// (and was logged) when the store was first created, so re-seeding
	// on every boot would double the evidence.
	var store *wal.Store
	seed := true
	if *dataDir != "" {
		store, err = wal.Open(*dataDir, schema, wal.Options{Fsync: syncPolicy, Interval: *fsyncInterval})
		if err != nil {
			fatal(err)
		}
		rs, err := store.Recover(u)
		if err != nil {
			fatal(err)
		}
		u.AttachPersister(store)
		if !rs.Empty() {
			fmt.Printf("relaccd: recovered %d entities from %s (snapshot seq %d, %d WAL batches replayed, resuming after seq %d)\n",
				rs.Entities, *dataDir, rs.SnapshotSeq, rs.Batches, rs.LastSeq)
			seed = false
		}
	}

	if seed && *by == "" {
		// A header-only CSV legitimately just fixes the schema; any
		// actual seed row needs the grouping column.
		if _, err := it.Next(); err != io.EOF {
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "relaccd: -by is required to group the seed rows into entities")
			os.Exit(2)
		}
	} else if seed {
		// Stream the seed into the live store: tuples intern as they
		// decode, entities seal as the -window retires them, and each
		// becomes one update applied in modest batches — constant
		// memory in the seed's length. Unlike cmd/relacc's append mode
		// (type-tagged Value.Key routing), the daemon keys by the
		// identifier's string rendering: the HTTP key namespace is
		// plain strings, so the "m1" a client POSTs evidence under must
		// be the "m1" the seed created — and '/' cannot be addressed by
		// the per-entity routes at all.
		sum, err := ingest.SeedUpdater(u, it, ingest.SeedOptions{
			By:     *by,
			Window: er.Window{MaxEntities: *window},
			KeyOf: func(v model.Value) (string, error) {
				k := v.String()
				if err := server.ValidateKey(k); err != nil {
					return "", fmt.Errorf("identifier not HTTP-routable: %w", err)
				}
				return k, nil
			},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("relaccd: seeded %s\n", sum.String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{
		Handler: server.New(u, server.Options{
			MaxInFlight:   *maxInFlight,
			MaxTopK:       *maxTopK,
			Store:         store,
			SnapshotEvery: *snapshotEvery,
		}).Handler(),
		// ReadTimeout covers the whole request read, so a slow-body
		// client cannot hold a MaxInFlight slot indefinitely inside the
		// JSON decoder. No WriteTimeout: a large top-k query may
		// legitimately take long to answer.
		ReadTimeout:       30 * time.Second,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("relaccd: serving schema %s (%d entities) on http://%s\n",
		schema.Name(), u.Len(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	select {
	case err := <-served:
		fatal(err) // the listener died under us
	case <-ctx.Done():
	}
	stop()
	fmt.Println("relaccd: draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		// A drain that outlives the timeout (a long top-k query —
		// WriteTimeout is deliberately unset) is a normal termination,
		// not a crash: cut the stragglers and still exit 0.
		fmt.Fprintln(os.Stderr, "relaccd: drain timed out, closing in-flight connections:", err)
		srv.Close()
	}
	if err := <-served; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if store != nil {
		// Snapshot-on-drain: the next boot restores the snapshot and
		// replays an empty log instead of the whole session's batches.
		// A failed checkpoint is not fatal — the log alone still
		// recovers everything — but it is worth a line.
		if _, err := store.Checkpoint(u); err != nil {
			fmt.Fprintln(os.Stderr, "relaccd: shutdown checkpoint failed (the WAL still covers all state):", err)
		}
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "relaccd: closing durable store:", err)
		}
	}
	fmt.Println("relaccd: shut down cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "relaccd:", err)
	os.Exit(1)
}
