// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 7) and prints the results as text tables, with the
// paper's values quoted in the notes for comparison.
//
//	experiments            # full scale (the paper's dataset sizes)
//	experiments -quick     # reduced scale (seconds instead of minutes)
//	experiments -only Fig6a,Table4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	only := flag.String("only", "", "comma-separated report IDs to run (default: all)")
	par := flag.Int("par", 0, "workers for the per-entity loops (unset: GOMAXPROCS for quality sweeps, sequential for timing experiments)")
	flag.Parse()

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}
	if *par > 0 {
		cfg.Workers = *par
	}
	s := bench.NewSuite(cfg)

	type exp struct {
		id  string
		run func() (*bench.Report, error)
	}
	all := []exp{
		{"Fig6a", s.Fig6a},
		{"Fig6e", s.Fig6e},
		{"Exp1-complete-by-form", s.CompleteByForm},
		{"Exp1-accuracy", s.Exp1Accuracy},
		{"Fig6b", s.Fig6b},
		{"Fig6f", s.Fig6f},
		{"Fig6c", s.Fig6c},
		{"Fig6g", s.Fig6g},
		{"Fig6d", s.Fig6d},
		{"Fig6h", s.Fig6h},
		{"Fig6i", s.Fig6i},
		{"Fig6j", s.Fig6j},
		{"Fig6k", s.Fig6k},
		{"Fig6l", s.Fig6l},
		{"Fig7a", s.Fig7a},
		{"Fig7b", s.Fig7b},
		{"IsCR-timing", s.IsCRTiming},
		{"Table4", s.Table4},
		{"Exp5-CFP", s.Exp5CFP},
	}

	var wanted map[string]bool
	if *only != "" {
		wanted = map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	start := time.Now()
	for _, e := range all {
		if wanted != nil && !wanted[e.id] {
			continue
		}
		t0 := time.Now()
		rep, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(rep)
		fmt.Printf("(%s took %s)\n\n", e.id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
}
