// Command relacc-lint runs the project's invariant analyzers (see
// internal/analysis/analyzers and DESIGN.md "Static analysis") over the
// module from source, no network or build cache required:
//
//	go run ./cmd/relacc-lint ./...          # whole module (CI's Lint step)
//	go run ./cmd/relacc-lint ./internal/chase
//	go run ./cmd/relacc-lint -only lockscope,poolescape ./...
//	go run ./cmd/relacc-lint -list          # registry, for check-docs.sh
//
// Exit status is 1 when any diagnostic is reported or any package fails
// to type-check, 0 on a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/analyzers"
	"repro/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("relacc-lint", flag.ExitOnError)
	list := fs.Bool("list", false, "print the registered analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	noTests := fs.Bool("no-tests", false, "exclude _test.go files from analysis")
	fs.Parse(args)

	all := analyzers.All()
	if *list {
		for _, a := range all {
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-14s %s\n", a.Name, summary)
		}
		return 0
	}

	selected, err := selectAnalyzers(all, *only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relacc-lint:", err)
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "relacc-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(load.Config{Dir: root, Tests: !*noTests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relacc-lint:", err)
		return 2
	}

	wd, _ := os.Getwd()
	exit := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "relacc-lint: %s: %v\n", pkg.Path, terr)
			exit = 1
		}
		if len(pkg.TypeErrors) > 0 {
			continue // diagnostics over partial types would be noise
		}
		findings, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, selected)
		if err != nil {
			fmt.Fprintf(os.Stderr, "relacc-lint: %s: %v\n", pkg.Path, err)
			return 2
		}
		for _, f := range findings {
			if rel, err := filepath.Rel(wd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
			fmt.Println(f)
			exit = 1
		}
	}
	return exit
}

func selectAnalyzers(all []*analysis.Analyzer, only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var selected []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		selected = append(selected, a)
	}
	return selected, nil
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so the tool works from any subdirectory of the module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
