// Package ingest composes the streaming ingest chain the batch tools
// run: csvio.TupleIterator → er.StreamGroupBy → pipeline.StreamFrom,
// one pull-based iterator feeding the next with no adapter goroutines
// and no materialization anywhere — rows decode one at a time, entities
// seal the moment the window retires them, results stream to the sink
// in entity order. Memory is proportional to the window plus the worker
// pool, never to the relation's length, and the results are
// byte-identical to the materialized ReadRelation → GroupBy → Run path
// (the package's equivalence suite enforces it for every window size;
// DESIGN.md invariant 10).
package ingest

import (
	"fmt"
	"io"
	"time"

	"repro/internal/chase"
	"repro/internal/csvio"
	"repro/internal/er"
	"repro/internal/model"
	"repro/internal/pipeline"
)

// Options tunes a streaming ingest.
type Options struct {
	// By is the exact-identifier grouping attribute (required).
	By string
	// Window bounds the grouper's working set; zero is unbounded
	// (GroupBy-equivalent for any input order, at GroupBy's memory
	// cost). See er.Window.
	Window er.Window
	// KeyOf optionally renders grouping values to entity keys; nil
	// means model.Value.Key (GroupBy's key function).
	KeyOf func(model.Value) (string, error)
	// OnRowError is consulted for recoverable CSV row errors: return
	// nil to skip the row, an error to abort. Nil aborts on the first
	// bad row.
	OnRowError func(error) error
}

// StreamCSV grounds a CSV relation end to end in constant memory:
// tuples are decoded and interned one at a time, grouped into entities
// by exact equality on opts.By within the bounded window, and fed to
// the pipeline's worker pool with backpressure all the way back to the
// reader. Results reach sink in entity (first-appearance) order,
// byte-identical to the materialized path. Input too disordered for the
// window aborts with an *er.WindowError rather than ever emitting a
// split entity.
func StreamCSV(r io.Reader, name string, opts Options, cfg pipeline.Config, sink func(pipeline.Result) error) (pipeline.Summary, error) {
	it, err := csvio.NewTupleIterator(r, name)
	if err != nil {
		return pipeline.Summary{}, err
	}
	shared, err := chase.NewShared(it.Schema(), cfg.Master, cfg.Rules)
	if err != nil {
		return pipeline.Summary{}, err
	}
	// One dictionary for the whole chain: values intern as they decode,
	// so grounding does no dict probes for streamed tuples.
	it.Intern(shared.Dict())
	es, err := er.StreamGroupBy(it, it.Schema(), opts.By, er.StreamOpts{
		Window:     opts.Window,
		KeyOf:      opts.KeyOf,
		OnRowError: opts.OnRowError,
	})
	if err != nil {
		return pipeline.Summary{}, err
	}
	return pipeline.StreamFromShared(shared, es, cfg, sink)
}

// RunLength reports whether the relation's rows arrive grouped in
// contiguous runs per opts.By key — sorted input is, and so is any
// export that emitted entities one at a time. Run-length input streams
// at window 1, so callers use this one cheap pass to decide whether
// streaming can be the default. A null key ends the run it interrupts
// (each null is its own singleton entity, so the key resuming after it
// counts as a reappearance); recoverable row errors are skipped,
// matching what a skipping stream would see.
func RunLength(r io.Reader, name, by string) (bool, error) {
	it, err := csvio.NewTupleIterator(r, name)
	if err != nil {
		return false, err
	}
	i := it.Schema().Index(by)
	if i < 0 {
		return false, &er.UnknownAttrError{Attr: by}
	}
	seen := map[string]struct{}{}
	cur := ""
	haveCur := false
	for {
		t, err := it.Next()
		if err == io.EOF {
			return true, nil
		}
		if err != nil {
			if csvio.IsRowError(err) {
				continue
			}
			return false, err
		}
		v := t.At(i)
		if v.IsNull() {
			// A null singleton ends the current run: at window 1 it
			// seals the open entity, so the key resuming afterwards
			// would be a reappearance.
			haveCur = false
			continue
		}
		k := v.Key()
		if haveCur && k == cur {
			continue
		}
		if _, ok := seen[k]; ok {
			return false, nil
		}
		seen[k] = struct{}{}
		cur, haveCur = k, true
	}
}

// SeedOptions tunes SeedUpdater.
type SeedOptions struct {
	// By is the routing identifier attribute (required). Null
	// identifiers abort the seed: update routing needs a real key.
	By string
	// KeyOf renders identifier values to routing keys; nil means
	// model.Value.Key.
	KeyOf func(model.Value) (string, error)
	// Window bounds the grouper's working set (zero: unbounded).
	Window er.Window
	// Batch is how many entities are applied per Updater.Apply call;
	// <= 0 means 256. Each key appears in exactly one batch (the
	// grouper guarantees a sealed key never reappears), so batch size
	// never changes any entity's outcome.
	Batch int
	// OnRowError is consulted for recoverable CSV row errors, as in
	// Options.
	OnRowError func(error) error
	// Sink, when set, receives every per-entity Result as its batch is
	// applied — the seed's progress reporting hook.
	Sink func(pipeline.Result) error
}

// SeedUpdater streams a CSV relation into a live Updater: decoded
// tuples intern into the updater's dictionary, group under the window,
// and each sealed entity becomes one Update applied in modest batches —
// a cold boot of a large seed CSV runs in window-bounded memory. The
// iterator must have been opened on the updater's schema (pointer
// identity: build the Updater from it.Schema()).
func SeedUpdater(u *pipeline.Updater, it *csvio.TupleIterator, opts SeedOptions) (pipeline.Summary, error) {
	start := time.Now()
	var sum pipeline.Summary
	if it.Schema() != u.Schema() {
		return sum, fmt.Errorf("ingest: iterator schema %s is not the updater's %s — build the updater from the iterator's schema",
			it.Schema().Name(), u.Schema().Name())
	}
	it.Intern(u.Dict())
	es, err := er.StreamGroupBy(it, u.Schema(), opts.By, er.StreamOpts{
		Window:     opts.Window,
		KeyOf:      opts.KeyOf,
		Nulls:      er.NullReject,
		OnRowError: opts.OnRowError,
	})
	if err != nil {
		return sum, err
	}
	batchSize := opts.Batch
	if batchSize <= 0 {
		batchSize = 256
	}
	var batch []pipeline.Update
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		results, bsum, err := u.Apply(batch)
		batch = batch[:0]
		if err != nil {
			return err
		}
		addSummary(&sum, &bsum)
		if opts.Sink != nil {
			for _, r := range results {
				if err := opts.Sink(r); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for {
		ie, err := es.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return sum, err
		}
		batch = append(batch, pipeline.Update{Key: es.LastKey(), Tuples: ie.Tuples()})
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return sum, err
			}
		}
	}
	if err := flush(); err != nil {
		return sum, err
	}
	sum.Elapsed = time.Since(start)
	return sum, nil
}

// addSummary folds one batch's summary into the running total; Elapsed
// is the caller's to measure (batch times overlap nothing — they are
// sequential — but the seed's wall clock includes the reads between).
func addSummary(dst, src *pipeline.Summary) {
	dst.Entities += src.Entities
	dst.Errors += src.Errors
	dst.NotCR += src.NotCR
	dst.Complete += src.Complete
	dst.WithCandidates += src.WithCandidates
	dst.Incomplete += src.Incomplete
	dst.AttrsDeduced += src.AttrsDeduced
	dst.AttrsTotal += src.AttrsTotal
	dst.Checks += src.Checks
}
