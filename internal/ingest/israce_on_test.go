//go:build race

package ingest_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
