//go:build !race

package ingest_test

// raceEnabled reports whether the race detector is compiled in; the
// memory-guard test skips under it (instrumentation multiplies heap use
// and the guard measures production allocation behaviour).
const raceEnabled = false
