package ingest_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/csvio"
	"repro/internal/er"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/topk"
)

// fingerprint renders everything a Result exposes for one entity, so
// equality means byte-identical per-entity output (the pipeline suite's
// idiom).
func fingerprint(r pipeline.Result) string {
	if r.Err != nil {
		return "err:" + r.Err.Error()
	}
	s := fmt.Sprintf("cr=%v conflict=%q", r.Deduction.CR, r.Deduction.Conflict)
	if r.Deduction.CR {
		s += " target=" + r.Deduction.Target.Key()
	}
	for _, c := range r.Candidates {
		s += fmt.Sprintf(" cand=%s@%.6f", c.Tuple.Key(), c.Score)
	}
	s += fmt.Sprintf(" checks=%d pops=%d gen=%d", r.Stats.Checks, r.Stats.Pops, r.Stats.Generated)
	return s
}

// datasetCSV renders a generated dataset's tuples as one CSV relation;
// shuffle randomizes row order across entities (seeded).
func datasetCSV(t *testing.T, ds *gen.Dataset, shuffle int64) string {
	t.Helper()
	var tuples []*model.Tuple
	for _, e := range ds.Entities {
		tuples = append(tuples, e.Instance.Tuples()...)
	}
	if shuffle != 0 {
		rng := rand.New(rand.NewSource(shuffle))
		rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
	}
	var buf bytes.Buffer
	if err := csvio.WriteRelation(&buf, ds.Schema, tuples); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func testConfig(ds *gen.Dataset, workers int) pipeline.Config {
	return pipeline.Config{Master: ds.Master, Rules: ds.Rules, Workers: workers,
		TopK: 3, Pref: topk.Preference{MaxChecks: 2000}}
}

// materialized is the pre-PR-9 path: read everything, group, run.
func materialized(t *testing.T, csvText string, cfg pipeline.Config) ([]pipeline.Result, pipeline.Summary) {
	t.Helper()
	schema, tuples, err := csvio.ReadRelation(strings.NewReader(csvText), "rel")
	if err != nil {
		t.Fatal(err)
	}
	ents, err := er.GroupBy(tuples, schema, "name")
	if err != nil {
		t.Fatal(err)
	}
	results, sum, err := pipeline.Run(ents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return results, sum
}

// TestStreamCSVEquivalence is invariant 10: for run-length input,
// streaming ingest is byte-identical to the materialized run for every
// window size — 1, 2, 7, and unbounded (run under -race in CI).
func TestStreamCSVEquivalence(t *testing.T) {
	cfg := gen.MedConfig()
	cfg.NumEntities = 25
	ds := gen.Generate(cfg)
	csvText := datasetCSV(t, ds, 0) // entity order: run-length input
	pcfg := testConfig(ds, 4)
	wantResults, wantSum := materialized(t, csvText, pcfg)

	for _, w := range []er.Window{
		{MaxEntities: 1},
		{MaxEntities: 2},
		{MaxEntities: 7},
		{}, // unbounded
		{MaxBytes: 1},
	} {
		var got []pipeline.Result
		sum, err := ingest.StreamCSV(strings.NewReader(csvText), "rel",
			ingest.Options{By: "name", Window: w}, pcfg,
			func(r pipeline.Result) error { got = append(got, r); return nil })
		if err != nil {
			t.Fatalf("window %+v: %v", w, err)
		}
		if len(got) != len(wantResults) {
			t.Fatalf("window %+v: %d results, want %d", w, len(got), len(wantResults))
		}
		for i := range got {
			if got[i].Index != i {
				t.Fatalf("window %+v: result %d has Index %d", w, i, got[i].Index)
			}
			if fingerprint(got[i]) != fingerprint(wantResults[i]) {
				t.Errorf("window %+v entity %d:\nstream %s\nbatch  %s",
					w, i, fingerprint(got[i]), fingerprint(wantResults[i]))
			}
		}
		sum.Elapsed, wantSum.Elapsed = 0, 0
		if sum != wantSum {
			t.Errorf("window %+v summary %+v, want %+v", w, sum, wantSum)
		}
	}
}

// TestStreamCSVShuffledUnbounded: with no window, any row order is
// byte-identical to the materialized run over the same (shuffled) CSV.
func TestStreamCSVShuffledUnbounded(t *testing.T) {
	cfg := gen.MedConfig()
	cfg.NumEntities = 15
	ds := gen.Generate(cfg)
	csvText := datasetCSV(t, ds, 7)
	pcfg := testConfig(ds, 4)
	wantResults, wantSum := materialized(t, csvText, pcfg)

	var got []pipeline.Result
	sum, err := ingest.StreamCSV(strings.NewReader(csvText), "rel",
		ingest.Options{By: "name"}, pcfg,
		func(r pipeline.Result) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantResults) {
		t.Fatalf("%d results, want %d", len(got), len(wantResults))
	}
	for i := range got {
		if fingerprint(got[i]) != fingerprint(wantResults[i]) {
			t.Errorf("entity %d:\nstream %s\nbatch  %s", i, fingerprint(got[i]), fingerprint(wantResults[i]))
		}
	}
	sum.Elapsed, wantSum.Elapsed = 0, 0
	if sum != wantSum {
		t.Errorf("summary %+v, want %+v", sum, wantSum)
	}
}

// TestStreamCSVWindowRefusal: input too disordered for the window must
// refuse with a WindowError — never succeed with different results.
func TestStreamCSVWindowRefusal(t *testing.T) {
	cfg := gen.MedConfig()
	cfg.NumEntities = 15
	ds := gen.Generate(cfg)
	csvText := datasetCSV(t, ds, 7) // shuffled: keys interleave
	pcfg := testConfig(ds, 4)
	_, err := ingest.StreamCSV(strings.NewReader(csvText), "rel",
		ingest.Options{By: "name", Window: er.Window{MaxEntities: 2}}, pcfg,
		func(r pipeline.Result) error { return nil })
	var we *er.WindowError
	if !errors.As(err, &we) {
		t.Fatalf("shuffled input at window 2: want WindowError, got %v", err)
	}
}

// TestStreamCSVSkipsBadRows: OnRowError-skip drops the row, keeps the
// entity, and the rest of the run matches a materialized run over the
// good rows.
func TestStreamCSVSkipsBadRows(t *testing.T) {
	cfg := gen.MedConfig()
	cfg.NumEntities = 5
	ds := gen.Generate(cfg)
	csvText := datasetCSV(t, ds, 0)
	lines := strings.Split(strings.TrimRight(csvText, "\n"), "\n")
	// Inject a ragged row inside the second entity's run.
	bad := append([]string{}, lines[:4]...)
	bad = append(bad, "ragged")
	bad = append(bad, lines[4:]...)
	badCSV := strings.Join(bad, "\n") + "\n"

	pcfg := testConfig(ds, 2)
	wantResults, _ := materialized(t, csvText, pcfg)
	var skipped int
	var got []pipeline.Result
	_, err := ingest.StreamCSV(strings.NewReader(badCSV), "rel",
		ingest.Options{By: "name", Window: er.Window{MaxEntities: 2},
			OnRowError: func(err error) error {
				if !csvio.IsRowError(err) {
					return err
				}
				skipped++
				return nil
			}}, pcfg,
		func(r pipeline.Result) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped %d rows, want 1", skipped)
	}
	if len(got) != len(wantResults) {
		t.Fatalf("%d results, want %d", len(got), len(wantResults))
	}
	for i := range got {
		if fingerprint(got[i]) != fingerprint(wantResults[i]) {
			t.Errorf("entity %d differs after skipped row", i)
		}
	}
	// Without a handler the same input aborts.
	_, err = ingest.StreamCSV(strings.NewReader(badCSV), "rel",
		ingest.Options{By: "name"}, pcfg, func(pipeline.Result) error { return nil })
	if !csvio.IsRowError(err) {
		t.Fatalf("nil handler should abort with the row error, got %v", err)
	}
}

func TestRunLength(t *testing.T) {
	cfg := gen.MedConfig()
	cfg.NumEntities = 10
	ds := gen.Generate(cfg)
	sorted := datasetCSV(t, ds, 0)
	shuffled := datasetCSV(t, ds, 3)
	if ok, err := ingest.RunLength(strings.NewReader(sorted), "rel", "name"); err != nil || !ok {
		t.Fatalf("entity-ordered input: RunLength = %v, %v", ok, err)
	}
	if ok, err := ingest.RunLength(strings.NewReader(shuffled), "rel", "name"); err != nil || ok {
		t.Fatalf("shuffled input: RunLength = %v, %v", ok, err)
	}
	if ok, err := ingest.RunLength(strings.NewReader("id,v\n1,a\n,b\n1,c\n"), "rel", "id"); err != nil || ok {
		t.Fatalf("null-split run should not count as contiguous: %v, %v", ok, err)
	}
	if ok, err := ingest.RunLength(strings.NewReader("id,v\n1,a\n\"x\n1,c\n"), "rel", "id"); err != nil || !ok {
		t.Fatalf("bad rows should be skipped by detection: %v, %v", ok, err)
	}
	var ue *er.UnknownAttrError
	if _, err := ingest.RunLength(strings.NewReader(sorted), "rel", "nope"); !errors.As(err, &ue) {
		t.Fatalf("unknown attr: %v", err)
	}
}

// TestSeedUpdaterEquivalence: a streamed seed leaves the updater in the
// same state — same per-entity results, same summary totals, same
// snapshot — as the materialized GroupUpdates + single Apply it
// replaces.
func TestSeedUpdaterEquivalence(t *testing.T) {
	cfg := gen.MedConfig()
	cfg.NumEntities = 20
	ds := gen.Generate(cfg)
	csvText := datasetCSV(t, ds, 0)
	keyOf := func(v model.Value) (string, error) { return v.Key(), nil }

	// Materialized seed.
	schemaM, tuplesM, err := csvio.ReadRelation(strings.NewReader(csvText), "rel")
	if err != nil {
		t.Fatal(err)
	}
	pcfgM := testConfig(ds, 4)
	uM, err := pipeline.NewUpdater(schemaM, pcfgM)
	if err != nil {
		t.Fatal(err)
	}
	ups, _, err := pipeline.GroupUpdates(tuplesM, schemaM, "name", keyOf)
	if err != nil {
		t.Fatal(err)
	}
	wantResults, wantSum, err := uM.Apply(ups)
	if err != nil {
		t.Fatal(err)
	}

	// Streamed seed, small batches so several Apply calls happen.
	it, err := csvio.NewTupleIterator(strings.NewReader(csvText), "rel")
	if err != nil {
		t.Fatal(err)
	}
	pcfgS := testConfig(ds, 4)
	uS, err := pipeline.NewUpdater(it.Schema(), pcfgS)
	if err != nil {
		t.Fatal(err)
	}
	var got []pipeline.Result
	sum, err := ingest.SeedUpdater(uS, it, ingest.SeedOptions{
		By: "name", KeyOf: keyOf, Window: er.Window{MaxEntities: 1}, Batch: 3,
		Sink: func(r pipeline.Result) error { got = append(got, r); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(wantResults) {
		t.Fatalf("%d results, want %d", len(got), len(wantResults))
	}
	for i := range got {
		if got[i].Key != wantResults[i].Key {
			t.Fatalf("result %d key %q, want %q", i, got[i].Key, wantResults[i].Key)
		}
		if fingerprint(got[i]) != fingerprint(wantResults[i]) {
			t.Errorf("entity %q:\nstream %s\nbatch  %s",
				got[i].Key, fingerprint(got[i]), fingerprint(wantResults[i]))
		}
	}
	sum.Elapsed, wantSum.Elapsed = 0, 0
	if sum != wantSum {
		t.Errorf("summary %+v, want %+v", sum, wantSum)
	}
	// Same live state: snapshots agree key for key.
	keysM, snapM, _, err := uM.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	keysS, snapS, _, err := uS.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(keysM) != len(keysS) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(keysM), len(keysS))
	}
	for i := range keysM {
		if keysM[i] != keysS[i] {
			t.Fatalf("snapshot key %d: %q vs %q", i, keysS[i], keysM[i])
		}
		if fingerprint(snapS[i]) != fingerprint(snapM[i]) {
			t.Errorf("snapshot entity %q differs", keysM[i])
		}
	}
}

// TestSeedUpdaterNullIdentifier: a null routing key aborts the seed.
func TestSeedUpdaterNullIdentifier(t *testing.T) {
	it, err := csvio.NewTupleIterator(strings.NewReader("name,v\na,1\n,2\n"), "rel")
	if err != nil {
		t.Fatal(err)
	}
	u, err := pipeline.NewUpdater(it.Schema(), pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ingest.SeedUpdater(u, it, ingest.SeedOptions{By: "name"})
	if err == nil || !strings.Contains(err.Error(), "null") {
		t.Fatalf("want null-identifier rejection, got %v", err)
	}
}
