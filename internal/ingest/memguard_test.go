package ingest_test

// The memory guard: streaming ingest's peak heap must be flat in row
// count. A synthetic relation is generated lazily by an io.Reader — the
// CSV text itself never exists in memory either — and ingested through
// the full chain with a bounded window; the peak HeapAlloc for 2M rows
// must stay within 2× the 100k-row peak (ISSUE 9's acceptance bound).
// The materialized path, by construction, is linear in rows — that
// contrast is what BenchmarkStreamIngest records into BENCH_pr9.json.

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/er"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/rule"
)

// synthCSV lazily generates a run-length CSV relation: header
// "id,ts,val", then rows/run consecutive rows per entity key. It never
// holds more than one row in memory.
type synthCSV struct {
	rows, run int
	i         int // rows emitted
	buf       []byte
	header    bool
}

func newSynthCSV(rows, run int) *synthCSV { return &synthCSV{rows: rows, run: run} }

func (s *synthCSV) Read(p []byte) (int, error) {
	if !s.header {
		s.buf = append(s.buf, "id,ts,val\n"...)
		s.header = true
	}
	for len(s.buf) < len(p) && s.i < s.rows {
		s.buf = fmt.Appendf(s.buf, "e%08d,%d,v%d\n", s.i/s.run, s.i%s.run, s.i%97)
		s.i++
	}
	if len(s.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.buf)
	s.buf = s.buf[:copy(s.buf, s.buf[n:])]
	return n, nil
}

// peakHeapDuring samples HeapAlloc while f runs and returns the highest
// reading observed.
func peakHeapDuring(f func()) uint64 {
	runtime.GC()
	stop := make(chan struct{})
	var peak uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	f()
	close(stop)
	wg.Wait()
	return peak
}

// ingestRows streams a synthetic relation of the given size through the
// full chain (trivial rule set — the guard measures ingest, not chase
// depth) and returns the run's peak heap.
func ingestRows(t *testing.T, rows int) uint64 {
	t.Helper()
	schema, err := model.NewSchema("synth", "id", "ts", "val")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := rule.NewSet(schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.Config{Rules: rules, Workers: 2}
	const run = 200
	var entities int
	return peakHeapDuring(func() {
		sum, err := ingest.StreamCSV(newSynthCSV(rows, run), "synth",
			ingest.Options{By: "id", Window: er.Window{MaxEntities: 64}}, cfg,
			func(r pipeline.Result) error { entities++; return nil })
		if err != nil {
			t.Fatal(err)
		}
		if want := (rows + run - 1) / run; entities != want || sum.Entities != want {
			t.Fatalf("%d rows: %d entities (summary %d), want %d", rows, entities, sum.Entities, want)
		}
	})
}

// TestStreamIngestMemoryGuard is the acceptance bound: peak heap for a
// 2M-row ingest stays within 2× the 100k-row peak. (The only state
// that grows with the relation at all is per distinct VALUE, not per
// row: the grouper's sealed-key guard — 8 hashed bytes per entity —
// and the value dictionary's distinct-id entries; the 2× budget
// absorbs both.)
func TestStreamIngestMemoryGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts heap accounting")
	}
	if testing.Short() {
		t.Skip("2M-row ingest in -short mode")
	}
	small := ingestRows(t, 100_000)
	big := ingestRows(t, 2_000_000)
	t.Logf("peak HeapAlloc: 100k rows = %.1f MiB, 2M rows = %.1f MiB (%.2fx)",
		float64(small)/(1<<20), float64(big)/(1<<20), float64(big)/float64(small))
	if big > 2*small {
		t.Fatalf("peak heap grew with row count: 100k rows peaked at %d bytes, 2M rows at %d (> 2x)",
			small, big)
	}
}

// TestSynthCSVWellFormed keeps the generator honest: a prefix parses
// into exactly the expected entity runs.
func TestSynthCSVWellFormed(t *testing.T) {
	var sb strings.Builder
	if _, err := io.Copy(&sb, newSynthCSV(100, 40)); err != nil {
		t.Fatal(err)
	}
	ok, err := ingest.RunLength(strings.NewReader(sb.String()), "synth", "id")
	if err != nil || !ok {
		t.Fatalf("synthetic CSV should be run-length: %v %v", ok, err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 101 {
		t.Fatalf("%d lines, want 101", lines)
	}
}
