package er_test

import (
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/csvio"
	"repro/internal/er"
	"repro/internal/model"
)

// sliceSource replays a fixed tuple slice, optionally injecting a
// recoverable error before a given index.
type sliceSource struct {
	tuples []*model.Tuple
	i      int
	errAt  int // inject errInjected before tuple errAt (-1: never)
	erred  bool
}

var errInjected = errors.New("injected row error")

func (s *sliceSource) Next() (*model.Tuple, error) {
	if s.i == s.errAt && !s.erred {
		s.erred = true
		return nil, errInjected
	}
	if s.i >= len(s.tuples) {
		return nil, io.EOF
	}
	t := s.tuples[s.i]
	s.i++
	return t, nil
}

// mkTuples builds a one-key-one-value relation from "key:val" specs;
// "null:val" rows carry a null key.
func mkTuples(t *testing.T, specs ...string) (*model.Schema, []*model.Tuple) {
	t.Helper()
	s, err := model.NewSchema("r", "id", "val")
	if err != nil {
		t.Fatal(err)
	}
	var out []*model.Tuple
	for _, spec := range specs {
		k, v, _ := strings.Cut(spec, ":")
		tu := model.NewTuple(s)
		tu.SetAt(0, model.Parse(k))
		tu.SetAt(1, model.Parse(v))
		out = append(out, tu)
	}
	return s, out
}

func drain(t *testing.T, es *er.EntityStream) []*model.EntityInstance {
	t.Helper()
	var out []*model.EntityInstance
	for {
		ie, err := es.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ie)
	}
}

// instancesEqual demands byte-identical grouping: same entity count,
// same per-entity tuples in the same order.
func instancesEqual(a, b []*model.EntityInstance) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ta, tb := a[i].Tuples(), b[i].Tuples()
		if len(ta) != len(tb) {
			return false
		}
		for j := range ta {
			if !ta[j].EqualTo(tb[j]) {
				return false
			}
		}
	}
	return true
}

// TestStreamGroupByEquivalence: for sorted (run-length) input, every
// window size — including 1 — reproduces GroupBy exactly.
func TestStreamGroupByEquivalence(t *testing.T) {
	s, tuples := mkTuples(t,
		"a:1", "a:2", "null:x", "b:3", "b:4", "b:5", "null:y", "c:6",
	)
	want, err := er.GroupBy(tuples, s, "id")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []er.Window{
		{}, // unbounded
		{MaxEntities: 1},
		{MaxEntities: 2},
		{MaxEntities: 7},
		{MaxBytes: 1}, // forces per-entity seal, newest survives
		{MaxEntities: 3, MaxBytes: 200},
	} {
		es, err := er.StreamGroupBy(&sliceSource{tuples: tuples, errAt: -1}, s, "id", er.StreamOpts{Window: w})
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, es)
		if !instancesEqual(got, want) {
			t.Errorf("window %+v: streaming differs from GroupBy: %d vs %d entities", w, len(got), len(want))
		}
	}
}

// TestStreamGroupByUnboundedMatchesAnyOrder: with no window, any input
// order (even adversarial) reproduces GroupBy.
func TestStreamGroupByUnboundedMatchesAnyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var specs []string
	for i := 0; i < 200; i++ {
		keys := []string{"a", "b", "c", "d", "null"}
		specs = append(specs, keys[rng.Intn(len(keys))]+":v")
	}
	s, tuples := mkTuples(t, specs...)
	want, err := er.GroupBy(tuples, s, "id")
	if err != nil {
		t.Fatal(err)
	}
	es, err := er.StreamGroupBy(&sliceSource{tuples: tuples, errAt: -1}, s, "id", er.StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, es); !instancesEqual(got, want) {
		t.Fatal("unbounded streaming differs from GroupBy")
	}
}

// TestStreamGroupByWindowError: a key reappearing after its entity was
// sealed must refuse — never silently split the entity.
func TestStreamGroupByWindowError(t *testing.T) {
	s, tuples := mkTuples(t, "a:1", "b:2", "c:3", "a:4")
	es, err := er.StreamGroupBy(&sliceSource{tuples: tuples, errAt: -1}, s, "id",
		er.StreamOpts{Window: er.Window{MaxEntities: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var we *er.WindowError
	var got []*model.EntityInstance
	for {
		ie, err := es.Next()
		if err != nil {
			if !errors.As(err, &we) {
				t.Fatalf("want WindowError, got %v", err)
			}
			break
		}
		got = append(got, ie)
	}
	if we.Key != model.Parse("a").Key() || we.Tuple != 4 {
		t.Fatalf("WindowError = %+v, want key a at tuple 4", we)
	}
	// Sticky: the stream stays dead.
	if _, err := es.Next(); !errors.As(err, &we) {
		t.Fatalf("error should be sticky, got %v", err)
	}
	// And with a window of 3 the same input succeeds.
	es2, _ := er.StreamGroupBy(&sliceSource{tuples: tuples, errAt: -1}, s, "id",
		er.StreamOpts{Window: er.Window{MaxEntities: 3}})
	want, _ := er.GroupBy(tuples, s, "id")
	if got := drain(t, es2); !instancesEqual(got, want) {
		t.Fatal("window 3 should group this input exactly")
	}
}

// TestStreamGroupByRaggedRowResume is the ragged-row contract: a bad
// row skips the row, not the entity — the entity keeps accumulating
// across the error, and the grouping matches GroupBy over the good rows.
func TestStreamGroupByRaggedRowResume(t *testing.T) {
	s, tuples := mkTuples(t, "a:1", "a:2", "b:3")
	var seen []error
	es, err := er.StreamGroupBy(&sliceSource{tuples: tuples, errAt: 1}, s, "id", er.StreamOpts{
		Window:     er.Window{MaxEntities: 1},
		OnRowError: func(err error) error { seen = append(seen, err); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, es)
	want, _ := er.GroupBy(tuples, s, "id")
	if !instancesEqual(got, want) {
		t.Fatalf("grouping after skipped row differs: got %d entities", len(got))
	}
	if got[0].Size() != 2 {
		t.Fatalf("entity a should keep both tuples across the bad row, has %d", got[0].Size())
	}
	if len(seen) != 1 || !errors.Is(seen[0], errInjected) {
		t.Fatalf("handler saw %v", seen)
	}
	// Nil handler: same injection aborts the stream.
	es2, _ := er.StreamGroupBy(&sliceSource{tuples: tuples, errAt: 1}, s, "id", er.StreamOpts{})
	if _, err := es2.Next(); !errors.Is(err, errInjected) {
		t.Fatalf("nil handler should abort with the row error, got %v", err)
	}
}

// TestStreamGroupByRaggedCSV drives the resume contract end to end
// through a real csvio.TupleIterator with a malformed row inside an
// entity's run.
func TestStreamGroupByRaggedCSV(t *testing.T) {
	const in = "id,val\na,1\na\na,2\nb,3\n" // row 3 is ragged, inside entity a
	it, err := csvio.NewTupleIterator(strings.NewReader(in), "r")
	if err != nil {
		t.Fatal(err)
	}
	var skipped []error
	es, err := er.StreamGroupBy(it, it.Schema(), "id", er.StreamOpts{
		Window: er.Window{MaxEntities: 1},
		OnRowError: func(err error) error {
			if !csvio.IsRowError(err) {
				return err
			}
			skipped = append(skipped, err)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, es)
	if len(got) != 2 || got[0].Size() != 2 || got[1].Size() != 1 {
		t.Fatalf("want entities a(2 tuples), b(1 tuple); got %d entities", len(got))
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0].Error(), "row 3") {
		t.Fatalf("skipped = %v", skipped)
	}
}

func TestStreamGroupByNullReject(t *testing.T) {
	s, tuples := mkTuples(t, "a:1", "null:2")
	es, err := er.StreamGroupBy(&sliceSource{tuples: tuples, errAt: -1}, s, "id",
		er.StreamOpts{Nulls: er.NullReject})
	if err != nil {
		t.Fatal(err)
	}
	_, err = es.Next()
	if err == nil || !strings.Contains(err.Error(), "tuple 2 has a null id value") {
		t.Fatalf("want null rejection naming tuple 2, got %v", err)
	}
}

func TestStreamGroupByKeyOfAndLastKey(t *testing.T) {
	s, tuples := mkTuples(t, "a:1", "b:2")
	es, err := er.StreamGroupBy(&sliceSource{tuples: tuples, errAt: -1}, s, "id", er.StreamOpts{
		KeyOf: func(v model.Value) (string, error) { return "k/" + v.String(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for {
		_, err := es.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, es.LastKey())
	}
	if len(keys) != 2 || keys[0] != "k/a" || keys[1] != "k/b" {
		t.Fatalf("keys = %v", keys)
	}
	// KeyOf error aborts.
	es2, _ := er.StreamGroupBy(&sliceSource{tuples: tuples, errAt: -1}, s, "id", er.StreamOpts{
		KeyOf: func(v model.Value) (string, error) { return "", errors.New("bad key") },
	})
	if _, err := es2.Next(); err == nil || err.Error() != "bad key" {
		t.Fatalf("want KeyOf error, got %v", err)
	}
}

func TestStreamGroupByUnknownAttr(t *testing.T) {
	s, tuples := mkTuples(t, "a:1")
	_, err := er.StreamGroupBy(&sliceSource{tuples: tuples, errAt: -1}, s, "nope", er.StreamOpts{})
	var ue *er.UnknownAttrError
	if !errors.As(err, &ue) || ue.Attr != "nope" {
		t.Fatalf("want UnknownAttrError{nope}, got %v", err)
	}
}
