package er_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/er"
	"repro/internal/model"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"jordan", "jordan", 0},
		{"jordan", "jordon", 1},
	}
	for _, c := range cases {
		if got := er.Levenshtein(c.a, c.b); got != c.d {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.d)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		d1 := er.Levenshtein(a, b)
		d2 := er.Levenshtein(b, a)
		if d1 != d2 {
			return false // symmetry
		}
		if a == b && d1 != 0 {
			return false // identity
		}
		return d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringSimilarity(t *testing.T) {
	if s := er.StringSimilarity("Michael Jordan", "michael jordan"); s != 1 {
		t.Errorf("case-insensitive similarity = %v", s)
	}
	if s := er.StringSimilarity("Michael Jordan", "Michael Jordon"); s < 0.9 {
		t.Errorf("near-identical similarity = %v", s)
	}
	if s := er.StringSimilarity("Michael Jordan", "Scottie Pippen"); s > 0.5 {
		t.Errorf("different names similarity = %v", s)
	}
	if s := er.StringSimilarity("", ""); s != 1 {
		t.Errorf("empty strings = %v", s)
	}
}

func TestJaccardTokens(t *testing.T) {
	if s := er.JaccardTokens("chicago bulls", "bulls chicago"); s != 1 {
		t.Errorf("token order must not matter: %v", s)
	}
	if s := er.JaccardTokens("chicago bulls", "chicago"); s != 0.5 {
		t.Errorf("Jaccard = %v, want 0.5", s)
	}
	if s := er.JaccardTokens("", ""); s != 1 {
		t.Errorf("empty = %v", s)
	}
}

func TestResolveClusters(t *testing.T) {
	s := model.MustSchema("r", "name", "city")
	tuples := []*model.Tuple{
		model.MustTuple(s, model.S("Michael Jordan"), model.S("Chicago")),
		model.MustTuple(s, model.S("michael jordan"), model.S("chicago")),
		model.MustTuple(s, model.S("Michael Jordon"), model.S("Chicago")),
		model.MustTuple(s, model.S("Scottie Pippen"), model.S("Chicago")),
		model.MustTuple(s, model.S("Scottie Pipen"), model.S("Chicago")),
	}
	out, err := er.Resolve(tuples, s, er.Config{KeyAttrs: []string{"name"}, Threshold: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("clusters = %d, want 2", len(out))
	}
	if out[0].Size() != 3 || out[1].Size() != 2 {
		t.Errorf("cluster sizes = %d, %d", out[0].Size(), out[1].Size())
	}
}

func TestResolveTransitivity(t *testing.T) {
	// a~b and b~c should merge all three even when a~c alone falls
	// below the threshold.
	s := model.MustSchema("r", "name")
	tuples := []*model.Tuple{
		model.MustTuple(s, model.S("abcdefgh")),
		model.MustTuple(s, model.S("abcdefgX")),
		model.MustTuple(s, model.S("abcdefYX")),
	}
	out, err := er.Resolve(tuples, s, er.Config{KeyAttrs: []string{"name"}, Threshold: 0.87})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("clusters = %d, want 1 via transitivity", len(out))
	}
}

func TestResolveBlocking(t *testing.T) {
	s := model.MustSchema("r", "name")
	var tuples []*model.Tuple
	for i := 0; i < 40; i++ {
		tuples = append(tuples, model.MustTuple(s, model.S(fmt.Sprintf("entity%02d record", i%10))))
	}
	out, err := er.Resolve(tuples, s, er.Config{
		KeyAttrs:    []string{"name"},
		BlockAttr:   "name",
		BlockPrefix: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Errorf("clusters = %d, want 10", len(out))
	}
	for _, ie := range out {
		if ie.Size() != 4 {
			t.Errorf("cluster size = %d, want 4", ie.Size())
		}
	}
}

func TestResolveNullKeys(t *testing.T) {
	s := model.MustSchema("r", "name", "phone")
	tuples := []*model.Tuple{
		model.MustTuple(s, model.S("Jordan"), model.NullValue()),
		model.MustTuple(s, model.S("Jordan"), model.S("555")),
		model.MustTuple(s, model.NullValue(), model.NullValue()),
	}
	out, err := er.Resolve(tuples, s, er.Config{KeyAttrs: []string{"name", "phone"}, Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// Tuples 0 and 1 merge (name matches, phone unknown counts 0.5);
	// the all-null tuple stays alone.
	if len(out) != 2 {
		t.Fatalf("clusters = %d, want 2", len(out))
	}
}

func TestResolveUnknownAttr(t *testing.T) {
	s := model.MustSchema("r", "name")
	if _, err := er.Resolve(nil, s, er.Config{KeyAttrs: []string{"zz"}}); err == nil {
		t.Errorf("unknown key attribute should fail")
	}
	if _, err := er.Resolve(nil, s, er.Config{KeyAttrs: []string{"name"}, BlockAttr: "zz"}); err == nil {
		t.Errorf("unknown block attribute should fail")
	}
}

// TestResolveRecoversPlantedClusters: planted entities with typo'd keys
// are recovered.
func TestResolveRecoversPlantedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := model.MustSchema("r", "name")
	names := []string{"Paracetamol Forte", "Ibuprofen Extra", "Aspirin Cardio", "Vitamin C Plus"}
	var tuples []*model.Tuple
	want := map[int]int{}
	for i, base := range names {
		for k := 0; k < 5; k++ {
			name := base
			if k > 0 && rng.Intn(2) == 0 {
				// Introduce a single-character typo.
				r := []rune(name)
				pos := rng.Intn(len(r))
				r[pos] = 'x'
				name = string(r)
			}
			tuples = append(tuples, model.MustTuple(s, model.S(name)))
			want[i]++
		}
	}
	out, err := er.Resolve(tuples, s, er.Config{KeyAttrs: []string{"name"}, Threshold: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(names) {
		t.Fatalf("clusters = %d, want %d", len(out), len(names))
	}
	for i, ie := range out {
		if ie.Size() != 5 {
			t.Errorf("cluster %d size = %d, want 5", i, ie.Size())
		}
	}
}
