// Package er is the entity-resolution substrate: the paper assumes the
// entity instance Ie "is identified by entity resolution techniques"
// (Section 2.1, citing [Elmagarmid et al. TKDE'07; Naumann & Herschel
// 2010]) before relative accuracy is analysed. This package groups the
// tuples of a dirty relation into entity instances using blocking,
// attribute similarity and transitive merging (union-find), which is the
// standard pairwise-ER pipeline.
package er

import (
	"sort"
	"strings"

	"repro/internal/model"
)

// Levenshtein returns the edit distance between two strings.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func minInt(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// StringSimilarity returns a [0,1] similarity: 1 - normalised edit
// distance. Case-insensitive.
func StringSimilarity(a, b string) float64 {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if a == b {
		return 1
	}
	max := len([]rune(a))
	if l := len([]rune(b)); l > max {
		max = l
	}
	if max == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(max)
}

// JaccardTokens returns the Jaccard similarity of the whitespace token
// sets of two strings (case-insensitive).
func JaccardTokens(a, b string) float64 {
	ta := tokenSet(a)
	tb := tokenSet(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	inter := 0
	for t := range ta {
		if tb[t] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func tokenSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, t := range strings.Fields(strings.ToLower(s)) {
		out[t] = true
	}
	return out
}

// Config tunes the resolution pipeline.
type Config struct {
	// KeyAttrs are the attributes compared for identity; all must exist
	// in the schema.
	KeyAttrs []string
	// Threshold is the minimum average similarity over the key
	// attributes for two tuples to be merged; 0 means 0.85.
	Threshold float64
	// BlockAttr optionally restricts comparisons to tuples sharing a
	// blocking key: the first BlockPrefix runes of this attribute,
	// lower-cased. Empty means no blocking (all pairs compared).
	BlockAttr   string
	BlockPrefix int
	// Similarity compares two non-null values; nil defaults to
	// StringSimilarity on the String() forms.
	Similarity func(a, b model.Value) float64
}

// Resolve partitions the tuples of a relation into entity instances.
// Tuples are compared pairwise within blocks on the key attributes;
// pairs at or above the threshold are merged transitively (union-find).
// The returned instances preserve input order (each instance's tuples
// are in input order; instances are ordered by their first tuple).
func Resolve(tuples []*model.Tuple, s *model.Schema, cfg Config) ([]*model.EntityInstance, error) {
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.85
	}
	if cfg.Similarity == nil {
		cfg.Similarity = func(a, b model.Value) float64 {
			return StringSimilarity(a.String(), b.String())
		}
	}
	if cfg.BlockPrefix == 0 {
		cfg.BlockPrefix = 3
	}
	keyIdx := make([]int, 0, len(cfg.KeyAttrs))
	for _, a := range cfg.KeyAttrs {
		i := s.Index(a)
		if i < 0 {
			return nil, &UnknownAttrError{Attr: a}
		}
		keyIdx = append(keyIdx, i)
	}

	// Blocking.
	blocks := map[string][]int{}
	if cfg.BlockAttr != "" {
		bi := s.Index(cfg.BlockAttr)
		if bi < 0 {
			return nil, &UnknownAttrError{Attr: cfg.BlockAttr}
		}
		for i, t := range tuples {
			key := strings.ToLower(t.At(bi).String())
			if r := []rune(key); len(r) > cfg.BlockPrefix {
				key = string(r[:cfg.BlockPrefix])
			}
			blocks[key] = append(blocks[key], i)
		}
	} else {
		all := make([]int, len(tuples))
		for i := range all {
			all[i] = i
		}
		blocks[""] = all
	}

	uf := newUnionFind(len(tuples))
	blockKeys := make([]string, 0, len(blocks))
	for k := range blocks {
		blockKeys = append(blockKeys, k)
	}
	sort.Strings(blockKeys)
	for _, k := range blockKeys {
		idx := blocks[k]
		for x := 0; x < len(idx); x++ {
			for y := x + 1; y < len(idx); y++ {
				i, j := idx[x], idx[y]
				if uf.find(i) == uf.find(j) {
					continue
				}
				if similar(tuples[i], tuples[j], keyIdx, cfg) {
					uf.union(i, j)
				}
			}
		}
	}

	// Collect clusters in input order.
	groups := map[int][]int{}
	var order []int
	for i := range tuples {
		r := uf.find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}
	var out []*model.EntityInstance
	for _, r := range order {
		ie := model.NewEntityInstance(s)
		for _, i := range groups[r] {
			ie.MustAdd(tuples[i])
		}
		out = append(out, ie)
	}
	return out, nil
}

// GroupBy partitions the tuples of a relation into entity instances by
// exact equality on one attribute — the degenerate but common case where
// the data already carries a trustworthy entity identifier, so no
// similarity-based resolution is needed. Null-keyed tuples form one
// group per tuple (an unidentified tuple is its own entity). Instances
// preserve input order, like Resolve.
func GroupBy(tuples []*model.Tuple, s *model.Schema, attr string) ([]*model.EntityInstance, error) {
	i := s.Index(attr)
	if i < 0 {
		return nil, &UnknownAttrError{Attr: attr}
	}
	byKey := map[string]*model.EntityInstance{}
	var out []*model.EntityInstance
	for _, t := range tuples {
		v := t.At(i)
		if v.IsNull() {
			ie := model.NewEntityInstance(s)
			ie.MustAdd(t)
			out = append(out, ie)
			continue
		}
		k := v.Key()
		ie, ok := byKey[k]
		if !ok {
			ie = model.NewEntityInstance(s)
			byKey[k] = ie
			out = append(out, ie)
		}
		ie.MustAdd(t)
	}
	return out, nil
}

// similar averages the per-key similarities; a pair of nulls in a key
// contributes nothing, a null against a value contributes 0.5 (unknown).
func similar(t1, t2 *model.Tuple, keyIdx []int, cfg Config) bool {
	sum, n := 0.0, 0
	for _, k := range keyIdx {
		v1, v2 := t1.At(k), t2.At(k)
		switch {
		case v1.IsNull() && v2.IsNull():
			continue
		case v1.IsNull() || v2.IsNull():
			sum += 0.5
			n++
		default:
			sum += cfg.Similarity(v1, v2)
			n++
		}
	}
	if n == 0 {
		return false
	}
	return sum/float64(n) >= cfg.Threshold
}

// UnknownAttrError reports a key or blocking attribute missing from the
// schema.
type UnknownAttrError struct{ Attr string }

func (e *UnknownAttrError) Error() string {
	return "er: unknown attribute " + e.Attr
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
