package er

// Streaming exact-identifier grouping: StreamGroupBy is GroupBy over a
// pull source with a bounded working set. Entities are held open while
// their tuples may still arrive and sealed — emitted — the moment the
// window forces the oldest one out, so sorted (run-length) input
// streams at window 1 and mildly disordered input needs only a window
// as deep as its disorder. Emission order is first-appearance order,
// exactly GroupBy's, and every emitted instance is byte-identical to
// what GroupBy would have built; when the input is too disordered for
// the window — a key reappears after its entity was already emitted —
// the stream refuses with a *WindowError rather than ever producing a
// split entity.

import (
	"fmt"
	"io"

	"repro/internal/model"
)

// TupleSource is a pull-based tuple stream; Next returns io.EOF after
// the last tuple. csvio.TupleIterator satisfies it.
type TupleSource interface {
	Next() (*model.Tuple, error)
}

// Window bounds the streaming grouper's working set of open entities.
// The zero value is unbounded: nothing is emitted before EOF, which
// reproduces GroupBy for any input at GroupBy's memory cost.
type Window struct {
	// MaxEntities caps how many entities may be open at once; when a
	// new entity would exceed it, the oldest open entity is sealed and
	// emitted. 0 means no entity-count bound. 1 is run-length mode:
	// every key change seals the previous entity.
	MaxEntities int
	// MaxBytes caps the approximate bytes held by open entities'
	// tuples; past it the oldest open entities are sealed until under
	// the cap (the newest entity is never sealed by the byte bound, so
	// one oversized entity still groups correctly). 0 means no bound.
	MaxBytes int64
}

// WindowError reports input too disordered for the window: the named
// key reappeared after its entity had already been sealed and emitted.
// Emitting anyway would split the entity — producing results that
// differ from the materialized GroupBy — so the stream refuses instead.
// The fix is a larger window, or input sorted (run-length) on the
// grouping attribute.
type WindowError struct {
	Key    string // grouping key that reappeared
	Tuple  int    // 1-based tuple ordinal (not counting the header) of the reappearance
	Window Window // the bound that forced the early seal
}

func (e *WindowError) Error() string {
	return fmt.Sprintf("er: key %q reappeared at tuple %d after its entity was emitted; input exceeds the streaming window (%+v) — raise -window or sort the input on the grouping attribute", e.Key, e.Tuple, e.Window)
}

// NullPolicy decides what a null grouping value means to the streaming
// grouper.
type NullPolicy int

const (
	// NullSingleton makes each null-keyed tuple its own entity,
	// interleaved in input order — GroupBy's semantics.
	NullSingleton NullPolicy = iota
	// NullReject makes a null grouping value an error naming the tuple
	// — update routing semantics, where every tuple needs an identifier.
	NullReject
)

// StreamOpts tunes StreamGroupBy. The zero value is unbounded
// GroupBy-equivalent streaming.
type StreamOpts struct {
	Window Window
	// KeyOf renders a non-null grouping value to its entity key; nil
	// means model.Value.Key (GroupBy's key). An error aborts the stream.
	KeyOf func(model.Value) (string, error)
	// Nulls is the null-key policy (default NullSingleton).
	Nulls NullPolicy
	// OnRowError is consulted for every recoverable source error (e.g.
	// a csvio.RowError): return nil to skip that row and keep streaming,
	// or an error to abort with it. Nil aborts on any source error.
	OnRowError func(error) error
}

// openEntity is one entity still accepting tuples, plus the accounting
// the window needs.
type openEntity struct {
	key   string // "" for a null singleton (never matched)
	ie    *model.EntityInstance
	bytes int64
}

// EntityStream emits grouped entities as Next is called, pulling tuples
// from the source only as needed — the composition point between a
// TupleSource and a pipeline.EntitySource.
type EntityStream struct {
	src     TupleSource
	s       *model.Schema
	idx     int
	opts    StreamOpts
	open    []*openEntity          // FIFO by first appearance
	byKey   map[string]*openEntity // real-keyed open entities only
	sealed  []*openEntity          // emitted order, ready for Next
	seen    map[uint64]struct{}    // FNV-64a hashes of sealed keys
	bytes   int64                  // total open bytes
	tuple   int                    // 1-based count of source tuples consumed
	lastKey string
	srcDone bool
	err     error // sticky
}

// StreamGroupBy starts grouping the source's tuples into entity
// instances by exact equality on attr. It validates the attribute
// eagerly; tuples are pulled lazily by Next.
func StreamGroupBy(src TupleSource, s *model.Schema, attr string, opts StreamOpts) (*EntityStream, error) {
	i := s.Index(attr)
	if i < 0 {
		return nil, &UnknownAttrError{Attr: attr}
	}
	return &EntityStream{
		src:   src,
		s:     s,
		idx:   i,
		opts:  opts,
		byKey: map[string]*openEntity{},
		seen:  map[uint64]struct{}{},
	}, nil
}

// hashKey is FNV-1a over the key string: the sealed-key memory is 8
// bytes per entity instead of the key itself, so a long stream's
// reappearance guard grows by a word per entity, not a string. A
// 64-bit collision makes a fresh key look sealed and refuses with a
// spurious WindowError — conservative and deterministic (FNV is
// seedless), and at ~2^-64 per pair never a wrong result.
func hashKey(k string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return h
}

// LastKey returns the grouping key of the entity most recently returned
// by Next ("" for a null singleton).
func (es *EntityStream) LastKey() string { return es.lastKey }

// Next returns the next completed entity, in first-appearance order, or
// io.EOF after the last. Any other error is sticky: the stream is dead
// and Next keeps returning it.
func (es *EntityStream) Next() (*model.EntityInstance, error) {
	for {
		if es.err != nil {
			return nil, es.err
		}
		if len(es.sealed) > 0 {
			e := es.sealed[0]
			es.sealed[0] = nil
			es.sealed = es.sealed[1:]
			es.lastKey = e.key
			return e.ie, nil
		}
		if es.srcDone {
			if len(es.open) > 0 {
				es.sealN(len(es.open))
				continue
			}
			return nil, io.EOF
		}
		if err := es.pull(); err != nil {
			es.err = err
			return nil, err
		}
	}
}

// pull consumes one source tuple (or EOF) and updates the window.
func (es *EntityStream) pull() error {
	t, err := es.src.Next()
	if err == io.EOF {
		es.srcDone = true
		return nil
	}
	es.tuple++ // count attempted rows so errors and WindowError agree
	if err != nil {
		if es.opts.OnRowError != nil {
			if herr := es.opts.OnRowError(err); herr != nil {
				return herr
			}
			es.tuple-- // skipped row: not a tuple
			return nil
		}
		return err
	}

	v := t.At(es.idx)
	if v.IsNull() {
		if es.opts.Nulls == NullReject {
			return fmt.Errorf("er: tuple %d has a null %s value; streaming group-by with NullReject needs an identifier", es.tuple, es.s.Attr(es.idx))
		}
		ie := model.NewEntityInstance(es.s)
		ie.MustAdd(t)
		es.push(&openEntity{ie: ie, bytes: tupleBytes(t)})
		return nil
	}

	var k string
	if es.opts.KeyOf != nil {
		k, err = es.opts.KeyOf(v)
		if err != nil {
			return err
		}
	} else {
		k = v.Key()
	}

	oe, ok := es.byKey[k]
	if !ok {
		if _, gone := es.seen[hashKey(k)]; gone {
			return &WindowError{Key: k, Tuple: es.tuple, Window: es.opts.Window}
		}
		oe = &openEntity{key: k, ie: model.NewEntityInstance(es.s)}
		es.byKey[k] = oe
		es.push(oe)
	}
	oe.ie.MustAdd(t)
	b := tupleBytes(t)
	oe.bytes += b
	es.bytes += b
	es.enforce()
	return nil
}

// push appends a new open entity and applies the window.
func (es *EntityStream) push(oe *openEntity) {
	es.open = append(es.open, oe)
	es.bytes += oe.bytes
	es.enforce()
}

// enforce seals oldest-first until the window holds. The byte bound
// never seals the newest entity: one entity larger than MaxBytes must
// still group in full.
func (es *EntityStream) enforce() {
	w := es.opts.Window
	for len(es.open) > 0 {
		over := w.MaxEntities > 0 && len(es.open) > w.MaxEntities
		overBytes := w.MaxBytes > 0 && es.bytes > w.MaxBytes && len(es.open) > 1
		if !over && !overBytes {
			return
		}
		es.sealN(1)
	}
}

// sealN moves the n oldest open entities to the sealed (emit) queue.
func (es *EntityStream) sealN(n int) {
	for ; n > 0; n-- {
		oe := es.open[0]
		es.open[0] = nil
		es.open = es.open[1:]
		es.bytes -= oe.bytes
		if oe.key != "" {
			delete(es.byKey, oe.key)
			es.seen[hashKey(oe.key)] = struct{}{}
		}
		es.sealed = append(es.sealed, oe)
	}
}

// tupleBytes approximates a tuple's resident size for the byte bound:
// string payloads by length, everything else by a word, plus slice and
// header overhead. Precision doesn't matter — the bound is a memory
// ceiling, not an accounting ledger.
func tupleBytes(t *model.Tuple) int64 {
	n := int64(48) // tuple header + slice overhead, roughly
	for j := 0; j < t.Schema().Arity(); j++ {
		v := t.At(j)
		if v.Kind() == model.String {
			n += int64(len(v.String())) + 16
		} else {
			n += 8
		}
	}
	return n
}
