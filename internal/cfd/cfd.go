// Package cfd implements functional dependencies and constant
// conditional functional dependencies (CFDs, [Fan et al. TODS 2008]),
// the consistency formalism the paper builds on: Example 1 uses an FD
// and a constant CFD to show that consistent data can still be
// inaccurate, and the Remark of Section 2.1 shows how constant CFDs are
// expressed as form-(2) accuracy rules over a single-tuple master
// relation, so that the chase also enforces the consistency of the
// target tuple.
package cfd

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/rule"
)

// FD is a functional dependency X → Y over a schema.
type FD struct {
	Name string
	LHS  []string
	RHS  []string
}

// Validate checks the attribute references.
func (f *FD) Validate(s *model.Schema) error {
	if len(f.LHS) == 0 || len(f.RHS) == 0 {
		return fmt.Errorf("cfd: FD %s must have non-empty sides", f.Name)
	}
	for _, a := range append(append([]string(nil), f.LHS...), f.RHS...) {
		if !s.Has(a) {
			return fmt.Errorf("cfd: FD %s references unknown attribute %q", f.Name, a)
		}
	}
	return nil
}

// Violations returns the pairs of tuple indices (i < j) that agree on
// LHS (with no nulls) but differ on RHS.
func (f *FD) Violations(ie *model.EntityInstance) [][2]int {
	var out [][2]int
	s := ie.Schema()
	n := ie.Size()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if fdMatch(s, ie.Tuple(i), ie.Tuple(j), f.LHS) && !fdAgree(s, ie.Tuple(i), ie.Tuple(j), f.RHS) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

func fdMatch(s *model.Schema, t1, t2 *model.Tuple, attrs []string) bool {
	for _, a := range attrs {
		v1 := t1.At(s.Index(a))
		v2 := t2.At(s.Index(a))
		if v1.IsNull() || v2.IsNull() || !v1.Equal(v2) {
			return false
		}
	}
	return true
}

func fdAgree(s *model.Schema, t1, t2 *model.Tuple, attrs []string) bool {
	for _, a := range attrs {
		if !t1.At(s.Index(a)).Equal(t2.At(s.Index(a))) {
			return false
		}
	}
	return true
}

// String renders the FD as [A, B -> C].
func (f *FD) String() string {
	return fmt.Sprintf("[%s -> %s]", strings.Join(f.LHS, ", "), strings.Join(f.RHS, ", "))
}

// ConstantCFD is a constant conditional functional dependency: whenever
// a tuple matches every (attribute = constant) pattern on the left, the
// right attribute must carry the given constant. Example 1's
// [team = "Chicago Bulls" → arena = "United Center"].
type ConstantCFD struct {
	Name string
	When []Pattern
	Then Pattern
}

// Pattern is one (attribute = constant) condition.
type Pattern struct {
	Attr string
	Val  model.Value
}

// Validate checks the attribute references.
func (c *ConstantCFD) Validate(s *model.Schema) error {
	if len(c.When) == 0 {
		return fmt.Errorf("cfd: CFD %s needs at least one condition", c.Name)
	}
	for _, p := range append(append([]Pattern(nil), c.When...), c.Then) {
		if !s.Has(p.Attr) {
			return fmt.Errorf("cfd: CFD %s references unknown attribute %q", c.Name, p.Attr)
		}
		if p.Val.IsNull() {
			return fmt.Errorf("cfd: CFD %s uses a null constant", c.Name)
		}
	}
	return nil
}

// Violations returns the indices of tuples matching When but not Then.
func (c *ConstantCFD) Violations(ie *model.EntityInstance) []int {
	var out []int
	s := ie.Schema()
	for i, t := range ie.Tuples() {
		if c.matches(s, t) && !t.At(s.Index(c.Then.Attr)).Equal(c.Then.Val) {
			out = append(out, i)
		}
	}
	return out
}

func (c *ConstantCFD) matches(s *model.Schema, t *model.Tuple) bool {
	for _, p := range c.When {
		if !t.At(s.Index(p.Attr)).Equal(p.Val) {
			return false
		}
	}
	return true
}

// String renders the CFD as [team = "x" -> arena = "y"].
func (c *ConstantCFD) String() string {
	var conds []string
	for _, p := range c.When {
		conds = append(conds, fmt.Sprintf("%s = %s", p.Attr, p.Val.Quote()))
	}
	return fmt.Sprintf("[%s -> %s = %s]", strings.Join(conds, ", "), c.Then.Attr, c.Then.Val.Quote())
}

// Compile expresses a set of constant CFDs over one entity schema as
// form-(2) accuracy rules plus the synthetic master relation they match
// against, exactly as the Remark in Section 2.1 describes: one master
// tuple per CFD carrying the pattern constants, and one rule asserting
// that a target matching the condition attributes takes the consequence
// value. The returned master relation and rules can be merged into any
// specification so the chase also guarantees target consistency.
func Compile(s *model.Schema, cfds []*ConstantCFD) (*model.MasterRelation, []rule.Rule, error) {
	// The master schema holds every attribute any CFD mentions.
	seen := map[string]bool{}
	var attrs []string
	for _, c := range cfds {
		if err := c.Validate(s); err != nil {
			return nil, nil, err
		}
		for _, p := range c.When {
			if !seen[p.Attr] {
				seen[p.Attr] = true
				attrs = append(attrs, p.Attr)
			}
		}
		if !seen[c.Then.Attr] {
			seen[c.Then.Attr] = true
			attrs = append(attrs, c.Then.Attr)
		}
	}
	if len(attrs) == 0 {
		return nil, nil, fmt.Errorf("cfd: no CFDs to compile")
	}
	// A discriminator column pins each rule to its own pattern row, so
	// rules never ground against another CFD's constants.
	attrs = append([]string{"cfdid"}, attrs...)
	ms, err := model.NewSchema("cfd_master", attrs...)
	if err != nil {
		return nil, nil, err
	}
	im := model.NewMasterRelation(ms)
	var rules []rule.Rule
	for i, c := range cfds {
		id := model.S(fmt.Sprintf("cfd-%d", i))
		row := model.NewTuple(ms)
		row.Set("cfdid", id)
		conds := []rule.MasterCond{rule.CondMasterConst("cfdid", id)}
		for _, p := range c.When {
			row.Set(p.Attr, p.Val)
			// te[A] must match the pattern constant held by this row.
			conds = append(conds, rule.CondMaster(p.Attr, p.Attr))
		}
		row.Set(c.Then.Attr, c.Then.Val)
		im.MustAdd(row)
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("cfd%d", i)
		}
		rules = append(rules, &rule.Form2{
			RuleName:   name,
			Conds:      conds,
			TargetAttr: c.Then.Attr,
			MasterAttr: c.Then.Attr,
		})
	}
	return im, rules, nil
}
