package cfd_test

import (
	"testing"

	"repro/internal/cfd"
	"repro/internal/chase"
	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
)

// paperFD is Example 1's FD: [FN, MN, LN, league, rnds → totalPts].
func paperFD() *cfd.FD {
	return &cfd.FD{
		Name: "fd1",
		LHS:  []string{"FN", "MN", "LN", "league", "rnds"},
		RHS:  []string{"totalPts"},
	}
}

// paperCFD is Example 1's CFD: [team = "Chicago Bulls" → arena = "United Center"].
func paperCFD() *cfd.ConstantCFD {
	return &cfd.ConstantCFD{
		Name: "psi",
		When: []cfd.Pattern{{Attr: "team", Val: model.S("Chicago Bulls")}},
		Then: cfd.Pattern{Attr: "arena", Val: model.S("United Center")},
	}
}

// TestPaperExample1Consistent: the stat data of Table 1 satisfies both
// constraints — consistent yet inaccurate, the paper's opening point.
func TestPaperExample1Consistent(t *testing.T) {
	ie := paperdata.Stat()
	if err := paperFD().Validate(ie.Schema()); err != nil {
		t.Fatal(err)
	}
	if v := paperFD().Violations(ie); len(v) != 0 {
		t.Errorf("FD violations on stat: %v", v)
	}
	if err := paperCFD().Validate(ie.Schema()); err != nil {
		t.Fatal(err)
	}
	if v := paperCFD().Violations(ie); len(v) != 0 {
		t.Errorf("CFD violations on stat: %v", v)
	}
}

func TestFDViolationDetected(t *testing.T) {
	s := model.MustSchema("r", "a", "b")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("k"), model.I(1)))
	ie.MustAdd(model.MustTuple(s, model.S("k"), model.I(2)))
	fd := &cfd.FD{Name: "f", LHS: []string{"a"}, RHS: []string{"b"}}
	if v := fd.Violations(ie); len(v) != 1 || v[0] != [2]int{0, 1} {
		t.Errorf("violations = %v", v)
	}
	// Null LHS values never match.
	ie2 := model.NewEntityInstance(s)
	ie2.MustAdd(model.MustTuple(s, model.NullValue(), model.I(1)))
	ie2.MustAdd(model.MustTuple(s, model.NullValue(), model.I(2)))
	if v := fd.Violations(ie2); len(v) != 0 {
		t.Errorf("null LHS should not match: %v", v)
	}
}

func TestCFDViolationDetected(t *testing.T) {
	ie := paperdata.Stat()
	wrong := &cfd.ConstantCFD{
		Name: "w",
		When: []cfd.Pattern{{Attr: "team", Val: model.S("Chicago Bulls")}},
		Then: cfd.Pattern{Attr: "arena", Val: model.S("Regions Park")},
	}
	if v := wrong.Violations(ie); len(v) != 2 { // t2 and t3
		t.Errorf("violations = %v", v)
	}
}

func TestValidation(t *testing.T) {
	s := model.MustSchema("r", "a")
	bad := &cfd.FD{Name: "f", LHS: []string{"zz"}, RHS: []string{"a"}}
	if err := bad.Validate(s); err == nil {
		t.Errorf("unknown attribute should fail")
	}
	if err := (&cfd.FD{Name: "f"}).Validate(s); err == nil {
		t.Errorf("empty FD should fail")
	}
	badC := &cfd.ConstantCFD{When: []cfd.Pattern{{Attr: "a", Val: model.NullValue()}}, Then: cfd.Pattern{Attr: "a", Val: model.S("x")}}
	if err := badC.Validate(s); err == nil {
		t.Errorf("null constant should fail")
	}
}

// TestCompileIntoChase reproduces the Remark of Section 2.1: compiling
// the paper's CFD and chasing with it forces te[arena] once te[team] is
// known.
func TestCompileIntoChase(t *testing.T) {
	ie := paperdata.Stat()
	im, rules, err := cfd.Compile(ie.Schema(), []*cfd.ConstantCFD{paperCFD()})
	if err != nil {
		t.Fatal(err)
	}
	// Use only the CFD rules plus a template that fixes team.
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), rules...)
	if err != nil {
		t.Fatal(err)
	}
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: im, Rules: rs}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tpl := model.NewTuple(ie.Schema())
	tpl.Set("team", model.S("Chicago Bulls"))
	res := g.Run(tpl)
	if !res.CR {
		t.Fatalf("not CR: %s", res.Conflict)
	}
	if v, _ := res.Target.Get("arena"); !v.Equal(model.S("United Center")) {
		t.Errorf("te[arena] = %v, want United Center", v)
	}
	// A template contradicting the CFD must be rejected.
	bad := model.NewTuple(ie.Schema())
	bad.Set("team", model.S("Chicago Bulls"))
	bad.Set("arena", model.S("Regions Park"))
	if res := g.Run(bad); res.CR {
		t.Errorf("CFD-violating template should fail the chase")
	}
}

// TestCompileMultipleCFDs: two CFDs with overlapping attributes do not
// cross-contaminate thanks to the discriminator.
func TestCompileMultipleCFDs(t *testing.T) {
	s := model.MustSchema("r", "team", "arena", "city")
	c1 := &cfd.ConstantCFD{
		When: []cfd.Pattern{{Attr: "team", Val: model.S("A")}},
		Then: cfd.Pattern{Attr: "arena", Val: model.S("ArenaA")},
	}
	c2 := &cfd.ConstantCFD{
		When: []cfd.Pattern{{Attr: "team", Val: model.S("B")}},
		Then: cfd.Pattern{Attr: "arena", Val: model.S("ArenaB")},
	}
	im, rules, err := cfd.Compile(s, []*cfd.ConstantCFD{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if im.Size() != 2 || len(rules) != 2 {
		t.Fatalf("compiled %d rows, %d rules", im.Size(), len(rules))
	}
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("B"), model.NullValue(), model.S("x")))
	rs := rule.MustSet(s, im.Schema(), rules...)
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: im, Rules: rs}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run(nil)
	if !res.CR {
		t.Fatalf("not CR: %s", res.Conflict)
	}
	if v, _ := res.Target.Get("arena"); !v.Equal(model.S("ArenaB")) {
		t.Errorf("te[arena] = %v, want ArenaB", v)
	}
}
