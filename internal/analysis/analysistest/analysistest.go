// Package analysistest checks analyzers against expectation-annotated
// fixture packages, mirroring golang.org/x/tools/go/analysis/analysistest:
// fixtures live in testdata/src/<importpath>/ (so they can fake real
// import paths like repro/internal/chase), and every line that should
// be flagged carries a comment of the form
//
//	// want "regexp"
//	// want `regexp`
//
// with one quoted regexp per expected diagnostic on that line. The
// harness fails on diagnostics with no matching want, wants with no
// matching diagnostic, and type errors in the fixture itself (a fixture
// that does not compile tests nothing). //relacc:allow suppression is
// applied before matching — exactly as the real driver does — so
// near-miss fixtures can also pin the escape hatch's behaviour.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run loads each fixture package from testdata/src and verifies a's
// findings against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := load.Load(load.Config{Dir: filepath.Join(testdata, "src"), Tests: true}, paths...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", paths, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", paths)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s does not type-check: %v", pkg.Path, terr)
		}
		if len(pkg.TypeErrors) > 0 {
			continue
		}
		findings, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.Path, err)
		}
		checkExpectations(t, pkg, findings)
	}
}

// lineKey addresses one line of one fixture file.
type lineKey struct {
	file string
	line int
}

// want is one expected-diagnostic regexp, consumed by at most one
// finding.
type want struct {
	re       *regexp.Regexp
	consumed bool
}

// quoted matches one Go string literal — interpreted or raw — holding a
// want regexp.
var quoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// wantsOf extracts the want expectations from a fixture package's
// comments.
func wantsOf(t *testing.T, pkg *load.Package) map[lineKey][]*want {
	t.Helper()
	out := make(map[lineKey][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := regexp.MustCompile(`//\s*want\s+(.*)`).FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey{file: pos.Filename, line: pos.Line}
				qs := quoted.FindAllString(m[1], -1)
				if len(qs) == 0 {
					t.Errorf("%s:%d: malformed want comment (no quoted regexp): %s",
						pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, q := range qs {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// checkExpectations matches findings against wants, both directions.
func checkExpectations(t *testing.T, pkg *load.Package, findings []analysis.Finding) {
	t.Helper()
	wants := wantsOf(t, pkg)
	for _, f := range findings {
		key := lineKey{file: f.Pos.Filename, line: f.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.consumed && w.re.MatchString(f.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pkg.Path, f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.consumed {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none",
					key.file, key.line, w.re)
			}
		}
	}
}

// RunTree runs every analyzer over every package of the module rooted
// at dir and fails on any finding or type error — the "the real tree is
// clean" pin used by tree_test.go and, behind the scenes, the same code
// path relacc-lint exercises in CI.
func RunTree(t *testing.T, dir string, analyzers []*analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Load(load.Config{Dir: dir, Tests: true}, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
		findings, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
	if t.Failed() {
		t.Log("the repository tree must stay relacc-lint-clean; fix the finding or add a reviewed //relacc: directive")
	}
}
