package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Finding is one diagnostic from one analyzer, resolved to a file
// position — what the multichecker prints and the test harness matches.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Run applies each analyzer to one type-checked package and returns the
// surviving findings, sorted by position. Suppression is applied here,
// centrally: a //relacc:allow directive on a finding's line silences
// the named analyzers uniformly, so individual analyzers never need to
// know the escape hatch exists.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	allowed := AllowedLines(fset, files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				pos := fset.Position(d.Pos)
				if allowed[LineKey{File: pos.Filename, Line: pos.Line}][a.Name] {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
