// Package load type-checks Go packages from source for relacc-lint,
// standing in for golang.org/x/tools/go/packages in a build that must
// stay dependency-free (see internal/analysis).
//
// Module packages (anything under the module root) are parsed and
// type-checked from source; standard-library imports resolve through
// the stdlib's own source importer (go/importer "source"), which works
// offline against GOROOT/src. Cgo is disabled for the whole process so
// packages like net fall back to their pure-Go variants — fine for
// linting, which needs types, not a runnable build.
//
// Two layouts are supported:
//   - Module mode (Dir contains go.mod): import paths under the module
//     path map to subdirectories, patterns like ./... expand by
//     walking the tree (skipping testdata, vendor and hidden dirs).
//   - Testdata mode (no go.mod): any import path whose directory
//     exists under Dir is loaded from there — the GOPATH-style layout
//     analysistest uses, so fixture packages can fake real import
//     paths like repro/internal/chase.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Config tells Load where the code lives and what to include.
type Config struct {
	// Dir is the root directory: a module root (with go.mod) or a
	// testdata src root.
	Dir string
	// Tests includes each package's in-package _test.go files in the
	// analyzed (not the imported) variant, and adds external test
	// packages (package foo_test) as their own units.
	Tests bool
}

// Package is one type-checked unit handed to analyzers.
type Package struct {
	// Path is the import path ("repro/internal/chase"); external test
	// packages carry the source package's path plus "_test".
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems; analyzers still run
	// (on possibly partial information), the driver decides whether to
	// fail on them.
	TypeErrors []error
}

// Load type-checks the packages matching patterns. Patterns are
// directory-relative: "./..." (everything under Dir), "./x/..." or
// "./x" in module mode; bare import paths in testdata mode.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	ld, err := newLoader(cfg)
	if err != nil {
		return nil, err
	}
	dirs, err := ld.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		got, err := ld.analyze(dir)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", dir, err)
		}
		pkgs = append(pkgs, got...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// cgoOff disables cgo process-wide before any go/build or srcimporter
// lookup runs, so cgo-using stdlib packages (net, os/user) resolve to
// their pure-Go fallbacks instead of demanding a C toolchain.
var cgoOff = sync.OnceFunc(func() { build.Default.CgoEnabled = false })

type loader struct {
	cfg        Config
	modulePath string // "" in testdata mode
	fset       *token.FileSet
	ctxt       *build.Context
	std        types.Importer

	mu       sync.Mutex
	imported map[string]*types.Package // pure (no test files) module packages
	loading  map[string]bool           // cycle guard
}

func newLoader(cfg Config) (*loader, error) {
	cgoOff()
	abs, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	cfg.Dir = abs
	fset := token.NewFileSet()
	ld := &loader{
		cfg:      cfg,
		fset:     fset,
		ctxt:     &build.Default,
		std:      importer.ForCompiler(fset, "source", nil),
		imported: make(map[string]*types.Package),
		loading:  make(map[string]bool),
	}
	if data, err := os.ReadFile(filepath.Join(cfg.Dir, "go.mod")); err == nil {
		ld.modulePath = modulePathOf(string(data))
		if ld.modulePath == "" {
			return nil, fmt.Errorf("load: %s/go.mod has no module directive", cfg.Dir)
		}
	}
	return ld, nil
}

// modulePathOf extracts the module path from go.mod contents.
func modulePathOf(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// pathFor maps a module directory to its import path.
func (ld *loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.cfg.Dir, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if ld.modulePath == "" {
		return rel, nil // testdata mode: the relative path IS the import path
	}
	if rel == "." {
		return ld.modulePath, nil
	}
	return ld.modulePath + "/" + rel, nil
}

// dirFor maps an import path to its directory under the root, or ""
// when the path does not belong to this tree.
func (ld *loader) dirFor(path string) string {
	if ld.modulePath == "" {
		dir := filepath.Join(ld.cfg.Dir, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
		return ""
	}
	if path == ld.modulePath {
		return ld.cfg.Dir
	}
	if rest, ok := strings.CutPrefix(path, ld.modulePath+"/"); ok {
		return filepath.Join(ld.cfg.Dir, filepath.FromSlash(rest))
	}
	return ""
}

// expand resolves patterns to package directories.
func (ld *loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := ld.walk(ld.cfg.Dir, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			dir := ld.resolvePattern(root)
			if dir == "" {
				return nil, fmt.Errorf("load: pattern %q matches no directory", pat)
			}
			if err := ld.walk(dir, add); err != nil {
				return nil, err
			}
		default:
			dir := ld.resolvePattern(pat)
			if dir == "" {
				return nil, fmt.Errorf("load: pattern %q matches no directory", pat)
			}
			add(dir)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// resolvePattern maps one non-wildcard pattern (./x, an import path, or
// a directory) to a directory, or "".
func (ld *loader) resolvePattern(pat string) string {
	if strings.HasPrefix(pat, "./") || pat == "." {
		dir := filepath.Join(ld.cfg.Dir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
		return ""
	}
	return ld.dirFor(pat)
}

// walk visits every package directory under root, skipping testdata,
// vendor, and hidden or underscore-prefixed directories.
func (ld *loader) walk(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			add(path)
		}
		return nil
	})
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Import resolves one import path for go/types: module-tree packages
// from source (pure variant, cached), everything else through the
// stdlib source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("cgo is not supported by relacc-lint")
	}
	if dir := ld.dirFor(path); dir != "" {
		return ld.importSource(path, dir)
	}
	return ld.std.Import(path)
}

// importSource type-checks the pure (no test files) variant of one
// module package, for use as an import.
func (ld *loader) importSource(path, dir string) (*types.Package, error) {
	ld.mu.Lock()
	if pkg, ok := ld.imported[path]; ok {
		ld.mu.Unlock()
		return pkg, nil
	}
	if ld.loading[path] {
		ld.mu.Unlock()
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	ld.loading[path] = true
	ld.mu.Unlock()
	defer func() {
		ld.mu.Lock()
		delete(ld.loading, path)
		ld.mu.Unlock()
	}()

	bp, err := ld.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files, err := ld.parse(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: importerFunc(ld.Import)}
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	pkg, _ := conf.Check(path, ld.fset, files, nil)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, firstErr)
	}
	ld.mu.Lock()
	ld.imported[path] = pkg
	ld.mu.Unlock()
	return pkg, nil
}

// analyze builds the analyzed variant(s) of one package directory: the
// package itself (with in-package test files when cfg.Tests), plus the
// external test package when one exists.
func (ld *loader) analyze(dir string) ([]*Package, error) {
	path, err := ld.pathFor(dir)
	if err != nil {
		return nil, err
	}
	bp, err := ld.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	names := bp.GoFiles
	if ld.cfg.Tests {
		names = append(append([]string(nil), bp.GoFiles...), bp.TestGoFiles...)
	}
	var out []*Package
	pkg, err := ld.check(path, dir, names)
	if err != nil {
		return nil, err
	}
	out = append(out, pkg)
	if ld.cfg.Tests && len(bp.XTestGoFiles) > 0 {
		xpkg, err := ld.check(path+"_test", dir, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, xpkg)
	}
	return out, nil
}

// check parses and type-checks one file set as an analysis unit with
// full type information.
func (ld *loader) check(path, dir string, names []string) (*Package, error) {
	files, err := ld.parse(dir, names)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{Path: path, Fset: ld.fset, Files: files, Info: info}
	conf := types.Config{Importer: importerFunc(ld.Import)}
	conf.Error = func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) }
	tpkg, _ := conf.Check(path, ld.fset, files, info)
	pkg.Types = tpkg
	return pkg, nil
}

func (ld *loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
