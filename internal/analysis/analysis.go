// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface that relacc-lint's
// analyzers are written against.
//
// Why not the real thing: this repository builds in hermetic,
// network-isolated environments (CI included), so it deliberately has
// no external module requirements — go.mod must stay dependency-free.
// The subset here mirrors the upstream API shape (Analyzer, Pass,
// Diagnostic, Reportf, an analysistest-style harness) closely enough
// that each analyzer's Run function would compile against
// golang.org/x/tools/go/analysis with only import-path changes, so the
// suite can migrate to the real driver (and pick up stock passes like
// nilness and unusedwrite, which need x/tools' SSA and are therefore
// gated out of this offline build) the day a vendored copy is
// available. What vet already provides — copylocks, atomic argument
// misuse, printf — is NOT duplicated here; CI runs `go vet` alongside
// relacc-lint.
//
// The analyzers themselves live in internal/analysis/analyzers; the
// source loader that stands in for go/packages lives in
// internal/analysis/load; cmd/relacc-lint is the multichecker binary.
//
// # Directives
//
// Invariant exceptions are declared in the source they apply to, not in
// analyzer code, via magic comments (grep-able, reviewed like code):
//
//	//relacc:grounding-builder
//	    On a function declaration in package chase: the function is
//	    part of Grounding construction and may write Grounding fields.
//	//relacc:lock-held-over-deduction
//	    On a mutex struct field: holding this lock across deduction is
//	    part of the design (e.g. the per-entity lock that serialises
//	    extend+commit+re-deduce).
//	//relacc:allow <analyzer> [<analyzer>...]
//	    On any line: suppress the named analyzers' diagnostics for that
//	    line. The escape hatch of last resort; every use should carry a
//	    justification in the surrounding comment.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static-analysis pass: a named, documented
// check run over one type-checked package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only flags and
	// //relacc:allow directives. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph description printed by relacc-lint -list.
	// Its first line is the summary.
	Doc string

	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report/Reportf; the result value is unused by this driver
	// (kept for upstream API shape).
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for diagnostics — the same contract as
// golang.org/x/tools/go/analysis.Pass, minus facts and pass
// dependencies (no analyzer here needs either).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver wires suppression
	// (//relacc:allow) and collection in here.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// directivePrefix introduces every relacc-lint source directive.
const directivePrefix = "//relacc:"

// HasDirective reports whether the comment group carries the named
// directive (e.g. name "grounding-builder" matches the comment line
// "//relacc:grounding-builder", with optional trailing prose).
func HasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		text, _, _ = strings.Cut(text, " ")
		if strings.TrimSpace(text) == name {
			return true
		}
	}
	return false
}

// AllowedLines returns, per file line, the set of analyzer names whose
// diagnostics an //relacc:allow directive suppresses on that line. The
// driver applies this to every analyzer's output so the escape hatch
// behaves uniformly.
func AllowedLines(fset *token.FileSet, files []*ast.File) map[LineKey]map[string]bool {
	out := make(map[LineKey]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix+"allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := LineKey{File: pos.Filename, Line: pos.Line}
				set := out[key]
				if set == nil {
					set = make(map[string]bool)
					out[key] = set
				}
				for _, name := range strings.Fields(rest) {
					set[name] = true
				}
			}
		}
	}
	return out
}

// LineKey addresses one line of one file, for suppression lookups.
type LineKey struct {
	File string
	Line int
}

// IsNamedType reports whether t (after stripping pointers) is the named
// type pkgPath.name. Generic instantiations match their origin (so
// atomic.Pointer[T] matches ("sync/atomic", "Pointer")).
func IsNamedType(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// NamedOf strips pointers (and aliases) from t and returns the
// underlying named type, or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	if n != nil {
		if orig := n.Origin(); orig != nil {
			return orig
		}
	}
	return n
}

// TypeIsFromPkg reports whether t's (possibly pointer-stripped) named
// type is declared in pkgPath.
func TypeIsFromPkg(t types.Type, pkgPath string) bool {
	n := NamedOf(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgPath
}
