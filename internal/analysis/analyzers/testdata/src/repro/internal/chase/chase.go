// Package chase is a miniature stand-in for repro/internal/chase: just
// enough structure (a Grounding with step/trigger/valID state, builder
// functions, deduction entry points) for the analyzer fixtures to fake
// the real import path. The real analyzers match packages by path, so
// everything verified here transfers to the real tree.
package chase

// Grounding mimics the immutable deduction state of the real package.
// Hint is exported so fixtures in other packages can attempt writes;
// the real Grounding has no exported fields, but the analyzer must not
// depend on that.
type Grounding struct {
	Hint    int
	steps   []step
	trig    map[string][]int
	valID   [][]uint32
	version int
}

type step struct{ rule, tuple int }

//relacc:grounding-builder
func NewGrounding(n int) *Grounding {
	g := &Grounding{trig: make(map[string][]int)}
	g.valID = make([][]uint32, n) // allowed: declared builder
	g.version = 1
	return g
}

//relacc:grounding-builder
func (g *Grounding) Extend(vals []uint32) *Grounding {
	ng := &Grounding{version: g.version + 1}
	ng.valID = append(append([][]uint32(nil), g.valID...), vals)
	return ng
}

// buildVia pins that closures inside a declared builder inherit the
// allowlist: construction helpers are routinely closures.
//
//relacc:grounding-builder
func buildVia(n int) *Grounding {
	g := &Grounding{}
	fill := func() { g.version = n }
	fill()
	return g
}

// Run and CheckBatch are the deduction entry points the lockscope
// fixtures call.
func (g *Grounding) Run() int { return g.version }

func (g *Grounding) CheckBatch(xs []int) int {
	n := 0
	for _, x := range xs {
		if x < len(g.steps) {
			n++
		}
	}
	return n
}

// depth only reads; no directive needed.
func (g *Grounding) depth() int { return len(g.steps) }

// mutateInPlace is exactly the violation the allowlist exists to catch:
// writes to Grounding state from an undeclared function, even inside
// package chase itself.
func (g *Grounding) mutateInPlace(rule, tuple int) {
	g.steps = append(g.steps, step{rule, tuple}) // want `write to chase.Grounding field steps`
	g.valID[0][0] = 9                            // want `write to chase.Grounding field valID`
	g.trig["k"] = nil                            // want `write to chase.Grounding field trig`
	g.version++                                  // want `write to chase.Grounding field version`
}

var _ = (*Grounding).depth
var _ = (*Grounding).mutateInPlace
var _ = buildVia
