// Package lockbalance exercises the acquire-without-release analyzer:
// a Lock (RLock) with no matching Unlock (RUnlock) anywhere in the same
// function is flagged; conditional releases and declared ownership
// transfers are not.
package lockbalance

import "sync"

type store struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	n   int
	out []int
}

// leak: the classic early-return bug shape, reduced to its essence.
func (s *store) leak() {
	s.mu.Lock() // want `s.mu.Lock has no matching Unlock in this function`
	s.n++
}

// wrongFlavor: Unlock does not balance RLock — releasing a read lock
// with the writer API corrupts the RWMutex state.
func (s *store) wrongFlavor() int {
	s.rw.RLock() // want `s.rw.RLock has no matching RUnlock in this function`
	n := s.n
	s.rw.Unlock()
	return n
}

// deferred: the canonical shape.
func (s *store) deferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// conditional: one release on every path; any textual Unlock balances
// the scan (path-sensitivity is the race detector's job).
func (s *store) conditional(flush bool) {
	s.mu.Lock()
	if flush {
		s.out = append(s.out, s.n)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// transfer: a split acquire/release protocol, declared as such. The
// matching release lives in releaseFor, and callers pair them.
func (s *store) acquireFor() {
	s.mu.Lock() //relacc:allow lockbalance
	s.n++
}

func (s *store) releaseFor() {
	s.mu.Unlock()
}

var _ = (*store).leak
var _ = (*store).wrongFlavor
var _ = (*store).deferred
var _ = (*store).conditional
var _ = (*store).acquireFor
var _ = (*store).releaseFor
