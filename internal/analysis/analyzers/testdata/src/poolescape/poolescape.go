// Package poolescape exercises the pooled-value ownership analyzer:
// values from a sync.Pool must stay function-scoped until Put, with a
// pool-owning type's Get accessor as the one sanctioned hand-out.
package poolescape

import "sync"

type checker struct{ scratch []int }

type pool struct {
	pool sync.Pool
	held *checker
}

var global *checker

// returned: handing the pooled value to the caller without transferring
// the Put obligation through a sanctioned accessor.
func returned(p *pool) *checker {
	v := p.pool.Get().(*checker)
	return v // want `sync.Pool value escapes before Put \(returned to the caller\)`
}

// storedGlobal parks the pooled value in a package variable.
func storedGlobal(p *pool) {
	v := p.pool.Get().(*checker)
	global = v // want `sync.Pool value escapes before Put \(stored to a field, element or package variable\)`
	p.pool.Put(v)
}

// storedField parks it in a struct field — same hazard, heap-shaped.
func storedField(p *pool) {
	v := p.pool.Get().(*checker)
	p.held = v // want `sync.Pool value escapes before Put \(stored to a field, element or package variable\)`
	p.pool.Put(v)
}

// sent ships the pooled value to another goroutine.
func sent(p *pool, ch chan *checker) {
	v := p.pool.Get().(*checker)
	ch <- v // want `sync.Pool value escapes before Put \(sent on a channel\)`
	p.pool.Put(v)
}

// appended hides the pooled value inside a slice that outlives it.
func appended(p *pool, out []*checker) []*checker {
	v := p.pool.Get().(*checker)
	out = append(out, v) // want `sync.Pool value escapes before Put \(appended to a slice\)`
	p.pool.Put(v)
	return out
}

// borrowed: passing the pooled value DOWN a call is borrowing, not
// escaping; Get-use-Put with a deferred Put is the canonical shape.
func borrowed(p *pool, xs []int) int {
	v := p.pool.Get().(*checker)
	defer p.pool.Put(v)
	return use(v, xs)
}

func use(c *checker, xs []int) int {
	c.scratch = append(c.scratch[:0], xs...)
	return len(c.scratch)
}

// Get is the sanctioned accessor: a method named Get on the type that
// owns the pool exists to hand the value out, and its caller inherits
// the Put obligation.
func (p *pool) Get() *checker {
	return p.pool.Get().(*checker)
}

// rebound: once the variable is overwritten with a non-pooled value,
// returning it is fine.
func rebound(p *pool) *checker {
	v := p.pool.Get().(*checker)
	p.pool.Put(v)
	v = &checker{}
	return v
}

var _ = returned
var _ = storedGlobal
var _ = storedField
var _ = sent
var _ = appended
var _ = borrowed
var _ = rebound
