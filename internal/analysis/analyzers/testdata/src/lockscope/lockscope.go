// Package lockscope exercises the no-lock-across-deduction analyzer:
// direct and transitive calls into deduction entry points under a held
// mutex are flagged; release-before-deduce, exempted fields and
// unrelated helpers are not.
package lockscope

import (
	"sync"

	"repro/internal/chase"
)

type registry struct {
	mu sync.RWMutex // a routing lock: must never cover deduction

	// entMu serialises extend+commit+re-deduce by design, like the real
	// per-entity lock.
	//
	//relacc:lock-held-over-deduction
	entMu sync.Mutex

	g *chase.Grounding
}

// direct: the textbook violation.
func (r *registry) direct() int {
	r.mu.Lock()
	n := r.g.Run() // want `r.mu is still held at this call to Run`
	r.mu.Unlock()
	return n
}

// underDefer: a deferred Unlock holds the lock to the end of the
// function, so the call is still covered.
func (r *registry) underDefer(xs []int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.g.CheckBatch(xs) // want `r.mu is still held at this call to CheckBatch`
}

// transitive: calling a same-package helper that deduces is as bad as
// deducing directly.
func (r *registry) transitive() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deduce() // want `r.mu is still held at this call to deduce`
}

func (r *registry) deduce() int { return r.g.Run() }

// releaseFirst: the correct shape — snapshot under the lock, release,
// then deduce.
func (r *registry) releaseFirst() int {
	r.mu.RLock()
	g := r.g
	r.mu.RUnlock()
	return g.Run()
}

// exempted: entMu is declared lock-held-over-deduction; holding it
// across Run is the design.
func (r *registry) exempted() int {
	r.entMu.Lock()
	defer r.entMu.Unlock()
	return r.g.Run()
}

// cheapUnderLock: helpers that do not reach deduction are fine under
// the lock.
func (r *registry) cheapUnderLock() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.count()
}

func (r *registry) count() int { return 1 }

var _ = (*registry).direct
var _ = (*registry).underDefer
var _ = (*registry).transitive
var _ = (*registry).releaseFirst
var _ = (*registry).exempted
var _ = (*registry).cheapUnderLock
