// Package groundingmut exercises the cross-package side of the
// groundingmut analyzer: no package other than chase may write a
// Grounding, and the //relacc:grounding-builder directive is only
// honoured inside package chase.
package groundingmut

import "repro/internal/chase"

var g = chase.NewGrounding(1)

// reset overwrites the whole value — the only write shape possible
// from outside with unexported fields, and still a violation.
func reset() {
	*g = chase.Grounding{} // want `write to a chase.Grounding outside`
}

// notABuilderHere carries the builder directive, but outside package
// chase it buys nothing.
//
//relacc:grounding-builder
func notABuilderHere() {
	g.Hint = 1 // want `write to chase.Grounding field Hint`
}

// readsAreFine: reading fields and calling methods never trips the
// analyzer.
func readsAreFine() int {
	h := g.Hint
	return h + g.Run()
}

// rebindIsFine: reassigning a *Grounding variable replaces which
// version it points at — the versioning idiom, not a mutation.
func rebindIsFine() {
	l := g
	l = chase.NewGrounding(2)
	_ = l
}

// lookalike has the same field names but is not chase.Grounding;
// writing it is nobody's business.
type lookalike struct{ Hint int }

func writesLookalike(l *lookalike) {
	l.Hint = 3
}

// suppressed shows the escape hatch: the allow directive silences
// exactly the named analyzer on that line.
func suppressed() {
	g.Hint = 2 //relacc:allow groundingmut
}

var _ = reset
var _ = notABuilderHere
var _ = readsAreFine
var _ = rebindIsFine
var _ = writesLookalike
var _ = suppressed
