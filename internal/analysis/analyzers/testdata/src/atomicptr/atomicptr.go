// Package atomicptr exercises the three shapes of non-atomic access to
// atomically-published state: mixed plain/atomic access to a legacy
// field, writes through a published snapshot, and value copies of
// atomic-bearing structs.
package atomicptr

import "sync/atomic"

// --- shape 1: mixed access to a legacy atomic field ---

type counter struct {
	n     uint64
	label string // ordinary field; never atomic
}

func (c *counter) bump() {
	atomic.AddUint64(&c.n, 1) // establishes c.n as an atomic-API field
}

func (c *counter) readPlain() uint64 {
	return c.n // want `field n is accessed via sync/atomic elsewhere`
}

func (c *counter) writePlain() {
	c.n = 0 // want `field n is accessed via sync/atomic elsewhere`
}

func (c *counter) readAtomic() uint64 {
	return atomic.LoadUint64(&c.n) // &c.n for the atomic API: allowed
}

func (c *counter) readLabel() string {
	return c.label // untouched by sync/atomic: allowed
}

// --- shape 2: writes through a published snapshot ---

type dict struct {
	read atomic.Pointer[map[string]int]
	vals atomic.Pointer[[]int]
}

func (d *dict) writeDirect() {
	(*d.read.Load())["k"] = 1 // want `write through a snapshot obtained from an atomic Load`
}

func (d *dict) writeViaLocal() {
	m := d.read.Load()
	(*m)["k"] = 2 // want `write through a snapshot obtained from an atomic Load`
}

func (d *dict) readOnly() int {
	return (*d.read.Load())["k"] // reads are what snapshots are for
}

func (d *dict) copyOnWrite(v int) {
	// The sanctioned idiom: deref-copy, mutate the copy, publish it.
	vals := *d.vals.Load()
	vals = append(vals, v)
	d.vals.Store(&vals)
}

// --- shape 3: value copies of atomic-bearing structs ---

type entity struct {
	g atomic.Pointer[int]
}

type table struct {
	ents []entity
}

func copyEntity(e *entity) {
	cp := *e // want `value copy of entity, which contains sync/atomic state`
	_ = cp
}

func rangeByValue(t *table) {
	for _, e := range t.ents { // want `value copy of entity, which contains sync/atomic state`
		_ = e
	}
}

func construction() entity {
	e := entity{} // a fresh composite literal, not a copy of a live value
	return e
}

func byPointer(t *table) {
	for i := range t.ents {
		p := &t.ents[i] // pointers to live values are the correct idiom
		_ = p
	}
}

var _ = (*counter).bump
var _ = (*counter).readPlain
var _ = (*counter).writePlain
var _ = (*counter).readAtomic
var _ = (*counter).readLabel
var _ = (*dict).writeDirect
var _ = (*dict).writeViaLocal
var _ = (*dict).readOnly
var _ = (*dict).copyOnWrite
var _ = copyEntity
var _ = rangeByValue
var _ = construction
var _ = byPointer
