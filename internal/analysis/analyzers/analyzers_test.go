package analyzers_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/analyzers"
)

func TestGroundingmut(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Groundingmut,
		"repro/internal/chase", "groundingmut")
}

func TestLockscope(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Lockscope, "lockscope")
}

func TestAtomicptr(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Atomicptr, "atomicptr")
}

func TestPoolescape(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Poolescape, "poolescape")
}

func TestLockbalance(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Lockbalance, "lockbalance")
}

// TestRegistry pins the registry's shape: stable order, unique
// lower-case names, docs with a summary line — what -list prints and
// check-docs.sh diffs against DESIGN.md.
func TestRegistry(t *testing.T) {
	all := analyzers.All()
	if len(all) < 4 {
		t.Fatalf("registry has %d analyzers, want at least 4", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be non-empty lower-case with no spaces", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q must have Doc and Run", a.Name)
		}
	}
}
