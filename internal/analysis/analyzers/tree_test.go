package analyzers_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/analyzers"
)

// TestRepositoryTreeClean pins the ISSUE-10 acceptance criterion inside
// `go test`: running every analyzer over the real module (tests
// included) yields zero findings. A new invariant violation anywhere in
// the tree fails this test with the same diagnostic relacc-lint prints.
func TestRepositoryTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short mode")
	}
	root := filepath.Join("..", "..", "..")
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	analysistest.RunTree(t, root, analyzers.All())
}
