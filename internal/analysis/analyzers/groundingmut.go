package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// chasePath is the import path of the package whose Grounding type
// invariant 1 protects. Testdata fakes the same path, so the analyzer
// is matched structurally, never by directory.
const chasePath = "repro/internal/chase"

// Groundingmut enforces DESIGN.md invariant 1: chase.Grounding values
// are immutable after construction. Any assignment whose target is a
// Grounding field — or anything reachable through one, like a step
// slice element, a trigger map entry or a valID row — is flagged,
// unless it happens inside a function in package chase itself that is
// explicitly marked //relacc:grounding-builder (the constructor/Extend
// allowlist). The marker is only honoured in the defining package, so
// no other package can ever write a Grounding, marker or not.
var Groundingmut = &analysis.Analyzer{
	Name: "groundingmut",
	Doc: "flags writes to chase.Grounding outside the construction allowlist\n\n" +
		"Grounding versions are immutable after construction (DESIGN.md\n" +
		"invariant 1): every concurrent checker, pooled engine and cache\n" +
		"layer depends on it. Construction-time writers in package chase\n" +
		"carry the //relacc:grounding-builder directive; everything else\n" +
		"must treat a Grounding as read-only and absorb new evidence via\n" +
		"Extend, which returns a new version.",
	Run: runGroundingmut,
}

func runGroundingmut(pass *analysis.Pass) (any, error) {
	inChase := pass.Pkg != nil && pass.Pkg.Path() == chasePath
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inChase && analysis.HasDirective(fd.Doc, "grounding-builder") {
				continue // a declared builder; closures inherit
			}
			checkGroundingWrites(pass, fd)
		}
	}
	return nil, nil
}

func checkGroundingWrites(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true // := binds new variables; no selector targets
			}
			for _, lhs := range st.Lhs {
				reportGroundingTarget(pass, lhs)
			}
		case *ast.IncDecStmt:
			reportGroundingTarget(pass, st.X)
		}
		return true
	})
}

// reportGroundingTarget flags e when the write target is rooted in a
// value of type chase.Grounding: a direct field (g.steps = ...), an
// element reachable through one (g.valID[a][i] = ..., g.trig[k] =
// append(...)), or the whole value (*g = Grounding{...}).
func reportGroundingTarget(pass *analysis.Pass, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			if isGroundingExpr(pass.TypesInfo, x.X) {
				pass.Reportf(x.Pos(), "write to a chase.Grounding outside a //relacc:grounding-builder function: grounding versions are immutable after construction (invariant 1); use Extend to produce a new version")
				return
			}
			e = x.X
		case *ast.SelectorExpr:
			if isGroundingExpr(pass.TypesInfo, x.X) {
				pass.Reportf(x.Pos(), "write to chase.Grounding field %s outside a //relacc:grounding-builder function: grounding versions are immutable after construction (invariant 1); use Extend to produce a new version", x.Sel.Name)
				return
			}
			e = x.X
		default:
			return
		}
	}
}

func isGroundingExpr(info *types.Info, e ast.Expr) bool {
	return analysis.IsNamedType(typeOf(info, e), chasePath, "Grounding")
}
