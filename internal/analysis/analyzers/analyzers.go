// Package analyzers holds relacc-lint's analysis passes: each one
// encodes a load-bearing invariant of the system (DESIGN.md
// "Invariants") as a compile-time check, so a violation fails every
// build instead of waiting for the race detector to explore the right
// schedule. See DESIGN.md "Static analysis (PR 10)" for the
// analyzer → invariant map and internal/analysis for the driver and
// the //relacc: directive grammar.
package analyzers

import "repro/internal/analysis"

// All returns every registered analyzer, in the stable order
// relacc-lint runs and lists them. check-docs.sh verifies the DESIGN.md
// analyzer table against this registry (via relacc-lint -list), so a
// new analyzer must be documented to land.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Groundingmut,
		Lockscope,
		Atomicptr,
		Poolescape,
		Lockbalance,
	}
}
