package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Atomicptr enforces DESIGN.md invariant 3/3a: state published through
// sync/atomic (atomic.Pointer snapshots like the dictionary's
// read-path map, legacy fields driven through atomic.LoadUint64 and
// friends) is only ever read through the atomic API and never written
// in place. It reports three shapes:
//
//  1. Mixed access to a legacy atomic field: a struct field whose
//     address is passed to a sync/atomic function somewhere in the
//     package (atomic.AddUint64(&s.n, 1)) but is also read or written
//     as a plain selector elsewhere. Mixed access is exactly the bug
//     the race detector needs a lucky schedule to see.
//
//  2. A write through a published snapshot: an assignment whose target
//     is rooted in the result of a Load() on a sync/atomic type —
//     (*d.read.Load())[k] = v, or m := d.read.Load(); (*m)[k] = v.
//     Snapshots are copy-on-write; rebinding a local to a fresh copy
//     (vals = append(vals, x) after vals := *d.vals.Load()) is the
//     correct idiom and is not flagged.
//
//  3. A value copy of a struct containing atomic state: cp := *ent, or
//     a range over []liveEntity by value. Copying the wrapper copies
//     the atomic word non-atomically and detaches it from its
//     published identity. Composite literals on the RHS are fine —
//     that is construction, not copying.
var Atomicptr = &analysis.Analyzer{
	Name: "atomicptr",
	Doc: "flags non-atomic access to atomically-published state\n\n" +
		"Fields accessed via sync/atomic anywhere must be accessed that\n" +
		"way everywhere (DESIGN.md invariant 3); maps and slices\n" +
		"published through atomic.Pointer are immutable snapshots\n" +
		"(invariant 3a) — copy, then write, then Store.",
	Run: runAtomicptr,
}

func runAtomicptr(pass *analysis.Pass) (any, error) {
	atomicFields := collectAtomicAPIFields(pass)
	for _, file := range pass.Files {
		checkMixedAccess(pass, file, atomicFields)
		checkSnapshotWrites(pass, file)
		checkAtomicCopies(pass, file)
	}
	return nil, nil
}

// collectAtomicAPIFields finds struct fields whose address is passed to
// a sync/atomic function (the legacy, pre-wrapper-type API): these
// fields belong to the atomic API everywhere.
func collectAtomicAPIFields(pass *analysis.Pass) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := fieldVarOf(pass.TypesInfo, un.X); v != nil {
					out[v] = true
				}
			}
			return true
		})
	}
	return out
}

// checkMixedAccess flags plain selector reads/writes of fields in
// atomicFields. Taking the address to hand to sync/atomic is of course
// allowed, as is mentioning the field inside its own struct's composite
// literal (zero-value construction precedes publication).
func checkMixedAccess(pass *analysis.Pass, file *ast.File, atomicFields map[*types.Var]bool) {
	if len(atomicFields) == 0 {
		return
	}
	walkStack(file, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if v == nil || !atomicFields[v] {
			return true
		}
		// Walk out through parens; the interesting parent decides.
		parent := ast.Node(nil)
		for i := len(stack) - 1; i >= 0; i-- {
			if _, ok := stack[i].(*ast.ParenExpr); ok {
				continue
			}
			parent = stack[i]
			break
		}
		if un, ok := parent.(*ast.UnaryExpr); ok && un.Op == token.AND {
			return true // &s.f — being handed to sync/atomic (or aliased; vet's job)
		}
		pass.Reportf(sel.Pos(),
			"field %s is accessed via sync/atomic elsewhere in this package; this plain access races with those (invariant 3) — use the atomic API here too",
			sel.Sel.Name)
		return true
	})
}

// checkSnapshotWrites flags assignments whose LHS is rooted in the
// result of a Load() on a sync/atomic wrapper — either directly
// ((*d.read.Load())[k] = v) or through a local bound once to such a
// Load (m := d.read.Load(); (*m)[k] = v). Rebinding the local itself
// (vals = append(vals, x)) is the copy-on-write idiom and stays legal.
func checkSnapshotWrites(pass *analysis.Pass, file *ast.File) {
	snapshots := collectSnapshotLocals(pass, file)
	report := func(e ast.Expr) {
		pass.Reportf(e.Pos(),
			"write through a snapshot obtained from an atomic Load: published snapshots are immutable (invariant 3a) — copy, mutate the copy, then Store it")
	}
	ast.Inspect(file, func(n ast.Node) bool {
		var targets []ast.Expr
		switch st := n.(type) {
		case *ast.AssignStmt:
			targets = st.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{st.X}
		default:
			return true
		}
		for _, lhs := range targets {
			// Strip element/deref/field layers; what remains is the root.
			root := lhs
			depth := 0
			for {
				switch x := ast.Unparen(root).(type) {
				case *ast.IndexExpr:
					root, depth = x.X, depth+1
				case *ast.StarExpr:
					root, depth = x.X, depth+1
				case *ast.SelectorExpr:
					root, depth = x.X, depth+1
				default:
					goto rooted
				}
			}
		rooted:
			if depth == 0 {
				continue // plain rebinding, never a snapshot write
			}
			root = ast.Unparen(root)
			if isAtomicLoadCall(pass.TypesInfo, root) {
				report(lhs)
				continue
			}
			if id, ok := root.(*ast.Ident); ok {
				if v, _ := pass.TypesInfo.Uses[id].(*types.Var); v != nil && snapshots[v] {
					report(lhs)
				}
			}
		}
		return true
	})
}

// collectSnapshotLocals finds locals bound exactly once, via :=, to an
// atomic Load result and never reassigned: writes through them are
// writes through the snapshot. A local that is ever rebound (the
// copy-on-write idiom dereferences the Load: vals := *d.vals.Load())
// is dropped — after rebinding it may hold a private copy.
func collectSnapshotLocals(pass *analysis.Pass, file *ast.File) map[*types.Var]bool {
	snapshots := make(map[*types.Var]bool)
	rebound := make(map[*types.Var]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range st.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if st.Tok == token.DEFINE {
				v, _ := pass.TypesInfo.Defs[id].(*types.Var)
				if v == nil || len(st.Rhs) != len(st.Lhs) {
					continue
				}
				// Only a bare Load() result is a snapshot alias; *Load()
				// dereferences into a value copy the caller may own.
				if isAtomicLoadCall(pass.TypesInfo, ast.Unparen(st.Rhs[i])) {
					snapshots[v] = true
				}
			} else {
				if v, _ := pass.TypesInfo.Uses[id].(*types.Var); v != nil {
					rebound[v] = true
				}
			}
		}
		return true
	})
	for v := range rebound {
		delete(snapshots, v)
	}
	return snapshots
}

// isAtomicLoadCall reports whether e is a call to Load (or LoadPointer
// etc.) on a sync/atomic wrapper value or function.
func isAtomicLoadCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return fn.Name() == "Load" || (len(fn.Name()) > 4 && fn.Name()[:4] == "Load")
}

// checkAtomicCopies flags value copies of types containing sync/atomic
// state: assignment/definition from an addressable expression of such a
// type, and range clauses whose value variable takes such a type.
// Composite literals and function results are construction/transfer of
// a fresh value, not a copy of a live one, and pass.
func checkAtomicCopies(pass *analysis.Pass, file *ast.File) {
	reportCopy := func(pos token.Pos, t types.Type) {
		pass.Reportf(pos,
			"value copy of %s, which contains sync/atomic state: copying the wrapper is non-atomic and detaches it from its published identity (invariant 3) — use a pointer",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, rhs := range st.Rhs {
				if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
					continue // discarding evaluates but publishes nothing
				}
				rhs = ast.Unparen(rhs)
				if !isAddressable(rhs) {
					continue
				}
				t := typeOf(pass.TypesInfo, rhs)
				if t != nil && containsAtomic(t) {
					reportCopy(rhs.Pos(), t)
				}
			}
		case *ast.RangeStmt:
			if st.Value == nil {
				return true
			}
			t := typeOf(pass.TypesInfo, st.Value)
			if t == nil {
				if id, ok := st.Value.(*ast.Ident); ok {
					if v, _ := pass.TypesInfo.Defs[id].(*types.Var); v != nil {
						t = v.Type()
					}
				}
			}
			if t != nil && containsAtomic(t) {
				reportCopy(st.Value.Pos(), t)
			}
		}
		return true
	})
}

// isAddressable reports whether copying e copies a live value another
// goroutine may share (identifiers, field selections, index and deref
// expressions) as opposed to a freshly constructed or returned one.
func isAddressable(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
