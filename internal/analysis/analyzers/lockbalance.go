package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Lockbalance is the cheap structural complement to lockscope: a
// function that calls x.Lock() (or x.RLock()) but contains no matching
// x.Unlock() (x.RUnlock()) at all — deferred or inline — either leaks
// the lock or hands ownership across a function boundary, and both
// deserve a second look. Helper methods that intentionally transfer
// lock ownership (an acquire/release pair split across functions) can
// carry //relacc:allow lockbalance with a comment explaining the
// protocol.
//
// Lock and RLock are matched against Unlock and RUnlock respectively;
// the identity of the lock is the receiver expression's source text,
// the same keying lockscope uses. Conditional releases are fine — one
// Unlock anywhere in the function balances the scan; this analyzer
// only catches the total absence of one.
var Lockbalance = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "flags functions that acquire a mutex they never release\n\n" +
		"A Lock with no matching Unlock in the same function either\n" +
		"deadlocks under the right schedule or implements a cross-\n" +
		"function ownership transfer that should be declared with\n" +
		"//relacc:allow lockbalance and a protocol comment.",
	Run: runLockbalance,
}

func runLockbalance(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBalance(pass, fd)
		}
	}
	return nil, nil
}

var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func checkLockBalance(pass *analysis.Pass, fd *ast.FuncDecl) {
	type acquire struct {
		pos  ast.Expr // the call, for reporting
		kind string   // Lock or RLock
	}
	acquires := make(map[string][]acquire) // recv source text -> acquisitions
	releases := make(map[string]bool)      // recv source text + kind -> seen

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := mutexOpOf(pass.TypesInfo, call)
		if !ok {
			return true
		}
		key := types.ExprString(op.recv)
		switch op.name {
		case "Lock", "RLock":
			acquires[key] = append(acquires[key], acquire{pos: call.Fun, kind: op.name})
		case "Unlock", "RUnlock":
			releases[key+"\x00"+op.name] = true
		}
		return true
	})

	for key, as := range acquires {
		for _, a := range as {
			if releases[key+"\x00"+unlockFor[a.kind]] {
				continue
			}
			pass.Reportf(a.pos.Pos(),
				"%s.%s has no matching %s in this function: either a leak that deadlocks the next acquirer, or an ownership transfer that needs //relacc:allow lockbalance and a protocol comment",
				key, a.kind, unlockFor[a.kind])
		}
	}
}
