package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Poolescape enforces the pooled-checker ownership rule (DESIGN.md
// invariant 4 family): a value taken from a sync.Pool is owned by the
// taking function until it is Put back, and must not outlive that
// window. Within each function it tracks variables bound to a
// (sync.Pool).Get() result — through the usual type assertion and
// through simple aliases — and flags any use that lets the value
// escape before Put: returning it, storing it into a field, map,
// slice, pointer target or package variable, sending it on a channel,
// or appending it to a slice. The one sanctioned escape is an accessor
// that exists to hand the value out: a method named Get on the type
// that owns the pool (CheckerPool.Get returns its pooled *Checker on
// purpose; its caller is the one holding the Put obligation).
//
// The analysis is per-function and syntactic: a Get result handed to
// another function is not followed (passing a pooled value down a call
// is borrowing, not escaping), and once a Put(v) releases v, later
// uses of v are not tracked — vet-style use-after-Put is out of scope.
var Poolescape = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "flags sync.Pool values that escape before being returned to the pool\n\n" +
		"A pooled value stored to the heap, returned or sent on a channel\n" +
		"can be handed to Pool.Get on another goroutine while still\n" +
		"referenced — aliased mutable state with no lock. Keep pooled\n" +
		"values function-scoped: Get, use, Put.",
	Run: runPoolescape,
}

func runPoolescape(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolEscapes(pass, fd)
		}
	}
	return nil, nil
}

// isPoolGetCall reports whether e is (sync.Pool).Get(), possibly
// wrapped in a type assertion — `p.pool.Get().(*Checker)`.
func isPoolGetCall(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(info, call)
	return fn != nil && fn.Name() == "Get" &&
		fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		recvIsSyncPool(fn)
}

func recvIsSyncPool(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return analysis.IsNamedType(sig.Recv().Type(), "sync", "Pool")
}

// isPoolAccessor reports whether fd is a method named Get on a type
// that owns a sync.Pool field — the sanctioned hand-out accessor whose
// whole point is returning the pooled value.
func isPoolAccessor(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Get" || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	n := analysis.NamedOf(typeOf(pass.TypesInfo, fd.Recv.List[0].Type))
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if analysis.IsNamedType(st.Field(i).Type(), "sync", "Pool") {
			return true
		}
	}
	return false
}

func checkPoolEscapes(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	accessor := isPoolAccessor(pass, fd)

	// pooled: variables currently holding an un-Put pool value, in
	// source order (the same linear approximation lockscope uses).
	pooled := make(map[*types.Var]bool)
	varOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			return v
		}
		v, _ := info.Defs[id].(*types.Var)
		return v
	}
	isPooledExpr := func(e ast.Expr) bool {
		if isPoolGetCall(info, e) {
			return true // escape straight from the Get call itself
		}
		v := varOf(e)
		return v != nil && pooled[v]
	}
	report := func(e ast.Expr, how string) {
		pass.Reportf(e.Pos(),
			"sync.Pool value escapes before Put (%s): once another goroutine Gets it, both sides mutate the same object with no lock; keep pooled values function-scoped", how)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				lv := varOf(lhs)
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue // discarding is not an escape (nor a Put)
				}
				if rhs != nil && isPooledExpr(rhs) {
					// Binding or aliasing a pooled value: to a plain local
					// it propagates tracking; to anything with memory shape
					// (field, element, deref, global) it escapes.
					switch {
					case lv != nil && !isGlobal(lv):
						pooled[lv] = true
					default:
						report(rhs, "stored to a field, element or package variable")
					}
					continue
				}
				// Pooled variable overwritten with something else: the
				// obligation moved on; stop tracking under this name.
				if lv != nil && rhs != nil {
					delete(pooled, lv)
				}
			}
		case *ast.ReturnStmt:
			if accessor {
				return true
			}
			for _, r := range st.Results {
				if isPooledExpr(r) {
					report(r, "returned to the caller")
				}
			}
		case *ast.SendStmt:
			if isPooledExpr(st.Value) {
				report(st.Value, "sent on a channel")
			}
		case *ast.CallExpr:
			fn := calleeOf(info, st)
			if fn != nil && fn.Name() == "Put" {
				// Any Put(v) — sync.Pool's or a wrapper's — discharges the
				// obligation for v.
				for _, arg := range st.Args {
					if v := varOf(arg); v != nil {
						delete(pooled, v)
					}
				}
				return true
			}
			// append(dst, v): v outlives the call inside dst.
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "append" {
				for _, arg := range st.Args[1:] {
					if isPooledExpr(arg) {
						report(arg, "appended to a slice")
					}
				}
			}
		}
		return true
	})
}

// isGlobal reports whether v is a package-level variable.
func isGlobal(v *types.Var) bool {
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
