package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Lockscope enforces DESIGN.md invariant 5: no routing/registry lock is
// held across deduction. It flags any call that (directly, or
// transitively through same-package functions) reaches a deduction
// entry point — Grounding.Run/CheckBatch/Extend, Checker.Check*,
// CheckerPool.Check*, grounding construction, the top-k searches, the
// Session and Updater entry points — made while a sync.Mutex or
// sync.RWMutex acquired in the same function is still held.
//
// Locks that are DESIGNED to be held across deduction (the per-entity
// lock serialising extend+commit+re-deduce, the updater's quiesce
// gate) are declared at their field with
// //relacc:lock-held-over-deduction; the directive is what makes the
// exception reviewable instead of implicit.
//
// The tracking is syntactic and flow-insensitive within a function
// body (source order approximates execution order; an Unlock anywhere
// after the Lock ends the critical section for the scan, a deferred
// Unlock keeps it held to the end). That makes the analyzer
// conservative about clever lock hand-offs and blind to cross-function
// lock ownership — the race tests keep covering those — but exhaustive
// for the shape every real regression so far has had: lock, call
// something expensive, unlock.
var Lockscope = &analysis.Analyzer{
	Name: "lockscope",
	Doc: "flags deduction entry points called while a mutex is held\n\n" +
		"Deduction (chase runs, candidate checks, top-k searches,\n" +
		"grounding construction) can take milliseconds; holding a\n" +
		"routing or registry lock across it serialises the store\n" +
		"(DESIGN.md invariant 5). Exempt a lock whose design requires\n" +
		"it with //relacc:lock-held-over-deduction on the field.",
	Run: runLockscope,
}

// entryPattern matches deduction entry points by package path, receiver
// type name ("" for plain functions) and function name (trailing *
// wildcard allowed).
type entryPattern struct{ pkg, recv, name string }

var deductionEntries = []entryPattern{
	{chasePath, "Grounding", "Run"},
	{chasePath, "Grounding", "CheckBatch"},
	{chasePath, "Grounding", "Extend"},
	{chasePath, "Checker", "Check"},
	{chasePath, "Checker", "CheckConflict"},
	{chasePath, "CheckerPool", "Check"},
	{chasePath, "CheckerPool", "CheckMany"},
	{chasePath, "Shared", "NewGrounding"},
	{chasePath, "", "NewGrounding"},
	{chasePath, "", "Deduce"},
	{"repro/internal/topk", "", "TopK*"},
	{"repro/internal/topk", "", "RankJoin*"},
	{"repro/internal/core", "Session", "Deduce*"},
	{"repro/internal/core", "Session", "Check*"},
	{"repro/internal/core", "Session", "TopK*"},
	{"repro/internal/core", "Session", "AddTuples"},
	{"repro/internal/pipeline", "Updater", "Apply"},
	{"repro/internal/pipeline", "Updater", "Replay"},
	{"repro/internal/pipeline", "Updater", "Query"},
	{"repro/internal/pipeline", "Updater", "Snapshot"},
	{"repro/internal/pipeline", "", "Run*"},
	{"repro/internal/pipeline", "", "Stream*"},
}

// isDeductionEntry reports whether fn matches a deduction entry
// pattern.
func isDeductionEntry(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := analysis.NamedOf(sig.Recv().Type()); n != nil {
			recv = n.Obj().Name()
		}
	}
	for _, e := range deductionEntries {
		if e.pkg != pkg.Path() || e.recv != recv {
			continue
		}
		if pat, ok := strings.CutSuffix(e.name, "*"); ok {
			if strings.HasPrefix(fn.Name(), pat) {
				return true
			}
		} else if e.name == fn.Name() {
			return true
		}
	}
	return false
}

func runLockscope(pass *analysis.Pass) (any, error) {
	var decls []*ast.FuncDecl
	declOf := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					declOf[fn] = fd
				}
			}
		}
	}

	// reaches: same-package functions from which a deduction entry point
	// is statically reachable (direct calls, then a fixpoint over
	// same-package call edges). Calling one of these under a lock is as
	// bad as calling the entry point itself.
	reaches := make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)
	for fn, fd := range declOf {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if isDeductionEntry(callee) {
				reaches[fn] = true
			} else if _, samePkg := declOf[callee]; samePkg {
				callees[fn] = append(callees[fn], callee)
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if reaches[fn] {
				continue
			}
			for _, c := range cs {
				if reaches[c] {
					reaches[fn] = true
					changed = true
					break
				}
			}
		}
	}

	exempt := directiveFields(pass, "lock-held-over-deduction")
	for _, fd := range decls {
		checkLockScope(pass, fd, reaches, exempt)
	}
	return nil, nil
}

// heldLock is one lock the linear scan currently considers held.
type heldLock struct {
	expr   string
	exempt bool
}

func checkLockScope(pass *analysis.Pass, fd *ast.FuncDecl, reaches map[*types.Func]bool, exempt map[*types.Var]bool) {
	// Deferred calls run at return, not where they appear: a deferred
	// Unlock must not end the critical section for the scan.
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	var held []heldLock
	find := func(expr string) int {
		for i, h := range held {
			if h.expr == expr {
				return i
			}
		}
		return -1
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := mutexOpOf(pass.TypesInfo, call); ok {
			key := types.ExprString(op.recv)
			switch op.name {
			case "Lock", "RLock":
				if find(key) < 0 {
					held = append(held, heldLock{
						expr:   key,
						exempt: exempt[fieldVarOf(pass.TypesInfo, op.recv)],
					})
				}
			case "Unlock", "RUnlock":
				if deferred[call] {
					break // released only at return; still held below
				}
				if i := find(key); i >= 0 {
					held = append(held[:i], held[i+1:]...)
				}
			}
			return true
		}
		callee := calleeOf(pass.TypesInfo, call)
		if callee == nil || !(isDeductionEntry(callee) || reaches[callee]) {
			return true
		}
		for _, h := range held {
			if h.exempt {
				continue
			}
			pass.Reportf(call.Pos(),
				"%s is still held at this call to %s, which performs deduction: no lock across deduction (invariant 5); release the lock first or declare the field //relacc:lock-held-over-deduction",
				h.expr, callee.Name())
			break // one report per call site is enough
		}
		return true
	})
}
