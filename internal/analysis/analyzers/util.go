package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// walkStack traverses root depth-first in source order, calling fn with
// each node and the stack of its ancestors (outermost first, not
// including the node itself). fn returning false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if ok {
			stack = append(stack, n)
		}
		return ok
	})
}

// calleeOf resolves a call expression to the static *types.Func it
// invokes (a plain function or a method accessed through a selector).
// It returns nil for calls it cannot resolve statically: function
// values, interface methods without a concrete receiver type, builtins
// and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// mutexOp describes one sync.Mutex/RWMutex method call site.
type mutexOp struct {
	recv ast.Expr // the lock expression, e.g. `u.keyMu` in u.keyMu.Lock()
	name string   // Lock, RLock, Unlock, RUnlock
}

// mutexOpOf recognises calls to the sync mutex methods, including
// promoted calls through embedded mutexes. The receiver expression is
// the selector's base (for an embedded mutex that is the embedding
// value, which is exactly the lock identity a human reads).
func mutexOpOf(info *types.Info, call *ast.CallExpr) (mutexOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return mutexOp{}, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return mutexOp{recv: sel.X, name: fn.Name()}, true
	}
	return mutexOp{}, false
}

// fieldVarOf returns the struct field a selector expression resolves
// to, or nil when e is not a field selection.
func fieldVarOf(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, _ := info.Uses[sel.Sel].(*types.Var)
	if v != nil && v.IsField() {
		return v
	}
	return nil
}

// directiveFields collects the struct fields of this package whose
// declaration carries the named //relacc: directive.
func directiveFields(pass *analysis.Pass, directive string) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !analysis.HasDirective(field.Doc, directive) &&
					!analysis.HasDirective(field.Comment, directive) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// isAtomicType reports whether t is itself one of the sync/atomic
// wrapper types (Value, Pointer[T], Int64, Uint32, ...). Deliberately
// not pointer-stripping: a *atomic.Int64 is an ordinary pointer and
// copying it is fine.
func isAtomicType(t types.Type) bool {
	n, _ := types.Unalias(t).(*types.Named)
	if n == nil {
		return false
	}
	if orig := n.Origin(); orig != nil {
		n = orig
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// containsAtomic reports whether a value of type t directly embeds
// atomic state: a sync/atomic wrapper field anywhere inside the value
// (structs, embedded structs, arrays), which makes a plain value copy
// of t a concurrency bug.
func containsAtomic(t types.Type) bool {
	return containsAtomicRec(t, make(map[types.Type]bool))
}

func containsAtomicRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	t = types.Unalias(t)
	if isAtomicType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomicRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomicRec(u.Elem(), seen)
	}
	return false
}

// typeOf is a nil-tolerant Info.Types lookup.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
