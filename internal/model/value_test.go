package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{NullValue(), Null, "null"},
		{S("hi"), String, "hi"},
		{I(42), Int, "42"},
		{I(-7), Int, "-7"},
		{F(2.5), Float, "2.5"},
		{B(true), Bool, "true"},
		{B(false), Bool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String() = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		eq   bool
	}{
		{NullValue(), NullValue(), true},
		{NullValue(), S(""), false},
		{S("a"), S("a"), true},
		{S("a"), S("b"), false},
		{I(3), I(3), true},
		{I(3), F(3), true}, // numeric cross-kind equality
		{F(3.5), I(3), false},
		{B(true), B(true), true},
		{B(true), I(1), false},
		{S("3"), I(3), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.eq {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.eq)
		}
		if got := c.b.Equal(c.a); got != c.eq {
			t.Errorf("Equal not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		c    int
		ok   bool
	}{
		{I(1), I(2), -1, true},
		{I(2), I(1), 1, true},
		{I(2), F(2), 0, true},
		{F(1.5), I(2), -1, true},
		{S("a"), S("b"), -1, true},
		{S("b"), S("a"), 1, true},
		{B(false), B(true), -1, true},
		{NullValue(), I(1), 0, false},
		{I(1), NullValue(), 0, false},
		{S("1"), I(1), 0, false},
		{B(true), I(1), 0, false},
	}
	for _, c := range cases {
		got, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && got != c.c) {
			t.Errorf("%v.Compare(%v) = (%d, %v), want (%d, %v)", c.a, c.b, got, ok, c.c, c.ok)
		}
	}
}

func TestValueKeyConsistency(t *testing.T) {
	// Equal values must share a key; these pairs are equal cross-kind.
	if I(3).Key() != F(3).Key() {
		t.Errorf("I(3) and F(3) should share a key")
	}
	if I(3).Key() == S("3").Key() {
		t.Errorf("I(3) and S(\"3\") must not share a key")
	}
	if NullValue().Key() == S("").Key() {
		t.Errorf("null and empty string must not share a key")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", NullValue()},
		{"null", NullValue()},
		{"true", B(true)},
		{"false", B(false)},
		{"42", I(42)},
		{"-13", I(-13)},
		{"2.5", F(2.5)},
		{"hello", S("hello")},
		{`"42"`, S("42")},
		{`"quoted string"`, S("quoted string")},
	}
	for _, c := range cases {
		if got := Parse(c.in); !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		return Parse(I(i).String()).Equal(I(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(s string) bool {
		v := Parse(S(s).Quote())
		return v.Kind() == String && v.Str() == s
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry and consistency with Equal over ints.
	f := func(a, b int64) bool {
		va, vb := I(a), I(b)
		c1, ok1 := va.Compare(vb)
		c2, ok2 := vb.Compare(va)
		if !ok1 || !ok2 {
			return false
		}
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormMatchesKeyGrouping(t *testing.T) {
	vals := []Value{
		NullValue(), S(""), S("x"), S("NaN"),
		I(0), I(3), I(-7), F(3), F(3.5), F(-7),
		B(true), B(false),
		Parse("NaN"), F(math.NaN()),
	}
	for _, v := range vals {
		for _, w := range vals {
			keyEq := v.Key() == w.Key()
			normEq := v.Norm() == w.Norm()
			if keyEq != normEq {
				t.Errorf("%v vs %v: Key equality %v, Norm equality %v", v, w, keyEq, normEq)
			}
		}
	}
	// NaN must be usable as a map key (NaN != NaN would lose entries).
	m := map[Value]int{F(math.NaN()).Norm(): 1}
	if m[Parse("NaN").Norm()] != 1 {
		t.Error("NaN-normalized value is not retrievable from a map")
	}
}
