package model

import (
	"fmt"
	"sort"
)

// EntityInstance is a set Ie of tuples of one schema that all refer to
// the same real-world entity. Tuples are addressed by index; the chase
// and the accuracy orders work on those indices.
type EntityInstance struct {
	schema *Schema
	tuples []*Tuple
}

// NewEntityInstance creates an empty instance of schema s.
func NewEntityInstance(s *Schema) *EntityInstance {
	return &EntityInstance{schema: s}
}

// Add appends a tuple; the tuple must belong to the instance's schema.
// It returns the tuple's index.
func (ie *EntityInstance) Add(t *Tuple) (int, error) {
	if t.Schema() != ie.schema {
		return 0, fmt.Errorf("model: tuple schema %s does not match instance schema %s",
			t.Schema().Name(), ie.schema.Name())
	}
	ie.tuples = append(ie.tuples, t)
	return len(ie.tuples) - 1, nil
}

// MustAdd is Add but panics on error.
func (ie *EntityInstance) MustAdd(t *Tuple) int {
	i, err := ie.Add(t)
	if err != nil {
		panic(err)
	}
	return i
}

// AddValues builds a tuple from vals and appends it.
func (ie *EntityInstance) AddValues(vals ...Value) (int, error) {
	t, err := TupleOf(ie.schema, vals...)
	if err != nil {
		return 0, err
	}
	return ie.Add(t)
}

// Schema returns the instance schema.
func (ie *EntityInstance) Schema() *Schema { return ie.schema }

// Size returns the number of tuples |Ie|.
func (ie *EntityInstance) Size() int { return len(ie.tuples) }

// Tuple returns the i-th tuple.
func (ie *EntityInstance) Tuple(i int) *Tuple { return ie.tuples[i] }

// Tuples returns the backing slice of tuples; callers must not mutate it.
func (ie *EntityInstance) Tuples() []*Tuple { return ie.tuples }

// Value returns tuple i's value at attribute position a.
func (ie *EntityInstance) Value(i, a int) Value { return ie.tuples[i].At(a) }

// Extend returns a new instance holding the receiver's tuples followed
// by more. The receiver is unchanged — groundings, sessions and
// checkers built on it keep reading it — and the tuples themselves are
// shared, not copied. Every appended tuple must belong to the
// instance's schema.
func (ie *EntityInstance) Extend(more ...*Tuple) (*EntityInstance, error) {
	out := &EntityInstance{
		schema: ie.schema,
		tuples: make([]*Tuple, len(ie.tuples), len(ie.tuples)+len(more)),
	}
	copy(out.tuples, ie.tuples)
	for _, t := range more {
		if t == nil {
			return nil, fmt.Errorf("model: cannot extend instance with a nil tuple")
		}
		if _, err := out.Add(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Clone returns a deep copy of the instance.
func (ie *EntityInstance) Clone() *EntityInstance {
	out := NewEntityInstance(ie.schema)
	for _, t := range ie.tuples {
		out.tuples = append(out.tuples, t.Clone())
	}
	return out
}

// MasterRelation is an available master relation Im of schema Rm: a set
// of high-quality tuples used by form-(2) accuracy rules. Rm need not
// cover all attributes of the entity schema.
type MasterRelation struct {
	schema *Schema
	tuples []*Tuple
}

// NewMasterRelation creates an empty master relation of schema s.
func NewMasterRelation(s *Schema) *MasterRelation {
	return &MasterRelation{schema: s}
}

// Add appends a master tuple.
func (im *MasterRelation) Add(t *Tuple) error {
	if t.Schema() != im.schema {
		return fmt.Errorf("model: master tuple schema %s does not match %s",
			t.Schema().Name(), im.schema.Name())
	}
	im.tuples = append(im.tuples, t)
	return nil
}

// MustAdd is Add but panics on error.
func (im *MasterRelation) MustAdd(t *Tuple) {
	if err := im.Add(t); err != nil {
		panic(err)
	}
}

// AddValues builds a tuple from vals and appends it.
func (im *MasterRelation) AddValues(vals ...Value) error {
	t, err := TupleOf(im.schema, vals...)
	if err != nil {
		return err
	}
	return im.Add(t)
}

// Schema returns the master schema Rm.
func (im *MasterRelation) Schema() *Schema { return im.schema }

// Size returns |Im|. A nil master relation has size 0.
func (im *MasterRelation) Size() int {
	if im == nil {
		return 0
	}
	return len(im.tuples)
}

// Tuple returns the i-th master tuple.
func (im *MasterRelation) Tuple(i int) *Tuple { return im.tuples[i] }

// Tuples returns the backing slice; callers must not mutate it.
func (im *MasterRelation) Tuples() []*Tuple {
	if im == nil {
		return nil
	}
	return im.tuples
}

// Truncate returns a master relation holding only the first n tuples
// (or all of them if n exceeds the size). The tuples are shared, not
// copied; used by the ‖Im‖-scaling experiments.
func (im *MasterRelation) Truncate(n int) *MasterRelation {
	if im == nil {
		return nil
	}
	if n > len(im.tuples) {
		n = len(im.tuples)
	}
	return &MasterRelation{schema: im.schema, tuples: im.tuples[:n]}
}

// ActiveDomain returns the distinct non-null values appearing in the
// given attribute of the entity instance, plus the same attribute of the
// master relation when master covers it (matching by attribute name).
// The result is sorted by decreasing occurrence count in Ie, ties broken
// by value string, so callers obtain deterministic rankings. The counts
// returned alongside are the Ie occurrence counts (master-only values
// count 0).
func ActiveDomain(ie *EntityInstance, im *MasterRelation, attr string) ([]Value, []int) {
	type entry struct {
		v Value
		n int
	}
	byKey := map[string]*entry{}
	var order []string
	a := ie.Schema().Index(attr)
	if a >= 0 {
		for _, t := range ie.Tuples() {
			v := t.At(a)
			if v.IsNull() {
				continue
			}
			k := v.Key()
			if e, ok := byKey[k]; ok {
				e.n++
			} else {
				byKey[k] = &entry{v: v, n: 1}
				order = append(order, k)
			}
		}
	}
	if im != nil {
		if ma := im.Schema().Index(attr); ma >= 0 {
			for _, t := range im.Tuples() {
				v := t.At(ma)
				if v.IsNull() {
					continue
				}
				k := v.Key()
				if _, ok := byKey[k]; !ok {
					byKey[k] = &entry{v: v, n: 0}
					order = append(order, k)
				}
			}
		}
	}
	entries := make([]*entry, 0, len(order))
	for _, k := range order {
		entries = append(entries, byKey[k])
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return entries[i].v.String() < entries[j].v.String()
	})
	vals := make([]Value, len(entries))
	counts := make([]int, len(entries))
	for i, e := range entries {
		vals[i] = e.v
		counts[i] = e.n
	}
	return vals, counts
}
