package model

import (
	"math"
	"strconv"
	"testing"
)

// FuzzValueCanon pins the canonicalization contract that value
// interning (Dict) is built on: Norm must be a true canonical form.
// For arbitrary parsed values v, w the invariants are
//
//  1. Norm is idempotent and allocation-free comparable: Norm(Norm(v))
//     == Norm(v) under Go ==.
//  2. Norm classes and Key strings coincide: Norm(v) == Norm(w) iff
//     Key(v) == Key(w). (This is what lets the chase mix Key-based and
//     Norm/ID-based grouping without ever disagreeing.)
//  3. Equal(v, w) implies Norm(v) == Norm(w); the converse holds for
//     everything except NaN, which Equal (IEEE) rejects and Norm/Key
//     deliberately fold into one class.
//  4. Quote/Parse round-trips preserve the Norm class: a value printed
//     unambiguously and re-parsed lands in the same class (String is
//     lossy for strings that look like literals — that is what Quote
//     is for).
//
// The seeds cover the corners named in the dictionary design: NaN, ±0,
// numeric strings vs numbers, quoted literals and int/float folding.
func FuzzValueCanon(f *testing.F) {
	seeds := []string{
		"", "null", "NULL", "true", "false",
		"0", "-0", "0.0", "-0.0", "3", "3.0", "-17", "2.5",
		"NaN", "-NaN", "nan", "Inf", "-Inf", "+Inf", "1e300", "-1e-300",
		"9007199254740993",    // 2⁵³+1: int magnitude beyond float64 precision
		"9223372036854775807", // MaxInt64
		`"3"`, `"null"`, `""`, `"true"`, "x", "⊥", "a b", `"quo\"ted"`,
		"00", "0x10", "1_000", ".5", "5.", "1e", "--1",
	}
	for _, s := range seeds {
		for _, t := range seeds {
			f.Add(s, t)
		}
	}
	f.Fuzz(func(t *testing.T, s1, s2 string) {
		v, w := Parse(s1), Parse(s2)

		// (1) Idempotence.
		if v.Norm() != v.Norm().Norm() {
			t.Fatalf("Norm not idempotent for %q: %#v vs %#v", s1, v.Norm(), v.Norm().Norm())
		}

		// (2) Norm classes == Key classes.
		sameNorm := v.Norm() == w.Norm()
		sameKey := v.Key() == w.Key()
		if sameNorm != sameKey {
			t.Fatalf("Norm/Key disagree for %q vs %q: sameNorm=%v sameKey=%v (norms %#v %#v, keys %q %q)",
				s1, s2, sameNorm, sameKey, v.Norm(), w.Norm(), v.Key(), w.Key())
		}

		// (3) Equal refines Norm equality, exactly up to NaN.
		if v.Equal(w) && !sameNorm {
			t.Fatalf("Equal values %q, %q have different Norms", s1, s2)
		}
		isNaN := v.Kind() == Float && math.IsNaN(v.Float())
		if sameNorm && !isNaN && !v.Equal(w) {
			t.Fatalf("same-Norm values %q, %q are not Equal", s1, s2)
		}

		// (4) Quote/Parse round-trip stays in the class.
		rt := Parse(v.Quote())
		if rt.Norm() != v.Norm() {
			t.Fatalf("round-trip moved %q out of its Norm class: %q -> %#v vs %#v",
				s1, v.Quote(), rt.Norm(), v.Norm())
		}

		// String stays parseable for non-strings (strings may collide
		// with literals; Quote covers those above).
		if v.Kind() == Int {
			if i, err := strconv.ParseInt(v.String(), 10, 64); err != nil || i != v.Int() {
				t.Fatalf("Int String round-trip broke: %q", v.String())
			}
		}
	})
}
