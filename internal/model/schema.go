package model

import (
	"fmt"
	"strings"
)

// Schema is a relation schema R = (A1, ..., An): a relation name plus an
// ordered list of attribute names. Schemas are immutable after creation.
type Schema struct {
	name  string
	attrs []string
	index map[string]int
}

// NewSchema builds a schema. Attribute names must be non-empty and
// pairwise distinct.
func NewSchema(name string, attrs ...string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("model: schema name must be non-empty")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("model: schema %q needs at least one attribute", name)
	}
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("model: schema %q has an empty attribute name at position %d", name, i)
		}
		if _, dup := idx[a]; dup {
			return nil, fmt.Errorf("model: schema %q has duplicate attribute %q", name, a)
		}
		idx[a] = i
	}
	return &Schema{name: name, attrs: append([]string(nil), attrs...), index: idx}, nil
}

// MustSchema is NewSchema but panics on error; intended for tests,
// examples and static schema definitions.
func MustSchema(name string, attrs ...string) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attrs returns a copy of the attribute list in declaration order.
func (s *Schema) Attrs() []string { return append([]string(nil), s.attrs...) }

// Attr returns the name of the i-th attribute.
func (s *Schema) Attr(i int) string { return s.attrs[i] }

// Index returns the position of attribute a, or -1 if absent.
func (s *Schema) Index(a string) int {
	if i, ok := s.index[a]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains attribute a.
func (s *Schema) Has(a string) bool { _, ok := s.index[a]; return ok }

// String renders the schema as name(A1, A2, ...).
func (s *Schema) String() string {
	return s.name + "(" + strings.Join(s.attrs, ", ") + ")"
}

// Same reports structural equality: identical name and attribute list.
func (s *Schema) Same(o *Schema) bool {
	if s == o {
		return true
	}
	if o == nil || s.name != o.name || len(s.attrs) != len(o.attrs) {
		return false
	}
	for i, a := range s.attrs {
		if o.attrs[i] != a {
			return false
		}
	}
	return true
}

// Tuple is a tuple of one schema: a dense slice of values aligned with
// the schema's attributes. Tuples are mutable; the chase never mutates
// instance tuples, only target templates.
//
// A tuple can carry a cached dictionary-ID row alongside its values
// (Intern, SetAtID): candidate templates assembled by the top-k search
// are interned once, so the thousands of chase checks they feed skip
// all value hashing. The cache is tagged with the Dict it refers to —
// IDs from one dictionary are meaningless in another — and SetAt/Set
// keep it coherent by invalidating the touched position.
type Tuple struct {
	schema *Schema
	vals   []Value
	dict   *Dict    // dictionary the cached IDs belong to; nil = no cache
	ids    []uint32 // aligned with vals when dict != nil; NoID = not cached
}

// NewTuple creates a tuple of the given schema with every attribute null.
func NewTuple(s *Schema) *Tuple {
	return &Tuple{schema: s, vals: make([]Value, s.Arity())}
}

// TupleOf creates a tuple from explicit values; len(vals) must equal the
// schema arity.
func TupleOf(s *Schema, vals ...Value) (*Tuple, error) {
	if len(vals) != s.Arity() {
		return nil, fmt.Errorf("model: tuple for %s needs %d values, got %d", s.Name(), s.Arity(), len(vals))
	}
	return &Tuple{schema: s, vals: append([]Value(nil), vals...)}, nil
}

// MustTuple is TupleOf but panics on error.
func MustTuple(s *Schema, vals ...Value) *Tuple {
	t, err := TupleOf(s, vals...)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the tuple's schema.
func (t *Tuple) Schema() *Schema { return t.schema }

// At returns the value at attribute position i.
func (t *Tuple) At(i int) Value { return t.vals[i] }

// SetAt overwrites the value at attribute position i. A cached ID row
// stays coherent: the touched position is re-derived for null (whose ID
// is fixed) and invalidated otherwise.
func (t *Tuple) SetAt(i int, v Value) {
	t.vals[i] = v
	if t.dict != nil {
		if v.IsNull() {
			t.ids[i] = NullID
		} else {
			t.ids[i] = NoID
		}
	}
}

// SetAtID overwrites position i with v together with its ID in d, so a
// later IDIn(d, i) is a cache hit. A cache tagged with a different
// dictionary is discarded first: mixed-dictionary rows would alias
// unrelated values.
func (t *Tuple) SetAtID(i int, v Value, d *Dict, id uint32) {
	t.vals[i] = v
	if t.dict != d {
		t.dict = d
		t.ids = make([]uint32, len(t.vals))
		for j := range t.ids {
			t.ids[j] = NoID
		}
	}
	t.ids[i] = id
}

// Intern caches the dictionary IDs of every value under d (interning
// values d has not seen) and returns t for chaining. The chase reads
// the row back with IDIn instead of hashing values per check.
func (t *Tuple) Intern(d *Dict) *Tuple {
	if t.dict != d || t.ids == nil {
		t.dict = d
		t.ids = make([]uint32, len(t.vals))
	}
	for i, v := range t.vals {
		t.ids[i] = d.Intern(v)
	}
	return t
}

// IDIn returns the cached ID of position i relative to d; ok is false
// when the cache is absent, stale, or tagged with another dictionary.
func (t *Tuple) IDIn(d *Dict, i int) (uint32, bool) {
	if t.dict != d || t.dict == nil {
		return 0, false
	}
	id := t.ids[i]
	return id, id != NoID
}

// Get returns the value of the named attribute; the second result is
// false if the attribute does not exist.
func (t *Tuple) Get(attr string) (Value, bool) {
	i := t.schema.Index(attr)
	if i < 0 {
		return Value{}, false
	}
	return t.vals[i], true
}

// Set assigns the named attribute; it reports whether the attribute
// exists.
func (t *Tuple) Set(attr string, v Value) bool {
	i := t.schema.Index(attr)
	if i < 0 {
		return false
	}
	t.SetAt(i, v)
	return true
}

// Clone returns a deep copy of the tuple, cached ID row included.
func (t *Tuple) Clone() *Tuple {
	out := &Tuple{schema: t.schema, vals: append([]Value(nil), t.vals...), dict: t.dict}
	if t.ids != nil {
		out.ids = append([]uint32(nil), t.ids...)
	}
	return out
}

// Complete reports whether no attribute is null.
func (t *Tuple) Complete() bool {
	for _, v := range t.vals {
		if v.IsNull() {
			return false
		}
	}
	return true
}

// NullAttrs returns the positions of null attributes in ascending order.
func (t *Tuple) NullAttrs() []int {
	var out []int
	for i, v := range t.vals {
		if v.IsNull() {
			out = append(out, i)
		}
	}
	return out
}

// EqualTo reports whether u has a structurally identical schema and
// Equal values in every position.
func (t *Tuple) EqualTo(u *Tuple) bool {
	if !t.schema.Same(u.schema) || len(t.vals) != len(u.vals) {
		return false
	}
	for i := range t.vals {
		if !t.vals[i].Equal(u.vals[i]) {
			return false
		}
	}
	return true
}

// Key returns a map key identifying the tuple's values.
func (t *Tuple) Key() string {
	var b strings.Builder
	for i, v := range t.vals {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// String renders the tuple as (v1, v2, ...).
func (t *Tuple) String() string {
	parts := make([]string, len(t.vals))
	for i, v := range t.vals {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
