package model

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestDictNullIsZero(t *testing.T) {
	d := NewDict()
	if d.Size() != 1 {
		t.Fatalf("fresh dict holds %d values, want 1 (null)", d.Size())
	}
	if id := d.Intern(NullValue()); id != NullID {
		t.Fatalf("null interned as %d, want %d", id, NullID)
	}
	if id, ok := d.Lookup(NullValue()); !ok || id != NullID {
		t.Fatalf("null lookup = (%d, %v), want (0, true)", id, ok)
	}
}

func TestDictEqualValuesShareID(t *testing.T) {
	d := NewDict()
	negZero := math.Copysign(0, -1)
	cases := [][2]Value{
		{I(3), F(3)},           // numeric cross-kind equality
		{F(0), F(negZero)},     // signed zeros
		{S("x"), S("x")},       // plain strings
		{B(true), B(true)},     // booleans
		{Parse("2.5"), F(2.5)}, // parse agrees with constructor
	}
	for i, c := range cases {
		a, b := d.Intern(c[0]), d.Intern(c[1])
		if a != b {
			t.Fatalf("case %d: %s and %s interned as %d and %d", i, c[0].Quote(), c[1].Quote(), a, b)
		}
	}
}

func TestDictDistinctValuesGetDistinctIDs(t *testing.T) {
	d := NewDict()
	vals := []Value{S("a"), S("b"), I(1), I(2), F(1.5), B(true), B(false), S("1"), S("true")}
	seen := map[uint32]Value{NullID: NullValue()}
	for _, v := range vals {
		id := d.Intern(v)
		if prev, dup := seen[id]; dup {
			t.Fatalf("%s and %s share ID %d", prev.Quote(), v.Quote(), id)
		}
		seen[id] = v
	}
	if d.Size() != len(vals)+1 {
		t.Fatalf("dict holds %d values, want %d", d.Size(), len(vals)+1)
	}
}

func TestDictAppendOnlyAcrossPromotions(t *testing.T) {
	d := NewDict()
	const n = 10_000 // far past several promotions
	ids := make([]uint32, n)
	for i := 0; i < n; i++ {
		ids[i] = d.Intern(S(fmt.Sprintf("v%d", i)))
	}
	// Every earlier ID must survive every later append (the version
	// stability chase.Grounding.Extend depends on).
	for i := 0; i < n; i++ {
		if got := d.Intern(S(fmt.Sprintf("v%d", i))); got != ids[i] {
			t.Fatalf("value %d re-interned as %d, first saw %d", i, got, ids[i])
		}
		if v := d.ValueOf(ids[i]); v.Str() != fmt.Sprintf("v%d", i) {
			t.Fatalf("ValueOf(%d) = %s", ids[i], v.Quote())
		}
	}
}

// TestDictConcurrentIntern exercises the lock-free read / serialised
// append protocol under the race detector: all goroutines must agree on
// every value's ID while interning overlapping and fresh value sets.
func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict()
	const workers, per = 8, 500
	got := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint32, 0, 2*per)
			for i := 0; i < per; i++ {
				ids = append(ids, d.Intern(S(fmt.Sprintf("shared%d", i)))) // contended
				ids = append(ids, d.Intern(I(int64(w*per+i))))             // private
				if id, ok := d.Lookup(S(fmt.Sprintf("shared%d", i))); !ok || id != ids[len(ids)-2] {
					panic("lookup disagrees with intern")
				}
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := 0; i < per; i++ {
			if got[w][2*i] != got[0][2*i] {
				t.Fatalf("worker %d saw shared%d as %d, worker 0 saw %d", w, i, got[w][2*i], got[0][2*i])
			}
		}
	}
	if want := 1 + per + workers*per; d.Size() != want {
		t.Fatalf("dict holds %d values, want %d", d.Size(), want)
	}
}

func TestTupleIDRow(t *testing.T) {
	s := MustSchema("R", "a", "b", "c")
	d := NewDict()
	tu := MustTuple(s, S("x"), I(7), NullValue()).Intern(d)
	for i := 0; i < 3; i++ {
		id, ok := tu.IDIn(d, i)
		if !ok {
			t.Fatalf("position %d not cached after Intern", i)
		}
		if want := d.Intern(tu.At(i)); id != want {
			t.Fatalf("position %d cached %d, dict says %d", i, id, want)
		}
	}
	// SetAt invalidates (non-null) or fixes up (null).
	tu.SetAt(0, S("y"))
	if _, ok := tu.IDIn(d, 0); ok {
		t.Fatal("stale ID survived SetAt")
	}
	tu.SetAt(1, NullValue())
	if id, ok := tu.IDIn(d, 1); !ok || id != NullID {
		t.Fatalf("null SetAt cached (%d, %v), want (0, true)", id, ok)
	}
	// SetAtID re-validates; a different dict discards the whole row.
	tu.SetAtID(0, S("y"), d, d.Intern(S("y")))
	if id, ok := tu.IDIn(d, 0); !ok || id != d.Intern(S("y")) {
		t.Fatalf("SetAtID row = (%d, %v)", id, ok)
	}
	d2 := NewDict()
	tu.SetAtID(2, S("z"), d2, d2.Intern(S("z")))
	if _, ok := tu.IDIn(d, 0); ok {
		t.Fatal("cache for old dict answered after re-tagging")
	}
	if id, ok := tu.IDIn(d2, 2); !ok || id != d2.Intern(S("z")) {
		t.Fatalf("re-tagged row = (%d, %v)", id, ok)
	}
	// Clone carries the cache.
	cl := tu.Clone()
	if id, ok := cl.IDIn(d2, 2); !ok || id != d2.Intern(S("z")) {
		t.Fatal("clone lost the ID row")
	}
	cl.SetAt(2, S("w"))
	if _, ok := tu.IDIn(d2, 2); !ok {
		t.Fatal("mutating the clone touched the original's row")
	}
}
