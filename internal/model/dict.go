package model

import (
	"math"
	"sync"
	"sync/atomic"
)

// NullID is the reserved dictionary ID of the null value. Every Dict is
// born with null interned at ID 0, so "id == NullID" is the ID-level
// null test and a zeroed ID buffer reads as an all-null row.
const NullID uint32 = 0

// NoID is the sentinel marking an absent cached ID (see Tuple). It is
// never a valid dictionary ID: a Dict refuses to grow that far.
const NoID = ^uint32(0)

// Dict is an append-only dictionary interning attribute values as dense
// uint32 IDs. Two values receive the same ID exactly when their
// canonical forms (Value.Norm) coincide — the same equivalence Key and
// the chase's value grouping already use — so ID equality substitutes
// for Value.Equal everywhere the chase compares values. The deliberate
// divergences from Equal are those of Norm/Key themselves: NaN folds
// into a single class (Equal follows IEEE and rejects it), and int64
// magnitudes beyond float64 precision collide with their float
// neighbours, exactly as their Key strings always have (see Norm and
// Key). The chase previously mixed Key-based grouping with Equal-based
// target comparison, so those corners were path-dependent; IDs make
// them uniformly canonical.
//
// A Dict is safe for concurrent use and its reads never block: lookups
// consult an immutable snapshot map through an atomic pointer, so any
// number of goroutines may resolve IDs while others intern new values.
// Interning serialises writers on an internal mutex but never touches
// the snapshot readers see; newly interned values live in a small
// overlay that is folded into a fresh snapshot once it has grown to the
// snapshot's size (the sync.Map promotion scheme, with typed maps).
//
// IDs are append-only and version-stable: an ID, once assigned, is
// never reassigned or removed, so IDs cached by one grounding version
// stay valid for every later version of the same schema's groundwork
// (chase.Grounding.Extend relies on this — see DESIGN.md invariants).
type Dict struct {
	read atomic.Pointer[map[Value]uint32] // immutable snapshot; never written
	vals atomic.Pointer[[]Value]          // ID → canonical value; append-only

	mu    sync.Mutex       // guards dirty and all appends
	dirty map[Value]uint32 // entries newer than the snapshot
}

// NewDict creates a dictionary holding only the null value (as NullID).
func NewDict() *Dict {
	d := &Dict{dirty: make(map[Value]uint32)}
	read := map[Value]uint32{{}: NullID}
	vals := []Value{{}}
	d.read.Store(&read)
	d.vals.Store(&vals)
	return d
}

// Size returns the number of interned values, including null.
func (d *Dict) Size() int { return len(*d.vals.Load()) }

// Lookup returns the ID of v if some Equal value has been interned
// (null always has). It takes no lock when the value is in the current
// snapshot, and never interns.
func (d *Dict) Lookup(v Value) (uint32, bool) {
	nv := v.Norm()
	if id, ok := (*d.read.Load())[nv]; ok {
		return id, true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Re-check the snapshot under the lock: a concurrent promote() may
	// have moved nv from the overlay into a fresh snapshot between the
	// read above and the lock acquisition.
	if id, ok := (*d.read.Load())[nv]; ok {
		return id, true
	}
	id, ok := d.dirty[nv]
	return id, ok
}

// Intern returns the ID of v, assigning the next free ID when no Equal
// value has been interned yet. The hot path — a value already in the
// snapshot — is a single lock-free map read.
func (d *Dict) Intern(v Value) uint32 {
	nv := v.Norm()
	if id, ok := (*d.read.Load())[nv]; ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Re-check under the lock: the snapshot may have been promoted, or a
	// racing Intern may have added nv to the overlay.
	if id, ok := (*d.read.Load())[nv]; ok {
		return id
	}
	if id, ok := d.dirty[nv]; ok {
		return id
	}
	vals := *d.vals.Load()
	id := uint32(len(vals))
	if id == NoID {
		panic("model: dictionary overflow (2³²-1 distinct values)")
	}
	// Publish the grown ID→value slice before the ID becomes findable.
	// Readers holding the old header never index the new element;
	// readers loading the new header see it fully written. NaN is kept
	// as a real float so ValueOf renders faithfully (its Norm is an
	// opaque sentinel usable only as a map key).
	stored := nv
	if v.Kind() == Float && math.IsNaN(v.Float()) {
		stored = v
	}
	vals = append(vals, stored)
	d.vals.Store(&vals)
	d.dirty[nv] = id
	if len(d.dirty) >= len(*d.read.Load()) {
		d.promote()
	}
	return id
}

// promote folds the overlay into a fresh immutable snapshot. Called
// with mu held; amortised O(1) per Intern by geometric growth.
func (d *Dict) promote() {
	old := *d.read.Load()
	merged := make(map[Value]uint32, len(old)+len(d.dirty))
	for v, id := range old {
		merged[v] = id
	}
	for v, id := range d.dirty {
		merged[v] = id
	}
	d.read.Store(&merged)
	d.dirty = make(map[Value]uint32)
}

// ValueOf returns the canonical (Norm) representative interned under
// id. It panics when id was never assigned.
func (d *Dict) ValueOf(id uint32) Value { return (*d.vals.Load())[id] }
