package model

import "testing"

func TestNewSchema(t *testing.T) {
	s, err := NewSchema("r", "a", "b", "c")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if s.Arity() != 3 || s.Name() != "r" {
		t.Errorf("arity/name wrong: %d %q", s.Arity(), s.Name())
	}
	if s.Index("b") != 1 || s.Index("missing") != -1 {
		t.Errorf("Index wrong")
	}
	if !s.Has("c") || s.Has("") {
		t.Errorf("Has wrong")
	}
	if s.String() != "r(a, b, c)" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema("", "a"); err == nil {
		t.Errorf("empty name should fail")
	}
	if _, err := NewSchema("r"); err == nil {
		t.Errorf("no attributes should fail")
	}
	if _, err := NewSchema("r", "a", "a"); err == nil {
		t.Errorf("duplicate attribute should fail")
	}
	if _, err := NewSchema("r", "a", ""); err == nil {
		t.Errorf("empty attribute should fail")
	}
}

func TestTupleBasics(t *testing.T) {
	s := MustSchema("r", "a", "b")
	tp := NewTuple(s)
	if tp.Complete() {
		t.Errorf("fresh tuple should be incomplete")
	}
	if got := tp.NullAttrs(); len(got) != 2 {
		t.Errorf("NullAttrs = %v", got)
	}
	if !tp.Set("a", S("x")) {
		t.Errorf("Set failed")
	}
	if tp.Set("zz", S("x")) {
		t.Errorf("Set on missing attribute should fail")
	}
	v, ok := tp.Get("a")
	if !ok || !v.Equal(S("x")) {
		t.Errorf("Get = %v %v", v, ok)
	}
	if _, ok := tp.Get("zz"); ok {
		t.Errorf("Get on missing attribute should fail")
	}
	tp.Set("b", I(1))
	if !tp.Complete() {
		t.Errorf("tuple should be complete")
	}
	cl := tp.Clone()
	cl.Set("a", S("y"))
	if v, _ := tp.Get("a"); !v.Equal(S("x")) {
		t.Errorf("Clone aliases the original")
	}
	if tp.String() != "(x, 1)" {
		t.Errorf("String() = %q", tp.String())
	}
}

func TestTupleEqualKey(t *testing.T) {
	s := MustSchema("r", "a", "b")
	t1 := MustTuple(s, S("x"), I(1))
	t2 := MustTuple(s, S("x"), I(1))
	t3 := MustTuple(s, S("x"), I(2))
	if !t1.EqualTo(t2) || t1.EqualTo(t3) {
		t.Errorf("EqualTo wrong")
	}
	if t1.Key() != t2.Key() || t1.Key() == t3.Key() {
		t.Errorf("Key wrong")
	}
}

func TestTupleOfArity(t *testing.T) {
	s := MustSchema("r", "a", "b")
	if _, err := TupleOf(s, S("x")); err == nil {
		t.Errorf("short tuple should fail")
	}
}

func TestEntityInstance(t *testing.T) {
	s := MustSchema("r", "a")
	ie := NewEntityInstance(s)
	if ie.Size() != 0 {
		t.Errorf("fresh instance non-empty")
	}
	i, err := ie.AddValues(S("x"))
	if err != nil || i != 0 {
		t.Fatalf("AddValues: %v %d", err, i)
	}
	ie.MustAdd(MustTuple(s, S("y")))
	if ie.Size() != 2 {
		t.Errorf("Size = %d", ie.Size())
	}
	if !ie.Value(1, 0).Equal(S("y")) {
		t.Errorf("Value wrong")
	}
	other := MustSchema("q", "a")
	if _, err := ie.Add(MustTuple(other, S("z"))); err == nil {
		t.Errorf("cross-schema add should fail")
	}
	cl := ie.Clone()
	cl.Tuple(0).Set("a", S("z"))
	if !ie.Value(0, 0).Equal(S("x")) {
		t.Errorf("Clone aliases")
	}
}

func TestMasterRelation(t *testing.T) {
	ms := MustSchema("m", "a", "b")
	im := NewMasterRelation(ms)
	if im.Size() != 0 {
		t.Errorf("fresh master non-empty")
	}
	if err := im.AddValues(S("x"), I(1)); err != nil {
		t.Fatalf("AddValues: %v", err)
	}
	im.MustAdd(MustTuple(ms, S("y"), I(2)))
	if im.Size() != 2 {
		t.Errorf("Size = %d", im.Size())
	}
	tr := im.Truncate(1)
	if tr.Size() != 1 || im.Size() != 2 {
		t.Errorf("Truncate wrong: %d %d", tr.Size(), im.Size())
	}
	if im.Truncate(99).Size() != 2 {
		t.Errorf("Truncate beyond size wrong")
	}
	var nilIm *MasterRelation
	if nilIm.Size() != 0 || nilIm.Truncate(3) != nil || nilIm.Tuples() != nil {
		t.Errorf("nil master should behave as empty")
	}
}

func TestActiveDomain(t *testing.T) {
	s := MustSchema("r", "a")
	ie := NewEntityInstance(s)
	ie.MustAdd(MustTuple(s, S("x")))
	ie.MustAdd(MustTuple(s, S("y")))
	ie.MustAdd(MustTuple(s, S("x")))
	ie.MustAdd(MustTuple(s, NullValue()))

	ms := MustSchema("m", "a")
	im := NewMasterRelation(ms)
	im.MustAdd(MustTuple(ms, S("z")))
	im.MustAdd(MustTuple(ms, S("x")))

	vals, counts := ActiveDomain(ie, im, "a")
	if len(vals) != 3 {
		t.Fatalf("domain = %v", vals)
	}
	if !vals[0].Equal(S("x")) || counts[0] != 2 {
		t.Errorf("most frequent should be x(2), got %v(%d)", vals[0], counts[0])
	}
	if !vals[1].Equal(S("y")) || counts[1] != 1 {
		t.Errorf("second should be y(1), got %v(%d)", vals[1], counts[1])
	}
	if !vals[2].Equal(S("z")) || counts[2] != 0 {
		t.Errorf("master-only value should be z(0), got %v(%d)", vals[2], counts[2])
	}

	// Attribute not covered by master.
	vals2, _ := ActiveDomain(ie, nil, "a")
	if len(vals2) != 2 {
		t.Errorf("without master: %v", vals2)
	}
}
