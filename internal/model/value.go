// Package model defines the data model underlying relative-accuracy
// reasoning: typed attribute values, relation schemas, tuples, entity
// instances and master relations, as in Section 2.1 of Cao, Fan and Yu,
// "Determining the Relative Accuracy of Attributes" (SIGMOD 2013).
//
// An entity instance Ie is a set of tuples of one schema R that all refer
// to the same real-world entity; a master relation Im is a set of
// high-quality tuples of a (possibly different) schema Rm. All higher
// layers — accuracy orders, accuracy rules, the chase, top-k candidate
// search — are built on these types.
package model

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types an attribute value can take.
// The zero Kind is Null, so a zero Value is the null value.
type Kind uint8

const (
	// Null is the missing value; it compares equal only to itself and is
	// unordered with respect to every other value.
	Null Kind = iota
	// String values compare lexicographically.
	String
	// Int values are signed 64-bit integers.
	Int
	// Float values are 64-bit IEEE floats. Ints and Floats compare
	// numerically with each other.
	Float
	// Bool values order false < true.
	Bool
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable, dynamically typed attribute value. The zero
// Value is null. Values are comparable with == only through Equal;
// use Compare for ordering.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// NullValue returns the null value.
func NullValue() Value { return Value{} }

// S returns a string value.
func S(s string) Value { return Value{kind: String, s: s} }

// I returns an integer value.
func I(i int64) Value { return Value{kind: Int, i: i} }

// F returns a float value.
func F(f float64) Value { return Value{kind: Float, f: f} }

// B returns a boolean value.
func B(b bool) Value { return Value{kind: Bool, b: b} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == Null }

// Str returns the string payload; it is only meaningful when Kind()==String.
func (v Value) Str() string { return v.s }

// Int returns the integer payload; it is only meaningful when Kind()==Int.
func (v Value) Int() int64 { return v.i }

// Float returns the numeric payload as a float64 for Int or Float values.
func (v Value) Float() float64 {
	if v.kind == Int {
		return float64(v.i)
	}
	return v.f
}

// Bool returns the boolean payload; it is only meaningful when Kind()==Bool.
func (v Value) Bool() bool { return v.b }

// Equal reports whether two values are identical. Int and Float values
// are numerically compared (I(3).Equal(F(3)) is true); null equals only
// null.
func (v Value) Equal(w Value) bool {
	if v.kind == w.kind {
		switch v.kind {
		case Null:
			return true
		case String:
			return v.s == w.s
		case Int:
			return v.i == w.i
		case Float:
			return v.f == w.f
		case Bool:
			return v.b == w.b
		}
	}
	if v.isNumeric() && w.isNumeric() {
		return v.Float() == w.Float()
	}
	return false
}

func (v Value) isNumeric() bool { return v.kind == Int || v.kind == Float }

// Comparable reports whether v and w can be ordered with Compare:
// both non-null and of the same kind, or both numeric.
func (v Value) Comparable(w Value) bool {
	if v.kind == Null || w.kind == Null {
		return false
	}
	if v.kind == w.kind {
		return true
	}
	return v.isNumeric() && w.isNumeric()
}

// Compare orders v against w, returning -1, 0 or +1. The second result
// is false when the values are incomparable (either is null, or the
// kinds are unrelated). Booleans order false < true.
func (v Value) Compare(w Value) (int, bool) {
	if !v.Comparable(w) {
		return 0, false
	}
	if v.isNumeric() && w.isNumeric() {
		a, b := v.Float(), w.Float()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	switch v.kind {
	case String:
		return strings.Compare(v.s, w.s), true
	case Bool:
		switch {
		case v.b == w.b:
			return 0, true
		case !v.b:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

// String renders the value for display. Null renders as "null"; strings
// render verbatim.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "null"
	case String:
		return v.s
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// Quote renders the value unambiguously: strings are double-quoted,
// everything else as String(). Used by rule and tuple printers.
func (v Value) Quote() string {
	if v.kind == String {
		return strconv.Quote(v.s)
	}
	return v.String()
}

// Norm returns a canonical representative of v with the same equality
// semantics as Key: Equal values normalize identically, ints fold into
// floats (they compare equal numerically, so int64 magnitudes beyond
// float64 precision collide — exactly as their Key strings do), and
// unused payload fields are zeroed. The result is directly usable as a
// map key and — unlike Key — allocates nothing.
//
// Norm is a true canonical form: Norm(v) == Norm(w) (Go ==) exactly
// when Key(v) == Key(w), and Equal(v, w) implies equal Norms. Value
// interning (Dict) is sound only because of this — the fuzz test
// FuzzValueCanon pins it. The one value equal Norms do NOT imply Equal
// for is NaN: IEEE makes NaN unequal to itself, but Key and Norm fold
// all NaNs into one class so maps and dictionaries stay usable.
func (v Value) Norm() Value {
	switch v.kind {
	case String:
		return Value{kind: String, s: v.s}
	case Int:
		return Value{kind: Float, f: float64(v.i)}
	case Float:
		if math.IsNaN(v.f) {
			// NaN != NaN under ==, which would make the result useless
			// as a map key; fold every NaN to a sentinel no real value
			// normalizes to, preserving Key's "nNaN" grouping.
			return Value{kind: Bool, s: "NaN"}
		}
		if v.f == 0 {
			// Fold -0.0 into +0.0: they are == (so they'd collide as map
			// keys anyway) but format differently, which would desync
			// Norm classes from Key strings.
			return Value{kind: Float, f: 0}
		}
		return Value{kind: Float, f: v.f}
	case Bool:
		// Preserve the s payload: the NaN sentinel above is Bool-kinded
		// with s == "NaN", and Norm must be idempotent on its own output
		// (FuzzValueCanon pins this).
		return Value{kind: Bool, s: v.s, b: v.b}
	default:
		return Value{}
	}
}

// Key returns a string that is identical exactly for Equal values, for
// use as a map key. Numeric values of equal magnitude share a key
// (including -0.0 and +0.0, which are numerically equal).
func (v Value) Key() string {
	switch v.kind {
	case Null:
		return "\x00"
	case String:
		return "s" + v.s
	case Int:
		return "n" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case Float:
		f := v.f
		if f == 0 {
			f = 0 // fold -0.0 into +0.0, matching Norm
		}
		return "n" + strconv.FormatFloat(f, 'g', -1, 64)
	case Bool:
		return "b" + strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// Parse interprets a literal string as a Value: "null" or "" is null,
// "true"/"false" are booleans, integer and float literals are numeric,
// and anything else (or anything double-quoted) is a string.
func Parse(s string) Value {
	switch s {
	case "", "null", "NULL":
		return NullValue()
	case "true":
		return B(true)
	case "false":
		return B(false)
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if unq, err := strconv.Unquote(s); err == nil {
			return S(unq)
		}
		return S(s[1 : len(s)-1])
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return I(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return F(f)
	}
	return S(s)
}
