package paperdata_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
)

// TestTable1Shape checks the fixture against Table 1 of the paper.
func TestTable1Shape(t *testing.T) {
	ie := paperdata.Stat()
	if ie.Size() != 4 {
		t.Fatalf("stat has %d tuples, want 4", ie.Size())
	}
	if ie.Schema().Arity() != 9 {
		t.Fatalf("stat has %d attributes, want 9", ie.Schema().Arity())
	}
	// Spot-check the cells the running example depends on.
	if v, _ := ie.Tuple(0).Get(paperdata.FN); !v.Equal(model.S("MJ")) {
		t.Errorf("t1[FN] = %v", v)
	}
	if v, _ := ie.Tuple(1).Get(paperdata.Rnds); !v.Equal(model.I(27)) {
		t.Errorf("t2[rnds] = %v", v)
	}
	if v, _ := ie.Tuple(3).Get(paperdata.MN); !v.Equal(model.S("Jeffrey")) {
		t.Errorf("t4[MN] = %v", v)
	}
	if v, _ := ie.Tuple(0).Get(paperdata.MN); !v.IsNull() {
		t.Errorf("t1[MN] = %v, want null", v)
	}
	if v, _ := ie.Tuple(3).Get(paperdata.League); !v.Equal(model.S("SL")) {
		t.Errorf("t4[league] = %v", v)
	}
}

// TestTable2Shape checks the master relation against Table 2.
func TestTable2Shape(t *testing.T) {
	im := paperdata.NBA()
	if im.Size() != 2 {
		t.Fatalf("nba has %d tuples, want 2", im.Size())
	}
	if v, _ := im.Tuple(0).Get("season"); !v.Equal(model.S("1994-95")) {
		t.Errorf("s1[season] = %v", v)
	}
	if v, _ := im.Tuple(1).Get("team"); !v.Equal(model.S("Washington Wizards")) {
		t.Errorf("s2[team] = %v", v)
	}
}

// TestRulesValidate: every fixture rule validates against the schemas,
// and the form split matches Table 3 (7 form-1 + 2 form-2, since ϕ6 is
// split per extracted attribute and ϕ7–ϕ9 are built-in axioms).
func TestRulesValidate(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Form1Only().Len(); got != 7 {
		t.Errorf("form-1 rules = %d, want 7 (ϕ1–ϕ5, ϕ10, ϕ11)", got)
	}
	if got := rs.Form2Only().Len(); got != 2 {
		t.Errorf("form-2 rules = %d, want 2 (ϕ6 split)", got)
	}
	if err := paperdata.Phi12().Validate(ie.Schema(), im.Schema()); err != nil {
		t.Errorf("phi12 invalid: %v", err)
	}
}

// TestTargetComplete: the Example 5 target fixture is complete and
// schema-compatible.
func TestTargetComplete(t *testing.T) {
	tgt := paperdata.Target()
	if !tgt.Complete() {
		t.Fatalf("target has nulls: %v", tgt)
	}
	if v, _ := tgt.Get(paperdata.Arena); !v.Equal(model.S("United Center")) {
		t.Errorf("target arena = %v", v)
	}
}
