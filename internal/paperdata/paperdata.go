// Package paperdata encodes the running example of the paper — the
// Michael Jordan 1994-95 season statistics of Tables 1 and 2 and the
// accuracy rules ϕ1–ϕ12 of Table 3 and Example 3 — as a reusable
// fixture. The golden tests, the quickstart example and the
// documentation all build on it.
package paperdata

import (
	"repro/internal/model"
	"repro/internal/rule"
)

// Attribute names of the stat relation (Table 1).
const (
	FN       = "FN"
	MN       = "MN"
	LN       = "LN"
	Rnds     = "rnds"
	TotalPts = "totalPts"
	JNo      = "J#"
	League   = "league"
	Team     = "team"
	Arena    = "arena"
)

// StatSchema returns the schema of the stat relation of Table 1.
func StatSchema() *model.Schema {
	return model.MustSchema("stat", FN, MN, LN, Rnds, TotalPts, JNo, League, Team, Arena)
}

// NBASchema returns the schema of the nba master relation of Table 2.
func NBASchema() *model.Schema {
	return model.MustSchema("nba", "FN", "LN", "league", "season", "team")
}

// Stat returns the entity instance of Table 1: four tuples about
// Michael Jordan's 1994-95 season, with conflicting and stale values.
func Stat() *model.EntityInstance {
	s := StatSchema()
	ie := model.NewEntityInstance(s)
	null := model.NullValue()
	ie.MustAdd(model.MustTuple(s,
		model.S("MJ"), null, null, model.I(16), model.I(424), model.I(45),
		model.S("NBA"), model.S("Chicago"), model.S("Chicago Stadium")))
	ie.MustAdd(model.MustTuple(s,
		model.S("Michael"), null, model.S("Jordan"), model.I(27), model.I(772), model.I(23),
		model.S("NBA"), model.S("Chicago Bulls"), model.S("United Center")))
	ie.MustAdd(model.MustTuple(s,
		model.S("Michael"), null, model.S("Jordan"), model.I(1), model.I(19), model.I(45),
		model.S("NBA"), model.S("Chicago Bulls"), model.S("United Center")))
	ie.MustAdd(model.MustTuple(s,
		model.S("Michael"), model.S("Jeffrey"), model.S("Jordan"), model.I(127), model.I(51), model.I(45),
		model.S("SL"), model.S("Birmingham Barons"), model.S("Regions Park")))
	return ie
}

// NBA returns the master relation of Table 2.
func NBA() *model.MasterRelation {
	s := NBASchema()
	im := model.NewMasterRelation(s)
	im.MustAdd(model.MustTuple(s,
		model.S("Michael"), model.S("Jordan"), model.S("NBA"), model.S("1994-95"), model.S("Chicago Bulls")))
	im.MustAdd(model.MustTuple(s,
		model.S("Michael"), model.S("Jordan"), model.S("NBA"), model.S("2001-02"), model.S("Washington Wizards")))
	return im
}

// Rules returns ϕ1–ϕ6, ϕ10 and ϕ11 (ϕ7–ϕ9 are the built-in axioms; ϕ6
// is split into one form-(2) rule per extracted attribute).
func Rules() []rule.Rule {
	return []rule.Rule{
		// ϕ1: same league and fewer rounds means less current.
		&rule.Form1{
			RuleName: "phi1",
			LHS: []rule.Pred{
				rule.Cmp(rule.T1(League), rule.Eq, rule.T2(League)),
				rule.Cmp(rule.T1(Rnds), rule.Lt, rule.T2(Rnds)),
			},
			RHS: Rnds,
		},
		// ϕ2: a more current rnds carries a more current jersey number.
		&rule.Form1{RuleName: "phi2", LHS: []rule.Pred{rule.Prec(Rnds)}, RHS: JNo},
		// ϕ3: ... and more current total points.
		&rule.Form1{RuleName: "phi3", LHS: []rule.Pred{rule.Prec(Rnds)}, RHS: TotalPts},
		// ϕ4: a more accurate league implies more accurate rounds.
		&rule.Form1{RuleName: "phi4", LHS: []rule.Pred{rule.Prec(League)}, RHS: Rnds},
		// ϕ5: a more accurate middle name implies a more accurate first name.
		&rule.Form1{RuleName: "phi5", LHS: []rule.Pred{rule.Prec(MN)}, RHS: FN},
		// ϕ6: master lookup by name and season (split per attribute).
		&rule.Form2{
			RuleName: "phi6a",
			Conds: []rule.MasterCond{
				rule.CondMaster(FN, "FN"),
				rule.CondMaster(LN, "LN"),
				rule.CondMasterConst("season", model.S("1994-95")),
			},
			TargetAttr: League,
			MasterAttr: "league",
		},
		&rule.Form2{
			RuleName: "phi6b",
			Conds: []rule.MasterCond{
				rule.CondMaster(FN, "FN"),
				rule.CondMaster(LN, "LN"),
				rule.CondMasterConst("season", model.S("1994-95")),
			},
			TargetAttr: Team,
			MasterAttr: "team",
		},
		// ϕ10: a more accurate middle name implies a more accurate last name.
		&rule.Form1{RuleName: "phi10", LHS: []rule.Pred{rule.Prec(MN)}, RHS: LN},
		// ϕ11: a more accurate team implies a more accurate arena.
		&rule.Form1{RuleName: "phi11", LHS: []rule.Pred{rule.Prec(Team)}, RHS: Arena},
	}
}

// Phi12 is the extra rule of Example 6 that breaks the Church-Rosser
// property: it prefers the SL league value over NBA, contradicting the
// master data.
func Phi12() rule.Rule {
	return &rule.Form1{
		RuleName: "phi12",
		LHS: []rule.Pred{
			rule.Cmp(rule.T1(League), rule.Eq, rule.C(model.S("NBA"))),
			rule.Cmp(rule.T2(League), rule.Eq, rule.C(model.S("SL"))),
		},
		RHS: League,
	}
}

// Target returns the complete target tuple deduced in Example 5:
// (Michael, Jeffrey, Jordan, 27, 772, 23, NBA, Chicago Bulls, United
// Center).
func Target() *model.Tuple {
	return model.MustTuple(StatSchema(),
		model.S("Michael"), model.S("Jeffrey"), model.S("Jordan"),
		model.I(27), model.I(772), model.I(23),
		model.S("NBA"), model.S("Chicago Bulls"), model.S("United Center"))
}
