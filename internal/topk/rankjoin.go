package topk

import (
	"errors"
	"fmt"

	"repro/internal/chase"
	"repro/internal/model"
)

// ErrBudget reports that RankJoinCT hit its MaxGenerated bound before
// finding k candidates; the candidates found so far are still returned.
// This is the materialisation blow-up the paper criticises RankJoinCT
// for (Section 6.1) — TopKCT exists to avoid it.
var ErrBudget = errors.New("topk: RankJoinCT exceeded its join-state budget")

// RankJoinOptions bounds RankJoinCT's join-state materialisation, which
// the paper identifies as its weakness (Section 6.1): the algorithm
// buffers the cross product of the list prefixes it has read.
type RankJoinOptions struct {
	// MaxGenerated caps the number of buffered join combinations;
	// 0 means 4,000,000 and negative values are rejected. Exceeding
	// the cap aborts with ErrBudget, returning the candidates verified
	// so far together with the Stats of the aborted search.
	MaxGenerated int
}

// RankJoinCT computes top-k candidate targets by extending a top-k
// rank-join (HRJN-style, [Ilyas et al. VLDB'04; Schnaitter & Polyzotis
// PODS'08]) over the ranked value lists of the null attributes: lists
// are read in round-robin, every new value joins with all previously
// seen values of the other lists, and a combination is emitted — then
// verified with the chase-based check — once its score reaches the
// rank-join threshold, which guarantees no unseen combination can score
// higher. It is exact (same output as TopKCT) but materialises
// exponentially many combinations, which TopKCT avoids.
func RankJoinCT(g *chase.Grounding, te *model.Tuple, pref Preference) ([]Candidate, Stats, error) {
	return RankJoinCTOpts(g, te, pref, RankJoinOptions{})
}

// RankJoinCTOpts is RankJoinCT with explicit resource bounds.
func RankJoinCTOpts(g *chase.Grounding, te *model.Tuple, pref Preference, opts RankJoinOptions) ([]Candidate, Stats, error) {
	p := newProblem(g, te, pref)
	k := pref.K
	if k <= 0 {
		return nil, p.stats, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	maxGen := opts.MaxGenerated
	if maxGen < 0 {
		return nil, p.stats, fmt.Errorf("topk: MaxGenerated must be >= 0, got %d", maxGen)
	}
	if maxGen == 0 {
		maxGen = 4_000_000
	}
	m := len(p.zAttr)
	base := p.baseScore()
	if m == 0 {
		if p.check(p.te) {
			return []Candidate{{Tuple: p.te.Clone(), Score: base}}, p.stats, nil
		}
		return nil, p.stats, nil
	}
	for i, l := range p.lists {
		if len(l) == 0 {
			return nil, p.stats, fmt.Errorf("topk: attribute %s has an empty candidate domain",
				p.g.Schema().Attr(p.zAttr[i]))
		}
	}

	depth := make([]int, m) // how many values of each list are seen
	var buffer pairingHeap
	seen := map[string]bool{}

	// join builds the combinations of lists[i][depth[i]-1] with all seen
	// values of the other lists and pushes them to the buffer.
	join := func(i int) error {
		v := p.lists[i][depth[i]-1]
		zv := make([]scoredValue, m)
		zv[i] = v
		var rec func(j int) error
		rec = func(j int) error {
			if j == m {
				w := base
				for _, sv := range zv {
					w += sv.w
				}
				key := zKey(zv)
				if seen[key] {
					return nil
				}
				seen[key] = true
				buffer.Push(&object{vals: append([]scoredValue(nil), zv...), w: w, key: key})
				p.stats.Generated++
				if p.stats.Generated > maxGen {
					return ErrBudget
				}
				return nil
			}
			if j == i {
				return rec(j + 1)
			}
			for x := 0; x < depth[j]; x++ {
				zv[j] = p.lists[j][x]
				if err := rec(j + 1); err != nil {
					return err
				}
			}
			return nil
		}
		return rec(0)
	}

	// threshold is the rank-join bound: the best score any combination
	// using at least one unseen value could attain.
	topW := make([]float64, m)
	for i := range topW {
		topW[i] = p.lists[i][0].w
	}
	threshold := func() (float64, bool) {
		best := 0.0
		any := false
		for i := 0; i < m; i++ {
			if depth[i] >= len(p.lists[i]) {
				continue // list exhausted: no unseen value here
			}
			any = true
			t := base + p.lists[i][depth[i]].w
			for j := 0; j < m; j++ {
				if j != i {
					t += topW[j]
				}
			}
			if t > best {
				best = t
			}
		}
		return best, any
	}

	// Prime with the first value of every list.
	for i := 0; i < m; i++ {
		depth[i] = 1
		p.stats.Pops++
	}
	if err := join(m - 1); err != nil {
		return nil, p.stats, err
	}

	// nextEmit yields the next combination the sequential loop would
	// check: buffered combinations beating the current threshold, with
	// the round-robin lists advanced (and re-joined) in between. The
	// emission order does not depend on check verdicts, so it forms a
	// verdict-independent check stream (see parallel.go).
	next := 0
	emitTau, emitMore := 0.0, false
	emitting := false
	nextEmit := func() (checkEvent, bool, error) {
		for {
			if !emitting {
				emitTau, emitMore = threshold()
				emitting = true
			}
			o, ok := buffer.Pop()
			if ok && (!emitMore || o.w >= emitTau) {
				t := p.assemble(o.vals)
				return checkEvent{t: t, score: o.w, pops: p.stats.Pops, generated: p.stats.Generated}, true, nil
			}
			if ok {
				// Cannot emit yet: an unseen combination might be better.
				buffer.Push(o)
			}
			emitting = false
			if !emitMore {
				if buffer.Len() == 0 {
					return checkEvent{}, false, nil // search space exhausted
				}
				continue // drain the buffer threshold-free
			}
			// Advance the round-robin cursor to the next non-exhausted list.
			advanced := false
			for tries := 0; tries < m; tries++ {
				i := next
				next = (next + 1) % m
				if depth[i] < len(p.lists[i]) {
					depth[i]++
					p.stats.Pops++
					if err := join(i); err != nil {
						return checkEvent{}, false, err
					}
					advanced = true
					break
				}
			}
			if !advanced && buffer.Len() == 0 {
				return checkEvent{}, false, nil
			}
		}
	}

	if p.parallelism() > 1 {
		budget, ok := p.remainingBudget()
		if !ok {
			return nil, p.stats, nil
		}
		oc := runStream(p.pool, p.parallelism(), budget, k,
			checkEvent{pops: p.stats.Pops, generated: p.stats.Generated}, nextEmit)
		p.stats.Checks += oc.checks
		if oc.cut {
			p.stats.Pops, p.stats.Generated = oc.pops, oc.generated
		}
		out := make([]Candidate, 0, len(oc.passes))
		for _, ev := range oc.passes {
			out = append(out, Candidate{Tuple: ev.t, Score: ev.score})
		}
		return out, p.stats, oc.err
	}

	var out []Candidate
	for len(out) < k && !p.exhausted() {
		ev, ok, err := nextEmit()
		if err != nil {
			return out, p.stats, err
		}
		if !ok {
			break
		}
		if p.check(ev.t) {
			out = append(out, Candidate{Tuple: ev.t, Score: ev.score})
		}
	}
	return out, p.stats, nil
}
