package topk_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/chase"
	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
	"repro/internal/topk"
)

// example9Grounding reproduces the setting of Example 9: the paper spec
// with team dropped from ϕ6, so te[team] and te[arena] are null.
func example9Grounding(t *testing.T) (*chase.Grounding, *model.Tuple) {
	t.Helper()
	ie := paperdata.Stat()
	im := paperdata.NBA()
	var rules []rule.Rule
	for _, r := range paperdata.Rules() {
		if r.Name() == "phi6b" { // "drop team from ϕ6"
			continue
		}
		rules = append(rules, r)
	}
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), rules...)
	if err != nil {
		t.Fatalf("rules: %v", err)
	}
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: im, Rules: rs}, chase.Options{})
	if err != nil {
		t.Fatalf("grounding: %v", err)
	}
	res := g.Run(nil)
	if !res.CR {
		t.Fatalf("example 9 spec should be CR: %s", res.Conflict)
	}
	if res.Complete() {
		t.Fatalf("example 9 target should be incomplete")
	}
	return g, res.Target
}

// TestExample9TopCandidate: the top candidate must restore the full
// paper target (team = Chicago Bulls, arena = United Center, score 4 on
// the two open attributes under occurrence counting).
func TestExample9TopCandidate(t *testing.T) {
	g, te := example9Grounding(t)
	for _, algo := range []struct {
		name string
		run  func() ([]topk.Candidate, topk.Stats, error)
	}{
		{"TopKCT", func() ([]topk.Candidate, topk.Stats, error) {
			return topk.TopKCT(g, te, topk.Preference{K: 2})
		}},
		{"RankJoinCT", func() ([]topk.Candidate, topk.Stats, error) {
			return topk.RankJoinCT(g, te, topk.Preference{K: 2})
		}},
		{"TopKCTh", func() ([]topk.Candidate, topk.Stats, error) {
			return topk.TopKCTh(g, te, topk.Preference{K: 2})
		}},
	} {
		t.Run(algo.name, func(t *testing.T) {
			cands, _, err := algo.run()
			if err != nil {
				t.Fatalf("%v", err)
			}
			if len(cands) == 0 {
				t.Fatalf("no candidates")
			}
			if !cands[0].Tuple.EqualTo(paperdata.Target()) {
				t.Errorf("top candidate = %s, want the paper target", cands[0].Tuple)
			}
			// Every returned candidate must pass the chase check and keep
			// te's non-null values.
			for _, c := range cands {
				if !g.Run(c.Tuple).CR {
					t.Errorf("candidate %s fails check", c.Tuple)
				}
				for a := 0; a < te.Schema().Arity(); a++ {
					if v := te.At(a); !v.IsNull() && !c.Tuple.At(a).Equal(v) {
						t.Errorf("candidate overrode te[%s]", te.Schema().Attr(a))
					}
				}
			}
		})
	}
}

// TestExample9EarlyTermination: TopKCT must not exhaust the candidate
// space (3 team values + ⊥) × (3 arena values + ⊥) = 16 assignments for
// k = 2.
func TestExample9EarlyTermination(t *testing.T) {
	g, te := example9Grounding(t)
	cands, stats, err := topk.TopKCT(g, te, topk.Preference{K: 2})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if len(cands) != 2 {
		t.Fatalf("want 2 candidates, got %d", len(cands))
	}
	if stats.Checks >= 16 {
		t.Errorf("TopKCT checked %d of 16 assignments; expected early termination", stats.Checks)
	}
}

// randProblem builds a random Church-Rosser grounding with an incomplete
// target for cross-algorithm comparison.
func randProblem(rng *rand.Rand) (*chase.Grounding, *model.Tuple, bool) {
	na := 3 + rng.Intn(2)
	attrs := make([]string, na)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	s := model.MustSchema("r", attrs...)
	ie := model.NewEntityInstance(s)
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		vals := make([]model.Value, na)
		for a := range vals {
			if rng.Intn(4) == 0 {
				vals[a] = model.NullValue()
			} else {
				vals[a] = model.I(int64(rng.Intn(3)))
			}
		}
		ie.MustAdd(model.MustTuple(s, vals...))
	}
	var rules []rule.Rule
	// A correlation rule between two random attributes keeps check
	// non-trivial.
	if rng.Intn(2) == 0 {
		rules = append(rules, &rule.Form1{
			RuleName: "corr",
			LHS:      []rule.Pred{rule.Prec(attrs[rng.Intn(na)])},
			RHS:      attrs[rng.Intn(na)],
		})
	}
	rs, err := rule.NewSet(s, nil, rules...)
	if err != nil {
		panic(err)
	}
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Rules: rs}, chase.Options{})
	if err != nil {
		panic(err)
	}
	res := g.Run(nil)
	if !res.CR || res.Complete() {
		return nil, nil, false
	}
	return g, res.Target, true
}

// bruteForce enumerates the whole assignment space, checks every tuple
// and returns all candidates sorted by (score desc, key asc) — the
// ground truth for the exact algorithms.
func bruteForce(g *chase.Grounding, te *model.Tuple, pref topk.Preference) []topk.Candidate {
	weight := pref.Weight
	if weight == nil {
		weight = topk.OccurrenceWeight(g.Instance())
	}
	schema := g.Schema()
	var zAttrs []int
	var lists [][]model.Value
	for a := 0; a < schema.Arity(); a++ {
		if !te.At(a).IsNull() {
			continue
		}
		vals, _ := model.ActiveDomain(g.Instance(), g.Master(), schema.Attr(a))
		vals = append(vals, topk.Bottom)
		zAttrs = append(zAttrs, a)
		lists = append(lists, vals)
	}
	var out []topk.Candidate
	var rec func(i int, t *model.Tuple)
	rec = func(i int, t *model.Tuple) {
		if i == len(zAttrs) {
			if g.Run(t).CR {
				score := 0.0
				for a := 0; a < schema.Arity(); a++ {
					score += weight(schema.Attr(a), t.At(a))
				}
				out = append(out, topk.Candidate{Tuple: t.Clone(), Score: score})
			}
			return
		}
		for _, v := range lists[i] {
			t.SetAt(zAttrs[i], v)
			rec(i+1, t)
		}
		t.SetAt(zAttrs[i], model.NullValue())
	}
	rec(0, te.Clone())
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tuple.Key() < out[j].Tuple.Key()
	})
	return out
}

// TestExactAlgorithmsMatchBruteForce: TopKCT and RankJoinCT must return
// exactly the k best candidates (by score; tie sets may be permuted).
func TestExactAlgorithmsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, te, ok := randProblem(rng)
		if !ok {
			return true
		}
		k := 1 + rng.Intn(4)
		pref := topk.Preference{K: k}
		truth := bruteForce(g, te, pref)
		want := len(truth)
		if want > k {
			want = k
		}

		for name, run := range map[string]func() ([]topk.Candidate, topk.Stats, error){
			"TopKCT":     func() ([]topk.Candidate, topk.Stats, error) { return topk.TopKCT(g, te, pref) },
			"RankJoinCT": func() ([]topk.Candidate, topk.Stats, error) { return topk.RankJoinCT(g, te, pref) },
		} {
			got, _, err := run()
			if err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if len(got) != want {
				t.Logf("seed %d %s: got %d candidates, want %d", seed, name, len(got), want)
				return false
			}
			for i, c := range got {
				if c.Score != truth[i].Score {
					t.Logf("seed %d %s: score[%d] = %v, want %v", seed, name, i, c.Score, truth[i].Score)
					return false
				}
				if !g.Run(c.Tuple).CR {
					t.Logf("seed %d %s: result %d fails check", seed, name, i)
					return false
				}
			}
			// Scores must be non-increasing and tuples distinct.
			keys := map[string]bool{}
			for i, c := range got {
				if i > 0 && c.Score > got[i-1].Score {
					t.Logf("seed %d %s: scores not sorted", seed, name)
					return false
				}
				if keys[c.Tuple.Key()] {
					t.Logf("seed %d %s: duplicate candidate", seed, name)
					return false
				}
				keys[c.Tuple.Key()] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestHeuristicSoundness: every TopKCTh result is a genuine candidate
// target (candidacy is guaranteed; optimality is not).
func TestHeuristicSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, te, ok := randProblem(rng)
		if !ok {
			return true
		}
		k := 1 + rng.Intn(4)
		got, _, err := topk.TopKCTh(g, te, topk.Preference{K: k})
		if err != nil {
			return false
		}
		if len(got) > k {
			return false
		}
		keys := map[string]bool{}
		for _, c := range got {
			if !g.Run(c.Tuple).CR || !c.Tuple.Complete() {
				return false
			}
			if keys[c.Tuple.Key()] {
				return false
			}
			keys[c.Tuple.Key()] = true
			for a := 0; a < te.Schema().Arity(); a++ {
				if v := te.At(a); !v.IsNull() && !c.Tuple.At(a).Equal(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestCompleteTargetShortCircuit: with a complete te, all algorithms
// return te itself.
func TestCompleteTargetShortCircuit(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, _ := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: im, Rules: rs}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	te := g.Run(nil).Target
	if !te.Complete() {
		t.Fatalf("expected complete target")
	}
	for name, run := range map[string]func() ([]topk.Candidate, topk.Stats, error){
		"TopKCT":     func() ([]topk.Candidate, topk.Stats, error) { return topk.TopKCT(g, te, topk.Preference{K: 3}) },
		"RankJoinCT": func() ([]topk.Candidate, topk.Stats, error) { return topk.RankJoinCT(g, te, topk.Preference{K: 3}) },
		"TopKCTh":    func() ([]topk.Candidate, topk.Stats, error) { return topk.TopKCTh(g, te, topk.Preference{K: 3}) },
	} {
		cands, _, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(cands) != 1 || !cands[0].Tuple.EqualTo(te) {
			t.Errorf("%s: want exactly te, got %d candidates", name, len(cands))
		}
	}
}

// TestInvalidK: k <= 0 is rejected.
func TestInvalidK(t *testing.T) {
	g, te := example9Grounding(t)
	if _, _, err := topk.TopKCT(g, te, topk.Preference{K: 0}); err == nil {
		t.Errorf("TopKCT should reject k=0")
	}
	if _, _, err := topk.RankJoinCT(g, te, topk.Preference{K: -1}); err == nil {
		t.Errorf("RankJoinCT should reject k<0")
	}
}

// TestCustomDomains: Preference.Domains restricts candidate values.
func TestCustomDomains(t *testing.T) {
	s := model.MustSchema("r", "id", "closed")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("x"), model.B(true)))
	ie.MustAdd(model.MustTuple(s, model.S("x"), model.B(false)))
	rs, _ := rule.NewSet(s, nil)
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Rules: rs}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	te := g.Run(nil).Target
	pref := topk.Preference{
		K:       5,
		Domains: map[string][]model.Value{"closed": {model.B(true), model.B(false)}},
	}
	cands, _, err := topk.TopKCT(g, te, pref)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("want exactly the 2 boolean candidates, got %d", len(cands))
	}
	for _, c := range cands {
		v, _ := c.Tuple.Get("closed")
		if v.Kind() != model.Bool {
			t.Errorf("candidate closed = %v, want boolean", v)
		}
	}
}

// TestMonotoneScores: the enumeration respects the preference — the
// first verified candidate has the maximum score among all candidates.
func TestMonotoneScores(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, te, ok := randProblem(rng)
		if !ok {
			return true
		}
		pref := topk.Preference{K: 1}
		got, _, err := topk.TopKCT(g, te, pref)
		if err != nil {
			return false
		}
		truth := bruteForce(g, te, pref)
		if len(truth) == 0 {
			return len(got) == 0
		}
		return len(got) == 1 && got[0].Score == truth[0].Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
