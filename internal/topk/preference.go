// Package topk implements the top-k candidate-target algorithms of
// Section 6 of the paper: RankJoinCT (an extension of top-k rank-join),
// TopKCT (a priority-queue lattice enumeration that needs no ranked
// input and is instance optimal in heap pops), and TopKCTh (a PTIME
// greedy heuristic).
//
// Given a Church-Rosser specification whose deduced target te is
// incomplete, a candidate target instantiates the null attributes of te
// with values from the attributes' active domains (plus one default
// value ⊥ standing for "some value outside the data") such that the
// revised specification is still Church-Rosser — verified by the chase
// (the `check` of Section 6.1). Candidates are ranked by a monotone
// preference score p summing per-value weights w_Ai(v).
package topk

import (
	"repro/internal/chase"
	"repro/internal/model"
)

// Bottom is the default value ⊥ denoting a value outside the active
// domain (Section 6.1); it always appears last in ranked lists unless
// the preference assigns it weight.
var Bottom = model.S("⊥")

// Preference is the preference model (k, p(·)) of Section 3.
type Preference struct {
	// K is the number of candidates requested.
	K int
	// Weight is w_Ai(v), the score of value v in attribute attr. Nil
	// defaults to occurrence counting over the entity instance.
	Weight func(attr string, v model.Value) float64
	// Domains optionally fixes the candidate values of an attribute
	// (e.g. {true, false} for a Boolean attribute). Attributes not
	// listed use the active domain of Ie ∪ Im plus ⊥.
	Domains map[string][]model.Value
	// MaxChecks bounds the number of chase-based candidate checks one
	// search may spend (0 = unlimited). The candidate-target problem is
	// NP-complete (Theorem 4), and adversarial instances make the exact
	// algorithms wade through large plateaus of equal-score failing
	// assignments; when the budget is exhausted the candidates found so
	// far are returned.
	MaxChecks int
	// MaxDomain caps each attribute's ranked candidate list (0 = 64).
	// Values carried by the entity instance always survive the cap; the
	// tail of zero-weight master-only values — interchangeable with ⊥
	// unless a master rule references them — is truncated. This guards
	// the search against master relations whose columns would otherwise
	// contribute thousands of candidate values per attribute.
	MaxDomain int
	// Parallel sets how many chase-based candidate checks run
	// concurrently, each on a pooled engine: 0 or 1 means sequential,
	// n > 1 uses n checker goroutines, and a negative value uses
	// GOMAXPROCS. Parallel verification is speculative but exact: the
	// candidate list, its order and the Stats counters are identical to
	// the sequential run (see parallel.go).
	Parallel int
}

// OccurrenceWeight builds the default preference used throughout the
// paper's experiments: w_Ai(v) is the number of occurrences of v in the
// Ai column of Ie (values only present in master data count 0, and ⊥
// counts 0).
func OccurrenceWeight(ie *model.EntityInstance) func(string, model.Value) float64 {
	counts := make(map[string]map[string]float64, ie.Schema().Arity())
	for a := 0; a < ie.Schema().Arity(); a++ {
		attr := ie.Schema().Attr(a)
		m := make(map[string]float64)
		for _, t := range ie.Tuples() {
			v := t.At(a)
			if !v.IsNull() {
				m[v.Key()]++
			}
		}
		counts[attr] = m
	}
	return func(attr string, v model.Value) float64 {
		return counts[attr][v.Key()]
	}
}

// MapWeight builds a preference from explicit per-attribute value
// scores, e.g. probabilities produced by a truth-discovery algorithm
// (Section 7, Exp-5). Missing entries score 0.
func MapWeight(scores map[string]map[string]float64) func(string, model.Value) float64 {
	return func(attr string, v model.Value) float64 {
		return scores[attr][v.Key()]
	}
}

// scoredValue is one ranked-list entry. The value's dictionary ID is
// interned once when the list is built, so every candidate assembled
// from the list carries a cached ID row and the chase-based check
// never hashes a value.
type scoredValue struct {
	v  model.Value
	w  float64
	id uint32
}

// Candidate is one verified candidate target.
type Candidate struct {
	Tuple *model.Tuple
	Score float64
}

// Stats reports the work an algorithm performed; the instance-optimality
// tests and the efficiency experiments read these.
type Stats struct {
	// Checks counts invocations of the candidate check (chase runs).
	Checks int
	// Pops counts value-heap (ranked-list) accesses.
	Pops int
	// Generated counts join combinations materialised (RankJoinCT) or
	// queue objects created (TopKCT).
	Generated int
}

// problem is the shared search state for all three algorithms.
type problem struct {
	g     *chase.Grounding
	te    *model.Tuple // deduced (incomplete) target
	pref  Preference
	zAttr []int           // schema positions of null attributes of te
	lists [][]scoredValue // per zAttr, descending weight
	pool  *chase.CheckerPool
	dict  *model.Dict // the grounding's value dictionary
	stats Stats
}

// newProblem derives the search space: the null attributes Z of te and
// their ranked value lists, every list value pre-interned in the
// grounding's dictionary.
func newProblem(g *chase.Grounding, te *model.Tuple, pref Preference) *problem {
	p := &problem{g: g, te: te, pref: pref, pool: g.Pool(), dict: g.Dict()}
	// Intern the deduced target once (on a clone, so the caller's tuple
	// is not touched): candidates are assembled from clones of p.te, so
	// this makes their KNOWN attributes dictionary hits by cache, not
	// per-check probes — the Z attributes get their IDs from the ranked
	// lists below.
	p.te = te.Clone().Intern(p.dict)
	if pref.Weight == nil {
		pref.Weight = OccurrenceWeight(g.Instance())
		p.pref.Weight = pref.Weight
	}
	schema := g.Schema()
	for a := 0; a < schema.Arity(); a++ {
		if !te.At(a).IsNull() {
			continue
		}
		attr := schema.Attr(a)
		maxDomain := pref.MaxDomain
		if maxDomain == 0 {
			maxDomain = 64
		}
		var vals []model.Value
		if dom, ok := pref.Domains[attr]; ok {
			vals = append([]model.Value(nil), dom...)
		} else {
			var counts []int
			vals, counts = model.ActiveDomain(g.Instance(), g.Master(), attr)
			if len(vals) > maxDomain {
				// Keep every instance-carried value plus the best-ranked
				// of the rest, and truncate the interchangeable tail.
				kept := vals[:0]
				for i, v := range vals {
					if counts[i] > 0 || len(kept) < maxDomain {
						kept = append(kept, v)
					}
				}
				vals = kept
			}
			vals = append(vals, Bottom)
		}
		list := make([]scoredValue, len(vals))
		for i, v := range vals {
			list[i] = scoredValue{v: v, w: pref.Weight(attr, v), id: p.dict.Intern(v)}
		}
		sortScored(list)
		p.zAttr = append(p.zAttr, a)
		p.lists = append(p.lists, list)
	}
	return p
}

// sortScored orders by descending weight, ties broken by value key for
// determinism.
func sortScored(list []scoredValue) {
	// Insertion sort: lists are small and mostly ordered (ActiveDomain
	// already returns by descending occurrence).
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && scoredLess(list[j-1], list[j]); j-- {
			list[j-1], list[j] = list[j], list[j-1]
		}
	}
}

// scoredLess reports a < b in ranking order (higher weight first).
func scoredLess(a, b scoredValue) bool {
	if a.w != b.w {
		return a.w < b.w
	}
	return a.v.Key() > b.v.Key()
}

// baseScore is the score contribution of the non-null attributes of te;
// it is constant across candidates.
func (p *problem) baseScore() float64 {
	s := 0.0
	schema := p.g.Schema()
	for a := 0; a < schema.Arity(); a++ {
		if v := p.te.At(a); !v.IsNull() {
			s += p.pref.Weight(schema.Attr(a), v)
		}
	}
	return s
}

// assemble builds a complete tuple from te and the chosen Z values,
// carrying each value's cached dictionary ID so the chase check that
// receives it resolves every attribute without a dictionary probe.
func (p *problem) assemble(zv []scoredValue) *model.Tuple {
	t := p.te.Clone()
	for i, a := range p.zAttr {
		t.SetAtID(a, zv[i].v, p.dict, zv[i].id)
	}
	return t
}

// check verifies a candidate via the chase (Section 6.1): the revised
// specification with t as the initial template must be Church-Rosser.
// It runs on a pooled engine, so a check allocates no engine state.
func (p *problem) check(t *model.Tuple) bool {
	p.stats.Checks++
	return p.pool.Check(t)
}

// exhausted reports whether the check budget has been spent.
func (p *problem) exhausted() bool {
	return p.pref.MaxChecks > 0 && p.stats.Checks >= p.pref.MaxChecks
}

// zKey identifies a Z-assignment for duplicate suppression and as the
// deterministic last tie-break of the priority queues. It concatenates
// value Keys — NOT dictionary IDs, which are assignment-order dependent
// and would make tie-breaking (and so candidate order) run-dependent.
func zKey(zv []scoredValue) string {
	k := ""
	for i, sv := range zv {
		if i > 0 {
			k += "\x1f"
		}
		k += sv.v.Key()
	}
	return k
}
