package topk_test

import (
	"errors"
	"testing"

	"repro/internal/chase"
	"repro/internal/model"
	"repro/internal/rule"
	"repro/internal/topk"
)

// unconstrained builds a grounding whose open attributes carry no rules,
// so every assignment passes the check — the setting where the
// enumeration behaviour of the algorithms is fully visible.
func unconstrained(t *testing.T, listLens []int) (*chase.Grounding, *model.Tuple) {
	t.Helper()
	attrs := make([]string, len(listLens)+1)
	attrs[0] = "id"
	for i := range listLens {
		attrs[i+1] = string(rune('a' + i))
	}
	s := model.MustSchema("r", attrs...)
	ie := model.NewEntityInstance(s)
	// Column i holds listLens[i] distinct values where value v appears
	// (l - v) times, giving a strictly ranked occurrence list. The tuple
	// count is the largest triangular total.
	n := 0
	for _, l := range listLens {
		if t := l * (l + 1) / 2; t > n {
			n = t
		}
	}
	for r := 0; r < n; r++ {
		vals := make([]model.Value, len(attrs))
		vals[0] = model.S("e")
		for i, l := range listLens {
			rr := r % (l * (l + 1) / 2)
			v := 0
			for cum := l; rr >= cum; v++ {
				cum += l - v - 1
			}
			vals[i+1] = model.I(int64(v))
		}
		ie.MustAdd(model.MustTuple(s, vals...))
	}
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Rules: rule.MustSet(s, nil)}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run(nil)
	if !res.CR {
		t.Fatal(res.Conflict)
	}
	return g, res.Target
}

// TestEarlyTerminationChecks: with every assignment passing, TopKCT must
// verify exactly k assignments (Proposition 7's early termination).
func TestEarlyTerminationChecks(t *testing.T) {
	g, te := unconstrained(t, []int{4, 4, 4})
	for _, k := range []int{1, 3, 7} {
		_, stats, err := topk.TopKCT(g, te, topk.Preference{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Checks != k {
			t.Errorf("k=%d: checks = %d, want exactly k", k, stats.Checks)
		}
	}
}

// TestHeapPopEconomy: TopKCT must not pop each heap beyond what the k-th
// result requires (the instance-optimality claim): for k=1 only the top
// of each heap is needed (plus the one-step lookahead of the expansion).
func TestHeapPopEconomy(t *testing.T) {
	g, te := unconstrained(t, []int{6, 6, 6})
	_, stats, err := topk.TopKCT(g, te, topk.Preference{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// m pops to prime + at most m lookahead pops on expansion.
	if stats.Pops > 6 {
		t.Errorf("k=1 pops = %d, want ≤ 6", stats.Pops)
	}
	full := 6 + 6 + 6 // the exhaustive alternative
	if stats.Pops >= full {
		t.Errorf("pops = %d did not beat exhaustive %d", stats.Pops, full)
	}
}

// TestMaxChecksBudget: the search returns what it found when the check
// budget runs out, never exceeding it.
func TestMaxChecksBudget(t *testing.T) {
	g, te := unconstrained(t, []int{5, 5})
	cands, stats, err := topk.TopKCT(g, te, topk.Preference{K: 20, MaxChecks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checks > 4 {
		t.Errorf("checks = %d exceeds budget", stats.Checks)
	}
	if len(cands) != 4 {
		t.Errorf("candidates = %d, want 4 (all checks passed)", len(cands))
	}
}

// TestMaxDomainCap: master-only tail values are truncated but instance
// values survive.
func TestMaxDomainCap(t *testing.T) {
	s := model.MustSchema("r", "id", "m")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("e"), model.S("inst-a")))
	ie.MustAdd(model.MustTuple(s, model.S("e"), model.S("inst-b")))
	ms := model.MustSchema("master", "id", "m")
	im := model.NewMasterRelation(ms)
	for i := 0; i < 500; i++ {
		im.MustAdd(model.MustTuple(ms, model.S("other"), model.I(int64(i))))
	}
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: im, Rules: rule.MustSet(s, ms)}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	te := g.Run(nil).Target
	cands, stats, err := topk.TopKCT(g, te, topk.Preference{K: 600, MaxDomain: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Domain: 2 instance values + 10 kept master values + ⊥ = 13.
	if len(cands) > 13 {
		t.Errorf("cap ignored: %d candidates", len(cands))
	}
	if stats.Checks > 13 {
		t.Errorf("checked %d assignments, cap ignored", stats.Checks)
	}
	// The two instance values must rank first.
	if v, _ := cands[0].Tuple.Get("m"); v.Kind() != model.String {
		t.Errorf("top candidate should carry an instance value, got %v", v)
	}
}

// TestRankJoinBudgetReturnsPartial: hitting the join budget aborts with
// ErrBudget (specifically — callers gate on errors.Is) but still
// returns the candidates verified so far, with the Stats of the aborted
// search populated so the caller can see how far it got.
func TestRankJoinBudgetReturnsPartial(t *testing.T) {
	g, te := unconstrained(t, []int{8, 8, 8, 8})
	// Unbounded reference run: every assignment passes the check, so
	// with MaxGenerated high the search finds real candidates.
	full, fullStats, err := topk.RankJoinCTOpts(g, te, topk.Preference{K: 50},
		topk.RankJoinOptions{MaxGenerated: 1_000_000})
	if err != nil || len(full) == 0 {
		t.Fatalf("reference run: %d candidates, err %v", len(full), err)
	}
	cands, stats, err := topk.RankJoinCTOpts(g, te, topk.Preference{K: 5000},
		topk.RankJoinOptions{MaxGenerated: 100})
	if !errors.Is(err, topk.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if len(cands) == 0 {
		t.Fatal("budget abort dropped the partial candidates")
	}
	if stats.Generated <= 100 || stats.Pops == 0 || stats.Checks == 0 {
		t.Fatalf("aborted search returned empty Stats: %+v", stats)
	}
	if stats.Generated >= fullStats.Generated {
		t.Fatalf("budget did not bite: generated %d vs %d unbounded",
			stats.Generated, fullStats.Generated)
	}
	// Partial results are still valid candidates, and they agree with
	// the prefix of the unbounded run (emission order is deterministic).
	for i, c := range cands {
		if !g.Run(c.Tuple).CR {
			t.Errorf("partial result fails check")
		}
		if i < len(full) && (c.Tuple.Key() != full[i].Tuple.Key() || c.Score != full[i].Score) {
			t.Errorf("partial candidate %d diverges from the unbounded run", i)
		}
	}
}

// TestRankJoinNegativeBudgetRejected: a negative MaxGenerated is a
// caller bug, not "unlimited" and not "abort immediately" — it is
// rejected up front with a plain error (not ErrBudget), before any
// join state is built.
func TestRankJoinNegativeBudgetRejected(t *testing.T) {
	g, te := unconstrained(t, []int{4, 4})
	cands, stats, err := topk.RankJoinCTOpts(g, te, topk.Preference{K: 5},
		topk.RankJoinOptions{MaxGenerated: -1})
	if err == nil {
		t.Fatal("negative MaxGenerated was accepted")
	}
	if errors.Is(err, topk.ErrBudget) {
		t.Fatalf("negative MaxGenerated reported as a budget abort: %v", err)
	}
	if cands != nil {
		t.Fatalf("rejected call returned candidates: %v", cands)
	}
	if stats.Checks != 0 || stats.Generated != 0 {
		t.Fatalf("rejected call did work: %+v", stats)
	}
}
