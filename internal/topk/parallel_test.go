package topk_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/chase"
	"repro/internal/gen"
	"repro/internal/topk"
)

// synProblem grounds one synthetic entity and deduces its target.
func synProblem(t *testing.T, tuples, im, rules int) (*chase.Grounding, *chase.Result) {
	t.Helper()
	cfg := gen.SynDefault()
	cfg.Tuples = tuples
	cfg.Im = im
	cfg.Rules = rules
	ds := gen.GenerateSyn(cfg)
	g, err := chase.NewGrounding(chase.Spec{
		Ie: ds.Entities[0].Instance, Im: ds.Master, Rules: ds.Rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run(nil)
	if !res.CR {
		t.Fatalf("synthetic spec not Church-Rosser: %s", res.Conflict)
	}
	return g, res
}

// sameCandidates asserts byte-identical candidate lists: same length,
// same tuples (by key) in the same order, same scores.
func sameCandidates(t *testing.T, label string, seq, par []topk.Candidate) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: sequential found %d candidates, parallel %d", label, len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Tuple.Key() != par[i].Tuple.Key() {
			t.Fatalf("%s: candidate %d differs: %s vs %s", label, i, seq[i].Tuple, par[i].Tuple)
		}
		if seq[i].Score != par[i].Score {
			t.Fatalf("%s: candidate %d score %v vs %v", label, i, seq[i].Score, par[i].Score)
		}
	}
}

func sameStats(t *testing.T, label string, seq, par topk.Stats) {
	t.Helper()
	if seq != par {
		t.Fatalf("%s: sequential stats %+v, parallel stats %+v", label, seq, par)
	}
}

// TestParallelMatchesSequential asserts that parallel verification is
// exact for all three algorithms: identical candidate lists, order and
// Stats across parallelism levels, with and without a MaxChecks budget.
// Run with -race this also exercises the concurrent checker pool.
func TestParallelMatchesSequential(t *testing.T) {
	configs := []struct{ tuples, im, rules int }{
		{40, 20, 25},
		{80, 40, 40},
	}
	for _, cfg := range configs {
		g, res := synProblem(t, cfg.tuples, cfg.im, cfg.rules)
		for _, k := range []int{1, 5, 15} {
			for _, maxChecks := range []int{0, 7, 200} {
				base := topk.Preference{K: k, MaxChecks: maxChecks}
				seqCT, seqCTStats, err := topk.TopKCT(g, res.Target, base)
				if err != nil {
					t.Fatal(err)
				}
				seqH, seqHStats, err := topk.TopKCTh(g, res.Target, base)
				if err != nil {
					t.Fatal(err)
				}
				seqRJ, seqRJStats, errRJ := topk.RankJoinCT(g, res.Target, base)
				if errRJ != nil && !errors.Is(errRJ, topk.ErrBudget) {
					t.Fatal(errRJ)
				}
				for _, par := range []int{2, 4, -1} {
					label := fmt.Sprintf("syn(%d,%d,%d) k=%d budget=%d par=%d",
						cfg.tuples, cfg.im, cfg.rules, k, maxChecks, par)
					pref := base
					pref.Parallel = par

					parCT, parCTStats, err := topk.TopKCT(g, res.Target, pref)
					if err != nil {
						t.Fatal(err)
					}
					sameCandidates(t, label+" TopKCT", seqCT, parCT)
					sameStats(t, label+" TopKCT", seqCTStats, parCTStats)

					parH, parHStats, err := topk.TopKCTh(g, res.Target, pref)
					if err != nil {
						t.Fatal(err)
					}
					sameCandidates(t, label+" TopKCTh", seqH, parH)
					sameStats(t, label+" TopKCTh", seqHStats, parHStats)

					parRJ, parRJStats, err := topk.RankJoinCT(g, res.Target, pref)
					if (err != nil) != (errRJ != nil) || (err != nil && !errors.Is(err, topk.ErrBudget)) {
						t.Fatalf("%s RankJoinCT: err %v, sequential err %v", label, err, errRJ)
					}
					sameCandidates(t, label+" RankJoinCT", seqRJ, parRJ)
					sameStats(t, label+" RankJoinCT", seqRJStats, parRJStats)
				}
			}
		}
	}
}

// TestParallelMedEntities sweeps parallel TopKCT over generated Med
// entities (the workload of the quality experiments), asserting
// equality with the sequential run per entity.
func TestParallelMedEntities(t *testing.T) {
	cfg := gen.MedConfig()
	cfg.NumEntities = 40
	ds := gen.Generate(cfg)
	for i, e := range ds.Entities {
		g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: ds.Master, Rules: ds.Rules}, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := g.Run(nil)
		if !res.CR || res.Target.Complete() {
			continue
		}
		seq, seqStats, err := topk.TopKCT(g, res.Target, topk.Preference{K: 10, MaxChecks: 4000})
		if err != nil {
			t.Fatal(err)
		}
		par, parStats, err := topk.TopKCT(g, res.Target, topk.Preference{K: 10, MaxChecks: 4000, Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("med entity %d", i)
		sameCandidates(t, label, seq, par)
		sameStats(t, label, seqStats, parStats)
	}
}
