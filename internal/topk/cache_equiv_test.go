package topk_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
	"repro/internal/topk"
)

// The verdict cache's whole contract is invisibility: a cached check
// answers exactly like running the chase (PR 7, DESIGN.md invariant
// 8). These tests pin it the same way the PR 1/3 equivalence suites
// pinned parallelism and incrementality — byte-identical fingerprints
// of everything the search returns, across algorithms, base+Extend
// splits, sequential and parallel verification, cold and warm caches.
// CI runs them under -race -shuffle=on.

// fingerprintSearch renders one top-k search completely: CR verdict,
// deduced target, candidate tuples with scores in rank order, and the
// search Stats. String equality means byte-identical output.
func fingerprintSearch(t *testing.T, g *chase.Grounding, pref topk.Preference, algo string) string {
	t.Helper()
	res := g.Run(nil)
	out := fmt.Sprintf("cr=%v", res.CR)
	if !res.CR {
		return out
	}
	out += " target=" + res.Target.Key()
	var cands []topk.Candidate
	var stats topk.Stats
	var err error
	switch algo {
	case "rankjoin":
		cands, stats, err = topk.RankJoinCT(g, res.Target, pref)
	case "topkcth":
		cands, stats, err = topk.TopKCTh(g, res.Target, pref)
	default:
		cands, stats, err = topk.TopKCT(g, res.Target, pref)
	}
	if err != nil {
		return out + " err=" + err.Error()
	}
	for _, c := range cands {
		out += fmt.Sprintf(" cand=%s@%.6f", c.Tuple.Key(), c.Score)
	}
	out += fmt.Sprintf(" checks=%d pops=%d gen=%d", stats.Checks, stats.Pops, stats.Generated)
	return out
}

// splitGrounding grounds the first base tuples of ie fresh and absorbs
// the rest through Extend batches, returning the final version.
func splitGrounding(t *testing.T, ie *model.EntityInstance, im *model.MasterRelation,
	rs *rule.Set, base int, batches []int, opts chase.Options) *chase.Grounding {
	t.Helper()
	prefix := model.NewEntityInstance(ie.Schema())
	for i := 0; i < base; i++ {
		prefix.MustAdd(ie.Tuple(i))
	}
	g, err := chase.NewGrounding(chase.Spec{Ie: prefix, Im: im, Rules: rs}, opts)
	if err != nil {
		t.Fatal(err)
	}
	next := base
	for _, sz := range batches {
		if g, err = g.Extend(ie.Tuples()[next : next+sz]...); err != nil {
			t.Fatal(err)
		}
		next += sz
	}
	if next != ie.Size() {
		t.Fatalf("split covers %d of %d tuples", next, ie.Size())
	}
	return g
}

var cacheEquivAlgos = []string{"topkct", "rankjoin", "topkcth"}

// TestCacheEquivalenceProperty is the cached ≡ uncached property: for
// the paper's Example 9 setting and generated Med entities, under any
// tested base+Extend split, every algorithm — sequentially and with
// parallel verification — produces byte-identical candidates, order
// and Stats whether the verdict cache is on (default) or disabled, and
// a WARM repeat on the cached grounding (same searches again, now
// answered from the cache) is byte-identical to its own cold run.
func TestCacheEquivalenceProperty(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	var pruned []rule.Rule
	for _, r := range paperdata.Rules() {
		if r.Name() != "phi6b" { // keep the target incomplete
			pruned = append(pruned, r)
		}
	}
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), pruned...)
	if err != nil {
		t.Fatal(err)
	}
	prefs := []topk.Preference{
		{K: 3, MaxChecks: 2000},
		{K: 3, MaxChecks: 2000, Parallel: 4},
	}
	for base := 1; base <= ie.Size(); base++ {
		var batches []int
		for i := base; i < ie.Size(); i++ {
			batches = append(batches, 1)
		}
		cached := splitGrounding(t, ie, im, rs, base, batches, chase.Options{})
		plain := splitGrounding(t, ie, im, rs, base, batches, chase.Options{DisableVerdictCache: true})
		for _, algo := range cacheEquivAlgos {
			for pi, pref := range prefs {
				want := fingerprintSearch(t, plain, pref, algo)
				cold := fingerprintSearch(t, cached, pref, algo)
				if cold != want {
					t.Fatalf("base %d algo %s pref %d cold:\ncached:   %s\nuncached: %s",
						base, algo, pi, cold, want)
				}
				warm := fingerprintSearch(t, cached, pref, algo)
				if warm != want {
					t.Fatalf("base %d algo %s pref %d warm:\ncached:   %s\nuncached: %s",
						base, algo, pi, warm, want)
				}
			}
		}
		if st := cached.VerdictCacheStats(); st.Hits == 0 {
			t.Fatalf("base %d: repeated searches recorded no cache hit (%+v)", base, st)
		}
		if st := plain.VerdictCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
			t.Fatalf("disabled cache recorded activity: %+v", st)
		}
	}

	// Generated Med entities, random splits with fixed seeds.
	cfg := gen.MedConfig()
	cfg.NumEntities = 6
	ds := gen.Generate(cfg)
	rng := rand.New(rand.NewSource(41))
	pref := topk.Preference{K: 5, MaxChecks: 4000}
	for ei, e := range ds.Entities {
		ge := e.Instance
		if ge.Size() < 2 {
			continue
		}
		base := 1 + rng.Intn(ge.Size()-1)
		rest := ge.Size() - base
		var batches []int
		for rest > 0 {
			sz := 1 + rng.Intn(rest)
			batches = append(batches, sz)
			rest -= sz
		}
		cached := splitGrounding(t, ge, ds.Master, ds.Rules, base, batches, chase.Options{})
		plain := splitGrounding(t, ge, ds.Master, ds.Rules, base, batches,
			chase.Options{DisableVerdictCache: true})
		for _, algo := range cacheEquivAlgos {
			want := fingerprintSearch(t, plain, pref, algo)
			if cold := fingerprintSearch(t, cached, pref, algo); cold != want {
				t.Fatalf("entity %d algo %s base %d batches %v cold:\ncached:   %s\nuncached: %s",
					ei, algo, base, batches, cold, want)
			}
			if warm := fingerprintSearch(t, cached, pref, algo); warm != want {
				t.Fatalf("entity %d algo %s warm:\ncached:   %s\nuncached: %s",
					ei, algo, warm, want)
			}
		}
	}
}

// TestCacheCapEquivalence: a cache too small to hold the working set
// still answers byte-identically — a full shard refuses inserts, it
// never serves anything but the verdict the chase would compute.
func TestCacheCapEquivalence(t *testing.T) {
	g, te := example9Grounding(t)
	tiny, err := chase.NewGrounding(chase.Spec{
		Ie: g.Instance(), Im: g.Master(), Rules: rulesOf(t, g)}, chase.Options{VerdictCacheCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	pref := topk.Preference{K: 3, MaxChecks: 2000}
	want, wantStats, err := topk.TopKCT(g, te, pref)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, gotStats, err := topk.TopKCT(tiny, te, pref)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) || gotStats != wantStats {
			t.Fatalf("round %d: tiny-cache search diverged: %d cands %+v vs %d cands %+v",
				round, len(got), gotStats, len(want), wantStats)
		}
		for i := range got {
			if got[i].Tuple.Key() != want[i].Tuple.Key() || got[i].Score != want[i].Score {
				t.Fatalf("round %d cand %d: %s@%v vs %s@%v", round, i,
					got[i].Tuple.Key(), got[i].Score, want[i].Tuple.Key(), want[i].Score)
			}
		}
	}
	if st := tiny.VerdictCacheStats(); st.Entries > 16 {
		t.Fatalf("cap 2 cache holds %d entries", st.Entries)
	}
}

// rulesOf rebuilds the Example 9 rule set (phi6b pruned); grounding
// does not expose its rule set, so the cap test reconstructs it.
func rulesOf(t *testing.T, g *chase.Grounding) *rule.Set {
	t.Helper()
	var pruned []rule.Rule
	for _, r := range paperdata.Rules() {
		if r.Name() != "phi6b" {
			pruned = append(pruned, r)
		}
	}
	rs, err := rule.NewSet(g.Schema(), g.Master().Schema(), pruned...)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}
