package topk

// valueHeap is a binary max-heap over scored values — the heaps
// H1..Hm that TopKCT consumes instead of pre-ranked lists. Building is
// O(n); Pop is O(log n), matching the complexity accounting of
// Section 6.2.
type valueHeap struct {
	items []scoredValue
	pops  *int // shared pop counter for instance-optimality accounting
}

// newValueHeap heapifies the given entries (which need not be sorted).
func newValueHeap(items []scoredValue, pops *int) *valueHeap {
	h := &valueHeap{items: append([]scoredValue(nil), items...), pops: pops}
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

func (h *valueHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && scoredLess(h.items[best], h.items[l]) {
			best = l
		}
		if r < n && scoredLess(h.items[best], h.items[r]) {
			best = r
		}
		if best == i {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}

// Pop removes and returns the top-weighted value.
func (h *valueHeap) Pop() (scoredValue, bool) {
	if len(h.items) == 0 {
		return scoredValue{}, false
	}
	if h.pops != nil {
		*h.pops++
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.siftDown(0)
	}
	return top, true
}

// Len returns the number of values remaining.
func (h *valueHeap) Len() int { return len(h.items) }

// object is a queue entry of TopKCT (Fig. 5): a Z-assignment described
// by positions into the buffers B1..Bm, with its score.
type object struct {
	vals   []scoredValue
	pos    []int
	posSum int // Σ pos, the total demotion depth
	w      float64
	key    string
}

// objectLess orders objects for the priority queue: higher score first;
// among equal scores, fewer demotions first (staying near the top of
// every list keeps the search close to the preference optimum and
// reaches a verifiable candidate in few swaps when ties abound); the
// value key breaks remaining ties deterministically.
func objectLess(a, b *object) bool {
	if a.w != b.w {
		return a.w > b.w
	}
	if a.posSum != b.posSum {
		return a.posSum < b.posSum
	}
	return a.key < b.key
}

// pairingHeap is a max-priority queue over objects with O(1) insertion
// and O(log n) amortised delete-max.
//
// The paper uses a Brodal queue [Brodal, SODA'96] for worst-case bounds;
// a pairing heap provides the same amortised bounds with far simpler
// code, which changes no experiment (see DESIGN.md, substitutions).
type pairingHeap struct {
	root *phNode
	n    int
}

type phNode struct {
	obj     *object
	child   *phNode // first child
	sibling *phNode // next sibling
}

// Push inserts an object in O(1).
func (h *pairingHeap) Push(o *object) {
	h.root = meld(h.root, &phNode{obj: o})
	h.n++
}

// Pop removes and returns the best object.
func (h *pairingHeap) Pop() (*object, bool) {
	if h.root == nil {
		return nil, false
	}
	top := h.root.obj
	h.root = mergePairs(h.root.child)
	h.n--
	return top, true
}

// Len returns the number of queued objects.
func (h *pairingHeap) Len() int { return h.n }

func meld(a, b *phNode) *phNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if objectLess(b.obj, a.obj) {
		a, b = b, a
	}
	// a wins: b becomes a's first child.
	b.sibling = a.child
	a.child = b
	return a
}

// mergePairs performs the two-pass pairing combine.
func mergePairs(first *phNode) *phNode {
	if first == nil || first.sibling == nil {
		return first
	}
	a := first
	b := first.sibling
	rest := b.sibling
	a.sibling, b.sibling = nil, nil
	return meld(meld(a, b), mergePairs(rest))
}
