package topk

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/model"
)

// TopKCT computes a top-k list of candidate targets following Fig. 5 of
// the paper: per-attribute value heaps feed buffers B1..Bm, a priority
// queue pops assignments in non-increasing score order, each popped
// assignment is verified by the chase-based check, and its m neighbours
// (each differing in a single attribute, taking the next-ranked value)
// are pushed. The enumeration visits assignments in exactly best-first
// order, so it terminates as soon as k candidates are verified (early
// termination), and only pops each heap as far as the k-th result
// requires (instance optimality w.r.t. heap pops).
//
// te must be the deduced target of a Church-Rosser grounding g; its
// non-null attributes are fixed in every candidate. The returned
// candidates are in non-increasing score order.
func TopKCT(g *chase.Grounding, te *model.Tuple, pref Preference) ([]Candidate, Stats, error) {
	p := newProblem(g, te, pref)
	cands, err := topkSearch(p, pref.K, true)
	return cands, p.stats, err
}

// topkSearch runs the Fig. 5 enumeration; withCheck false skips the
// candidate verification (used by TopKCTh's first phase).
func topkSearch(p *problem, k int, withCheck bool) ([]Candidate, error) {
	if k <= 0 {
		return nil, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	m := len(p.zAttr)
	base := p.baseScore()
	if m == 0 {
		// te is already complete; it is its own single candidate.
		if !withCheck || p.check(p.te) {
			return []Candidate{{Tuple: p.te.Clone(), Score: base}}, nil
		}
		return nil, nil
	}

	// Build the heaps H1..Hm and pop the top value of each into the
	// buffers (Fig. 5 line 2).
	heaps := make([]*valueHeap, m)
	bufs := make([][]scoredValue, m)
	for i := 0; i < m; i++ {
		heaps[i] = newValueHeap(p.lists[i], &p.stats.Pops)
		top, ok := heaps[i].Pop()
		if !ok {
			return nil, fmt.Errorf("topk: attribute %s has an empty candidate domain",
				p.g.Schema().Attr(p.zAttr[i]))
		}
		bufs[i] = []scoredValue{top}
	}

	mk := func(pos []int) *object {
		o := &object{pos: pos, vals: make([]scoredValue, m), w: base}
		for i, pi := range pos {
			o.vals[i] = bufs[i][pi]
			o.w += o.vals[i].w
			o.posSum += pi
		}
		o.key = zKey(o.vals)
		return o
	}

	seen := map[string]bool{}
	var q pairingHeap
	first := mk(make([]int, m))
	seen[first.key] = true
	q.Push(first)
	p.stats.Generated++

	// next pops the best queued assignment and expands its m
	// single-attribute successors (Fig. 5 lines 10-15). Expansion does
	// not depend on the popped assignment's verdict, so the assignments
	// form a verdict-independent check stream (see parallel.go).
	next := func() (checkEvent, bool, error) {
		o, ok := q.Pop()
		if !ok {
			return checkEvent{}, false, nil
		}
		t := p.assemble(o.vals)
		for i := 0; i < m; i++ {
			next := o.pos[i] + 1
			if next >= len(bufs[i]) {
				v, ok := heaps[i].Pop()
				if !ok {
					continue // this attribute's domain is exhausted
				}
				bufs[i] = append(bufs[i], v)
			}
			pos := append([]int(nil), o.pos...)
			pos[i] = next
			o2 := mk(pos)
			if !seen[o2.key] {
				seen[o2.key] = true
				q.Push(o2)
				p.stats.Generated++
			}
		}
		return checkEvent{t: t, score: o.w, pops: p.stats.Pops, generated: p.stats.Generated}, true, nil
	}

	if withCheck && p.parallelism() > 1 {
		budget, ok := p.remainingBudget()
		if !ok {
			return nil, nil
		}
		oc := runStream(p.pool, p.parallelism(), budget, k,
			checkEvent{pops: p.stats.Pops, generated: p.stats.Generated}, next)
		p.stats.Checks += oc.checks
		if oc.cut {
			p.stats.Pops, p.stats.Generated = oc.pops, oc.generated
		}
		out := make([]Candidate, 0, len(oc.passes))
		for _, ev := range oc.passes {
			out = append(out, Candidate{Tuple: ev.t, Score: ev.score})
		}
		return out, nil
	}

	var out []Candidate
	for len(out) < k && !p.exhausted() {
		ev, ok, _ := next()
		if !ok {
			break
		}
		if !withCheck || p.check(ev.t) {
			out = append(out, Candidate{Tuple: ev.t, Score: ev.score})
		}
	}
	return out, nil
}

// TopKCTh is the PTIME heuristic of Section 6.3: it first enumerates the
// k best assignments without verification, then greedily repairs each
// one attribute at a time — fixing the highest-ranked value that keeps
// the partial template chase-consistent — until the tuple passes the
// candidate check. Tuples that cannot be repaired are dropped, so the
// result is always a set of true candidate targets, though not
// necessarily the k highest-scoring ones (the cost/quality trade-off the
// paper describes).
func TopKCTh(g *chase.Grounding, te *model.Tuple, pref Preference) ([]Candidate, Stats, error) {
	p := newProblem(g, te, pref)
	raw, err := topkSearch(p, pref.K, false)
	if err != nil {
		return nil, p.stats, err
	}
	var out []Candidate
	dedup := map[string]bool{}
	for _, c := range raw {
		if p.exhausted() {
			break
		}
		t, ok := p.repair(c.Tuple)
		if !ok {
			continue
		}
		k := t.Key()
		if dedup[k] {
			continue
		}
		dedup[k] = true
		out = append(out, Candidate{Tuple: t, Score: p.score(t)})
	}
	// Keep non-increasing score order after repairs.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && candLess(out[j-1], out[j]); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	if len(out) > pref.K {
		out = out[:pref.K]
	}
	return out, p.stats, nil
}

func candLess(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Tuple.Key() > b.Tuple.Key()
}

// score computes p({t}).
func (p *problem) score(t *model.Tuple) float64 {
	s := 0.0
	schema := p.g.Schema()
	for a := 0; a < schema.Arity(); a++ {
		if v := t.At(a); !v.IsNull() {
			s += p.pref.Weight(schema.Attr(a), v)
		}
	}
	return s
}

// repair greedily fixes the Z attributes of t one at a time: each
// attribute takes the first value (t's own value first, then the ranked
// list) whose partial template passes the chase check. The final step
// checks the complete tuple, so success implies candidacy.
//
// With Parallel > 1 the per-attribute value probes are verified
// speculatively in batches: the chosen value — the first passing one in
// sequence order — and the check count are identical to the sequential
// run.
func (p *problem) repair(t *model.Tuple) (*model.Tuple, bool) {
	partial := p.te.Clone()
	par := p.parallelism()
	for i, a := range p.zAttr {
		if par > 1 {
			if !p.repairAttrParallel(partial, t, i, a, par) {
				return nil, false
			}
			continue
		}
		fixed := false
		tryValue := func(v model.Value, id uint32) bool {
			partial.SetAtID(a, v, p.dict, id)
			if p.check(partial) {
				return true
			}
			partial.SetAt(a, model.NullValue())
			return false
		}
		ownID := p.idOf(t, a)
		if tryValue(t.At(a), ownID) {
			continue
		}
		for _, sv := range p.lists[i] {
			if sv.id == ownID {
				continue
			}
			if tryValue(sv.v, sv.id) {
				fixed = true
				break
			}
		}
		if !fixed {
			return nil, false
		}
	}
	return partial, true
}

// idOf resolves the dictionary ID of t's value at position a, using
// the tuple's cached row when present (candidates assembled by the
// search always carry one). An unknown value maps to the NoID
// sentinel, which compares unequal to every ranked-list ID — exactly
// the Equal semantics the pre-dictionary code had — without growing
// the shared dictionary.
func (p *problem) idOf(t *model.Tuple, a int) uint32 {
	if id, ok := t.IDIn(p.dict, a); ok {
		return id
	}
	if id, ok := p.dict.Lookup(t.At(a)); ok {
		return id
	}
	return model.NoID
}

// repairAttrParallel fixes attribute a of partial by probing the value
// sequence (t's own value first, then the ranked list) through the
// speculative stream driver, stopping at the first pass.
func (p *problem) repairAttrParallel(partial, t *model.Tuple, i, a, par int) bool {
	own := t.At(a)
	ownID := p.idOf(t, a)
	li := -1 // -1 = own value, then ranked-list positions
	next := func() (checkEvent, bool, error) {
		for {
			var v model.Value
			var id uint32
			if li < 0 {
				v, id = own, ownID
				li = 0
			} else {
				if li >= len(p.lists[i]) {
					return checkEvent{}, false, nil
				}
				sv := p.lists[i][li]
				v, id = sv.v, sv.id
				li++
				if id == ownID {
					continue // sequential order probes the own value only once
				}
			}
			cand := partial.Clone()
			cand.SetAtID(a, v, p.dict, id)
			return checkEvent{t: cand}, true, nil
		}
	}
	oc := runStream(p.pool, par, 0, 1, checkEvent{}, next)
	p.stats.Checks += oc.checks
	if len(oc.passes) == 0 {
		return false
	}
	chosen := oc.passes[0].t
	partial.SetAtID(a, chosen.At(a), p.dict, p.idOf(chosen, a))
	return true
}
