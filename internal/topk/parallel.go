// Speculative parallel candidate verification.
//
// All three top-k algorithms share one structural property: the
// sequence of candidates they check is independent of the check
// *outcomes* — a verdict only decides whether a candidate is emitted
// and when the search stops (the k-th pass, or the MaxChecks budget).
// Enumeration (heap pops, queue expansion, rank-join advancement) is
// driven purely by scores. The sequential run is therefore a prefix of
// a deterministic "check stream", cut at the k-th passing candidate.
//
// runStream exploits this: it produces the stream in waves, verifies
// each wave concurrently on pooled chase engines, and then replays the
// verdicts in stream order to find the exact sequential stopping point.
// Checks speculated beyond that point are discarded — the returned
// passes, check count and enumeration-counter snapshot are identical to
// the sequential execution, which consumes the very same stream one
// event at a time.
package topk

import (
	"runtime"

	"repro/internal/chase"
	"repro/internal/model"
)

// parallelism resolves Preference.Parallel to a worker count.
func (p *problem) parallelism() int {
	switch {
	case p.pref.Parallel < 0:
		return runtime.GOMAXPROCS(0)
	case p.pref.Parallel == 0:
		return 1
	default:
		return p.pref.Parallel
	}
}

// checkEvent is one candidate of the deterministic check stream,
// carrying the cumulative enumeration counters observed right after the
// event was produced (the values Stats would hold at the end of the
// sequential iteration that checked it).
type checkEvent struct {
	t         *model.Tuple
	score     float64
	pops      int
	generated int
}

// streamOutcome is what the sequential algorithm would have observed.
type streamOutcome struct {
	passes []checkEvent // passing events in stream order, cut at needed
	checks int          // checks the sequential run would have spent
	// cut reports that the needed-th pass was reached mid-stream. Only
	// then must the caller rewind its enumeration counters to (pops,
	// generated) — the snapshot at the cut event — to discard
	// speculative enumeration; otherwise the live counters already
	// reflect the full stream, exactly as the sequential run left them.
	cut       bool
	pops      int
	generated int
	err       error // enumeration error (e.g. ErrBudget), nil if cut first
}

// runStream drives the check stream produced by next with par
// concurrent workers borrowing engines from pool. At most budget events
// are checked (0 = unlimited — the stream's own end bounds it), and the
// stream is cut immediately after the event yielding the needed-th pass
// (needed <= 0 disables the cut). next returns ok=false at stream end
// and may return an enumeration error, which is reported only when the
// cut was not reached first — exactly when the sequential run would
// have hit it.
func runStream(pool *chase.CheckerPool, par, budget, needed int, base checkEvent, next func() (checkEvent, bool, error)) streamOutcome {
	out := streamOutcome{pops: base.pops, generated: base.generated}
	// Waves start at one event per worker and double up to 4·par: short
	// streams (a repair probe whose first value usually passes) waste at
	// most par-1 speculative checks, while long streams amortise wave
	// dispatch over bigger batches.
	waveCap := 4 * par
	if waveCap < 8 {
		waveCap = 8
	}
	wave := par
	events := make([]checkEvent, 0, waveCap)
	verdicts := make([]bool, waveCap)
	last := base
	produced := 0
	var streamErr error
	ended := false
	for !ended {
		events = events[:0]
		for len(events) < wave {
			if budget > 0 && produced >= budget {
				ended = true
				break
			}
			ev, ok, err := next()
			if err != nil {
				streamErr = err
				ended = true
				break
			}
			if !ok {
				ended = true
				break
			}
			events = append(events, ev)
			produced++
		}
		if len(events) == 0 {
			break
		}
		if wave *= 2; wave > waveCap {
			wave = waveCap
		}
		checkWave(pool, par, events, verdicts[:len(events)])
		for i, ev := range events {
			out.checks++
			last = ev
			if verdicts[i] {
				out.passes = append(out.passes, ev)
				if needed > 0 && len(out.passes) == needed {
					// The sequential run stops here: discard everything
					// speculated beyond this event, including any
					// enumeration error produced while speculating.
					out.cut = true
					out.pops, out.generated = ev.pops, ev.generated
					return out
				}
			}
		}
	}
	out.pops, out.generated = last.pops, last.generated
	out.err = streamErr
	return out
}

// checkWave verifies events concurrently, writing verdicts aligned with
// events.
func checkWave(pool *chase.CheckerPool, par int, events []checkEvent, verdicts []bool) {
	pool.CheckMany(par, len(events),
		func(i int) *model.Tuple { return events[i].t },
		func(i int, ok bool) { verdicts[i] = ok })
}

// remainingBudget translates MaxChecks into a runStream budget given
// the checks already spent; the second result is false when the budget
// is already exhausted.
func (p *problem) remainingBudget() (int, bool) {
	if p.pref.MaxChecks <= 0 {
		return 0, true
	}
	left := p.pref.MaxChecks - p.stats.Checks
	return left, left > 0
}
