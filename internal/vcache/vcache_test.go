package vcache

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestGetPut(t *testing.T) {
	c := New[string](0)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key(1), "one")
	v, ok := c.Get(key(1))
	if !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v; want one, true", v, ok)
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("hit on an absent key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("Stats = %+v; want 1 hit, 2 misses, 1 entry", st)
	}
}

func TestCapBound(t *testing.T) {
	// Tiny cap: rounded to one entry per shard, so at most nshards
	// entries total stick; inserts beyond that are refused, not evicted.
	c := New[int](1)
	for i := 0; i < 100; i++ {
		c.Put(key(i), i)
	}
	if n := c.Len(); n > nshards {
		t.Fatalf("Len = %d after 100 Puts with cap 1; want <= %d", n, nshards)
	}
	// Whatever got in stays in and stays correct.
	kept := 0
	for i := 0; i < 100; i++ {
		if v, ok := c.Get(key(i)); ok {
			kept++
			if v != i {
				t.Fatalf("Get(%d) = %d", i, v)
			}
		}
	}
	if kept != c.Len() {
		t.Fatalf("kept %d entries but Len = %d", kept, c.Len())
	}
	// Overwriting an existing key is allowed even at capacity.
	var present int
	for i := 0; i < 100; i++ {
		if _, ok := c.Get(key(i)); ok {
			present = i
			break
		}
	}
	c.Put(key(present), -1)
	if v, _ := c.Get(key(present)); v != -1 {
		t.Fatalf("overwrite at capacity failed: got %d", v)
	}
}

func TestUnbounded(t *testing.T) {
	c := New[int](-1)
	for i := 0; i < 10000; i++ {
		c.Put(key(i), i)
	}
	if c.Len() != 10000 {
		t.Fatalf("Len = %d; want 10000", c.Len())
	}
}

func TestNextVersionSharesCounters(t *testing.T) {
	c := New[int](0)
	c.Put(key(1), 1)
	c.Get(key(1)) // hit
	c.Get(key(2)) // miss

	n := c.NextVersion()
	if n.Len() != 0 {
		t.Fatalf("NextVersion carried %d entries; want 0", n.Len())
	}
	if _, ok := n.Get(key(1)); ok {
		t.Fatal("NextVersion served a predecessor's entry")
	}
	st := n.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("successor Stats = %+v; want cumulative 1 hit, 2 misses", st)
	}
	if st.Entries != 0 {
		t.Fatalf("successor Entries = %d; want 0", st.Entries)
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache[int]
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(key(1), 1)
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache Stats = %+v", st)
	}
	if c.NextVersion() != nil {
		t.Fatal("nil cache NextVersion != nil")
	}
}

func TestConcurrent(t *testing.T) {
	c := New[int](-1)
	const (
		goroutines = 8
		keys       = 512
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for i := 0; i < keys; i++ {
					if v, ok := c.Get(key(i)); ok && v != i {
						panic(fmt.Sprintf("Get(%d) = %d", i, v))
					}
					c.Put(key(i), i)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != keys {
		t.Fatalf("Len = %d; want %d", c.Len(), keys)
	}
	st := c.Stats()
	if st.Hits+st.Misses != goroutines*50*keys {
		t.Fatalf("hits+misses = %d; want %d", st.Hits+st.Misses, goroutines*50*keys)
	}
}
