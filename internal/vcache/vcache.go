// Package vcache provides the concurrent verdict cache behind the
// chase's cached candidate checks: a sharded, bounded map from packed
// byte keys to values, with hit/miss accounting that survives version
// turnover.
//
// The intended lifecycle mirrors the grounding-version chain it was
// built for (see DESIGN.md invariant 8). A cache belongs to one
// immutable grounding version, so its entries never need invalidation:
// a verdict computed against a version is correct against that version
// forever. When the version is superseded (chase.Grounding.Extend),
// the successor calls NextVersion — a fresh, empty cache that shares
// the chain's cumulative hit/miss counters, so operational accounting
// spans an entity's whole life while entries are dropped together with
// the version that made them valid. Nothing is pinned: a superseded
// version's cache is garbage-collected with the version.
//
// Reads are lock-light and allocation-free: Get takes a shard read
// lock and looks the []byte key up without converting it to a string
// (the compiler elides the allocation for m[string(b)]). Put bounds
// the cache by refusing inserts once its shard is full — a full cache
// stops growing instead of evicting, which keeps cached-vs-uncached
// equivalence trivially deterministic (an entry either is the verdict
// the chase computes, or is absent).
package vcache

import (
	"sync"
	"sync/atomic"
)

// DefaultCap is the per-cache entry bound used when New is given cap
// 0: generous next to any real candidate search (a top-k run checks
// hundreds to thousands of candidates), small next to the grounding it
// hangs off.
const DefaultCap = 1 << 16

// nshards is the number of stripes; a power of two so routing is a
// mask. Checks run on at most GOMAXPROCS goroutines, so a handful of
// stripes keeps lock contention negligible.
const nshards = 8

// Stats is a point-in-time view of a cache's accounting. Hits and
// Misses are cumulative across the whole NextVersion chain; Entries
// counts the current version's entries only (earlier versions' entries
// died with them).
type Stats struct {
	Hits    int64
	Misses  int64
	Entries int64
}

// counters is the accounting shared along a NextVersion chain.
type counters struct {
	hits   atomic.Int64
	misses atomic.Int64
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
}

// Cache is a concurrent bounded map from packed byte keys to values.
// The zero value is not usable; create with New. All methods are safe
// for concurrent use. A nil *Cache is a valid "disabled" cache: Get
// always misses (without counting), Put and Len are no-ops.
type Cache[V any] struct {
	c      *counters
	cap    int // per-shard entry bound
	shards [nshards]shard[V]
}

// New creates an empty cache bounded to roughly cap entries: cap == 0
// means DefaultCap, cap < 0 means unbounded, and any positive cap is
// rounded up to a multiple of the shard count.
func New[V any](cap int) *Cache[V] {
	c := &Cache[V]{c: &counters{}}
	switch {
	case cap == 0:
		c.cap = DefaultCap / nshards
	case cap < 0:
		c.cap = -1
	default:
		c.cap = (cap + nshards - 1) / nshards
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]V)
	}
	return c
}

// NextVersion returns a fresh, empty cache with the same bound that
// shares the receiver's cumulative hit/miss counters — the successor
// cache of the next grounding version in an entity's chain. A nil
// receiver stays nil (a disabled cache stays disabled down the chain).
func (c *Cache[V]) NextVersion() *Cache[V] {
	if c == nil {
		return nil
	}
	n := &Cache[V]{c: c.c, cap: c.cap}
	for i := range n.shards {
		n.shards[i].m = make(map[string]V)
	}
	return n
}

// shardFor routes a key to its stripe (FNV-1a over the key bytes).
func (c *Cache[V]) shardFor(key []byte) *shard[V] {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return &c.shards[h&(nshards-1)]
}

// Get returns the value stored under key and whether one exists,
// recording a hit or miss. It never allocates: the []byte key is
// looked up directly.
func (c *Cache[V]) Get(key []byte) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := c.shardFor(key)
	s.mu.RLock()
	v, ok := s.m[string(key)]
	s.mu.RUnlock()
	if ok {
		c.c.hits.Add(1)
		return v, true
	}
	c.c.misses.Add(1)
	return zero, false
}

// Put stores v under key unless the key's shard is at capacity (the
// cache stops growing rather than evicting; see the package comment).
// Concurrent Puts of one key are benign — verdicts are deterministic,
// so racing writers store the same value.
func (c *Cache[V]) Put(key []byte, v V) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if _, exists := s.m[string(key)]; exists || c.cap < 0 || len(s.m) < c.cap {
		s.m[string(key)] = v
	}
	s.mu.Unlock()
}

// Len returns the number of entries currently held.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Stats returns the chain-cumulative hit/miss counts and the current
// entry count; all zero for a nil (disabled) cache.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:    c.c.hits.Load(),
		Misses:  c.c.misses.Load(),
		Entries: int64(c.Len()),
	}
}
