package pipeline

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/topk"
)

// testDataset generates a small Med-style dataset: many entities, one
// schema, master data and a full rule set.
func testDataset(t *testing.T, entities int) *gen.Dataset {
	t.Helper()
	cfg := gen.MedConfig()
	cfg.NumEntities = entities
	return gen.Generate(cfg)
}

func instances(ds *gen.Dataset) []*model.EntityInstance {
	out := make([]*model.EntityInstance, len(ds.Entities))
	for i, e := range ds.Entities {
		out[i] = e.Instance
	}
	return out
}

// fingerprint renders everything a Result exposes for one entity, so
// equality means byte-identical per-entity output.
func fingerprint(r Result) string {
	if r.Err != nil {
		return "err:" + r.Err.Error()
	}
	s := fmt.Sprintf("cr=%v conflict=%q", r.Deduction.CR, r.Deduction.Conflict)
	if r.Deduction.CR {
		s += " target=" + r.Deduction.Target.Key()
	}
	for _, c := range r.Candidates {
		s += fmt.Sprintf(" cand=%s@%.6f", c.Tuple.Key(), c.Score)
	}
	s += fmt.Sprintf(" checks=%d pops=%d gen=%d", r.Stats.Checks, r.Stats.Pops, r.Stats.Generated)
	return s
}

// TestRunMatchesSequentialSession is the pipeline equivalence guarantee:
// with workers=N, every per-entity result is identical to a sequential
// core.Session run over the same entity (run under -race in CI).
func TestRunMatchesSequentialSession(t *testing.T) {
	ds := testDataset(t, 40)
	ents := instances(ds)
	cfg := Config{Master: ds.Master, Rules: ds.Rules, Workers: 8, TopK: 5,
		Pref: topk.Preference{MaxChecks: 2000}}
	results, sum, err := Run(ents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Entities != len(ents) || len(results) != len(ents) {
		t.Fatalf("got %d results, summary %d entities, want %d", len(results), sum.Entities, len(ents))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
		sess, err := core.NewSession(ents[i], ds.Master, ds.Rules)
		if err != nil {
			t.Fatal(err)
		}
		want := Result{Index: i, Instance: ents[i], Deduction: sess.Deduce()}
		if want.Deduction.CR && !want.Deduction.Target.Complete() {
			cands, stats, err := sess.TopK(core.Preference{K: 5, MaxChecks: 2000}, core.AlgoTopKCT)
			if err != nil {
				t.Fatal(err)
			}
			want.Candidates, want.Stats = cands, stats
		}
		if got, exp := fingerprint(r), fingerprint(want); got != exp {
			t.Fatalf("entity %d:\npipeline:   %s\nsequential: %s", i, got, exp)
		}
	}
}

// TestRunWorkerIndependence pins the other half of the guarantee: the
// worker count never changes any per-entity output.
func TestRunWorkerIndependence(t *testing.T) {
	ds := testDataset(t, 24)
	ents := instances(ds)
	base, _, err := Run(ents, Config{Master: ds.Master, Rules: ds.Rules, Workers: 1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		got, _, err := Run(ents, Config{Master: ds.Master, Rules: ds.Rules, Workers: w, TopK: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if fingerprint(got[i]) != fingerprint(base[i]) {
				t.Fatalf("workers=%d entity %d: %s != %s", w, i, fingerprint(got[i]), fingerprint(base[i]))
			}
		}
	}
}

// TestStreamOrderAndProgress checks that the sink sees results in input
// order even though workers finish out of order.
func TestStreamOrderAndProgress(t *testing.T) {
	ds := testDataset(t, 30)
	var seen []int
	sum, err := Stream(instances(ds), Config{Master: ds.Master, Rules: ds.Rules, Workers: 6},
		func(r Result) error {
			seen = append(seen, r.Index)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Entities != 30 {
		t.Fatalf("summary has %d entities, want 30", sum.Entities)
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("sink saw index %d at position %d", idx, i)
		}
	}
}

// TestStreamSinkError checks that a sink error stops the batch early
// and is returned.
func TestStreamSinkError(t *testing.T) {
	ds := testDataset(t, 20)
	boom := errors.New("boom")
	calls := 0
	_, err := Stream(instances(ds), Config{Master: ds.Master, Rules: ds.Rules, Workers: 4},
		func(r Result) error {
			calls++
			if r.Index == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 4 {
		t.Fatalf("sink ran %d times, want 4", calls)
	}
}

// TestBadEntityDoesNotAbortBatch: one empty-schema... rather, one
// entity over a different schema is rejected up front, while a non-CR
// entity flows through as a per-entity verdict, not an error.
func TestBadEntityDoesNotAbortBatch(t *testing.T) {
	s := model.MustSchema("r", "v", "price")
	// Two clean single-tuple entities around one whose rules conflict:
	// the up/down pair orders any two distinct-v tuples both ways on
	// price, so an entity with two tuples of differing prices is not
	// Church-Rosser.
	rules, err := core.ParseRules(`
		up:   t1[v] < t2[v] -> t1 <= t2 @ price
		down: t2[v] < t1[v] -> t1 <= t2 @ price
	`, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(vals ...model.Value) *model.EntityInstance {
		ie := model.NewEntityInstance(s)
		for i := 0; i+1 < len(vals); i += 2 {
			ie.MustAdd(model.MustTuple(s, vals[i], vals[i+1]))
		}
		return ie
	}
	good1 := mk(model.I(1), model.S("9.99"))
	bad := mk(model.I(1), model.S("9.99"), model.I(2), model.S("10.99")) // both orders forced
	good2 := mk(model.I(2), model.S("10.49"))
	results, sum, err := Run([]*model.EntityInstance{good1, bad, good2},
		Config{Rules: rules, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Entities != 3 || sum.NotCR != 1 || sum.Errors != 0 {
		t.Fatalf("summary = %+v, want 3 entities, 1 not-CR, 0 errors", sum)
	}
	if results[1].Deduction.CR {
		t.Fatal("conflicting entity reported Church-Rosser")
	}
	for _, i := range []int{0, 2} {
		if !results[i].Deduction.CR || !results[i].Deduction.Target.Complete() {
			t.Fatalf("entity %d should deduce completely: %+v", i, results[i].Deduction)
		}
	}
}

// TestMixedSchemaRejected: schema mismatches are a batch-level error,
// reported before any work starts.
func TestMixedSchemaRejected(t *testing.T) {
	s1 := model.MustSchema("a", "x")
	s2 := model.MustSchema("b", "x")
	rules, _ := core.ParseRules("", s1, nil)
	e1 := model.NewEntityInstance(s1)
	e1.MustAdd(model.MustTuple(s1, model.I(1)))
	e2 := model.NewEntityInstance(s2)
	e2.MustAdd(model.MustTuple(s2, model.I(1)))
	_, _, err := Run([]*model.EntityInstance{e1, e2}, Config{Rules: rules})
	if err == nil {
		t.Fatal("mixed schemas were accepted")
	}
}

// TestEmptyBatch: no entities is a valid (empty) batch.
func TestEmptyBatch(t *testing.T) {
	results, sum, err := Run(nil, Config{})
	if err != nil || len(results) != 0 || sum.Entities != 0 {
		t.Fatalf("empty batch: results=%d sum=%+v err=%v", len(results), sum, err)
	}
}

// TestEach mirrors the bench drivers' use: index-addressed writes, the
// lowest-index error wins.
func TestEach(t *testing.T) {
	out := make([]int, 100)
	if err := Each(7, len(out), func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	err := Each(5, 50, func(i int) error {
		if i%10 == 3 {
			return fmt.Errorf("e%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "e3" {
		t.Fatalf("err = %v, want e3", err)
	}
}
