package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/topk"
)

// TestUpdaterMatchesBatch drives the central update-stream guarantee:
// after any sequence of Apply batches, every live entity's Result is
// byte-identical to a fresh batch Run over the accumulated instances.
func TestUpdaterMatchesBatch(t *testing.T) {
	ds := testDataset(t, 12)
	cfg := Config{Master: ds.Master, Rules: ds.Rules, Workers: 4, TopK: 3,
		Pref: topk.Preference{MaxChecks: 2000}}
	u, err := NewUpdater(ds.Entities[0].Instance.Schema(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Feed each entity's tuples in three waves: first tuple, middle,
	// remainder — interleaved across entities like live traffic.
	accumulated := map[string][]*model.Tuple{}
	var waves [3][]Update
	for i, e := range ds.Entities {
		key := fmt.Sprintf("e%02d", i)
		tuples := e.Instance.Tuples()
		cut1, cut2 := 1, 1+(len(tuples)-1)/2
		waves[0] = append(waves[0], Update{Key: key, Tuples: tuples[:cut1]})
		if cut1 < cut2 {
			waves[1] = append(waves[1], Update{Key: key, Tuples: tuples[cut1:cut2]})
		}
		if cut2 < len(tuples) {
			waves[2] = append(waves[2], Update{Key: key, Tuples: tuples[cut2:]})
		}
	}
	for w, ups := range waves {
		results, sum, err := u.Apply(ups)
		if err != nil {
			t.Fatalf("wave %d: %v", w, err)
		}
		if len(results) != len(ups) || sum.Entities != len(ups) {
			t.Fatalf("wave %d: %d results, summary %d, want %d", w, len(results), sum.Entities, len(ups))
		}
		for _, up := range ups {
			accumulated[up.Key] = append(accumulated[up.Key], up.Tuples...)
		}
		// Every result of this wave must equal a fresh batch run over
		// the entities' accumulated instances.
		var ents []*model.EntityInstance
		for i := range results {
			ie := model.NewEntityInstance(ds.Entities[0].Instance.Schema())
			for _, tp := range accumulated[ups[i].Key] {
				ie.MustAdd(tp)
			}
			ents = append(ents, ie)
		}
		fresh, _, err := Run(ents, cfg)
		if err != nil {
			t.Fatalf("wave %d fresh run: %v", w, err)
		}
		for i := range results {
			if got, want := fingerprint(results[i]), fingerprint(fresh[i]); got != want {
				t.Fatalf("wave %d entity %s:\nincremental: %s\nfresh batch: %s",
					w, ups[i].Key, got, want)
			}
		}
	}
	if u.Len() != len(ds.Entities) {
		t.Fatalf("updater holds %d entities, want %d", u.Len(), len(ds.Entities))
	}
	for i := range ds.Entities {
		key := fmt.Sprintf("e%02d", i)
		if v := u.Version(key); v < 0 {
			t.Fatalf("entity %s unknown after the stream", key)
		}
	}

	// Snapshot re-deduces everything and must agree with a full fresh
	// batch over the final instances, in first-seen key order.
	keys, snap, sum, err := u.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Entities != len(ds.Entities) {
		t.Fatalf("snapshot summary: %d entities", sum.Entities)
	}
	var finals []*model.EntityInstance
	for _, key := range keys {
		ie := model.NewEntityInstance(ds.Entities[0].Instance.Schema())
		for _, tp := range accumulated[key] {
			ie.MustAdd(tp)
		}
		finals = append(finals, ie)
	}
	fresh, _, err := Run(finals, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap {
		if got, want := fingerprint(snap[i]), fingerprint(fresh[i]); got != want {
			t.Fatalf("snapshot %s:\nincremental: %s\nfresh batch: %s", keys[i], got, want)
		}
	}
}

// TestUpdaterMergesSameKey: several updates for one key in one batch
// apply in order and produce one result.
func TestUpdaterMergesSameKey(t *testing.T) {
	ds := testDataset(t, 1)
	ie := ds.Entities[0].Instance
	if ie.Size() < 3 {
		t.Skip("generated entity too small")
	}
	cfg := Config{Master: ds.Master, Rules: ds.Rules}
	u, err := NewUpdater(ie.Schema(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := u.Apply([]Update{
		{Key: "e", Tuples: ie.Tuples()[:1]},
		{Key: "e", Tuples: ie.Tuples()[1:]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("merged batch produced %d results", len(results))
	}
	if results[0].Instance.Size() != ie.Size() {
		t.Fatalf("merged instance holds %d tuples, want %d", results[0].Instance.Size(), ie.Size())
	}
	if u.Version("e") != 0 {
		t.Fatalf("one creating batch should leave version 0, got %d", u.Version("e"))
	}
}

// TestUpdaterBadDeltaKeepsVersion: a delta that fails (foreign-schema
// tuple) reports through Result.Err, does not abort the batch, and the
// entity keeps answering from its previous version.
func TestUpdaterBadDeltaKeepsVersion(t *testing.T) {
	ds := testDataset(t, 2)
	schema := ds.Entities[0].Instance.Schema()
	cfg := Config{Master: ds.Master, Rules: ds.Rules}
	u, err := NewUpdater(schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Apply([]Update{
		{Key: "a", Tuples: ds.Entities[0].Instance.Tuples()},
		{Key: "b", Tuples: ds.Entities[1].Instance.Tuples()},
	}); err != nil {
		t.Fatal(err)
	}
	before := u.Version("a")

	other := model.MustSchema("other", "x")
	results, sum, err := u.Apply([]Update{
		{Key: "a", Tuples: []*model.Tuple{model.MustTuple(other, model.I(1))}},
		{Key: "b", Tuples: ds.Entities[0].Instance.Tuples()[:1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 1 {
		t.Fatalf("summary errors = %d, want 1", sum.Errors)
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), `entity "a"`) {
		t.Fatalf("bad delta err = %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("good sibling failed: %v", results[1].Err)
	}
	if u.Version("a") != before {
		t.Fatalf("failed delta advanced the version: %d -> %d", before, u.Version("a"))
	}

	// A failed creation (unseen key, bad tuple) must still honour the
	// Result contract: Instance is never nil, and no entity appears.
	results, _, err = u.Apply([]Update{
		{Key: "fresh", Tuples: []*model.Tuple{model.MustTuple(other, model.I(2))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || results[0].Instance == nil {
		t.Fatalf("failed creation: err=%v instance=%v", results[0].Err, results[0].Instance)
	}
	if u.Version("fresh") != -1 {
		t.Fatal("failed creation registered a live entity")
	}
}

// TestUpdaterEmptyKeyRejected: key routing is structural, so an empty
// key fails the batch before any work starts.
func TestUpdaterEmptyKeyRejected(t *testing.T) {
	ds := testDataset(t, 1)
	u, err := NewUpdater(ds.Entities[0].Instance.Schema(),
		Config{Master: ds.Master, Rules: ds.Rules})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Apply([]Update{{Key: "", Tuples: ds.Entities[0].Instance.Tuples()}}); err == nil {
		t.Fatal("empty key was accepted")
	}
	if u.Len() != 0 {
		t.Fatal("rejected batch created entities")
	}
}

// TestUpdaterWorkerIndependence: the worker count never changes any
// per-entity output of an Apply batch.
func TestUpdaterWorkerIndependence(t *testing.T) {
	ds := testDataset(t, 10)
	schema := ds.Entities[0].Instance.Schema()
	var base []string
	for _, w := range []int{1, 4, 16} {
		cfg := Config{Master: ds.Master, Rules: ds.Rules, Workers: w, TopK: 3}
		u, err := NewUpdater(schema, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ups []Update
		for i, e := range ds.Entities {
			ups = append(ups, Update{Key: fmt.Sprintf("e%d", i), Tuples: e.Instance.Tuples()})
		}
		results, _, err := u.Apply(ups)
		if err != nil {
			t.Fatal(err)
		}
		var fps []string
		for _, r := range results {
			fps = append(fps, fingerprint(r))
		}
		if base == nil {
			base = fps
			continue
		}
		for i := range fps {
			if fps[i] != base[i] {
				t.Fatalf("workers=%d entity %d:\n%s\n%s", w, i, fps[i], base[i])
			}
		}
	}
}

// TestUpdaterMaxEntityTuples: the per-entity evidence bound fails the
// over-bound DELTA (Result.Err, version kept, no deduction) while its
// batch siblings and later within-bound deltas proceed. The bound is
// a function of committed size + delta size only, which is what lets
// a durable log replay the failure identically.
func TestUpdaterMaxEntityTuples(t *testing.T) {
	ds := testDataset(t, 1)
	tuples := ds.Entities[0].Instance.Tuples()
	if len(tuples) < 4 {
		t.Skip("generated entity too small")
	}
	u, err := NewUpdater(ds.Entities[0].Instance.Schema(),
		Config{Master: ds.Master, Rules: ds.Rules, MaxEntityTuples: 3})
	if err != nil {
		t.Fatal(err)
	}

	// 2 tuples: fits.
	results, _, err := u.Apply([]Update{{Key: "e", Tuples: tuples[:2]}})
	if err != nil || results[0].Err != nil {
		t.Fatalf("within-bound creation failed: %v / %v", err, results[0].Err)
	}
	before := u.Version("e")

	// 2+2 > 3: absorb fails, version stays, no deduction is reported.
	results, sum, err := u.Apply([]Update{{Key: "e", Tuples: tuples[2:4]}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || results[0].Deduction != nil {
		t.Fatalf("over-bound delta: err=%v deduction=%v", results[0].Err, results[0].Deduction)
	}
	if !strings.Contains(results[0].Err.Error(), "3-tuple entity bound") {
		t.Fatalf("error does not name the bound: %v", results[0].Err)
	}
	if sum.Errors != 1 || u.Version("e") != before {
		t.Fatalf("failed absorb moved state: errors=%d version %d -> %d", sum.Errors, before, u.Version("e"))
	}

	// 2+1 = 3: exactly at the bound, fits again.
	results, _, err = u.Apply([]Update{{Key: "e", Tuples: tuples[2:3]}})
	if err != nil || results[0].Err != nil {
		t.Fatalf("at-bound delta failed: %v / %v", err, results[0].Err)
	}
	if got := results[0].Instance.Size(); got != 3 {
		t.Fatalf("entity holds %d tuples, want 3", got)
	}

	// A CREATION over the bound fails too, registering nothing.
	results, _, err = u.Apply([]Update{{Key: "big", Tuples: tuples[:4]}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || u.Version("big") != -1 {
		t.Fatalf("over-bound creation: err=%v version=%d", results[0].Err, u.Version("big"))
	}
}
