// The update stream is the incremental face of the pipeline: where
// Run/Stream process a relation whose entities are fully known up
// front, an Updater keeps one live grounding per entity and absorbs
// evidence tuples as they arrive, re-deducing (and re-searching) only
// the entities an update batch touches. Under the hood each delta runs
// through chase.Grounding.Extend — delta Instantiation plus monotone
// resumption of the base chase — so absorbing a tuple into an n-tuple
// entity costs O(‖Σ‖·n) instead of the O(‖Σ‖·n²) rebuild, and every
// re-deduction is byte-identical to a fresh batch over the accumulated
// instance (updater_test.go enforces this).
package pipeline

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chase"
	"repro/internal/model"
)

// Update is one evidence delta of the update stream: new tuples for the
// entity identified by Key. Keys are caller-chosen routing identifiers
// (an identifier column's value, an ER cluster id); a key never seen
// before creates a new live entity.
type Update struct {
	Key    string
	Tuples []*model.Tuple
}

// Updater routes evidence deltas to live per-entity grounding versions.
// Apply serialises internally, so concurrent producers may call it,
// but the per-batch semantics are those of a sequential stream of
// batches. The zero value is unusable; create one with NewUpdater or
// NewUpdaterShared.
type Updater struct {
	shared *chase.Shared
	cfg    Config

	mu   sync.Mutex
	live map[string]*chase.Grounding
	keys []string // insertion order, for deterministic enumeration
}

// NewUpdater validates cfg.Rules against the schema (and cfg.Master)
// once and returns an empty update stream for entities of that schema.
func NewUpdater(schema *model.Schema, cfg Config) (*Updater, error) {
	shared, err := chase.NewShared(schema, cfg.Master, cfg.Rules)
	if err != nil {
		return nil, err
	}
	return NewUpdaterShared(shared, cfg), nil
}

// NewUpdaterShared builds an update stream on a prebuilt schema-level
// groundwork; cfg.Master and cfg.Rules are ignored in favour of the
// groundwork's own.
func NewUpdaterShared(shared *chase.Shared, cfg Config) *Updater {
	return &Updater{shared: shared, cfg: cfg, live: make(map[string]*chase.Grounding)}
}

// Len reports how many live entities the stream holds.
func (u *Updater) Len() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.keys)
}

// Keys returns the live entity keys in first-seen order.
func (u *Updater) Keys() []string {
	u.mu.Lock()
	defer u.mu.Unlock()
	return append([]string(nil), u.keys...)
}

// Version reports how many deltas the keyed entity has absorbed (0 for
// an entity created by its only batch so far, -1 for an unknown key).
func (u *Updater) Version(key string) int {
	u.mu.Lock()
	defer u.mu.Unlock()
	g, ok := u.live[key]
	if !ok {
		return -1
	}
	return g.Version()
}

// Apply absorbs one batch of evidence deltas. Deltas are merged by key
// (a batch may carry several updates for one entity; they apply in
// batch order), each affected entity's grounding is extended — or
// created, for new keys — and re-deduced concurrently on cfg.Workers
// workers, and one Result per affected entity returns in first-
// appearance order, with the Summary aggregated over them. Per-entity
// failures report through Result.Err and never abort the batch, with
// the same semantics per phase as the batch pipeline: when ABSORBING
// the delta fails (a tuple of the wrong schema), the entity keeps its
// previous grounding version, so the batch may be corrected and
// retried; when absorption succeeds but the deduction's candidate
// SEARCH fails (say, a check budget), the evidence is already in — the
// version advances, Result.Deduction carries the chase outcome, and
// retrying the same tuples would duplicate them (use Version to tell
// the cases apart). Updates with an empty key fail the whole batch
// before any work starts, as key routing is structural.
func (u *Updater) Apply(updates []Update) ([]Result, Summary, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	start := time.Now()
	var sum Summary
	if len(updates) == 0 {
		sum.Elapsed = time.Since(start)
		return nil, sum, nil
	}
	merged := make(map[string][]*model.Tuple, len(updates))
	var order []string
	for i, up := range updates {
		if up.Key == "" {
			return nil, sum, fmt.Errorf("pipeline: update %d has an empty key", i)
		}
		if _, ok := merged[up.Key]; !ok {
			order = append(order, up.Key)
		}
		merged[up.Key] = append(merged[up.Key], up.Tuples...)
	}

	results := make([]Result, len(order))
	next := make([]*chase.Grounding, len(order))
	err := Each(u.cfg.workers(), len(order), func(i int) error {
		entityStart := time.Now()
		defer func() { results[i].Elapsed = time.Since(entityStart) }()
		key := order[i]
		out := &results[i]
		out.Index = i
		g, live := u.live[key]
		var err error
		if live {
			out.Instance = g.Instance()
			g, err = g.Extend(merged[key]...)
		} else {
			// Set Instance up front so even a failed creation honours
			// the Result contract (callers format r.Instance).
			empty := model.NewEntityInstance(u.shared.Schema())
			out.Instance = empty
			var ie *model.EntityInstance
			ie, err = empty.Extend(merged[key]...)
			if err == nil {
				out.Instance = ie
				g, err = u.shared.NewGrounding(ie, u.cfg.Options)
			}
		}
		if err != nil {
			out.Err = fmt.Errorf("pipeline: entity %q: %w", key, err)
			return nil // per-entity failure; the batch continues
		}
		next[i] = g
		runGrounding(out, g, &u.cfg)
		return nil
	})
	if err != nil {
		return nil, sum, err
	}
	for i, key := range order {
		if next[i] == nil {
			continue // failed entity keeps its previous version
		}
		if _, ok := u.live[key]; !ok {
			u.keys = append(u.keys, key)
		}
		u.live[key] = next[i]
	}
	for i := range results {
		sum.add(&results[i], u.shared.Schema().Arity())
	}
	sum.Elapsed = time.Since(start)
	return results, sum, nil
}

// Snapshot re-deduces every live entity (concurrently, per cfg) and
// returns one Result per entity in first-seen key order, with keys
// aligned by index — the "where does the whole stream stand" view a
// caller needs after a run of deltas. Runs are cheap: each entity's
// grounding already holds its chased base state.
func (u *Updater) Snapshot() ([]string, []Result, Summary, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	start := time.Now()
	var sum Summary
	keys := append([]string(nil), u.keys...)
	results := make([]Result, len(keys))
	err := Each(u.cfg.workers(), len(keys), func(i int) error {
		entityStart := time.Now()
		results[i].Index = i
		runGrounding(&results[i], u.live[keys[i]], &u.cfg)
		results[i].Elapsed = time.Since(entityStart)
		return nil
	})
	if err != nil {
		return nil, nil, sum, err
	}
	for i := range results {
		sum.add(&results[i], u.shared.Schema().Arity())
	}
	sum.Elapsed = time.Since(start)
	return keys, results, sum, nil
}
