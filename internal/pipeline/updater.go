// The update stream is the incremental face of the pipeline: where
// Run/Stream process a relation whose entities are fully known up
// front, an Updater keeps one live grounding per entity and absorbs
// evidence tuples as they arrive, re-deducing (and re-searching) only
// the entities an update batch touches. Under the hood each delta runs
// through chase.Grounding.Extend — delta Instantiation plus monotone
// resumption of the base chase — so absorbing a tuple into an n-tuple
// entity costs O(‖Σ‖·n) instead of the O(‖Σ‖·n²) rebuild, and every
// re-deduction is byte-identical to a fresh batch over the accumulated
// instance (updater_test.go enforces this).
//
// The live entities are held in a sharded store: keys hash to one of
// shardCount stripes, each stripe guards only its routing map, and all
// per-entity work — extending the grounding, committing the new
// version, re-deducing — happens under that entity's own lock. No
// shard or store-wide lock is ever held across deduction, so batches
// over disjoint keys run fully concurrently, two batches touching one
// key serialise on that key alone, and the readers (Len, Keys,
// Version, Snapshot, Query) answer from atomically published grounding
// versions without waiting for any in-flight batch.
package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chase"
	"repro/internal/model"
)

// Update is one evidence delta of the update stream: new tuples for the
// entity identified by Key. Keys are caller-chosen routing identifiers
// (an identifier column's value, an ER cluster id); a key never seen
// before creates a new live entity.
type Update struct {
	Key    string
	Tuples []*model.Tuple
}

// Persister is the durability hook under Apply. When one is attached,
// every batch is handed to LogApply AFTER batch-level validation but
// BEFORE any entity is touched — log-then-apply ordering, so a batch
// the caller saw acknowledged is always wholly recoverable, and a
// batch the persister rejected was never applied at all. internal/wal
// provides the write-ahead-log implementation; nil (the default)
// keeps the PR 1–5 memory-only behaviour byte for byte.
type Persister interface {
	// LogApply durably records one update batch and returns the
	// sequence number it assigned. An error fails the whole Apply
	// with no update applied.
	LogApply(updates []Update) (uint64, error)
}

// GroupUpdates groups a relation's tuples into keyed updates by exact
// match on an identifier column, preserving first-seen order — the
// routing both cmd/relacc's append mode and the relaccd seed perform.
// keyOf renders a (non-null) identifier value into an Update key and
// may reject unroutable renderings; labels carries each key's display
// rendering (Value.String — what the column actually says, where keys
// may be type-tagged). Null identifiers are rejected: update routing
// needs a real key.
func GroupUpdates(tuples []*model.Tuple, schema *model.Schema, by string, keyOf func(model.Value) (string, error)) ([]Update, []string, error) {
	idx := schema.Index(by)
	if idx < 0 {
		return nil, nil, fmt.Errorf("pipeline: column %q is not in the schema", by)
	}
	at := map[string]int{}
	var ups []Update
	var labels []string
	for i, t := range tuples {
		v := t.At(idx)
		if v.IsNull() {
			return nil, nil, fmt.Errorf("pipeline: row %d has a null %s value; update routing needs an identifier", i+1, by)
		}
		k, err := keyOf(v)
		if err != nil {
			return nil, nil, fmt.Errorf("pipeline: row %d: %w", i+1, err)
		}
		if j, ok := at[k]; ok {
			ups[j].Tuples = append(ups[j].Tuples, t)
		} else {
			at[k] = len(ups)
			ups = append(ups, Update{Key: k, Tuples: []*model.Tuple{t}})
			labels = append(labels, v.String())
		}
	}
	return ups, labels, nil
}

// shardCount is the number of stripes the live-entity map is split
// into; a power of two so routing is a mask. 64 stripes keep routing
// contention negligible far past the worker counts a batch can use.
const shardCount = 64

// shard is one stripe of the live-entity store. Its lock guards only
// the routing map — never any entity's grounding work.
type shard struct {
	mu       sync.RWMutex
	entities map[string]*liveEntity
}

// liveEntity is one keyed entity of the stream. mu serialises writers
// (extend + commit + re-deduce) so each key's history is linear; g is
// the committed grounding version, published atomically so readers
// never take mu. g is nil only transiently, while a creation is in
// flight: a failed creation withdraws its routing entry again (see
// applyOne), so the shard maps hold no permanent tombstones.
type liveEntity struct {
	// mu serialises extend+commit+re-deduce per entity; holding it
	// across deduction is the design (writers to the same entity must
	// not interleave), not an accident.
	//
	//relacc:lock-held-over-deduction
	mu sync.Mutex
	g  atomic.Pointer[chase.Grounding]
	// memo is the entity's settled-target cache: the last computed
	// deduce → search answer, keyed by the grounding version it was
	// computed on plus the (k, algorithm) pair (see settledMemo). It is
	// best-effort and self-validating — a hit requires the memo's
	// grounding pointer to equal the currently committed one, so a memo
	// from a superseded version can never be served, only skipped.
	memo atomic.Pointer[settledMemo]
}

// settledMemo is one memoised re-deduction answer. Grounding versions
// are immutable and the deduce → search kernel is deterministic, so
// (g, k, algo) fully determines the result; invalidation is structural
// — Apply committing a new version makes every old memo's g pointer
// stale, and the hit check compares pointers. res carries only the
// recomputable fields (Instance, Version, Deduction, Candidates,
// Stats, Err): Key/Index/Elapsed stay per-call. A memoised result's
// Deduction and Candidates are shared across hits; like every Result
// off the read path they are read-only snapshots.
type settledMemo struct {
	g    *chase.Grounding
	k    int
	algo Algorithm
	res  Result
}

// Updater routes evidence deltas to live per-entity grounding versions
// held in a sharded store. Concurrent producers may call Apply:
// batches over disjoint keys proceed in parallel, batches sharing a
// key serialise per entity, and each entity observes a linear sequence
// of deltas. The read side (Len, Keys, Version, Snapshot, Query) never
// blocks on an in-flight batch's deduction. The zero value is
// unusable; create one with NewUpdater or NewUpdaterShared.
type Updater struct {
	shared *chase.Shared
	cfg    Config

	// persister, when non-nil, durably logs every batch before it is
	// applied (see Persister). Set once via AttachPersister, before
	// concurrent producers start.
	persister Persister

	// applyGate lets Checkpoint observe a quiesced store: every Apply
	// and Replay holds the read side across log + apply + key
	// registration, so under the write side no batch is in flight and
	// every sequence number the persister handed out is fully
	// reflected in the live entities. Uncontended RLock/RUnlock is
	// noise next to a deduction, so the gate is taken in memory-only
	// mode too.
	//
	//relacc:lock-held-over-deduction
	applyGate sync.RWMutex

	shards [shardCount]shard

	// keyMu guards the registry of successfully created entities. Keys
	// register in batch order when their creating Apply returns, so a
	// sequential caller observes exactly the pre-sharding first-seen
	// order; a brand-new entity answers Version(key) >= 0 as soon as
	// its version commits, which may be moments before Len/Keys count
	// it (only while its creating Apply is still running).
	keyMu sync.Mutex
	keys  []string // first-registration order, for deterministic enumeration

	// settledHits/settledMisses count settled-target memo outcomes
	// across the whole stream (hits are re-deductions answered without
	// running the kernel).
	settledHits   atomic.Int64
	settledMisses atomic.Int64

	// testHookMidApply, when non-nil, runs after an entity's new
	// grounding version is committed but before its re-deduction,
	// holding only that entity's lock — tests freeze a batch
	// mid-deduction with it to prove readers and disjoint keys are
	// never blocked.
	testHookMidApply func(key string)
}

// NewUpdater validates cfg.Rules against the schema (and cfg.Master)
// once and returns an empty update stream for entities of that schema.
func NewUpdater(schema *model.Schema, cfg Config) (*Updater, error) {
	shared, err := chase.NewShared(schema, cfg.Master, cfg.Rules)
	if err != nil {
		return nil, err
	}
	return NewUpdaterShared(shared, cfg), nil
}

// NewUpdaterShared builds an update stream on a prebuilt schema-level
// groundwork; cfg.Master and cfg.Rules are ignored in favour of the
// groundwork's own.
func NewUpdaterShared(shared *chase.Shared, cfg Config) *Updater {
	u := &Updater{shared: shared, cfg: cfg}
	for i := range u.shards {
		u.shards[i].entities = make(map[string]*liveEntity)
	}
	return u
}

// Schema returns the entity schema every update must conform to.
func (u *Updater) Schema() *model.Schema { return u.shared.Schema() }

// Dict returns the stream's shared value dictionary — the append-only
// interning table every grounding of this updater encodes against. A
// durable snapshot persists it so recovery re-interns values to their
// exact pre-crash IDs.
func (u *Updater) Dict() *model.Dict { return u.shared.Dict() }

// AttachPersister installs the durability hook. Call it once, after
// recovery has replayed any existing log (replayed batches must not be
// re-logged) and before concurrent producers start applying.
func (u *Updater) AttachPersister(p Persister) { u.persister = p }

// Residency reports what the stream holds in memory: the number of
// live entities and the total evidence tuples across them. It reads
// committed versions only and never blocks an in-flight batch.
func (u *Updater) Residency() (entities, tuples int) {
	for _, key := range u.Keys() {
		e := u.lookup(key)
		if e == nil {
			continue
		}
		g := e.g.Load()
		if g == nil {
			continue
		}
		entities++
		tuples += g.Instance().Size()
	}
	return entities, tuples
}

// CacheStats aggregates the stream's two read-path cache layers: the
// settled-target memo (stream-wide hit/miss counts) and the per-entity
// verdict caches (hits/misses cumulative over each entity's version
// chain, entries counting committed versions only; summed across live
// entities). It reads committed state and never blocks a batch.
type CacheStats struct {
	SettledHits    int64
	SettledMisses  int64
	VerdictHits    int64
	VerdictMisses  int64
	VerdictEntries int64
}

// CacheStats reports the stream's cache accounting; see the type.
func (u *Updater) CacheStats() CacheStats {
	cs := CacheStats{
		SettledHits:   u.settledHits.Load(),
		SettledMisses: u.settledMisses.Load(),
	}
	for _, key := range u.Keys() {
		e := u.lookup(key)
		if e == nil {
			continue
		}
		g := e.g.Load()
		if g == nil {
			continue
		}
		st := g.VerdictCacheStats()
		cs.VerdictHits += st.Hits
		cs.VerdictMisses += st.Misses
		cs.VerdictEntries += st.Entries
	}
	return cs
}

// deduceMemo is runGrounding with settled-target memoisation: when the
// entity's last computed answer was produced on this exact grounding
// version with this (k, algorithm) pair, it is returned without
// running the kernel; otherwise the kernel runs and its answer is
// published as the new memo — but only while g is still the committed
// version, so a computation that lost a race with Apply cannot clobber
// the current version's memo (the pointer-equality hit check would
// reject it anyway; the conditional store just keeps the memo useful).
// Byte-identity of hit and recomputation follows from determinism of
// the kernel on an immutable version.
func (u *Updater) deduceMemo(e *liveEntity, g *chase.Grounding, out *Result, cfg *Config) {
	if cfg.DisableSettledCache {
		runGrounding(out, g, cfg)
		return
	}
	if m := e.memo.Load(); m != nil && m.g == g && m.k == cfg.TopK && m.algo == cfg.Algo {
		u.settledHits.Add(1)
		out.Instance = m.res.Instance
		out.Version = m.res.Version
		out.Deduction = m.res.Deduction
		out.Candidates = m.res.Candidates
		out.Stats = m.res.Stats
		out.Err = m.res.Err
		return
	}
	u.settledMisses.Add(1)
	runGrounding(out, g, cfg)
	m := &settledMemo{g: g, k: cfg.TopK, algo: cfg.Algo, res: Result{
		Instance:   out.Instance,
		Version:    out.Version,
		Deduction:  out.Deduction,
		Candidates: out.Candidates,
		Stats:      out.Stats,
		Err:        out.Err,
	}}
	if e.g.Load() == g {
		e.memo.Store(m)
	}
}

// shardFor routes a key to its stripe (FNV-1a, masked).
func (u *Updater) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &u.shards[h&(shardCount-1)]
}

// lookup returns the keyed entity record, or nil when the key has
// never been routed.
func (u *Updater) lookup(key string) *liveEntity {
	s := u.shardFor(key)
	s.mu.RLock()
	e := s.entities[key]
	s.mu.RUnlock()
	return e
}

// entity returns the keyed entity record, creating the routing entry
// if needed. The shard lock covers only the map access.
func (u *Updater) entity(key string) *liveEntity {
	s := u.shardFor(key)
	s.mu.RLock()
	e := s.entities[key]
	s.mu.RUnlock()
	if e != nil {
		return e
	}
	s.mu.Lock()
	if e = s.entities[key]; e == nil {
		e = &liveEntity{}
		s.entities[key] = e
	}
	s.mu.Unlock()
	return e
}

// Len reports how many live entities the stream holds.
func (u *Updater) Len() int {
	u.keyMu.Lock()
	defer u.keyMu.Unlock()
	return len(u.keys)
}

// Keys returns the live entity keys in first-seen order.
func (u *Updater) Keys() []string {
	u.keyMu.Lock()
	defer u.keyMu.Unlock()
	return append([]string(nil), u.keys...)
}

// Version reports how many deltas the keyed entity has absorbed (0 for
// an entity created by its only batch so far, -1 for an unknown key).
// It reads the atomically published version and never waits for an
// in-flight batch.
func (u *Updater) Version(key string) int {
	e := u.lookup(key)
	if e == nil {
		return -1
	}
	g := e.g.Load()
	if g == nil {
		return -1
	}
	return g.Version()
}

// Apply absorbs one batch of evidence deltas. The whole batch is
// validated first — an empty key anywhere fails the batch before any
// entity is touched, as key routing is structural. Deltas are then
// merged by key (a batch may carry several updates for one entity;
// they apply in batch order), each affected entity's grounding is
// extended — or created, for new keys — and re-deduced concurrently on
// cfg.Workers workers, and one Result per affected entity returns in
// first-appearance order, with the Summary aggregated over them. Each
// entity's extend + re-deduce runs under that entity's lock only, so
// concurrent Apply calls over disjoint keys proceed in parallel while
// updates to one key serialise per entity. Per-entity failures report
// through Result.Err and never abort the batch, with the same
// semantics per phase as the batch pipeline: when ABSORBING the delta
// fails (a tuple of the wrong schema), the entity keeps its previous
// grounding version, so the batch may be corrected and retried; when
// absorption succeeds but the deduction's candidate SEARCH fails (say,
// a check budget), the evidence is already in — the version advances,
// Result.Deduction carries the chase outcome, and retrying the same
// tuples would duplicate them (use Version to tell the cases apart).
func (u *Updater) Apply(updates []Update) ([]Result, Summary, error) {
	return u.apply(updates, u.persister, &u.cfg)
}

// Replay is Apply for recovery: it re-absorbs batches read back from a
// durable log without re-logging them, and with the candidate search
// disabled (searches read committed state, they never shape it, so
// re-running them during replay would only burn time). Everything
// else — merging, per-entity extension, deterministic absorption
// failures, key registration order — is exactly Apply, which is what
// makes replayed state byte-identical to the pre-crash store.
func (u *Updater) Replay(updates []Update) ([]Result, Summary, error) {
	cfg := u.cfg
	cfg.TopK = 0
	return u.apply(updates, nil, &cfg)
}

// Checkpoint quiesces the stream and hands fn a consistent cut: the
// live keys in first-seen order and each key's committed entity
// instance, with no batch in flight anywhere (the apply gate is held
// exclusively, so every sequence number the persister assigned is
// fully absorbed). Producers block only while fn runs; fn must not
// call Apply or it deadlocks.
func (u *Updater) Checkpoint(fn func(keys []string, entities []*model.EntityInstance) error) error {
	u.applyGate.Lock()
	defer u.applyGate.Unlock()
	keys := u.Keys()
	entities := make([]*model.EntityInstance, len(keys))
	for i, key := range keys {
		e := u.lookup(key)
		if e == nil {
			return fmt.Errorf("pipeline: checkpoint: registered key %q has no live entity", key)
		}
		g := e.g.Load()
		if g == nil {
			return fmt.Errorf("pipeline: checkpoint: registered key %q has no committed version", key)
		}
		entities[i] = g.Instance()
	}
	return fn(keys, entities)
}

// apply is the core behind Apply and Replay; p is the persister to log
// through (nil for memory-only and for replay) and cfg the effective
// configuration.
func (u *Updater) apply(updates []Update, p Persister, cfg *Config) ([]Result, Summary, error) {
	start := time.Now()
	var sum Summary
	if len(updates) == 0 {
		sum.Elapsed = time.Since(start)
		return nil, sum, nil
	}
	for i, up := range updates {
		if up.Key == "" {
			return nil, sum, fmt.Errorf("pipeline: update %d has an empty key; no update was applied", i)
		}
	}
	u.applyGate.RLock()
	defer u.applyGate.RUnlock()
	if p != nil {
		// Log-then-apply: the batch must be durable (per the sync
		// policy) before any entity changes. The persister validates
		// round-trippability — a batch it rejects was applied nowhere.
		if _, err := p.LogApply(updates); err != nil {
			return nil, sum, fmt.Errorf("pipeline: persisting batch: %w; no update was applied", err)
		}
	}
	merged := make(map[string][]*model.Tuple, len(updates))
	var order []string
	for _, up := range updates {
		if _, ok := merged[up.Key]; !ok {
			order = append(order, up.Key)
		}
		merged[up.Key] = append(merged[up.Key], up.Tuples...)
	}

	results := make([]Result, len(order))
	created := make([]bool, len(order))
	err := Each(cfg.workers(), len(order), func(i int) error {
		entityStart := time.Now()
		defer func() { results[i].Elapsed = time.Since(entityStart) }()
		results[i].Index = i
		created[i] = u.applyOne(order[i], merged[order[i]], &results[i], cfg)
		return nil
	})
	if err != nil {
		return nil, sum, err
	}
	// Register this batch's new entities in batch order, so key
	// enumeration stays deterministic for sequential callers. Creation
	// succeeds at most once per key ever (the creating goroutine held
	// the entity lock and saw no committed version), so no record can
	// be registered twice.
	u.keyMu.Lock()
	for i, key := range order {
		if created[i] {
			u.keys = append(u.keys, key)
		}
	}
	u.keyMu.Unlock()
	for i := range results {
		sum.add(&results[i], u.shared.Schema().Arity())
	}
	sum.Elapsed = time.Since(start)
	return results, sum, nil
}

// tupleBound enforces cfg.MaxEntityTuples: it fails an absorption
// whose committed size plus delta would exceed the bound. The check
// depends only on those two sizes, so a logged batch re-fails (or
// re-succeeds) identically on recovery replay.
func tupleBound(have, add int, cfg *Config) error {
	if max := cfg.MaxEntityTuples; max > 0 && have+add > max {
		return fmt.Errorf("absorbing %d tuples onto %d would exceed the %d-tuple entity bound", add, have, max)
	}
	return nil
}

// applyOne extends (or creates) one keyed entity and re-deduces it,
// under that entity's lock alone; it reports whether this call
// performed the entity's successful creation.
func (u *Updater) applyOne(key string, tuples []*model.Tuple, out *Result, cfg *Config) (createdNow bool) {
	out.Key = key
	var ent *liveEntity
	for {
		ent = u.entity(key)
		ent.mu.Lock()
		if u.lookup(key) == ent {
			break
		}
		// A failed creator withdrew this record between our fetch and
		// lock; retry on the current one, else our commit would land
		// on an orphan no reader can reach.
		ent.mu.Unlock()
	}
	defer ent.mu.Unlock()
	g := ent.g.Load()
	live := g != nil
	var next *chase.Grounding
	var err error
	if live {
		// Report the version the entity still answers from if the
		// extend below fails; success overwrites it in runGrounding.
		out.Version = g.Version()
		out.Instance = g.Instance()
		if err = tupleBound(g.Instance().Size(), len(tuples), cfg); err == nil {
			next, err = g.Extend(tuples...)
		}
	} else {
		out.Version = -1 // no committed version exists yet
		// Set Instance up front so even a failed creation honours
		// the Result contract (callers format r.Instance).
		empty := model.NewEntityInstance(u.shared.Schema())
		out.Instance = empty
		if err = tupleBound(0, len(tuples), cfg); err == nil {
			var ie *model.EntityInstance
			ie, err = empty.Extend(tuples...)
			if err == nil {
				out.Instance = ie
				next, err = u.shared.NewGrounding(ie, cfg.Options)
			}
		}
	}
	if err != nil {
		out.Err = fmt.Errorf("pipeline: entity %q: %w", key, err)
		if !live {
			// Withdraw the routing entry a failed creation would
			// otherwise leak: a stream of bad tuples under many
			// distinct keys must not grow the shard maps forever.
			// Same-key waiters blocked on ent.mu re-check currency and
			// retry on a fresh record.
			s := u.shardFor(key)
			s.mu.Lock()
			if s.entities[key] == ent {
				delete(s.entities, key)
			}
			s.mu.Unlock()
		}
		return false // failed entity keeps its previous version
	}
	// Commit before deducing: the evidence is absorbed even if the
	// candidate search below fails, exactly as documented on Apply.
	ent.g.Store(next)
	if u.testHookMidApply != nil {
		u.testHookMidApply(key)
	}
	u.deduceMemo(ent, next, out, cfg)
	return !live
}

// Query re-deduces one keyed entity on its latest committed grounding
// version, overriding the stream's candidate search with topK and algo
// (topK < 0 keeps the stream's configured TopK; topK == 0 disables the
// search). It takes no entity lock — grounding versions are immutable
// and deduction runs on pooled engines — so queries never block or get
// blocked by in-flight batches; a query racing an Apply on the same
// key answers from whichever version is committed when it starts. The
// second return is false for an unknown key.
//
// A query whose (committed version, effective k, algorithm) matches
// the entity's last computed answer returns the settled-target memo —
// byte-identical to recomputing, since the kernel is deterministic on
// an immutable version — unless Config.DisableSettledCache is set.
// Apply publishing a new version structurally invalidates the memo
// (the hit check is pointer equality on the committed grounding).
func (u *Updater) Query(key string, topK int, algo Algorithm) (Result, bool) {
	var out Result
	e := u.lookup(key)
	if e == nil {
		return out, false
	}
	g := e.g.Load()
	if g == nil {
		return out, false
	}
	start := time.Now()
	cfg := u.cfg
	if topK >= 0 {
		cfg.TopK = topK
	}
	cfg.Algo = algo
	out.Key = key
	u.deduceMemo(e, g, &out, &cfg)
	out.Elapsed = time.Since(start)
	return out, true
}

// Snapshot re-deduces every live entity (concurrently, per cfg) and
// returns one Result per entity in first-seen key order, with keys
// aligned by index — the "where does the whole stream stand" view a
// caller needs after a run of deltas. Runs are cheap: each entity's
// grounding already holds its chased base state. Snapshot holds no
// locks across deduction either: each entity is re-deduced on the
// version committed when Snapshot reaches it, so concurrent producers
// are not blocked (and a snapshot racing them is a per-entity
// point-in-time view, not a cross-entity cut).
func (u *Updater) Snapshot() ([]string, []Result, Summary, error) {
	start := time.Now()
	var sum Summary
	keys := u.Keys()
	results := make([]Result, len(keys))
	err := Each(u.cfg.workers(), len(keys), func(i int) error {
		entityStart := time.Now()
		results[i].Index = i
		results[i].Key = keys[i]
		e := u.lookup(keys[i])
		u.deduceMemo(e, e.g.Load(), &results[i], &u.cfg)
		results[i].Elapsed = time.Since(entityStart)
		return nil
	})
	if err != nil {
		return nil, nil, sum, err
	}
	for i := range results {
		sum.add(&results[i], u.shared.Schema().Arity())
	}
	sum.Elapsed = time.Since(start)
	return keys, results, sum, nil
}
