package pipeline

import (
	"testing"

	"repro/internal/model"
)

// TestPerEntityElapsed checks that every pipeline Result — batch,
// update stream and snapshot — carries a positive per-entity wall-clock
// time, and that it is not just a copy of the batch total.
func TestPerEntityElapsed(t *testing.T) {
	ds := testDataset(t, 12)
	ents := instances(ds)
	cfg := Config{Master: ds.Master, Rules: ds.Rules, Workers: 4, TopK: 2}

	results, sum, err := Run(ents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i, r := range results {
		if r.Elapsed <= 0 {
			t.Fatalf("batch entity %d has Elapsed %v", i, r.Elapsed)
		}
		total += int64(r.Elapsed)
	}
	if sum.Elapsed <= 0 {
		t.Fatal("summary lost its batch Elapsed")
	}

	u, err := NewUpdater(ents[0].Schema(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ups []Update
	for i, ie := range ents[:4] {
		ups = append(ups, Update{Key: string(rune('a' + i)), Tuples: ie.Tuples()})
	}
	ures, _, err := u.Apply(ups)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ures {
		if r.Elapsed <= 0 {
			t.Fatalf("update entity %d has Elapsed %v", i, r.Elapsed)
		}
	}
	// A failed absorption still reports how long it took.
	bad := model.MustTuple(model.MustSchema("other", "z"), model.NullValue())
	fres, _, err := u.Apply([]Update{{Key: "a", Tuples: []*model.Tuple{bad}}})
	if err != nil {
		t.Fatal(err)
	}
	if fres[0].Err == nil {
		t.Fatal("wrong-schema tuple absorbed")
	}
	if fres[0].Elapsed <= 0 {
		t.Fatal("failed entity lost its Elapsed")
	}
	_, sres, _, err := u.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range sres {
		if r.Elapsed <= 0 {
			t.Fatalf("snapshot entity %d has Elapsed %v", i, r.Elapsed)
		}
	}
}
