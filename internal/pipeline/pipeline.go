// Package pipeline runs the paper's per-entity deduce → top-k loop over
// a whole relation of entities at once: the multi-entity workload every
// realistic deployment has, where core.Session is the single-entity
// kernel. Entities are sharded across a worker pool; each worker reuses
// the instance-independent groundwork (validated rules, compiled
// form-(2) index — chase.Shared) that all entities of one schema have in
// common, grounds its entity, deduces the target (IsCR, Fig. 4) and,
// when the target stays incomplete, searches top-k candidate targets
// (Section 6) on pooled allocation-free checkers.
//
// Results stream to the caller in entity order regardless of worker
// scheduling, and every per-entity field is byte-identical to what a
// sequential core.Session run over the same entity produces — the
// equivalence is enforced by pipeline_test.go under -race. A failing
// entity (grounding error, candidate-search error) reports through its
// Result.Err and never aborts the batch; Summary tallies outcomes and
// aggregate accuracy/coverage statistics across the relation.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chase"
	"repro/internal/framework"
	"repro/internal/model"
	"repro/internal/rule"
	"repro/internal/topk"
)

// Algorithm selects a top-k candidate algorithm (re-exported from
// package framework so pipeline callers need not import it).
type Algorithm = framework.Algorithm

// Top-k algorithm choices.
const (
	AlgoTopKCT     = framework.AlgoTopKCT
	AlgoRankJoinCT = framework.AlgoRankJoinCT
	AlgoTopKCTh    = framework.AlgoTopKCTh
)

// ParseAlgorithm maps an algorithm's wire name — what cmd/relacc flags
// and the relaccd query parameters use — to its Algorithm value:
// "topkct", "rankjoin" or "topkcth".
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "topkct":
		return AlgoTopKCT, nil
	case "rankjoin":
		return AlgoRankJoinCT, nil
	case "topkcth":
		return AlgoTopKCTh, nil
	}
	return 0, fmt.Errorf("pipeline: unknown algorithm %q", name)
}

// Config tunes one batch run. The zero value deduces only (no candidate
// search) on GOMAXPROCS workers.
type Config struct {
	// Master is the optional master relation Im shared by all entities.
	Master *model.MasterRelation
	// Rules is the accuracy rule set Σ shared by all entities.
	Rules *rule.Set
	// Workers bounds how many entities are processed concurrently;
	// <= 0 means GOMAXPROCS. Per-entity output does not depend on it.
	Workers int
	// TopK requests a top-k candidate search for every entity whose
	// deduced target is incomplete; 0 disables candidate search.
	// It overrides Pref.K.
	TopK int
	// Algo selects the candidate algorithm (default AlgoTopKCT).
	Algo Algorithm
	// Pref refines the preference model (weights, domains, check
	// budget). Pref.Parallel is ignored: the pipeline parallelises
	// across entities, not within one entity's search.
	Pref topk.Preference
	// Options configures the chase (e.g. DisableAxioms for bare-rule
	// semantics, DisableVerdictCache to turn off check memoisation).
	Options chase.Options
	// DisableSettledCache turns off the update stream's settled-target
	// memo: with it set, every Query/Snapshot/Apply re-deduction runs
	// the full deduce → search, even when the entity's committed
	// grounding version and the (k, algorithm) pair match the last
	// computed answer. The memo is semantically invisible — a hit
	// returns the byte-identical result a recomputation would produce
	// (enforced by updater_cache_test.go) — so disabling it is for
	// measurement and equivalence testing. Batch runs (Run/Stream)
	// ignore it: they have no live entities to memoise on.
	DisableSettledCache bool
	// MaxEntityTuples bounds how many evidence tuples one live entity
	// may accumulate on the update stream; <= 0 means unbounded. A
	// delta that would push an entity past the bound fails that
	// entity's ABSORPTION deterministically — the entity keeps its
	// previous grounding version, exactly like a wrong-schema tuple —
	// so a durable log replays the failure identically (the bound
	// depends only on committed size + delta size, never on timing).
	// Batch runs (Run/Stream) ignore it: their instances arrive fully
	// formed.
	MaxEntityTuples int
}

func (cfg *Config) workers() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is the outcome for one entity, in input order.
type Result struct {
	// Index is the entity's position in the input slice.
	Index int
	// Key is the entity's routing key when the result came from an
	// update stream (Apply, Query, Snapshot); empty for batch runs,
	// whose entities are identified by Index alone.
	Key string
	// Version is the grounding version the result was deduced on: 0
	// for a batch entity or a just-created stream entity, k after k
	// absorbed deltas. It is the version at deduction time — under
	// concurrent Apply calls the live entity may have moved on by the
	// time the caller reads it. When Err reports a failed ABSORPTION
	// no deduction ran: Version then carries the version the entity
	// kept (its pre-delta version, or -1 when the failure was the
	// entity's creation and no version exists).
	Version int
	// Instance is the entity instance the result describes.
	Instance *model.EntityInstance
	// Err reports a per-entity failure; the batch continues with the
	// other entities. On a grounding error Deduction is nil; on a
	// candidate-search error Deduction still carries the (incomplete)
	// deduction outcome the search started from, and Candidates/Stats
	// carry whatever the aborted search verified before failing (the
	// partial candidates of a budget abort; empty for errors that
	// stop a search before it checks anything).
	Err error
	// Deduction is the chase outcome: Church-Rosser verdict, deduced
	// target and terminal accuracy orders.
	Deduction *chase.Result
	// Candidates holds the top-k candidate targets when the deduced
	// target was incomplete and Config.TopK > 0.
	Candidates []topk.Candidate
	// Stats reports the candidate-search work (zero when no search ran).
	Stats topk.Stats
	// Elapsed is the wall-clock time this entity took: grounding (or
	// extending), deduction and candidate search. Summary.Elapsed is
	// the whole batch; per-entity times expose the skew a batch hides
	// (one adversarial entity dominating an otherwise fast relation).
	Elapsed time.Duration
}

// Status classifies the result for reporting.
func (r *Result) Status() string {
	switch {
	case r.Err != nil:
		return "error"
	case !r.Deduction.CR:
		return "not-church-rosser"
	case r.Deduction.Target.Complete():
		return "complete"
	case len(r.Candidates) > 0:
		return "candidates"
	default:
		return "incomplete"
	}
}

// Summary aggregates a batch: outcome counts plus accuracy/coverage
// statistics over the whole relation.
type Summary struct {
	// Entities is the number of entities processed.
	Entities int
	// Errors counts entities that failed with Result.Err.
	Errors int
	// NotCR counts entities whose specification was not Church-Rosser.
	NotCR int
	// Complete counts entities whose target was deduced completely.
	Complete int
	// WithCandidates counts incomplete entities for which the top-k
	// search returned at least one verified candidate.
	WithCandidates int
	// Incomplete counts entities left incomplete with no candidates
	// (search disabled, exhausted or fruitless).
	Incomplete int
	// AttrsDeduced / AttrsTotal measure attribute coverage: non-null
	// target attributes over all attributes of Church-Rosser entities.
	AttrsDeduced int
	AttrsTotal   int
	// Checks sums the chase-based candidate checks spent by the top-k
	// searches.
	Checks int
	// Elapsed is the wall-clock time of the batch.
	Elapsed time.Duration
}

// Coverage is AttrsDeduced/AttrsTotal, the fraction of attributes the
// chase decided across the relation (0 when nothing was processed).
func (s *Summary) Coverage() float64 {
	if s.AttrsTotal == 0 {
		return 0
	}
	return float64(s.AttrsDeduced) / float64(s.AttrsTotal)
}

// String renders a one-paragraph report.
func (s *Summary) String() string {
	return fmt.Sprintf(
		"%d entities in %s: %d complete, %d with candidates, %d incomplete, %d not-CR, %d errors; attribute coverage %d/%d (%.0f%%), %d candidate checks",
		s.Entities, s.Elapsed.Round(time.Millisecond), s.Complete, s.WithCandidates,
		s.Incomplete, s.NotCR, s.Errors, s.AttrsDeduced, s.AttrsTotal, 100*s.Coverage(), s.Checks)
}

func (s *Summary) add(r *Result, arity int) {
	s.Entities++
	switch {
	case r.Err != nil:
		s.Errors++
		return
	case !r.Deduction.CR:
		s.NotCR++
		return
	}
	s.AttrsTotal += arity
	s.AttrsDeduced += arity - len(r.Deduction.Target.NullAttrs())
	s.Checks += r.Stats.Checks
	switch {
	case r.Deduction.Target.Complete():
		s.Complete++
	case len(r.Candidates) > 0:
		s.WithCandidates++
	default:
		s.Incomplete++
	}
}

// Run processes every entity and returns the results in input order
// plus the batch summary. All entities must share the first entity's
// schema (pointer identity); rule validation happens once, up front.
func Run(entities []*model.EntityInstance, cfg Config) ([]Result, Summary, error) {
	results := make([]Result, 0, len(entities))
	sum, err := Stream(entities, cfg, func(r Result) error {
		results = append(results, r)
		return nil
	})
	return results, sum, err
}

// Stream is Run with a sink: per-entity results are delivered to sink
// in input order as soon as they (and all their predecessors) finish,
// so a caller can report progress or persist verdicts while later
// entities are still being checked. sink runs on the calling goroutine;
// returning an error stops the batch early and is returned from Stream.
func Stream(entities []*model.EntityInstance, cfg Config, sink func(Result) error) (Summary, error) {
	start := time.Now()
	var sum Summary
	if len(entities) == 0 {
		sum.Elapsed = time.Since(start)
		return sum, nil
	}
	shared, err := chase.NewShared(entities[0].Schema(), cfg.Master, cfg.Rules)
	if err != nil {
		return sum, err
	}
	return streamShared(shared, entities, cfg, sink, start)
}

// RunShared is Run on a prebuilt schema-level groundwork (validated
// rules + compiled form-(2) index): repeated batches over one schema
// skip the per-call rule re-validation Stream performs. cfg.Master and
// cfg.Rules are ignored in favour of the groundwork's own.
func RunShared(shared *chase.Shared, entities []*model.EntityInstance, cfg Config) ([]Result, Summary, error) {
	results := make([]Result, 0, len(entities))
	sum, err := StreamShared(shared, entities, cfg, func(r Result) error {
		results = append(results, r)
		return nil
	})
	return results, sum, err
}

// StreamShared is Stream on a prebuilt schema-level groundwork; see
// RunShared.
func StreamShared(shared *chase.Shared, entities []*model.EntityInstance, cfg Config, sink func(Result) error) (Summary, error) {
	start := time.Now()
	var sum Summary
	if len(entities) == 0 {
		sum.Elapsed = time.Since(start)
		return sum, nil
	}
	return streamShared(shared, entities, cfg, sink, start)
}

// streamShared is the worker-pool core behind Stream and StreamShared.
func streamShared(shared *chase.Shared, entities []*model.EntityInstance, cfg Config, sink func(Result) error, start time.Time) (Summary, error) {
	var sum Summary
	schema := shared.Schema()
	for i, ie := range entities {
		if ie.Schema() != schema {
			return sum, fmt.Errorf("pipeline: entity %d uses schema %s, batch uses %s",
				i, ie.Schema().Name(), schema.Name())
		}
	}

	n := len(entities)
	w := cfg.workers()
	if w > n {
		w = n
	}
	results := make([]Result, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	// Backpressure: workers must hold a token to claim an entity, and
	// the delivery loop returns one per delivered result, so at most
	// `window` results ever sit completed-but-undelivered. Without
	// this, one slow early entity would let the other workers race
	// ahead and buffer the whole batch in memory.
	window := 2 * w
	if window > n {
		window = n
	}
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := <-tokens; !ok {
					return // closed: early stop
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i] = runEntity(i, entities[i], shared, &cfg)
				close(done[i])
			}
		}()
	}

	var sinkErr error
	for i := 0; i < n; i++ {
		<-done[i]
		r := results[i]
		results[i] = Result{} // delivered; free it
		sum.add(&r, schema.Arity())
		if err := sink(r); err != nil {
			sinkErr = err
			break
		}
		tokens <- struct{}{}
	}
	// Retire the workers before returning; on early stop the in-flight
	// entities finish but are not delivered.
	close(tokens)
	wg.Wait()
	sum.Elapsed = time.Since(start)
	return sum, sinkErr
}

// runEntity is the per-entity kernel: ground, deduce, search.
func runEntity(i int, ie *model.EntityInstance, shared *chase.Shared, cfg *Config) Result {
	start := time.Now()
	out := Result{Index: i, Instance: ie}
	g, err := shared.NewGrounding(ie, cfg.Options)
	if err != nil {
		out.Err = fmt.Errorf("pipeline: entity %d: %w", i, err)
		out.Elapsed = time.Since(start)
		return out
	}
	runGrounding(&out, g, cfg)
	out.Elapsed = time.Since(start)
	return out
}

// runGrounding deduces (and, per cfg, searches candidates) on an
// existing grounding version; shared by the batch kernel and the update
// stream, so a re-deduction after an evidence delta reports exactly
// like a fresh batch entity.
func runGrounding(out *Result, g *chase.Grounding, cfg *Config) {
	out.Instance = g.Instance()
	out.Version = g.Version()
	out.Deduction = g.Run(nil)
	if !out.Deduction.CR || out.Deduction.Target.Complete() || cfg.TopK <= 0 {
		return
	}
	pref := cfg.Pref
	pref.K = cfg.TopK
	pref.Parallel = 0
	var cands []topk.Candidate
	var stats topk.Stats
	var err error
	switch cfg.Algo {
	case AlgoRankJoinCT:
		cands, stats, err = topk.RankJoinCT(g, out.Deduction.Target, pref)
	case AlgoTopKCTh:
		cands, stats, err = topk.TopKCTh(g, out.Deduction.Target, pref)
	default:
		cands, stats, err = topk.TopKCT(g, out.Deduction.Target, pref)
	}
	// Keep the partial candidates and Stats an aborted search returns
	// (RankJoinCT's budget abort verifies candidates before it gives
	// up) — the serving layer degrades to partials, it does not
	// swallow them.
	out.Candidates = cands
	out.Stats = stats
	if err != nil {
		// Label stream results by key — "entity 0" would be all a
		// server operator ever saw of Query failures, whose Index is
		// meaningless. Like the extend-phase errors, this makes the
		// Err STRING of keyed results differ from a fresh batch's
		// index-labelled one; the equivalence suites compare keyed
		// streams against batches only where no search error occurs.
		if out.Key != "" {
			out.Err = fmt.Errorf("pipeline: entity %q: %w", out.Key, err)
		} else {
			out.Err = fmt.Errorf("pipeline: entity %d: %w", out.Index, err)
		}
	}
}

// Each runs f(i) for every i in [0, n) across w workers (w <= 0 means
// GOMAXPROCS); it is the generic sharded loop underneath the pipeline,
// exported for callers — the bench experiment drivers — whose per-entity
// work does not fit the deduce → top-k shape. Iterations must be
// independent; deterministic output is obtained by writing into
// index-addressed slices captured by f. The lowest-index error is
// returned, matching what a sequential loop would have reported.
func Each(w, n int, f func(i int) error) error {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
