package pipeline

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fpResult renders everything a memoised answer promises to preserve —
// version, CR verdict, deduced target, candidate list with scores and
// order, search stats, error — so string equality means the settled
// memo is invisible.
func fpResult(r Result) string {
	out := fmt.Sprintf("v=%d", r.Version)
	if r.Err != nil {
		return out + " err=" + r.Err.Error()
	}
	out += fmt.Sprintf(" cr=%v", r.Deduction.CR)
	if r.Deduction.CR {
		out += fmt.Sprintf(" target=%s steps=%d", r.Deduction.Target.Key(), r.Deduction.Steps)
	}
	for _, c := range r.Candidates {
		out += fmt.Sprintf(" cand=%s@%.6f", c.Tuple.Key(), c.Score)
	}
	out += fmt.Sprintf(" checks=%d pops=%d gen=%d", r.Stats.Checks, r.Stats.Pops, r.Stats.Generated)
	return out
}

// TestSettledMemoEquivalence: repeated queries with a matching
// (version, k, algo) answer from the memo, byte-identically to both
// the cold computation and a memo-disabled twin updater fed the same
// stream; a different k or algorithm recomputes (and re-memoises)
// correctly.
func TestSettledMemoEquivalence(t *testing.T) {
	ds := testDataset(t, 2)
	schema := ds.Entities[0].Instance.Schema()
	cfg := Config{Master: ds.Master, Rules: ds.Rules, TopK: 2}
	u, err := NewUpdater(schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	off := cfg
	off.DisableSettledCache = true
	plain, err := NewUpdater(schema, off)
	if err != nil {
		t.Fatal(err)
	}
	ups := []Update{
		{Key: "a", Tuples: ds.Entities[0].Instance.Tuples()},
		{Key: "b", Tuples: ds.Entities[1].Instance.Tuples()},
	}
	if _, _, err := u.Apply(ups); err != nil {
		t.Fatal(err)
	}
	if _, _, err := plain.Apply(ups); err != nil {
		t.Fatal(err)
	}

	for _, key := range []string{"a", "b"} {
		for _, probe := range []struct {
			k    int
			algo Algorithm
		}{
			{2, AlgoTopKCT}, // matches the Apply-time (k, algo): warmed by applyOne
			{3, AlgoTopKCT},
			{2, AlgoRankJoinCT},
			{2, AlgoTopKCTh},
		} {
			pr, ok := plain.Query(key, probe.k, probe.algo)
			if !ok {
				t.Fatalf("plain.Query(%s) unknown", key)
			}
			want := fpResult(pr)
			cold, ok := u.Query(key, probe.k, probe.algo)
			if !ok {
				t.Fatalf("Query(%s) unknown", key)
			}
			if got := fpResult(cold); got != want {
				t.Fatalf("%s k=%d algo=%d cold:\nmemo:  %s\nplain: %s", key, probe.k, probe.algo, got, want)
			}
			warm, _ := u.Query(key, probe.k, probe.algo)
			if got := fpResult(warm); got != want {
				t.Fatalf("%s k=%d algo=%d warm:\nmemo:  %s\nplain: %s", key, probe.k, probe.algo, got, want)
			}
		}
	}
	cs := u.CacheStats()
	if cs.SettledHits == 0 {
		t.Fatalf("repeated queries recorded no settled hit: %+v", cs)
	}
	if pcs := plain.CacheStats(); pcs.SettledHits != 0 || pcs.SettledMisses != 0 {
		t.Fatalf("disabled settled cache recorded activity: %+v", pcs)
	}
	// The memoising updater's Snapshot shares the memo too, and stays
	// equal to the plain one's.
	_, rs, _, err := u.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, prs, _, err := plain.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if fpResult(rs[i]) != fpResult(prs[i]) {
			t.Fatalf("snapshot %d diverged:\nmemo:  %s\nplain: %s", i, fpResult(rs[i]), fpResult(prs[i]))
		}
	}
}

// TestSettledMemoInvalidatedByApply: publishing a new grounding
// version structurally invalidates the memo — the next query
// recomputes on (and answers for) the new version.
func TestSettledMemoInvalidatedByApply(t *testing.T) {
	ds := testDataset(t, 1)
	tuples := ds.Entities[0].Instance.Tuples()
	if len(tuples) < 2 {
		t.Skip("generated entity too small")
	}
	schema := ds.Entities[0].Instance.Schema()
	u, err := NewUpdater(schema, Config{Master: ds.Master, Rules: ds.Rules, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Apply([]Update{{Key: "e", Tuples: tuples[:1]}}); err != nil {
		t.Fatal(err)
	}
	r0, _ := u.Query("e", -1, AlgoTopKCT)
	r0again, _ := u.Query("e", -1, AlgoTopKCT)
	if fpResult(r0) != fpResult(r0again) || r0.Version != 0 {
		t.Fatalf("v0 queries diverged: %s vs %s", fpResult(r0), fpResult(r0again))
	}
	if _, _, err := u.Apply([]Update{{Key: "e", Tuples: tuples[1:2]}}); err != nil {
		t.Fatal(err)
	}
	r1, _ := u.Query("e", -1, AlgoTopKCT)
	if r1.Version != 1 {
		t.Fatalf("post-Apply query answered version %d, want 1 (memo served stale version?)", r1.Version)
	}
	if r1.Instance.Size() != 2 {
		t.Fatalf("post-Apply query saw %d tuples, want 2", r1.Instance.Size())
	}
}

// TestSettledMemoNeverServesSupersededVersion is the staleness race of
// ISSUE 7, hook-frozen like TestUpdaterReadersDuringDeduction: while
// an Apply batch is frozen AFTER committing the new grounding version
// but BEFORE its re-deduction has memoised anything, a concurrent
// Query on the same key must answer from the NEW committed version —
// the old version's memo (still present) must be skipped, not served.
func TestSettledMemoNeverServesSupersededVersion(t *testing.T) {
	ds := testDataset(t, 1)
	tuples := ds.Entities[0].Instance.Tuples()
	if len(tuples) < 2 {
		t.Skip("generated entity too small")
	}
	schema := ds.Entities[0].Instance.Schema()
	u, err := NewUpdater(schema, Config{Master: ds.Master, Rules: ds.Rules, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Apply([]Update{{Key: "e", Tuples: tuples[:1]}}); err != nil {
		t.Fatal(err)
	}
	// Warm the memo on version 0.
	if r, _ := u.Query("e", -1, AlgoTopKCT); r.Version != 0 {
		t.Fatalf("warmup answered version %d", r.Version)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	u.testHookMidApply = func(string) {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	applied := make(chan error, 1)
	go func() {
		_, _, err := u.Apply([]Update{{Key: "e", Tuples: tuples[1:2]}})
		applied <- err
	}()
	<-entered // version 1 is committed; its re-deduction is frozen

	qdone := make(chan Result, 1)
	go func() {
		r, _ := u.Query("e", -1, AlgoTopKCT)
		qdone <- r
	}()
	select {
	case r := <-qdone:
		if r.Version != 1 {
			t.Fatalf("query during frozen Apply answered version %d — a superseded memo", r.Version)
		}
		if r.Instance.Size() != 2 {
			t.Fatalf("query during frozen Apply saw %d tuples, want 2", r.Instance.Size())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query blocked behind a mid-deduction batch")
	}
	close(release)
	if err := <-applied; err != nil {
		t.Fatal(err)
	}
	// After the batch lands, hits resume on the current version.
	before := u.CacheStats().SettledHits
	if r, _ := u.Query("e", -1, AlgoTopKCT); r.Version != 1 {
		t.Fatalf("settled query answered version %d", r.Version)
	}
	if after := u.CacheStats().SettledHits; after <= before {
		t.Fatalf("post-freeze query did not hit the refreshed memo (%d -> %d)", before, after)
	}
}

// TestSettledMemoConcurrentApplyQuery hammers one key with concurrent
// single-tuple Applies and memoised Queries: every query must observe
// a monotonically non-decreasing version with an instance size
// matching it — a stale memo would show as a version step backwards.
// Runs under -race in CI.
func TestSettledMemoConcurrentApplyQuery(t *testing.T) {
	ds := testDataset(t, 1)
	tuples := ds.Entities[0].Instance.Tuples()
	if len(tuples) < 4 {
		t.Skip("generated entity too small")
	}
	schema := ds.Entities[0].Instance.Schema()
	u, err := NewUpdater(schema, Config{Master: ds.Master, Rules: ds.Rules, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Apply([]Update{{Key: "e", Tuples: tuples[:1]}}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var qerr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := -1
		for {
			select {
			case <-stop:
				return
			default:
			}
			r, ok := u.Query("e", -1, AlgoTopKCT)
			if !ok {
				qerr = fmt.Errorf("key vanished")
				return
			}
			if r.Version < last {
				qerr = fmt.Errorf("version went backwards: %d after %d", r.Version, last)
				return
			}
			last = r.Version
			if r.Instance.Size() != r.Version+1 {
				qerr = fmt.Errorf("version %d with %d tuples", r.Version, r.Instance.Size())
				return
			}
		}
	}()
	for i := 1; i < len(tuples); i++ {
		if _, _, err := u.Apply([]Update{{Key: "e", Tuples: tuples[i : i+1]}}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if qerr != nil {
		t.Fatal(qerr)
	}
}
