package pipeline

import (
	"errors"
	"io"
	"testing"

	"repro/internal/model"
	"repro/internal/topk"
)

// sliceEntitySource replays a fixed entity slice as an EntitySource,
// tracking how far ahead of delivery the pipeline has pulled.
type sliceEntitySource struct {
	ents   []*model.EntityInstance
	i      int
	errAt  int // return errSource instead of entity errAt (-1: never)
	pulled func(n int)
}

var errSource = errors.New("source failed")

func (s *sliceEntitySource) Next() (*model.EntityInstance, error) {
	if s.i == s.errAt {
		return nil, errSource
	}
	if s.i >= len(s.ents) {
		return nil, io.EOF
	}
	e := s.ents[s.i]
	s.i++
	if s.pulled != nil {
		s.pulled(s.i)
	}
	return e, nil
}

// TestRunStreamMatchesRun is the streaming half of the pipeline
// equivalence guarantee: RunStream over a source yields byte-identical
// per-entity results and the same Summary as the materialized Run, for
// any worker count (run under -race in CI).
func TestRunStreamMatchesRun(t *testing.T) {
	ds := testDataset(t, 30)
	ents := instances(ds)
	base := Config{Master: ds.Master, Rules: ds.Rules, TopK: 5,
		Pref: topk.Preference{MaxChecks: 2000}}
	wantResults, wantSum, err := Run(ents, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3, 8} {
		cfg := base
		cfg.Workers = w
		got, sum, err := RunStream(&sliceEntitySource{ents: ents, errAt: -1}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantResults) {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), len(wantResults))
		}
		for i := range got {
			if got[i].Index != i {
				t.Fatalf("workers=%d: result %d has Index %d", w, i, got[i].Index)
			}
			if fingerprint(got[i]) != fingerprint(wantResults[i]) {
				t.Errorf("workers=%d entity %d:\nstream %s\nbatch  %s",
					w, i, fingerprint(got[i]), fingerprint(wantResults[i]))
			}
		}
		sum.Elapsed, wantSum.Elapsed = 0, 0
		if sum != wantSum {
			t.Errorf("workers=%d summary %+v, want %+v", w, sum, wantSum)
		}
	}
}

// TestStreamFromBackpressure pins the bounded-window invariant: the
// source is never pulled more than 2*workers+1 entities ahead of the
// sink, no matter how large the relation is.
func TestStreamFromBackpressure(t *testing.T) {
	ds := testDataset(t, 60)
	ents := instances(ds)
	const workers = 2
	delivered := 0
	maxAhead := 0
	src := &sliceEntitySource{ents: ents, errAt: -1}
	src.pulled = func(n int) {
		if ahead := n - delivered; ahead > maxAhead {
			maxAhead = ahead
		}
	}
	cfg := Config{Master: ds.Master, Rules: ds.Rules, Workers: workers}
	_, err := StreamFrom(src, cfg, func(r Result) error {
		delivered++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != len(ents) {
		t.Fatalf("delivered %d of %d", delivered, len(ents))
	}
	if limit := 2*workers + 1; maxAhead > limit {
		t.Fatalf("source ran %d entities ahead of the sink, window allows %d", maxAhead, limit)
	}
}

func TestStreamFromSinkErrorStopsEarly(t *testing.T) {
	ds := testDataset(t, 20)
	ents := instances(ds)
	stop := errors.New("stop")
	n := 0
	_, err := StreamFrom(&sliceEntitySource{ents: ents, errAt: -1},
		Config{Master: ds.Master, Rules: ds.Rules, Workers: 4},
		func(r Result) error {
			if r.Index != n {
				t.Fatalf("out of order: got %d want %d", r.Index, n)
			}
			n++
			if n == 5 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v", err)
	}
	if n != 5 {
		t.Fatalf("sink ran %d times, want 5", n)
	}
}

func TestStreamFromSourceError(t *testing.T) {
	ds := testDataset(t, 20)
	ents := instances(ds)
	n := 0
	_, err := StreamFrom(&sliceEntitySource{ents: ents, errAt: 10},
		Config{Master: ds.Master, Rules: ds.Rules, Workers: 4},
		func(r Result) error {
			if r.Index != n {
				t.Fatalf("out of order: got %d want %d", r.Index, n)
			}
			n++
			return nil
		})
	if !errors.Is(err, errSource) {
		t.Fatalf("err = %v", err)
	}
	if n > 10 {
		t.Fatalf("delivered %d results past the source error", n)
	}
}

func TestStreamFromSchemaMismatch(t *testing.T) {
	ds := testDataset(t, 3)
	other := testDataset(t, 1)
	ents := instances(ds)
	ents = append(ents, other.Entities[0].Instance)
	_, err := StreamFrom(&sliceEntitySource{ents: ents, errAt: -1},
		Config{Master: ds.Master, Rules: ds.Rules},
		func(Result) error { return nil })
	if err == nil {
		t.Fatal("schema mismatch should fail")
	}
}

func TestStreamFromEmptySource(t *testing.T) {
	sum, err := StreamFrom(&sliceEntitySource{errAt: -1}, Config{},
		func(Result) error { t.Fatal("sink on empty source"); return nil })
	if err != nil || sum.Entities != 0 {
		t.Fatalf("empty source: %v %+v", err, sum)
	}
}
