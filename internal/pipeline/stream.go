package pipeline

// Streaming entry points: the batch pipeline without the batch. An
// EntitySource yields completed entities one at a time (er.EntityStream
// over a csvio.TupleIterator is the canonical chain) and StreamFrom
// feeds them to the same worker pool Run uses, pulling from the source
// only as workers free up — backpressure reaches all the way back to
// the CSV reader, so a relation of any length grounds in memory
// proportional to workers + window, never to row count. Per-entity
// Results and the Summary are byte-identical to the materialized Run
// over the same entities (enforced by the ingest equivalence suite);
// the only field that cannot match is timing.

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/chase"
	"repro/internal/model"
)

// EntitySource is a pull-based stream of completed entity instances;
// Next returns io.EOF after the last one. er.EntityStream satisfies it.
type EntitySource interface {
	Next() (*model.EntityInstance, error)
}

// RunStream drains the source through the worker pool and returns every
// result in source order plus the batch summary. It holds all results —
// use StreamFrom to keep memory bounded end to end.
func RunStream(src EntitySource, cfg Config) ([]Result, Summary, error) {
	var results []Result
	sum, err := StreamFrom(src, cfg, func(r Result) error {
		results = append(results, r)
		return nil
	})
	return results, sum, err
}

// StreamFrom processes entities as the source yields them, delivering
// results to sink in source order. The schema-level groundwork is built
// from the first entity's schema; an empty source is an empty batch.
// sink runs on the calling goroutine; returning an error stops the run
// early and is returned from StreamFrom. A source error likewise stops
// the run: in-flight entities finish but are not delivered.
func StreamFrom(src EntitySource, cfg Config, sink func(Result) error) (Summary, error) {
	start := time.Now()
	var sum Summary
	first, err := src.Next()
	if err == io.EOF {
		sum.Elapsed = time.Since(start)
		return sum, nil
	}
	if err != nil {
		sum.Elapsed = time.Since(start)
		return sum, err
	}
	shared, err := chase.NewShared(first.Schema(), cfg.Master, cfg.Rules)
	if err != nil {
		sum.Elapsed = time.Since(start)
		return sum, err
	}
	return streamFrom(shared, first, src, cfg, sink, start)
}

// StreamFromShared is StreamFrom on a prebuilt schema-level groundwork
// (cfg.Master and cfg.Rules are ignored in favour of the groundwork's
// own), for callers that already hold a chase.Shared — the ingest
// composition does, so the CSV dict and the chase dict are one.
func StreamFromShared(shared *chase.Shared, src EntitySource, cfg Config, sink func(Result) error) (Summary, error) {
	return streamFromShared(shared, src, cfg, sink, time.Now())
}

func streamFromShared(shared *chase.Shared, src EntitySource, cfg Config, sink func(Result) error, start time.Time) (Summary, error) {
	var sum Summary
	first, err := src.Next()
	if err == io.EOF {
		sum.Elapsed = time.Since(start)
		return sum, nil
	}
	if err != nil {
		sum.Elapsed = time.Since(start)
		return sum, err
	}
	return streamFrom(shared, first, src, cfg, sink, start)
}

// job pairs an entity with its source-order index.
type job struct {
	i  int
	ie *model.EntityInstance
}

// streamFrom is the worker-pool core behind the streaming entry points.
// The invariant that bounds memory: issued − delivered ≤ window at all
// times, counting queued jobs, entities being worked, and results not
// yet handed to sink — so neither the jobs channel, the results
// channel, nor the reorder map can grow past the window, and the
// source is only pulled when there is room.
func streamFrom(shared *chase.Shared, first *model.EntityInstance, src EntitySource, cfg Config, sink func(Result) error, start time.Time) (Summary, error) {
	var sum Summary
	schema := shared.Schema()
	w := cfg.workers()
	window := 2 * w

	jobs := make(chan job, window)
	results := make(chan Result, window)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- runEntity(j.i, j.ie, shared, &cfg)
			}
		}()
	}

	issued, delivered := 0, 0
	pending := make(map[int]Result, window)
	closed := false
	stop := func(err error) (Summary, error) {
		if !closed {
			close(jobs)
			closed = true
		}
		// Retire the workers before returning; in-flight entities finish
		// into the buffered results channel (capacity ≥ issued −
		// delivered, so no worker ever blocks) but are not delivered.
		wg.Wait()
		sum.Elapsed = time.Since(start)
		return sum, err
	}
	// deliver drains completed results — blocking for at least one when
	// must is set — and hands them to sink in source order.
	deliver := func(must bool) error {
		for issued > delivered {
			var r Result
			if must {
				r = <-results
				must = false
			} else {
				select {
				case r = <-results:
				default:
					return nil
				}
			}
			pending[r.Index] = r
			for {
				next, ok := pending[delivered]
				if !ok {
					break
				}
				delete(pending, delivered)
				delivered++
				sum.add(&next, schema.Arity())
				if err := sink(next); err != nil {
					return err
				}
			}
		}
		return nil
	}

	ie, srcErr := first, error(nil)
	for {
		if ie != nil {
			if ie.Schema() != schema {
				return stop(fmt.Errorf("pipeline: entity %d uses schema %s, batch uses %s",
					issued, ie.Schema().Name(), schema.Name()))
			}
			for issued-delivered >= window {
				if err := deliver(true); err != nil {
					return stop(err)
				}
			}
			jobs <- job{issued, ie}
			issued++
			if err := deliver(false); err != nil {
				return stop(err)
			}
		}
		ie, srcErr = src.Next()
		if srcErr == io.EOF {
			break
		}
		if srcErr != nil {
			return stop(srcErr)
		}
	}
	close(jobs)
	closed = true
	for issued > delivered {
		if err := deliver(true); err != nil {
			return stop(err)
		}
	}
	wg.Wait()
	sum.Elapsed = time.Since(start)
	return sum, nil
}
