package pipeline

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// TestUpdaterEmptyKeyLeavesBatchUntouched: Apply validates the WHOLE
// batch before merging or mutating anything, so a mixed batch carrying
// one empty key — even as its last element — leaves every entity's
// version (and the key registry) exactly as it was.
func TestUpdaterEmptyKeyLeavesBatchUntouched(t *testing.T) {
	ds := testDataset(t, 2)
	schema := ds.Entities[0].Instance.Schema()
	u, err := NewUpdater(schema, Config{Master: ds.Master, Rules: ds.Rules})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Apply([]Update{
		{Key: "a", Tuples: ds.Entities[0].Instance.Tuples()},
	}); err != nil {
		t.Fatal(err)
	}
	before := u.Version("a")

	_, _, err = u.Apply([]Update{
		{Key: "a", Tuples: ds.Entities[1].Instance.Tuples()[:1]}, // valid, listed first
		{Key: "b", Tuples: ds.Entities[1].Instance.Tuples()},     // valid new key
		{Key: "", Tuples: ds.Entities[1].Instance.Tuples()},      // poison pill, last
	})
	if err == nil {
		t.Fatal("batch with an empty key was accepted")
	}
	if v := u.Version("a"); v != before {
		t.Fatalf("rejected batch advanced entity a: version %d -> %d", before, v)
	}
	if v := u.Version("b"); v != -1 {
		t.Fatalf("rejected batch created entity b (version %d)", v)
	}
	if u.Len() != 1 {
		t.Fatalf("rejected batch changed the registry: %d keys", u.Len())
	}
}

// TestUpdaterFailedCreationLeavesNoRecord: a failed creation must not
// leak a routing entry — a stream of bad tuples under ever-fresh keys
// would otherwise grow the shard maps without bound — and the key must
// stay fully usable for a later, valid creation.
func TestUpdaterFailedCreationLeavesNoRecord(t *testing.T) {
	ds := testDataset(t, 1)
	schema := ds.Entities[0].Instance.Schema()
	u, err := NewUpdater(schema, Config{Master: ds.Master, Rules: ds.Rules})
	if err != nil {
		t.Fatal(err)
	}
	other := model.MustSchema("other", "x")
	for i := 0; i < 3; i++ {
		results, _, err := u.Apply([]Update{
			{Key: "ghost", Tuples: []*model.Tuple{model.MustTuple(other, model.I(int64(i)))}},
		})
		if err != nil || results[0].Err == nil {
			t.Fatalf("attempt %d: err=%v entityErr=%v", i, err, results[0].Err)
		}
	}
	if e := u.lookup("ghost"); e != nil {
		t.Fatal("failed creations left a routing entry behind")
	}
	if u.Len() != 0 || u.Version("ghost") != -1 {
		t.Fatalf("failed creations registered state: len=%d version=%d", u.Len(), u.Version("ghost"))
	}
	// The key is not poisoned: a valid creation still works.
	results, _, err := u.Apply([]Update{
		{Key: "ghost", Tuples: ds.Entities[0].Instance.Tuples()},
	})
	if err != nil || results[0].Err != nil {
		t.Fatalf("valid creation after failures: %v / %v", err, results[0].Err)
	}
	if u.Version("ghost") != 0 || u.Len() != 1 {
		t.Fatalf("recovered key: version=%d len=%d", u.Version("ghost"), u.Len())
	}
}

// TestUpdaterReadersDuringDeduction is the no-global-lock regression
// test: while an Apply batch is frozen mid-deduction (version already
// committed, re-deduction not yet run), Len, Keys, Version, Query and
// Snapshot all complete, and an Apply over a DISJOINT key runs to
// completion — none of them waits on the in-flight batch.
func TestUpdaterReadersDuringDeduction(t *testing.T) {
	ds := testDataset(t, 3)
	schema := ds.Entities[0].Instance.Schema()
	u, err := NewUpdater(schema, Config{Master: ds.Master, Rules: ds.Rules, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Seed two entities so the frozen batch extends a live one.
	if _, _, err := u.Apply([]Update{
		{Key: "frozen", Tuples: ds.Entities[0].Instance.Tuples()[:1]},
		{Key: "settled", Tuples: ds.Entities[1].Instance.Tuples()},
	}); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	u.testHookMidApply = func(key string) {
		if key == "frozen" {
			close(entered)
			<-release
		}
	}
	applied := make(chan error, 1)
	go func() {
		_, _, err := u.Apply([]Update{
			{Key: "frozen", Tuples: ds.Entities[0].Instance.Tuples()[1:]},
		})
		applied <- err
	}()
	<-entered // the batch holds only entity "frozen"'s lock now

	done := make(chan string, 8)
	deadline := time.After(30 * time.Second)
	step := func(name string, f func()) {
		go func() { f(); done <- name }()
		select {
		case got := <-done:
			if got != name {
				t.Fatalf("step ordering: got %q, want %q", got, name)
			}
		case <-deadline:
			t.Fatalf("%s blocked behind a mid-deduction batch", name)
		}
	}
	step("Len", func() {
		if n := u.Len(); n != 2 {
			t.Errorf("Len = %d, want 2", n)
		}
	})
	step("Keys", func() {
		if ks := u.Keys(); len(ks) != 2 || ks[0] != "frozen" || ks[1] != "settled" {
			t.Errorf("Keys = %v", ks)
		}
	})
	step("Version", func() {
		// The delta committed before the freeze point: the version has
		// already advanced even though its re-deduction is in flight.
		if v := u.Version("frozen"); v != 1 {
			t.Errorf("Version(frozen) = %d, want 1", v)
		}
	})
	step("Query", func() {
		if _, ok := u.Query("settled", 0, AlgoTopKCT); !ok {
			t.Error("Query(settled) unknown")
		}
	})
	step("Snapshot", func() {
		if _, _, _, err := u.Snapshot(); err != nil {
			t.Errorf("Snapshot: %v", err)
		}
	})
	// The decisive one: a whole Apply over a disjoint key completes
	// while "frozen" is still mid-deduction.
	step("Apply(disjoint)", func() {
		results, _, err := u.Apply([]Update{
			{Key: "other", Tuples: ds.Entities[2].Instance.Tuples()},
		})
		if err != nil || results[0].Err != nil {
			t.Errorf("disjoint Apply: %v / %v", err, results[0].Err)
		}
	})

	close(release)
	if err := <-applied; err != nil {
		t.Fatal(err)
	}
	if v := u.Version("other"); v != 0 {
		t.Fatalf("disjoint entity missing after the freeze: version %d", v)
	}
}

// TestUpdaterSameKeySerialises: two concurrent Apply calls on ONE key
// serialise per entity — the second waits for the first's deduction,
// extends its committed version, and no delta is lost.
func TestUpdaterSameKeySerialises(t *testing.T) {
	ds := testDataset(t, 1)
	tuples := ds.Entities[0].Instance.Tuples()
	if len(tuples) < 3 {
		t.Skip("generated entity too small")
	}
	schema := ds.Entities[0].Instance.Schema()
	u, err := NewUpdater(schema, Config{Master: ds.Master, Rules: ds.Rules})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Apply([]Update{{Key: "e", Tuples: tuples[:1]}}); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	u.testHookMidApply = func(string) {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	first := make(chan error, 1)
	go func() {
		_, _, err := u.Apply([]Update{{Key: "e", Tuples: tuples[1:2]}})
		first <- err
	}()
	<-entered
	second := make(chan error, 1)
	go func() {
		_, _, err := u.Apply([]Update{{Key: "e", Tuples: tuples[2:]}})
		second <- err
	}()
	select {
	case <-second:
		t.Fatal("same-key Apply overtook an in-flight batch")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}
	if v := u.Version("e"); v != 2 {
		t.Fatalf("version = %d after two serialised deltas, want 2", v)
	}
	r, ok := u.Query("e", 0, AlgoTopKCT)
	if !ok || r.Err != nil {
		t.Fatalf("query after serialised deltas: ok=%v err=%v", ok, r.Err)
	}
	if r.Instance.Size() != len(tuples) {
		t.Fatalf("entity holds %d tuples, want %d (lost delta)", r.Instance.Size(), len(tuples))
	}
}

// TestUpdaterConcurrentDisjointKeys is the race-detector stress test:
// many producers each stream deltas to their own key while readers
// hammer Len/Keys/Version/Query/Snapshot. Afterwards every entity must
// have absorbed every delta and answer identically to a fresh batch.
func TestUpdaterConcurrentDisjointKeys(t *testing.T) {
	const producers = 8
	ds := testDataset(t, producers)
	schema := ds.Entities[0].Instance.Schema()
	cfg := Config{Master: ds.Master, Rules: ds.Rules, TopK: 2}
	u, err := NewUpdater(schema, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", p)
			for _, tp := range ds.Entities[p].Instance.Tuples() {
				if _, _, err := u.Apply([]Update{{Key: key, Tuples: []*model.Tuple{tp}}}); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				u.Len()
				for _, k := range u.Keys() {
					u.Version(k)
				}
				u.Query(fmt.Sprintf("k%d", r), 1, AlgoTopKCT)
				if r == 0 {
					if _, _, _, err := u.Snapshot(); err != nil {
						t.Errorf("snapshot: %v", err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}

	if u.Len() != producers {
		t.Fatalf("stream holds %d entities, want %d", u.Len(), producers)
	}
	keys, snap, _, err := u.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var finals []*model.EntityInstance
	for _, key := range keys {
		var p int
		fmt.Sscanf(key, "k%d", &p)
		finals = append(finals, ds.Entities[p].Instance)
	}
	fresh, _, err := Run(finals, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap {
		if got, want := fingerprint(snap[i]), fingerprint(fresh[i]); got != want {
			t.Fatalf("entity %s after concurrent stream:\nincremental: %s\nfresh batch: %s",
				keys[i], got, want)
		}
	}
}
