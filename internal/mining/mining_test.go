package mining_test

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/gen"
	"repro/internal/mining"
	"repro/internal/rule"
	"repro/internal/stats"
)

func trainTest(t *testing.T) (*gen.Dataset, []mining.Example, []gen.Entity) {
	t.Helper()
	cfg := gen.MedConfig()
	cfg.NumEntities = 400
	ds := gen.Generate(cfg)
	var train []mining.Example
	for _, e := range ds.Entities[:200] {
		train = append(train, mining.Example{Instance: e.Instance, Truth: e.Truth})
	}
	return ds, train, ds.Entities[200:]
}

// TestDiscoverRecoversCurrencyRules: mining the Med training split must
// rediscover the version→currency-attribute rules the generator encodes.
func TestDiscoverRecoversCurrencyRules(t *testing.T) {
	_, train, _ := trainTest(t)
	cands := mining.Discover(train[0].Instance.Schema(), train, mining.Options{})
	if len(cands) == 0 {
		t.Fatalf("nothing discovered")
	}
	found := map[string]bool{}
	for _, c := range cands {
		found[c.Rule.Name()] = true
		if c.Confidence < 0.95 {
			t.Errorf("candidate %s below confidence threshold: %v", c.Rule.Name(), c.Confidence)
		}
	}
	// version orders every currency attribute.
	for _, b := range []string{"c0", "c3", "c8"} {
		if !found["mined-cur-version-"+b] {
			t.Errorf("missing mined rule version→%s; discovered: %v", b, keys(found))
		}
	}
	// The version chain itself.
	if !found["mined-cur-version-version"] {
		t.Errorf("missing version self-rule")
	}
}

// TestDiscoverRejectsNoise: free attributes carry no order signal, so
// no rule may have a free attribute as its consequence. (Rules *keyed*
// on a free attribute can be legitimate: e.g. any premise paired with a
// primary attribute as target is supported because primaries are only
// ever non-null when true — a ϕ7-like data property.)
func TestDiscoverRejectsNoise(t *testing.T) {
	_, train, _ := trainTest(t)
	cands := mining.Discover(train[0].Instance.Schema(), train, mining.Options{})
	for _, c := range cands {
		f1, ok := c.Rule.(*rule.Form1)
		if !ok {
			t.Fatalf("mined rule is not form (1): %T", c.Rule)
		}
		if strings.HasPrefix(f1.RHS, "f") {
			t.Errorf("rule targeting free attribute discovered: %s (conf %.2f, support %d)",
				c.Rule.Name(), c.Confidence, c.Support)
		}
	}
}

// TestMinedRulesGeneralise: chase the held-out entities with ONLY the
// mined rules; the deduced values must be overwhelmingly correct.
func TestMinedRulesGeneralise(t *testing.T) {
	ds, train, holdout := trainTest(t)
	cands := mining.Discover(ds.Schema, train, mining.Options{})
	rs, err := rule.NewSet(ds.Schema, nil, mining.Rules(cands)...)
	if err != nil {
		t.Fatalf("mined rules invalid: %v", err)
	}
	var correct, deduced stats.Counter
	for _, e := range holdout {
		g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Rules: rs}, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := g.Run(nil)
		if !res.CR {
			// Mined rules may rarely conflict on noisy entities; count
			// but do not fail.
			continue
		}
		for a := 0; a < ds.Schema.Arity(); a++ {
			v := res.Target.At(a)
			deduced.Add(!v.IsNull())
			if !v.IsNull() {
				correct.Add(v.Equal(e.Truth.At(a)))
			}
		}
	}
	t.Logf("mined rules: deduced %.2f of attributes, %.2f correct", deduced.Rate(), correct.Rate())
	if deduced.Rate() < 0.3 {
		t.Errorf("mined rules deduce too little: %.2f", deduced.Rate())
	}
	if correct.Rate() < 0.9 {
		t.Errorf("mined rules not precise: %.2f", correct.Rate())
	}
}

// TestThresholds: raising support/confidence shrinks the candidate set.
func TestThresholds(t *testing.T) {
	_, train, _ := trainTest(t)
	schema := train[0].Instance.Schema()
	loose := mining.Discover(schema, train, mining.Options{MinSupport: 5, MinConfidence: 0.6})
	tight := mining.Discover(schema, train, mining.Options{MinSupport: 200, MinConfidence: 0.99})
	if len(tight) > len(loose) {
		t.Errorf("tight thresholds found more rules (%d > %d)", len(tight), len(loose))
	}
	for i := 1; i < len(loose); i++ {
		if loose[i].Confidence > loose[i-1].Confidence {
			t.Errorf("candidates not sorted by confidence")
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
