// Package mining discovers accuracy rules from training data with known
// target tuples — the level-wise profiling approach sketched in the
// Remark of Section 4 of the paper (and deferred there to future work):
// pairs of tuples are grouped into classes by how their attribute values
// relate, and a candidate rule is emitted when the class it defines is
// (almost) contained in the class of pairs whose accuracy order agrees
// with the ground truth.
//
// Two form-(1) rule shapes are searched:
//
//   - currency rules   t1[A] < t2[A] ∧ t2[B] ≠ null → t1 ⪯B t2
//     (A an ordered attribute acting as a version/timestamp; includes
//     the self case B = A)
//   - correlation rules t1 ≺A t2 ∧ t2[B] ≠ null → t1 ⪯B t2
//     (a more accurate A-value comes with a more accurate B-value)
//
// Evidence for "t1 ⪯B t2" on a training pair is judged against the true
// target: the pair supports the rule when t2 carries the true B-value
// and t1 does not, and refutes it when the opposite holds; pairs where
// neither or both match are neutral. A rule is emitted when its support
// and confidence clear the thresholds.
package mining

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/rule"
)

// Example is one training entity: a dirty instance plus its true tuple.
type Example struct {
	Instance *model.EntityInstance
	Truth    *model.Tuple
}

// Options tunes the search.
type Options struct {
	// MinSupport is the minimum number of decisive training pairs;
	// 0 means 20.
	MinSupport int
	// MinConfidence is the minimum fraction of decisive pairs supporting
	// the rule; 0 means 0.95.
	MinConfidence float64
}

// Candidate is a discovered rule with its statistics.
type Candidate struct {
	Rule       rule.Rule
	Support    int     // decisive pairs
	Confidence float64 // supporting / decisive
}

// Discover mines form-(1) accuracy rules from the training examples.
// Candidates are returned in decreasing confidence (ties: decreasing
// support, then rule name).
func Discover(schema *model.Schema, examples []Example, opts Options) []Candidate {
	if opts.MinSupport == 0 {
		opts.MinSupport = 20
	}
	if opts.MinConfidence == 0 {
		opts.MinConfidence = 0.95
	}
	na := schema.Arity()

	// counts[hypothesis] = (supporting, refuting)
	type key struct {
		kind int // 0 = currency, 1 = correlation
		a, b int
	}
	type tally struct{ yes, no int }
	counts := map[key]*tally{}
	bump := func(k key, support bool) {
		t := counts[k]
		if t == nil {
			t = &tally{}
			counts[k] = t
		}
		if support {
			t.yes++
		} else {
			t.no++
		}
	}

	for _, ex := range examples {
		ie := ex.Instance
		n := ie.Size()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				t1, t2 := ie.Tuple(i), ie.Tuple(j)
				for a := 0; a < na; a++ {
					va1, va2 := t1.At(a), t2.At(a)
					truthA := ex.Truth.At(a)
					// Currency premise: t1[A] < t2[A].
					cmpLt := false
					if c, ok := va1.Compare(va2); ok && c < 0 {
						cmpLt = true
					}
					// Correlation premise proxy for t1 ≺A t2: t2 carries
					// the true A-value and t1 carries a different one.
					precA := !truthA.IsNull() && va2.Equal(truthA) &&
						!va1.IsNull() && !va1.Equal(truthA)
					if !cmpLt && !precA {
						continue
					}
					for b := 0; b < na; b++ {
						vb1, vb2 := t1.At(b), t2.At(b)
						truthB := ex.Truth.At(b)
						if truthB.IsNull() || vb2.IsNull() {
							continue // the mined rules are null-guarded
						}
						m1, m2 := vb1.Equal(truthB), vb2.Equal(truthB)
						if m1 == m2 {
							continue // not decisive
						}
						// The rule claims t2's B-value is at least as
						// accurate: supported when t2 matches the truth.
						if cmpLt {
							bump(key{0, a, b}, m2)
						}
						if precA && a != b {
							bump(key{1, a, b}, m2)
						}
					}
				}
			}
		}
	}

	var out []Candidate
	for k, t := range counts {
		decisive := t.yes + t.no
		if decisive < opts.MinSupport {
			continue
		}
		conf := float64(t.yes) / float64(decisive)
		if conf < opts.MinConfidence {
			continue
		}
		aName, bName := schema.Attr(k.a), schema.Attr(k.b)
		var r rule.Rule
		switch k.kind {
		case 0:
			r = &rule.Form1{
				RuleName: fmt.Sprintf("mined-cur-%s-%s", aName, bName),
				LHS: []rule.Pred{
					rule.Cmp(rule.T1(aName), rule.Lt, rule.T2(aName)),
					rule.Cmp(rule.T2(bName), rule.Ne, rule.C(model.NullValue())),
				},
				RHS: bName,
			}
		default:
			r = &rule.Form1{
				RuleName: fmt.Sprintf("mined-corr-%s-%s", aName, bName),
				LHS: []rule.Pred{
					rule.Prec(aName),
					rule.Cmp(rule.T2(bName), rule.Ne, rule.C(model.NullValue())),
				},
				RHS: bName,
			}
		}
		out = append(out, Candidate{Rule: r, Support: decisive, Confidence: conf})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Rule.Name() < out[j].Rule.Name()
	})
	return out
}

// Rules extracts the rules of the candidates.
func Rules(cands []Candidate) []rule.Rule {
	out := make([]rule.Rule, len(cands))
	for i, c := range cands {
		out[i] = c.Rule
	}
	return out
}
