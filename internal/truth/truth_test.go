package truth_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
	"repro/internal/truth"
)

func TestVoting(t *testing.T) {
	ie := paperdata.Stat()
	te := truth.Voting(ie)
	// FN: Michael appears 3 times vs MJ once.
	if v, _ := te.Get(paperdata.FN); !v.Equal(model.S("Michael")) {
		t.Errorf("FN = %v", v)
	}
	// MN: only Jeffrey is non-null.
	if v, _ := te.Get(paperdata.MN); !v.Equal(model.S("Jeffrey")) {
		t.Errorf("MN = %v", v)
	}
	// J#: 45 appears 3 times — voting picks the (wrong) majority.
	if v, _ := te.Get(paperdata.JNo); !v.Equal(model.I(45)) {
		t.Errorf("J# = %v", v)
	}
	// rnds: all distinct — deterministic tie-break, but non-null.
	if v, _ := te.Get(paperdata.Rnds); v.IsNull() {
		t.Errorf("rnds should be voted non-null")
	}
}

func TestVotingAllNull(t *testing.T) {
	s := model.MustSchema("r", "a")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.NullValue()))
	te := truth.Voting(ie)
	if v, _ := te.Get("a"); !v.IsNull() {
		t.Errorf("voting on all-null column should stay null")
	}
}

func TestDeduceOrderPartial(t *testing.T) {
	// With only the currency rules ϕ1–ϕ3 (no master), DeduceOrder
	// resolves rnds/totalPts on the NBA tuples but not league. The SL
	// tuple t4 is excluded: without the master data its rounds are
	// incomparable and nothing is deducible — exactly the weakness the
	// paper measures for DeduceOrder.
	full := paperdata.Stat()
	ie := model.NewEntityInstance(full.Schema())
	for i := 0; i < 3; i++ { // t1..t3: the NBA tuples
		ie.MustAdd(full.Tuple(i).Clone())
	}
	var currency []rule.Rule
	for _, r := range paperdata.Rules() {
		switch r.Name() {
		case "phi1", "phi2", "phi3":
			currency = append(currency, r)
		}
	}
	rs, err := rule.NewSet(ie.Schema(), nil, currency...)
	if err != nil {
		t.Fatal(err)
	}
	te, err := truth.DeduceOrder(ie, nil, rs)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := te.Get(paperdata.Rnds); !v.Equal(model.I(27)) {
		t.Errorf("rnds = %v, want 27", v)
	}
	if v, _ := te.Get(paperdata.TotalPts); !v.Equal(model.I(772)) {
		t.Errorf("totalPts = %v, want 772", v)
	}
	if v, _ := te.Get(paperdata.JNo); !v.Equal(model.I(23)) {
		t.Errorf("J# = %v, want 23", v)
	}
	if v, _ := te.Get(paperdata.FN); !v.IsNull() {
		t.Errorf("FN = %v, want null (no currency information on names)", v)
	}
}

func TestDeduceOrderConflict(t *testing.T) {
	// Conflicting currency orders: DeduceOrder answers nothing.
	s := model.MustSchema("r", "a")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.I(1)))
	ie.MustAdd(model.MustTuple(s, model.I(2)))
	up := &rule.Form1{RuleName: "up",
		LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Lt, rule.T2("a"))}, RHS: "a"}
	down := &rule.Form1{RuleName: "down",
		LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Gt, rule.T2("a"))}, RHS: "a"}
	te, err := truth.DeduceOrder(ie, nil, rule.MustSet(s, nil, up, down))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := te.Get("a"); !v.IsNull() {
		t.Errorf("conflicting orders should deduce nothing, got %v", v)
	}
}

// synthClaims builds a claim set with known truth: good sources are
// right with probability pGood, bad ones with pBad, and copiers
// replicate their master's claims (errors included).
func synthClaims(rng *rand.Rand, entities, goodN, badN, copierN int) ([]truth.Claim, map[string]model.Value) {
	truthVals := map[string]model.Value{}
	var claims []truth.Claim
	value := func(e int) model.Value { return model.I(int64(e % 7)) }
	wrong := func(e int, r *rand.Rand) model.Value { return model.I(int64(7 + r.Intn(5))) }

	for e := 0; e < entities; e++ {
		truthVals[fmt.Sprintf("e%d", e)] = value(e)
	}
	claimOf := map[string]map[int]model.Value{}
	mk := func(name string, p float64) {
		claimOf[name] = map[int]model.Value{}
		for e := 0; e < entities; e++ {
			v := value(e)
			if rng.Float64() > p {
				v = wrong(e, rng)
			}
			claimOf[name][e] = v
			claims = append(claims, truth.Claim{
				Source: name, Entity: fmt.Sprintf("e%d", e), Attr: "a", Val: v,
			})
		}
	}
	for i := 0; i < goodN; i++ {
		mk(fmt.Sprintf("good%d", i), 0.95)
	}
	for i := 0; i < badN; i++ {
		mk(fmt.Sprintf("bad%d", i), 0.3)
	}
	// Copiers replicate bad0 exactly.
	for i := 0; i < copierN; i++ {
		name := fmt.Sprintf("copier%d", i)
		for e := 0; e < entities; e++ {
			claims = append(claims, truth.Claim{
				Source: name, Entity: fmt.Sprintf("e%d", e), Attr: "a", Val: claimOf["bad0"][e],
			})
		}
	}
	return claims, truthVals
}

func TestCopyCEFRecoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	claims, want := synthClaims(rng, 60, 4, 2, 0)
	res := truth.CopyCEF(claims, truth.CopyCEFOptions{})
	correct := 0
	for e, v := range want {
		if got, ok := res.Truth[e]["a"]; ok && got.Equal(v) {
			correct++
		}
	}
	if correct < 55 {
		t.Errorf("copyCEF recovered %d/60 truths", correct)
	}
	// Good sources must end with higher estimated accuracy than bad ones.
	if res.Accuracy["good0"] <= res.Accuracy["bad0"] {
		t.Errorf("accuracy good0=%v <= bad0=%v", res.Accuracy["good0"], res.Accuracy["bad0"])
	}
}

func TestCopyCEFDetectsCopiers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// 3 copiers of one bad source would out-vote 3 good sources under
	// naive voting on the entities bad0 gets wrong; copy detection must
	// discount them.
	claims, want := synthClaims(rng, 80, 3, 1, 3)
	res := truth.CopyCEF(claims, truth.CopyCEFOptions{})
	correct := 0
	for e, v := range want {
		if got, ok := res.Truth[e]["a"]; ok && got.Equal(v) {
			correct++
		}
	}
	if correct < 70 {
		t.Errorf("copyCEF with copiers recovered %d/80 truths", correct)
	}
	// The copier pair must show high copy probability.
	p := res.Copier["bad0|copier0"]
	if p == 0 {
		p = res.Copier["copier0|bad0"]
	}
	if p < 0.5 {
		t.Errorf("copier0/bad0 copy probability = %v, want > 0.5", p)
	}
	// Independent good sources must not look like copiers.
	q := res.Copier["good0|good1"]
	if q > 0.5 {
		t.Errorf("good0/good1 copy probability = %v, want < 0.5", q)
	}
}

func TestCopyCEFProb(t *testing.T) {
	claims := []truth.Claim{
		{Source: "s1", Entity: "e", Attr: "a", Val: model.S("x")},
		{Source: "s2", Entity: "e", Attr: "a", Val: model.S("x")},
		{Source: "s3", Entity: "e", Attr: "a", Val: model.S("y")},
	}
	res := truth.CopyCEF(claims, truth.CopyCEFOptions{})
	if v := res.Truth["e"]["a"]; !v.Equal(model.S("x")) {
		t.Errorf("truth = %v, want x", v)
	}
	if p := res.Prob("e", "a", model.S("x")); p <= 0.5 {
		t.Errorf("P(x) = %v, want > 0.5", p)
	}
	if p := res.Prob("e", "a", model.S("z")); p != 0 {
		t.Errorf("P(unclaimed) = %v, want 0", p)
	}
	if p := res.Prob("missing", "a", model.S("x")); p != 0 {
		t.Errorf("P on missing entity = %v, want 0", p)
	}
}

func TestCopyCEFNullClaimsIgnored(t *testing.T) {
	claims := []truth.Claim{
		{Source: "s1", Entity: "e", Attr: "a", Val: model.NullValue()},
		{Source: "s2", Entity: "e", Attr: "a", Val: model.S("x")},
	}
	res := truth.CopyCEF(claims, truth.CopyCEFOptions{})
	if v := res.Truth["e"]["a"]; !v.Equal(model.S("x")) {
		t.Errorf("truth = %v, want x", v)
	}
}
