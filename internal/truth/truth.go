// Package truth implements the truth-discovery baselines the paper
// compares against in Exp-5 (Section 7):
//
//   - Voting: per attribute, pick the most frequent non-null value — the
//     naive baseline, equivalent to TopKCT with an empty rule set and
//     occurrence-count preference.
//   - DeduceOrder [Fan, Geerts, Tang, Yu — ICDE 2013]: conflict
//     resolution by reasoning about data currency and consistency. It is
//     emulated by the chase restricted to the currency constraints and
//     constant CFDs of the rule set (both expressible as ARs,
//     Sections 1–2): attributes without decisive currency/consistency
//     information stay undecided, which is why the paper measures 100%
//     precision but low recall for it.
//   - CopyCEF [Dong, Berti-Equille, Srivastava — PVLDB 2009]: Bayesian
//     truth discovery over multiple data sources with source-accuracy
//     estimation and copier detection. It consumes source-attributed
//     claims rather than an entity instance.
package truth

import (
	"math"
	"sort"

	"repro/internal/chase"
	"repro/internal/model"
	"repro/internal/rule"
)

// Voting returns, for each attribute of the instance, the most frequent
// non-null value. Ties are broken deterministically toward the largest
// value (numerically when comparable, else lexicographically): for
// monotone attributes like update counters every value is distinct, and
// "largest on ties" is the natural refinement. Attributes with no
// non-null values stay null.
func Voting(ie *model.EntityInstance) *model.Tuple {
	te := model.NewTuple(ie.Schema())
	for a := 0; a < ie.Schema().Arity(); a++ {
		vals, counts := model.ActiveDomain(ie, nil, ie.Schema().Attr(a))
		if len(vals) == 0 || counts[0] == 0 {
			continue
		}
		best := vals[0]
		for i := 1; i < len(vals) && counts[i] == counts[0]; i++ {
			if c, ok := vals[i].Compare(best); ok && c > 0 {
				best = vals[i]
			} else if !ok && vals[i].String() > best.String() {
				best = vals[i]
			}
		}
		te.SetAt(a, best)
	}
	return te
}

// DeduceOrder emulates the currency/consistency reasoning of [14] on a
// single entity instance: it runs the chase with only the given currency
// rules (form-(1) ARs expressing currency orders) and constant CFDs
// (expressed as form-(2) ARs over a constant master relation; see the
// Remark in Section 2.1). The returned target may be incomplete —
// DeduceOrder never guesses.
func DeduceOrder(ie *model.EntityInstance, im *model.MasterRelation, rules *rule.Set) (*model.Tuple, error) {
	res, err := chase.Deduce(chase.Spec{Ie: ie, Im: im, Rules: rules}, chase.Options{})
	if err != nil {
		return nil, err
	}
	if !res.CR {
		// Conflicting currency information: resolve nothing, as [14]
		// reports no answer for irreconcilable orders.
		return model.NewTuple(ie.Schema()), nil
	}
	return res.Target, nil
}

// Claim is one source's assertion about one attribute of one entity —
// the input unit of copyCEF.
type Claim struct {
	Source string
	Entity string
	Attr   string
	Val    model.Value
}

// CopyCEFOptions tunes the Bayesian iteration.
type CopyCEFOptions struct {
	// Iterations of the accuracy/truth fixpoint; 0 means 20.
	Iterations int
	// InitialAccuracy of every source; 0 means 0.8.
	InitialAccuracy float64
	// NFalse is the assumed number of wrong values per attribute (the
	// "n" of Dong et al.'s accuracy model); 0 means 10.
	NFalse float64
	// CopyPrior is the prior probability that a source copies another;
	// 0 means 0.1.
	CopyPrior float64
}

// CopyCEFResult reports the discovered truth.
type CopyCEFResult struct {
	// Truth maps entity -> attr -> chosen value.
	Truth map[string]map[string]model.Value
	// Confidence maps entity -> attr -> probability of the chosen value.
	Confidence map[string]map[string]float64
	// Accuracy is the final per-source accuracy estimate.
	Accuracy map[string]float64
	// Copier maps source pairs "a|b" to the estimated probability that a
	// copies from b (only pairs with overlap are present).
	Copier map[string]float64
}

// Prob returns the estimated probability that value v is the true value
// of (entity, attr); values never claimed score 0.
func (r *CopyCEFResult) Prob(entity, attr string, v model.Value) float64 {
	if r.Truth[entity] == nil {
		return 0
	}
	if tv, ok := r.Truth[entity][attr]; ok && tv.Equal(v) {
		return r.Confidence[entity][attr]
	}
	return 0
}

// CopyCEF runs the source-accuracy + copy-detection truth discovery of
// Dong et al. over the claims: iteratively (1) estimate pairwise copying
// from suspicious agreement on uncommon values, (2) vote for values with
// copy-discounted, accuracy-derived weights, (3) re-estimate source
// accuracy from the vote outcome.
func CopyCEF(claims []Claim, opts CopyCEFOptions) *CopyCEFResult {
	if opts.Iterations == 0 {
		opts.Iterations = 20
	}
	if opts.InitialAccuracy == 0 {
		opts.InitialAccuracy = 0.8
	}
	if opts.NFalse == 0 {
		opts.NFalse = 10
	}
	if opts.CopyPrior == 0 {
		opts.CopyPrior = 0.1
	}

	type item struct{ entity, attr string }
	// claimsOf[item][valueKey] = sources claiming it; val kept alongside.
	bySource := map[string]map[item]model.Value{}
	items := map[item]map[string][]string{}
	itemVal := map[item]map[string]model.Value{}
	var sources []string
	seenSource := map[string]bool{}
	for _, c := range claims {
		if c.Val.IsNull() {
			continue
		}
		it := item{c.Entity, c.Attr}
		if items[it] == nil {
			items[it] = map[string][]string{}
			itemVal[it] = map[string]model.Value{}
		}
		k := c.Val.Key()
		items[it][k] = append(items[it][k], c.Source)
		itemVal[it][k] = c.Val
		if bySource[c.Source] == nil {
			bySource[c.Source] = map[item]model.Value{}
			if !seenSource[c.Source] {
				seenSource[c.Source] = true
				sources = append(sources, c.Source)
			}
		}
		bySource[c.Source][it] = c.Val
	}
	sort.Strings(sources)
	itemList := make([]item, 0, len(items))
	for it := range items {
		itemList = append(itemList, it)
	}
	sort.Slice(itemList, func(i, j int) bool {
		if itemList[i].entity != itemList[j].entity {
			return itemList[i].entity < itemList[j].entity
		}
		return itemList[i].attr < itemList[j].attr
	})

	acc := map[string]float64{}
	for _, s := range sources {
		acc[s] = opts.InitialAccuracy
	}
	// truthKey[item] = current best value key; prob[item][key].
	truthKey := map[item]string{}
	probs := map[item]map[string]float64{}
	copier := map[string]float64{}

	clamp := func(x float64) float64 {
		return math.Min(0.99, math.Max(0.01, x))
	}

	for iter := 0; iter < opts.Iterations; iter++ {
		// (1) Copy detection: for each ordered source pair, a Bayesian
		// update from their overlapping claims — agreement on the current
		// truth is weak evidence of copying, agreement on a non-truth
		// value is strong evidence, disagreement is evidence of
		// independence.
		if iter > 0 {
			for _, s1 := range sources {
				for _, s2 := range sources {
					if s1 >= s2 {
						continue
					}
					var kTrue, kFalse, kDiff int
					for it, v1 := range bySource[s1] {
						v2, ok := bySource[s2][it]
						if !ok {
							continue
						}
						switch {
						case !v1.Equal(v2):
							kDiff++
						case truthKey[it] == v1.Key():
							kTrue++
						default:
							kFalse++
						}
					}
					if kTrue+kFalse+kDiff == 0 {
						continue
					}
					// Log-likelihood ratio of "copying" vs "independent".
					// A copier reproduces its source wholesale — errors
					// included — so near-total agreement is the copying
					// signature, while independent sources disagree
					// whenever exactly one of them errs. Disagreements
					// therefore carry strong independence evidence and
					// each agreement only slight copying evidence; shared
					// false values (relative to the current truth
					// estimate) add extra weight, but the verdict must not
					// hinge on the truth estimate, which copier cliques
					// can themselves distort.
					llr := math.Log(opts.CopyPrior / (1 - opts.CopyPrior))
					llr += float64(kTrue+kFalse) * math.Log(1.1)
					llr += float64(kFalse) * math.Log(1.5)
					llr += float64(kDiff) * math.Log(0.05)
					p := 1 / (1 + math.Exp(-llr))
					copier[s1+"|"+s2] = p
				}
			}
		}

		// (2) Vote with copy-discounted accuracy weights.
		for _, it := range itemList {
			scores := map[string]float64{}
			for k, srcs := range items[it] {
				score := 0.0
				for _, s := range srcs {
					w := math.Log(opts.NFalse * clamp(acc[s]) / (1 - clamp(acc[s])))
					// Discount by the probability that s copied this value
					// from another source claiming it.
					indep := 1.0
					for _, s2 := range srcs {
						if s2 == s {
							continue
						}
						key := s + "|" + s2
						if s2 < s {
							key = s2 + "|" + s
						}
						if p, ok := copier[key]; ok {
							indep *= 1 - 0.8*p
						}
					}
					score += w * indep
				}
				scores[k] = score
			}
			// Softmax over claimed values (max-shifted for stability).
			maxSc := math.Inf(-1)
			for _, sc := range scores {
				if sc > maxSc {
					maxSc = sc
				}
			}
			sum := 0.0
			for _, sc := range scores {
				sum += math.Exp(sc - maxSc)
			}
			pr := map[string]float64{}
			bestK, bestP := "", -1.0
			keys := make([]string, 0, len(scores))
			for k := range scores {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				p := math.Exp(scores[k]-maxSc) / sum
				pr[k] = p
				if p > bestP {
					bestK, bestP = k, p
				}
			}
			probs[it] = pr
			truthKey[it] = bestK
		}

		// (3) Re-estimate source accuracy as the mean probability of the
		// source's claims.
		for _, s := range sources {
			sum, n := 0.0, 0
			for it, v := range bySource[s] {
				sum += probs[it][v.Key()]
				n++
			}
			if n > 0 {
				acc[s] = clamp(sum / float64(n))
			}
		}
	}

	out := &CopyCEFResult{
		Truth:      map[string]map[string]model.Value{},
		Confidence: map[string]map[string]float64{},
		Accuracy:   acc,
		Copier:     copier,
	}
	for _, it := range itemList {
		if out.Truth[it.entity] == nil {
			out.Truth[it.entity] = map[string]model.Value{}
			out.Confidence[it.entity] = map[string]float64{}
		}
		k := truthKey[it]
		out.Truth[it.entity][it.attr] = itemVal[it][k]
		out.Confidence[it.entity][it.attr] = probs[it][k]
	}
	return out
}
