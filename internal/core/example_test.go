package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
)

// Example walks through the full API on a small product catalogue: three
// feeds disagree about a product; a version counter orders the feeds, a
// correlation rule carries the order to the price, and master data pins
// the manufacturer.
func Example() {
	s := model.MustSchema("product", "sku", "rev", "price", "maker")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("A-17"), model.I(1), model.S("9.99"), model.S("Acme Inc")))
	ie.MustAdd(model.MustTuple(s, model.S("A-17"), model.I(2), model.S("10.49"), model.S("ACME")))
	ie.MustAdd(model.MustTuple(s, model.S("A-17"), model.I(3), model.S("10.99"), model.NullValue()))

	ms := model.MustSchema("catalog", "sku", "maker")
	im := model.NewMasterRelation(ms)
	im.MustAdd(model.MustTuple(ms, model.S("A-17"), model.S("Acme Inc.")))

	rules, err := core.ParseRules(`
		rev:    t1[rev] < t2[rev] -> t1 <= t2 @ rev
		price:  t1 < t2 @ rev , t2[price] != null -> t1 <= t2 @ price
		maker:  master te[sku] = tm[sku] -> te[maker] = tm[maker]
	`, s, ms)
	if err != nil {
		log.Fatal(err)
	}

	sess, err := core.NewSession(ie, im, rules)
	if err != nil {
		log.Fatal(err)
	}
	res := sess.Deduce()
	fmt.Println("Church-Rosser:", res.CR)
	for _, a := range s.Attrs() {
		v, _ := res.Target.Get(a)
		fmt.Printf("te[%s] = %s\n", a, v)
	}
	// Output:
	// Church-Rosser: true
	// te[sku] = A-17
	// te[rev] = 3
	// te[price] = 10.99
	// te[maker] = Acme Inc.
}

// ExampleSession_TopK shows candidate search when the chase cannot
// decide an attribute: two colour values survive, ranked by occurrence.
func ExampleSession_TopK() {
	s := model.MustSchema("product", "sku", "color")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("A-17"), model.S("red")))
	ie.MustAdd(model.MustTuple(s, model.S("A-17"), model.S("red")))
	ie.MustAdd(model.MustTuple(s, model.S("A-17"), model.S("burgundy")))

	rules, _ := core.ParseRules("", s, nil)
	sess, err := core.NewSession(ie, nil, rules)
	if err != nil {
		log.Fatal(err)
	}
	cands, _, err := sess.TopK(core.Preference{K: 2}, core.AlgoTopKCT)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cands {
		v, _ := c.Tuple.Get("color")
		fmt.Printf("color=%s score=%.0f\n", v, c.Score)
	}
	// Output:
	// color=red score=5
	// color=burgundy score=4
}

// ExampleSession_Check verifies candidates against the rules: a price
// below the newest feed's contradicts the currency order.
func ExampleSession_Check() {
	s := model.MustSchema("product", "rev", "price")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.I(1), model.S("9.99")))
	ie.MustAdd(model.MustTuple(s, model.I(2), model.S("10.99")))

	rules, _ := core.ParseRules(`
		rev:   t1[rev] < t2[rev] -> t1 <= t2 @ rev
		price: t1 < t2 @ rev , t2[price] != null -> t1 <= t2 @ price
	`, s, nil)
	sess, err := core.NewSession(ie, nil, rules)
	if err != nil {
		log.Fatal(err)
	}
	good := model.MustTuple(s, model.I(2), model.S("10.99"))
	bad := model.MustTuple(s, model.I(2), model.S("9.99")) // stale price
	fmt.Println(sess.Check(good), sess.Check(bad))
	// Output: true false
}
