// Package core ties the data model, the accuracy-rule chase (Sections 2
// and 5 of the paper), the top-k candidate search (Section 6) and the
// interactive framework (Section 4) into one session-oriented,
// per-entity API. The public package relacc re-exports it (and the
// multi-entity batch pipeline, package pipeline) for external callers.
//
// Typical use:
//
//	sess, err := core.NewSession(ie, im, rules)
//	res := sess.Deduce()                  // Church-Rosser check + target
//	if !res.Target.Complete() {
//	    cands, _, _ := sess.TopK(core.Preference{K: 10}, core.AlgoTopKCT)
//	    ...
//	}
//
// ie is the entity instance (all tuples refer to one real-world entity,
// typically produced by package er), im optional master data, and rules
// the accuracy rules — built programmatically with package rule or
// parsed from text with ParseRules.
package core

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/framework"
	"repro/internal/model"
	"repro/internal/rule"
	"repro/internal/ruledsl"
	"repro/internal/topk"
)

// Re-exported types, so most callers only import core.
type (
	// Preference is the (k, p(·)) preference model of Section 3.
	Preference = topk.Preference
	// Candidate is one verified candidate target.
	Candidate = topk.Candidate
	// SearchStats reports the work a top-k search performed.
	SearchStats = topk.Stats
	// Result is a chase outcome.
	Result = chase.Result
	// Oracle drives the interactive framework.
	Oracle = framework.Oracle
	// Algorithm selects a top-k candidate algorithm.
	Algorithm = framework.Algorithm
)

// Top-k algorithm choices.
const (
	AlgoTopKCT     = framework.AlgoTopKCT
	AlgoRankJoinCT = framework.AlgoRankJoinCT
	AlgoTopKCTh    = framework.AlgoTopKCTh
)

// Session is a grounded specification S = (D0, Σ, Im, te0): the
// instance's rules are pre-instantiated once (the Instantiation step of
// Section 5) so deduction, candidate checks and top-k searches are
// cheap and repeatable. Sessions are not safe for concurrent use.
type Session struct {
	g *chase.Grounding
}

// NewSession validates the rules against the schemas and grounds the
// specification. im may be nil when the rule set has no form-(2) rules.
func NewSession(ie *model.EntityInstance, im *model.MasterRelation, rules *rule.Set) (*Session, error) {
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: im, Rules: rules}, chase.Options{})
	if err != nil {
		return nil, err
	}
	return &Session{g: g}, nil
}

// Deduce runs the chase from the all-null template: it decides the
// Church-Rosser property and, when it holds, returns the deduced target
// tuple and accuracy orders (algorithm IsCR, Fig. 4).
func (s *Session) Deduce() *Result { return s.g.Run(nil) }

// DeduceFrom runs the chase from a partially (or fully) instantiated
// target template, as the framework's user-feedback loop does.
func (s *Session) DeduceFrom(template *model.Tuple) *Result { return s.g.Run(template) }

// Check verifies a complete candidate target (Section 6.1): the
// specification with t as the initial template must be Church-Rosser.
// Checks run on the grounding's pooled engines, so repeated checks are
// allocation-free.
func (s *Session) Check(t *model.Tuple) bool { return s.g.Pool().Check(t) }

// CheckBatch verifies many candidate targets concurrently (parallelism
// <= 0 means GOMAXPROCS) and returns one verdict per candidate.
func (s *Session) CheckBatch(cands []*model.Tuple, parallelism int) []bool {
	return s.g.CheckBatch(cands, parallelism)
}

// TopK computes top-k candidate targets for the current deduced target
// using the selected algorithm. It fails when the specification is not
// Church-Rosser.
func (s *Session) TopK(pref Preference, algo Algorithm) ([]Candidate, SearchStats, error) {
	res := s.g.Run(nil)
	if !res.CR {
		return nil, SearchStats{}, fmt.Errorf("core: specification is not Church-Rosser: %s", res.Conflict)
	}
	switch algo {
	case AlgoRankJoinCT:
		return topk.RankJoinCT(s.g, res.Target, pref)
	case AlgoTopKCTh:
		return topk.TopKCTh(s.g, res.Target, pref)
	default:
		return topk.TopKCT(s.g, res.Target, pref)
	}
}

// Interact runs the full framework loop of Fig. 3 with the given user
// oracle until a complete target is found or the oracle gives up.
func (s *Session) Interact(cfg framework.Config, oracle Oracle) (*framework.Outcome, error) {
	return framework.Run(s.g, cfg, oracle)
}

// Grounding exposes the underlying grounding for advanced callers
// (benchmarks, custom search strategies).
func (s *Session) Grounding() *chase.Grounding { return s.g }

// ParseRules parses the textual rule language (see package ruledsl) and
// validates the result against the schemas.
func ParseRules(text string, entity *model.Schema, master *model.Schema) (*rule.Set, error) {
	rules, err := ruledsl.Parse(text)
	if err != nil {
		return nil, err
	}
	return rule.NewSet(entity, master, rules...)
}

// FormatRules renders a rule set in the textual rule language.
func FormatRules(rules *rule.Set) string {
	return ruledsl.Format(rules.Rules())
}

// GroundTruthOracle returns an oracle driven by a known true tuple,
// for experiments and tests.
func GroundTruthOracle(truth *model.Tuple) Oracle {
	return &framework.GroundTruthOracle{Truth: truth}
}
