// Package core ties the data model, the accuracy-rule chase (Sections 2
// and 5 of the paper), the top-k candidate search (Section 6) and the
// interactive framework (Section 4) into one session-oriented,
// per-entity API. The public package relacc re-exports it (and the
// multi-entity batch pipeline, package pipeline) for external callers.
//
// Typical use:
//
//	sess, err := core.NewSession(ie, im, rules)
//	res := sess.Deduce()                  // Church-Rosser check + target
//	if !res.Target.Complete() {
//	    cands, _, _ := sess.TopK(core.Preference{K: 10}, core.AlgoTopKCT)
//	    ...
//	}
//
// ie is the entity instance (all tuples refer to one real-world entity,
// typically produced by package er), im optional master data, and rules
// the accuracy rules — built programmatically with package rule or
// parsed from text with ParseRules.
package core

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/framework"
	"repro/internal/model"
	"repro/internal/rule"
	"repro/internal/ruledsl"
	"repro/internal/topk"
	"repro/internal/vcache"
)

// Re-exported types, so most callers only import core.
type (
	// Preference is the (k, p(·)) preference model of Section 3.
	Preference = topk.Preference
	// Candidate is one verified candidate target.
	Candidate = topk.Candidate
	// SearchStats reports the work a top-k search performed.
	SearchStats = topk.Stats
	// Result is a chase outcome.
	Result = chase.Result
	// Oracle drives the interactive framework.
	Oracle = framework.Oracle
	// Algorithm selects a top-k candidate algorithm.
	Algorithm = framework.Algorithm
)

// Top-k algorithm choices.
const (
	AlgoTopKCT     = framework.AlgoTopKCT
	AlgoRankJoinCT = framework.AlgoRankJoinCT
	AlgoTopKCTh    = framework.AlgoTopKCTh
)

// Session is a grounded specification S = (D0, Σ, Im, te0): the
// instance's rules are pre-instantiated once (the Instantiation step of
// Section 5) so deduction, candidate checks and top-k searches are
// cheap and repeatable.
//
// The read-side methods — Deduce, DeduceFrom, Check, CheckBatch, TopK —
// are safe for concurrent use: they run on the session's current
// grounding version, which is immutable (race-tested in
// race_test.go). AddTuples installs a NEW grounding version and must
// not run concurrently with any other method; reads that started on
// the previous version finish on it unaffected.
type Session struct {
	g *chase.Grounding
}

// NewSession validates the rules against the schemas and grounds the
// specification. im may be nil when the rule set has no form-(2) rules.
// Callers opening many sessions over one schema should build a
// Groundwork once and use Groundwork.NewSession, which skips the
// per-session rule re-validation.
func NewSession(ie *model.EntityInstance, im *model.MasterRelation, rules *rule.Set) (*Session, error) {
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: im, Rules: rules}, chase.Options{})
	if err != nil {
		return nil, err
	}
	return &Session{g: g}, nil
}

// AddTuples absorbs new evidence tuples into the session and re-grounds
// incrementally: only the new-tuple pairs are instantiated and the
// template-independent base chase resumes from the previous terminal
// state (chase.Grounding.Extend), which is far cheaper than grounding
// the grown instance from scratch. After AddTuples the session behaves
// exactly as a fresh session over the full instance — Deduce, TopK,
// Check and Stats outputs are byte-identical, conflict messages of
// non-Church-Rosser specifications aside (enforced by
// incremental_test.go). On error the session is left on its previous
// version. AddTuples must not run concurrently with other methods.
func (s *Session) AddTuples(tuples ...*model.Tuple) error {
	g, err := s.g.Extend(tuples...)
	if err != nil {
		return err
	}
	s.g = g
	return nil
}

// Version reports how many evidence deltas the session has absorbed
// through AddTuples (0 for a fresh session).
func (s *Session) Version() int { return s.g.Version() }

// Instance returns the entity instance of the session's current
// grounding version.
func (s *Session) Instance() *model.EntityInstance { return s.g.Instance() }

// Deduce runs the chase from the all-null template: it decides the
// Church-Rosser property and, when it holds, returns the deduced target
// tuple and accuracy orders (algorithm IsCR, Fig. 4).
func (s *Session) Deduce() *Result { return s.g.Run(nil) }

// DeduceFrom runs the chase from a partially (or fully) instantiated
// target template, as the framework's user-feedback loop does.
func (s *Session) DeduceFrom(template *model.Tuple) *Result { return s.g.Run(template) }

// Check verifies a complete candidate target (Section 6.1): the
// specification with t as the initial template must be Church-Rosser.
// Checks run on the grounding's pooled engines, so repeated checks are
// allocation-free.
func (s *Session) Check(t *model.Tuple) bool { return s.g.Pool().Check(t) }

// CheckBatch verifies many candidate targets concurrently (parallelism
// <= 0 means GOMAXPROCS) and returns one verdict per candidate.
func (s *Session) CheckBatch(cands []*model.Tuple, parallelism int) []bool {
	return s.g.CheckBatch(cands, parallelism)
}

// TopK computes top-k candidate targets for the current deduced target
// using the selected algorithm. It fails when the specification is not
// Church-Rosser.
func (s *Session) TopK(pref Preference, algo Algorithm) ([]Candidate, SearchStats, error) {
	res := s.g.Run(nil)
	if !res.CR {
		return nil, SearchStats{}, fmt.Errorf("core: specification is not Church-Rosser: %s", res.Conflict)
	}
	switch algo {
	case AlgoRankJoinCT:
		return topk.RankJoinCT(s.g, res.Target, pref)
	case AlgoTopKCTh:
		return topk.TopKCTh(s.g, res.Target, pref)
	default:
		return topk.TopKCT(s.g, res.Target, pref)
	}
}

// Interact runs the full framework loop of Fig. 3 with the given user
// oracle until a complete target is found or the oracle gives up.
func (s *Session) Interact(cfg framework.Config, oracle Oracle) (*framework.Outcome, error) {
	return framework.Run(s.g, cfg, oracle)
}

// Grounding exposes the underlying grounding for advanced callers
// (benchmarks, custom search strategies).
func (s *Session) Grounding() *chase.Grounding { return s.g }

// VerdictCacheStats reports the session's verdict-cache accounting:
// Check/CheckBatch/TopK verdicts are memoised per grounding version
// (hits and misses are cumulative across the versions AddTuples has
// moved the session through; entries count the current version only).
// Sessions always run with the cache on; the stats expose how much of
// the check load it absorbed.
func (s *Session) VerdictCacheStats() vcache.Stats { return s.g.VerdictCacheStats() }

// Groundwork is the schema-level part of session construction: the
// rule set validated once against one (entity schema, master schema)
// pair plus the compiled form-(2) index (chase.Shared). Callers that
// repeatedly open sessions over the same schema — servers re-deducing
// entities as evidence arrives, batch drivers — build one Groundwork
// and stamp sessions out of it, skipping re-validation every time. A
// Groundwork is immutable and safe for concurrent use.
type Groundwork struct {
	sh *chase.Shared
}

// NewGroundwork validates the rules against the schemas once. im may be
// nil when the rule set has no form-(2) rules.
func NewGroundwork(entity *model.Schema, im *model.MasterRelation, rules *rule.Set) (*Groundwork, error) {
	sh, err := chase.NewShared(entity, im, rules)
	if err != nil {
		return nil, err
	}
	return &Groundwork{sh: sh}, nil
}

// NewSession grounds one entity instance on the prevalidated groundwork.
// The instance must use the exact schema the groundwork was built for.
func (gw *Groundwork) NewSession(ie *model.EntityInstance) (*Session, error) {
	g, err := gw.sh.NewGrounding(ie, chase.Options{})
	if err != nil {
		return nil, err
	}
	return &Session{g: g}, nil
}

// Shared exposes the underlying chase groundwork for internal callers
// (the batch pipeline and its update stream).
func (gw *Groundwork) Shared() *chase.Shared { return gw.sh }

// ParseRules parses the textual rule language (see package ruledsl) and
// validates the result against the schemas.
func ParseRules(text string, entity *model.Schema, master *model.Schema) (*rule.Set, error) {
	rules, err := ruledsl.Parse(text)
	if err != nil {
		return nil, err
	}
	return rule.NewSet(entity, master, rules...)
}

// FormatRules renders a rule set in the textual rule language.
func FormatRules(rules *rule.Set) string {
	return ruledsl.Format(rules.Rules())
}

// GroundTruthOracle returns an oracle driven by a known true tuple,
// for experiments and tests.
func GroundTruthOracle(truth *model.Tuple) Oracle {
	return &framework.GroundTruthOracle{Truth: truth}
}
