package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/framework"
	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
)

func session(t *testing.T) *core.Session {
	t.Helper()
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSession(ie, im, rs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionDeduce(t *testing.T) {
	s := session(t)
	res := s.Deduce()
	if !res.CR || !res.Target.EqualTo(paperdata.Target()) {
		t.Fatalf("Deduce: CR=%v target=%v", res.CR, res.Target)
	}
}

func TestSessionCheck(t *testing.T) {
	s := session(t)
	if !s.Check(paperdata.Target()) {
		t.Errorf("true target must pass Check")
	}
	bad := paperdata.Target()
	bad.Set(paperdata.League, model.S("SL"))
	if s.Check(bad) {
		t.Errorf("bad target must fail Check")
	}
}

func TestSessionTopKAllAlgorithms(t *testing.T) {
	// Drop phi6b so there is something to search for.
	ie := paperdata.Stat()
	im := paperdata.NBA()
	var rules []rule.Rule
	for _, r := range paperdata.Rules() {
		if r.Name() != "phi6b" {
			rules = append(rules, r)
		}
	}
	rs, _ := rule.NewSet(ie.Schema(), im.Schema(), rules...)
	s, err := core.NewSession(ie, im, rs)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []core.Algorithm{core.AlgoTopKCT, core.AlgoRankJoinCT, core.AlgoTopKCTh} {
		cands, stats, err := s.TopK(core.Preference{K: 3}, algo)
		if err != nil {
			t.Fatalf("algo %d: %v", algo, err)
		}
		if len(cands) == 0 || !cands[0].Tuple.EqualTo(paperdata.Target()) {
			t.Errorf("algo %d: top candidate wrong", algo)
		}
		if stats.Checks == 0 {
			t.Errorf("algo %d: no checks recorded", algo)
		}
	}
}

func TestSessionTopKNonCR(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, _ := rule.NewSet(ie.Schema(), im.Schema(), append(paperdata.Rules(), paperdata.Phi12())...)
	s, err := core.NewSession(ie, im, rs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.TopK(core.Preference{K: 3}, core.AlgoTopKCT); err == nil {
		t.Errorf("TopK on a non-CR specification must fail")
	}
}

func TestSessionInteract(t *testing.T) {
	s := session(t)
	out, err := s.Interact(framework.Config{}, core.GroundTruthOracle(paperdata.Target()))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found || !out.Target.EqualTo(paperdata.Target()) {
		t.Errorf("Interact: Found=%v target=%v", out.Found, out.Target)
	}
}

func TestParseAndFormatRules(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatal(err)
	}
	text := core.FormatRules(rs)
	parsed, err := core.ParseRules(text, ie.Schema(), im.Schema())
	if err != nil {
		t.Fatalf("ParseRules: %v\n%s", err, text)
	}
	if parsed.Len() != rs.Len() {
		t.Errorf("round trip: %d vs %d rules", parsed.Len(), rs.Len())
	}
	// Bad rules fail validation.
	if _, err := core.ParseRules("r: t1[zz] = t2[zz] -> t1 <= t2 @ zz", ie.Schema(), im.Schema()); err == nil {
		t.Errorf("unknown attribute must fail validation")
	}
}
