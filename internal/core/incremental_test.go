package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
)

// fingerprintSession renders everything the incremental path promises
// to preserve — CR verdict, deduced target, residual step count, top-k
// candidate list (tuples, scores, order) and search stats — so string
// equality means byte-identical output.
func fingerprintSession(t *testing.T, s *core.Session, topK int, algo core.Algorithm) string {
	t.Helper()
	res := s.Deduce()
	out := fmt.Sprintf("cr=%v", res.CR)
	if !res.CR {
		return out
	}
	out += fmt.Sprintf(" target=%s steps=%d pairs=%d", res.Target.Key(), res.Steps, res.Orders.TotalPairs())
	if res.Target.Complete() || topK <= 0 {
		return out
	}
	cands, stats, err := s.TopK(core.Preference{K: topK, MaxChecks: 2000}, algo)
	if err != nil {
		return out + " topkerr=" + err.Error()
	}
	for _, c := range cands {
		out += fmt.Sprintf(" cand=%s@%.6f", c.Tuple.Key(), c.Score)
	}
	out += fmt.Sprintf(" checks=%d pops=%d gen=%d", stats.Checks, stats.Pops, stats.Generated)
	return out
}

// buildSplitSession replays ie as a base prefix plus AddTuples batches.
func buildSplitSession(t *testing.T, ie *model.EntityInstance, im *model.MasterRelation,
	rs *rule.Set, base int, batches []int) *core.Session {
	t.Helper()
	prefix := model.NewEntityInstance(ie.Schema())
	for i := 0; i < base; i++ {
		prefix.MustAdd(ie.Tuple(i))
	}
	s, err := core.NewSession(prefix, im, rs)
	if err != nil {
		t.Fatal(err)
	}
	next := base
	for _, sz := range batches {
		if err := s.AddTuples(ie.Tuples()[next : next+sz]...); err != nil {
			t.Fatal(err)
		}
		next += sz
	}
	if next != ie.Size() {
		t.Fatalf("split covers %d of %d tuples", next, ie.Size())
	}
	return s
}

// TestAddTuplesMatchesFreshSession is the session-level incremental
// equivalence property (ISSUE 3): for every tested split of an instance
// into a base plus AddTuples batches, Deduce, the top-k candidate list
// and the search Stats are byte-identical to a fresh session over the
// full instance. Runs under -race in CI.
func TestAddTuplesMatchesFreshSession(t *testing.T) {
	// The paper's running example: every split of the four stat tuples.
	ie := paperdata.Stat()
	im := paperdata.NBA()
	// Drop phi6b so the deduced target stays incomplete and TopK has
	// work to do.
	var pruned []rule.Rule
	for _, r := range paperdata.Rules() {
		if r.Name() != "phi6b" {
			pruned = append(pruned, r)
		}
	}
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), pruned...)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.NewSession(ie, im, rs)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []core.Algorithm{core.AlgoTopKCT, core.AlgoRankJoinCT, core.AlgoTopKCTh} {
		want := fingerprintSession(t, fresh, 3, algo)
		for base := 1; base < ie.Size(); base++ {
			for _, oneByOne := range []bool{false, true} {
				var batches []int
				if oneByOne {
					for i := base; i < ie.Size(); i++ {
						batches = append(batches, 1)
					}
				} else {
					batches = []int{ie.Size() - base}
				}
				s := buildSplitSession(t, ie, im, rs, base, batches)
				if got := fingerprintSession(t, s, 3, algo); got != want {
					t.Fatalf("algo %d base %d oneByOne=%v:\nincremental: %s\nfresh:       %s",
						algo, base, oneByOne, got, want)
				}
				if s.Version() != len(batches) {
					t.Fatalf("version %d after %d batches", s.Version(), len(batches))
				}
			}
		}
	}

	// Generated Med-style entities: random splits, fixed seeds.
	cfg := gen.MedConfig()
	cfg.NumEntities = 8
	ds := gen.Generate(cfg)
	rng := rand.New(rand.NewSource(7))
	for ei, e := range ds.Entities {
		ge := e.Instance
		if ge.Size() < 2 {
			continue
		}
		gf, err := core.NewSession(ge, ds.Master, ds.Rules)
		if err != nil {
			t.Fatal(err)
		}
		want := fingerprintSession(t, gf, 3, core.AlgoTopKCT)
		for trial := 0; trial < 3; trial++ {
			base := 1 + rng.Intn(ge.Size()-1)
			rest := ge.Size() - base
			var batches []int
			for rest > 0 {
				sz := 1 + rng.Intn(rest)
				batches = append(batches, sz)
				rest -= sz
			}
			s := buildSplitSession(t, ge, ds.Master, ds.Rules, base, batches)
			if got := fingerprintSession(t, s, 3, core.AlgoTopKCT); got != want {
				t.Fatalf("entity %d base %d batches %v:\nincremental: %s\nfresh:       %s",
					ei, base, batches, got, want)
			}
		}
	}
}

// TestAddTuplesCheckAgrees: candidate checks after AddTuples agree with
// a fresh session's verdicts, including on candidates that the new
// evidence invalidates.
func TestAddTuplesCheckAgrees(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatal(err)
	}
	s := buildSplitSession(t, ie, im, rs, 2, []int{1, 1})
	if !s.Check(paperdata.Target()) {
		t.Fatal("true target must pass after incremental absorption")
	}
	bad := paperdata.Target()
	bad.Set(paperdata.League, model.S("SL"))
	if s.Check(bad) {
		t.Fatal("bad target must fail after incremental absorption")
	}
	verdicts := s.CheckBatch([]*model.Tuple{paperdata.Target(), bad}, 2)
	if !verdicts[0] || verdicts[1] {
		t.Fatalf("CheckBatch verdicts = %v, want [true false]", verdicts)
	}
}

// TestAddTuplesErrorKeepsSession: a failing delta leaves the session on
// its previous version.
func TestAddTuplesErrorKeepsSession(t *testing.T) {
	s := session(t)
	before := fingerprintSession(t, s, 0, core.AlgoTopKCT)
	other := model.MustSchema("other", "x")
	if err := s.AddTuples(model.MustTuple(other, model.I(1))); err == nil {
		t.Fatal("foreign-schema tuple was accepted")
	}
	if s.Version() != 0 {
		t.Fatalf("failed AddTuples advanced the version to %d", s.Version())
	}
	if after := fingerprintSession(t, s, 0, core.AlgoTopKCT); after != before {
		t.Fatalf("failed AddTuples changed deduction:\n%s\n%s", before, after)
	}
}

// TestGroundworkSessions: sessions stamped from one Groundwork behave
// exactly like independently constructed sessions.
func TestGroundworkSessions(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := core.NewGroundwork(ie.Schema(), im, rs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s, err := gw.NewSession(ie)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Deduce()
		if !res.CR || !res.Target.EqualTo(paperdata.Target()) {
			t.Fatalf("groundwork session %d: CR=%v target=%s", i, res.CR, res.Target)
		}
	}
	// Instances of a foreign schema are rejected.
	other := model.MustSchema("other", "x")
	oie := model.NewEntityInstance(other)
	oie.MustAdd(model.MustTuple(other, model.I(1)))
	if _, err := gw.NewSession(oie); err == nil {
		t.Fatal("groundwork accepted a foreign-schema instance")
	}
}
