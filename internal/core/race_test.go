package core_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
)

// TestSessionConcurrentUse pins the session concurrency contract under
// the race detector (CI runs internal/core with -race): the read-side
// methods — Deduce, DeduceFrom, Check and the internally concurrent
// CheckBatch — may run from any number of goroutines against one
// session, because they only read the current immutable grounding
// version and all mutable chase state lives in per-run or pooled
// engines. AddTuples runs between the concurrent phases (it is the one
// method that must not overlap the others) and the reads keep agreeing
// with the ground truth on both versions.
func TestSessionConcurrentUse(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatal(err)
	}
	// Start from a prefix so there is a delta to absorb mid-test.
	prefix := model.NewEntityInstance(ie.Schema())
	for i := 0; i < ie.Size()-1; i++ {
		prefix.MustAdd(ie.Tuple(i))
	}
	s, err := core.NewSession(prefix, im, rs)
	if err != nil {
		t.Fatal(err)
	}

	good := paperdata.Target()
	bad := paperdata.Target()
	bad.Set(paperdata.League, model.S("SL"))

	hammer := func() {
		const goroutines = 8
		const iters = 20
		var wg sync.WaitGroup
		errs := make(chan string, goroutines*iters)
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					switch (g + i) % 4 {
					case 0:
						if res := s.Deduce(); !res.CR {
							errs <- "Deduce: " + res.Conflict
							return
						}
					case 1:
						if !s.Check(good) {
							errs <- "Check rejected the true target"
							return
						}
					case 2:
						if s.Check(bad) {
							errs <- "Check accepted a bad target"
							return
						}
					case 3:
						v := s.CheckBatch([]*model.Tuple{good, bad, good}, 3)
						if !v[0] || v[1] || !v[2] {
							errs <- "CheckBatch verdicts wrong"
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}

	hammer()
	if err := s.AddTuples(ie.Tuple(ie.Size() - 1)); err != nil {
		t.Fatal(err)
	}
	hammer()
	res := s.Deduce()
	if !res.CR || !res.Target.EqualTo(paperdata.Target()) {
		t.Fatalf("after the delta: CR=%v target=%s", res.CR, res.Target)
	}
}
