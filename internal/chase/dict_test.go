package chase

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/rule"
)

// dictSchema builds a small schema + rule set for the dictionary tests.
func dictSpec(t *testing.T) (*model.Schema, *rule.Set) {
	t.Helper()
	schema := model.MustSchema("R", "a", "b")
	rules, err := rule.NewSet(schema, nil, &rule.Form1{
		RuleName: "r1",
		LHS:      []rule.Pred{rule.Prec("a")},
		RHS:      "b",
	})
	if err != nil {
		t.Fatal(err)
	}
	return schema, rules
}

// TestValueIDsStableAcrossExtend pins the append-only invariant at the
// grounding level: every tuple keeps its value ID across versions, new
// values get fresh IDs from the same dictionary, and the per-version
// value groups agree with the ID rows.
func TestValueIDsStableAcrossExtend(t *testing.T) {
	schema, rules := dictSpec(t)
	ie := model.NewEntityInstance(schema)
	for i := 0; i < 6; i++ {
		ie.MustAdd(model.MustTuple(schema, model.S(fmt.Sprintf("v%d", i%3)), model.I(int64(i%2))))
	}
	sh, err := NewShared(schema, nil, rules)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sh.NewGrounding(ie, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkGroups := func(g *Grounding) {
		t.Helper()
		for a := 0; a < g.nattr; a++ {
			for i := 0; i < g.n; i++ {
				id := g.valID[a][i]
				if id == model.NullID {
					continue
				}
				found := false
				for _, m := range g.groupFor(int32(a), id) {
					if int(m) == i {
						found = true
					}
				}
				if !found {
					t.Fatalf("tuple %d missing from its value group on attr %d", i, a)
				}
			}
		}
	}
	checkGroups(g)

	// Extend with one repeated value, one fresh value, one null.
	ng, err := g.Extend(
		model.MustTuple(schema, model.S("v0"), model.I(7)),
		model.MustTuple(schema, model.S("fresh"), model.NullValue()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if ng.dict != g.dict {
		t.Fatal("Extend switched dictionaries")
	}
	for a := 0; a < g.nattr; a++ {
		for i := 0; i < g.n; i++ {
			if ng.valID[a][i] != g.valID[a][i] {
				t.Fatalf("attr %d tuple %d changed ID %d -> %d across Extend",
					a, i, g.valID[a][i], ng.valID[a][i])
			}
		}
	}
	if got, want := ng.valID[0][6], g.valID[0][0]; got != want {
		t.Fatalf("repeated value v0 interned as %d, existing tuples carry %d", got, want)
	}
	if id := ng.valID[1][7]; id != model.NullID {
		t.Fatalf("null value carries ID %d, want 0", id)
	}
	checkGroups(ng)

	// The parent's groups must be untouched by the child's extension
	// (in-flight checkers keep reading them).
	if grp := g.groupFor(0, g.valID[0][0]); len(grp) != 2 {
		t.Fatalf("parent group for v0 has %d members after Extend, want 2", len(grp))
	}
	if grp := ng.groupFor(0, g.valID[0][0]); len(grp) != 3 {
		t.Fatalf("child group for v0 has %d members, want 3", len(grp))
	}
}

// TestSharedDictAcrossBatch grounds many instances of one Shared
// concurrently and checks they agree on every value's ID — the batch
// sharing that makes per-entity grounding stop hashing repeated
// values. Run under -race in CI, this also exercises the dictionary's
// lock-free read / serialised append protocol.
func TestSharedDictAcrossBatch(t *testing.T) {
	schema, rules := dictSpec(t)
	sh, err := NewShared(schema, nil, rules)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	ids := make([]uint32, workers) // ID of the shared value per worker
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ie := model.NewEntityInstance(schema)
			ie.MustAdd(model.MustTuple(schema, model.S("common"), model.I(int64(w))))
			ie.MustAdd(model.MustTuple(schema, model.S(fmt.Sprintf("own%d", w)), model.I(int64(w))))
			g, err := sh.NewGrounding(ie, Options{})
			if err != nil {
				panic(err)
			}
			ids[w] = g.valID[0][0]
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if ids[w] != ids[0] {
			t.Fatalf("worker %d interned \"common\" as %d, worker 0 as %d", w, ids[w], ids[0])
		}
	}
}

// TestColdTemplateDoesNotGrowDict pins the serving-session memory
// contract: checking caller-built templates with values the dictionary
// has never seen must not intern them (the dict is append-only and
// shared by every version — per-check growth would be an unbounded
// leak on a long update stream), and the verdicts must match a
// grounding that HAS seen the values.
func TestColdTemplateDoesNotGrowDict(t *testing.T) {
	schema, rules := dictSpec(t)
	ie := model.NewEntityInstance(schema)
	ie.MustAdd(model.MustTuple(schema, model.S("v0"), model.I(1)))
	ie.MustAdd(model.MustTuple(schema, model.S("v1"), model.I(2)))
	sh, err := NewShared(schema, nil, rules)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sh.NewGrounding(ie, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run(nil)
	if !res.CR {
		t.Fatal(res.Conflict)
	}
	before := sh.Dict().Size()
	for i := 0; i < 50; i++ {
		tmpl := model.MustTuple(schema, model.S(fmt.Sprintf("novel-%d", i)), model.I(int64(1000+i)))
		fresh := g.Run(tmpl) // caller-built tuple: no cached ID row
		if fresh.CR {
			// Whatever the verdict, it must agree with the same check
			// against known values' semantics: a novel value equals no
			// instance value, so only axiom-level consequences apply.
			if got := fresh.Target.At(0); !got.Equal(tmpl.At(0)) {
				t.Fatalf("template value not adopted: %s", got)
			}
		}
	}
	if after := sh.Dict().Size(); after != before {
		t.Fatalf("cold-template checks grew the dictionary %d -> %d", before, after)
	}
}

// TestCrossKindValueGrouping pins the ID semantics against the Naive
// reference on the canonicalization corners interning must respect:
// cross-kind numeric equality (I(3) vs F(3)), signed zeros, and
// numeric-looking strings staying distinct from numbers.
func TestCrossKindValueGrouping(t *testing.T) {
	schema := model.MustSchema("R", "x", "y")
	rules, err := rule.NewSet(schema, nil, &rule.Form1{
		RuleName: "corr",
		LHS:      []rule.Pred{rule.Prec("x")},
		RHS:      "y",
	})
	if err != nil {
		t.Fatal(err)
	}
	ie := model.NewEntityInstance(schema)
	ie.MustAdd(model.MustTuple(schema, model.I(3), model.S("p")))
	ie.MustAdd(model.MustTuple(schema, model.F(3), model.S("q")))   // numerically equal to I(3)
	ie.MustAdd(model.MustTuple(schema, model.S("3"), model.S("p"))) // a string, NOT the number
	ie.MustAdd(model.MustTuple(schema, model.F(0), model.S("p")))
	ie.MustAdd(model.MustTuple(schema, model.I(0), model.S("q"))) // equal to F(0)
	ie.MustAdd(model.MustTuple(schema, model.NullValue(), model.S("p")))

	spec := Spec{Ie: ie, Rules: rules}
	got, err := Deduce(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := Naive(spec, Options{}, nil)
	if got.CR != want.CR {
		t.Fatalf("CR: grounded %v, naive %v (%s)", got.CR, want.CR, got.Conflict)
	}
	if !got.CR {
		t.Fatalf("spec unexpectedly not CR: %s", got.Conflict)
	}
	for a := 0; a < schema.Arity(); a++ {
		gp, np := got.Orders.Attr(a).Pairs(), want.Orders.Attr(a).Pairs()
		if fmt.Sprint(gp) != fmt.Sprint(np) {
			t.Fatalf("attr %d orders diverge:\n grounded %v\n naive    %v", a, gp, np)
		}
	}
	if !got.Target.EqualTo(want.Target) {
		t.Fatalf("targets diverge: %s vs %s", got.Target, want.Target)
	}
	// The ID rows must group I(3) with F(3) and I(0) with F(0), keep
	// S("3") apart, and give nulls ID 0.
	g, err := NewGrounding(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.valID[0][0] != g.valID[0][1] {
		t.Fatal("I(3) and F(3) carry different IDs")
	}
	if g.valID[0][0] == g.valID[0][2] {
		t.Fatal("number 3 and string \"3\" share an ID")
	}
	if g.valID[0][3] != g.valID[0][4] {
		t.Fatal("F(0) and I(0) carry different IDs")
	}
	if g.valID[0][5] != model.NullID {
		t.Fatal("null does not carry NullID")
	}
}
