package chase

import (
	"fmt"
	"math/bits"

	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/rule"
)

// eventKind tags worklist entries.
type eventKind uint8

const (
	evPair     eventKind = iota // derive ti ⪯attr tj
	evPairMask                  // derive ti ⪯attr tj for every bit j of a word mask
	evTarget                    // instantiate te[attr] = val
	evStep                      // enforce ground step idx
)

type event struct {
	kind eventKind
	attr int32
	i, j int32 // for evPairMask, j is the word index of mask
	idx  int32
	val  model.Value
	vid  uint32 // dictionary ID of val, for evTarget events
	mask uint64 // for evPairMask: each set bit b derives i ⪯ (j<<6)+b
}

// engine is the mutable chase state shared by the base chase and by
// per-template runs. It processes a FIFO worklist of events, each of
// which is one (possibly built-in) chase step enforced atomically.
type engine struct {
	g      *Grounding
	base   bool // base mode: template-independent only — no te, no λ, no ϕ8
	pooled bool // pooled mode: buffers are retained and reset across runs

	orders *order.Set
	counts [][]int32 // per attr: for each j, #{i≠j : i ⪯ j}
	te     *model.Tuple
	// teID mirrors te as dictionary IDs (0 = still null); every target
	// equality test during a run is an integer comparison against it.
	teID   []uint32
	npred  []int32
	dead   []bool
	pushed []bool
	// form2More holds per-run re-registrations of form-2 entries that
	// advanced past their first condition (the grounding's form2 trig is
	// immutable and shared across runs). Keys are f2Key-packed.
	form2More map[uint64][]form2Entry
	// deadTouched lists the step indices marked dead this run, so a
	// pooled reset clears them without wiping the whole slice.
	deadTouched []int32

	queue []event
	head  int

	conflict     string
	stepsApplied int
}

// newEngine creates a fresh engine over empty orders (base mode).
func newEngine(g *Grounding, base bool) *engine {
	e := &engine{
		g:      g,
		base:   base,
		orders: order.NewSet(g.nattr, g.n),
		counts: make([][]int32, g.nattr),
		npred:  make([]int32, len(g.steps)),
		dead:   make([]bool, len(g.steps)),
		pushed: make([]bool, len(g.steps)),
	}
	for a := range e.counts {
		e.counts[a] = make([]int32, g.n)
	}
	for s := range g.steps {
		e.npred[s] = int32(len(g.steps[s].preds))
	}
	return e
}

// newRunEngine creates an engine that continues from the grounding's
// base snapshot. In pooled mode the engine's buffers survive drain()
// and reset() restores the base state in time proportional to the rows
// the previous run actually modified (dirty-row tracking on the order
// matrices), instead of reallocating O(nattr · n²/64) words per check.
func newRunEngine(g *Grounding, pooled bool) *engine {
	orders := g.baseOrders.Clone
	if pooled {
		orders = g.baseOrders.CloneTracked
	}
	e := &engine{
		g:      g,
		pooled: pooled,
		orders: orders(),
		counts: make([][]int32, g.nattr),
		te:     model.NewTuple(g.schema),
		teID:   make([]uint32, g.nattr),
		npred:  append([]int32(nil), g.baseNpred...),
		dead:   make([]bool, len(g.steps)),
		pushed: append([]bool(nil), g.basePushed...),
	}
	for a := range e.counts {
		e.counts[a] = append([]int32(nil), g.baseCounts[a]...)
	}
	return e
}

// reset restores a pooled engine to the grounding's base snapshot,
// reusing every buffer. Order matrices are restored via dirty-row
// tracking; the flat per-step slices are rewritten wholesale (they are
// O(n) and O(|Γ|) int32/bool copies, cheap next to the matrices).
func (e *engine) reset() {
	g := e.g
	e.orders.ResetFrom(g.baseOrders)
	for a := range e.counts {
		copy(e.counts[a], g.baseCounts[a])
	}
	copy(e.npred, g.baseNpred)
	copy(e.pushed, g.basePushed)
	for _, s := range e.deadTouched {
		e.dead[s] = false
	}
	e.deadTouched = e.deadTouched[:0]
	for a := 0; a < g.nattr; a++ {
		e.te.SetAt(a, model.Value{})
		e.teID[a] = model.NullID
	}
	clear(e.form2More)
	e.queue = e.queue[:0]
	e.head = 0
	e.conflict = ""
	e.stepsApplied = 0
}

// markDead records that step s can never fire this run.
func (e *engine) markDead(s int32) {
	if !e.dead[s] {
		e.dead[s] = true
		if e.pooled {
			e.deadTouched = append(e.deadTouched, s)
		}
	}
}

func (e *engine) pushPair(attr, i, j int32) {
	e.queue = append(e.queue, event{kind: evPair, attr: attr, i: i, j: j})
}

// pushPairMask enqueues a whole word of pairs at once: i ⪯attr (wi<<6)+b
// for every set bit b of mask. One queue entry replaces up to 64 evPair
// entries — the event-queue churn the correlation cascade used to pay
// per pair on large entities.
func (e *engine) pushPairMask(attr, i, wi int32, mask uint64) {
	e.queue = append(e.queue, event{kind: evPairMask, attr: attr, i: i, j: wi, mask: mask})
}

func (e *engine) pushTarget(attr int32, v model.Value, vid uint32) {
	e.queue = append(e.queue, event{kind: evTarget, attr: attr, val: v, vid: vid})
}

func (e *engine) pushStep(s int32) {
	if e.pushed[s] {
		return
	}
	e.pushed[s] = true
	e.queue = append(e.queue, event{kind: evStep, idx: s})
}

// drain processes the worklist to exhaustion or to the first conflict.
func (e *engine) drain() {
	for e.head < len(e.queue) && e.conflict == "" {
		ev := e.queue[e.head]
		e.head++
		switch ev.kind {
		case evPair:
			e.applyPair(ev.attr, ev.i, ev.j)
		case evPairMask:
			e.applyPairMask(ev.attr, ev.i, ev.j, ev.mask)
		case evTarget:
			e.applyTarget(ev.attr, ev.val, ev.vid)
		case evStep:
			e.applyStep(ev.idx)
		}
	}
	if e.pooled {
		// Keep the buffer: the next run refills it after reset().
		e.queue = e.queue[:0]
	} else {
		// Release the queue memory for long-lived engines.
		e.queue = nil
	}
	e.head = 0
}

func (e *engine) applyStep(s int32) {
	if e.dead[s] || e.conflict != "" {
		return
	}
	st := &e.g.steps[s]
	if st.isTarget {
		if e.base {
			// Target steps are template-dependent; the base chase never
			// schedules them, but guard against misuse.
			return
		}
		// No construction site sets isTarget today; if one ever does,
		// resolve the consequence's ID here rather than carrying a
		// field every (order) step would leave zeroed — a zero would
		// alias NullID and desync te from teID.
		e.applyTarget(st.attr, st.val, e.g.dict.Intern(st.val))
	} else {
		e.applyPair(st.attr, st.i, st.j)
	}
	e.stepsApplied++
}

// applyPair enforces ti ⪯attr tj: no-op when already derived, a conflict
// when the reverse strict pair is present, otherwise a closure-extending
// insertion whose every newly derived pair is post-processed.
func (e *engine) applyPair(attr, i, j int32) {
	if e.conflict != "" {
		return
	}
	rel := e.orders.Attr(int(attr))
	if rel.Has(int(i), int(j)) {
		return
	}
	if rel.Has(int(j), int(i)) && !e.g.valEq(attr, i, j) {
		e.conflictPair(attr, i, j)
		return
	}
	for _, d := range rel.AddDiffs(int(i), int(j)) {
		e.derivedWord(attr, rel, d.Row, int(d.Word), d.Bits)
		if e.conflict != "" {
			return
		}
	}
}

// applyPairMask expands a masked pair event bit by bit through
// applyPair; most bits are no-ops (already derived by the closure
// insertion that queued the mask), so the win is purely fewer queue
// entries, not less derivation work.
func (e *engine) applyPairMask(attr, i, wi int32, mask uint64) {
	base := wi << 6
	for m := mask; m != 0; m &= m - 1 {
		if e.conflict != "" {
			return
		}
		e.applyPair(attr, i, base+int32(bits.TrailingZeros64(m)))
	}
}

// derivedWord post-processes one word of newly derived pairs
// x ⪯attr (wi<<6)+b for each set bit b of diff — conflict detection, λ
// bookkeeping and trigger firing per bit, then correlation propagation
// for the word as a whole. It is the word-at-a-time form of the old
// per-pair derivedPair callback: the per-attribute lookups are hoisted
// out of the bit loop, and the correlation cascade enqueues one masked
// event per (rule, word) instead of one event per pair.
func (e *engine) derivedWord(attr int32, rel *order.Relation, x int32, wi int, diff uint64) {
	ids := e.g.valID[attr]
	counts := e.counts[attr]
	base := int32(wi << 6)
	nm1 := int32(e.g.n - 1)
	for d := diff; d != 0; d &= d - 1 {
		y := base + int32(bits.TrailingZeros64(d))
		if y != x {
			if rel.Has(int(y), int(x)) && ids[x] != ids[y] {
				e.conflictPair(attr, x, y)
				return
			}
			counts[y]++
			if !e.base && counts[y] == nm1 {
				// λ: y now dominates every other tuple.
				if vid := ids[y]; vid != model.NullID {
					switch cur := e.teID[attr]; {
					case cur == model.NullID:
						e.pushTarget(attr, e.g.vals[attr][y], vid)
					case cur != vid:
						e.conflict = fmt.Sprintf(
							"λ conflict on %s: maximum value %s contradicts te value %s",
							e.g.schema.Attr(int(attr)), e.g.vals[attr][y], e.te.At(int(attr)))
						return
					}
				}
			}
		}
		if e.g.hasOrderTrig {
			e.fireOrderKey(trigKey(attr, x, y))
		}
	}
	e.fireCorrWord(attr, x, wi, diff)
}

// fireOrderKey satisfies every ground-step premise waiting on the order
// fact identified by key. Triggers are layered by grounding version —
// each Extend registers only its new steps' premises — so the lookup
// consults the ancestor layers (oldest first, matching a fresh
// grounding's step-index registration order) and then the current
// version's own map; keys are version-independent (fixed bit fields,
// not scaled by n).
func (e *engine) fireOrderKey(key uint64) {
	for _, l := range e.g.ancestors {
		e.fireOrderRefs(l.orderTrig[key])
	}
	e.fireOrderRefs(e.g.orderTrig[key])
}

func (e *engine) fireOrderRefs(refs []predRef) {
	for _, ref := range refs {
		if e.dead[ref.step] {
			continue
		}
		e.npred[ref.step]--
		if e.npred[ref.step] == 0 {
			e.pushStep(ref.step)
		}
	}
}

// fireCorr propagates a derived pair through the correlated-attribute
// rules registered on attr.
func (e *engine) fireCorr(attr, x, y int32) {
	for _, cr := range e.g.corrs[attr] {
		if cr.strict && e.g.valEq(attr, x, y) {
			continue
		}
		ok := true
		for _, p := range cr.extra {
			if !e.g.evalCmpOnPair(p, x, y) {
				ok = false
				break
			}
		}
		if ok {
			e.pushPair(cr.toAttr, x, y)
		}
	}
}

// fireCorrWord propagates one word of derived pairs (x, base+b for each
// set bit b of diff) through the correlated-attribute rules: per rule,
// the bits failing the rule's premises are masked off and the survivors
// go out as a single evPairMask event. A rule with no strictness and no
// extra premises — the common shape — forwards the whole word without
// touching any bit.
func (e *engine) fireCorrWord(attr, x int32, wi int, diff uint64) {
	crs := e.g.corrs[attr]
	if len(crs) == 0 {
		return
	}
	base := int32(wi << 6)
	for ci := range crs {
		cr := &crs[ci]
		m := diff
		if cr.strict || len(cr.extra) > 0 {
			for d := diff; d != 0; d &= d - 1 {
				y := base + int32(bits.TrailingZeros64(d))
				if cr.strict && e.g.valEq(attr, x, y) {
					m &^= d & -d
					continue
				}
				for _, p := range cr.extra {
					if !e.g.evalCmpOnPair(p, x, y) {
						m &^= d & -d
						break
					}
				}
			}
		}
		if m != 0 {
			e.pushPairMask(cr.toAttr, x, int32(wi), m)
		}
	}
}

// applyTarget enforces te[attr] = v: no-op when already set to v, a
// conflict when set differently, otherwise an instantiation that fires
// the target triggers and the built-in axiom ϕ8. Equality against the
// current te value is an ID comparison (vid is v's dictionary ID).
func (e *engine) applyTarget(attr int32, v model.Value, vid uint32) {
	if e.conflict != "" || e.base {
		return
	}
	if cur := e.teID[attr]; cur != model.NullID {
		if cur != vid {
			e.conflict = fmt.Sprintf("target conflict on %s: %s vs %s",
				e.g.schema.Attr(int(attr)), e.te.At(int(attr)), v)
		}
		return
	}
	e.teID[attr] = vid
	e.te.SetAtID(int(attr), v, e.g.dict, vid)
	e.fireForm2(attr, vid)
	// Target triggers are layered by grounding version like the order
	// triggers; step indices are global across the layers, so one npred
	// array serves them all.
	for _, l := range e.g.ancestors {
		e.fireTargetRefs(l.targetTrig[attr], v, vid)
	}
	e.fireTargetRefs(e.g.targetTrig[attr], v, vid)
	if e.g.useAxioms {
		// ϕ8: every tuple is at most as accurate as the tuples whose
		// attr value equals the (now known) target value.
		group := e.g.groupFor(attr, vid)
		if len(group) > 0 {
			rel := e.orders.Attr(int(attr))
			rel.AddAllToWords(group, func(p, wi int, diff uint64) bool {
				e.derivedWord(attr, rel, int32(p), wi, diff)
				return e.conflict == ""
			})
		}
	}
}

// fireTargetRefs resolves the target premises of one trigger layer
// against the just-instantiated value: each premise either fires (and
// may complete its step) or can never be satisfied again, killing the
// step. Equality and inequality premises — the overwhelmingly common
// shapes — resolve by ID; ordering operators compare the values.
func (e *engine) fireTargetRefs(refs []predRef, v model.Value, vid uint32) {
	for _, ref := range refs {
		if e.dead[ref.step] {
			continue
		}
		p := &e.g.steps[ref.step].preds[ref.pred]
		var sat bool
		switch p.op {
		case rule.Eq:
			sat = vid == p.valID
		case rule.Ne:
			sat = vid != p.valID
		default:
			sat = p.op.Eval(v, p.val)
		}
		if sat {
			e.npred[ref.step]--
			if e.npred[ref.step] == 0 {
				e.pushStep(ref.step)
			}
		} else {
			// te[attr] will never change again, so the premise — and with
			// it the whole step — can never be satisfied.
			e.markDead(ref.step)
		}
	}
}

// fireForm2 advances the form-2 entries waiting on te[attr] taking the
// value with dictionary ID vid: each either fires its consequence,
// waits on its next condition, or dies. Keys, condition matching and
// re-registration are all integer-only.
func (e *engine) fireForm2(attr int32, vid uint32) {
	key := f2Key(attr, vid)
	entries := e.g.form2.trig[key]
	if more, ok := e.form2More[key]; ok {
		entries = append(append([]form2Entry(nil), entries...), more...)
		delete(e.form2More, key)
	}
	for _, entry := range entries {
		nextAttr, want, pending := e.g.form2.nextCond(entry, e.teID)
		switch {
		case !pending:
			tgt, val, cid := e.g.form2.consequence(e.g.im, entry)
			e.pushTarget(tgt, val, cid)
		case nextAttr < 0:
			// dead: a condition mismatched
		default:
			k := f2Key(nextAttr, want)
			if e.form2More == nil {
				e.form2More = map[uint64][]form2Entry{}
			}
			e.form2More[k] = append(e.form2More[k], entry)
		}
	}
}

func (e *engine) conflictPair(attr, i, j int32) {
	e.conflict = fmt.Sprintf(
		"order conflict on %s: tuples %d and %d are mutually more accurate with values %s vs %s",
		e.g.schema.Attr(int(attr)), i, j, e.g.vals[attr][i], e.g.vals[attr][j])
}
