package chase_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chase"
	"repro/internal/model"
	"repro/internal/rule"
)

// randSpec builds a random small specification: 1–6 tuples over 2–4
// attributes with small value domains (including nulls), a random
// master relation, and a random mix of currency, correlation,
// constant-guard and master rules. The generator deliberately produces
// both Church-Rosser and conflicting specifications.
func randSpec(rng *rand.Rand) (chase.Spec, *model.Tuple) {
	na := 2 + rng.Intn(3)
	attrs := make([]string, na)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	s := model.MustSchema("r", attrs...)

	randVal := func() model.Value {
		switch rng.Intn(5) {
		case 0:
			return model.NullValue()
		default:
			return model.I(int64(rng.Intn(4)))
		}
	}

	n := 1 + rng.Intn(6)
	ie := model.NewEntityInstance(s)
	for i := 0; i < n; i++ {
		vals := make([]model.Value, na)
		for a := range vals {
			vals[a] = randVal()
		}
		ie.MustAdd(model.MustTuple(s, vals...))
	}

	// Master relation over the first two attributes.
	ms := model.MustSchema("m", "a0", "a1")
	im := model.NewMasterRelation(ms)
	for i := 0; i < rng.Intn(3); i++ {
		im.MustAdd(model.MustTuple(ms, model.I(int64(rng.Intn(4))), model.I(int64(rng.Intn(4)))))
	}

	var rules []rule.Rule
	nr := rng.Intn(5)
	for i := 0; i < nr; i++ {
		a := attrs[rng.Intn(na)]
		b := attrs[rng.Intn(na)]
		switch rng.Intn(4) {
		case 0: // currency: t1[a] < t2[a] -> t1 ⪯a t2
			op := rule.Lt
			if rng.Intn(2) == 0 {
				op = rule.Gt // reversed currency, a conflict source
			}
			rules = append(rules, &rule.Form1{
				RuleName: fmt.Sprintf("cur%d", i),
				LHS:      []rule.Pred{rule.Cmp(rule.T1(a), op, rule.T2(a))},
				RHS:      a,
			})
		case 1: // correlation: t1 ≺a t2 -> t1 ⪯b t2
			rules = append(rules, &rule.Form1{
				RuleName: fmt.Sprintf("corr%d", i),
				LHS:      []rule.Pred{rule.Prec(a)},
				RHS:      b,
			})
		case 2: // guarded constant rule: t1[a]=c1 ∧ t2[a]=c2 -> t1 ⪯a t2
			rules = append(rules, &rule.Form1{
				RuleName: fmt.Sprintf("const%d", i),
				LHS: []rule.Pred{
					rule.Cmp(rule.T1(a), rule.Eq, rule.C(model.I(int64(rng.Intn(4))))),
					rule.Cmp(rule.T2(a), rule.Eq, rule.C(model.I(int64(rng.Intn(4))))),
				},
				RHS: a,
			})
		case 3: // master: te[a0] = tm[a0] -> te[a1] = tm[a1]
			rules = append(rules, &rule.Form2{
				RuleName:   fmt.Sprintf("m%d", i),
				Conds:      []rule.MasterCond{rule.CondMaster("a0", "a0")},
				TargetAttr: "a1",
				MasterAttr: "a1",
			})
		}
	}

	// Occasionally supply a template (candidate-check mode).
	var tpl *model.Tuple
	if rng.Intn(3) == 0 {
		tpl = model.NewTuple(s)
		for a := 0; a < na; a++ {
			if rng.Intn(2) == 0 {
				tpl.SetAt(a, model.I(int64(rng.Intn(4))))
			}
		}
	}

	rs, err := rule.NewSet(s, ms, rules...)
	if err != nil {
		panic(err)
	}
	return chase.Spec{Ie: ie, Im: im, Rules: rs}, tpl
}

// TestEngineMatchesNaive is the central differential property test: on
// random specifications the optimised engine and the reference
// implementation must agree on the Church-Rosser verdict, the deduced
// target and the derived orders.
func TestEngineMatchesNaive(t *testing.T) {
	for _, disableAxioms := range []bool{false, true} {
		name := "axioms"
		if disableAxioms {
			name = "noAxioms"
		}
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				spec, tpl := randSpec(rng)
				opts := chase.Options{DisableAxioms: disableAxioms}

				g, err := chase.NewGrounding(spec, opts)
				if err != nil {
					t.Logf("seed %d: grounding error %v", seed, err)
					return false
				}
				fast := g.Run(tpl)
				slow := chase.Naive(spec, opts, tpl)

				if fast.CR != slow.CR {
					t.Logf("seed %d: CR fast=%v (%s) slow=%v (%s)",
						seed, fast.CR, fast.Conflict, slow.CR, slow.Conflict)
					return false
				}
				if !fast.CR {
					return true
				}
				if !fast.Target.EqualTo(slow.Target) {
					t.Logf("seed %d: target fast=%s slow=%s", seed, fast.Target, slow.Target)
					return false
				}
				for a := 0; a < spec.Ie.Schema().Arity(); a++ {
					fr, sr := fast.Orders.Attr(a), slow.Orders.Attr(a)
					for i := 0; i < spec.Ie.Size(); i++ {
						for j := 0; j < spec.Ie.Size(); j++ {
							if i != j && fr.Has(i, j) != sr.Has(i, j) {
								t.Logf("seed %d: order[%d] (%d,%d) fast=%v slow=%v",
									seed, a, i, j, fr.Has(i, j), sr.Has(i, j))
								return false
							}
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestRunIdempotent: repeated runs of the same grounding with the same
// template give identical results (the grounding is immutable).
func TestRunIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec, tpl := randSpec(rng)
		g, err := chase.NewGrounding(spec, chase.Options{})
		if err != nil {
			return false
		}
		r1 := g.Run(tpl)
		r2 := g.Run(tpl)
		if r1.CR != r2.CR {
			return false
		}
		if r1.CR && !r1.Target.EqualTo(r2.Target) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestOrdersStayValid: in every Church-Rosser outcome the orders are
// transitively closed and mutual pairs only relate equal values — the
// validity invariant of Section 2.2.
func TestOrdersStayValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec, tpl := randSpec(rng)
		g, err := chase.NewGrounding(spec, chase.Options{})
		if err != nil {
			return false
		}
		res := g.Run(tpl)
		if !res.CR {
			return true
		}
		n := spec.Ie.Size()
		for a := 0; a < spec.Ie.Schema().Arity(); a++ {
			rel := res.Orders.Attr(a)
			if !rel.TransitiveOK() {
				return false
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j && rel.Mutual(i, j) &&
						!spec.Ie.Value(i, a).Equal(spec.Ie.Value(j, a)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTargetDominates: every deduced non-null target value is carried by
// a tuple that dominates all others in that attribute's order, or was
// instantiated from master data.
func TestTargetDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec, _ := randSpec(rng)
		g, err := chase.NewGrounding(spec, chase.Options{})
		if err != nil {
			return false
		}
		res := g.Run(nil)
		if !res.CR {
			return true
		}
		n := spec.Ie.Size()
		for a := 0; a < spec.Ie.Schema().Arity(); a++ {
			v := res.Target.At(a)
			if v.IsNull() {
				continue
			}
			// If the value occurs in the instance, some carrier must be
			// dominated by no conflicting maximum; verify via Max.
			m := res.Orders.Attr(a).Max()
			if m >= 0 {
				mv := spec.Ie.Value(m, a)
				if !mv.IsNull() && !mv.Equal(v) {
					return false
				}
			}
			_ = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
