package chase_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chase"
	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
)

// groundPrefix grounds the first base tuples of spec.Ie fresh and then
// absorbs the rest through Extend in the given batch sizes.
func groundPrefix(t testing.TB, spec chase.Spec, opts chase.Options, base int, batches []int) *chase.Grounding {
	t.Helper()
	ie := model.NewEntityInstance(spec.Ie.Schema())
	for i := 0; i < base; i++ {
		ie.MustAdd(spec.Ie.Tuple(i))
	}
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: spec.Im, Rules: spec.Rules}, opts)
	if err != nil {
		t.Fatalf("base grounding: %v", err)
	}
	next := base
	for _, sz := range batches {
		delta := make([]*model.Tuple, 0, sz)
		for i := 0; i < sz; i++ {
			delta = append(delta, spec.Ie.Tuple(next))
			next++
		}
		g, err = g.Extend(delta...)
		if err != nil {
			t.Fatalf("extend: %v", err)
		}
	}
	if next != spec.Ie.Size() {
		t.Fatalf("split covers %d of %d tuples", next, spec.Ie.Size())
	}
	return g
}

// sameResult compares two chase results on everything the incremental
// path promises to preserve: the CR verdict and, when CR, the deduced
// target, the terminal orders (bit for bit) and the residual step
// count. Conflict strings may legitimately differ (the first invalid
// step depends on enforcement order), so they are not compared.
func sameResult(t *testing.T, n, nattr int, fresh, inc *chase.Result) bool {
	t.Helper()
	if fresh.CR != inc.CR {
		t.Logf("CR fresh=%v (%s) incremental=%v (%s)", fresh.CR, fresh.Conflict, inc.CR, inc.Conflict)
		return false
	}
	if !fresh.CR {
		return true
	}
	if !fresh.Target.EqualTo(inc.Target) {
		t.Logf("target fresh=%s incremental=%s", fresh.Target, inc.Target)
		return false
	}
	if fresh.Steps != inc.Steps {
		t.Logf("steps fresh=%d incremental=%d", fresh.Steps, inc.Steps)
		return false
	}
	for a := 0; a < nattr; a++ {
		fr, ir := fresh.Orders.Attr(a), inc.Orders.Attr(a)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if fr.Has(i, j) != ir.Has(i, j) {
					t.Logf("order[%d] (%d,%d) fresh=%v incremental=%v", a, i, j, fr.Has(i, j), ir.Has(i, j))
					return false
				}
			}
		}
	}
	return true
}

// TestExtendMatchesFresh is the central incremental-equivalence
// property: for random specifications and random splits of the instance
// into a base plus 1–3 Extend batches, the extended grounding must
// answer every Run — from the all-null template and from a candidate
// template — exactly as a fresh grounding over the full instance does.
func TestExtendMatchesFresh(t *testing.T) {
	for _, disableAxioms := range []bool{false, true} {
		name := "axioms"
		if disableAxioms {
			name = "noAxioms"
		}
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				spec, tpl := randSpec(rng)
				n := spec.Ie.Size()
				if n < 2 {
					return true
				}
				opts := chase.Options{DisableAxioms: disableAxioms}
				fresh, err := chase.NewGrounding(spec, opts)
				if err != nil {
					t.Logf("seed %d: grounding error %v", seed, err)
					return false
				}
				// Random split: base of 1..n-1 tuples, remainder in 1–3 batches.
				base := 1 + rng.Intn(n-1)
				rest := n - base
				var batches []int
				for rest > 0 {
					sz := 1 + rng.Intn(rest)
					batches = append(batches, sz)
					rest -= sz
				}
				inc := groundPrefix(t, spec, opts, base, batches)
				if inc.Version() != len(batches) {
					t.Logf("seed %d: version %d after %d batches", seed, inc.Version(), len(batches))
					return false
				}
				nattr := spec.Ie.Schema().Arity()
				if !sameResult(t, n, nattr, fresh.Run(nil), inc.Run(nil)) {
					t.Logf("seed %d: Run(nil) diverged (base=%d batches=%v)", seed, base, batches)
					return false
				}
				if tpl != nil && !sameResult(t, n, nattr, fresh.Run(tpl), inc.Run(tpl)) {
					t.Logf("seed %d: Run(tpl) diverged (base=%d batches=%v)", seed, base, batches)
					return false
				}
				// Pooled checks against the extended version agree with the
				// fresh grounding's verdicts too.
				if tpl != nil {
					c := inc.NewChecker()
					if c.Check(tpl) != fresh.Run(tpl).CR {
						t.Logf("seed %d: pooled check diverged", seed)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestExtendLeavesParentUntouched: a grounding version is immutable —
// extending it must not change what the parent (or a checker pooled on
// the parent) answers.
func TestExtendLeavesParentUntouched(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec, tpl := randSpec(rng)
		n := spec.Ie.Size()
		if n < 2 {
			return true
		}
		base := 1 + rng.Intn(n-1)
		ie := model.NewEntityInstance(spec.Ie.Schema())
		for i := 0; i < base; i++ {
			ie.MustAdd(spec.Ie.Tuple(i))
		}
		g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: spec.Im, Rules: spec.Rules}, chase.Options{})
		if err != nil {
			return false
		}
		before := g.Run(tpl)
		checker := g.NewChecker()
		ext, err := g.Extend(spec.Ie.Tuples()[base:]...)
		if err != nil {
			t.Logf("seed %d: extend error %v", seed, err)
			return false
		}
		if ext == g || ext.Version() != 1 || g.Version() != 0 {
			return false
		}
		after := g.Run(tpl)
		if before.CR != after.CR {
			return false
		}
		if before.CR && !before.Target.EqualTo(after.Target) {
			return false
		}
		// A checker created before the extension keeps answering for the
		// old evidence.
		if tpl != nil && checker.Check(tpl) != before.CR {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestExtendPaperExample replays the running example incrementally: the
// four stat tuples arrive one at a time, and after the last one the
// deduced target is the complete tuple of Example 5 — identical to the
// batch deduction.
func TestExtendPaperExample(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatal(err)
	}
	spec := chase.Spec{Ie: ie, Im: im, Rules: rs}
	fresh, err := chase.NewGrounding(spec, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]int, ie.Size()-1)
	for i := range batches {
		batches[i] = 1
	}
	inc := groundPrefix(t, spec, chase.Options{}, 1, batches)
	if !sameResult(t, ie.Size(), ie.Schema().Arity(), fresh.Run(nil), inc.Run(nil)) {
		t.Fatal("incremental replay of the paper example diverged")
	}
	res := inc.Run(nil)
	if !res.CR || !res.Target.EqualTo(paperdata.Target()) {
		t.Fatalf("expected the Example 5 target, got CR=%v target=%s", res.CR, res.Target)
	}
}

// TestExtendIntroducesConflict: new evidence can break the Church-Rosser
// property, and the extended version must report it just like a fresh
// grounding over the full instance would.
func TestExtendIntroducesConflict(t *testing.T) {
	s := model.MustSchema("r", "a")
	rules := rule.MustSet(s, nil,
		&rule.Form1{RuleName: "up",
			LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Lt, rule.T2("a"))}, RHS: "a"},
		&rule.Form1{RuleName: "down",
			LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Gt, rule.T2("a"))}, RHS: "a"},
	)
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.I(1)))
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Rules: rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Run(nil).CR {
		t.Fatal("single tuple must be Church-Rosser")
	}
	ext, err := g.Extend(model.MustTuple(s, model.I(2)))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Run(nil).CR {
		t.Fatal("the two opposed rules must conflict on the extended instance")
	}
	if !g.Run(nil).CR {
		t.Fatal("the parent version must stay Church-Rosser")
	}
}

// TestExtendLongChain drives one entity through enough single-tuple
// deltas to cross the trigger-layer compaction threshold (32 layers)
// several times over, checking after every step that the extended
// grounding still answers exactly like a fresh grounding on the
// accumulated instance.
func TestExtendLongChain(t *testing.T) {
	s := model.MustSchema("r", "a", "b", "c")
	rules := rule.MustSet(s, nil,
		// Plain form-1 rules (not correlation-shaped), so every delta
		// registers real trigger layers.
		&rule.Form1{RuleName: "curA",
			LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Lt, rule.T2("a"))}, RHS: "a"},
		&rule.Form1{RuleName: "both",
			LHS: []rule.Pred{rule.Prec("a"), rule.Prec("b")}, RHS: "c"},
		&rule.Form1{RuleName: "curB",
			LHS: []rule.Pred{rule.Cmp(rule.T1("b"), rule.Lt, rule.T2("b"))}, RHS: "b"},
	)
	rng := rand.New(rand.NewSource(11))
	mk := func(i int) *model.Tuple {
		return model.MustTuple(s,
			model.I(int64(i)),
			model.I(int64(rng.Intn(40))),
			model.I(int64(rng.Intn(5))))
	}
	first := mk(0)
	seed := model.NewEntityInstance(s)
	seed.MustAdd(first)
	g, err := chase.NewGrounding(chase.Spec{Ie: seed, Rules: rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// full mirrors the accumulated evidence for the fresh-grounding
	// comparisons; it never aliases any grounding's own instance.
	full := model.NewEntityInstance(s)
	full.MustAdd(first)
	const steps = 80 // > 2 × maxTrigLayers compactions
	for i := 1; i <= steps; i++ {
		tp := mk(i)
		full.MustAdd(tp)
		g, err = g.Extend(tp)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if g.Version() != i {
			t.Fatalf("step %d: version %d", i, g.Version())
		}
		// Spot-check against a fresh grounding at every compaction
		// boundary and at the end (a fresh grounding per step would
		// make the test quadratic for no extra coverage).
		if i%16 != 0 && i != steps {
			continue
		}
		fresh, err := chase.NewGrounding(chase.Spec{Ie: full, Rules: rules}, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(t, full.Size(), s.Arity(), fresh.Run(nil), g.Run(nil)) {
			t.Fatalf("step %d: extended grounding diverged from fresh", i)
		}
	}
}

// TestExtendEdgeCases covers the trivial deltas: an empty Extend returns
// the receiver unchanged, and mismatched schemas are rejected.
func TestExtendEdgeCases(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatal(err)
	}
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: im, Rules: rs}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	same, err := g.Extend()
	if err != nil || same != g {
		t.Fatalf("empty Extend: got (%p, %v), want the receiver back", same, err)
	}
	other := model.MustSchema("other", "x")
	if _, err := g.Extend(model.MustTuple(other, model.I(1))); err == nil {
		t.Fatal("Extend accepted a tuple of a foreign schema")
	}
}
