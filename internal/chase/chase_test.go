package chase_test

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
)

// paperSpec builds the specification of Example 5 (stat + nba + ϕ1–ϕ11).
func paperSpec(t *testing.T) chase.Spec {
	t.Helper()
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatalf("rule set: %v", err)
	}
	return chase.Spec{Ie: ie, Im: im, Rules: rs}
}

// TestPaperExample5 is the golden test for the running example: the
// chase must be Church-Rosser and deduce the exact complete target of
// Example 5.
func TestPaperExample5(t *testing.T) {
	spec := paperSpec(t)
	res, err := chase.Deduce(spec, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	if !res.CR {
		t.Fatalf("specification should be Church-Rosser, got conflict: %s", res.Conflict)
	}
	want := paperdata.Target()
	got := res.Target
	for a := 0; a < got.Schema().Arity(); a++ {
		w, _ := want.Get(got.Schema().Attr(a))
		if !got.At(a).Equal(w) {
			t.Errorf("te[%s] = %s, want %s", got.Schema().Attr(a), got.At(a), w)
		}
	}
	if !res.Complete() {
		t.Errorf("target should be complete, got %s", got)
	}
}

// TestPaperExample6 verifies that adding ϕ12 destroys Church-Rosser.
func TestPaperExample6(t *testing.T) {
	spec := paperSpec(t)
	rs, err := spec.Rules.Append(spec.Ie.Schema(), spec.Im.Schema(), paperdata.Phi12())
	if err != nil {
		t.Fatalf("append phi12: %v", err)
	}
	spec.Rules = rs
	res, err := chase.Deduce(spec, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	if res.CR {
		t.Fatalf("specification with phi12 should not be Church-Rosser; deduced %s", res.Target)
	}
	if res.Conflict == "" {
		t.Errorf("expected a conflict description")
	}
}

// TestIncompleteWithoutPhi11 drops ϕ11: the spec stays Church-Rosser
// but the arena attribute can no longer be deduced (Section 3).
func TestIncompleteWithoutPhi11(t *testing.T) {
	spec := paperSpec(t)
	spec.Rules = spec.Rules.Filter(func(r rule.Rule) bool { return r.Name() != "phi11" })
	res, err := chase.Deduce(spec, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	if !res.CR {
		t.Fatalf("should be Church-Rosser, got %s", res.Conflict)
	}
	if res.Complete() {
		t.Fatalf("target should be incomplete without phi11")
	}
	arena, _ := res.Target.Get(paperdata.Arena)
	if !arena.IsNull() {
		t.Errorf("te[arena] = %s, want null", arena)
	}
	// Every other attribute must still be deduced.
	for _, a := range res.Target.Schema().Attrs() {
		if a == paperdata.Arena {
			continue
		}
		if v, _ := res.Target.Get(a); v.IsNull() {
			t.Errorf("te[%s] should be deduced", a)
		}
	}
}

// TestRuleFormsInteract reproduces the §7 Exp-1 observation that the two
// rule forms complement each other: neither form alone completes the
// paper's example target.
func TestRuleFormsInteract(t *testing.T) {
	for _, tc := range []struct {
		name string
		pick func(*rule.Set) *rule.Set
	}{
		{"form1 only", (*rule.Set).Form1Only},
		{"form2 only", (*rule.Set).Form2Only},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := paperSpec(t)
			spec.Rules = tc.pick(spec.Rules)
			res, err := chase.Deduce(spec, chase.Options{})
			if err != nil {
				t.Fatalf("Deduce: %v", err)
			}
			if !res.CR {
				t.Fatalf("should be Church-Rosser, got %s", res.Conflict)
			}
			if res.Complete() {
				t.Fatalf("%s should not complete the target, got %s", tc.name, res.Target)
			}
		})
	}
}

// TestCheckCandidate exercises the candidate-target check of §6.1: the
// true target passes, a target contradicting the derived orders fails.
func TestCheckCandidate(t *testing.T) {
	spec := paperSpec(t)
	g, err := chase.NewGrounding(spec, chase.Options{})
	if err != nil {
		t.Fatalf("NewGrounding: %v", err)
	}
	if res := g.Run(paperdata.Target()); !res.CR {
		t.Errorf("true target should pass check, got %s", res.Conflict)
	}

	bad := paperdata.Target()
	bad.Set(paperdata.Arena, model.S("Regions Park")) // contradicts ϕ11-derived order
	if res := g.Run(bad); res.CR {
		t.Errorf("candidate with arena=Regions Park should fail check")
	}

	bad2 := paperdata.Target()
	bad2.Set(paperdata.League, model.S("SL")) // contradicts master data
	if res := g.Run(bad2); res.CR {
		t.Errorf("candidate with league=SL should fail check")
	}

	bad3 := paperdata.Target()
	bad3.Set(paperdata.Rnds, model.I(1)) // contradicts the currency chain ϕ1
	if res := g.Run(bad3); res.CR {
		t.Errorf("candidate with rnds=1 should fail check")
	}
}

// TestRunIsRepeatable verifies a grounding can be reused: repeated runs
// with different templates are independent.
func TestRunIsRepeatable(t *testing.T) {
	spec := paperSpec(t)
	g, err := chase.NewGrounding(spec, chase.Options{})
	if err != nil {
		t.Fatalf("NewGrounding: %v", err)
	}
	r1 := g.Run(nil)
	bad := paperdata.Target()
	bad.Set(paperdata.League, model.S("SL"))
	if res := g.Run(bad); res.CR {
		t.Fatalf("bad candidate accepted")
	}
	r2 := g.Run(nil)
	if !r1.CR || !r2.CR {
		t.Fatalf("plain runs should be CR")
	}
	if !r1.Target.EqualTo(r2.Target) {
		t.Errorf("runs differ: %s vs %s", r1.Target, r2.Target)
	}
}

// TestSingletonInstance: an instance with one tuple deduces that tuple's
// non-null values via ϕ9 + λ.
func TestSingletonInstance(t *testing.T) {
	s := model.MustSchema("r", "a", "b")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("x"), model.NullValue()))
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rule.MustSet(s, nil)}, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	if !res.CR {
		t.Fatalf("singleton should be CR: %s", res.Conflict)
	}
	if v, _ := res.Target.Get("a"); !v.Equal(model.S("x")) {
		t.Errorf("te[a] = %s, want x", v)
	}
	if v, _ := res.Target.Get("b"); !v.IsNull() {
		t.Errorf("te[b] = %s, want null", v)
	}
}

// TestAgreementResolves: when all tuples agree on an attribute, ϕ9 makes
// every tuple maximal and λ instantiates the target.
func TestAgreementResolves(t *testing.T) {
	s := model.MustSchema("r", "a", "b")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("x"), model.S("p")))
	ie.MustAdd(model.MustTuple(s, model.S("x"), model.S("q")))
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rule.MustSet(s, nil)}, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	if v, _ := res.Target.Get("a"); !v.Equal(model.S("x")) {
		t.Errorf("te[a] = %s, want x", v)
	}
	if v, _ := res.Target.Get("b"); !v.IsNull() {
		t.Errorf("te[b] = %s, want null (p vs q is unresolved)", v)
	}
}

// TestNullLowest: ϕ7 resolves attributes where all but one tuple are null.
func TestNullLowest(t *testing.T) {
	s := model.MustSchema("r", "a")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.NullValue()))
	ie.MustAdd(model.MustTuple(s, model.S("v")))
	ie.MustAdd(model.MustTuple(s, model.NullValue()))
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rule.MustSet(s, nil)}, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	if v, _ := res.Target.Get("a"); !v.Equal(model.S("v")) {
		t.Errorf("te[a] = %s, want v", v)
	}
}

// TestConflictingMasters: two master tuples assigning different target
// values makes the specification non-Church-Rosser.
func TestConflictingMasters(t *testing.T) {
	s := model.MustSchema("r", "a", "b")
	ms := model.MustSchema("m", "a", "b")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("k"), model.S("x")))
	im := model.NewMasterRelation(ms)
	im.MustAdd(model.MustTuple(ms, model.S("k"), model.S("v1")))
	im.MustAdd(model.MustTuple(ms, model.S("k"), model.S("v2")))
	rs := rule.MustSet(s, ms, &rule.Form2{
		RuleName:   "m1",
		Conds:      []rule.MasterCond{rule.CondMaster("a", "a")},
		TargetAttr: "b",
		MasterAttr: "b",
	})
	res, err := chase.Deduce(chase.Spec{Ie: ie, Im: im, Rules: rs}, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	if res.CR {
		t.Fatalf("conflicting masters should not be CR, got %s", res.Target)
	}
}

// TestCyclicCurrencyConflict: two rules ordering the same pair in
// opposite directions with different values yields a conflict.
func TestCyclicCurrencyConflict(t *testing.T) {
	s := model.MustSchema("r", "a")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.I(1)))
	ie.MustAdd(model.MustTuple(s, model.I(2)))
	up := &rule.Form1{RuleName: "up",
		LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Lt, rule.T2("a"))}, RHS: "a"}
	down := &rule.Form1{RuleName: "down",
		LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Gt, rule.T2("a"))}, RHS: "a"}
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rule.MustSet(s, nil, up, down)}, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	if res.CR {
		t.Fatalf("opposite orders should conflict")
	}
}

// TestEmptyInstance: a zero-tuple instance is trivially Church-Rosser
// with an all-null target.
func TestEmptyInstance(t *testing.T) {
	s := model.MustSchema("r", "a")
	ie := model.NewEntityInstance(s)
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rule.MustSet(s, nil)}, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	if !res.CR || res.Complete() {
		t.Fatalf("empty instance: CR=%v complete=%v", res.CR, res.Complete())
	}
}

// TestDisableAxioms: with axioms off and no rules, nothing is deduced.
func TestDisableAxioms(t *testing.T) {
	s := model.MustSchema("r", "a")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("x")))
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rule.MustSet(s, nil)},
		chase.Options{DisableAxioms: true})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	if v, _ := res.Target.Get("a"); !v.IsNull() {
		t.Errorf("te[a] = %s, want null with axioms disabled", v)
	}
}

// TestNaiveAgreesOnPaperExample cross-checks the optimised engine
// against the reference implementation on the running example.
func TestNaiveAgreesOnPaperExample(t *testing.T) {
	spec := paperSpec(t)
	fast, err := chase.Deduce(spec, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	slow := chase.Naive(spec, chase.Options{}, nil)
	if fast.CR != slow.CR {
		t.Fatalf("CR disagreement: fast=%v slow=%v (%s / %s)", fast.CR, slow.CR, fast.Conflict, slow.Conflict)
	}
	if !fast.Target.EqualTo(slow.Target) {
		t.Errorf("targets differ: fast=%s slow=%s", fast.Target, slow.Target)
	}

	// And on the non-CR variant of Example 6.
	rs, _ := spec.Rules.Append(spec.Ie.Schema(), spec.Im.Schema(), paperdata.Phi12())
	spec.Rules = rs
	fast2, err := chase.Deduce(spec, chase.Options{})
	if err != nil {
		t.Fatalf("Deduce: %v", err)
	}
	slow2 := chase.Naive(spec, chase.Options{}, nil)
	if fast2.CR != slow2.CR {
		t.Fatalf("CR disagreement with phi12: fast=%v slow=%v", fast2.CR, slow2.CR)
	}
}

// TestTargetTemplateRespected: a partially filled template is kept and
// propagates through form-(2) rules.
func TestTargetTemplateRespected(t *testing.T) {
	spec := paperSpec(t)
	g, err := chase.NewGrounding(spec, chase.Options{})
	if err != nil {
		t.Fatalf("NewGrounding: %v", err)
	}
	tpl := model.NewTuple(spec.Ie.Schema())
	tpl.Set(paperdata.FN, model.S("Michael"))
	tpl.Set(paperdata.LN, model.S("Jordan"))
	res := g.Run(tpl)
	if !res.CR {
		t.Fatalf("template run should be CR: %s", res.Conflict)
	}
	if v, _ := res.Target.Get(paperdata.League); !v.Equal(model.S("NBA")) {
		t.Errorf("te[league] = %s, want NBA via master", v)
	}
}
