package chase_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/chase"
	"repro/internal/gen"
	"repro/internal/model"
)

// synSpec grounds the first entity of a small synthetic dataset.
func synSpec(t testing.TB, tuples, im, rules int) *chase.Grounding {
	t.Helper()
	cfg := gen.SynDefault()
	cfg.Tuples = tuples
	cfg.Im = im
	cfg.Rules = rules
	ds := gen.GenerateSyn(cfg)
	g, err := chase.NewGrounding(chase.Spec{
		Ie: ds.Entities[0].Instance, Im: ds.Master, Rules: ds.Rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// synCandidates builds a deterministic mix of passing and failing
// candidate templates: every null attribute of the deduced target is
// instantiated from its active domain in rotation.
func synCandidates(t testing.TB, g *chase.Grounding, count int) []*model.Tuple {
	t.Helper()
	res := g.Run(nil)
	if !res.CR {
		t.Fatalf("synthetic grounding not Church-Rosser: %s", res.Conflict)
	}
	nulls := res.Target.NullAttrs()
	if len(nulls) == 0 {
		t.Fatal("synthetic target is complete; no candidates to build")
	}
	domains := make([][]model.Value, len(nulls))
	for i, a := range nulls {
		vals, _ := model.ActiveDomain(g.Instance(), g.Master(), g.Schema().Attr(a))
		domains[i] = append(vals, model.S("⊥"))
	}
	cands := make([]*model.Tuple, count)
	for c := 0; c < count; c++ {
		tpl := res.Target.Clone()
		for i, a := range nulls {
			dom := domains[i]
			tpl.SetAt(a, dom[(c+i)%len(dom)])
		}
		cands[c] = tpl
	}
	return cands
}

// TestCheckerMatchesRun verifies a single reused checker agrees with a
// fresh Run on every candidate, in both verdict and conflict string.
func TestCheckerMatchesRun(t *testing.T) {
	g := synSpec(t, 60, 30, 40)
	cands := synCandidates(t, g, 80)
	c := g.NewChecker()
	for i, cand := range cands {
		want := g.Run(cand)
		gotConflict := c.CheckConflict(cand)
		if (gotConflict == "") != want.CR {
			t.Fatalf("candidate %d: Checker CR = %v, Run CR = %v", i, gotConflict == "", want.CR)
		}
		if gotConflict != want.Conflict {
			t.Fatalf("candidate %d: conflict %q, want %q", i, gotConflict, want.Conflict)
		}
		if want.CR && !c.Target().EqualTo(want.Target) {
			t.Fatalf("candidate %d: pooled target %s, want %s", i, c.Target(), want.Target)
		}
	}
}

// TestCheckBatchMatchesSequential verifies the concurrent batch check
// returns exactly the verdicts of sequential Runs, at several
// parallelism levels, on the synthetic generator's instances.
func TestCheckBatchMatchesSequential(t *testing.T) {
	g := synSpec(t, 50, 25, 30)
	cands := synCandidates(t, g, 120)
	want := make([]bool, len(cands))
	for i, cand := range cands {
		want[i] = g.Run(cand).CR
	}
	for _, par := range []int{0, 1, 2, 4, 8} {
		got := g.CheckBatch(cands, par)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d, candidate %d: got %v want %v", par, i, got[i], want[i])
			}
		}
	}
}

// TestGroundingConcurrentUse hammers one grounding from many goroutines
// mixing Run, pooled Check and CheckBatch; run under -race it enforces
// that Grounding is read-only after construction.
func TestGroundingConcurrentUse(t *testing.T) {
	g := synSpec(t, 40, 20, 25)
	cands := synCandidates(t, g, 32)
	want := make([]bool, len(cands))
	for i, cand := range cands {
		want[i] = g.Run(cand).CR
	}
	pool := g.Pool()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ci := (w*7 + i) % len(cands)
				switch i % 3 {
				case 0:
					if got := g.Run(cands[ci]).CR; got != want[ci] {
						errs <- fmt.Sprintf("Run(%d) = %v, want %v", ci, got, want[ci])
					}
				case 1:
					if got := pool.Check(cands[ci]); got != want[ci] {
						errs <- fmt.Sprintf("pool.Check(%d) = %v, want %v", ci, got, want[ci])
					}
				case 2:
					got := g.CheckBatch(cands[ci:ci+1], 2)
					if got[0] != want[ci] {
						errs <- fmt.Sprintf("CheckBatch(%d) = %v, want %v", ci, got[0], want[ci])
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestPooledEngineNoStateLeak is the pooling property test: a reused
// checker must give the same verdicts as fresh engines on randomized
// specifications and templates, in every interleaving order. A state
// leak (orders, counts, dead steps, te, form-2 entries surviving a
// reset) would flip some verdict.
func TestPooledEngineNoStateLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 150; iter++ {
		spec, _ := randSpec(rng)
		g, err := chase.NewGrounding(spec, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// A batch of random templates, some nil.
		tpls := make([]*model.Tuple, 12)
		for i := range tpls {
			if rng.Intn(4) == 0 {
				continue
			}
			tpl := model.NewTuple(spec.Ie.Schema())
			for a := 0; a < spec.Ie.Schema().Arity(); a++ {
				if rng.Intn(2) == 0 {
					tpl.SetAt(a, model.I(int64(rng.Intn(4))))
				}
			}
			tpls[i] = tpl
		}
		want := make([]*chase.Result, len(tpls))
		for i, tpl := range tpls {
			want[i] = g.Run(tpl)
		}
		c := g.NewChecker()
		// Two passes over the batch through one checker: the second pass
		// catches state leaking across the whole first pass.
		for pass := 0; pass < 2; pass++ {
			for i, tpl := range tpls {
				conflict := c.CheckConflict(tpl)
				if (conflict == "") != want[i].CR || conflict != want[i].Conflict {
					t.Fatalf("iter %d pass %d template %d: pooled (CR=%v, %q), fresh (CR=%v, %q)",
						iter, pass, i, conflict == "", conflict, want[i].CR, want[i].Conflict)
				}
				if want[i].CR && !c.Target().EqualTo(want[i].Target) {
					t.Fatalf("iter %d pass %d template %d: pooled target %s, fresh %s",
						iter, pass, i, c.Target(), want[i].Target)
				}
			}
		}
	}
}
