package chase

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// Checker is a reusable chase runner over a shared Grounding. Where
// Grounding.Run allocates a fresh engine — deep-cloning the base order
// matrices, O(nattr · n²/64) words — every call, a Checker keeps one
// engine alive and restores the base snapshot between runs by rewriting
// only the rows the previous run touched. The top-k algorithms issue
// thousands of checks per entity against one grounding, which is what
// makes this reuse pay.
//
// A Checker is NOT safe for concurrent use; give each goroutine its own
// (the underlying Grounding is shared safely). Use a CheckerPool to
// hand checkers out across goroutines.
type Checker struct {
	g *Grounding
	e *engine
	// kbuf is the reusable verdict-key buffer; hit holds the cached
	// target of the last CheckConflict that was answered from the
	// verdict cache (nil when the last check actually ran).
	kbuf []byte
	hit  *model.Tuple
}

// NewChecker creates a reusable checker over g.
func (g *Grounding) NewChecker() *Checker {
	return &Checker{g: g, e: newRunEngine(g, true)}
}

// Check reports whether the specification revised with the given target
// template is Church-Rosser — the candidate check of Section 6.1. It is
// equivalent to g.Run(template).CR but reuses the checker's buffers,
// performing (almost) no allocation per call.
func (c *Checker) Check(template *model.Tuple) bool {
	return c.CheckConflict(template) == ""
}

// CheckConflict is Check with the conflict description: it returns ""
// when the revised specification is Church-Rosser and the first invalid
// step's description otherwise.
//
// Checks are memoised in the grounding version's verdict cache
// (cache.go): a template whose packed value-ID row was checked before
// against this version answers without running the chase. The verdict
// is identical either way — the check is a pure function of (version,
// ID row) — so memoisation is invisible except in VerdictCacheStats.
func (c *Checker) CheckConflict(template *model.Tuple) string {
	if c.g.baseConflict != "" {
		return c.g.baseConflict
	}
	c.hit = nil
	var key []byte
	cacheable := false
	if c.g.verdicts != nil {
		key, cacheable = c.g.verdictKey(template, c.kbuf)
		c.kbuf = key
		if cacheable {
			if ent, ok := c.g.verdicts.Get(key); ok {
				c.hit = ent.target
				return ent.conflict
			}
		}
	}
	c.e.reset()
	c.g.runWith(c.e, template)
	if cacheable {
		ent := verdictEntry{conflict: c.e.conflict}
		if ent.conflict == "" {
			ent.target = c.e.te.Clone()
		}
		c.g.verdicts.Put(key, ent)
	}
	return c.e.conflict
}

// Target returns the target tuple deduced by the last successful Check,
// cloned so it survives the checker's next run. It is only meaningful
// immediately after a Check that returned true. When that check was
// answered from the verdict cache, the returned tuple is the target
// deduced for the first Norm-equal template checked against this
// version — identical to this template's deduction up to
// model.Value.Norm (the equivalence the cache key is built on).
func (c *Checker) Target() *model.Tuple {
	if c.hit != nil {
		return c.hit.Clone()
	}
	return c.e.te.Clone()
}

// CheckerPool is a sync.Pool-backed pool of Checkers over one
// Grounding: concurrent candidate verification borrows an engine,
// runs, and returns it, so steady-state checking allocates nothing and
// the number of live engines tracks the number of goroutines actually
// checking.
type CheckerPool struct {
	g    *Grounding
	pool sync.Pool
}

// NewCheckerPool creates a pool of checkers over g.
func NewCheckerPool(g *Grounding) *CheckerPool {
	p := &CheckerPool{g: g}
	p.pool.New = func() any { return g.NewChecker() }
	return p
}

// Get borrows a checker; return it with Put when done.
func (p *CheckerPool) Get() *Checker { return p.pool.Get().(*Checker) }

// Put returns a borrowed checker to the pool.
func (p *CheckerPool) Put(c *Checker) { p.pool.Put(c) }

// Check borrows a checker for a single candidate check.
func (p *CheckerPool) Check(template *model.Tuple) bool {
	c := p.Get()
	ok := c.Check(template)
	p.Put(c)
	return ok
}

// CheckMany verifies n candidates on up to parallelism workers, each
// borrowing a pooled checker: candidate i is read via tuple(i) and its
// verdict delivered via verdict(i, ok). Workers pull indices off a
// shared counter, so one expensive check does not stall the rest. The
// callbacks must be safe for concurrent invocation on distinct indices
// (index-addressed slices are the intended use).
func (p *CheckerPool) CheckMany(parallelism, n int, tuple func(int) *model.Tuple, verdict func(int, bool)) {
	if n == 0 {
		return
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		c := p.Get()
		for i := 0; i < n; i++ {
			verdict(i, c.Check(tuple(i)))
		}
		p.Put(c)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := p.Get()
			defer p.Put(c)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				verdict(i, c.Check(tuple(i)))
			}
		}()
	}
	wg.Wait()
}

// Pool returns the grounding's shared checker pool, creating it on
// first use. All callers verifying candidates against g — the top-k
// algorithms, CheckBatch, user code — share one pool so engines are
// reused across call sites.
//
// The write to g.pool is lazy construction, made once-only by
// poolOnce; the pool is deduction machinery, not deduced state.
//
//relacc:grounding-builder
func (g *Grounding) Pool() *CheckerPool {
	g.poolOnce.Do(func() { g.pool = NewCheckerPool(g) })
	return g.pool
}

// CheckBatch verifies the candidate templates concurrently on up to
// parallelism goroutines (<= 0 means GOMAXPROCS) and returns one
// verdict per candidate, aligned with the input. Each worker borrows a
// pooled engine, so the batch allocates no per-check engine state. The
// result is identical to calling g.Run(c).CR for each candidate in
// order: checks are independent, and the grounding is never mutated.
func (g *Grounding) CheckBatch(candidates []*model.Tuple, parallelism int) []bool {
	out := make([]bool, len(candidates))
	g.Pool().CheckMany(parallelism, len(candidates),
		func(i int) *model.Tuple { return candidates[i] },
		func(i int, ok bool) { out[i] = ok })
	return out
}
