package chase_test

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/model"
	"repro/internal/rule"
)

// TestMultiOrderPredicateRule exercises the generic grounding path:
// rules with two order predicates cannot be compiled to a correlation
// trigger and must go through per-pair ground steps with counters.
func TestMultiOrderPredicateRule(t *testing.T) {
	s := model.MustSchema("r", "a", "b", "c")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.I(1), model.I(10), model.S("x")))
	ie.MustAdd(model.MustTuple(s, model.I(2), model.I(20), model.S("y")))
	ie.MustAdd(model.MustTuple(s, model.I(3), model.I(15), model.S("z")))

	rules := rule.MustSet(s, nil,
		&rule.Form1{RuleName: "curA",
			LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Lt, rule.T2("a"))}, RHS: "a"},
		&rule.Form1{RuleName: "curB",
			LHS: []rule.Pred{rule.Cmp(rule.T1("b"), rule.Lt, rule.T2("b"))}, RHS: "b"},
		// c follows only when BOTH a and b agree on the direction.
		&rule.Form1{RuleName: "both",
			LHS: []rule.Pred{rule.Prec("a"), rule.Prec("b")}, RHS: "c"},
	)
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CR {
		t.Fatalf("not CR: %s", res.Conflict)
	}
	// a-order: t0<t1<t2 by a... a values 1,2,3 → chain to t2 (a=3).
	if v, _ := res.Target.Get("a"); !v.Equal(model.I(3)) {
		t.Errorf("te[a] = %v", v)
	}
	// b-order: 10<15<20 → max is t1 (b=20).
	if v, _ := res.Target.Get("b"); !v.Equal(model.I(20)) {
		t.Errorf("te[b] = %v", v)
	}
	// c-order: pairs where both strict orders agree: (t0,t1): a:1<2 ✓
	// b:10<20 ✓ → t0 ⪯c t1; (t0,t2): a ✓, b:10<15 ✓ → t0 ⪯c t2;
	// (t1,t2): a:2<3 ✓ but b:20>15 ✗ → no pair. No c-maximum: null.
	if v, _ := res.Target.Get("c"); !v.IsNull() {
		t.Errorf("te[c] = %v, want null (no tuple dominates both orders)", v)
	}
	// The derived c-order must contain exactly the two agreeing pairs.
	rel := res.Orders.Attr(s.Index("c"))
	if !rel.Has(0, 1) || !rel.Has(0, 2) {
		t.Errorf("expected t0 ⪯c t1 and t0 ⪯c t2")
	}
	if rel.Has(1, 2) || rel.Has(2, 1) {
		t.Errorf("t1/t2 must stay unordered on c")
	}
}

// TestTargetComparisonPredicates: a form-1 rule keyed on te values with
// non-equality operators (the generic target-trigger path).
func TestTargetComparisonPredicates(t *testing.T) {
	s := model.MustSchema("r", "grade", "tier")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.I(7), model.S("gold")))
	ie.MustAdd(model.MustTuple(s, model.I(7), model.S("silver")))

	// Once te[grade] is known and exceeds 5, the gold tuple's tier wins.
	rules := rule.MustSet(s, nil,
		&rule.Form1{RuleName: "premium",
			LHS: []rule.Pred{
				rule.Cmp(rule.Te("grade"), rule.Gt, rule.C(model.I(5))),
				rule.Cmp(rule.T1("tier"), rule.Eq, rule.C(model.S("silver"))),
				rule.Cmp(rule.T2("tier"), rule.Eq, rule.C(model.S("gold"))),
			},
			RHS: "tier"},
	)
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CR {
		t.Fatalf("not CR: %s", res.Conflict)
	}
	// grade agrees (7) → te[grade]=7 via ϕ9+λ → premium fires → gold.
	if v, _ := res.Target.Get("tier"); !v.Equal(model.S("gold")) {
		t.Errorf("te[tier] = %v, want gold", v)
	}

	// With grade below the threshold nothing fires.
	ie2 := model.NewEntityInstance(s)
	ie2.MustAdd(model.MustTuple(s, model.I(3), model.S("gold")))
	ie2.MustAdd(model.MustTuple(s, model.I(3), model.S("silver")))
	res2, err := chase.Deduce(chase.Spec{Ie: ie2, Rules: rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res2.Target.Get("tier"); !v.IsNull() {
		t.Errorf("te[tier] = %v, want null below threshold", v)
	}
}

// TestGuardedCorrelationRule: extra constant predicates on a correlation
// rule are evaluated per pair at propagation time.
func TestGuardedCorrelationRule(t *testing.T) {
	s := model.MustSchema("r", "v", "x")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.I(1), model.S("old")))
	ie.MustAdd(model.MustTuple(s, model.I(2), model.NullValue()))
	ie.MustAdd(model.MustTuple(s, model.I(3), model.S("new")))

	rules := rule.MustSet(s, nil,
		&rule.Form1{RuleName: "cur",
			LHS: []rule.Pred{rule.Cmp(rule.T1("v"), rule.Lt, rule.T2("v"))}, RHS: "v"},
		&rule.Form1{RuleName: "corr",
			LHS: []rule.Pred{
				rule.Prec("v"),
				rule.Cmp(rule.T2("x"), rule.Ne, rule.C(model.NullValue())),
			},
			RHS: "x"},
	)
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CR {
		t.Fatalf("not CR: %s", res.Conflict)
	}
	// The null-x tuple (t1) is newer than t0 but the guard stops the
	// propagation toward it; t2 dominates: te[x] = new.
	if v, _ := res.Target.Get("x"); !v.Equal(model.S("new")) {
		t.Errorf("te[x] = %v, want new", v)
	}
	rel := res.Orders.Attr(s.Index("x"))
	if rel.Has(0, 1) {
		t.Errorf("guarded rule must not order toward a null value")
	}
}

// TestChaseStepCountBound: Proposition 1 — the chase terminates within
// O(|Ie|²) applied steps per attribute order (the engine counts at most
// the enforced rule consequences; axiom bulk work is internal).
func TestChaseStepCountBound(t *testing.T) {
	s := model.MustSchema("r", "a", "b")
	ie := model.NewEntityInstance(s)
	n := 30
	for i := 0; i < n; i++ {
		// b changes monotonically along the a-chain (a value that cycled
		// back would be a genuine order conflict — see the conflict
		// tests).
		ie.MustAdd(model.MustTuple(s, model.I(int64(i)), model.I(int64(i/10))))
	}
	rules := rule.MustSet(s, nil,
		&rule.Form1{RuleName: "cur",
			LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Lt, rule.T2("a"))}, RHS: "a"},
		&rule.Form1{RuleName: "corr",
			LHS: []rule.Pred{rule.Prec("a")}, RHS: "b"},
	)
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CR {
		t.Fatalf("not CR: %s", res.Conflict)
	}
	if res.Steps > 2*n*n*s.Arity() {
		t.Errorf("steps = %d exceeds the O(|Ie|²) budget", res.Steps)
	}
}

// TestFormOneTargetEqNull: a ground pair whose target-equality operand
// is null can never fire and is dropped at grounding.
func TestFormOneTargetEqNull(t *testing.T) {
	s := model.MustSchema("r", "a", "b")
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.S("x"), model.NullValue()))
	ie.MustAdd(model.MustTuple(s, model.S("x"), model.S("q")))
	// t2[b] = te[b]: for the pair where t2 is the null-b tuple, the
	// operand folds to null and the step is unsatisfiable; the other
	// pair can fire once te[b] is known — but nothing ever sets te[b]
	// toward "q"... actually ϕ7 resolves b to q, then the rule fires as
	// a no-op pair. The point: grounding must not panic or mis-fire.
	rules := rule.MustSet(s, nil,
		&rule.Form1{RuleName: "phi8like",
			LHS: []rule.Pred{
				rule.Cmp(rule.T2("b"), rule.Eq, rule.Te("b")),
				rule.Cmp(rule.Te("b"), rule.Ne, rule.C(model.NullValue())),
			},
			RHS: "b"},
	)
	res, err := chase.Deduce(chase.Spec{Ie: ie, Rules: rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CR {
		t.Fatalf("not CR: %s", res.Conflict)
	}
	if v, _ := res.Target.Get("b"); !v.Equal(model.S("q")) {
		t.Errorf("te[b] = %v, want q via ϕ7", v)
	}
}
