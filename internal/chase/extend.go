package chase

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rule"
)

// Extend absorbs new evidence tuples into the grounded specification
// and returns a NEW grounding version; the receiver is left exactly as
// it was, so in-flight Runs, Checkers and CheckBatches against it are
// unaffected and later checks against it keep answering for the old
// evidence. Each version is immutable after construction, which
// carries the concurrency story of a fresh grounding over to the
// incremental path; a version does NOT keep its parent alive — it
// shares only the step prefix and the (bounded) trigger layers — so
// superseded versions are garbage-collected once their readers finish.
//
// Extend is the delta form of the paper's Instantiation (Section 5):
// only the new-tuple × existing-tuple and new-tuple × new-tuple pairs
// are partially evaluated — O(‖Σ‖·d·n) ground work for d added tuples
// instead of the O(‖Σ‖·n²) full rebuild — against the same precompiled
// form-(2) index the parent uses (it depends on master data and te
// conditions only, never on Ie). The template-independent base chase
// then RESUMES from the parent's terminal state rather than replaying
// from scratch: the chase is monotone, so every consequence the parent
// enforced stays enforced, and only the new tuples' axiom seeds, the
// newly grounded steps and any old steps they newly enable are chased.
// The result answers exactly like grounding the full instance fresh:
// deduced targets, CR verdicts, terminal orders, step counts, top-k
// candidates and stats are byte-identical (enforced by extend_test.go
// and the core equivalence tests). The one deliberate exception is the
// conflict WITNESS of a non-Church-Rosser specification: which invalid
// step gets reported first depends on enforcement order, so the
// Conflict string may name a different (equally valid) culprit than a
// fresh grounding's.
//
//relacc:grounding-builder
func (g *Grounding) Extend(tuples ...*model.Tuple) (*Grounding, error) {
	if len(tuples) == 0 {
		return g, nil
	}
	ie2, err := g.ie.Extend(tuples...)
	if err != nil {
		return nil, fmt.Errorf("chase: %w", err)
	}
	if ie2.Size() >= maxTuples {
		return nil, fmt.Errorf("chase: instance would hold %d tuples, limit is %d",
			ie2.Size(), maxTuples-1)
	}
	ng := &Grounding{
		ie:        ie2,
		im:        g.im,
		rules:     g.rules,
		schema:    g.schema,
		n:         ie2.Size(),
		nattr:     g.nattr,
		useAxioms: g.useAxioms,
		// The dictionary is shared across versions: delta values are
		// interned into it (append-only, readers never blocked), so
		// every ID the parent version issued — cached in candidate
		// tuples, trigger premises, the form-(2) index — stays valid
		// here. See the DESIGN.md invariant on ID stability.
		dict: g.dict,
		// The step prefix is shared with the parent; the full slice
		// expression forces the first delta step onto a fresh backing
		// array instead of overwriting the parent's.
		steps:     g.steps[:len(g.steps):len(g.steps)],
		orderTrig: make(map[uint64][]predRef),
		corrs:     g.corrs, // instance-independent; never mutated after grounding
		form2:     g.form2,
		// The verdict cache is version-private: the successor starts
		// empty (old verdicts answer for the old evidence) but shares
		// the chain's cumulative hit/miss counters. nil stays nil.
		verdicts: g.verdicts.NextVersion(),
		version:  g.version + 1,
	}
	// Stack the parent's trigger layers (sharing the maps, not the
	// parent itself — its heavy state must stay collectable), then
	// fold them together once the stack gets deep so lookup cost stays
	// bounded on long update streams.
	ng.ancestors = append([]trigLayer(nil), g.ancestors...)
	if l, ok := g.ownLayer(); ok {
		ng.ancestors = append(ng.ancestors, l)
	}
	ng.extendValues(g)
	zero := ng.groundDelta(int32(g.n))
	if len(ng.ancestors) > maxTrigLayers {
		ng.compactTriggers()
	}
	ng.hasOrderTrig = len(ng.orderTrig) > 0
	for _, l := range ng.ancestors {
		ng.hasOrderTrig = ng.hasOrderTrig || len(l.orderTrig) > 0
	}
	ng.baseChaseDelta(g, zero)
	return ng, nil
}

// maxTrigLayers bounds the trigger-layer stack: when an Extend would
// exceed it, every layer is merged into the new version's own maps
// (O(total triggers), amortised over maxTrigLayers versions), so
// per-fact trigger lookups never walk more than maxTrigLayers+1 maps
// however many deltas an entity has absorbed.
const maxTrigLayers = 32

// compactTriggers folds the ancestor layers into this version's own
// trigger maps. Layers are merged oldest first and the own layer last,
// which keeps every key's refs sorted by step index — the same order a
// fresh grounding registers them in.
//
//relacc:grounding-builder
func (ng *Grounding) compactTriggers() {
	merged := make(map[uint64][]predRef)
	mt := make([][]predRef, ng.nattr)
	for _, l := range ng.ancestors {
		for k, refs := range l.orderTrig {
			merged[k] = append(merged[k], refs...)
		}
		for a, refs := range l.targetTrig {
			mt[a] = append(mt[a], refs...)
		}
	}
	for k, refs := range ng.orderTrig {
		merged[k] = append(merged[k], refs...)
	}
	for a, refs := range ng.targetTrig {
		mt[a] = append(mt[a], refs...)
	}
	ng.orderTrig, ng.targetTrig, ng.ancestors = merged, mt, nil
}

// Version reports how many evidence deltas this grounding has absorbed:
// 0 for a fresh grounding, incremented by each Extend.
func (g *Grounding) Version() int { return g.version }

// extendValues builds the per-version value indexes: the parent's ID
// rows are copied (they are O(nattr·n) uint32s, cheap next to any
// chase work), the new tuples' values interned into the shared
// dictionary, and the value groups extended copy-on-append — a group
// gaining no member shares its slice with the parent, so the parent's
// groups (which in-flight checkers on the old version may be reading)
// never change. The old representation's per-extend map-of-Value copy,
// which rehashed every distinct value and re-keyed every group, is
// gone entirely.
//
//relacc:grounding-builder
func (ng *Grounding) extendValues(p *Grounding) {
	n, na, oldN := ng.n, ng.nattr, p.n
	ng.valID = make([][]uint32, na)
	ng.vals = make([][]model.Value, na)
	ng.groups = make([]idGroups, na)
	ng.targetTrig = make([][]predRef, na)
	for a := 0; a < na; a++ {
		ids := make([]uint32, n)
		vs := make([]model.Value, n)
		copy(ids, p.valID[a])
		copy(vs, p.vals[a])
		for i := oldN; i < n; i++ {
			v := ng.ie.Value(i, a)
			vs[i] = v
			if !v.IsNull() {
				ids[i] = ng.dict.Intern(v)
			}
		}
		ng.valID[a], ng.vals[a] = ids, vs
		ng.groups[a] = p.groups[a].extend(ids, oldN)
	}
}

// groundDelta is Instantiation restricted to pairs involving a new
// tuple. Correlation-shaped rules compile to instance-independent
// triggers already shared with the parent, and form-(2) rules live in
// the shared index, so only plain form-(1) rules ground new steps.
func (g *Grounding) groundDelta(oldN int32) []packedPair {
	var zero []packedPair
	seen := newSparsePairSet()
	for _, r := range g.rules.Rules() {
		f, ok := r.(*rule.Form1)
		if !ok {
			continue
		}
		if _, isCorr := g.compileCorr(f); isCorr {
			continue
		}
		zero = g.groundForm1(f, zero, seen, oldN)
	}
	return zero
}

// newDeltaEngine primes a base-mode engine with the parent's terminal
// base state, extended to the new instance size: order matrices grow
// empty rows for the new tuples, λ counts and premise counters carry
// over, and the new steps start with their full premise counts.
func newDeltaEngine(ng, p *Grounding) *engine {
	e := &engine{
		g:      ng,
		base:   true,
		orders: p.baseOrders.Extend(ng.n - p.n),
		counts: make([][]int32, ng.nattr),
		npred:  make([]int32, len(ng.steps)),
		dead:   make([]bool, len(ng.steps)),
		pushed: make([]bool, len(ng.steps)),
	}
	for a := range e.counts {
		e.counts[a] = make([]int32, ng.n)
		copy(e.counts[a], p.baseCounts[a])
	}
	copy(e.npred, p.baseNpred)
	for s := len(p.steps); s < len(ng.steps); s++ {
		e.npred[s] = int32(len(ng.steps[s].preds))
	}
	copy(e.pushed, p.basePushed)
	e.stepsApplied = p.baseSteps
	return e
}

// baseChaseDelta resumes the template-independent base chase from the
// parent's terminal state. Monotonicity is what makes resumption sound:
// a chase step enforced by the parent stays enforced under more
// evidence, so only the new tuples' axiom seeds, the delta ground steps
// and old steps whose premises the new facts complete need replaying.
// New facts propagate through the layered triggers into old steps, and
// closure insertion may derive old×old pairs bridged by a new tuple —
// both paths run through the same engine the fresh base chase uses.
//
//relacc:grounding-builder
func (ng *Grounding) baseChaseDelta(p *Grounding, zeroPairs []packedPair) {
	e := newDeltaEngine(ng, p)
	if p.baseConflict != "" {
		// The old evidence already made the base chase conflict; more
		// evidence cannot retract an enforced step.
		ng.snapshotBase(e)
		ng.baseConflict = p.baseConflict
		return
	}
	if ng.useAxioms {
		ng.seedDeltaAxioms(e, p.n)
	}
	for _, pr := range zeroPairs {
		e.pushPair(pr.attr, pr.i, pr.j)
	}
	for s := len(p.steps); s < len(ng.steps); s++ {
		if e.npred[s] == 0 && !ng.steps[s].isTarget {
			e.pushStep(int32(s))
		}
	}
	e.drain()
	ng.snapshotBase(e)
}

// seedDeltaAxioms enforces ϕ7/ϕ9 for the new tuples through the regular
// worklist: unlike the fresh base chase, which seeds an empty relation
// with closure-safe bulk writes, the delta runs against a populated
// relation, so every seed goes through applyPair and gets closure
// propagation, trigger firing and correlation cascades for free.
// Already-derived pairs are no-ops.
func (ng *Grounding) seedDeltaAxioms(e *engine, oldN int) {
	for a := 0; a < ng.nattr; a++ {
		aa := int32(a)
		ids := ng.valID[a]
		for i := oldN; i < ng.n; i++ {
			e.pushPair(aa, int32(i), int32(i)) // ϕ9, reflexive
		}
		// ϕ9: each new tuple is mutually ⪯ the tuples sharing its value.
		for i := oldN; i < ng.n; i++ {
			if ids[i] == model.NullID {
				continue
			}
			for _, j := range ng.groupFor(aa, ids[i]) {
				if int(j) == i {
					continue
				}
				e.pushPair(aa, int32(i), j)
				e.pushPair(aa, j, int32(i))
			}
		}
		// ϕ7: null values have the lowest accuracy — a new null joins
		// the null clique and sits below every non-null; a new non-null
		// sits above every old null (new nulls reach it via their own
		// loop).
		for i := oldN; i < ng.n; i++ {
			ii := int32(i)
			if ids[i] == model.NullID {
				for j := 0; j < ng.n; j++ {
					if j == i {
						continue
					}
					if ids[j] == model.NullID {
						e.pushPair(aa, ii, int32(j))
						e.pushPair(aa, int32(j), ii)
					} else {
						e.pushPair(aa, ii, int32(j))
					}
				}
			} else {
				for j := 0; j < oldN; j++ {
					if ids[j] == model.NullID {
						e.pushPair(aa, int32(j), ii)
					}
				}
			}
		}
	}
}

// snapshotBase freezes the engine's terminal state as this version's
// base snapshot.
//
//relacc:grounding-builder
func (g *Grounding) snapshotBase(e *engine) {
	g.baseOrders = e.orders
	g.baseCounts = e.counts
	g.baseNpred = e.npred
	g.basePushed = e.pushed
	g.baseSteps = e.stepsApplied
	g.baseConflict = e.conflict
}
