package chase

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rule"
	"repro/internal/vcache"
)

// Shared is the instance-independent groundwork of a specification: the
// rule set validated against one (entity schema, master schema) pair,
// the compiled form-(2) index for that schema, master relation and rule
// set, and the schema-scoped value dictionary every grounding stamped
// from it interns into. Batch pipelines that chase many entity
// instances of the same relation build it once and stamp per-entity
// Groundings out of it, skipping rule re-validation and the
// O(‖Σ‖·|Im|) form-(2) compilation on every entity — and sharing one
// dictionary, so a value seen by any entity is hashed once per batch,
// not once per entity.
//
// A Shared is immutable after construction — except the dictionary,
// which is append-only and internally synchronised — and safe for
// concurrent use by any number of goroutines.
type Shared struct {
	schema *model.Schema
	im     *model.MasterRelation
	rules  *rule.Set
	form2  *form2Index
	dict   *model.Dict
}

// NewShared validates the rules against the schemas and precompiles the
// form-(2) index. im may be nil when the rule set has no form-(2) rules.
func NewShared(schema *model.Schema, im *model.MasterRelation, rules *rule.Set) (*Shared, error) {
	if schema == nil {
		return nil, fmt.Errorf("chase: shared groundwork needs an entity schema")
	}
	var rm *model.Schema
	if im != nil {
		rm = im.Schema()
	}
	for _, r := range rules.Rules() {
		if err := r.Validate(schema, rm); err != nil {
			return nil, err
		}
	}
	sh := &Shared{schema: schema, im: im, rules: rules}
	if im != nil {
		// The form-(2) index's trigger keys embed dictionary IDs, so the
		// index and the dictionary are built (and memoised) as a pair.
		sh.form2, sh.dict = form2IndexFor(schema, im, rules)
	} else {
		sh.form2 = &form2Index{}
		sh.dict = model.NewDict()
	}
	return sh, nil
}

// Dict returns the groundwork's value dictionary.
func (sh *Shared) Dict() *model.Dict { return sh.dict }

// Schema returns the entity schema the groundwork was built for.
func (sh *Shared) Schema() *model.Schema { return sh.schema }

// Master returns the master relation (possibly nil).
func (sh *Shared) Master() *model.MasterRelation { return sh.im }

// Rules returns the validated rule set.
func (sh *Shared) Rules() *rule.Set { return sh.rules }

// NewGrounding grounds one entity instance on the shared groundwork:
// the per-instance Instantiation (pair grounding, value indexing) and
// base chase still run, but validation and the form-(2) index are
// reused. The instance must use the exact schema the Shared was built
// for (pointer identity, as everywhere in package model).
//
//relacc:grounding-builder
func (sh *Shared) NewGrounding(ie *model.EntityInstance, opts Options) (*Grounding, error) {
	if ie == nil {
		return nil, fmt.Errorf("chase: specification has no entity instance")
	}
	if ie.Schema() != sh.schema {
		return nil, fmt.Errorf("chase: instance schema %s is not the shared schema %s",
			ie.Schema().Name(), sh.schema.Name())
	}
	if ie.Size() >= maxTuples {
		return nil, fmt.Errorf("chase: instance holds %d tuples, limit is %d", ie.Size(), maxTuples-1)
	}
	g := &Grounding{
		ie:        ie,
		im:        sh.im,
		rules:     sh.rules,
		schema:    sh.schema,
		n:         ie.Size(),
		nattr:     sh.schema.Arity(),
		useAxioms: !opts.DisableAxioms,
		orderTrig: make(map[uint64][]predRef),
		form2:     sh.form2,
		dict:      sh.dict,
	}
	if !opts.DisableVerdictCache {
		g.verdicts = vcache.New[verdictEntry](opts.VerdictCacheCap)
	}
	g.indexValues()
	zero := g.ground()
	g.hasOrderTrig = len(g.orderTrig) > 0
	g.baseChase(zero)
	return g, nil
}
