package chase

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/rule"
)

// Naive runs the chase with a direct, obviously-faithful interpretation
// of the rule semantics: it repeatedly scans every rule against every
// tuple pair (and every master tuple) until fixpoint, enforcing each
// applicable step and declaring the specification not Church-Rosser as
// soon as an enforceable step is invalid. It is exponentially slower
// than Grounding.Run and exists as the reference implementation for
// differential (property-based) testing.
func Naive(spec Spec, opts Options, template *model.Tuple) *Result {
	n := spec.Ie.Size()
	schema := spec.Ie.Schema()
	na := schema.Arity()

	rules := append([]rule.Rule(nil), spec.Rules.Rules()...)
	if !opts.DisableAxioms {
		for a := 0; a < na; a++ {
			attr := schema.Attr(a)
			rules = append(rules,
				&rule.Form1{ // ϕ7: null has the lowest accuracy
					RuleName: "axiom-null-" + attr,
					LHS: []rule.Pred{
						rule.Cmp(rule.T1(attr), rule.Eq, rule.C(model.NullValue())),
						rule.Cmp(rule.T2(attr), rule.Ne, rule.C(model.NullValue())),
					},
					RHS: attr,
				},
				&rule.Form1{ // ϕ8: the target value has the highest accuracy
					RuleName: "axiom-target-" + attr,
					LHS: []rule.Pred{
						rule.Cmp(rule.T2(attr), rule.Eq, rule.Te(attr)),
						rule.Cmp(rule.Te(attr), rule.Ne, rule.C(model.NullValue())),
					},
					RHS: attr,
				},
				&rule.Form1{ // ϕ9: equal values are mutually ⪯
					RuleName: "axiom-equal-" + attr,
					LHS: []rule.Pred{
						rule.Cmp(rule.T1(attr), rule.Eq, rule.T2(attr)),
					},
					RHS: attr,
				},
			)
		}
	}

	orders := order.NewSet(na, n)
	te := model.NewTuple(schema)
	if template != nil {
		te = template.Clone()
	}
	steps := 0

	operand := func(o rule.Operand, i, j int) model.Value {
		switch o.Kind {
		case rule.Const:
			return o.Val
		case rule.TupleAttr:
			a := schema.Index(o.Attr)
			if o.Tup == 1 {
				return spec.Ie.Value(i, a)
			}
			return spec.Ie.Value(j, a)
		case rule.TargetAttr:
			return te.At(schema.Index(o.Attr))
		}
		return model.NullValue()
	}

	// predHolds evaluates one form-(1) premise on the pair (i, j). A
	// comparison that references te holds only when the referenced
	// target attribute is defined (te[A] ≠ null is exactly the
	// definedness test); this matches the trigger semantics of the
	// incremental engine.
	predHolds := func(p rule.Pred, i, j int) bool {
		if p.Kind == rule.OrderPred {
			a := schema.Index(p.Attr)
			if !orders.Attr(a).Has(i, j) {
				return false
			}
			if p.Strict {
				return !spec.Ie.Value(i, a).Equal(spec.Ie.Value(j, a))
			}
			return true
		}
		for _, o := range []rule.Operand{p.Left, p.Right} {
			if o.Kind == rule.TargetAttr && te.At(schema.Index(o.Attr)).IsNull() {
				// te[A] op X with undefined te[A]: only "te[A] != null"
				// could sensibly hold, and it is false while undefined.
				return false
			}
		}
		return p.Op.Eval(operand(p.Left, i, j), operand(p.Right, i, j))
	}

	valEq := func(a, i, j int) bool {
		return spec.Ie.Value(i, a).Equal(spec.Ie.Value(j, a))
	}

	// setTarget enforces te[a] = v; it returns (changed, conflictMsg).
	setTarget := func(a int, v model.Value) (bool, string) {
		cur := te.At(a)
		if !cur.IsNull() {
			if cur.Equal(v) {
				return false, ""
			}
			return false, fmt.Sprintf("target conflict on %s: %s vs %s", schema.Attr(a), cur, v)
		}
		te.SetAt(a, v)
		return true, ""
	}

	// addPair enforces i ⪯a j with λ; it returns (changed, conflictMsg).
	addPair := func(a, i, j int) (bool, string) {
		rel := orders.Attr(a)
		if rel.Has(i, j) {
			return false, ""
		}
		if rel.Has(j, i) && !valEq(a, i, j) {
			return false, fmt.Sprintf("order conflict on %s: %d vs %d", schema.Attr(a), i, j)
		}
		added := rel.Add(i, j)
		for _, p := range added {
			if p.From != p.To && rel.Has(p.To, p.From) && !valEq(a, p.From, p.To) {
				return true, fmt.Sprintf("order conflict on %s: %d vs %d", schema.Attr(a), p.From, p.To)
			}
		}
		if m := rel.Max(); m >= 0 {
			if v := spec.Ie.Value(m, a); !v.IsNull() {
				if _, msg := setTarget(a, v); msg != "" {
					return true, "λ " + msg
				}
			}
		}
		return true, ""
	}

	for {
		changed := false
		for _, r := range rules {
			switch f := r.(type) {
			case *rule.Form1:
				a := schema.Index(f.RHS)
				for i := 0; i < n; i++ {
				pairs:
					for j := 0; j < n; j++ {
						for _, p := range f.LHS {
							if !predHolds(p, i, j) {
								continue pairs
							}
						}
						ch, msg := addPair(a, i, j)
						if msg != "" {
							return &Result{Conflict: fmt.Sprintf("%s: %s", f.RuleName, msg)}
						}
						if ch {
							changed = true
							steps++
						}
					}
				}
			case *rule.Form2:
				if spec.Im == nil {
					continue
				}
				rm := spec.Im.Schema()
				a := schema.Index(f.TargetAttr)
			masters:
				for _, tm := range spec.Im.Tuples() {
					v := tm.At(rm.Index(f.MasterAttr))
					if v.IsNull() {
						continue
					}
					for _, c := range f.Conds {
						if c.OnMaster {
							if !tm.At(rm.Index(c.MasterAttr)).Equal(c.Const) {
								continue masters
							}
							continue
						}
						ta := schema.Index(c.TargetAttr)
						cur := te.At(ta)
						if cur.IsNull() {
							continue masters
						}
						want := c.Const
						if !c.IsConst {
							want = tm.At(rm.Index(c.MasterAttr))
						}
						if !cur.Equal(want) {
							continue masters
						}
					}
					ch, msg := setTarget(a, v)
					if msg != "" {
						return &Result{Conflict: fmt.Sprintf("%s: %s", f.RuleName, msg)}
					}
					if ch {
						changed = true
						steps++
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return &Result{CR: true, Target: te, Orders: orders, Steps: steps}
}
