// Package chase implements the inference system for relative accuracy of
// Sections 2.2, 3 and 5 of the paper: a chase procedure that applies
// accuracy rules to an entity instance, the IsCR algorithm that decides
// the Church-Rosser property, and the computation of the deduced target
// tuple.
//
// # Semantics
//
// A specification S = (D0, Σ, Im, te0) fixes an entity instance Ie with
// initially empty accuracy orders, a rule set Σ, optional master data Im
// and an initial target template te0 (all null, or a candidate tuple when
// verifying candidates). A chase step either extends one attribute's
// order ⪯Ai with a pair and recomputes te[Ai] via the λ (maximum)
// function, or instantiates te[Ai] from a master tuple. A step is valid
// when it creates no order conflict (t1 ⪯ t2 ∧ t2 ⪯ t1 with
// t1[Ai] ≠ t2[Ai]) and never changes a non-null te value.
//
// Run simulates one maximal chase sequence, enforcing every rule
// consequence as soon as its premises hold. The specification is
// reported Church-Rosser exactly when no enforceable step is invalid,
// which by Theorem 2 of the paper (stability of a terminal chasing
// sequence) coincides with all chase orders reaching the same terminal
// instance. This is the check performed by algorithm IsCR (Fig. 4); it
// is also the `check` used to validate candidate targets in the top-k
// algorithms (Section 6.1), obtained by passing a complete template.
//
// The axioms ϕ7 (null has lowest accuracy), ϕ8 (the te value has highest
// accuracy) and ϕ9 (equal values are mutually ⪯), which the paper
// includes in every rule set, are implemented natively: ϕ7/ϕ9 seed the
// initial orders, and ϕ8 fires whenever a target attribute becomes
// known.
//
// # Performance
//
// NewGrounding performs the paper's Instantiation preprocessing once: it
// partially evaluates every rule on every tuple pair (and every master
// tuple), materialising only steps with unresolved premises, indexed by
// the facts that complete them (the structure H of Section 5, with
// counters nφ and trigger sets Φδ). Rules whose body is a single order
// predicate plus value comparisons — the common "correlated attribute"
// shape like ϕ2, ϕ4, ϕ5 — are compiled to attribute-level propagation
// triggers instead of n² ground steps. All template-independent
// consequences are chased once into a base state, so each Run only
// replays template-dependent work; this is what makes the thousands of
// candidate checks issued by the top-k algorithms affordable.
//
// On top of the shared base state, checks are pooled and parallel. A
// Checker keeps one run engine alive across checks: its buffers
// (order matrices, λ counts, premise counters, dead/pushed flags, the
// event queue and the form-2 re-registration map) are reused, and the
// base snapshot is restored between runs through dirty-row tracking
// (order.Relation.ResetFrom) — only the rows the previous run modified
// are rewritten, so a check that derives little does near-zero restore
// work instead of re-cloning O(nattr · n²/64) words. A CheckerPool
// (sync.Pool) shares such engines among goroutines, and
// Grounding.CheckBatch fans a candidate list out over a worker pool.
// The Grounding itself is immutable after NewGrounding, which is what
// makes all of this safe: any number of engines may read it
// concurrently.
//
// # Incremental evidence
//
// Evidence tuples may arrive after grounding. Grounding.Extend absorbs
// a delta without rebuilding: it instantiates only the pairs that
// involve new tuples against the same shared form-(2) index, resumes
// the template-independent base chase from the previous terminal state
// (the chase is monotone — enforced consequences stay enforced, so
// only new steps and newly enforceable old steps replay), and returns
// a NEW immutable grounding version. Immutability is per version:
// in-flight checkers keep reading the old version; the new one shares
// the old step prefix and trigger layers. Every Run, check and top-k
// answer of an extended grounding is byte-identical to a fresh
// grounding over the full instance (extend_test.go).
package chase

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/rule"
)

// Spec is a specification S = (D0, Σ, Im, te0) minus the target
// template, which is supplied per Run.
type Spec struct {
	// Ie is the entity instance; it is never mutated by the chase.
	Ie *model.EntityInstance
	// Im is the master relation; nil means no master data.
	Im *model.MasterRelation
	// Rules is the rule set Σ (axioms excluded; they are built in).
	Rules *rule.Set
}

// Options configures grounding.
type Options struct {
	// DisableAxioms turns off the built-in axioms ϕ7–ϕ9. The paper
	// includes them in every rule set; disabling is intended for tests
	// that exercise the bare rule semantics.
	DisableAxioms bool
}

// Result is the outcome of running the chase to termination.
type Result struct {
	// CR reports whether the specification (with the given template) is
	// Church-Rosser: no enforceable chase step was invalid.
	CR bool
	// Conflict describes the first invalid step when CR is false.
	Conflict string
	// Target is the deduced target tuple (meaningful when CR).
	Target *model.Tuple
	// Orders are the terminal accuracy orders (meaningful when CR).
	Orders *order.Set
	// Steps counts the residual ground steps enforced during this run.
	// Most chase work does not appear here: template-independent steps
	// are folded into the shared base state at grounding time, and the
	// built-in axioms, correlation propagations and master lookups run
	// through dedicated paths.
	Steps int
}

// Complete reports whether the run deduced a complete target.
func (r *Result) Complete() bool { return r.CR && r.Target.Complete() }

// residKind distinguishes the two trigger kinds of the index H.
type residKind uint8

const (
	residOrder  residKind = iota // the fact ti ⪯attr tj
	residTarget                  // the fact te[attr] op val
)

// resid is one unresolved premise of a ground step.
type resid struct {
	kind residKind
	attr int32
	i, j int32 // order fact
	op   rule.Op
	val  model.Value // target comparison operand
}

// groundStep is one partially evaluated rule application φ ∈ Γ.
type groundStep struct {
	ruleName string
	isTarget bool
	attr     int32
	i, j     int32       // order consequence: ti ⪯attr tj
	val      model.Value // target consequence: te[attr] = val
	preds    []resid
}

// predRef locates one premise inside one ground step.
type predRef struct {
	step int32
	pred int32
}

// form2Entry is one (form-2 rule, master row) pair awaiting its
// conditions.
type form2Entry struct {
	ruleIdx int32
	rowIdx  int32
}

// form2Key indexes a pending condition te[attr] = want. The value is
// stored normalized (model.Value.Norm) so key construction on the
// chase hot path allocates nothing.
type form2Key struct {
	attr int32
	val  model.Value
}

// compiledForm2 is a form-(2) rule with attribute references resolved to
// positions.
type compiledForm2 struct {
	name  string
	conds []compiledCond
	tgt   int32 // entity schema position of the consequence attribute
	src   int32 // master schema position of the consequence source
}

// compiledCond is one te[A] = X condition with resolved positions
// (OnMaster conditions are folded away at grounding).
type compiledCond struct {
	attr      int32 // entity schema position of A
	isConst   bool
	c         model.Value
	masterIdx int32 // master schema position of B' when not constant
}

// form2Index is the lazily-grounded form-(2) rule state. It depends only
// on the entity schema, the master relation and the rule set — not on
// the entity instance — so it is memoised and shared across the many
// per-entity groundings a dataset run creates.
type form2Index struct {
	rules []compiledForm2
	trig  map[form2Key][]form2Entry
	zero  []form2Entry // condition-free entries, enforced at Run start
}

// form2Memo is a single-slot cache of the last form2Index built,
// keyed by pointer identity of its inputs.
var form2Memo struct {
	sync.Mutex
	schema *model.Schema
	im     *model.MasterRelation
	rules  *rule.Set
	idx    *form2Index
}

// form2IndexFor returns the (possibly cached) form-2 index.
func form2IndexFor(schema *model.Schema, im *model.MasterRelation, rules *rule.Set) *form2Index {
	form2Memo.Lock()
	if form2Memo.idx != nil && form2Memo.schema == schema &&
		form2Memo.im == im && form2Memo.rules == rules {
		idx := form2Memo.idx
		form2Memo.Unlock()
		return idx
	}
	form2Memo.Unlock()

	idx := &form2Index{trig: make(map[form2Key][]form2Entry)}
	for _, r := range rules.Rules() {
		if f, ok := r.(*rule.Form2); ok {
			idx.ground(schema, im, f)
		}
	}
	form2Memo.Lock()
	form2Memo.schema, form2Memo.im, form2Memo.rules, form2Memo.idx = schema, im, rules, idx
	form2Memo.Unlock()
	return idx
}

// corrRule is a compiled correlated-attribute rule: when a pair is
// derived on fromAttr (strict: and the values differ), and the extra
// value predicates hold on the pair, the same pair is derived on toAttr.
type corrRule struct {
	ruleName string
	fromAttr int32
	toAttr   int32
	strict   bool
	extra    []rule.Pred // tuple/const comparison predicates only
}

// Grounding is the reusable, immutable product of Instantiation plus the
// template-independent base chase. Create one with NewGrounding; run the
// template-dependent part with Run; absorb new evidence with Extend,
// which returns a new immutable version and leaves the receiver as it
// was.
//
// A Grounding is read-only after construction: Run, Checker.Check,
// CheckBatch and Extend never mutate it, so any number of goroutines
// may issue checks against the same Grounding concurrently (enforced by
// the race tests in pool_test.go). All mutable chase state lives in
// per-run engines; the only internal synchronisation is the lazily
// created checker pool.
type Grounding struct {
	ie        *model.EntityInstance
	im        *model.MasterRelation
	rules     *rule.Set
	schema    *model.Schema
	n         int // |Ie|
	nattr     int
	useAxioms bool

	valKey      [][]string              // [attr][tuple] equality key ("" for null)
	isNull      [][]bool                // [attr][tuple]
	valueGroups []map[model.Value][]int // [attr][normalized value] -> tuple indices
	vals        [][]model.Value         // [attr][tuple]

	steps      []groundStep
	orderTrig  map[uint64][]predRef
	targetTrig [][]predRef // [attr] -> premises te[attr] op v (form-1 only)
	corrs      [][]corrRule

	// Form-(2) rules are grounded lazily: each (rule, master row) pair
	// waits on its first unmet condition, indexed by (attr, value key);
	// when te[attr] takes that exact value the entry advances to its
	// next unmet condition or fires. This keeps Instantiation linear in
	// |Im| without materialising a ground step per master tuple, and
	// target-assignment triggers O(matching rows) instead of O(|Im|).
	form2 *form2Index

	baseOrders   *order.Set
	baseCounts   [][]int32
	baseNpred    []int32
	basePushed   []bool
	baseSteps    int
	baseConflict string

	// ancestors holds the trigger layers of earlier versions of this
	// grounding (oldest first; empty for a fresh grounding). An
	// extended version shares its ancestors' immutable trigger maps,
	// the step prefix, the correlation rules and the form-(2) index,
	// and registers only its delta steps' premises in its own
	// orderTrig/targetTrig — deliberately NOT a pointer to the parent
	// grounding, so a long update stream does not pin every old
	// version's heavy state (base orders, value indexes) in memory:
	// once in-flight readers finish, old versions are collectable.
	// Extend folds the layers together every maxTrigLayers versions so
	// lookups stay O(1+maxTrigLayers) regardless of stream length.
	ancestors []trigLayer
	version   int
	// hasOrderTrig caches whether any layer registered an order
	// trigger, so the per-derived-pair fast path stays one branch.
	hasOrderTrig bool

	poolOnce sync.Once
	pool     *CheckerPool
}

// NewGrounding validates the rules, performs Instantiation and chases
// all template-independent consequences into a base state. Callers that
// ground many instances of one schema should build a Shared once and
// use Shared.NewGrounding instead, which skips the per-entity
// validation and form-(2) compilation this constructor performs.
func NewGrounding(spec Spec, opts Options) (*Grounding, error) {
	if spec.Ie == nil {
		return nil, fmt.Errorf("chase: specification has no entity instance")
	}
	sh, err := NewShared(spec.Ie.Schema(), spec.Im, spec.Rules)
	if err != nil {
		return nil, err
	}
	return sh.NewGrounding(spec.Ie, opts)
}

// Instance returns the entity instance the grounding was built for.
func (g *Grounding) Instance() *model.EntityInstance { return g.ie }

// Master returns the master relation (possibly nil).
func (g *Grounding) Master() *model.MasterRelation { return g.im }

// Schema returns the entity schema.
func (g *Grounding) Schema() *model.Schema { return g.schema }

// GroundSteps returns |Γ|, the number of materialised ground steps
// (zero-premise order steps are folded into the base state and not
// counted).
func (g *Grounding) GroundSteps() int { return len(g.steps) }

// Trigger keys pack (attr, i, j) into fixed bit fields rather than
// mixing in n, so a key computed by one grounding version stays valid
// for every later version of the same entity (Extend grows n). The
// widths bound instances at 2²⁴ tuples and schemas at 2¹⁶ attributes,
// far beyond the paper's scales; NewGrounding/Extend enforce the tuple
// bound.
const (
	trigTupleBits = 24
	trigTupleMask = 1<<trigTupleBits - 1
	maxTuples     = 1 << trigTupleBits
)

func trigKey(attr, i, j int32) uint64 {
	return uint64(attr)<<(2*trigTupleBits) | uint64(i)<<trigTupleBits | uint64(j)
}

func trigKeyDecode(k uint64) (attr, i, j int32) {
	return int32(k >> (2 * trigTupleBits)), int32(k >> trigTupleBits & trigTupleMask), int32(k & trigTupleMask)
}

// trigLayer is one grounding version's trigger registrations. Layers
// are immutable once the version is built; extended versions stack
// them and engines consult every layer (step indices are global across
// the version chain, so one premise-counter array serves all layers).
type trigLayer struct {
	orderTrig  map[uint64][]predRef
	targetTrig [][]predRef
}

// ownLayer returns this version's trigger registrations as a layer and
// whether it holds any trigger at all (empty layers are not stacked).
func (g *Grounding) ownLayer() (trigLayer, bool) {
	has := len(g.orderTrig) > 0
	if !has {
		for _, refs := range g.targetTrig {
			if len(refs) > 0 {
				has = true
				break
			}
		}
	}
	return trigLayer{orderTrig: g.orderTrig, targetTrig: g.targetTrig}, has
}

func (g *Grounding) indexValues() {
	n, na := g.n, g.nattr
	g.valKey = make([][]string, na)
	g.isNull = make([][]bool, na)
	g.vals = make([][]model.Value, na)
	g.valueGroups = make([]map[model.Value][]int, na)
	g.targetTrig = make([][]predRef, na)
	g.corrs = make([][]corrRule, na)
	for a := 0; a < na; a++ {
		g.valKey[a] = make([]string, n)
		g.isNull[a] = make([]bool, n)
		g.vals[a] = make([]model.Value, n)
		g.valueGroups[a] = make(map[model.Value][]int)
		for i := 0; i < n; i++ {
			v := g.ie.Value(i, a)
			g.vals[a][i] = v
			if v.IsNull() {
				g.isNull[a][i] = true
				g.valKey[a][i] = ""
				continue
			}
			g.valKey[a][i] = v.Key()
			nv := v.Norm()
			g.valueGroups[a][nv] = append(g.valueGroups[a][nv], i)
		}
	}
}

func (g *Grounding) valEq(attr, i, j int32) bool {
	return g.valKey[attr][i] == g.valKey[attr][j] && !g.isNull[attr][i] && !g.isNull[attr][j] ||
		g.isNull[attr][i] && g.isNull[attr][j]
}

// packedPair is a zero-premise order consequence produced by grounding.
type packedPair struct {
	attr, i, j int32
}

// ground performs Instantiation: it materialises residual ground steps,
// registers triggers and correlation rules, and returns the
// zero-premise order pairs to seed the base chase with. Zero pairs are
// deduplicated across rules (rule sets often contain several rules with
// the same consequence, per the paper's Exp setup), which bounds their
// number by #attrs·|Ie|².
func (g *Grounding) ground() []packedPair {
	var zero []packedPair
	seen := newPairSet(g.nattr, g.n)
	for _, r := range g.rules.Rules() {
		switch f := r.(type) {
		case *rule.Form1:
			if cr, ok := g.compileCorr(f); ok {
				g.corrs[cr.fromAttr] = append(g.corrs[cr.fromAttr], cr)
				continue
			}
			zero = g.groundForm1(f, zero, seen, 0)
		case *rule.Form2:
			// Handled by the shared form2Index.
		}
	}
	return zero
}

// pairSet is a set of (attr, i, j) triples: a dense bitset when built
// with newPairSet (full Instantiation visits most triples), a map when
// built with newSparsePairSet (delta Instantiation visits only pairs
// involving new tuples, far fewer than attrs·n² — a dense set would
// spend more time zeroing than grounding).
type pairSet struct {
	n      int
	bits   []uint64
	sparse map[uint64]struct{}
}

func newPairSet(attrs, n int) *pairSet {
	return &pairSet{n: n, bits: make([]uint64, (attrs*n*n+63)/64)}
}

func newSparsePairSet() *pairSet {
	return &pairSet{sparse: make(map[uint64]struct{})}
}

// insert reports whether the triple was newly added.
func (ps *pairSet) insert(attr, i, j int32) bool {
	if ps.sparse != nil {
		key := trigKey(attr, i, j)
		if _, ok := ps.sparse[key]; ok {
			return false
		}
		ps.sparse[key] = struct{}{}
		return true
	}
	idx := (uint64(attr)*uint64(ps.n)+uint64(i))*uint64(ps.n) + uint64(j)
	w, b := idx>>6, uint64(1)<<(idx&63)
	if ps.bits[w]&b != 0 {
		return false
	}
	ps.bits[w] |= b
	return true
}

// compileCorr recognises the correlated-attribute rule shape: exactly
// one order predicate, no target references, and any number of
// tuple/constant comparisons.
func (g *Grounding) compileCorr(f *rule.Form1) (corrRule, bool) {
	var orderPreds []rule.Pred
	var extra []rule.Pred
	for _, p := range f.LHS {
		switch p.Kind {
		case rule.OrderPred:
			orderPreds = append(orderPreds, p)
		case rule.CmpPred:
			if p.Left.Kind == rule.TargetAttr || p.Right.Kind == rule.TargetAttr {
				return corrRule{}, false
			}
			extra = append(extra, p)
		}
	}
	if len(orderPreds) != 1 {
		return corrRule{}, false
	}
	op := orderPreds[0]
	return corrRule{
		ruleName: f.RuleName,
		fromAttr: int32(g.schema.Index(op.Attr)),
		toAttr:   int32(g.schema.Index(f.RHS)),
		strict:   op.Strict,
		extra:    extra,
	}, true
}

// evalCmpOnPair evaluates a tuple/constant comparison predicate on the
// ordered tuple pair (i, j) standing for (t1, t2).
func (g *Grounding) evalCmpOnPair(p rule.Pred, i, j int32) bool {
	get := func(o rule.Operand) model.Value {
		switch o.Kind {
		case rule.Const:
			return o.Val
		case rule.TupleAttr:
			a := int32(g.schema.Index(o.Attr))
			if o.Tup == 1 {
				return g.vals[a][i]
			}
			return g.vals[a][j]
		}
		return model.NullValue()
	}
	return p.Op.Eval(get(p.Left), get(p.Right))
}

// groundForm1 materialises the ground steps of one form-(1) rule. Only
// pairs (i, j) with i >= oldN or j >= oldN are visited: a fresh
// grounding passes oldN == 0 (all pairs), while delta Instantiation
// passes the previous instance size so the work is the new-tuple ×
// existing-tuple and new-tuple × new-tuple pairs — O(‖Σ‖·d·n) for d
// added tuples instead of the full O(‖Σ‖·n²) rebuild.
func (g *Grounding) groundForm1(f *rule.Form1, zero []packedPair, seen *pairSet, oldN int32) []packedPair {
	rhs := int32(g.schema.Index(f.RHS))
	n := int32(g.n)
	for i := int32(0); i < n; i++ {
		jFrom := int32(0)
		if i < oldN {
			jFrom = oldN // old × old pairs are already grounded
		}
	pairs:
		for j := jFrom; j < n; j++ {
			var preds []resid
			for _, p := range f.LHS {
				switch p.Kind {
				case rule.OrderPred:
					a := int32(g.schema.Index(p.Attr))
					if p.Strict && g.valEq(a, i, j) {
						continue pairs // ≺ can never hold between equal values
					}
					preds = append(preds, resid{kind: residOrder, attr: a, i: i, j: j})
				case rule.CmpPred:
					tp, isTarget, sat := g.foldCmp(p, i, j)
					if isTarget {
						if tp.val.IsNull() && tp.op != rule.Ne {
							continue pairs // te[A] op null can never be satisfied
						}
						preds = append(preds, tp)
					} else if !sat {
						continue pairs
					}
				}
			}
			if len(preds) == 0 {
				if seen.insert(rhs, i, j) {
					zero = append(zero, packedPair{attr: rhs, i: i, j: j})
				}
				continue
			}
			g.addStep(groundStep{ruleName: f.RuleName, attr: rhs, i: i, j: j, preds: preds})
		}
	}
	return zero
}

// foldCmp partially evaluates a comparison predicate on the pair (i, j).
// If it references the target template it returns a target premise
// (isTarget true); otherwise it returns the truth value (sat).
func (g *Grounding) foldCmp(p rule.Pred, i, j int32) (tp resid, isTarget, sat bool) {
	eval := func(o rule.Operand) model.Value {
		switch o.Kind {
		case rule.Const:
			return o.Val
		case rule.TupleAttr:
			a := int32(g.schema.Index(o.Attr))
			if o.Tup == 1 {
				return g.vals[a][i]
			}
			return g.vals[a][j]
		}
		return model.NullValue()
	}
	switch {
	case p.Left.Kind == rule.TargetAttr:
		a := int32(g.schema.Index(p.Left.Attr))
		return resid{kind: residTarget, attr: a, op: p.Op, val: eval(p.Right)}, true, false
	case p.Right.Kind == rule.TargetAttr:
		a := int32(g.schema.Index(p.Right.Attr))
		return resid{kind: residTarget, attr: a, op: p.Op.Flip(), val: eval(p.Left)}, true, false
	default:
		return resid{}, false, p.Op.Eval(eval(p.Left), eval(p.Right))
	}
}

func (ix *form2Index) ground(schema *model.Schema, im *model.MasterRelation, f *rule.Form2) {
	rm := im.Schema()
	cf := compiledForm2{
		name: f.RuleName,
		tgt:  int32(schema.Index(f.TargetAttr)),
		src:  int32(rm.Index(f.MasterAttr)),
	}
	var onMaster []rule.MasterCond
	for _, c := range f.Conds {
		if c.OnMaster {
			onMaster = append(onMaster, c)
			continue
		}
		cc := compiledCond{attr: int32(schema.Index(c.TargetAttr)), isConst: c.IsConst, c: c.Const}
		if !c.IsConst {
			cc.masterIdx = int32(rm.Index(c.MasterAttr))
		}
		cf.conds = append(cf.conds, cc)
	}
	ruleIdx := int32(len(ix.rules))
	ix.rules = append(ix.rules, cf)

	for rowIdx, tm := range im.Tuples() {
		if tm.At(int(cf.src)).IsNull() {
			continue // cannot instantiate te with null
		}
		ok := true
		for _, c := range onMaster {
			// tm[B] = c folds on the concrete master tuple.
			if !tm.At(rm.Index(c.MasterAttr)).Equal(c.Const) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		entry := form2Entry{ruleIdx: ruleIdx, rowIdx: int32(rowIdx)}
		attr, want, pending := ix.nextCond(im, entry, nil)
		switch {
		case !pending:
			ix.zero = append(ix.zero, entry)
		case attr < 0:
			// A condition can never be satisfied (null master value).
		default:
			ix.trig[form2Key{attr, want.Norm()}] = append(
				ix.trig[form2Key{attr, want.Norm()}], entry)
		}
	}
}

// form2NextCond finds the first condition of entry not yet satisfied by
// te (nil te means nothing is known). It returns pending=false when all
// conditions hold, and the sentinel attr == -1 when some condition can
// never hold (a null master value, or a te value that already differs).
func (ix *form2Index) nextCond(im *model.MasterRelation, e form2Entry, te *model.Tuple) (attr int32, want model.Value, pending bool) {
	f := &ix.rules[e.ruleIdx]
	tm := im.Tuple(int(e.rowIdx))
	for _, c := range f.conds {
		w := c.c
		if !c.isConst {
			w = tm.At(int(c.masterIdx))
		}
		if w.IsNull() {
			return -1, model.Value{}, true // never satisfiable
		}
		if te == nil {
			return c.attr, w, true
		}
		cur := te.At(int(c.attr))
		if cur.IsNull() {
			return c.attr, w, true
		}
		if !cur.Equal(w) {
			return -1, model.Value{}, true // mismatch: dead entry
		}
	}
	return 0, model.Value{}, false
}

// consequence yields a fully matched entry's consequence.
func (ix *form2Index) consequence(im *model.MasterRelation, e form2Entry) (attr int32, val model.Value) {
	f := &ix.rules[e.ruleIdx]
	return f.tgt, im.Tuple(int(e.rowIdx)).At(int(f.src))
}

func (g *Grounding) addStep(st groundStep) {
	idx := int32(len(g.steps))
	g.steps = append(g.steps, st)
	for pi, p := range st.preds {
		ref := predRef{step: idx, pred: int32(pi)}
		switch p.kind {
		case residOrder:
			k := trigKey(p.attr, p.i, p.j)
			g.orderTrig[k] = append(g.orderTrig[k], ref)
		case residTarget:
			g.targetTrig[p.attr] = append(g.targetTrig[p.attr], ref)
		}
	}
}

// baseChase builds the initial axiom state and chases every
// template-independent consequence (zero-premise pairs, order-triggered
// steps, correlation cascades) into the base snapshot reused by Run.
func (g *Grounding) baseChase(zeroPairs []packedPair) {
	e := newEngine(g, true)
	// Seed the axiom state ϕ7 + ϕ9.
	if g.useAxioms {
		for a := 0; a < g.nattr; a++ {
			rel := e.orders.Attr(a)
			var nulls, nonNulls []int
			for i := 0; i < g.n; i++ {
				if g.isNull[a][i] {
					nulls = append(nulls, i)
				} else {
					nonNulls = append(nonNulls, i)
				}
			}
			for _, grp := range g.sortedGroups(a) {
				rel.SetClique(grp)
			}
			rel.SetClique(nulls)
			rel.SetBelow(nulls, nonNulls)
		}
	}
	// Derive column counts of the seeded state.
	for a := 0; a < g.nattr; a++ {
		for j, c := range e.orders.Attr(a).ColumnCounts() {
			e.counts[a][j] = int32(c)
		}
	}
	// Fire order triggers already satisfied by the seeded state, in
	// deterministic key order.
	keys := make([]uint64, 0, len(g.orderTrig))
	for k := range g.orderTrig {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		attr, i, j := trigKeyDecode(k)
		if e.orders.Attr(int(attr)).Has(int(i), int(j)) {
			e.fireOrderKey(k)
		}
	}
	// Fire correlation rules on the seeded pairs.
	for a := 0; a < g.nattr; a++ {
		if len(g.corrs[a]) == 0 {
			continue
		}
		aa := int32(a)
		e.orders.Attr(a).VisitPairs(func(i, j int) {
			e.fireCorr(aa, int32(i), int32(j))
		})
	}
	// Seed zero-premise pairs and already-complete order steps.
	for _, p := range zeroPairs {
		e.pushPair(p.attr, p.i, p.j)
	}
	for s := range g.steps {
		if e.npred[s] == 0 && !g.steps[s].isTarget {
			e.pushStep(int32(s))
		}
	}
	e.drain()
	g.snapshotBase(e)
}

// sortedGroups returns the value groups of attribute a in a
// deterministic order (by smallest member index).
func (g *Grounding) sortedGroups(a int) [][]int {
	groups := make([][]int, 0, len(g.valueGroups[a]))
	for _, grp := range g.valueGroups[a] {
		groups = append(groups, grp)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// Run chases the specification with the given initial target template
// and returns the terminal instance. A nil template stands for the
// all-null template of the initial accuracy instance; a complete
// template makes Run the candidate-target check of Section 6.1.
// The grounding is not mutated; Run is safe for sequential reuse.
func (g *Grounding) Run(template *model.Tuple) *Result {
	if g.baseConflict != "" {
		return &Result{CR: false, Conflict: g.baseConflict}
	}
	e := newRunEngine(g, false)
	g.runWith(e, template)
	res := &Result{
		CR:       e.conflict == "",
		Conflict: e.conflict,
		Steps:    e.stepsApplied,
	}
	if res.CR {
		res.Target = e.te
		res.Orders = e.orders
	}
	return res
}

// runWith drives the template-dependent chase on an engine primed with
// the base snapshot (fresh or pooled-and-reset).
func (g *Grounding) runWith(e *engine, template *model.Tuple) {
	if template != nil {
		for a := 0; a < g.nattr; a++ {
			if v := template.At(a); !v.IsNull() {
				e.pushTarget(int32(a), v)
			}
		}
	}
	// λ on the base state: columns that are already maximal define te.
	// A single tuple is vacuously maximal, but λ only applies once some
	// chase step has touched the attribute's order, so for n == 1 we
	// require the (reflexive) evidence of a step (axiom ϕ9 provides it).
	for a := 0; a < g.nattr; a++ {
		for j := 0; j < g.n; j++ {
			if e.counts[a][j] == int32(g.n-1) && (g.n > 1 || g.baseOrders.Attr(a).Has(j, j)) {
				if v := g.vals[a][j]; !v.IsNull() {
					e.pushTarget(int32(a), v)
				}
			}
		}
	}
	for _, entry := range g.form2.zero {
		attr, val := g.form2.consequence(g.im, entry)
		e.pushTarget(attr, val)
	}
	for s := range g.steps {
		if e.npred[s] == 0 && !e.pushed[s] {
			e.pushStep(int32(s))
		}
	}
	e.drain()
}

// Deduce is the convenience entry point matching the paper's IsCR: it
// grounds the specification and runs the chase from the all-null
// template. It returns the terminal instance when S is Church-Rosser
// and a Result with CR == false otherwise.
func Deduce(spec Spec, opts Options) (*Result, error) {
	g, err := NewGrounding(spec, opts)
	if err != nil {
		return nil, err
	}
	return g.Run(nil), nil
}
