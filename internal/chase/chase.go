// Package chase implements the inference system for relative accuracy of
// Sections 2.2, 3 and 5 of the paper: a chase procedure that applies
// accuracy rules to an entity instance, the IsCR algorithm that decides
// the Church-Rosser property, and the computation of the deduced target
// tuple.
//
// # Semantics
//
// A specification S = (D0, Σ, Im, te0) fixes an entity instance Ie with
// initially empty accuracy orders, a rule set Σ, optional master data Im
// and an initial target template te0 (all null, or a candidate tuple when
// verifying candidates). A chase step either extends one attribute's
// order ⪯Ai with a pair and recomputes te[Ai] via the λ (maximum)
// function, or instantiates te[Ai] from a master tuple. A step is valid
// when it creates no order conflict (t1 ⪯ t2 ∧ t2 ⪯ t1 with
// t1[Ai] ≠ t2[Ai]) and never changes a non-null te value.
//
// Run simulates one maximal chase sequence, enforcing every rule
// consequence as soon as its premises hold. The specification is
// reported Church-Rosser exactly when no enforceable step is invalid,
// which by Theorem 2 of the paper (stability of a terminal chasing
// sequence) coincides with all chase orders reaching the same terminal
// instance. This is the check performed by algorithm IsCR (Fig. 4); it
// is also the `check` used to validate candidate targets in the top-k
// algorithms (Section 6.1), obtained by passing a complete template.
//
// The axioms ϕ7 (null has lowest accuracy), ϕ8 (the te value has highest
// accuracy) and ϕ9 (equal values are mutually ⪯), which the paper
// includes in every rule set, are implemented natively: ϕ7/ϕ9 seed the
// initial orders, and ϕ8 fires whenever a target attribute becomes
// known.
//
// # Performance
//
// NewGrounding performs the paper's Instantiation preprocessing once: it
// partially evaluates every rule on every tuple pair (and every master
// tuple), materialising only steps with unresolved premises, indexed by
// the facts that complete them (the structure H of Section 5, with
// counters nφ and trigger sets Φδ). Rules whose body is a single order
// predicate plus value comparisons — the common "correlated attribute"
// shape like ϕ2, ϕ4, ϕ5 — are compiled to attribute-level propagation
// triggers instead of n² ground steps. All template-independent
// consequences are chased once into a base state, so each Run only
// replays template-dependent work; this is what makes the thousands of
// candidate checks issued by the top-k algorithms affordable.
//
// Values are dictionary-encoded: a schema-scoped model.Dict (owned by
// the Shared groundwork, so a whole batch shares it) interns every
// distinct value once, and the deduction core runs on dense uint32
// IDs — instance value rows, the ϕ8/ϕ9 equality classes, form-(2)
// trigger keys (packed attr<<32|valueID uint64s), target-premise
// firing and the engine's te row all compare IDs instead of hashing
// model.Value structs. Candidate templates assembled by the top-k
// search carry cached ID rows, so a check never probes the dictionary.
// IDs equate values up to model.Value.Norm — the same classes the Key
// strings define — and are append-only: Extend interns delta values
// into the same dictionary without invalidating any ID an earlier
// version issued (DESIGN.md invariant 3a).
//
// On top of the shared base state, checks are pooled and parallel. A
// Checker keeps one run engine alive across checks: its buffers
// (order matrices, λ counts, premise counters, dead/pushed flags, the
// event queue and the form-2 re-registration map) are reused, and the
// base snapshot is restored between runs through dirty-row tracking
// (order.Relation.ResetFrom) — only the rows the previous run modified
// are rewritten, so a check that derives little does near-zero restore
// work instead of re-cloning O(nattr · n²/64) words. A CheckerPool
// (sync.Pool) shares such engines among goroutines, and
// Grounding.CheckBatch fans a candidate list out over a worker pool.
// The Grounding itself is immutable after NewGrounding, which is what
// makes all of this safe: any number of engines may read it
// concurrently.
//
// # Incremental evidence
//
// Evidence tuples may arrive after grounding. Grounding.Extend absorbs
// a delta without rebuilding: it instantiates only the pairs that
// involve new tuples against the same shared form-(2) index, resumes
// the template-independent base chase from the previous terminal state
// (the chase is monotone — enforced consequences stay enforced, so
// only new steps and newly enforceable old steps replay), and returns
// a NEW immutable grounding version. Immutability is per version:
// in-flight checkers keep reading the old version; the new one shares
// the old step prefix and trigger layers. Every Run, check and top-k
// answer of an extended grounding is byte-identical to a fresh
// grounding over the full instance (extend_test.go).
package chase

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/rule"
	"repro/internal/vcache"
)

// Spec is a specification S = (D0, Σ, Im, te0) minus the target
// template, which is supplied per Run.
type Spec struct {
	// Ie is the entity instance; it is never mutated by the chase.
	Ie *model.EntityInstance
	// Im is the master relation; nil means no master data.
	Im *model.MasterRelation
	// Rules is the rule set Σ (axioms excluded; they are built in).
	Rules *rule.Set
}

// Options configures grounding.
type Options struct {
	// DisableAxioms turns off the built-in axioms ϕ7–ϕ9. The paper
	// includes them in every rule set; disabling is intended for tests
	// that exercise the bare rule semantics.
	DisableAxioms bool
	// DisableVerdictCache turns off the per-version verdict cache that
	// pooled Checkers consult before running a candidate check (see
	// cache.go). The cache is semantically invisible — cached and
	// uncached checks answer byte-identically — so disabling it is only
	// useful for measurement and for the equivalence tests that prove
	// that claim.
	DisableVerdictCache bool
	// VerdictCacheCap bounds the verdict cache's entry count: 0 means
	// vcache.DefaultCap, negative means unbounded. A full cache stops
	// admitting new entries (it never evicts), so the bound trades hit
	// rate for memory without affecting any verdict.
	VerdictCacheCap int
}

// Result is the outcome of running the chase to termination.
type Result struct {
	// CR reports whether the specification (with the given template) is
	// Church-Rosser: no enforceable chase step was invalid.
	CR bool
	// Conflict describes the first invalid step when CR is false.
	Conflict string
	// Target is the deduced target tuple (meaningful when CR).
	Target *model.Tuple
	// Orders are the terminal accuracy orders (meaningful when CR).
	Orders *order.Set
	// Steps counts the residual ground steps enforced during this run.
	// Most chase work does not appear here: template-independent steps
	// are folded into the shared base state at grounding time, and the
	// built-in axioms, correlation propagations and master lookups run
	// through dedicated paths.
	Steps int
}

// Complete reports whether the run deduced a complete target.
func (r *Result) Complete() bool { return r.CR && r.Target.Complete() }

// residKind distinguishes the two trigger kinds of the index H.
type residKind uint8

const (
	residOrder  residKind = iota // the fact ti ⪯attr tj
	residTarget                  // the fact te[attr] op val
)

// resid is one unresolved premise of a ground step.
type resid struct {
	kind  residKind
	attr  int32
	i, j  int32 // order fact
	op    rule.Op
	val   model.Value // target comparison operand
	valID uint32      // dictionary ID of val (0 = null), for Eq/Ne firing
}

// groundStep is one partially evaluated rule application φ ∈ Γ.
type groundStep struct {
	ruleName string
	isTarget bool
	attr     int32
	i, j     int32       // order consequence: ti ⪯attr tj
	val      model.Value // target consequence: te[attr] = val
	preds    []resid
}

// predRef locates one premise inside one ground step.
type predRef struct {
	step int32
	pred int32
}

// form2Entry is one (form-2 rule, master row) pair awaiting its
// conditions.
type form2Entry struct {
	ruleIdx int32
	rowIdx  int32
}

// f2Key packs a pending condition te[attr] = want into a uint64 map
// key: the attribute position in the high half, the want value's
// dictionary ID in the low half. Key construction on the chase hot
// path is two shifts — no value hashing, no allocation.
func f2Key(attr int32, valID uint32) uint64 {
	return uint64(attr)<<32 | uint64(valID)
}

// compiledForm2 is a form-(2) rule with attribute references resolved
// to positions and every master-side comparison value pre-interned.
type compiledForm2 struct {
	name  string
	conds []compiledCond
	tgt   int32 // entity schema position of the consequence attribute
	src   int32 // master schema position of the consequence source
	// condIDs[row][cond] is the dictionary ID of the value cond wants
	// te to carry when grounded on master row (0 = null master value:
	// never satisfiable); consID[row] is the ID of the consequence
	// value tm[src]. Both are filled at grounding, so condition
	// matching during a Run is pure integer comparison.
	condIDs [][]uint32
	consID  []uint32
}

// compiledCond is one te[A] = X condition with resolved positions
// (OnMaster conditions are folded away at grounding).
type compiledCond struct {
	attr      int32 // entity schema position of A
	isConst   bool
	c         model.Value
	masterIdx int32 // master schema position of B' when not constant
}

// form2Index is the lazily-grounded form-(2) rule state. It depends only
// on the entity schema, the master relation and the rule set — not on
// the entity instance — so it is memoised and shared across the many
// per-entity groundings a dataset run creates. Its trigger keys are
// f2Key-packed (attr, value-ID) pairs, so the index is bound to the
// value dictionary it was grounded with.
type form2Index struct {
	rules []compiledForm2
	trig  map[uint64][]form2Entry
	zero  []form2Entry // condition-free entries, enforced at Run start
}

// form2Memo is a single-slot cache of the last form2Index built, keyed
// by pointer identity of its inputs. The value dictionary is cached
// with the index: the index's trigger keys embed the dictionary's IDs,
// so the two only make sense as a pair.
var form2Memo struct {
	sync.Mutex
	schema *model.Schema
	im     *model.MasterRelation
	rules  *rule.Set
	idx    *form2Index
	dict   *model.Dict
}

// form2IndexFor returns the (possibly cached) form-2 index together
// with the value dictionary its trigger keys refer to.
func form2IndexFor(schema *model.Schema, im *model.MasterRelation, rules *rule.Set) (*form2Index, *model.Dict) {
	form2Memo.Lock()
	if form2Memo.idx != nil && form2Memo.schema == schema &&
		form2Memo.im == im && form2Memo.rules == rules {
		idx, dict := form2Memo.idx, form2Memo.dict
		form2Memo.Unlock()
		return idx, dict
	}
	form2Memo.Unlock()

	dict := model.NewDict()
	idx := &form2Index{trig: make(map[uint64][]form2Entry)}
	for _, r := range rules.Rules() {
		if f, ok := r.(*rule.Form2); ok {
			idx.ground(schema, im, f, dict)
		}
	}
	form2Memo.Lock()
	form2Memo.schema, form2Memo.im, form2Memo.rules = schema, im, rules
	form2Memo.idx, form2Memo.dict = idx, dict
	form2Memo.Unlock()
	return idx, dict
}

// corrRule is a compiled correlated-attribute rule: when a pair is
// derived on fromAttr (strict: and the values differ), and the extra
// value predicates hold on the pair, the same pair is derived on toAttr.
type corrRule struct {
	ruleName string
	fromAttr int32
	toAttr   int32
	strict   bool
	extra    []rule.Pred // tuple/const comparison predicates only
}

// Grounding is the reusable, immutable product of Instantiation plus the
// template-independent base chase. Create one with NewGrounding; run the
// template-dependent part with Run; absorb new evidence with Extend,
// which returns a new immutable version and leaves the receiver as it
// was.
//
// A Grounding is read-only after construction: Run, Checker.Check,
// CheckBatch and Extend never mutate it, so any number of goroutines
// may issue checks against the same Grounding concurrently (enforced by
// the race tests in pool_test.go). All mutable chase state lives in
// per-run engines; the only internal synchronisation is the lazily
// created checker pool.
type Grounding struct {
	ie        *model.EntityInstance
	im        *model.MasterRelation
	rules     *rule.Set
	schema    *model.Schema
	n         int // |Ie|
	nattr     int
	useAxioms bool

	// dict is the schema-scoped value dictionary shared by every
	// grounding stamped from one Shared (and by every version of this
	// grounding — Extend interns delta values into the same dict, and
	// the dict's append-only protocol keeps all previously issued IDs
	// valid). All hot-path value comparisons below are ID comparisons
	// against it.
	dict  *model.Dict
	valID [][]uint32      // [attr][tuple] dictionary ID (0 = null)
	vals  [][]model.Value // [attr][tuple]
	// groups[attr] indexes the non-null tuples of an attribute by value
	// ID (the paper's value-equality classes, feeding axioms ϕ8/ϕ9).
	groups []idGroups

	steps      []groundStep
	orderTrig  map[uint64][]predRef
	targetTrig [][]predRef // [attr] -> premises te[attr] op v (form-1 only)
	corrs      [][]corrRule

	// Form-(2) rules are grounded lazily: each (rule, master row) pair
	// waits on its first unmet condition, indexed by (attr, value key);
	// when te[attr] takes that exact value the entry advances to its
	// next unmet condition or fires. This keeps Instantiation linear in
	// |Im| without materialising a ground step per master tuple, and
	// target-assignment triggers O(matching rows) instead of O(|Im|).
	form2 *form2Index

	baseOrders   *order.Set
	baseCounts   [][]int32
	baseNpred    []int32
	basePushed   []bool
	baseSteps    int
	baseConflict string

	// ancestors holds the trigger layers of earlier versions of this
	// grounding (oldest first; empty for a fresh grounding). An
	// extended version shares its ancestors' immutable trigger maps,
	// the step prefix, the correlation rules and the form-(2) index,
	// and registers only its delta steps' premises in its own
	// orderTrig/targetTrig — deliberately NOT a pointer to the parent
	// grounding, so a long update stream does not pin every old
	// version's heavy state (base orders, value indexes) in memory:
	// once in-flight readers finish, old versions are collectable.
	// Extend folds the layers together every maxTrigLayers versions so
	// lookups stay O(1+maxTrigLayers) regardless of stream length.
	ancestors []trigLayer
	version   int
	// hasOrderTrig caches whether any layer registered an order
	// trigger, so the per-derived-pair fast path stays one branch.
	hasOrderTrig bool

	// verdicts memoises Checker verdicts for this version, keyed by the
	// template's packed value-ID row (cache.go). It is version-private:
	// Extend gives the successor a fresh cache (sharing only cumulative
	// counters), so entries never outlive the grounding they are valid
	// for. nil when Options.DisableVerdictCache was set.
	verdicts *vcache.Cache[verdictEntry]

	poolOnce sync.Once
	pool     *CheckerPool
}

// NewGrounding validates the rules, performs Instantiation and chases
// all template-independent consequences into a base state. Callers that
// ground many instances of one schema should build a Shared once and
// use Shared.NewGrounding instead, which skips the per-entity
// validation and form-(2) compilation this constructor performs.
func NewGrounding(spec Spec, opts Options) (*Grounding, error) {
	if spec.Ie == nil {
		return nil, fmt.Errorf("chase: specification has no entity instance")
	}
	sh, err := NewShared(spec.Ie.Schema(), spec.Im, spec.Rules)
	if err != nil {
		return nil, err
	}
	return sh.NewGrounding(spec.Ie, opts)
}

// Instance returns the entity instance the grounding was built for.
func (g *Grounding) Instance() *model.EntityInstance { return g.ie }

// Master returns the master relation (possibly nil).
func (g *Grounding) Master() *model.MasterRelation { return g.im }

// Schema returns the entity schema.
func (g *Grounding) Schema() *model.Schema { return g.schema }

// Dict returns the schema-scoped value dictionary this grounding's IDs
// refer to. It is shared by every grounding of one Shared and by every
// version produced by Extend; callers (the top-k search) use it to
// pre-intern candidate values so checks never hash a value.
func (g *Grounding) Dict() *model.Dict { return g.dict }

// GroundSteps returns |Γ|, the number of materialised ground steps
// (zero-premise order steps are folded into the base state and not
// counted).
func (g *Grounding) GroundSteps() int { return len(g.steps) }

// Trigger keys pack (attr, i, j) into fixed bit fields rather than
// mixing in n, so a key computed by one grounding version stays valid
// for every later version of the same entity (Extend grows n). The
// widths bound instances at 2²⁴ tuples and schemas at 2¹⁶ attributes,
// far beyond the paper's scales; NewGrounding/Extend enforce the tuple
// bound.
const (
	trigTupleBits = 24
	trigTupleMask = 1<<trigTupleBits - 1
	maxTuples     = 1 << trigTupleBits
)

func trigKey(attr, i, j int32) uint64 {
	return uint64(attr)<<(2*trigTupleBits) | uint64(i)<<trigTupleBits | uint64(j)
}

func trigKeyDecode(k uint64) (attr, i, j int32) {
	return int32(k >> (2 * trigTupleBits)), int32(k >> trigTupleBits & trigTupleMask), int32(k & trigTupleMask)
}

// trigLayer is one grounding version's trigger registrations. Layers
// are immutable once the version is built; extended versions stack
// them and engines consult every layer (step indices are global across
// the version chain, so one premise-counter array serves all layers).
type trigLayer struct {
	orderTrig  map[uint64][]predRef
	targetTrig [][]predRef
}

// ownLayer returns this version's trigger registrations as a layer and
// whether it holds any trigger at all (empty layers are not stacked).
func (g *Grounding) ownLayer() (trigLayer, bool) {
	has := len(g.orderTrig) > 0
	if !has {
		for _, refs := range g.targetTrig {
			if len(refs) > 0 {
				has = true
				break
			}
		}
	}
	return trigLayer{orderTrig: g.orderTrig, targetTrig: g.targetTrig}, has
}

// idGroups indexes the non-null tuples of one attribute by value ID:
// ids is sorted ascending and members[k] lists the tuple indices
// carrying ids[k], in ascending index order (the same member order the
// old map-of-Value representation produced, which the deterministic
// base-chase seeding relies on).
type idGroups struct {
	ids     []uint32
	members [][]int32
}

// find returns the tuple indices carrying value id (nil when no tuple
// does). Groups per attribute are few, so a branch-light binary search
// beats hashing a 48-byte Value — and allocates nothing.
func (gr *idGroups) find(id uint32) []int32 {
	lo, hi := 0, len(gr.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if gr.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(gr.ids) && gr.ids[lo] == id {
		return gr.members[lo]
	}
	return nil
}

// extend returns the groups over the grown ID row ids (the receiver
// covers the first oldN entries). True copy-on-append: a group gaining
// no member shares its member slice with the parent, so the parent —
// which in-flight checkers on the old grounding version may still be
// reading — is never written.
func (gr *idGroups) extend(ids []uint32, oldN int) idGroups {
	type pr struct {
		id  uint32
		idx int32
	}
	var added []pr
	for i := oldN; i < len(ids); i++ {
		if ids[i] != model.NullID {
			added = append(added, pr{ids[i], int32(i)})
		}
	}
	if len(added) == 0 {
		return *gr
	}
	sort.Slice(added, func(x, y int) bool {
		if added[x].id != added[y].id {
			return added[x].id < added[y].id
		}
		return added[x].idx < added[y].idx
	})
	grown := 0
	for k := 0; k < len(added); {
		id := added[k].id
		for k < len(added) && added[k].id == id {
			k++
		}
		grown++
	}
	out := idGroups{
		ids:     make([]uint32, 0, len(gr.ids)+grown),
		members: make([][]int32, 0, len(gr.ids)+grown),
	}
	gi, k := 0, 0
	for gi < len(gr.ids) || k < len(added) {
		switch {
		case k >= len(added) || (gi < len(gr.ids) && gr.ids[gi] < added[k].id):
			// Untouched group: share the parent's member slice.
			out.ids = append(out.ids, gr.ids[gi])
			out.members = append(out.members, gr.members[gi])
			gi++
		default:
			id := added[k].id
			start := k
			for k < len(added) && added[k].id == id {
				k++
			}
			var old []int32
			if gi < len(gr.ids) && gr.ids[gi] == id {
				old = gr.members[gi]
				gi++
			}
			// Old members (all < oldN) then new ones keeps ascending
			// tuple order; exact capacity so the slice is never shared
			// with spare room a later version could append into.
			nm := make([]int32, 0, len(old)+k-start)
			nm = append(nm, old...)
			for x := start; x < k; x++ {
				nm = append(nm, added[x].idx)
			}
			out.ids = append(out.ids, id)
			out.members = append(out.members, nm)
		}
	}
	return out
}

// buildGroups groups tuple indices by their value ID. All member
// slices share one backing array; members within a group are in
// ascending tuple order.
func buildGroups(ids []uint32) idGroups {
	idx := make([]int32, 0, len(ids))
	for i, id := range ids {
		if id != model.NullID {
			idx = append(idx, int32(i))
		}
	}
	sort.Slice(idx, func(x, y int) bool {
		a, b := ids[idx[x]], ids[idx[y]]
		if a != b {
			return a < b
		}
		return idx[x] < idx[y]
	})
	var out idGroups
	for start := 0; start < len(idx); {
		id := ids[idx[start]]
		end := start
		for end < len(idx) && ids[idx[end]] == id {
			end++
		}
		out.ids = append(out.ids, id)
		out.members = append(out.members, idx[start:end:end])
		start = end
	}
	return out
}

// indexValues builds the per-attribute value/ID indexes and position
// groups during construction.
//
//relacc:grounding-builder
func (g *Grounding) indexValues() {
	n, na := g.n, g.nattr
	g.valID = make([][]uint32, na)
	g.vals = make([][]model.Value, na)
	g.groups = make([]idGroups, na)
	g.targetTrig = make([][]predRef, na)
	g.corrs = make([][]corrRule, na)
	for a := 0; a < na; a++ {
		g.valID[a] = make([]uint32, n)
		g.vals[a] = make([]model.Value, n)
		for i := 0; i < n; i++ {
			v := g.ie.Value(i, a)
			g.vals[a][i] = v
			if !v.IsNull() {
				g.valID[a][i] = g.dict.Intern(v)
			}
		}
		g.groups[a] = buildGroups(g.valID[a])
	}
}

// groupFor returns the tuple indices whose attr value has dictionary
// ID id (the ϕ8/ϕ9 equality class of that value).
func (g *Grounding) groupFor(attr int32, id uint32) []int32 {
	return g.groups[attr].find(id)
}

// valEq reports whether tuples i and j agree on attr — both null, or
// both carrying the same interned value. One integer comparison,
// replacing the string-key comparison of the pre-dictionary code.
func (g *Grounding) valEq(attr, i, j int32) bool {
	return g.valID[attr][i] == g.valID[attr][j]
}

// packedPair is a zero-premise order consequence produced by grounding.
type packedPair struct {
	attr, i, j int32
}

// ground performs Instantiation: it materialises residual ground steps,
// registers triggers and correlation rules, and returns the
// zero-premise order pairs to seed the base chase with. Zero pairs are
// deduplicated across rules (rule sets often contain several rules with
// the same consequence, per the paper's Exp setup), which bounds their
// number by #attrs·|Ie|².
//
//relacc:grounding-builder
func (g *Grounding) ground() []packedPair {
	var zero []packedPair
	seen := newPairSet(g.nattr, g.n)
	for _, r := range g.rules.Rules() {
		switch f := r.(type) {
		case *rule.Form1:
			if cr, ok := g.compileCorr(f); ok {
				g.corrs[cr.fromAttr] = append(g.corrs[cr.fromAttr], cr)
				continue
			}
			zero = g.groundForm1(f, zero, seen, 0)
		case *rule.Form2:
			// Handled by the shared form2Index.
		}
	}
	return zero
}

// pairSet is a set of (attr, i, j) triples: a dense bitset when built
// with newPairSet (full Instantiation visits most triples), a map when
// built with newSparsePairSet (delta Instantiation visits only pairs
// involving new tuples, far fewer than attrs·n² — a dense set would
// spend more time zeroing than grounding).
type pairSet struct {
	n      int
	bits   []uint64
	sparse map[uint64]struct{}
}

func newPairSet(attrs, n int) *pairSet {
	return &pairSet{n: n, bits: make([]uint64, (attrs*n*n+63)/64)}
}

func newSparsePairSet() *pairSet {
	return &pairSet{sparse: make(map[uint64]struct{})}
}

// insert reports whether the triple was newly added.
func (ps *pairSet) insert(attr, i, j int32) bool {
	if ps.sparse != nil {
		key := trigKey(attr, i, j)
		if _, ok := ps.sparse[key]; ok {
			return false
		}
		ps.sparse[key] = struct{}{}
		return true
	}
	idx := (uint64(attr)*uint64(ps.n)+uint64(i))*uint64(ps.n) + uint64(j)
	w, b := idx>>6, uint64(1)<<(idx&63)
	if ps.bits[w]&b != 0 {
		return false
	}
	ps.bits[w] |= b
	return true
}

// compileCorr recognises the correlated-attribute rule shape: exactly
// one order predicate, no target references, and any number of
// tuple/constant comparisons.
func (g *Grounding) compileCorr(f *rule.Form1) (corrRule, bool) {
	var orderPreds []rule.Pred
	var extra []rule.Pred
	for _, p := range f.LHS {
		switch p.Kind {
		case rule.OrderPred:
			orderPreds = append(orderPreds, p)
		case rule.CmpPred:
			if p.Left.Kind == rule.TargetAttr || p.Right.Kind == rule.TargetAttr {
				return corrRule{}, false
			}
			extra = append(extra, p)
		}
	}
	if len(orderPreds) != 1 {
		return corrRule{}, false
	}
	op := orderPreds[0]
	return corrRule{
		ruleName: f.RuleName,
		fromAttr: int32(g.schema.Index(op.Attr)),
		toAttr:   int32(g.schema.Index(f.RHS)),
		strict:   op.Strict,
		extra:    extra,
	}, true
}

// evalCmpOnPair evaluates a tuple/constant comparison predicate on the
// ordered tuple pair (i, j) standing for (t1, t2). Equality tests
// between instance values compare dictionary IDs; everything else
// (ordering operators, constants) falls back to value comparison.
func (g *Grounding) evalCmpOnPair(p rule.Pred, i, j int32) bool {
	if (p.Op == rule.Eq || p.Op == rule.Ne) &&
		p.Left.Kind == rule.TupleAttr && p.Right.Kind == rule.TupleAttr {
		lid := g.operandID(p.Left, i, j)
		rid := g.operandID(p.Right, i, j)
		if p.Op == rule.Eq {
			return lid == rid
		}
		return lid != rid
	}
	get := func(o rule.Operand) model.Value {
		switch o.Kind {
		case rule.Const:
			return o.Val
		case rule.TupleAttr:
			a := int32(g.schema.Index(o.Attr))
			if o.Tup == 1 {
				return g.vals[a][i]
			}
			return g.vals[a][j]
		}
		return model.NullValue()
	}
	return p.Op.Eval(get(p.Left), get(p.Right))
}

// operandID resolves a TupleAttr operand to its interned value ID on
// the pair (i, j).
func (g *Grounding) operandID(o rule.Operand, i, j int32) uint32 {
	a := int32(g.schema.Index(o.Attr))
	if o.Tup == 1 {
		return g.valID[a][i]
	}
	return g.valID[a][j]
}

// groundForm1 materialises the ground steps of one form-(1) rule. Only
// pairs (i, j) with i >= oldN or j >= oldN are visited: a fresh
// grounding passes oldN == 0 (all pairs), while delta Instantiation
// passes the previous instance size so the work is the new-tuple ×
// existing-tuple and new-tuple × new-tuple pairs — O(‖Σ‖·d·n) for d
// added tuples instead of the full O(‖Σ‖·n²) rebuild.
func (g *Grounding) groundForm1(f *rule.Form1, zero []packedPair, seen *pairSet, oldN int32) []packedPair {
	rhs := int32(g.schema.Index(f.RHS))
	n := int32(g.n)
	for i := int32(0); i < n; i++ {
		jFrom := int32(0)
		if i < oldN {
			jFrom = oldN // old × old pairs are already grounded
		}
	pairs:
		for j := jFrom; j < n; j++ {
			var preds []resid
			for _, p := range f.LHS {
				switch p.Kind {
				case rule.OrderPred:
					a := int32(g.schema.Index(p.Attr))
					if p.Strict && g.valEq(a, i, j) {
						continue pairs // ≺ can never hold between equal values
					}
					preds = append(preds, resid{kind: residOrder, attr: a, i: i, j: j})
				case rule.CmpPred:
					tp, isTarget, sat := g.foldCmp(p, i, j)
					if isTarget {
						if tp.val.IsNull() && tp.op != rule.Ne {
							continue pairs // te[A] op null can never be satisfied
						}
						preds = append(preds, tp)
					} else if !sat {
						continue pairs
					}
				}
			}
			if len(preds) == 0 {
				if seen.insert(rhs, i, j) {
					zero = append(zero, packedPair{attr: rhs, i: i, j: j})
				}
				continue
			}
			g.addStep(groundStep{ruleName: f.RuleName, attr: rhs, i: i, j: j, preds: preds})
		}
	}
	return zero
}

// foldCmp partially evaluates a comparison predicate on the pair (i, j).
// If it references the target template it returns a target premise
// (isTarget true, with the comparison operand pre-interned); otherwise
// it returns the truth value (sat).
func (g *Grounding) foldCmp(p rule.Pred, i, j int32) (tp resid, isTarget, sat bool) {
	eval := func(o rule.Operand) model.Value {
		switch o.Kind {
		case rule.Const:
			return o.Val
		case rule.TupleAttr:
			a := int32(g.schema.Index(o.Attr))
			if o.Tup == 1 {
				return g.vals[a][i]
			}
			return g.vals[a][j]
		}
		return model.NullValue()
	}
	// evalID interns only on the target branches: the sat fold below
	// runs once per (rule, pair) and must not pay a dictionary probe.
	evalID := func(o rule.Operand) uint32 {
		if o.Kind == rule.TupleAttr {
			return g.operandID(o, i, j)
		}
		return g.dict.Intern(o.Val)
	}
	switch {
	case p.Left.Kind == rule.TargetAttr:
		a := int32(g.schema.Index(p.Left.Attr))
		return resid{kind: residTarget, attr: a, op: p.Op, val: eval(p.Right), valID: evalID(p.Right)}, true, false
	case p.Right.Kind == rule.TargetAttr:
		a := int32(g.schema.Index(p.Right.Attr))
		return resid{kind: residTarget, attr: a, op: p.Op.Flip(), val: eval(p.Left), valID: evalID(p.Left)}, true, false
	default:
		// Route through evalCmpOnPair so the ground-time fold and the
		// run-time correlation path agree on every predicate — including
		// the ID-based Eq/Ne fast path, whose NaN folding must not
		// depend on which compilation shape a rule took.
		return resid{}, false, g.evalCmpOnPair(p, i, j)
	}
}

func (ix *form2Index) ground(schema *model.Schema, im *model.MasterRelation, f *rule.Form2, dict *model.Dict) {
	rm := im.Schema()
	cf := compiledForm2{
		name: f.RuleName,
		tgt:  int32(schema.Index(f.TargetAttr)),
		src:  int32(rm.Index(f.MasterAttr)),
	}
	var onMaster []rule.MasterCond
	for _, c := range f.Conds {
		if c.OnMaster {
			onMaster = append(onMaster, c)
			continue
		}
		cc := compiledCond{attr: int32(schema.Index(c.TargetAttr)), isConst: c.IsConst, c: c.Const}
		if !c.IsConst {
			cc.masterIdx = int32(rm.Index(c.MasterAttr))
		}
		cf.conds = append(cf.conds, cc)
	}
	// Intern every master-side comparison value and consequence value
	// once, so run-time condition matching is integer-only.
	rows := im.Tuples()
	cf.condIDs = make([][]uint32, len(rows))
	cf.consID = make([]uint32, len(rows))
	flat := make([]uint32, len(rows)*len(cf.conds))
	for rowIdx, tm := range rows {
		ids := flat[rowIdx*len(cf.conds) : (rowIdx+1)*len(cf.conds) : (rowIdx+1)*len(cf.conds)]
		for ci, c := range cf.conds {
			w := c.c
			if !c.isConst {
				w = tm.At(int(c.masterIdx))
			}
			if !w.IsNull() {
				ids[ci] = dict.Intern(w)
			}
		}
		cf.condIDs[rowIdx] = ids
		if v := tm.At(int(cf.src)); !v.IsNull() {
			cf.consID[rowIdx] = dict.Intern(v)
		}
	}
	ruleIdx := int32(len(ix.rules))
	ix.rules = append(ix.rules, cf)

	for rowIdx, tm := range rows {
		if tm.At(int(cf.src)).IsNull() {
			continue // cannot instantiate te with null
		}
		ok := true
		for _, c := range onMaster {
			// tm[B] = c folds on the concrete master tuple.
			if !tm.At(rm.Index(c.MasterAttr)).Equal(c.Const) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		entry := form2Entry{ruleIdx: ruleIdx, rowIdx: int32(rowIdx)}
		attr, want, pending := ix.nextCond(entry, nil)
		switch {
		case !pending:
			ix.zero = append(ix.zero, entry)
		case attr < 0:
			// A condition can never be satisfied (null master value).
		default:
			k := f2Key(attr, want)
			ix.trig[k] = append(ix.trig[k], entry)
		}
	}
}

// nextCond finds the first condition of entry not yet satisfied by the
// target's ID row (nil teID means nothing is known). It returns
// pending=false when all conditions hold, and the sentinel attr == -1
// when some condition can never hold (a null master value, or a te
// value that already differs). Matching is pure integer comparison
// against the pre-interned condition IDs.
func (ix *form2Index) nextCond(e form2Entry, teID []uint32) (attr int32, want uint32, pending bool) {
	f := &ix.rules[e.ruleIdx]
	ids := f.condIDs[e.rowIdx]
	for ci, c := range f.conds {
		w := ids[ci]
		if w == model.NullID {
			return -1, 0, true // never satisfiable
		}
		if teID == nil {
			return c.attr, w, true
		}
		cur := teID[c.attr]
		if cur == model.NullID {
			return c.attr, w, true
		}
		if cur != w {
			return -1, 0, true // mismatch: dead entry
		}
	}
	return 0, 0, false
}

// consequence yields a fully matched entry's consequence: the target
// attribute, the master value and its dictionary ID.
func (ix *form2Index) consequence(im *model.MasterRelation, e form2Entry) (attr int32, val model.Value, valID uint32) {
	f := &ix.rules[e.ruleIdx]
	return f.tgt, im.Tuple(int(e.rowIdx)).At(int(f.src)), f.consID[e.rowIdx]
}

// addStep appends one ground step and registers its premises in the
// trigger maps — the single write path every grounding routine funnels
// through.
//
//relacc:grounding-builder
func (g *Grounding) addStep(st groundStep) {
	idx := int32(len(g.steps))
	g.steps = append(g.steps, st)
	for pi, p := range st.preds {
		ref := predRef{step: idx, pred: int32(pi)}
		switch p.kind {
		case residOrder:
			k := trigKey(p.attr, p.i, p.j)
			g.orderTrig[k] = append(g.orderTrig[k], ref)
		case residTarget:
			g.targetTrig[p.attr] = append(g.targetTrig[p.attr], ref)
		}
	}
}

// baseChase builds the initial axiom state and chases every
// template-independent consequence (zero-premise pairs, order-triggered
// steps, correlation cascades) into the base snapshot reused by Run.
func (g *Grounding) baseChase(zeroPairs []packedPair) {
	e := newEngine(g, true)
	// Seed the axiom state ϕ7 + ϕ9.
	if g.useAxioms {
		for a := 0; a < g.nattr; a++ {
			rel := e.orders.Attr(a)
			var nulls, nonNulls []int32
			for i := 0; i < g.n; i++ {
				if g.valID[a][i] == model.NullID {
					nulls = append(nulls, int32(i))
				} else {
					nonNulls = append(nonNulls, int32(i))
				}
			}
			for _, grp := range g.sortedGroups(a) {
				rel.SetClique32(grp)
			}
			rel.SetClique32(nulls)
			rel.SetBelow32(nulls, nonNulls)
		}
	}
	// Derive column counts of the seeded state, reusing one buffer
	// across the attributes.
	cbuf := make([]int, g.n)
	for a := 0; a < g.nattr; a++ {
		for j, c := range e.orders.Attr(a).ColumnCountsInto(cbuf) {
			e.counts[a][j] = int32(c)
		}
	}
	// Fire order triggers already satisfied by the seeded state, in
	// deterministic key order.
	keys := make([]uint64, 0, len(g.orderTrig))
	for k := range g.orderTrig {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		attr, i, j := trigKeyDecode(k)
		if e.orders.Attr(int(attr)).Has(int(i), int(j)) {
			e.fireOrderKey(k)
		}
	}
	// Fire correlation rules on the seeded pairs.
	for a := 0; a < g.nattr; a++ {
		if len(g.corrs[a]) == 0 {
			continue
		}
		aa := int32(a)
		e.orders.Attr(a).VisitPairs(func(i, j int) {
			e.fireCorr(aa, int32(i), int32(j))
		})
	}
	// Seed zero-premise pairs and already-complete order steps.
	for _, p := range zeroPairs {
		e.pushPair(p.attr, p.i, p.j)
	}
	for s := range g.steps {
		if e.npred[s] == 0 && !g.steps[s].isTarget {
			e.pushStep(int32(s))
		}
	}
	e.drain()
	g.snapshotBase(e)
}

// sortedGroups returns the value groups of attribute a in a
// deterministic order (by smallest member index), exactly as the
// pre-dictionary map representation yielded them.
func (g *Grounding) sortedGroups(a int) [][]int32 {
	groups := append([][]int32(nil), g.groups[a].members...)
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// Run chases the specification with the given initial target template
// and returns the terminal instance. A nil template stands for the
// all-null template of the initial accuracy instance; a complete
// template makes Run the candidate-target check of Section 6.1.
// The grounding is not mutated; Run is safe for sequential reuse.
func (g *Grounding) Run(template *model.Tuple) *Result {
	if g.baseConflict != "" {
		return &Result{CR: false, Conflict: g.baseConflict}
	}
	e := newRunEngine(g, false)
	g.runWith(e, template)
	res := &Result{
		CR:       e.conflict == "",
		Conflict: e.conflict,
		Steps:    e.stepsApplied,
	}
	if res.CR {
		res.Target = e.te
		res.Orders = e.orders
	}
	return res
}

// runWith drives the template-dependent chase on an engine primed with
// the base snapshot (fresh or pooled-and-reset).
func (g *Grounding) runWith(e *engine, template *model.Tuple) {
	if template != nil {
		for a := 0; a < g.nattr; a++ {
			if v := template.At(a); !v.IsNull() {
				vid, ok := template.IDIn(g.dict, a)
				if !ok {
					// Cold template (caller-built tuple): look the value
					// up WITHOUT interning — a long-lived serving session
					// checking novel caller values must not grow the
					// shared append-only dictionary per check. A miss
					// maps to the NoID sentinel, which is sound: an
					// unknown value equals no interned value (Lookup is
					// Norm-complete), NoID matches no group, form-(2)
					// key or premise ID, and only the template can push
					// an unknown value — one per attribute — so two
					// distinct unknowns never meet in one te slot.
					// Candidates assembled by the top-k search carry a
					// cached ID row and never reach this.
					if vid, ok = g.dict.Lookup(v); !ok {
						vid = model.NoID
					}
				}
				e.pushTarget(int32(a), v, vid)
			}
		}
	}
	// λ on the base state: columns that are already maximal define te.
	// A single tuple is vacuously maximal, but λ only applies once some
	// chase step has touched the attribute's order, so for n == 1 we
	// require the (reflexive) evidence of a step (axiom ϕ9 provides it).
	for a := 0; a < g.nattr; a++ {
		for j := 0; j < g.n; j++ {
			if e.counts[a][j] == int32(g.n-1) && (g.n > 1 || g.baseOrders.Attr(a).Has(j, j)) {
				if vid := g.valID[a][j]; vid != model.NullID {
					e.pushTarget(int32(a), g.vals[a][j], vid)
				}
			}
		}
	}
	for _, entry := range g.form2.zero {
		attr, val, vid := g.form2.consequence(g.im, entry)
		e.pushTarget(attr, val, vid)
	}
	for s := range g.steps {
		if e.npred[s] == 0 && !e.pushed[s] {
			e.pushStep(int32(s))
		}
	}
	e.drain()
}

// Deduce is the convenience entry point matching the paper's IsCR: it
// grounds the specification and runs the chase from the all-null
// template. It returns the terminal instance when S is Church-Rosser
// and a Result with CR == false otherwise.
func Deduce(spec Spec, opts Options) (*Result, error) {
	g, err := NewGrounding(spec, opts)
	if err != nil {
		return nil, err
	}
	return g.Run(nil), nil
}
