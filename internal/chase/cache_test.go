package chase_test

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
)

// opposedRulesGrounding builds the TestExtendIntroducesConflict
// setting: a one-tuple instance that is Church-Rosser until a second
// tuple arrives and the two opposed rules conflict — the smallest
// scenario where a verdict FLIPS between grounding versions.
func opposedRulesGrounding(t *testing.T) *chase.Grounding {
	t.Helper()
	s := model.MustSchema("r", "a")
	rules := rule.MustSet(s, nil,
		&rule.Form1{RuleName: "up",
			LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Lt, rule.T2("a"))}, RHS: "a"},
		&rule.Form1{RuleName: "down",
			LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Gt, rule.T2("a"))}, RHS: "a"},
	)
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.I(1)))
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Rules: rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestOldVersionCheckerAnswersFromItsCache is the version-pinning
// regression of ISSUE 7: after Extend flips a TEMPLATE-dependent
// verdict, pooled Checkers on the OLD version must keep answering the
// OLD verdict — and from the old version's own cache (a hit, not a
// recomputation), while the new version's cache holds the new verdict
// under the very same packed key.
func TestOldVersionCheckerAnswersFromItsCache(t *testing.T) {
	// One rule: te[a] = 1 forces every pair mutually ⪯b. On one tuple
	// that is the harmless reflexive pair; a second tuple with a
	// different b value makes the same template conflict.
	s := model.MustSchema("r", "a", "b")
	rules := rule.MustSet(s, nil,
		&rule.Form1{RuleName: "clamp",
			LHS: []rule.Pred{rule.Cmp(rule.Te("a"), rule.Eq, rule.C(model.I(1)))}, RHS: "b"},
	)
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.I(1), model.I(10)))
	old, err := chase.NewGrounding(chase.Spec{Ie: ie, Rules: rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tpl := model.MustTuple(s, model.I(1), model.NullValue())
	if !old.Pool().Check(tpl) { // miss: populates the old version's cache
		t.Fatal("one-tuple instance must be Church-Rosser under the template")
	}
	ext, err := old.Extend(model.MustTuple(s, model.I(1), model.I(20)))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Pool().Check(tpl) { // miss in the successor's EMPTY cache
		t.Fatal("extended instance must conflict under the template")
	}
	// Hits/misses are cumulative along the version chain; entries are
	// per version — the successor holds exactly its own flipped verdict.
	if st := ext.VerdictCacheStats(); st.Entries != 1 || st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("after one check per version: successor stats %+v, want 2 misses, 0 hits, 1 entry", st)
	}
	// The old version still answers CR for the old evidence — and the
	// answer comes out of its cache: hits +1, misses unchanged.
	before := old.VerdictCacheStats()
	if !old.Pool().Check(tpl) {
		t.Fatal("old version flipped its verdict after Extend")
	}
	after := old.VerdictCacheStats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("old-version re-check was not a cache hit: before %+v after %+v", before, after)
	}
	if old.VerdictCacheStats().Entries != 1 {
		t.Fatalf("old version holds %d entries, want its own 1", old.VerdictCacheStats().Entries)
	}
	// And the successor's cached answer stays the flipped one.
	if ext.Pool().Check(tpl) {
		t.Fatal("successor served the old verdict")
	}
}

// TestTargetAfterCacheHit: Checker.Target after a cache-hit Check must
// return the deduced target — cloned, so caller mutation cannot
// corrupt the shared cache entry.
func TestTargetAfterCacheHit(t *testing.T) {
	ie := paperdata.Stat()
	im := paperdata.NBA()
	rs, err := rule.NewSet(ie.Schema(), im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatal(err)
	}
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: im, Rules: rs}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := g.NewChecker()
	if !c.Check(nil) {
		t.Fatal("paper spec must be Church-Rosser")
	}
	want := c.Target()
	if !want.EqualTo(paperdata.Target()) {
		t.Fatalf("deduced %s, want the Example 5 target", want)
	}
	// Same check again — a hit — must surface the same target.
	for round := 0; round < 2; round++ {
		if !c.Check(nil) {
			t.Fatal("re-check flipped")
		}
		got := c.Target()
		if !got.EqualTo(want) {
			t.Fatalf("round %d: Target after cache hit = %s, want %s", round, got, want)
		}
		// Mutate the returned clone; the cached entry must not notice.
		got.Set(paperdata.League, model.S("corrupted"))
	}
	if st := g.VerdictCacheStats(); st.Hits < 2 {
		t.Fatalf("expected the re-checks to hit, stats %+v", st)
	}
}

// TestUncacheableTemplateStaysOut: a template carrying a value the
// shared dictionary has never interned resolves to the NoID sentinel,
// under which two distinct unknowns would alias — so such rows are
// never cached (and never counted): the check runs, answers correctly,
// and the cache is bypassed entirely.
func TestUncacheableTemplateStaysOut(t *testing.T) {
	g := opposedRulesGrounding(t)
	tpl := model.MustTuple(g.Schema(), model.S("never-interned-xyz"))
	want := g.Run(tpl).CR
	for round := 0; round < 2; round++ {
		if got := g.Pool().Check(tpl); got != want {
			t.Fatalf("round %d: pooled check %v, Run %v", round, got, want)
		}
	}
	if st := g.VerdictCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("uncacheable template touched the cache: %+v", st)
	}
}

// TestDisabledCacheChecks: DisableVerdictCache really disables — the
// verdicts stay identical and the stats stay zero.
func TestDisabledCacheChecks(t *testing.T) {
	s := model.MustSchema("r", "a")
	rules := rule.MustSet(s, nil,
		&rule.Form1{RuleName: "up",
			LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Lt, rule.T2("a"))}, RHS: "a"},
	)
	ie := model.NewEntityInstance(s)
	ie.MustAdd(model.MustTuple(s, model.I(1)))
	ie.MustAdd(model.MustTuple(s, model.I(2)))
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Rules: rules},
		chase.Options{DisableVerdictCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if g.Pool().Check(nil) != g.Run(nil).CR {
			t.Fatal("disabled-cache check disagrees with Run")
		}
	}
	if st := g.VerdictCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
	// The disabled state survives Extend.
	ext, err := g.Extend(model.MustTuple(s, model.I(3)))
	if err != nil {
		t.Fatal(err)
	}
	ext.Pool().Check(nil)
	if st := ext.VerdictCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache re-enabled itself across Extend: %+v", st)
	}
}
