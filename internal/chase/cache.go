package chase

import (
	"encoding/binary"

	"repro/internal/model"
	"repro/internal/vcache"
)

// Verdict caching (DESIGN.md invariant 8).
//
// A candidate check is a pure function of (grounding version, template
// value-ID row): the chase is deterministic, a Grounding is immutable
// after construction, and every template-dependent comparison the
// engine performs is decided by the template's interned IDs — IDs
// equate values up to model.Value.Norm, and Norm-equal values are
// indistinguishable to every chase comparison (Op.Eval compares
// normalised semantics; Eq/Ne compare the IDs themselves). So a map
// from packed ID rows to verdicts, hung off the version, memoises
// checks with no invalidation protocol at all: a new version gets a
// new (empty) cache, a superseded version's cache dies with it, and an
// in-flight Checker pinned to an old version keeps hitting that
// version's cache — which is still correct for the evidence that
// version answers for.
//
// Uncacheable templates exist: a caller-built template may carry a
// value the shared dictionary has never interned, which resolves to
// the model.NoID sentinel. Two DISTINCT unknown values would pack to
// the same key, so rows containing an unknown value are not cached —
// verdictKey reports them uncacheable and the check simply runs
// (cache_fuzz_test.go pins that no two distinct cacheable rows share a
// key). Candidates assembled by the top-k search carry pre-interned ID
// rows and are always cacheable.

// verdictEntry is one memoised check outcome: the conflict description
// ("" = Church-Rosser) and, for CR checks, the deduced target tuple.
// The target is stored once, cloned from the engine that computed it,
// and shared read-only by every hit; Checker.Target re-clones it per
// caller.
type verdictEntry struct {
	conflict string
	target   *model.Tuple
}

// verdictKey packs template's value-ID row into buf (reused across
// calls) as nattr big-endian uint32s: null attributes pack as
// model.NullID, known values as their dictionary ID. It reports
// ok=false — template not cacheable — when the template carries a
// value the dictionary has never seen (see the package comment above).
// A nil template packs as the all-null row, matching runWith's
// treatment of nil.
//
// Resolution order mirrors runWith exactly (cached ID row first, then
// a non-interning dictionary lookup), and the dictionary is
// append-only, so the key always names the same IDs the check itself
// would push.
func (g *Grounding) verdictKey(template *model.Tuple, buf []byte) ([]byte, bool) {
	buf = buf[:0]
	for a := 0; a < g.nattr; a++ {
		vid := model.NullID
		if template != nil {
			if v := template.At(a); !v.IsNull() {
				var ok bool
				if vid, ok = template.IDIn(g.dict, a); !ok {
					if vid, ok = g.dict.Lookup(v); !ok {
						return buf, false
					}
				}
			}
		}
		buf = binary.BigEndian.AppendUint32(buf, vid)
	}
	return buf, true
}

// VerdictCacheStats returns this grounding's verdict-cache accounting:
// hits and misses cumulative across the whole version chain, entries
// counting the receiver's version only. All zero when the cache is
// disabled.
func (g *Grounding) VerdictCacheStats() vcache.Stats { return g.verdicts.Stats() }
