package chase

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/rule"
)

// FuzzVerdictKey pins the two properties the verdict cache's soundness
// rests on (ISSUE 7): distinct template rows never collide — packed
// keys are equal ONLY when the rows are attribute-wise Norm-equal —
// and equal-up-to-Norm rows always produce the same key (so a repeat
// check always hits). Inputs are '\x1f'-separated value-literal rows,
// parsed exactly like FuzzValueCanon's inputs and seeded from the same
// corner corpus (NaN folding, ±0, int/float class boundaries, quoted
// literals), because those are the values whose Norm classes are
// subtle. Every parsed value is interned first: unknown values are the
// separately-tested UNCACHEABLE case (TestUncacheableTemplateStaysOut)
// precisely because the NoID sentinel would alias distinct unknowns.
func FuzzVerdictKey(f *testing.F) {
	lits := []string{
		"", "null", "NULL", "true", "false",
		"0", "-0", "0.0", "-0.0", "3", "3.0", "-17", "2.5",
		"NaN", "-NaN", "nan", "Inf", "-Inf", "+Inf", "1e300", "-1e-300",
		"9007199254740993",    // 2⁵³+1: int magnitude beyond float64 precision
		"9223372036854775807", // MaxInt64
		`"3"`, `"null"`, `""`, `"true"`, "x", "⊥", "a b", `"quo\"ted"`,
		"00", "0x10", "1_000", ".5", "5.", "1e", "--1",
	}
	for i, s := range lits {
		f.Add(s, lits[(i+1)%len(lits)])
		f.Add(s, s)
	}
	f.Add("3\x1f-0.0\x1fNaN\x1fx", "3.0\x1f0\x1fnan\x1fx")
	f.Add("null\x1f1\x1f2\x1f3", "1\x1fnull\x1f2\x1f3")
	f.Add("a\x1fbc", "ab\x1fc") // concatenation must not fool the packing

	const arity = 4
	schema := model.MustSchema("fz", "a", "b", "c", "d")
	ie := model.NewEntityInstance(schema)
	ie.MustAdd(model.MustTuple(schema,
		model.NullValue(), model.NullValue(), model.NullValue(), model.NullValue()))
	g, err := NewGrounding(Spec{Ie: ie, Rules: rule.MustSet(schema, nil)}, Options{})
	if err != nil {
		f.Fatal(err)
	}

	parseRow := func(s string) []model.Value {
		row := make([]model.Value, arity)
		for i := range row {
			row[i] = model.NullValue()
		}
		for i, lit := range strings.Split(s, "\x1f") {
			if i >= arity {
				break
			}
			row[i] = model.Parse(lit)
			if !row[i].IsNull() {
				g.dict.Intern(row[i])
			}
		}
		return row
	}

	f.Fuzz(func(t *testing.T, s1, s2 string) {
		r1, r2 := parseRow(s1), parseRow(s2)
		t1 := model.MustTuple(schema, r1...)
		t2 := model.MustTuple(schema, r2...)

		k1, ok1 := g.verdictKey(t1, nil)
		k2, ok2 := g.verdictKey(t2, nil)
		if !ok1 || !ok2 {
			t.Fatalf("fully interned rows reported uncacheable: %v %v", ok1, ok2)
		}
		if len(k1) != 4*arity || len(k2) != 4*arity {
			t.Fatalf("key lengths %d, %d; want %d", len(k1), len(k2), 4*arity)
		}

		sameNorm := true
		for a := 0; a < arity; a++ {
			if r1[a].Norm() != r2[a].Norm() {
				sameNorm = false
				break
			}
		}
		if sameKey := string(k1) == string(k2); sameKey != sameNorm {
			t.Fatalf("key/Norm disagree for %q vs %q: sameKey=%v sameNorm=%v (keys %x, %x)",
				s1, s2, sameKey, sameNorm, k1, k2)
		}

		// Determinism: re-packing the same tuple yields the same key,
		// with or without a cached ID row (Intern fills it).
		t1.Intern(g.dict)
		k1b, ok := g.verdictKey(t1, nil)
		if !ok || string(k1b) != string(k1) {
			t.Fatalf("re-pack diverged: %x vs %x (ok=%v)", k1b, k1, ok)
		}
	})
}
