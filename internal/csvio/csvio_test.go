package csvio_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/csvio"
	"repro/internal/model"
)

const sample = `name,rnds,active,score
Michael,27,true,91.5
MJ,,false,
null,1,true,3
`

func TestReadRelation(t *testing.T) {
	schema, tuples, err := csvio.ReadRelation(strings.NewReader(sample), "stat")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Arity() != 4 || len(tuples) != 3 {
		t.Fatalf("shape: %d attrs, %d tuples", schema.Arity(), len(tuples))
	}
	if v, _ := tuples[0].Get("rnds"); !v.Equal(model.I(27)) || v.Kind() != model.Int {
		t.Errorf("rnds = %v (%v)", v, v.Kind())
	}
	if v, _ := tuples[0].Get("active"); !v.Equal(model.B(true)) {
		t.Errorf("active = %v", v)
	}
	if v, _ := tuples[0].Get("score"); !v.Equal(model.F(91.5)) {
		t.Errorf("score = %v", v)
	}
	if v, _ := tuples[1].Get("rnds"); !v.IsNull() {
		t.Errorf("empty cell should be null, got %v", v)
	}
	if v, _ := tuples[2].Get("name"); !v.IsNull() {
		t.Errorf("'null' cell should be null, got %v", v)
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := csvio.ReadRelation(strings.NewReader(""), "x"); err == nil {
		t.Errorf("empty input should fail")
	}
	if _, _, err := csvio.ReadRelation(strings.NewReader("a,b\n1\n"), "x"); err == nil {
		t.Errorf("ragged row should fail")
	}
	if _, _, err := csvio.ReadRelation(strings.NewReader("a,a\n1,2\n"), "x"); err == nil {
		t.Errorf("duplicate header should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	schema, tuples, err := csvio.ReadRelation(strings.NewReader(sample), "stat")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := csvio.WriteRelation(&buf, schema, tuples); err != nil {
		t.Fatal(err)
	}
	schema2, tuples2, err := csvio.ReadRelation(bytes.NewReader(buf.Bytes()), "stat")
	if err != nil {
		t.Fatal(err)
	}
	if schema2.Arity() != schema.Arity() || len(tuples2) != len(tuples) {
		t.Fatalf("round trip shape changed")
	}
	for i := range tuples {
		if !tuples[i].EqualTo(tuples2[i]) {
			t.Errorf("tuple %d changed: %v vs %v", i, tuples[i], tuples2[i])
		}
	}
}

func TestStreamingReader(t *testing.T) {
	rr, err := csvio.NewRelationReader(strings.NewReader(sample), "stat")
	if err != nil {
		t.Fatal(err)
	}
	if rr.Schema().Arity() != 4 {
		t.Fatalf("arity = %d", rr.Schema().Arity())
	}
	var n int
	for {
		tu, err := rr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if tu.Schema() != rr.Schema() {
			t.Fatal("tuple uses a different schema instance")
		}
		n++
	}
	if n != 3 {
		t.Fatalf("streamed %d tuples, want 3", n)
	}
}

func TestStreamingRaggedRowNamesRow(t *testing.T) {
	rr, err := csvio.NewRelationReader(strings.NewReader("a,b\n1,2\n3\n4,5\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Read(); err != nil {
		t.Fatalf("row 2: %v", err)
	}
	_, err = rr.Read()
	if err == nil || !strings.Contains(err.Error(), "row 3") {
		t.Fatalf("ragged row error should name row 3, got %v", err)
	}
	// Reading may continue past the malformed row.
	tu, err := rr.Read()
	if err != nil {
		t.Fatalf("row 4 after ragged row: %v", err)
	}
	if v, _ := tu.Get("b"); !v.Equal(model.I(5)) {
		t.Fatalf("row 4 = %v", tu)
	}
}

func TestBOMStripped(t *testing.T) {
	schema, tuples, err := csvio.ReadRelation(strings.NewReader("\xef\xbb\xbfa,b\n1,2\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Attr(0) != "a" {
		t.Fatalf("BOM leaked into first attribute: %q", schema.Attr(0))
	}
	if len(tuples) != 1 {
		t.Fatalf("%d tuples", len(tuples))
	}
}

func TestQuotedCommasAndQuotes(t *testing.T) {
	in := "name,notes\n\"Jordan, Michael\",\"said \"\"hi, there\"\"\"\n"
	schema, tuples, err := csvio.ReadRelation(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := tuples[0].Get("name"); v.String() != "Jordan, Michael" {
		t.Fatalf("name = %q", v.String())
	}
	if v, _ := tuples[0].Get("notes"); v.String() != `said "hi, there"` {
		t.Fatalf("notes = %q", v.String())
	}
	var buf bytes.Buffer
	if err := csvio.WriteRelation(&buf, schema, tuples); err != nil {
		t.Fatal(err)
	}
	_, tuples2, err := csvio.ReadRelation(bytes.NewReader(buf.Bytes()), "x")
	if err != nil || !tuples2[0].EqualTo(tuples[0]) {
		t.Fatalf("quoted round trip: %v %v", err, tuples2)
	}
}

func TestHeaderOnlyRelationIsEmpty(t *testing.T) {
	schema, tuples, err := csvio.ReadRelation(strings.NewReader("a,b\n"), "x")
	if err != nil || schema.Arity() != 2 || len(tuples) != 0 {
		t.Fatalf("header-only: %v %d attrs %d tuples", err, schema.Arity(), len(tuples))
	}
}

func TestReadEntityInstanceAndMaster(t *testing.T) {
	ie, err := csvio.ReadEntityInstance(strings.NewReader(sample), "stat")
	if err != nil || ie.Size() != 3 {
		t.Fatalf("instance: %v %d", err, ie.Size())
	}
	im, err := csvio.ReadMaster(strings.NewReader(sample), "master")
	if err != nil || im.Size() != 3 {
		t.Fatalf("master: %v %d", err, im.Size())
	}
}
