package csvio_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/csvio"
	"repro/internal/model"
)

const sample = `name,rnds,active,score
Michael,27,true,91.5
MJ,,false,
null,1,true,3
`

func TestReadRelation(t *testing.T) {
	schema, tuples, err := csvio.ReadRelation(strings.NewReader(sample), "stat")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Arity() != 4 || len(tuples) != 3 {
		t.Fatalf("shape: %d attrs, %d tuples", schema.Arity(), len(tuples))
	}
	if v, _ := tuples[0].Get("rnds"); !v.Equal(model.I(27)) || v.Kind() != model.Int {
		t.Errorf("rnds = %v (%v)", v, v.Kind())
	}
	if v, _ := tuples[0].Get("active"); !v.Equal(model.B(true)) {
		t.Errorf("active = %v", v)
	}
	if v, _ := tuples[0].Get("score"); !v.Equal(model.F(91.5)) {
		t.Errorf("score = %v", v)
	}
	if v, _ := tuples[1].Get("rnds"); !v.IsNull() {
		t.Errorf("empty cell should be null, got %v", v)
	}
	if v, _ := tuples[2].Get("name"); !v.IsNull() {
		t.Errorf("'null' cell should be null, got %v", v)
	}
}

func TestReadErrors(t *testing.T) {
	if _, _, err := csvio.ReadRelation(strings.NewReader(""), "x"); err == nil {
		t.Errorf("empty input should fail")
	}
	if _, _, err := csvio.ReadRelation(strings.NewReader("a,b\n1\n"), "x"); err == nil {
		t.Errorf("ragged row should fail")
	}
	if _, _, err := csvio.ReadRelation(strings.NewReader("a,a\n1,2\n"), "x"); err == nil {
		t.Errorf("duplicate header should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	schema, tuples, err := csvio.ReadRelation(strings.NewReader(sample), "stat")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := csvio.WriteRelation(&buf, schema, tuples); err != nil {
		t.Fatal(err)
	}
	schema2, tuples2, err := csvio.ReadRelation(bytes.NewReader(buf.Bytes()), "stat")
	if err != nil {
		t.Fatal(err)
	}
	if schema2.Arity() != schema.Arity() || len(tuples2) != len(tuples) {
		t.Fatalf("round trip shape changed")
	}
	for i := range tuples {
		if !tuples[i].EqualTo(tuples2[i]) {
			t.Errorf("tuple %d changed: %v vs %v", i, tuples[i], tuples2[i])
		}
	}
}

func TestReadEntityInstanceAndMaster(t *testing.T) {
	ie, err := csvio.ReadEntityInstance(strings.NewReader(sample), "stat")
	if err != nil || ie.Size() != 3 {
		t.Fatalf("instance: %v %d", err, ie.Size())
	}
	im, err := csvio.ReadMaster(strings.NewReader(sample), "master")
	if err != nil || im.Size() != 3 {
		t.Fatalf("master: %v %d", err, im.Size())
	}
}
