package csvio_test

import (
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/csvio"
	"repro/internal/model"
)

func TestTupleIteratorInterns(t *testing.T) {
	it, err := csvio.NewTupleIterator(strings.NewReader(sample), "stat")
	if err != nil {
		t.Fatal(err)
	}
	d := model.NewDict()
	it.Intern(d)
	var n int
	for {
		tu, err := it.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < tu.Schema().Arity(); j++ {
			id, ok := tu.IDIn(d, j)
			if !ok {
				t.Fatalf("row %d col %d: no cached ID", it.Row(), j)
			}
			if got := d.ValueOf(id); !got.Equal(tu.At(j)) {
				t.Fatalf("row %d col %d: ID %d maps to %v, want %v", it.Row(), j, id, got, tu.At(j))
			}
		}
		n++
	}
	if n != 3 {
		t.Fatalf("streamed %d tuples, want 3", n)
	}
	if d.Size() == 1 { // only NullID would mean nothing was interned
		t.Fatal("dict empty after interning stream")
	}
}

func TestTupleIteratorRowError(t *testing.T) {
	it, err := csvio.NewTupleIterator(strings.NewReader("a,b\n1,2\n3\n\"x\nok,9\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(); err != nil {
		t.Fatalf("row 2: %v", err)
	}
	// Ragged row: recoverable, names row 3.
	_, err = it.Next()
	var re *csvio.RowError
	if !errors.As(err, &re) || re.Row != 3 {
		t.Fatalf("ragged row: want *RowError{Row: 3}, got %v", err)
	}
	if !csvio.IsRowError(err) {
		t.Fatalf("IsRowError(%v) = false", err)
	}
	if !strings.Contains(err.Error(), "row 3") {
		t.Fatalf("error should name row 3: %v", err)
	}
	// Unterminated quote: a csv parse error, also a recoverable RowError.
	_, err = it.Next()
	if !csvio.IsRowError(err) {
		t.Fatalf("quote error should be a RowError, got %v", err)
	}
	// EOF is not a RowError.
	for {
		_, err = it.Next()
		if err == nil {
			continue
		}
		if csvio.IsRowError(err) {
			continue
		}
		break
	}
	if !errors.Is(err, io.EOF) {
		t.Fatalf("stream should end in io.EOF, got %v", err)
	}
	if csvio.IsRowError(io.EOF) {
		t.Fatal("IsRowError(io.EOF) = true")
	}
}

func TestTupleIteratorRowCounter(t *testing.T) {
	it, err := csvio.NewTupleIterator(strings.NewReader("a\n1\n2\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if it.Row() != 1 {
		t.Fatalf("after header Row() = %d, want 1", it.Row())
	}
	it.Next()
	if it.Row() != 2 {
		t.Fatalf("Row() = %d, want 2", it.Row())
	}
	it.Next()
	if it.Row() != 3 {
		t.Fatalf("Row() = %d, want 3", it.Row())
	}
}

// TestTupleIteratorRetainsValues pins the ReuseRecord safety argument:
// tuples decoded earlier must not be corrupted by later reads reusing
// the record buffer.
func TestTupleIteratorRetainsValues(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("name,v\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("n")
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(",")
		sb.WriteByte(byte('a' + i%26))
		sb.WriteString("\n")
	}
	it, err := csvio.NewTupleIterator(strings.NewReader(sb.String()), "x")
	if err != nil {
		t.Fatal(err)
	}
	var all []*model.Tuple
	for {
		tu, err := it.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, tu)
	}
	for i, tu := range all {
		wantName := "n" + string(byte('0'+i%10))
		wantV := string(byte('a' + i%26))
		if n, _ := tu.Get("name"); n.String() != wantName {
			t.Fatalf("tuple %d name = %q, want %q (record buffer aliased?)", i, n.String(), wantName)
		}
		if v, _ := tu.Get("v"); v.String() != wantV {
			t.Fatalf("tuple %d v = %q, want %q", i, v.String(), wantV)
		}
	}
}

// FuzzTupleIterator runs the iterator over arbitrary bytes and checks
// its contract differentially against RelationReader (which shares the
// core but must agree observation-for-observation): same schema, same
// tuples, same errors in the same order, and RowErrors always carry a
// row number past the header.
func FuzzTupleIterator(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte("a,b\n1,2\n3\n4,5\n"))                               // ragged row mid-stream
	f.Add([]byte("\xef\xbb\xbfa,b\n1,\xef\xbb\xbf2\n"))               // BOM at start and mid-stream
	f.Add([]byte("a,b\r\n1,2\r\n3,4\r\n"))                            // CRLF endings
	f.Add([]byte("name,notes\n\"Jordan, Michael\",\"\"\"hi\"\"\"\n")) // quoted separators
	f.Add([]byte("a\n\"unterminated\n"))
	f.Add([]byte(""))
	f.Add([]byte("a,a\n1,2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		it, errIt := csvio.NewTupleIterator(strings.NewReader(string(data)), "fz")
		rr, errRR := csvio.NewRelationReader(strings.NewReader(string(data)), "fz")
		if (errIt == nil) != (errRR == nil) {
			t.Fatalf("constructor disagreement: %v vs %v", errIt, errRR)
		}
		if errIt != nil {
			return
		}
		if got, want := it.Schema().Arity(), rr.Schema().Arity(); got != want {
			t.Fatalf("schema arity %d vs %d", got, want)
		}
		for steps := 0; steps < 10000; steps++ {
			tu, err := it.Next()
			tu2, err2 := rr.Read()
			if (err == nil) != (err2 == nil) {
				t.Fatalf("step %d: error disagreement: %v vs %v", steps, err, err2)
			}
			if err != nil {
				if errors.Is(err, io.EOF) {
					if !errors.Is(err2, io.EOF) {
						t.Fatalf("step %d: EOF vs %v", steps, err2)
					}
					return
				}
				if err.Error() != err2.Error() {
					t.Fatalf("step %d: %q vs %q", steps, err, err2)
				}
				var re *csvio.RowError
				if errors.As(err, &re) {
					if re.Row < 2 {
						t.Fatalf("step %d: RowError row %d before data rows", steps, re.Row)
					}
					continue // recoverable: keep reading
				}
				return // stream-ending error on both
			}
			for j := 0; j < it.Schema().Arity(); j++ {
				// Compare canonical keys, not Equal: NaN != NaN, but
				// the two readers must still decode it identically.
				if tu.At(j).Key() != tu2.At(j).Key() {
					t.Fatalf("step %d col %d: %v vs %v", steps, j, tu, tu2)
				}
			}
		}
	})
}
