// Package csvio loads and saves relations as CSV so the command-line
// tools can operate on user data: the first row is the header (attribute
// names), every other row a tuple. Values are interpreted by
// model.Parse — "null" and the empty string are null, numerals are
// numeric, true/false boolean, everything else string. Writing uses
// quoted strings only when CSV requires it.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"repro/internal/model"
)

// ReadRelation parses CSV into a schema (named name) and its tuples.
func ReadRelation(r io.Reader, name string) (*model.Schema, []*model.Tuple, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("csvio: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("csvio: empty input")
	}
	schema, err := model.NewSchema(name, rows[0]...)
	if err != nil {
		return nil, nil, err
	}
	var tuples []*model.Tuple
	for i, row := range rows[1:] {
		if len(row) != schema.Arity() {
			return nil, nil, fmt.Errorf("csvio: row %d has %d fields, want %d", i+2, len(row), schema.Arity())
		}
		t := model.NewTuple(schema)
		for j, cell := range row {
			t.SetAt(j, model.Parse(cell))
		}
		tuples = append(tuples, t)
	}
	return schema, tuples, nil
}

// ReadRelationFile is ReadRelation over a file path; the relation is
// named after the path.
func ReadRelationFile(path string) (*model.Schema, []*model.Tuple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadRelation(f, path)
}

// ReadEntityInstance loads a CSV as a single entity instance.
func ReadEntityInstance(r io.Reader, name string) (*model.EntityInstance, error) {
	schema, tuples, err := ReadRelation(r, name)
	if err != nil {
		return nil, err
	}
	ie := model.NewEntityInstance(schema)
	for _, t := range tuples {
		ie.MustAdd(t)
	}
	return ie, nil
}

// ReadMaster loads a CSV as a master relation.
func ReadMaster(r io.Reader, name string) (*model.MasterRelation, error) {
	schema, tuples, err := ReadRelation(r, name)
	if err != nil {
		return nil, err
	}
	im := model.NewMasterRelation(schema)
	for _, t := range tuples {
		im.MustAdd(t)
	}
	return im, nil
}

// WriteRelation writes a header plus one row per tuple.
func WriteRelation(w io.Writer, schema *model.Schema, tuples []*model.Tuple) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(schema.Attrs()); err != nil {
		return err
	}
	row := make([]string, schema.Arity())
	for _, t := range tuples {
		for j := range row {
			v := t.At(j)
			if v.IsNull() {
				row[j] = ""
			} else {
				row[j] = v.String()
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
