// Package csvio loads and saves relations as CSV so the command-line
// tools can operate on user data: the first row is the header (attribute
// names), every other row a tuple. Values are interpreted by
// model.Parse — "null" and the empty string are null, numerals are
// numeric, true/false boolean, everything else string. Writing uses
// quoted strings only when CSV requires it.
//
// TupleIterator is the pull-based decoder under everything here: one
// Next call decodes one row into a tuple (optionally interning its
// values into a shared model.Dict as it goes), so arbitrarily large
// relations stream through in constant memory — no [][]string or
// []*Tuple materialization ever exists on this path. RelationReader
// wraps it with the historical Read spelling, and ReadRelation and
// friends are convenience wrappers that drain it. Malformed rows
// surface as *RowError naming the 1-based row and reading may continue
// past them. A UTF-8 byte-order mark at the start of the input is
// stripped (spreadsheet exports routinely prepend one).
package csvio

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/model"
)

// RowError reports one malformed CSV row — wrong field count, stray
// quote — naming the 1-based row number (the header is row 1). Row
// errors are recoverable: the iterator stays usable and the next Next
// (or Read) continues with the following row, so a caller may skip bad
// rows without losing the rest of the relation. Errors that are not
// RowErrors (I/O failures, EOF) end the stream.
type RowError struct {
	Row int   // 1-based row number of the malformed row
	Err error // what was wrong with it
}

func (e *RowError) Error() string { return "csvio: " + e.Err.Error() }

// Unwrap exposes the cause, so errors.As finds csv.ParseError inside.
func (e *RowError) Unwrap() error { return e.Err }

// IsRowError reports whether err is a recoverable per-row error, as
// opposed to one that ends the stream.
func IsRowError(err error) bool {
	var re *RowError
	return errors.As(err, &re)
}

// TupleIterator streams a CSV relation: the header row is consumed at
// construction (fixing the schema), Next decodes and returns one tuple
// per call. The iterator holds no row but the current one — the csv
// reader's record buffer is reused across rows (csv.Reader.ReuseRecord)
// and each row becomes a schema tuple immediately — so memory use is
// independent of the relation's length.
type TupleIterator struct {
	cr     *csv.Reader
	schema *model.Schema
	dict   *model.Dict // when non-nil, Next interns each decoded tuple
	row    int         // 1-based row number of the last record read
}

// NewTupleIterator reads the header row from r and fixes the relation
// schema (named name). An empty input is an error; a leading UTF-8 BOM
// is stripped. r may be any io.Reader — a file, a network body, a
// generator — the iterator never seeks.
func NewTupleIterator(r io.Reader, name string) (*TupleIterator, error) {
	br := bufio.NewReader(r)
	if lead, err := br.Peek(3); err == nil && string(lead) == "\xef\xbb\xbf" {
		br.Discard(3)
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1 // arity checked per row, with row numbers
	// Reuse the per-row field slice: the field strings themselves are
	// carved from a fresh per-record allocation, so the values a tuple
	// retains are safe; only the []string scaffolding is recycled.
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("csvio: empty input")
	}
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	// The header was read into the reused record; NewSchema copies the
	// attribute strings it keeps, so no aliasing survives.
	schema, err := model.NewSchema(name, header...)
	if err != nil {
		return nil, err
	}
	return &TupleIterator{cr: cr, schema: schema, row: 1}, nil
}

// Schema returns the relation schema read from the header row.
func (it *TupleIterator) Schema() *model.Schema { return it.schema }

// Row returns the 1-based row number of the last record read (1 after
// construction: the header).
func (it *TupleIterator) Row() int { return it.row }

// Intern makes every subsequently decoded tuple carry cached dictionary
// IDs for its values under d (interning new values as they stream by),
// so downstream grounding does no dict probes for streamed tuples. It
// returns the iterator for chaining.
func (it *TupleIterator) Intern(d *model.Dict) *TupleIterator {
	it.dict = d
	return it
}

// Next returns the next tuple, or io.EOF after the last row. A
// malformed row returns a *RowError naming the 1-based row number;
// reading may continue past it.
func (it *TupleIterator) Next() (*model.Tuple, error) {
	record, err := it.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	it.row++
	if err != nil {
		var pe *csv.ParseError
		if errors.As(err, &pe) {
			return nil, &RowError{Row: it.row, Err: err}
		}
		return nil, fmt.Errorf("csvio: %w", err)
	}
	if len(record) != it.schema.Arity() {
		return nil, &RowError{Row: it.row,
			Err: fmt.Errorf("row %d has %d fields, want %d", it.row, len(record), it.schema.Arity())}
	}
	t := model.NewTuple(it.schema)
	for j, cell := range record {
		t.SetAt(j, model.Parse(cell))
	}
	if it.dict != nil {
		t.Intern(it.dict)
	}
	return t, nil
}

// RelationReader streams a CSV relation: the header row is consumed at
// construction (fixing the schema), Read returns one tuple per call.
// It is TupleIterator under the historical name and method spelling.
type RelationReader struct {
	*TupleIterator
}

// NewRelationReader reads the header row and fixes the relation schema
// (named name). An empty input is an error; a leading UTF-8 BOM is
// stripped.
func NewRelationReader(r io.Reader, name string) (*RelationReader, error) {
	it, err := NewTupleIterator(r, name)
	if err != nil {
		return nil, err
	}
	return &RelationReader{TupleIterator: it}, nil
}

// Read returns the next tuple, or io.EOF after the last row. A row
// whose field count differs from the header's arity is an error naming
// the 1-based row number; reading may continue past it.
func (rr *RelationReader) Read() (*model.Tuple, error) { return rr.Next() }

// ReadAll drains the reader, returning every remaining tuple; it stops
// at the first malformed row.
func (rr *RelationReader) ReadAll() ([]*model.Tuple, error) {
	var tuples []*model.Tuple
	for {
		t, err := rr.Read()
		if err == io.EOF {
			return tuples, nil
		}
		if err != nil {
			return tuples, err
		}
		tuples = append(tuples, t)
	}
}

// ReadRelation parses CSV into a schema (named name) and its tuples.
func ReadRelation(r io.Reader, name string) (*model.Schema, []*model.Tuple, error) {
	rr, err := NewRelationReader(r, name)
	if err != nil {
		return nil, nil, err
	}
	tuples, err := rr.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	return rr.Schema(), tuples, nil
}

// ReadRelationFile is ReadRelation over a file path; the relation is
// named after the path.
func ReadRelationFile(path string) (*model.Schema, []*model.Tuple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadRelation(f, path)
}

// ReadEntityInstance loads a CSV as a single entity instance.
func ReadEntityInstance(r io.Reader, name string) (*model.EntityInstance, error) {
	schema, tuples, err := ReadRelation(r, name)
	if err != nil {
		return nil, err
	}
	ie := model.NewEntityInstance(schema)
	for _, t := range tuples {
		ie.MustAdd(t)
	}
	return ie, nil
}

// ReadMaster loads a CSV as a master relation.
func ReadMaster(r io.Reader, name string) (*model.MasterRelation, error) {
	schema, tuples, err := ReadRelation(r, name)
	if err != nil {
		return nil, err
	}
	im := model.NewMasterRelation(schema)
	for _, t := range tuples {
		im.MustAdd(t)
	}
	return im, nil
}

// RelationWriter streams a CSV relation out one tuple at a time — the
// write-side mirror of TupleIterator, for outputs produced while their
// rows are still being computed. The header is written at construction;
// Flush must be called after the last Write.
type RelationWriter struct {
	cw     *csv.Writer
	schema *model.Schema
	row    []string
	n      int
}

// NewRelationWriter writes the schema's header row and returns a writer
// for its tuples.
func NewRelationWriter(w io.Writer, schema *model.Schema) (*RelationWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(schema.Attrs()); err != nil {
		return nil, err
	}
	return &RelationWriter{cw: cw, schema: schema, row: make([]string, schema.Arity())}, nil
}

// Write appends one tuple as a CSV row (nulls render as empty cells).
// The tuple is read positionally, so any schema with the same attribute
// order works.
func (rw *RelationWriter) Write(t *model.Tuple) error {
	for j := range rw.row {
		v := t.At(j)
		if v.IsNull() {
			rw.row[j] = ""
		} else {
			rw.row[j] = v.String()
		}
	}
	if err := rw.cw.Write(rw.row); err != nil {
		return err
	}
	rw.n++
	return nil
}

// Count returns how many tuples have been written (excluding the
// header).
func (rw *RelationWriter) Count() int { return rw.n }

// Flush writes any buffered rows through and reports the first error
// the underlying writer hit.
func (rw *RelationWriter) Flush() error {
	rw.cw.Flush()
	return rw.cw.Error()
}

// WriteRelation writes a header plus one row per tuple.
func WriteRelation(w io.Writer, schema *model.Schema, tuples []*model.Tuple) error {
	rw, err := NewRelationWriter(w, schema)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		if err := rw.Write(t); err != nil {
			return err
		}
	}
	return rw.Flush()
}
