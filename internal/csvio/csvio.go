// Package csvio loads and saves relations as CSV so the command-line
// tools can operate on user data: the first row is the header (attribute
// names), every other row a tuple. Values are interpreted by
// model.Parse — "null" and the empty string are null, numerals are
// numeric, true/false boolean, everything else string. Writing uses
// quoted strings only when CSV requires it.
//
// RelationReader reads tuples incrementally — one Read call per row,
// with per-row arity errors that name the offending row and allow
// reading to continue; ReadRelation and friends are convenience
// wrappers that drain it. A UTF-8 byte-order mark at the start of the
// input is stripped (spreadsheet exports routinely prepend one).
package csvio

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"repro/internal/model"
)

// RelationReader streams a CSV relation: the header row is consumed at
// construction (fixing the schema), Read returns one tuple per call.
type RelationReader struct {
	cr     *csv.Reader
	schema *model.Schema
	row    int // 1-based row number of the last record read
}

// NewRelationReader reads the header row and fixes the relation schema
// (named name). An empty input is an error; a leading UTF-8 BOM is
// stripped.
func NewRelationReader(r io.Reader, name string) (*RelationReader, error) {
	br := bufio.NewReader(r)
	if lead, err := br.Peek(3); err == nil && string(lead) == "\xef\xbb\xbf" {
		br.Discard(3)
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1 // arity checked per row, with row numbers
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("csvio: empty input")
	}
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	schema, err := model.NewSchema(name, header...)
	if err != nil {
		return nil, err
	}
	return &RelationReader{cr: cr, schema: schema, row: 1}, nil
}

// Schema returns the relation schema read from the header row.
func (rr *RelationReader) Schema() *model.Schema { return rr.schema }

// Read returns the next tuple, or io.EOF after the last row. A row
// whose field count differs from the header's arity is an error naming
// the 1-based row number; reading may continue past it.
func (rr *RelationReader) Read() (*model.Tuple, error) {
	record, err := rr.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	rr.row++
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	if len(record) != rr.schema.Arity() {
		return nil, fmt.Errorf("csvio: row %d has %d fields, want %d", rr.row, len(record), rr.schema.Arity())
	}
	t := model.NewTuple(rr.schema)
	for j, cell := range record {
		t.SetAt(j, model.Parse(cell))
	}
	return t, nil
}

// ReadAll drains the reader, returning every remaining tuple; it stops
// at the first malformed row.
func (rr *RelationReader) ReadAll() ([]*model.Tuple, error) {
	var tuples []*model.Tuple
	for {
		t, err := rr.Read()
		if err == io.EOF {
			return tuples, nil
		}
		if err != nil {
			return tuples, err
		}
		tuples = append(tuples, t)
	}
}

// ReadRelation parses CSV into a schema (named name) and its tuples.
func ReadRelation(r io.Reader, name string) (*model.Schema, []*model.Tuple, error) {
	rr, err := NewRelationReader(r, name)
	if err != nil {
		return nil, nil, err
	}
	tuples, err := rr.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	return rr.Schema(), tuples, nil
}

// ReadRelationFile is ReadRelation over a file path; the relation is
// named after the path.
func ReadRelationFile(path string) (*model.Schema, []*model.Tuple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadRelation(f, path)
}

// ReadEntityInstance loads a CSV as a single entity instance.
func ReadEntityInstance(r io.Reader, name string) (*model.EntityInstance, error) {
	schema, tuples, err := ReadRelation(r, name)
	if err != nil {
		return nil, err
	}
	ie := model.NewEntityInstance(schema)
	for _, t := range tuples {
		ie.MustAdd(t)
	}
	return ie, nil
}

// ReadMaster loads a CSV as a master relation.
func ReadMaster(r io.Reader, name string) (*model.MasterRelation, error) {
	schema, tuples, err := ReadRelation(r, name)
	if err != nil {
		return nil, err
	}
	im := model.NewMasterRelation(schema)
	for _, t := range tuples {
		im.MustAdd(t)
	}
	return im, nil
}

// WriteRelation writes a header plus one row per tuple.
func WriteRelation(w io.Writer, schema *model.Schema, tuples []*model.Tuple) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(schema.Attrs()); err != nil {
		return err
	}
	row := make([]string, schema.Arity())
	for _, t := range tuples {
		for j := range row {
			v := t.At(j)
			if v.IsNull() {
				row[j] = ""
			} else {
				row[j] = v.String()
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
