package wal

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/pipeline"
)

// testSchema builds the small relation the log tests speak.
func testSchema(t *testing.T) *model.Schema {
	t.Helper()
	return model.MustSchema("people", "name", "city", "zip")
}

// up builds one single-tuple update for key with the given values.
func up(t *testing.T, s *model.Schema, key string, vals ...model.Value) pipeline.Update {
	t.Helper()
	return pipeline.Update{Key: key, Tuples: []*model.Tuple{model.MustTuple(s, vals...)}}
}

func mustOpen(t *testing.T, dir string, s *model.Schema, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte{0xAB}, 3000)}
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	r := bytes.NewReader(buf)
	for i, want := range payloads {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q, want %q", i, got, want)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Fatalf("past the last frame: got %v, want io.EOF", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	s := testSchema(t)
	updates := []pipeline.Update{
		up(t, s, "a", model.S("ann"), model.S("nyc"), model.I(10001)),
		up(t, s, "b", model.NullValue(), model.F(2.5), model.B(true)),
		{Key: "c", Tuples: []*model.Tuple{
			model.MustTuple(s, model.S("cy"), model.NullValue(), model.NullValue()),
			model.MustTuple(s, model.S("cy"), model.S("sf"), model.I(94107)),
		}},
	}
	payload := encodeBatch(42, updates)
	got, err := decodeBatch(payload, s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 42 || len(got.Updates) != len(updates) {
		t.Fatalf("decoded seq %d / %d updates, want 42 / %d", got.Seq, len(got.Updates), len(updates))
	}
	for i, u := range got.Updates {
		if u.Key != updates[i].Key || len(u.Tuples) != len(updates[i].Tuples) {
			t.Fatalf("update %d: key %q (%d tuples), want %q (%d)",
				i, u.Key, len(u.Tuples), updates[i].Key, len(updates[i].Tuples))
		}
		for j, tp := range u.Tuples {
			if tp.Schema() != s {
				t.Fatalf("update %d tuple %d decoded on the wrong schema", i, j)
			}
			if !tp.EqualTo(updates[i].Tuples[j]) {
				t.Fatalf("update %d tuple %d: got %s, want %s", i, j, tp, updates[i].Tuples[j])
			}
		}
	}
}

// TestValueRoundTrip drives every value kind — the NaN Norm sentinel
// included — through the codec bit-for-bit.
func TestValueRoundTrip(t *testing.T) {
	nan := model.F(math.NaN()).Norm()
	vals := []model.Value{
		model.NullValue(), model.S(""), model.S("héllo\x00world"),
		model.I(0), model.I(-1 << 60), model.F(2.5), model.F(math.Inf(-1)),
		model.B(true), model.B(false), nan,
	}
	var b []byte
	for _, v := range vals {
		b = appendValue(b, v)
	}
	d := &decoder{buf: b}
	for i, want := range vals {
		got, err := d.value()
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got.Key() != want.Key() {
			t.Fatalf("value %d: got %q, want %q", i, got.Key(), want.Key())
		}
	}
	if d.off != len(b) {
		t.Fatalf("decoder left %d bytes", len(b)-d.off)
	}
}

func TestAppendReopenResume(t *testing.T) {
	dir := t.TempDir()
	s := testSchema(t)
	st := mustOpen(t, dir, s, Options{})
	for i, name := range []string{"ann", "bob"} {
		seq, err := st.LogApply([]pipeline.Update{up(t, s, name, model.S(name), model.NullValue(), model.NullValue())})
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: sequence numbering must resume, not restart.
	st = mustOpen(t, dir, s, Options{})
	seq, err := st.LogApply([]pipeline.Update{up(t, s, "cy", model.S("cy"), model.NullValue(), model.NullValue())})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("post-reopen append got seq %d, want 3", seq)
	}
	batches, err := st.readTail(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("read %d batches, want 3", len(batches))
	}
	for i, b := range batches {
		if b.Seq != uint64(i+1) {
			t.Fatalf("batch %d carries seq %d", i, b.Seq)
		}
	}
	st.Close()
}

// TestTornTailDropped cuts the log at several distinct points inside
// its final record — mid-header, mid-payload, one byte short — and at
// a flipped payload bit, and proves every case drops exactly the last
// record: never a panic, never a partial batch, never an earlier one.
func TestTornTailDropped(t *testing.T) {
	s := testSchema(t)
	build := func(t *testing.T) (string, int64) {
		dir := t.TempDir()
		st := mustOpen(t, dir, s, Options{})
		var before int64
		for _, name := range []string{"ann", "bob", "cy"} {
			if name == "cy" {
				before = st.Stats().WALBytes
			}
			if _, err := st.LogApply([]pipeline.Update{up(t, s, name, model.S(name), model.S("nyc"), model.I(1))}); err != nil {
				t.Fatal(err)
			}
		}
		st.Close()
		return dir, before
	}

	check := func(t *testing.T, dir string) {
		st := mustOpen(t, dir, s, Options{})
		defer st.Close()
		batches, err := st.readTail(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(batches) != 2 {
			t.Fatalf("recovered %d batches, want the 2 whole ones", len(batches))
		}
		for i, b := range batches {
			if b.Seq != uint64(i+1) || len(b.Updates) != 1 {
				t.Fatalf("batch %d: seq %d with %d updates", i, b.Seq, len(b.Updates))
			}
		}
		// Appending must extend the truncated log, and the dropped
		// record's sequence number gets reused: it never happened.
		seq, err := st.LogApply([]pipeline.Update{up(t, s, "dee", model.S("dee"), model.NullValue(), model.NullValue())})
		if err != nil {
			t.Fatal(err)
		}
		if seq != 3 {
			t.Fatalf("append after torn tail got seq %d, want 3", seq)
		}
	}

	cuts := map[string]func(size, before int64) int64{
		"mid-header":     func(size, before int64) int64 { return before + 4 },
		"mid-payload":    func(size, before int64) int64 { return before + 8 + 2 },
		"one-byte-short": func(size, before int64) int64 { return size - 1 },
	}
	for name, cut := range cuts {
		t.Run(name, func(t *testing.T) {
			dir, before := build(t)
			path := filepath.Join(dir, walName)
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, cut(info.Size(), before)); err != nil {
				t.Fatal(err)
			}
			check(t, dir)
		})
	}

	t.Run("bit-flip", func(t *testing.T) {
		dir, before := build(t)
		path := filepath.Join(dir, walName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[before+8+1] ^= 0x40 // one payload bit of the last record
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		check(t, dir)
	})

	t.Run("garbage-appended", func(t *testing.T) {
		dir, _ := build(t)
		f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3}) // absurd length prefix
		f.Close()
		st := mustOpen(t, dir, s, Options{})
		defer st.Close()
		batches, err := st.readTail(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(batches) != 3 { // all three records were whole here
			t.Fatalf("recovered %d batches, want 3", len(batches))
		}
	})
}

func TestOpenRejectsForeignFiles(t *testing.T) {
	s := testSchema(t)
	t.Run("not-a-log", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), []byte("definitely,not,a,log\n"), 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, s, Options{}); err == nil {
			t.Fatal("opened a non-log file as a WAL")
		}
	})
	t.Run("foreign-schema", func(t *testing.T) {
		dir := t.TempDir()
		mustOpen(t, dir, s, Options{}).Close()
		other := model.MustSchema("people", "name", "city") // same name, different arity
		if _, err := Open(dir, other, Options{}); err == nil {
			t.Fatal("opened a people(name,city,zip) log with schema people(name,city)")
		}
	})
}

func TestLogApplyRejectsForeignSchemaTuples(t *testing.T) {
	dir := t.TempDir()
	s := testSchema(t)
	st := mustOpen(t, dir, s, Options{})
	defer st.Close()
	// Structurally identical but a DIFFERENT pointer: live Apply would
	// fail these tuples per entity, but a decoded replay would rebuild
	// them on the store schema and succeed — divergence. The store must
	// reject the batch outright.
	twin := model.MustSchema("people", "name", "city", "zip")
	_, err := st.LogApply([]pipeline.Update{up(t, twin, "x", model.S("x"), model.NullValue(), model.NullValue())})
	if err == nil {
		t.Fatal("logged a tuple of a foreign schema pointer")
	}
	if _, err := st.LogApply([]pipeline.Update{{Key: "y", Tuples: []*model.Tuple{nil}}}); err == nil {
		t.Fatal("logged a nil tuple")
	}
	if got := st.Stats().LastSeq; got != 0 {
		t.Fatalf("rejected batches consumed sequence numbers: LastSeq %d", got)
	}
}

func TestSyncPolicies(t *testing.T) {
	s := testSchema(t)
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			st := mustOpen(t, t.TempDir(), s, Options{Fsync: pol, Interval: 5 * time.Millisecond})
			if _, err := st.LogApply([]pipeline.Update{up(t, s, "a", model.S("a"), model.NullValue(), model.NullValue())}); err != nil {
				t.Fatal(err)
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			got := st.Stats()
			if got.Fsync != pol || got.LastSeq != 1 || got.WALBytes == 0 || got.LastSync.IsZero() {
				t.Fatalf("stats %+v look wrong for policy %s", got, pol)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			// Close is idempotent enough to not explode a second time.
			st.Close()
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("parsed an unknown policy")
	}
}
