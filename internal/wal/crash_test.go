// Crash-injection harness: every test here "kills" the process at a
// named fault point (the store's testFault hook freezes the on-disk
// state exactly as a SIGKILL there would), restarts from the
// directory, retries whatever the client never got an ack for, and
// demands the resumed stream be byte-identical to one that never
// crashed. Three distinct fault points are covered: mid-append (with
// torn tails of several shapes), after the snapshot tmp is written
// but before it is published, and after the snapshot is published but
// before the log is truncated.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// neverCrashed is the control: the same waves applied to a
// memory-only updater in one uninterrupted run.
func neverCrashed(t *testing.T, entities int) []string {
	t.Helper()
	ds, cfg, waves := testWaves(t, entities)
	u := newUpdater(t, ds, cfg)
	applyAll(t, u, waves)
	return streamFingerprint(t, u)
}

// TestCrashMidAppend kills the store inside LogApply, leaving zero or
// a prefix of the in-flight record's bytes on disk. The Apply fails
// (the batch was never acknowledged), the restarted process drops the
// torn tail, recovers the acknowledged batches, and the client's
// retry of the lost batch converges on the never-crashed stream.
func TestCrashMidAppend(t *testing.T) {
	const entities = 6
	want := neverCrashed(t, entities)

	cases := []struct {
		name string
		torn int
	}{
		// A frame is an 8-byte length+CRC header plus payload; tear it
		// at every interesting boundary.
		{"nothing-written", 1 << 30},
		{"mid-header", 3},
		{"mid-payload", 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds, cfg, waves := testWaves(t, entities)
			dir := t.TempDir()
			live := newUpdater(t, ds, cfg)
			st := mustOpen(t, dir, ds.Schema, Options{Fsync: SyncAlways})
			if _, err := st.Recover(live); err != nil {
				t.Fatal(err)
			}
			live.AttachPersister(st)
			applyAll(t, live, waves[:2])

			// Arm the crash: the next append dies after tc.torn bytes.
			st.testFault = func(point string) error {
				if point == "append" {
					return TornFault(tc.torn)
				}
				return nil
			}
			if _, _, err := live.Apply(waves[2]); err == nil {
				t.Fatal("apply survived the injected crash")
			}
			// SIGKILL: the store is abandoned — no Close, no final sync.

			rds, rcfg := restartDataset(t, entities)
			rwaves := wavesOf(rds)
			re := newUpdater(t, rds, rcfg)
			st2 := mustOpen(t, dir, rds.Schema, Options{})
			defer st2.Close()
			rs, err := st2.Recover(re)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Batches != 2 || rs.LastSeq != 2 || rs.HadSnapshot {
				t.Fatalf("recovered %+v: want exactly the 2 acknowledged batches", rs)
			}
			re.AttachPersister(st2)
			// The client retries the batch it never got an ack for.
			if _, _, err := re.Apply(rwaves[2]); err != nil {
				t.Fatal(err)
			}
			if got := st2.Stats().LastSeq; got != 3 {
				t.Fatalf("retried batch logged at seq %d, want 3 — the torn record's number was not reclaimed", got)
			}
			diffStreams(t, "crash mid-append ("+tc.name+")", streamFingerprint(t, re), want)
		})
	}
}

// TestCrashBeforeSnapshotPublish kills the checkpoint after
// snapshot.tmp is written and fsynced but before the rename. The tmp
// file must be ignored (and cleared) on restart; the log alone still
// recovers everything.
func TestCrashBeforeSnapshotPublish(t *testing.T) {
	const entities = 6
	want := neverCrashed(t, entities)

	ds, cfg, waves := testWaves(t, entities)
	dir := t.TempDir()
	live := newUpdater(t, ds, cfg)
	st := mustOpen(t, dir, ds.Schema, Options{Fsync: SyncAlways})
	if _, err := st.Recover(live); err != nil {
		t.Fatal(err)
	}
	live.AttachPersister(st)
	applyAll(t, live, waves[:2])

	st.testFault = func(point string) error {
		if point == "snapshot-written" {
			return fmt.Errorf("injected crash: snapshot written, not published")
		}
		return nil
	}
	if _, err := st.Checkpoint(live); err == nil {
		t.Fatal("checkpoint survived the injected crash")
	}
	if _, err := os.Stat(filepath.Join(dir, tmpName)); err != nil {
		t.Fatalf("the fault point should leave snapshot.tmp behind: %v", err)
	}
	// SIGKILL.

	rds, rcfg := restartDataset(t, entities)
	rwaves := wavesOf(rds)
	re := newUpdater(t, rds, rcfg)
	st2 := mustOpen(t, dir, rds.Schema, Options{})
	defer st2.Close()
	rs, err := st2.Recover(re)
	if err != nil {
		t.Fatal(err)
	}
	if rs.HadSnapshot {
		t.Fatalf("an UNPUBLISHED snapshot was restored: %+v", rs)
	}
	if rs.Batches != 2 || rs.LastSeq != 2 {
		t.Fatalf("recovered %+v: want 2 batches from the log", rs)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(err) {
		t.Fatalf("restart left snapshot.tmp in place (err=%v)", err)
	}
	re.AttachPersister(st2)
	if _, _, err := re.Apply(rwaves[2]); err != nil {
		t.Fatal(err)
	}
	diffStreams(t, "crash before snapshot publish", streamFingerprint(t, re), want)
}

// TestCrashAfterSnapshotPublish kills the checkpoint after the rename
// — the snapshot is durable but the log it covers was never
// truncated. Restart must restore the snapshot and SKIP the log
// records it already covers, not replay them on top.
func TestCrashAfterSnapshotPublish(t *testing.T) {
	const entities = 6
	want := neverCrashed(t, entities)

	ds, cfg, waves := testWaves(t, entities)
	dir := t.TempDir()
	live := newUpdater(t, ds, cfg)
	st := mustOpen(t, dir, ds.Schema, Options{Fsync: SyncAlways})
	if _, err := st.Recover(live); err != nil {
		t.Fatal(err)
	}
	live.AttachPersister(st)
	applyAll(t, live, waves[:2])
	logSize := st.Stats().WALBytes

	st.testFault = func(point string) error {
		if point == "snapshot-renamed" {
			return fmt.Errorf("injected crash: snapshot published, log untruncated")
		}
		return nil
	}
	if _, err := st.Checkpoint(live); err == nil {
		t.Fatal("checkpoint survived the injected crash")
	}
	// SIGKILL. The durable directory now holds BOTH a snapshot
	// covering seq 2 and a log still containing seqs 1–2.
	if fi, err := os.Stat(filepath.Join(dir, walName)); err != nil || fi.Size() != logSize {
		t.Fatalf("log was truncated before the crash (size %v, want %d, err=%v)", fi, logSize, err)
	}

	rds, rcfg := restartDataset(t, entities)
	rwaves := wavesOf(rds)
	re := newUpdater(t, rds, rcfg)
	st2 := mustOpen(t, dir, rds.Schema, Options{})
	defer st2.Close()
	rs, err := st2.Recover(re)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HadSnapshot || rs.SnapshotSeq != 2 {
		t.Fatalf("recovered %+v: want the published snapshot at seq 2", rs)
	}
	if rs.Batches != 0 {
		t.Fatalf("replayed %d batches the snapshot already covers — double apply", rs.Batches)
	}
	re.AttachPersister(st2)
	if _, _, err := re.Apply(rwaves[2]); err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().LastSeq; got != 3 {
		t.Fatalf("stream resumed at seq %d, want 3", got)
	}
	diffStreams(t, "crash after snapshot publish", streamFingerprint(t, re), want)
}

// TestCrashLoop hammers the mid-append crash repeatedly — every wave
// first dies mid-record, then a full process restart recovers and
// retries it — proving recovery composes: each restart builds on the
// previous crash's directory, torn tail and all.
func TestCrashLoop(t *testing.T) {
	const entities = 4
	want := neverCrashed(t, entities)
	dir := t.TempDir()

	for wave := 0; wave < 3; wave++ {
		// Process N: recovers, then dies 5 bytes into this wave's record.
		ds, cfg, waves := testWaves(t, entities)
		u := newUpdater(t, ds, cfg)
		st := mustOpen(t, dir, ds.Schema, Options{Fsync: SyncAlways})
		rs, err := st.Recover(u)
		if err != nil {
			t.Fatalf("restart %d: %v", wave, err)
		}
		if rs.Batches != wave {
			t.Fatalf("restart %d recovered %d batches, want %d", wave, rs.Batches, wave)
		}
		u.AttachPersister(st)
		st.testFault = func(point string) error {
			if point == "append" {
				return TornFault(5)
			}
			return nil
		}
		if _, _, err := u.Apply(waves[wave]); err == nil {
			t.Fatalf("restart %d: apply survived the injected crash", wave)
		}
		// SIGKILL: abandon st without Close.

		// Process N+1: recovers past the torn tail and retries the
		// unacknowledged wave, which now sticks.
		rds, rcfg := restartDataset(t, entities)
		rwaves := wavesOf(rds)
		r := newUpdater(t, rds, rcfg)
		st2 := mustOpen(t, dir, rds.Schema, Options{Fsync: SyncAlways})
		rs2, err := st2.Recover(r)
		if err != nil {
			t.Fatalf("retry restart %d: %v", wave, err)
		}
		if rs2.Batches != wave {
			t.Fatalf("retry restart %d recovered %d batches, want %d", wave, rs2.Batches, wave)
		}
		r.AttachPersister(st2)
		if _, _, err := r.Apply(rwaves[wave]); err != nil {
			t.Fatalf("retry %d: %v", wave, err)
		}
		if wave == 2 {
			diffStreams(t, "crash loop", streamFingerprint(t, r), want)
		}
		st2.Close()
	}
}

// TestAppendWriteErrorHealsTail pins the SAME-PROCESS tail repair: a
// short write (disk full, not a crash) leaves torn bytes, the process
// lives on, and later acked appends must NOT land beyond the tear —
// replay stops at the first torn record, so they would be lost.
func TestAppendWriteErrorHealsTail(t *testing.T) {
	ds, cfg, waves := testWaves(t, 2)
	dir := t.TempDir()
	u := newUpdater(t, ds, cfg)
	st := mustOpen(t, dir, ds.Schema, Options{})
	if _, err := st.Recover(u); err != nil {
		t.Fatal(err)
	}
	u.AttachPersister(st)
	applyAll(t, u, waves[:1])
	clean := st.Stats().WALBytes

	// The short write: 5 bytes land, the append errors, we survive.
	st.testFault = func(point string) error { return ShortWriteFault(5) }
	if _, _, err := u.Apply(waves[1]); err == nil {
		t.Fatal("apply survived the injected write failure")
	}
	st.testFault = nil

	// The store lives on. Without tail repair the next acked append
	// would land after 5 bytes of garbage and be lost on replay.
	if _, _, err := u.Apply(waves[1]); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().WALBytes; got <= clean {
		t.Fatalf("second wave did not reach the log (%d bytes, clean was %d)", got, clean)
	}
	st.Close()

	rds, rcfg := restartDataset(t, 2)
	re := newUpdater(t, rds, rcfg)
	st2 := mustOpen(t, dir, rds.Schema, Options{})
	defer st2.Close()
	rs, err := st2.Recover(re)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Batches != 2 {
		t.Fatalf("recovered %d batches, want both acked waves — the post-failure append was stranded", rs.Batches)
	}
	diffStreams(t, "healed tail", streamFingerprint(t, re), streamFingerprint(t, u))
}
