// Record framing and payload codec for the durable update stream.
//
// Everything the store writes — WAL batch records, the schema header
// frame, the snapshot sections — travels inside one frame shape:
//
//	[4-byte little-endian payload length]
//	[4-byte little-endian CRC-32C of the payload]
//	[payload]
//
// A frame is valid only when the full payload is present AND its CRC
// matches; anything else (a short header, a short payload, a flipped
// bit, a garbage length) is a torn tail. Torn tails are DETECTED and
// DROPPED — never guessed at, never partially applied — which is the
// whole crash-safety story: a batch is either wholly inside the log
// behind a matching checksum, or it never happened (DESIGN.md
// invariant 6). FuzzWALDecode drives arbitrary bytes through the
// decoder to pin "no panic, no CRC-less record" down.
//
// Batch payloads are schema-relative: tuples are written as their
// value rows only, and the decoder rebuilds them on the store's own
// schema. Values serialize by kind tag; the one synthetic value the
// model can hand us — the NaN canonical sentinel produced by
// Value.Norm — gets its own tag so a persisted dictionary round-trips
// bit-for-bit.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/model"
	"repro/internal/pipeline"
)

// maxRecord bounds a single frame's payload. It exists to keep a
// corrupted length prefix from asking the decoder to allocate
// gigabytes: any frame claiming more than this is treated as a torn
// tail. 64 MiB is far past what a request-sized update batch (the
// serving layer caps bodies at single-digit MiB) or a demo-scale
// snapshot section can produce.
const maxRecord = 64 << 20

// castagnoli is the CRC-32C table; Castagnoli is hardware-accelerated
// on amd64/arm64, which keeps checksumming off the append hot path.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcOf is the one checksum every frame in the store uses.
func crcOf(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// value kind tags. These are the on-disk contract — never renumber.
const (
	tagNull   = 0
	tagString = 1
	tagInt    = 2
	tagFloat  = 3
	tagBool   = 4
	// tagNaNNorm is the canonical NaN sentinel Value.Norm produces
	// (Bool-kinded, payload "NaN"). It can reach a dictionary via
	// Intern(F(NaN).Norm()) and must survive a snapshot round-trip
	// exactly, so it gets its own tag instead of being folded into a
	// plain bool or float.
	tagNaNNorm = 5
)

// appendUvarint / appendVarint are binary.PutUvarint over an
// append-style buffer.
func appendUvarint(b []byte, x uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], x)]...)
}

func appendVarint(b []byte, x int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutVarint(tmp[:], x)]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendValue serializes one attribute value.
func appendValue(b []byte, v model.Value) []byte {
	switch v.Kind() {
	case model.Null:
		return append(b, tagNull)
	case model.String:
		b = append(b, tagString)
		return appendString(b, v.Str())
	case model.Int:
		b = append(b, tagInt)
		return appendVarint(b, v.Int())
	case model.Float:
		b = append(b, tagFloat)
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.Float()))
		return append(b, tmp[:]...)
	case model.Bool:
		if v.Str() == "NaN" {
			// The Norm sentinel for NaN (see package comment).
			return append(b, tagNaNNorm)
		}
		b = append(b, tagBool)
		if v.Bool() {
			return append(b, 1)
		}
		return append(b, 0)
	}
	// Unreachable for values the model can construct; encode as null so
	// the frame stays well-formed rather than torn.
	return append(b, tagNull)
}

// decoder walks a payload buffer; every read reports malformed input
// as an error instead of panicking (the fuzz target's contract).
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated uvarint at offset %d", d.off)
	}
	d.off += n
	return x, nil
}

func (d *decoder) varint() (int64, error) {
	x, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated varint at offset %d", d.off)
	}
	d.off += n
	return x, nil
}

func (d *decoder) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(d.buf)-d.off) {
		return nil, fmt.Errorf("wal: %d-byte field overruns payload at offset %d", n, d.off)
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(n)
	return string(b), err
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("wal: truncated payload at offset %d", d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) value() (model.Value, error) {
	tag, err := d.byte()
	if err != nil {
		return model.Value{}, err
	}
	switch tag {
	case tagNull:
		return model.NullValue(), nil
	case tagString:
		s, err := d.string()
		return model.S(s), err
	case tagInt:
		i, err := d.varint()
		return model.I(i), err
	case tagFloat:
		b, err := d.bytes(8)
		if err != nil {
			return model.Value{}, err
		}
		return model.F(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case tagBool:
		b, err := d.byte()
		if err != nil || b > 1 {
			return model.Value{}, fmt.Errorf("wal: malformed bool at offset %d", d.off)
		}
		return model.B(b == 1), nil
	case tagNaNNorm:
		return model.F(math.NaN()).Norm(), nil
	}
	return model.Value{}, fmt.Errorf("wal: unknown value tag %d at offset %d", tag, d.off)
}

// appendFrame wraps payload into the length+CRC frame.
func appendFrame(b, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// readFrame reads one frame from r. Any malformation — short header,
// absurd length, short payload, CRC mismatch — returns errTorn wrapped
// with the detail; a clean EOF at a frame boundary returns io.EOF.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short frame header: %v", errTorn, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxRecord {
		return nil, fmt.Errorf("%w: frame claims %d bytes (limit %d)", errTorn, n, maxRecord)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short frame payload: %v", errTorn, err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[4:]); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", errTorn, want, got)
	}
	return payload, nil
}

// Batch is one decoded WAL record: an update batch together with the
// authoritative sequence number the log assigned it.
type Batch struct {
	Seq     uint64
	Updates []pipeline.Update
}

// encodeBatch builds a batch record payload (not yet framed).
func encodeBatch(seq uint64, updates []pipeline.Update) []byte {
	n := 16
	for _, up := range updates {
		n += len(up.Key) + 8 + 16*len(up.Tuples)
	}
	b := make([]byte, 0, n)
	b = appendUvarint(b, seq)
	b = appendUvarint(b, uint64(len(updates)))
	for _, up := range updates {
		b = appendString(b, up.Key)
		b = appendUvarint(b, uint64(len(up.Tuples)))
		for _, t := range up.Tuples {
			arity := t.Schema().Arity()
			b = appendUvarint(b, uint64(arity))
			for i := 0; i < arity; i++ {
				b = appendValue(b, t.At(i))
			}
		}
	}
	return b
}

// decodeBatch rebuilds a batch record on the given schema. Tuples come
// back on that schema pointer regardless of which (structurally
// identical) schema they were encoded from — the store validates
// structural identity at append time.
func decodeBatch(payload []byte, schema *model.Schema) (Batch, error) {
	d := &decoder{buf: payload}
	var out Batch
	seq, err := d.uvarint()
	if err != nil {
		return out, err
	}
	out.Seq = seq
	nups, err := d.uvarint()
	if err != nil {
		return out, err
	}
	if nups > uint64(len(payload)) { // each update costs ≥1 byte
		return out, fmt.Errorf("wal: batch claims %d updates in a %d-byte payload", nups, len(payload))
	}
	out.Updates = make([]pipeline.Update, 0, nups)
	for u := uint64(0); u < nups; u++ {
		key, err := d.string()
		if err != nil {
			return out, err
		}
		nt, err := d.uvarint()
		if err != nil {
			return out, err
		}
		if nt > uint64(len(payload)) {
			return out, fmt.Errorf("wal: update claims %d tuples in a %d-byte payload", nt, len(payload))
		}
		tuples := make([]*model.Tuple, 0, nt)
		for i := uint64(0); i < nt; i++ {
			t, err := d.tuple(schema)
			if err != nil {
				return out, err
			}
			tuples = append(tuples, t)
		}
		out.Updates = append(out.Updates, pipeline.Update{Key: key, Tuples: tuples})
	}
	if d.off != len(payload) {
		return out, fmt.Errorf("wal: %d trailing bytes after batch record", len(payload)-d.off)
	}
	return out, nil
}

func (d *decoder) tuple(schema *model.Schema) (*model.Tuple, error) {
	arity, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if arity != uint64(schema.Arity()) {
		return nil, fmt.Errorf("wal: tuple has %d values, schema %s has %d attributes",
			arity, schema.Name(), schema.Arity())
	}
	t := model.NewTuple(schema)
	for i := 0; i < int(arity); i++ {
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		t.SetAt(i, v)
	}
	return t, nil
}

// encodeSchema captures a schema structurally, so a store refuses to
// replay a log against a different relation.
func encodeSchema(s *model.Schema) []byte {
	b := appendString(nil, s.Name())
	b = appendUvarint(b, uint64(s.Arity()))
	for i := 0; i < s.Arity(); i++ {
		b = appendString(b, s.Attr(i))
	}
	return b
}

// checkSchema verifies a decoded schema payload structurally matches
// the store's schema.
func checkSchema(payload []byte, schema *model.Schema) error {
	d := &decoder{buf: payload}
	name, err := d.string()
	if err != nil {
		return err
	}
	arity, err := d.uvarint()
	if err != nil {
		return err
	}
	mismatch := name != schema.Name() || arity != uint64(schema.Arity())
	attrs := make([]string, 0, schema.Arity())
	for i := uint64(0); i < arity && !mismatch; i++ {
		a, err := d.string()
		if err != nil {
			return err
		}
		attrs = append(attrs, a)
		if a != schema.Attr(int(i)) {
			mismatch = true
		}
	}
	if mismatch {
		return fmt.Errorf("wal: store was written for schema %s(%v), opened with %s",
			name, attrs, schema)
	}
	return nil
}
