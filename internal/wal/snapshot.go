// Snapshots and recovery: the compaction half of the durable update
// stream. A snapshot captures the whole live store — every entity's
// raw tuples plus the append-only value dictionary, in ID order — at
// one quiesced sequence number; once it is durable the log restarts
// empty, so the log's length is bounded by the snapshot cadence
// instead of the stream's lifetime. Recovery inverts it: restore the
// dictionary (IDs land exactly where they were), re-absorb every
// snapshotted entity, then replay the WAL records newer than the
// snapshot in sequence order.
package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/model"
	"repro/internal/pipeline"
)

// WriteSnapshot persists a point-in-time snapshot of the store state
// and truncates the log it covers. The caller must guarantee the
// state is QUIESCED: keys/entities reflect every batch up to the
// store's current sequence number and no Apply is in flight —
// Checkpoint arranges exactly that; use it instead of calling this
// directly.
func (s *Store) WriteSnapshot(dict *model.Dict, keys []string, entities []*model.EntityInstance) (uint64, error) {
	if len(keys) != len(entities) {
		return 0, fmt.Errorf("wal: snapshot has %d keys but %d entities", len(keys), len(entities))
	}
	s.mu.Lock()
	seq := s.seq
	closed := s.f == nil
	s.mu.Unlock()
	if closed {
		return 0, fmt.Errorf("wal: store is closed")
	}

	body := encodeSnapshotBody(s.schema, dict, keys, entities)
	buf := append([]byte(snapMagic), appendFrame(nil, appendUvarint(nil, seq))...)
	buf = appendFrame(buf, body)

	tmp := filepath.Join(s.dir, tmpName)
	if err := writeFileSync(tmp, buf); err != nil {
		return 0, err
	}
	if fault := s.testFault; fault != nil {
		if err := fault("snapshot-written"); err != nil {
			return 0, err // crash: tmp exists, durable snapshot unchanged
		}
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return 0, fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return 0, err
	}
	if fault := s.testFault; fault != nil {
		if err := fault("snapshot-renamed"); err != nil {
			return 0, err // crash: new snapshot durable, log not yet truncated
		}
	}
	// The snapshot is durable; now the log may restart. Records ≤ seq
	// that survive a crash before this truncation are skipped on
	// replay, so every ordering of these steps recovers exactly.
	if err := s.resetLog(seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// resetLog swaps in a fresh, empty log (crash-safely, via rename) and
// records the snapshot coverage.
func (s *Store) resetLog(seq uint64) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("wal: store is closed")
	}
	tmp := filepath.Join(s.dir, walName+".new")
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := s.writeLogHeader(nf); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, walName)); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := s.syncDirLocked(); err != nil {
		nf.Close()
		return err
	}
	old := s.f
	s.f = nf
	size, _ := nf.Seek(0, io.SeekEnd)
	s.size, s.synced = size, size
	s.snap = seq
	old.Close()
	return nil
}

// syncDirLocked is syncDir callable with s.mu held (it touches no
// store state).
func (s *Store) syncDirLocked() error { return s.syncDir() }

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Checkpoint quiesces the updater (no Apply in flight, every logged
// batch fully absorbed), snapshots its entire state, and truncates
// the covered log. It returns the sequence number the snapshot
// covers. Concurrent checkpoints serialise; appends resume the moment
// the updater's gate drops.
func (s *Store) Checkpoint(u *pipeline.Updater) (uint64, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	var seq uint64
	err := u.Checkpoint(func(keys []string, entities []*model.EntityInstance) error {
		var werr error
		seq, werr = s.WriteSnapshot(u.Dict(), keys, entities)
		return werr
	})
	return seq, err
}

// snapshot body layout:
//
//	schema section        (same structural encoding as the log header)
//	dict:    uvarint n, then values for IDs 1..n-1 in ID order
//	entities: uvarint m, then m × (key, uvarint ntuples, tuples)
func encodeSnapshotBody(schema *model.Schema, dict *model.Dict, keys []string, entities []*model.EntityInstance) []byte {
	b := appendFrame(nil, encodeSchema(schema))
	// The dictionary is append-only, so "its size at this instant" is
	// a consistent prefix even while concurrent queries keep interning:
	// every ID a committed tuple carries was assigned before the
	// quiesce, hence is < n.
	n := dict.Size()
	b = appendUvarint(b, uint64(n))
	for id := 1; id < n; id++ { // ID 0 is null, present in every Dict
		b = appendValue(b, dict.ValueOf(uint32(id)))
	}
	b = appendUvarint(b, uint64(len(keys)))
	for i, key := range keys {
		b = appendString(b, key)
		tuples := entities[i].Tuples()
		b = appendUvarint(b, uint64(len(tuples)))
		for _, t := range tuples {
			b = appendUvarint(b, uint64(t.Schema().Arity()))
			for a := 0; a < t.Schema().Arity(); a++ {
				b = appendValue(b, t.At(a))
			}
		}
	}
	return b
}

// snapshotData is a decoded snapshot body.
type snapshotData struct {
	seq     uint64
	dict    []model.Value // values for IDs 1..len, in ID order
	keys    []string
	tuples  [][]*model.Tuple
	present bool
}

// readSnapshot loads and fully validates snapshot.dat; present=false
// when none exists.
func (s *Store) readSnapshot() (snapshotData, error) {
	var out snapshotData
	f, err := os.Open(filepath.Join(s.dir, snapName))
	if err != nil {
		if os.IsNotExist(err) {
			return out, nil
		}
		return out, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	seq, err := readSnapshotSeq(br)
	if err != nil {
		return out, err
	}
	body, err := readFrame(br)
	if err != nil {
		return out, fmt.Errorf("wal: snapshot body frame: %w", err)
	}
	d := &decoder{buf: body}
	schemaFrame, err := readFrameBuf(d)
	if err != nil {
		return out, err
	}
	if err := checkSchema(schemaFrame, s.schema); err != nil {
		return out, err
	}
	nd, err := d.uvarint()
	if err != nil {
		return out, err
	}
	if nd == 0 || nd > uint64(len(body)) {
		return out, fmt.Errorf("wal: snapshot claims a %d-value dictionary", nd)
	}
	out.dict = make([]model.Value, 0, nd-1)
	for i := uint64(1); i < nd; i++ {
		v, err := d.value()
		if err != nil {
			return out, err
		}
		out.dict = append(out.dict, v)
	}
	ne, err := d.uvarint()
	if err != nil {
		return out, err
	}
	if ne > uint64(len(body)) {
		return out, fmt.Errorf("wal: snapshot claims %d entities", ne)
	}
	out.keys = make([]string, 0, ne)
	out.tuples = make([][]*model.Tuple, 0, ne)
	for i := uint64(0); i < ne; i++ {
		key, err := d.string()
		if err != nil {
			return out, err
		}
		nt, err := d.uvarint()
		if err != nil {
			return out, err
		}
		if nt > uint64(len(body)) {
			return out, fmt.Errorf("wal: snapshot entity %q claims %d tuples", key, nt)
		}
		ts := make([]*model.Tuple, 0, nt)
		for j := uint64(0); j < nt; j++ {
			t, err := d.tuple(s.schema)
			if err != nil {
				return out, err
			}
			ts = append(ts, t)
		}
		out.keys = append(out.keys, key)
		out.tuples = append(out.tuples, ts)
	}
	if d.off != len(body) {
		return out, fmt.Errorf("wal: %d trailing bytes after snapshot body", len(body)-d.off)
	}
	out.seq, out.present = seq, true
	return out, nil
}

// readFrameBuf reads a nested frame out of an in-memory decoder.
func readFrameBuf(d *decoder) ([]byte, error) {
	hdr, err := d.bytes(8)
	if err != nil {
		return nil, err
	}
	n := uint64(hdr[0]) | uint64(hdr[1])<<8 | uint64(hdr[2])<<16 | uint64(hdr[3])<<24
	payload, err := d.bytes(n)
	if err != nil {
		return nil, err
	}
	want := uint32(hdr[4]) | uint32(hdr[5])<<8 | uint32(hdr[6])<<16 | uint32(hdr[7])<<24
	if got := crcOf(payload); got != want {
		return nil, fmt.Errorf("%w: nested frame CRC mismatch", errTorn)
	}
	return payload, nil
}

// RecoveryStats summarises what Recover rebuilt.
type RecoveryStats struct {
	// HadSnapshot reports whether a snapshot was restored.
	HadSnapshot bool
	// SnapshotSeq is the restored snapshot's coverage (0 without one).
	SnapshotSeq uint64
	// Entities is the number of live entities after recovery.
	Entities int
	// Batches is the number of WAL tail batches replayed.
	Batches int
	// LastSeq is the sequence number the stream resumes after.
	LastSeq uint64
}

// Empty reports whether there was nothing to recover — the signal a
// daemon uses to seed a brand-new store from CSV exactly once.
func (rs RecoveryStats) Empty() bool { return !rs.HadSnapshot && rs.LastSeq == 0 }

// Recover rebuilds the live store: the snapshot's dictionary and
// entities first, then every whole WAL record past the snapshot's
// sequence number, replayed through the updater in sequence order.
// The updater must be EMPTY (freshly built, nothing applied, no
// persister attached yet) and configured exactly as the run that
// wrote the log — recovery re-runs the same absorptions, and a batch
// that failed absorption then fails identically now, which is what
// keeps replayed state byte-identical to the pre-crash store. Attach
// the store with Updater.AttachPersister AFTER Recover returns, so
// replayed batches are not re-logged.
//
// One counter is NOT preserved: an entity restored from the snapshot
// absorbs its whole accumulated evidence as a single batch, so its
// Version restarts at 0 plus one per replayed tail batch, not at the
// pre-crash count. Verdicts, tuples (and their order), targets and
// candidates are byte-identical; version numbers are per-process
// bookkeeping, not part of the durable state.
func (s *Store) Recover(u *pipeline.Updater) (RecoveryStats, error) {
	var rs RecoveryStats
	if u.Len() != 0 {
		return rs, fmt.Errorf("wal: recovery needs an empty updater, this one holds %d entities", u.Len())
	}

	snap, err := s.readSnapshot()
	if err != nil {
		return rs, err
	}
	if snap.present {
		// Restore the dictionary first, in ID order. A freshly-built
		// updater is not dictionary-EMPTY: constructing the schema
		// groundwork interns the master relation and rule constants,
		// deterministically — and the snapshotted dictionary began
		// with that exact same prefix before the applied evidence grew
		// it. So verify the construction prefix matches value for
		// value, then intern the remainder; each remaining value must
		// land on 1 + the previous ID, so every snapshotted tuple's
		// cached ID row stays truthful after recovery.
		dict := u.Dict()
		have := dict.Size()
		if have-1 > len(snap.dict) {
			return rs, fmt.Errorf("wal: this updater's groundwork interned %d values, the snapshot only %d — different master data or rules",
				have-1, len(snap.dict))
		}
		for i, v := range snap.dict {
			id := uint32(i + 1)
			if int(id) < have {
				if got := dict.ValueOf(id); got.Key() != v.Key() {
					return rs, fmt.Errorf("wal: dictionary value %d is %s here but %s in the snapshot — different master data or rules",
						id, got, v)
				}
				continue
			}
			if got := dict.Intern(v); got != id {
				return rs, fmt.Errorf("wal: dictionary restore assigned ID %d to value %d", got, id)
			}
		}
		// Re-absorb every entity as one replay batch: keys register in
		// batch order, reproducing the pre-crash first-seen order.
		ups := make([]pipeline.Update, len(snap.keys))
		for i, key := range snap.keys {
			ups[i] = pipeline.Update{Key: key, Tuples: snap.tuples[i]}
		}
		if len(ups) > 0 {
			results, _, err := u.Replay(ups)
			if err != nil {
				return rs, fmt.Errorf("wal: restoring snapshot: %w", err)
			}
			for _, r := range results {
				if r.Err != nil && r.Deduction == nil {
					// A snapshotted entity was COMMITTED state; failing
					// to re-absorb it means the store and the updater
					// configuration disagree. Refuse, loudly.
					return rs, fmt.Errorf("wal: restoring snapshot: %w", r.Err)
				}
			}
		}
		rs.HadSnapshot, rs.SnapshotSeq, rs.LastSeq = true, snap.seq, snap.seq
	}

	batches, err := s.readTail(snap.seq)
	if err != nil {
		return rs, err
	}
	for _, b := range batches {
		// Per-entity errors are EXPECTED here: a batch that failed
		// absorption pre-crash fails identically on replay (the bound
		// and schema checks are deterministic), leaving the same state.
		if _, _, err := u.Replay(b.Updates); err != nil {
			return rs, fmt.Errorf("wal: replaying batch %d: %w", b.Seq, err)
		}
		rs.Batches++
		rs.LastSeq = b.Seq
	}
	rs.Entities = u.Len()
	return rs, nil
}

// readTail returns every whole batch record with sequence number
// beyond after, in log order. The log was already truncated to its
// last whole record at Open, but the read stays defensive: a torn or
// undecodable record ends the tail exactly as Open's scan would.
func (s *Store) readTail(after uint64) ([]Batch, error) {
	f, err := os.Open(filepath.Join(s.dir, walName))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != walMagic {
		return nil, fmt.Errorf("wal: %s exists but is not a write-ahead log", walName)
	}
	schemaFrame, err := readFrame(br)
	if err != nil {
		return nil, fmt.Errorf("wal: log schema frame: %w", err)
	}
	if err := checkSchema(schemaFrame, s.schema); err != nil {
		return nil, err
	}
	var out []Batch
	for {
		payload, err := readFrame(br)
		if err != nil {
			return out, nil // EOF or torn tail: the log ends here
		}
		rec, err := decodeBatch(payload, s.schema)
		if err != nil {
			return out, nil
		}
		if rec.Seq <= after {
			// Snapshotted before the truncation landed; already
			// covered by the restored snapshot.
			continue
		}
		out = append(out, rec)
	}
}
