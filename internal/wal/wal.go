// Package wal makes the live-entity store durable: an append-only,
// CRC-checksummed write-ahead log of Update batches, periodic
// snapshots of the raw tuples plus the append-only value dictionary,
// and a recovery path that replays snapshot + WAL tail through the
// Updater — so a relaccd restart (or a crash mid-batch) loses nothing
// that was acknowledged.
//
// A Store is the pipeline.Persister the Updater calls: Apply hands the
// raw batch to LogApply BEFORE touching any entity, LogApply assigns
// the batch its sequence number and appends one framed record, and the
// configured fsync policy decides when the bytes are forced to disk
// (SyncAlways group-commits: concurrent appenders share one fsync).
// The sequence numbers are authoritative — recovery replays batches in
// sequence order, and per-key apply order equals sequence order for
// every history the store can observe (the Updater logs and applies
// under a shared apply gate; see pipeline.Updater).
//
// Durability contract (DESIGN.md invariant 6): a batch is in the log
// entirely, behind a matching CRC, or it is not in the log at all.
// Recovery replays the snapshot, then every whole record after the
// snapshot's sequence number, and stops at the FIRST torn or
// corrupted record — a crash mid-append leaves a torn tail that is
// detected, dropped, and overwritten by the next append, never
// guessed at, never replayed as a partial batch. Replayed state is
// byte-identical to a fresh Updater fed the same batches
// (recovery_test.go extends the incremental ≡ fresh property 1a to
// replay ≡ fresh).
//
// On-disk layout under the store directory:
//
//	wal.log       magic "RACWAL01", one schema frame, then batch frames
//	snapshot.dat  magic "RACSNAP1", a meta frame (sequence number),
//	              then one body frame (schema, dictionary, entities)
//	snapshot.tmp  in-progress snapshot; ignored and removed at Open
//
// Checkpoint writes snapshot.tmp, fsyncs, renames over snapshot.dat,
// fsyncs the directory, and only THEN truncates the log (by swapping
// in a fresh one). A crash between those steps is safe in every
// window: the old snapshot plus the full log, or the new snapshot plus
// a log whose records are all ≤ its sequence number (skipped on
// replay), are both exactly recoverable. crash_test.go kills the
// process at each fault point and proves it.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/pipeline"
)

// errTorn marks a frame that failed validation: recovery treats it as
// the end of the usable log.
var errTorn = errors.New("wal: torn record")

// walMagic / snapMagic are the 8-byte file signatures; a file that
// does not start with its magic is rejected outright (it is some other
// file, not a torn one of ours).
const (
	walMagic  = "RACWAL01"
	snapMagic = "RACSNAP1"
)

const (
	walName  = "wal.log"
	snapName = "snapshot.dat"
	tmpName  = "snapshot.tmp"
)

// SyncPolicy picks when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before LogApply returns. Concurrent appenders
	// group-commit: whoever reaches the sync first flushes everything
	// appended so far, and the rest observe their bytes already synced.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background cadence (Options.Interval,
	// default 100ms). A crash can lose at most the last interval's
	// acknowledged batches; the log still never tears across a record.
	SyncInterval
	// SyncNever issues no explicit fsyncs (the OS flushes when it
	// pleases). Torn-tail detection still holds; durability of
	// acknowledged batches does not.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options tunes a Store; the zero value fsyncs on every append.
type Options struct {
	// Fsync is the sync policy (default SyncAlways).
	Fsync SyncPolicy
	// Interval is the SyncInterval cadence; <= 0 means 100ms.
	Interval time.Duration
}

func (o Options) interval() time.Duration {
	if o.Interval > 0 {
		return o.Interval
	}
	return 100 * time.Millisecond
}

// Stats is a point-in-time view of the store, surfaced by /v1/stats.
type Stats struct {
	// WALBytes is the current size of the log file, header included.
	WALBytes int64
	// LastSeq is the sequence number of the last appended batch (0
	// when nothing was ever logged).
	LastSeq uint64
	// SnapshotSeq is the sequence number the durable snapshot covers
	// (0 when no snapshot exists).
	SnapshotSeq uint64
	// LastSync is when the log was last fsynced (Open counts: the
	// header is synced at creation). Zero only before Open completes.
	LastSync time.Time
	// Fsync is the configured policy.
	Fsync SyncPolicy
}

// Store is the durable face of one update stream. It implements
// pipeline.Persister; all methods are safe for concurrent use.
type Store struct {
	dir    string
	schema *model.Schema
	opts   Options

	// mu guards the append path: file handle, size, sequence counter.
	// It is never held across an fsync, so appenders queue only for
	// the write itself and group-commit on the sync below.
	mu   sync.Mutex
	f    *os.File
	size int64 // bytes appended (= file size)
	seq  uint64
	snap uint64 // sequence the durable snapshot covers

	// syncMu serialises fsyncs; synced is the size known flushed.
	// Appenders that find synced already past their record return
	// without syncing — that is the group commit.
	syncMu   sync.Mutex
	synced   int64
	lastSync atomic.Int64 // unix nanos of the last fsync

	// ckptMu serialises checkpoints (manual, periodic and
	// shutdown-time snapshots may race).
	ckptMu sync.Mutex

	stop chan struct{} // closes the interval syncer
	done chan struct{}

	// testFault, when non-nil, is consulted at named fault points and
	// aborts the surrounding operation — the crash-injection harness
	// freezes the store in exactly the state a SIGKILL at that point
	// would leave on disk.
	testFault func(point string) error
}

// Open opens (creating if needed) the durable store in dir for the
// given entity schema. It scans the existing log, verifies the schema
// frame, and TRUNCATES any torn tail — a record cut short or
// corrupted by a crash mid-append — so subsequent appends extend the
// last whole record. Open does not replay anything; call Recover.
func Open(dir string, schema *model.Schema, opts Options) (*Store, error) {
	if schema == nil {
		return nil, fmt.Errorf("wal: store needs an entity schema")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// A leftover snapshot.tmp is an interrupted checkpoint; the durable
	// snapshot (if any) is still whole, so the tmp is garbage.
	_ = os.Remove(filepath.Join(dir, tmpName))

	s := &Store{dir: dir, schema: schema, opts: opts}
	if err := s.readSnapshotMeta(); err != nil {
		return nil, err
	}
	if err := s.openLog(); err != nil {
		return nil, err
	}
	if s.snap > s.seq {
		// The log was truncated by a checkpoint (or lost records it
		// had already snapshotted); sequence numbering resumes past
		// the snapshot's coverage.
		s.seq = s.snap
	}
	if opts.Fsync == SyncInterval {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.syncLoop()
	}
	return s, nil
}

// readSnapshotMeta reads the durable snapshot's sequence number (frame
// 1 of snapshot.dat) without loading its body.
func (s *Store) readSnapshotMeta() error {
	f, err := os.Open(filepath.Join(s.dir, snapName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	seq, err := readSnapshotSeq(f)
	if err != nil {
		return err
	}
	s.snap = seq
	return nil
}

// readSnapshotSeq reads magic + meta frame from an opened snapshot.
func readSnapshotSeq(r io.Reader) (uint64, error) {
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != snapMagic {
		return 0, fmt.Errorf("wal: %s is not a snapshot file", snapName)
	}
	meta, err := readFrame(r)
	if err != nil {
		return 0, fmt.Errorf("wal: snapshot meta frame: %w", err)
	}
	d := &decoder{buf: meta}
	seq, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	return seq, nil
}

// openLog opens wal.log, writing the header for a fresh file and
// scanning an existing one to its last whole record.
func (s *Store) openLog() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if info.Size() == 0 {
		if err := s.writeLogHeader(f); err != nil {
			f.Close()
			return err
		}
		size, _ := f.Seek(0, io.SeekEnd)
		s.f, s.size, s.synced = f, size, size
		s.lastSync.Store(time.Now().UnixNano())
		return s.syncDir()
	}
	good, lastSeq, err := s.scanLog(f)
	if err != nil {
		f.Close()
		return err
	}
	if good < info.Size() {
		// Torn tail: drop it so new appends extend the last whole
		// record instead of burying live records behind garbage.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	s.f, s.size, s.synced = f, good, good
	s.seq = lastSeq
	s.lastSync.Store(time.Now().UnixNano())
	return nil
}

// writeLogHeader stamps a fresh log: magic plus the schema frame.
func (s *Store) writeLogHeader(f *os.File) error {
	hdr := append([]byte(walMagic), appendFrame(nil, encodeSchema(s.schema))...)
	if _, err := f.Write(hdr); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// scanLog validates the header and walks every record, returning the
// offset just past the last whole record and that record's sequence
// number. Torn tails end the scan cleanly; a bad magic or a foreign
// schema is a hard error (wrong file, not a torn one).
func (s *Store) scanLog(f *os.File) (good int64, lastSeq uint64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	cr := &countingReader{r: f}
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(cr, magic); err != nil || string(magic) != walMagic {
		return 0, 0, fmt.Errorf("wal: %s exists but is not a write-ahead log", walName)
	}
	schemaFrame, err := readFrame(cr)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: log schema frame: %w", err)
	}
	if err := checkSchema(schemaFrame, s.schema); err != nil {
		return 0, 0, err
	}
	good = cr.n
	for {
		payload, err := readFrame(cr)
		if err != nil {
			// io.EOF: clean end. errTorn: crash leftovers; drop them.
			// Anything else would also be read through errTorn.
			return good, lastSeq, nil
		}
		rec, err := decodeBatch(payload, s.schema)
		if err != nil {
			// The frame's CRC matched but the payload does not parse
			// as a batch: corrupt at write time. Nothing after it can
			// be trusted either — same torn-tail treatment.
			return good, lastSeq, nil
		}
		good = cr.n
		lastSeq = rec.Seq
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// LogApply implements pipeline.Persister: it durably records one
// update batch and returns its sequence number. Every tuple must use
// the store's exact schema — a batch that could not round-trip the log
// is rejected here, before the Updater touches any entity.
func (s *Store) LogApply(updates []pipeline.Update) (uint64, error) {
	for i, up := range updates {
		for j, t := range up.Tuples {
			if t == nil {
				return 0, fmt.Errorf("wal: update %d tuple %d is nil", i, j)
			}
			if t.Schema() != s.schema {
				return 0, fmt.Errorf("wal: update %d tuple %d uses schema %s, store persists %s",
					i, j, t.Schema().Name(), s.schema.Name())
			}
		}
	}

	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("wal: store is closed")
	}
	seq := s.seq + 1
	frame := appendFrame(nil, encodeBatch(seq, updates))
	if fault := s.testFault; fault != nil {
		// Crash-injection: a fault here may write a PREFIX of the
		// frame — exactly the torn record a SIGKILL mid-append leaves
		// (TornFault), or a partial write the process SURVIVES and
		// must repair (ShortWriteFault).
		if err := fault("append"); err != nil {
			if n := faultTornBytes(err); n > 0 && n < len(frame) {
				s.f.Write(frame[:n])
			}
			if n, ok := faultShortWriteBytes(err); ok {
				if n > 0 && n < len(frame) {
					s.f.Write(frame[:n])
				}
				s.healTailLocked()
			}
			s.mu.Unlock()
			return 0, err
		}
	}
	if _, err := s.f.Write(frame); err != nil {
		// A short write (disk full, I/O error) leaves a torn record.
		// If the process dies here the next Open drops it — but this
		// process may live on and append again, and a later acked
		// record landing BEYOND the tear would be unreachable on
		// replay (the scan stops at the first torn record). Heal the
		// tail now.
		s.healTailLocked()
		s.mu.Unlock()
		return 0, fmt.Errorf("wal: appending batch: %w", err)
	}
	s.seq = seq
	s.size += int64(len(frame))
	end := s.size
	s.mu.Unlock()

	if s.opts.Fsync == SyncAlways {
		if err := s.syncTo(end); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// syncTo fsyncs the log unless a concurrent appender's fsync already
// covered offset end — the group commit.
func (s *Store) syncTo(end int64) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.synced >= end {
		return nil
	}
	s.mu.Lock()
	f, size := s.f, s.size
	s.mu.Unlock()
	if f == nil {
		return fmt.Errorf("wal: store is closed")
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	s.synced = size
	s.lastSync.Store(time.Now().UnixNano())
	return nil
}

// syncLoop is the SyncInterval background flusher.
func (s *Store) syncLoop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.interval())
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			size := s.size
			closed := s.f == nil
			s.mu.Unlock()
			if closed {
				return
			}
			if size > 0 {
				_ = s.syncTo(size)
			}
		}
	}
}

// Sync forces everything appended so far to disk, regardless of
// policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	size := s.size
	s.mu.Unlock()
	return s.syncTo(size)
}

// Stats reports the store's current durability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{WALBytes: s.size, LastSeq: s.seq, SnapshotSeq: s.snap, Fsync: s.opts.Fsync}
	s.mu.Unlock()
	if ns := s.lastSync.Load(); ns != 0 {
		st.LastSync = time.Unix(0, ns)
	}
	return st
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the log. The store is unusable afterwards.
func (s *Store) Close() error {
	if s.stop != nil {
		close(s.stop)
		<-s.done
		s.stop = nil
	}
	err := s.Sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}

// syncDir fsyncs the store directory, making renames and creations
// durable on POSIX filesystems.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", s.dir, err)
	}
	return nil
}

// healTailLocked truncates whatever a failed append left past the
// last whole record, so the next append extends clean log. If even
// the truncate fails the store is poisoned — no append may ever be
// acknowledged beyond an unreadable gap. Caller holds s.mu.
func (s *Store) healTailLocked() {
	if s.f == nil {
		return
	}
	if err := s.f.Truncate(s.size); err == nil {
		s.f.Seek(s.size, io.SeekStart)
	} else {
		s.f.Close()
		s.f = nil
	}
}

// tornError carries the byte count a fault-injected append should
// leave on disk before "crashing".
type tornError struct{ n int }

func (e *tornError) Error() string { return fmt.Sprintf("wal: injected crash after %d bytes", e.n) }

// TornFault builds the error a testFault hook returns to make the
// store write exactly n bytes of the in-flight record before dying —
// the torn tail a power cut mid-append leaves.
func TornFault(n int) error { return &tornError{n: n} }

func faultTornBytes(err error) int {
	var te *tornError
	if errors.As(err, &te) {
		return te.n
	}
	return 0
}

// shortWriteError is tornError's surviving-process twin: n bytes of
// the record land, the write errors, and the store repairs its tail —
// a disk-full partial write rather than a power cut.
type shortWriteError struct{ n int }

func (e *shortWriteError) Error() string {
	return fmt.Sprintf("wal: injected short write of %d bytes", e.n)
}

// ShortWriteFault builds the error a testFault hook returns to make an
// append fail after n bytes with the process still running.
func ShortWriteFault(n int) error { return &shortWriteError{n: n} }

func faultShortWriteBytes(err error) (int, bool) {
	var se *shortWriteError
	if errors.As(err, &se) {
		return se.n, true
	}
	return 0, false
}
