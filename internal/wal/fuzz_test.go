package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/model"
	"repro/internal/pipeline"
)

// FuzzWALDecode throws arbitrary bytes at the frame reader and the
// batch decoder — the exact code path a recovery scan runs over a
// file a crashed (or hostile) writer left behind. The invariants: no
// input may panic, and no frame whose CRC does not verify may ever be
// returned as a record. Everything else is allowed to error.
func FuzzWALDecode(f *testing.F) {
	schema := model.MustSchema("people", "name", "city", "zip")

	// Seed the corpus with the interesting shapes: a whole valid
	// frame, a truncated one, a bit-flipped one, and plain garbage.
	tuple := model.NewTuple(schema)
	tuple.SetAt(0, model.S("alice"))
	tuple.SetAt(2, model.I(11724))
	valid := appendFrame(nil, encodeBatch(7, []pipeline.Update{{Key: "e1", Tuples: []*model.Tuple{tuple}}}))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), valid...)) // two records
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4, 5})   // absurd length prefix
	f.Add([]byte("not a log at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			off := len(data) - r.Len()
			payload, err := readFrame(r)
			if err != nil {
				// io.EOF (clean end) or errTorn — either way the scan
				// stops; it must never return a bad frame as good.
				break
			}
			// Re-verify against the raw header bytes: the payload the
			// reader handed back must be exactly the one the header's
			// CRC covers.
			wantLen := binary.LittleEndian.Uint32(data[off : off+4])
			wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
			if uint32(len(payload)) != wantLen {
				t.Fatalf("frame at %d: returned %d bytes, header says %d", off, len(payload), wantLen)
			}
			if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
				t.Fatalf("frame at %d: payload CRC %08x does not match header %08x", off, got, wantCRC)
			}
			// A frame that survived the CRC may still hold a garbage
			// payload; decoding must error cleanly, never panic. When
			// it does decode, the batch must survive a round trip
			// (encode is canonical; arbitrary input need not be, so
			// compare decoded forms, not bytes).
			b, err := decodeBatch(payload, schema)
			if err != nil {
				continue
			}
			b2, err := decodeBatch(encodeBatch(b.Seq, b.Updates), schema)
			if err != nil {
				t.Fatalf("re-encoded batch does not decode: %v", err)
			}
			if b2.Seq != b.Seq || len(b2.Updates) != len(b.Updates) {
				t.Fatalf("batch changed across round trip: %d/%d updates, seq %d/%d",
					len(b.Updates), len(b2.Updates), b.Seq, b2.Seq)
			}
			for i := range b.Updates {
				if b2.Updates[i].Key != b.Updates[i].Key || len(b2.Updates[i].Tuples) != len(b.Updates[i].Tuples) {
					t.Fatalf("update %d changed across round trip", i)
				}
				for j := range b.Updates[i].Tuples {
					if b2.Updates[i].Tuples[j].Key() != b.Updates[i].Tuples[j].Key() {
						t.Fatalf("update %d tuple %d changed across round trip", i, j)
					}
				}
			}
		}
	})
}
