package wal

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/topk"
)

// fingerprint renders everything a Result exposes, so equality means
// byte-identical per-entity output (same shape as the pipeline suite's
// helper — invariant 1a's currency, extended here to replay ≡ fresh).
func fingerprint(r pipeline.Result) string {
	if r.Err != nil {
		return "err:" + r.Err.Error()
	}
	s := fmt.Sprintf("cr=%v conflict=%q", r.Deduction.CR, r.Deduction.Conflict)
	if r.Deduction.CR {
		s += " target=" + r.Deduction.Target.Key()
	}
	for _, c := range r.Candidates {
		s += fmt.Sprintf(" cand=%s@%.6f", c.Tuple.Key(), c.Score)
	}
	s += fmt.Sprintf(" checks=%d pops=%d gen=%d", r.Stats.Checks, r.Stats.Pops, r.Stats.Generated)
	return s
}

// streamFingerprint settles the whole store: every key's full verdict
// plus a top-k query, keyed and ordered, so two updaters compare
// byte-identically. Versions are deliberately NOT part of the
// fingerprint: snapshot restore collapses an entity's batch history
// into one absorption, so the counter restarts while every verdict,
// tuple and candidate stays identical. Log-only tests assert versions
// explicitly — tail replay re-applies each batch and preserves them.
func streamFingerprint(t *testing.T, u *pipeline.Updater) []string {
	t.Helper()
	keys, results, _, err := u.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(keys))
	for i, key := range keys {
		line := fmt.Sprintf("%s n%d %s", key, results[i].Instance.Size(), fingerprint(results[i]))
		if q, ok := u.Query(key, 3, pipeline.AlgoTopKCT); ok {
			line += " | topk " + fingerprint(q)
		}
		out = append(out, line)
	}
	return out
}

func diffStreams(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entities vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entity %d diverged:\n got: %s\nwant: %s", label, i, got[i], want[i])
		}
	}
}

func genConfig(entities int) gen.EntityConfig {
	cfg := gen.MedConfig()
	cfg.NumEntities = entities
	return cfg
}

func pipeConfig(ds *gen.Dataset) pipeline.Config {
	return pipeline.Config{Master: ds.Master, Rules: ds.Rules, Workers: 4, TopK: 3,
		Pref: topk.Preference{MaxChecks: 2000}}
}

// restartDataset reloads the master data the way a NEW PROCESS would:
// a second gen.Generate of the same config. The generator is
// deterministic, so every value matches the first dataset byte for
// byte — but every object (schema, master, rules) is fresh, and that
// is the point: chase memoises the value dictionary by pointer
// identity of (schema, master, rules), so a second updater over the
// SAME dataset inherits the live updater's grown dictionary instead
// of a clean construction-time one, and Recover's dictionary restore
// would rightly refuse it. Recovery-side updaters in these tests must
// come from here, never from the dataset the live updater used.
func restartDataset(t *testing.T, entities int) (*gen.Dataset, pipeline.Config) {
	t.Helper()
	ds := gen.Generate(genConfig(entities))
	return ds, pipeConfig(ds)
}

// wavesOf splits a dataset into interleaved update batches —
// live-traffic shape, every entity touched by several batches. Pure
// function of the dataset, so the restart side of a crash test can
// rebuild byte-identical waves from its regenerated dataset.
func wavesOf(ds *gen.Dataset) [][]pipeline.Update {
	var waves [3][]pipeline.Update
	for i, e := range ds.Entities {
		key := fmt.Sprintf("e%02d", i)
		tuples := e.Instance.Tuples()
		cut1, cut2 := 1, 1+(len(tuples)-1)/2
		waves[0] = append(waves[0], pipeline.Update{Key: key, Tuples: tuples[:cut1]})
		if cut1 < cut2 {
			waves[1] = append(waves[1], pipeline.Update{Key: key, Tuples: tuples[cut1:cut2]})
		}
		if cut2 < len(tuples) {
			waves[2] = append(waves[2], pipeline.Update{Key: key, Tuples: tuples[cut2:]})
		}
	}
	return waves[:]
}

func testWaves(t *testing.T, entities int) (*gen.Dataset, pipeline.Config, [][]pipeline.Update) {
	t.Helper()
	ds := gen.Generate(genConfig(entities))
	return ds, pipeConfig(ds), wavesOf(ds)
}

func newUpdater(t *testing.T, ds *gen.Dataset, cfg pipeline.Config) *pipeline.Updater {
	t.Helper()
	u, err := pipeline.NewUpdater(ds.Schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func applyAll(t *testing.T, u *pipeline.Updater, waves [][]pipeline.Update) {
	t.Helper()
	for w, ups := range waves {
		if _, _, err := u.Apply(ups); err != nil {
			t.Fatalf("wave %d: %v", w, err)
		}
	}
}

// TestRecoverReplaysWALTail is replay ≡ fresh with no snapshot at all:
// kill after the last append, recover from the log alone.
func TestRecoverReplaysWALTail(t *testing.T) {
	ds, cfg, waves := testWaves(t, 8)
	dir := t.TempDir()

	live := newUpdater(t, ds, cfg)
	st := mustOpen(t, dir, ds.Schema, Options{Fsync: SyncNever})
	rs, err := st.Recover(live)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Empty() {
		t.Fatalf("fresh directory recovered %+v", rs)
	}
	live.AttachPersister(st)
	applyAll(t, live, waves)
	want := streamFingerprint(t, live)
	st.Close() // "crash": no checkpoint ever ran

	rds, rcfg := restartDataset(t, 8)
	re := newUpdater(t, rds, rcfg)
	st2 := mustOpen(t, dir, rds.Schema, Options{})
	defer st2.Close()
	rs, err = st2.Recover(re)
	if err != nil {
		t.Fatal(err)
	}
	if rs.HadSnapshot || rs.Batches != len(waves) || rs.Entities != len(ds.Entities) {
		t.Fatalf("recovery stats %+v: want %d batches, %d entities, no snapshot", rs, len(waves), len(ds.Entities))
	}
	diffStreams(t, "log-only recovery", streamFingerprint(t, re), want)
	// Log-only replay re-applies each batch individually, so even the
	// version counters survive (snapshot restore collapses them — see
	// streamFingerprint — but no snapshot ran here).
	for i := range ds.Entities {
		key := fmt.Sprintf("e%02d", i)
		if got, want := re.Version(key), live.Version(key); got != want {
			t.Fatalf("%s recovered at version %d, live is %d", key, got, want)
		}
	}

	// And the recovered stream equals a NEVER-persisted one fed the
	// same batches — the full replay ≡ fresh property.
	fresh := newUpdater(t, ds, cfg)
	applyAll(t, fresh, waves)
	diffStreams(t, "recovered vs fresh", streamFingerprint(t, re), streamFingerprint(t, fresh))
}

// TestRecoverSnapshotPlusTail checkpoints mid-stream, keeps appending,
// then recovers: snapshot first, WAL tail on top.
func TestRecoverSnapshotPlusTail(t *testing.T) {
	ds, cfg, waves := testWaves(t, 8)
	dir := t.TempDir()

	live := newUpdater(t, ds, cfg)
	st := mustOpen(t, dir, ds.Schema, Options{Fsync: SyncNever})
	if _, err := st.Recover(live); err != nil {
		t.Fatal(err)
	}
	live.AttachPersister(st)
	applyAll(t, live, waves[:2])
	seq, err := st.Checkpoint(live)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("checkpoint covered seq %d, want 2", seq)
	}
	if got := st.Stats(); got.SnapshotSeq != 2 {
		t.Fatalf("stats after checkpoint: %+v", got)
	}
	applyAll(t, live, waves[2:])
	want := streamFingerprint(t, live)
	st.Close()

	rds, rcfg := restartDataset(t, 8)
	re := newUpdater(t, rds, rcfg)
	st2 := mustOpen(t, dir, rds.Schema, Options{})
	defer st2.Close()
	rs, err := st2.Recover(re)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HadSnapshot || rs.SnapshotSeq != 2 || rs.Batches != 1 || rs.LastSeq != 3 {
		t.Fatalf("recovery stats %+v: want snapshot seq 2 + 1 replayed batch ending at 3", rs)
	}
	diffStreams(t, "snapshot+tail recovery", streamFingerprint(t, re), want)

	// The dictionary restore must have reproduced the IDs exactly:
	// recovered top-k queries above already exercise the interned rows,
	// but assert the sizes line up too.
	if got, want := re.Dict().Size(), live.Dict().Size(); got > want {
		// The live dict may be larger (its searches interned candidate
		// values the snapshot never stored); it can never be smaller.
		t.Fatalf("recovered dictionary holds %d values, live holds %d", got, want)
	}
}

// TestRecoverAfterCleanShutdown is the relaccd drain path: checkpoint
// at shutdown, recover from the snapshot with an empty log.
func TestRecoverAfterCleanShutdown(t *testing.T) {
	ds, cfg, waves := testWaves(t, 6)
	dir := t.TempDir()

	live := newUpdater(t, ds, cfg)
	st := mustOpen(t, dir, ds.Schema, Options{Fsync: SyncNever})
	if _, err := st.Recover(live); err != nil {
		t.Fatal(err)
	}
	live.AttachPersister(st)
	applyAll(t, live, waves)
	if _, err := st.Checkpoint(live); err != nil {
		t.Fatal(err)
	}
	want := streamFingerprint(t, live)
	st.Close()

	rds, rcfg := restartDataset(t, 6)
	re := newUpdater(t, rds, rcfg)
	st2 := mustOpen(t, dir, rds.Schema, Options{})
	defer st2.Close()
	rs, err := st2.Recover(re)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.HadSnapshot || rs.Batches != 0 {
		t.Fatalf("clean shutdown left %+v: want a snapshot and an empty tail", rs)
	}
	diffStreams(t, "clean-shutdown recovery", streamFingerprint(t, re), want)

	// Appends resume after the recovered sequence number. The tuple
	// must come from the restart-side dataset: the store now carries
	// rds.Schema, and LogApply checks schema by pointer.
	seq, err := st2.LogApply([]pipeline.Update{{Key: "e00", Tuples: rds.Entities[0].Instance.Tuples()[:1]}})
	if err != nil {
		t.Fatal(err)
	}
	if seq != rs.LastSeq+1 {
		t.Fatalf("post-recovery append got seq %d, want %d", seq, rs.LastSeq+1)
	}
}

// TestRecoveryOrderingSameKey replays several same-key batches and
// proves they land in original apply order — sequence numbers are
// authoritative — by checking the version counter and the exact
// accumulated instance.
func TestRecoveryOrderingSameKey(t *testing.T) {
	ds, cfg, _ := testWaves(t, 1)
	dir := t.TempDir()
	tuples := ds.Entities[0].Instance.Tuples()
	if len(tuples) < 3 {
		t.Fatalf("generator produced only %d tuples", len(tuples))
	}

	live := newUpdater(t, ds, cfg)
	st := mustOpen(t, dir, ds.Schema, Options{Fsync: SyncNever})
	if _, err := st.Recover(live); err != nil {
		t.Fatal(err)
	}
	live.AttachPersister(st)
	// One batch per tuple, all for one key: the entity's history is as
	// order-sensitive as it gets.
	for i := range tuples {
		if _, _, err := live.Apply([]pipeline.Update{{Key: "solo", Tuples: tuples[i : i+1]}}); err != nil {
			t.Fatal(err)
		}
	}
	want := streamFingerprint(t, live)
	wantVersion := live.Version("solo")
	st.Close()

	rds, rcfg := restartDataset(t, 1)
	re := newUpdater(t, rds, rcfg)
	st2 := mustOpen(t, dir, rds.Schema, Options{})
	defer st2.Close()
	if _, err := st2.Recover(re); err != nil {
		t.Fatal(err)
	}
	if got := re.Version("solo"); got != wantVersion {
		t.Fatalf("recovered version %d, want %d — batches merged or reordered", got, wantVersion)
	}
	diffStreams(t, "same-key ordering", streamFingerprint(t, re), want)
	// Byte-level check that tuple order survived, not just verdicts.
	reKeys, reRes, _, err := re.Snapshot()
	if err != nil || len(reKeys) != 1 {
		t.Fatalf("snapshot: %v (%d keys)", err, len(reKeys))
	}
	for i, tp := range reRes[0].Instance.Tuples() {
		if tp.Key() != tuples[i].Key() {
			t.Fatalf("recovered tuple %d is %s, want %s", i, tp, tuples[i])
		}
	}
}

// TestRecoveryReplaysFailedAbsorption logs a batch that FAILS
// absorption (the MaxEntityTuples bound) between two good ones and
// proves replay re-fails it identically: the recovered entity holds
// exactly the tuples the live one did.
func TestRecoveryReplaysFailedAbsorption(t *testing.T) {
	ds, cfg, _ := testWaves(t, 1)
	cfg.MaxEntityTuples = 3
	dir := t.TempDir()
	tuples := ds.Entities[0].Instance.Tuples()
	if len(tuples) < 4 {
		t.Fatalf("generator produced only %d tuples", len(tuples))
	}

	live := newUpdater(t, ds, cfg)
	st := mustOpen(t, dir, ds.Schema, Options{Fsync: SyncNever})
	if _, err := st.Recover(live); err != nil {
		t.Fatal(err)
	}
	live.AttachPersister(st)

	apply := func(n int) pipeline.Result {
		res, _, err := live.Apply([]pipeline.Update{{Key: "solo", Tuples: tuples[:n]}})
		if err != nil {
			t.Fatal(err)
		}
		return res[0]
	}
	if r := apply(2); r.Err != nil { // 2 tuples: fits
		t.Fatalf("first batch failed: %v", r.Err)
	}
	if r := apply(2); r.Err == nil || r.Deduction != nil { // 2+2 > 3: absorb fails
		t.Fatalf("over-bound batch did not fail absorption: err=%v", r.Err)
	} else if r.Version != 0 {
		t.Fatalf("failed absorption moved the version to %d", r.Version)
	}
	if r := apply(1); r.Err != nil { // 2+1 = 3: fits again
		t.Fatalf("third batch failed: %v", r.Err)
	}
	if got := st.Stats().LastSeq; got != 3 {
		t.Fatalf("the failed batch must be LOGGED too (lastSeq %d, want 3)", got)
	}
	want := streamFingerprint(t, live)
	st.Close()

	rds, rcfg := restartDataset(t, 1)
	rcfg.MaxEntityTuples = 3
	re := newUpdater(t, rds, rcfg)
	st2 := mustOpen(t, dir, rds.Schema, Options{})
	defer st2.Close()
	rs, err := st2.Recover(re)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Batches != 3 {
		t.Fatalf("replayed %d batches, want 3 (failed one included)", rs.Batches)
	}
	diffStreams(t, "failed-absorption replay", streamFingerprint(t, re), want)
	_, res, _, err := re.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Instance.Size(); got != 3 {
		t.Fatalf("recovered entity holds %d tuples, want 3 — the failed batch replayed as applied", got)
	}
}

// TestRecoverDemandsFreshUpdater pins the misuse guard: recovery into
// a store that already absorbed evidence must refuse.
func TestRecoverDemandsFreshUpdater(t *testing.T) {
	ds, cfg, waves := testWaves(t, 2)
	u := newUpdater(t, ds, cfg)
	applyAll(t, u, waves[:1])
	st := mustOpen(t, t.TempDir(), ds.Schema, Options{})
	defer st.Close()
	if _, err := st.Recover(u); err == nil {
		t.Fatal("recovered into a non-empty updater")
	}
}

// TestPersisterRejectionAppliesNothing pins log-then-apply: a batch
// the persister rejects (foreign-schema tuple) changes no entity and
// registers no key, even though other updates in it were fine.
func TestPersisterRejectionAppliesNothing(t *testing.T) {
	ds, cfg, _ := testWaves(t, 1)
	u := newUpdater(t, ds, cfg)
	st := mustOpen(t, t.TempDir(), ds.Schema, Options{})
	defer st.Close()
	if _, err := st.Recover(u); err != nil {
		t.Fatal(err)
	}
	u.AttachPersister(st)
	twin := model.MustSchema(ds.Schema.Name(), ds.Schema.Attrs()...)
	_, _, err := u.Apply([]pipeline.Update{
		{Key: "good", Tuples: ds.Entities[0].Instance.Tuples()[:1]},
		{Key: "bad", Tuples: []*model.Tuple{model.NewTuple(twin)}},
	})
	if err == nil {
		t.Fatal("batch with an un-loggable tuple was applied")
	}
	if u.Len() != 0 {
		t.Fatalf("rejected batch created %d entities", u.Len())
	}
	if got := st.Stats().LastSeq; got != 0 {
		t.Fatalf("rejected batch was logged (lastSeq %d)", got)
	}
}
