package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/rule"
	"repro/internal/ruledsl"
	"repro/internal/topk"
)

// newTestServer builds a serving layer over an empty update stream for
// a small schema with two currency rules: higher rnds is more current
// within one league, and the more current rnds carries the jersey.
func newTestServer(t *testing.T, cfg pipeline.Config) (*Server, *pipeline.Updater) {
	t.Helper()
	schema := model.MustSchema("player", "id", "league", "rnds", "jersey")
	parsed, err := ruledsl.Parse(
		"phi1: t1[league] = t2[league] , t1[rnds] < t2[rnds] -> t1 <= t2 @ rnds\n" +
			"phi2: t1 < t2 @ rnds -> t1 <= t2 @ jersey\n")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := rule.NewSet(schema, nil, parsed...)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rules = rules
	u, err := pipeline.NewUpdater(schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(u, Options{}), u
}

// do runs one request through the handler and decodes the JSON reply.
func do(t *testing.T, h http.Handler, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON reply %q", method, path, rec.Body.String())
	}
	return rec.Code, out
}

// TestAppendQueryRoundTrip: evidence appended over HTTP is absorbed,
// versioned and queryable, and a later delta re-deduces incrementally.
func TestAppendQueryRoundTrip(t *testing.T) {
	s, _ := newTestServer(t, pipeline.Config{})
	h := s.Handler()

	code, out := do(t, h, "POST", "/v1/entities/m1/evidence", map[string]any{
		"tuples": []map[string]any{
			{"id": "m1", "league": "east", "rnds": 30, "jersey": 45},
			{"id": "m1", "league": "east", "rnds": 80, "jersey": 23},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("append: %d %v", code, out)
	}
	if out["status"] != "complete" || out["version"] != float64(0) || out["absorbed"] != float64(2) {
		t.Fatalf("append reply: %v", out)
	}
	target := out["target"].(map[string]any)
	if target["rnds"] != float64(80) || target["jersey"] != float64(23) {
		t.Fatalf("deduced target: %v", target)
	}

	code, out = do(t, h, "GET", "/v1/entities/m1", nil)
	if code != http.StatusOK || out["status"] != "complete" || out["version"] != float64(0) {
		t.Fatalf("query: %d %v", code, out)
	}
	if tg := out["target"].(map[string]any); tg["rnds"] != float64(80) {
		t.Fatalf("query target: %v", tg)
	}

	// A later delta advances the version and re-deduces incrementally.
	code, out = do(t, h, "POST", "/v1/entities/m1/evidence", map[string]any{
		"tuples": []map[string]any{
			{"id": "m1", "league": "east", "rnds": 100, "jersey": 7},
		},
	})
	if code != http.StatusOK || out["version"] != float64(1) {
		t.Fatalf("delta: %d %v", code, out)
	}
	if tg := out["target"].(map[string]any); tg["rnds"] != float64(100) || tg["jersey"] != float64(7) {
		t.Fatalf("re-deduced target: %v", tg)
	}

	code, out = do(t, h, "GET", "/v1/entities", nil)
	if code != http.StatusOK || out["count"] != float64(1) {
		t.Fatalf("list: %d %v", code, out)
	}
	ent := out["entities"].([]any)[0].(map[string]any)
	if ent["key"] != "m1" || ent["version"] != float64(1) {
		t.Fatalf("list entry: %v", ent)
	}

	code, out = do(t, h, "GET", "/v1/stats", nil)
	if code != http.StatusOK || out["entities"] != float64(1) ||
		out["appends"] != float64(2) || out["tuples"] != float64(3) {
		t.Fatalf("stats: %d %v", code, out)
	}
	// Both appends landed in the latency window; the percentiles are
	// ordered and real (a duration of 0µs is plausible on a fast box,
	// so only ordering and presence are asserted).
	if out["append_samples"] != float64(2) {
		t.Fatalf("append_samples: %v", out)
	}
	p50, ok50 := out["append_p50_us"].(float64)
	p95, ok95 := out["append_p95_us"].(float64)
	p99, ok99 := out["append_p99_us"].(float64)
	if !ok50 || !ok95 || !ok99 || p50 > p95 || p95 > p99 {
		t.Fatalf("append latency percentiles: %v", out)
	}
}

// TestStatsNoAppends: before any evidence arrives the latency window is
// empty — samples report 0 and no percentile fields are emitted (an
// invented 0µs p99 would read as "fast", not "no data").
func TestStatsNoAppends(t *testing.T) {
	s, _ := newTestServer(t, pipeline.Config{})
	code, out := do(t, s.Handler(), "GET", "/v1/stats", nil)
	if code != http.StatusOK || out["append_samples"] != float64(0) {
		t.Fatalf("stats: %d %v", code, out)
	}
	for _, k := range []string{"append_p50_us", "append_p95_us", "append_p99_us"} {
		if _, present := out[k]; present {
			t.Fatalf("%s emitted with no samples: %v", k, out)
		}
	}
}

// TestTopKQuery: an entity left incomplete serves candidates through
// /topk with per-request k and algo.
func TestTopKQuery(t *testing.T) {
	s, _ := newTestServer(t, pipeline.Config{})
	h := s.Handler()
	// Different leagues: phi1 never fires, rnds/jersey stay open.
	code, out := do(t, h, "POST", "/v1/entities/m2/evidence", map[string]any{
		"tuples": []map[string]any{
			{"id": "m2", "league": "east", "rnds": 10, "jersey": 1},
			{"id": "m2", "league": "west", "rnds": 20, "jersey": 2},
		},
	})
	if code != http.StatusOK || out["status"] != "incomplete" {
		t.Fatalf("append: %d %v", code, out)
	}
	for _, algo := range []string{"topkct", "rankjoin", "topkcth"} {
		code, out = do(t, h, "GET", "/v1/entities/m2/topk?k=2&algo="+algo, nil)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %v", algo, code, out)
		}
		if out["k"] != float64(2) {
			t.Fatalf("%s echoed k: %v", algo, out["k"])
		}
		cands := out["candidates"].([]any)
		if len(cands) == 0 || len(cands) > 2 {
			t.Fatalf("%s: %d candidates", algo, len(cands))
		}
		best := cands[0].(map[string]any)
		if best["score"].(float64) <= 0 {
			t.Fatalf("%s best score: %v", algo, best)
		}
		if stats := out["stats"].(map[string]any); stats["checks"].(float64) <= 0 {
			t.Fatalf("%s stats: %v", algo, stats)
		}
	}
}

// TestErrorStatuses: unknown keys answer 404, malformed parameters and
// bodies 400, and none of them disturb the stream.
func TestErrorStatuses(t *testing.T) {
	s, u := newTestServer(t, pipeline.Config{})
	h := s.Handler()
	for _, tc := range []struct {
		method, path string
		body         any
		want         int
	}{
		{"GET", "/v1/entities/ghost", nil, http.StatusNotFound},
		{"GET", "/v1/entities/ghost/topk", nil, http.StatusNotFound},
		{"GET", "/v1/entities/ghost/topk?k=0", nil, http.StatusBadRequest},
		{"GET", "/v1/entities/ghost/topk?k=-3", nil, http.StatusBadRequest},
		{"GET", "/v1/entities/ghost/topk?k=nope", nil, http.StatusBadRequest},
		// Past the server's k cap (default 100): every candidate costs
		// a chase run, so an unbounded k is a denial of service.
		{"GET", "/v1/entities/ghost/topk?k=101", nil, http.StatusBadRequest},
		{"GET", "/v1/entities/ghost/topk?algo=quantum", nil, http.StatusBadRequest},
		{"POST", "/v1/entities/m9/evidence", map[string]any{"tuples": []map[string]any{}}, http.StatusBadRequest},
		{"POST", "/v1/entities/m9/evidence", map[string]any{
			"tuples": []map[string]any{{"no_such_attr": 1}}}, http.StatusBadRequest},
		{"POST", "/v1/evidence", map[string]any{"updates": []map[string]any{
			{"key": "", "tuples": []map[string]any{{"id": "x"}}}}}, http.StatusBadRequest},
		// '/' in a key would create an entity the per-entity routes
		// can never address (the {key} wildcard is one path segment) —
		// rejected on the batch route AND on the %2F-escaped single
		// route (PathValue unescapes), and a zero-tuple batch update
		// must not register a permanent empty entity.
		{"POST", "/v1/evidence", map[string]any{"updates": []map[string]any{
			{"key": "a/b", "tuples": []map[string]any{{"id": "x"}}}}}, http.StatusBadRequest},
		{"POST", "/v1/entities/a%2Fb/evidence", map[string]any{
			"tuples": []map[string]any{{"id": "x"}}}, http.StatusBadRequest},
		// '.' and '..' segments are canonicalized away by the router,
		// so such keys would be write-only too.
		{"POST", "/v1/evidence", map[string]any{"updates": []map[string]any{
			{"key": "..", "tuples": []map[string]any{{"id": "x"}}}}}, http.StatusBadRequest},
		{"POST", "/v1/evidence", map[string]any{"updates": []map[string]any{
			{"key": ".", "tuples": []map[string]any{{"id": "x"}}}}}, http.StatusBadRequest},
		{"POST", "/v1/evidence", map[string]any{"updates": []map[string]any{
			{"key": "empty", "tuples": []map[string]any{}}}}, http.StatusBadRequest},
	} {
		code, out := do(t, h, tc.method, tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s %s: %d (%v), want %d", tc.method, tc.path, code, out, tc.want)
		}
		if _, hasErr := out["error"]; !hasErr {
			t.Errorf("%s %s: reply carries no error field: %v", tc.method, tc.path, out)
		}
	}
	if u.Len() != 0 {
		t.Fatalf("error requests created %d entities", u.Len())
	}
}

// TestBatchEvidence: one POST /v1/evidence routes a keyed batch through
// a single Apply — merged by key, results in first-appearance order.
func TestBatchEvidence(t *testing.T) {
	s, u := newTestServer(t, pipeline.Config{})
	h := s.Handler()
	code, out := do(t, h, "POST", "/v1/evidence", map[string]any{
		"updates": []map[string]any{
			{"key": "a", "tuples": []map[string]any{{"id": "a", "league": "east", "rnds": 1, "jersey": 10}}},
			{"key": "b", "tuples": []map[string]any{{"id": "b", "league": "west", "rnds": 2, "jersey": 20}}},
			{"key": "a", "tuples": []map[string]any{{"id": "a", "league": "east", "rnds": 5, "jersey": 30}}},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("batch: %d %v", code, out)
	}
	results := out["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("batch produced %d results, want 2 (merged by key)", len(results))
	}
	first := results[0].(map[string]any)
	if first["key"] != "a" || first["tuples"] != float64(2) {
		t.Fatalf("first result: %v", first)
	}
	if u.Version("a") != 0 || u.Version("b") != 0 {
		t.Fatalf("versions after one batch: a=%d b=%d", u.Version("a"), u.Version("b"))
	}
}

// TestAbsorbVsSearchFailure pins the two failure phases of an append
// against genuine updater Results. Absorption failures answer 422 —
// but HTTP-built tuples always conform to the server's schema, so
// that phase is only reachable through a direct Apply; the
// discrimination (absorbFailed) is pinned against the real Result it
// produces. Search failures ARE reachable over HTTP (here: a stream
// configured with an empty candidate domain for an open attribute,
// which RankJoinCT rejects) and must answer 200 with the evidence
// committed, the version advanced and the error reported.
func TestAbsorbVsSearchFailure(t *testing.T) {
	s, u := newTestServer(t, pipeline.Config{TopK: 2, Algo: pipeline.AlgoRankJoinCT,
		Pref: topk.Preference{Domains: map[string][]model.Value{"jersey": {}}}})
	h := s.Handler()

	// Phase 1, absorb failure: a wrong-schema tuple through Apply.
	other := model.MustSchema("other", "x")
	results, _, err := u.Apply([]pipeline.Update{
		{Key: "direct", Tuples: []*model.Tuple{model.MustTuple(other, model.I(1))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !absorbFailed(results[0]) {
		t.Fatalf("failed creation not classified as absorb failure: %+v", results[0])
	}

	// Phase 2, search failure over HTTP: leagues differ so rnds/jersey
	// stay open, and jersey's candidate domain is configured empty —
	// the search errors after the evidence is already in.
	code, out := do(t, h, "POST", "/v1/entities/m4/evidence", map[string]any{
		"tuples": []map[string]any{
			{"id": "m4", "league": "east", "rnds": 1},
			{"id": "m4", "league": "west", "rnds": 2},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("search-failure append: %d %v", code, out)
	}
	if out["error"] == nil || out["status"] != "error" {
		t.Fatalf("search failure not reported: %v", out)
	}
	if out["version"] != float64(0) {
		t.Fatalf("evidence not committed on search failure: %v", out)
	}
	if v := u.Version("m4"); v != 0 {
		t.Fatalf("entity version = %d, want 0 (evidence absorbed)", v)
	}
	// A search failure is past absorption: the entity is live and
	// queryable (deduce-only answers without error).
	res, ok := u.Query("m4", 0, pipeline.AlgoTopKCT)
	if !ok || res.Err != nil {
		t.Fatalf("query after search failure: ok=%v err=%v", ok, res.Err)
	}
}

// TestAppendReportsDeductionVersion: each append reply carries the
// version its verdict was DEDUCED on, not a re-read of the live
// entity — so a sequence of appends yields 0, 1, 2, ... even if later
// deltas land before a reply is rendered.
func TestAppendReportsDeductionVersion(t *testing.T) {
	s, _ := newTestServer(t, pipeline.Config{})
	h := s.Handler()
	for want := 0; want < 3; want++ {
		code, out := do(t, h, "POST", "/v1/entities/m1/evidence", map[string]any{
			"tuples": []map[string]any{
				{"id": "m1", "league": "east", "rnds": want, "jersey": want},
			},
		})
		if code != http.StatusOK || out["version"] != float64(want) {
			t.Fatalf("append %d: code %d, version %v", want, code, out["version"])
		}
	}
}

// TestBodyLimitAndHealthz: an oversized POST answers 413 without
// disturbing the stream, and /healthz answers even when every
// MaxInFlight slot is occupied — liveness probes must not queue
// behind saturated serving routes.
func TestBodyLimitAndHealthz(t *testing.T) {
	s, u := newTestServer(t, pipeline.Config{})
	s.opts.MaxBodyBytes = 256
	h := s.Handler()
	var rows []map[string]any
	for i := 0; i < 64; i++ {
		rows = append(rows, map[string]any{"id": "big", "league": "east"})
	}
	code, out := do(t, h, "POST", "/v1/entities/big/evidence", map[string]any{"tuples": rows})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %v", code, out)
	}
	if u.Len() != 0 {
		t.Fatal("oversized body created an entity")
	}

	// A slow-body client parks in readBody, OUTSIDE the singleton
	// gate: with it mid-send, /healthz and a full append round-trip
	// must both complete — neither a gate slot nor the server is held
	// hostage by a client that trickles its body.
	s2, u2 := newTestServer(t, pipeline.Config{})
	s2.opts.MaxInFlight = 1
	h2 := s2.Handler()
	block := make(chan struct{})
	release := make(chan struct{})
	go func() {
		req := httptest.NewRequest("POST", "/v1/entities/slow/evidence", blockingReader{block, release})
		h2.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-block // the slow sender is mid-body
	code, out = do(t, h2, "GET", "/healthz", nil)
	if code != http.StatusOK || out["ok"] != true {
		t.Fatalf("healthz behind a slow sender: %d %v", code, out)
	}
	code, out = do(t, h2, "POST", "/v1/entities/fast/evidence", map[string]any{
		"tuples": []map[string]any{{"id": "fast", "league": "east", "rnds": 1, "jersey": 2}},
	})
	if code != http.StatusOK {
		t.Fatalf("append behind a slow sender: %d %v", code, out)
	}
	if u2.Version("fast") != 0 {
		t.Fatal("fast append did not land while the slow sender trickled")
	}
	close(release)
}

// blockingReader signals on first Read and then blocks until released,
// modelling a slow-body client stuck inside the JSON decoder.
type blockingReader struct {
	started chan struct{}
	release chan struct{}
}

func (r blockingReader) Read(p []byte) (int, error) {
	close(r.started)
	<-r.release
	return 0, io.EOF
}

// TestValueJSONDegenerateFloats: the model admits NaN/±Inf floats (a
// "NaN" CSV cell parses as one) but JSON does not, and an encode error
// would surface only after the 200 header is written — so valueJSON
// must degrade them to strings that the encoder accepts.
func TestValueJSONDegenerateFloats(t *testing.T) {
	for _, v := range []model.Value{
		model.F(math.NaN()), model.F(math.Inf(1)), model.F(math.Inf(-1)),
		model.F(1.5), model.I(3), model.S("x"), model.B(true), model.NullValue(),
	} {
		out := valueJSON(v)
		if _, err := json.Marshal(out); err != nil {
			t.Errorf("valueJSON(%s) = %v is not JSON-encodable: %v", v, out, err)
		}
	}
	if got := valueJSON(model.F(math.NaN())); got != "NaN" {
		t.Errorf("NaN rendered as %v", got)
	}
	if got := valueJSON(model.F(2.5)); got != 2.5 {
		t.Errorf("finite float rendered as %v", got)
	}
}

// TestConcurrencyLimit: the gate never lets more than MaxInFlight
// requests into the handler at once, and a client that gives up while
// queued is released without ever entering it.
func TestConcurrencyLimit(t *testing.T) {
	var inside, peak, served atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inside.Add(1)
		defer inside.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		served.Add(1)
	})
	h := withLimit(inner, 3)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
		}()
	}
	wg.Wait()
	if served.Load() != 24 {
		t.Fatalf("served %d of 24", served.Load())
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds the limit", p)
	}

	// Occupy the only slot, then enqueue a request whose client is
	// already gone: it must return without entering the handler.
	block := make(chan struct{})
	entered := make(chan struct{})
	var bounced atomic.Int64
	blocking := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bounced.Add(1)
		close(entered)
		<-block
	})
	h = withLimit(blocking, 1)
	go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil).WithContext(ctx))
	close(block)
	if bounced.Load() != 1 {
		t.Fatalf("cancelled request entered the handler (%d entries)", bounced.Load())
	}
}

// TestConcurrentAppendersAndReaders is the serving-layer race test: on
// one sharded updater, producers stream evidence to disjoint keys over
// HTTP while readers hammer every read route. Under -race (CI) this
// proves the whole stack is data-race free; afterwards every key must
// have absorbed every delta, proving disjoint producers made progress
// independently (the per-key version count equals the per-key append
// count — no append waited forever or was lost behind another key).
func TestConcurrentAppendersAndReaders(t *testing.T) {
	s, u := newTestServer(t, pipeline.Config{TopK: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const producers = 6
	const deltas = 5
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", p)
			for d := 0; d < deltas; d++ {
				body, _ := json.Marshal(map[string]any{
					"tuples": []map[string]any{{
						"id": key, "league": "east", "rnds": d * 10, "jersey": d,
					}},
				})
				resp, err := http.Post(
					ts.URL+"/v1/entities/"+key+"/evidence", "application/json",
					bytes.NewReader(body))
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("producer %d delta %d: status %d", p, d, resp.StatusCode)
					return
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			paths := []string{"/v1/entities", "/v1/stats", "/v1/schema",
				fmt.Sprintf("/v1/entities/k%d", r),
				fmt.Sprintf("/v1/entities/k%d/topk?k=1", r)}
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range paths {
					resp, err := http.Get(ts.URL + p)
					if err != nil {
						t.Errorf("reader: %v", err)
						return
					}
					resp.Body.Close()
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}
	if u.Len() != producers {
		t.Fatalf("stream holds %d entities, want %d", u.Len(), producers)
	}
	for p := 0; p < producers; p++ {
		key := fmt.Sprintf("k%d", p)
		if v := u.Version(key); v != deltas-1 {
			t.Fatalf("entity %s absorbed %d deltas, want %d", key, v+1, deltas)
		}
	}
}
