// Tests for the serving layer's durability surface: the buffered-body
// backpressure gate, the /v1/snapshot admin route, periodic
// checkpoints and the durability fields of /v1/stats.
package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/rule"
	"repro/internal/ruledsl"
	"repro/internal/wal"
)

// newDurableServer is newTestServer over a WAL-backed updater: same
// schema and rules, evidence logged to a temp directory.
func newDurableServer(t *testing.T, opts Options) (*Server, *pipeline.Updater, *wal.Store) {
	t.Helper()
	schema := model.MustSchema("player", "id", "league", "rnds", "jersey")
	parsed, err := ruledsl.Parse(
		"phi1: t1[league] = t2[league] , t1[rnds] < t2[rnds] -> t1 <= t2 @ rnds\n" +
			"phi2: t1 < t2 @ rnds -> t1 <= t2 @ jersey\n")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := rule.NewSet(schema, nil, parsed...)
	if err != nil {
		t.Fatal(err)
	}
	u, err := pipeline.NewUpdater(schema, pipeline.Config{Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	st, err := wal.Open(t.TempDir(), schema, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if _, err := st.Recover(u); err != nil {
		t.Fatal(err)
	}
	u.AttachPersister(st)
	opts.Store = st
	return New(u, opts), u, st
}

// TestBackpressure429: a request whose body reservation would push
// the aggregate buffer past MaxBufferedBytes answers 429 with
// Retry-After, before any handler runs; requests that fit proceed.
func TestBackpressure429(t *testing.T) {
	s, _ := newTestServer(t, pipeline.Config{})
	s.opts.MaxBufferedBytes = 64
	h := s.Handler()

	// Declared Content-Length over the cap: rejected up front.
	big := strings.Repeat("x", 100)
	req := httptest.NewRequest("POST", "/v1/entities/m1/evidence", strings.NewReader(big))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-cap body got %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	// A chunked sender declares no length, so it must reserve the full
	// body cap — which also exceeds this tiny buffer budget.
	req = httptest.NewRequest("POST", "/v1/entities/m1/evidence", strings.NewReader(`{"tuples":[]}`))
	req.ContentLength = -1
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("chunked body got %d, want 429", rec.Code)
	}

	// Within budget: served normally, and the reservation is released
	// (the next request sees an empty buffer).
	for i := 0; i < 3; i++ {
		body := `{"tuples":[{"id":"m1","league":"east","rnds":30,"jersey":45}]}`
		if int64(len(body)) > 64 {
			t.Fatalf("test body outgrew the budget (%d bytes)", len(body))
		}
		req = httptest.NewRequest("POST", "/v1/entities/m1/evidence", strings.NewReader(body))
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("within-budget append %d got %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	if held := s.buffered.Load(); held != 0 {
		t.Fatalf("%d bytes still reserved after all handlers returned", held)
	}
}

// TestSnapshotRouteMemoryOnly: without a durable store the admin
// route answers 409, and stats say durable=false.
func TestSnapshotRouteMemoryOnly(t *testing.T) {
	s, _ := newTestServer(t, pipeline.Config{})
	h := s.Handler()
	code, out := do(t, h, "POST", "/v1/snapshot", nil)
	if code != http.StatusConflict {
		t.Fatalf("memory-only snapshot got %d %v, want 409", code, out)
	}
	code, out = do(t, h, "GET", "/v1/stats", nil)
	if code != http.StatusOK || out["durable"] != false {
		t.Fatalf("stats: %d %v", code, out)
	}
	if _, ok := out["wal_bytes"]; ok {
		t.Fatal("memory-only stats report WAL fields")
	}
}

// TestSnapshotRouteDurable: appends are logged, /v1/snapshot
// checkpoints and truncates, and /v1/stats exposes the durability and
// residency numbers.
func TestSnapshotRouteDurable(t *testing.T) {
	s, _, st := newDurableServer(t, Options{})
	h := s.Handler()

	code, out := do(t, h, "POST", "/v1/entities/m1/evidence", map[string]any{
		"tuples": []map[string]any{
			{"id": "m1", "league": "east", "rnds": 30, "jersey": 45},
			{"id": "m1", "league": "east", "rnds": 80, "jersey": 23},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("append: %d %v", code, out)
	}
	logged := st.Stats()
	if logged.LastSeq != 1 || logged.WALBytes == 0 {
		t.Fatalf("append was not logged: %+v", logged)
	}

	code, out = do(t, h, "GET", "/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, out)
	}
	if out["durable"] != true || out["last_seq"] != float64(1) ||
		out["snapshot_seq"] != float64(0) || out["wal_bytes"].(float64) <= 0 {
		t.Fatalf("durability fields: %v", out)
	}
	if out["entities"] != float64(1) || out["live_tuples"] != float64(2) {
		t.Fatalf("residency fields: %v", out)
	}
	if out["fsync"] != "always" {
		t.Fatalf("fsync policy: %v", out["fsync"])
	}

	code, out = do(t, h, "POST", "/v1/snapshot", nil)
	if code != http.StatusOK || out["snapshot_seq"] != float64(1) {
		t.Fatalf("snapshot: %d %v", code, out)
	}
	if after := st.Stats(); after.SnapshotSeq != 1 || after.WALBytes >= logged.WALBytes {
		t.Fatalf("snapshot did not truncate the log: before %+v after %+v", logged, after)
	}
}

// TestPeriodicSnapshot: with SnapshotEvery=1 every successful append
// triggers an async checkpoint; the stream stays serveable and the
// snapshot eventually lands.
func TestPeriodicSnapshot(t *testing.T) {
	s, _, st := newDurableServer(t, Options{SnapshotEvery: 1})
	h := s.Handler()

	code, out := do(t, h, "POST", "/v1/evidence", map[string]any{
		"updates": []map[string]any{
			{"key": "m1", "tuples": []map[string]any{{"id": "m1", "league": "east", "rnds": 30, "jersey": 45}}},
			{"key": "m2", "tuples": []map[string]any{{"id": "m2", "league": "west", "rnds": 50, "jersey": 9}}},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("batch append: %d %v", code, out)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().SnapshotSeq == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no periodic snapshot after 5s: %+v", st.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := st.Stats().SnapshotSeq; got != 1 {
		t.Fatalf("periodic snapshot covers seq %d, want 1", got)
	}
	// The stream keeps serving while and after snapshotting.
	code, _ = do(t, h, "GET", "/v1/entities/m1", nil)
	if code != http.StatusOK {
		t.Fatalf("query after snapshot: %d", code)
	}
}
