// Package server puts a network front end on the update stream: an
// HTTP/JSON serving layer over a pipeline.Updater, so evidence can be
// appended and relative-accuracy verdicts queried over the wire — the
// "evidence arrives over time, re-deduce per entity" workload the
// sharded updater was built for. cmd/relaccd is its daemon face;
// relacc.NewServer the programmatic one.
//
// Routes (all responses are JSON):
//
//	GET  /healthz                      liveness probe
//	GET  /v1/schema                    the entity schema clients must speak
//	GET  /v1/stats                     aggregate serving statistics
//	GET  /v1/entities                  live entities with versions
//	GET  /v1/entities/{key}            re-deduce one entity (no search)
//	GET  /v1/entities/{key}/topk       candidates; ?k=N&algo=topkct|rankjoin|topkcth
//	POST /v1/entities/{key}/evidence   append tuples to one entity
//	                                   (422 when the absorption itself fails)
//	POST /v1/evidence                  append a keyed batch (one Apply);
//	                                   200 with per-entity results — check
//	                                   each result's error/status, a batch
//	                                   is never all-or-nothing
//	POST /v1/snapshot                  checkpoint the durable store now
//	                                   (409 when the daemon is memory-only)
//
// Tuples travel as JSON objects keyed by attribute name; strings,
// numbers, booleans and null map onto the model's value kinds, and
// attributes left out are null. Entity keys are caller-chosen strings,
// except that '/' is rejected — the per-entity routes address one path
// segment, and a key they cannot address would be write-only. Handlers
// do no locking of their own: appends route straight into
// Updater.Apply (per-entity serialisation, disjoint keys concurrent)
// and queries read atomically published grounding versions, so a slow
// deduction never blocks the rest of the keyspace. Two server-wide
// controls bound resource use: at most Options.MaxInFlight requests
// run at once (the rest queue until a slot frees or the client gives
// up; /healthz bypasses the gate) and request bodies are capped at
// Options.MaxBodyBytes (413 past it). Bodies are read in full before
// a request queues for the gate, so the server's read deadline covers
// client I/O only and a slow sender never occupies a slot.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/wal"
)

// Options tunes the serving layer; the zero value serves with the
// defaults noted on each field.
type Options struct {
	// MaxInFlight bounds how many requests are served concurrently;
	// excess requests wait for a slot (or for their client to give
	// up). <= 0 means 256. /healthz bypasses the gate so liveness
	// probes answer even at capacity.
	MaxInFlight int
	// DefaultTopK is the candidate count a topk query without ?k= asks
	// for. <= 0 means 5.
	DefaultTopK int
	// MaxTopK caps the ?k= a topk query may request; every verified
	// candidate costs a chase run, so an unbounded k would let one
	// query pin the daemon's CPU. <= 0 means 100; requests past the
	// cap answer 400.
	MaxTopK int
	// MaxBodyBytes caps a request body; an oversized POST answers 413
	// instead of buffering unbounded JSON. <= 0 means 8 MiB.
	MaxBodyBytes int64
	// MaxBufferedBytes caps the AGGREGATE bytes of request bodies
	// buffered ahead of the concurrency gate across all connections —
	// the global byte budget MaxBodyBytes alone cannot provide, since
	// any number of clients may each buffer one capped body. A request
	// that would push the total past the cap answers 429 with
	// Retry-After instead of queueing, so a flood degrades into
	// explicit backpressure rather than unbounded memory. <= 0 means
	// 64 MiB.
	MaxBufferedBytes int64
	// Store, when non-nil, is the durable store under the updater: it
	// enables the POST /v1/snapshot admin route and the durability
	// fields of /v1/stats. The server does not open or close it.
	Store *wal.Store
	// SnapshotEvery, with Store set, checkpoints the store after every
	// N successful appends (asynchronously, single-flight); 0 disables
	// periodic snapshots.
	SnapshotEvery int
}

func (o Options) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return 256
}

func (o Options) defaultTopK() int {
	if o.DefaultTopK > 0 {
		return o.DefaultTopK
	}
	return 5
}

func (o Options) maxTopK() int {
	if o.MaxTopK > 0 {
		return o.MaxTopK
	}
	return 100
}

func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes > 0 {
		return o.MaxBodyBytes
	}
	return 8 << 20
}

func (o Options) maxBufferedBytes() int64 {
	if o.MaxBufferedBytes > 0 {
		return o.MaxBufferedBytes
	}
	return 64 << 20
}

// Server serves one Updater's update stream over HTTP. Create with
// New; all methods are safe for concurrent use.
type Server struct {
	u       *pipeline.Updater
	opts    Options
	started time.Time

	// Serving statistics, reported by /v1/stats.
	appends atomic.Int64 // Apply-routing requests served
	tuples  atomic.Int64 // evidence tuples absorbed
	queries atomic.Int64 // read requests served
	errs    atomic.Int64 // requests answered with a 4xx/5xx status

	// appendLat windows the latest Apply latencies (the updater call
	// alone, not JSON or queueing) for the stats percentiles.
	appendLat *stats.Ring

	// buffered is the aggregate request-body bytes currently held by
	// readBody, across all connections; the MaxBufferedBytes gate.
	buffered atomic.Int64

	// Periodic-snapshot state (Options.SnapshotEvery): appends since
	// the last trigger, a single-flight latch, and failures for stats.
	sinceSnap atomic.Int64
	snapping  atomic.Bool
	snapFails atomic.Int64
}

// New builds a serving layer over the updater. The updater may already
// hold live entities (a seeded stream) and may keep receiving direct
// Apply calls; the server adds no state of its own beyond counters.
func New(u *pipeline.Updater, opts Options) *Server {
	return &Server{u: u, opts: opts, started: time.Now(), appendLat: stats.NewRing(0)}
}

// Handler returns the routing handler with the concurrency limit
// applied; pass it to an http.Server (see cmd/relaccd). /healthz sits
// OUTSIDE the limit, so a saturated daemon still answers liveness
// probes instead of getting killed by its orchestrator.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/schema", s.handleSchema)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/entities", s.handleList)
	mux.HandleFunc("GET /v1/entities/{key}", s.handleEntity)
	mux.HandleFunc("GET /v1/entities/{key}/topk", s.handleTopK)
	mux.HandleFunc("POST /v1/entities/{key}/evidence", s.handleAppendOne)
	mux.HandleFunc("POST /v1/evidence", s.handleAppendBatch)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	outer := http.NewServeMux()
	outer.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	outer.Handle("/", s.readBody(withLimit(mux, s.opts.maxInFlight())))
	return outer
}

// readBody buffers the request body BEFORE the concurrency gate, for
// two reasons: the server's read deadline then covers only actual
// client I/O, so a valid request queued behind the gate for longer
// than the deadline cannot die "reading" a body it already sent; and
// a slow-body client stalls here, outside the gate, instead of
// pinning a MaxInFlight slot inside the JSON decoder. The body cap
// bounds what each queued request may buffer (413 past it) and the
// AGGREGATE buffer across connections is bounded by MaxBufferedBytes:
// each request reserves its worst case (the declared Content-Length,
// or the full body cap for chunked senders) before reading, shrinks
// the reservation to the bytes actually held, and releases it when
// the handler finishes. A request that cannot reserve answers 429
// with Retry-After instead of queueing — explicit backpressure in
// place of unbounded memory.
func (s *Server) readBody(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil && r.Body != http.NoBody {
			reserve := s.opts.maxBodyBytes()
			if r.ContentLength >= 0 && r.ContentLength < reserve {
				// The server stops a body read at the declared length,
				// so this reservation is a true upper bound even for a
				// client that would send more.
				reserve = r.ContentLength
			}
			if reserve > 0 {
				if held := s.buffered.Add(reserve); held > s.opts.maxBufferedBytes() {
					s.buffered.Add(-reserve)
					w.Header().Set("Retry-After", "1")
					s.error(w, http.StatusTooManyRequests,
						fmt.Sprintf("server is buffering %d bytes of request bodies (cap %d); retry shortly",
							held-reserve, s.opts.maxBufferedBytes()))
					return
				}
				// Closure, not a direct defer: the reservation shrinks
				// after the read and the release must match it.
				defer func() { s.buffered.Add(-reserve) }()
			}
			data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.maxBodyBytes()))
			if err != nil {
				var tooBig *http.MaxBytesError
				if errors.As(err, &tooBig) {
					s.error(w, http.StatusRequestEntityTooLarge,
						fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
					return
				}
				s.error(w, http.StatusBadRequest, "reading request body: "+err.Error())
				return
			}
			if reserve > 0 && int64(len(data)) < reserve {
				// Keep only what is actually held; the deferred release
				// returns the rest now instead of at handler exit.
				s.buffered.Add(int64(len(data)) - reserve)
				reserve = int64(len(data))
			}
			r.Body = io.NopCloser(bytes.NewReader(data))
		}
		h.ServeHTTP(w, r)
	})
}

// withLimit is the request-concurrency gate: at most n requests run in
// the wrapped handler at once; the rest queue on the semaphore until a
// slot frees or their client disconnects. Queueing (rather than
// failing fast) gives producers natural backpressure — a burst of
// appends drains at the updater's pace instead of erroring.
func withLimit(h http.Handler, n int) http.Handler {
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			h.ServeHTTP(w, r)
		case <-r.Context().Done():
			// The client gave up while queued; nothing to write.
		}
	})
}

// --- read side ---

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	schema := s.u.Schema()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"name":  schema.Name(),
		"attrs": schema.Attrs(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	entities, liveTuples := s.u.Residency()
	cs := s.u.CacheStats()
	out := map[string]any{
		"entities":           entities,
		"live_tuples":        liveTuples,
		"appends":            s.appends.Load(),
		"tuples":             s.tuples.Load(),
		"queries":            s.queries.Load(),
		"errors":             s.errs.Load(),
		"uptime_ms":          time.Since(s.started).Milliseconds(),
		"max_in_flight":      s.opts.maxInFlight(),
		"buffered_bytes":     s.buffered.Load(),
		"max_buffered_bytes": s.opts.maxBufferedBytes(),
		"durable":            s.opts.Store != nil,
		// Read-path cache accounting: the settled-target memo (whole
		// stream) and the per-version verdict caches (summed over live
		// entities; hits/misses cumulative over each version chain).
		"settled_hits":    cs.SettledHits,
		"settled_misses":  cs.SettledMisses,
		"verdict_hits":    cs.VerdictHits,
		"verdict_misses":  cs.VerdictMisses,
		"verdict_entries": cs.VerdictEntries,
		// Append latency over the last stats.DefaultRingSize Apply
		// calls (absent until the first append): what one evidence
		// batch costs to absorb, excluding JSON and queueing time.
		"append_samples": s.appendLat.Len(),
	}
	if s.appendLat.Len() > 0 {
		ps := s.appendLat.Percentiles(50, 95, 99)
		out["append_p50_us"] = ps[0].Microseconds()
		out["append_p95_us"] = ps[1].Microseconds()
		out["append_p99_us"] = ps[2].Microseconds()
	}
	if s.opts.Store != nil {
		st := s.opts.Store.Stats()
		out["wal_bytes"] = st.WALBytes
		out["last_seq"] = st.LastSeq
		out["snapshot_seq"] = st.SnapshotSeq
		out["fsync"] = st.Fsync.String()
		out["snapshot_failures"] = s.snapFails.Load()
		if !st.LastSync.IsZero() {
			out["last_fsync_age_ms"] = time.Since(st.LastSync).Milliseconds()
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleSnapshot is the admin route: checkpoint now. It quiesces the
// stream, writes a durable snapshot and truncates the covered log;
// 409 on a memory-only daemon. Concurrent requests serialise inside
// the store.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	if s.opts.Store == nil {
		s.error(w, http.StatusConflict, "this server is memory-only (no durable store attached); nothing to snapshot")
		return
	}
	seq, err := s.opts.Store.Checkpoint(s.u)
	if err != nil {
		s.error(w, http.StatusInternalServerError, "snapshot failed: "+err.Error())
		return
	}
	st := s.opts.Store.Stats()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"snapshot_seq": seq,
		"wal_bytes":    st.WALBytes,
	})
}

// maybeSnapshot triggers the periodic checkpoint after SnapshotEvery
// successful appends. The checkpoint itself runs on its own goroutine
// (it quiesces the whole stream; the triggering request should not
// stall on it) and is single-flight — a slow snapshot swallows
// triggers instead of queueing them.
func (s *Server) maybeSnapshot() {
	st, every := s.opts.Store, s.opts.SnapshotEvery
	if st == nil || every <= 0 {
		return
	}
	if s.sinceSnap.Add(1) < int64(every) {
		return
	}
	if !s.snapping.CompareAndSwap(false, true) {
		return
	}
	s.sinceSnap.Store(0)
	go func() {
		defer s.snapping.Store(false)
		if _, err := st.Checkpoint(s.u); err != nil {
			s.snapFails.Add(1)
		}
	}()
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	keys := s.u.Keys()
	type entry struct {
		Key     string `json:"key"`
		Version int    `json:"version"`
	}
	entities := make([]entry, 0, len(keys))
	for _, k := range keys {
		entities = append(entities, entry{Key: k, Version: s.u.Version(k)})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"count":    len(entities),
		"entities": entities,
	})
}

func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	key := r.PathValue("key")
	res, ok := s.u.Query(key, 0, pipeline.AlgoTopKCT)
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Sprintf("unknown entity %q", key))
		return
	}
	s.writeJSON(w, http.StatusOK, s.entityJSON(res))
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	key := r.PathValue("key")
	k := s.opts.defaultTopK()
	if k > s.opts.maxTopK() {
		k = s.opts.maxTopK() // the default must obey the cap too
	}
	if kq := r.URL.Query().Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil || n <= 0 {
			s.error(w, http.StatusBadRequest, fmt.Sprintf("k must be a positive integer, got %q", kq))
			return
		}
		if n > s.opts.maxTopK() {
			s.error(w, http.StatusBadRequest,
				fmt.Sprintf("k %d exceeds this server's cap of %d", n, s.opts.maxTopK()))
			return
		}
		k = n
	}
	algo := pipeline.AlgoTopKCT
	if aq := r.URL.Query().Get("algo"); aq != "" {
		a, err := pipeline.ParseAlgorithm(aq)
		if err != nil {
			s.error(w, http.StatusBadRequest,
				fmt.Sprintf("unknown algo %q (want topkct, rankjoin or topkcth)", aq))
			return
		}
		algo = a
	}
	res, ok := s.u.Query(key, k, algo)
	if !ok {
		s.error(w, http.StatusNotFound, fmt.Sprintf("unknown entity %q", key))
		return
	}
	out := s.entityJSON(res)
	cands := make([]map[string]any, 0, len(res.Candidates))
	for _, c := range res.Candidates {
		cands = append(cands, map[string]any{
			"score": c.Score,
			"tuple": tupleJSON(c.Tuple),
		})
	}
	out["k"] = k
	out["candidates"] = cands
	out["stats"] = map[string]any{
		"checks":    res.Stats.Checks,
		"pops":      res.Stats.Pops,
		"generated": res.Stats.Generated,
	}
	s.writeJSON(w, http.StatusOK, out)
}

// --- write side ---

func (s *Server) handleAppendOne(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	// PathValue unescapes, so a %2F-encoded slash (or %2E-dotted
	// segment) would slip a key past the route-safety rule the batch
	// and seed paths enforce.
	if msg := badKey(key); msg != "" {
		s.error(w, http.StatusBadRequest, msg)
		return
	}
	var body struct {
		Tuples []map[string]any `json:"tuples"`
	}
	if !s.decodeJSON(w, r, &body) {
		return
	}
	if len(body.Tuples) == 0 {
		s.error(w, http.StatusBadRequest, "no tuples in request body")
		return
	}
	tuples, err := s.parseTuples(body.Tuples)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	s.appends.Add(1)
	applyStart := time.Now()
	results, _, err := s.u.Apply([]pipeline.Update{{Key: key, Tuples: tuples}})
	s.appendLat.Add(time.Since(applyStart))
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	res := results[0]
	if absorbFailed(res) {
		// Absorption failed: the entity keeps its previous version and
		// the batch may be corrected and retried.
		s.error(w, http.StatusUnprocessableEntity, res.Err.Error())
		return
	}
	s.tuples.Add(int64(len(tuples)))
	s.maybeSnapshot()
	out := s.entityJSON(res)
	out["absorbed"] = len(tuples)
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAppendBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Updates []struct {
			Key    string           `json:"key"`
			Tuples []map[string]any `json:"tuples"`
		} `json:"updates"`
	}
	if !s.decodeJSON(w, r, &body) {
		return
	}
	if len(body.Updates) == 0 {
		s.error(w, http.StatusBadRequest, "no updates in request body")
		return
	}
	updates := make([]pipeline.Update, 0, len(body.Updates))
	perKey := make(map[string]int, len(body.Updates))
	for i, up := range body.Updates {
		// Keep the key space route-safe: a key the per-entity routes
		// cannot address must not be creatable here either. Empty keys
		// are also screened by Apply; screening here keeps the error
		// per-update instead of failing the whole batch opaquely.
		if msg := badKey(up.Key); msg != "" {
			s.error(w, http.StatusBadRequest, fmt.Sprintf("update %d: %s", i, msg))
			return
		}
		// Match the single-entity route: an update carrying no tuples
		// would register a permanent zero-evidence live entity.
		if len(up.Tuples) == 0 {
			s.error(w, http.StatusBadRequest, fmt.Sprintf("update %d: no tuples", i))
			return
		}
		tuples, err := s.parseTuples(up.Tuples)
		if err != nil {
			s.error(w, http.StatusBadRequest, fmt.Sprintf("update %d: %v", i, err))
			return
		}
		perKey[up.Key] += len(tuples)
		updates = append(updates, pipeline.Update{Key: up.Key, Tuples: tuples})
	}
	s.appends.Add(1)
	applyStart := time.Now()
	results, sum, err := s.u.Apply(updates)
	s.appendLat.Add(time.Since(applyStart))
	if err != nil {
		// An empty key fails the whole batch before any work starts.
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	// Results come back merged by key in first-appearance order, each
	// carrying its key. Count a key's tuples as absorbed only when its
	// entity actually absorbed them.
	s.maybeSnapshot()
	out := make([]map[string]any, 0, len(results))
	for _, res := range results {
		if !absorbFailed(res) {
			s.tuples.Add(int64(perKey[res.Key]))
		}
		out = append(out, s.entityJSON(res))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"results": out,
		"summary": sum.String(),
	})
}

// ValidateKey reports whether an entity key can enter the store
// through this server: the per-entity routes address exactly one path
// segment, so a key containing '/' — or the segments ServeMux
// canonicalizes away, "." and ".." — could be created but never
// queried, topk'd or appended to individually. The relaccd seed path
// applies the same rule, so every live key is reachable.
func ValidateKey(key string) error {
	switch {
	case key == "":
		return errors.New("key is empty")
	case key == "." || key == "..":
		return fmt.Errorf("key %q is a path segment the router canonicalizes away", key)
	case strings.Contains(key, "/"):
		return fmt.Errorf("key %q contains '/', which the per-entity routes cannot address", key)
	}
	return nil
}

// badKey is ValidateKey as a message ("" when valid), for handlers.
func badKey(key string) string {
	if err := ValidateKey(key); err != nil {
		return err.Error()
	}
	return ""
}

// absorbFailed reports whether a Result's error happened while
// ABSORBING the delta — the entity kept its previous version and the
// request should answer 422 so the caller retries — as opposed to a
// failure in the later candidate search, after the evidence was
// already committed (answer 200, error field set, retrying would
// duplicate the tuples). The discrimination mirrors the per-phase
// contract documented on pipeline.Updater.Apply: an absorb failure
// never reaches deduction, so Deduction is nil exactly then.
func absorbFailed(res pipeline.Result) bool {
	return res.Err != nil && res.Deduction == nil
}

// --- JSON plumbing ---

// entityJSON renders the per-entity verdict shared by the query and
// append responses; the absorb-vs-search failure distinction surfaces
// as an error string next to an otherwise-populated verdict (absorb
// failures answer 422 before reaching this). The version is the one
// the Result was DEDUCED on — not a re-read of the live entity, which
// a concurrent append may already have moved past — so a client can
// correlate each reply with its own delta.
func (s *Server) entityJSON(res pipeline.Result) map[string]any {
	out := map[string]any{
		"key":        res.Key,
		"version":    res.Version,
		"tuples":     res.Instance.Size(),
		"status":     res.Status(),
		"elapsed_us": res.Elapsed.Microseconds(),
	}
	if res.Err != nil {
		out["error"] = res.Err.Error()
	}
	if res.Deduction != nil {
		out["church_rosser"] = res.Deduction.CR
		if res.Deduction.CR {
			out["target"] = tupleJSON(res.Deduction.Target)
			out["complete"] = res.Deduction.Target.Complete()
		} else {
			out["conflict"] = res.Deduction.Conflict
		}
	}
	return out
}

// tupleJSON renders a tuple as attribute → JSON value.
func tupleJSON(t *model.Tuple) map[string]any {
	out := make(map[string]any, t.Schema().Arity())
	for a := 0; a < t.Schema().Arity(); a++ {
		out[t.Schema().Attr(a)] = valueJSON(t.At(a))
	}
	return out
}

func valueJSON(v model.Value) any {
	switch v.Kind() {
	case model.Null:
		return nil
	case model.String:
		return v.Str()
	case model.Int:
		return v.Int()
	case model.Float:
		// JSON has no NaN/±Inf, and json.Encoder would error AFTER the
		// 200 header is out; the model admits them (a "NaN" CSV cell
		// parses as a float), so degrade those to their string forms.
		if f := v.Float(); !math.IsNaN(f) && !math.IsInf(f, 0) {
			return f
		}
		return v.String()
	case model.Bool:
		return v.Bool()
	}
	return v.String()
}

// parseTuples builds schema tuples from JSON objects keyed by attribute
// name. JSON numbers arrive as json.Number (decodeJSON sets UseNumber)
// and go through model.Parse, so "3" is an int and "3.5" a float,
// exactly as the CSV reader decides; attributes left out stay null.
func (s *Server) parseTuples(rows []map[string]any) ([]*model.Tuple, error) {
	schema := s.u.Schema()
	out := make([]*model.Tuple, 0, len(rows))
	for i, row := range rows {
		t := model.NewTuple(schema)
		for attr, raw := range row {
			if schema.Index(attr) < 0 {
				return nil, fmt.Errorf("tuple %d: attribute %q is not in schema %s (want %v)",
					i, attr, schema.Name(), schema.Attrs())
			}
			v, err := jsonValue(raw)
			if err != nil {
				return nil, fmt.Errorf("tuple %d, attribute %q: %v", i, attr, err)
			}
			t.Set(attr, v)
		}
		out = append(out, t)
	}
	return out, nil
}

func jsonValue(raw any) (model.Value, error) {
	switch x := raw.(type) {
	case nil:
		return model.NullValue(), nil
	case string:
		return model.S(x), nil
	case bool:
		return model.B(x), nil
	case json.Number:
		return model.Parse(string(x)), nil
	}
	return model.Value{}, fmt.Errorf("unsupported JSON value %v (want string, number, boolean or null)", raw)
}

// decodeJSON decodes the request body — already buffered and
// size-capped by readBody — answering 400 on malformed input; numbers
// decode as json.Number so int/float intent survives.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(into); err != nil {
		s.error(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode error here means the client is gone mid-reply; there is
	// no one left to tell.
	_ = enc.Encode(v)
}

func (s *Server) error(w http.ResponseWriter, code int, msg string) {
	s.errs.Add(1)
	s.writeJSON(w, code, map[string]any{"error": msg})
}
