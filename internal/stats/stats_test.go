package stats

import (
	"testing"
	"time"
)

func TestPRF(t *testing.T) {
	m := PRFOf(8, 2, 2)
	if m.Precision != 0.8 || m.Recall != 0.8 {
		t.Errorf("PRF = %+v", m)
	}
	if m.F1 < 0.79 || m.F1 > 0.81 {
		t.Errorf("F1 = %v", m.F1)
	}
	zero := PRFOf(0, 0, 0)
	if zero.Precision != 0 || zero.Recall != 0 || zero.F1 != 0 {
		t.Errorf("empty PRF = %+v", zero)
	}
	perfect := PRFOf(5, 0, 0)
	if perfect.F1 != 1 {
		t.Errorf("perfect F1 = %v", perfect.F1)
	}
	if s := m.String(); s != "p=0.80 r=0.80 F1=0.80" {
		t.Errorf("String = %q", s)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Rate() != 0 {
		t.Errorf("empty rate = %v", c.Rate())
	}
	c.Add(true)
	c.Add(true)
	c.Add(false)
	if c.Rate() < 0.66 || c.Rate() > 0.67 {
		t.Errorf("rate = %v", c.Rate())
	}
	if c.Percent() != "67%" {
		t.Errorf("percent = %q", c.Percent())
	}
}

func TestTiming(t *testing.T) {
	var tm Timing
	if tm.Mean() != 0 || tm.Percentile(50) != 0 {
		t.Errorf("empty timing not zero")
	}
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond} {
		tm.Add(d)
	}
	if tm.N() != 3 || tm.Total() != 6*time.Millisecond || tm.Mean() != 2*time.Millisecond {
		t.Errorf("timing aggregates wrong: %v %v %v", tm.N(), tm.Total(), tm.Mean())
	}
	if tm.Percentile(0) != time.Millisecond || tm.Percentile(100) != 3*time.Millisecond {
		t.Errorf("percentiles wrong")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Errorf("Mean wrong")
	}
}
