// Package stats provides the evaluation metrics of Section 7: precision,
// recall and F-measure for truth discovery (Table 4), and simple
// aggregation helpers for the effectiveness percentages of Exp-1/Exp-2.
package stats

import (
	"fmt"
	"sort"
	"time"
)

// PRF is a precision/recall/F-measure triple.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
}

// PRFOf computes the metrics from true/false positives and false
// negatives, following the definitions of Exp-5: R is the concluded set
// (tp+fp), G the true set (tp+fn).
func PRFOf(tp, fp, fn int) PRF {
	var p, r float64
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	var f1 float64
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return PRF{Precision: p, Recall: r, F1: f1}
}

// String renders like "p=0.81 r=0.88 F1=0.85".
func (m PRF) String() string {
	return fmt.Sprintf("p=%.2f r=%.2f F1=%.2f", m.Precision, m.Recall, m.F1)
}

// Counter accumulates a ratio (hits over trials).
type Counter struct {
	Hits   int
	Trials int
}

// Add records one trial.
func (c *Counter) Add(hit bool) {
	c.Trials++
	if hit {
		c.Hits++
	}
}

// Rate returns Hits/Trials (0 when empty).
func (c *Counter) Rate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Trials)
}

// Percent renders the rate as a percentage string.
func (c *Counter) Percent() string {
	return fmt.Sprintf("%.0f%%", 100*c.Rate())
}

// Timing accumulates durations and reports aggregates.
type Timing struct {
	samples []time.Duration
}

// Add records one sample.
func (t *Timing) Add(d time.Duration) { t.samples = append(t.samples, d) }

// N returns the sample count.
func (t *Timing) N() int { return len(t.samples) }

// Total returns the summed duration.
func (t *Timing) Total() time.Duration {
	var s time.Duration
	for _, d := range t.samples {
		s += d
	}
	return s
}

// Mean returns the average duration (0 when empty).
func (t *Timing) Mean() time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	return t.Total() / time.Duration(len(t.samples))
}

// Percentile returns the p-th percentile (p in [0,100]).
func (t *Timing) Percentile(p float64) time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), t.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Mean returns the arithmetic mean of a float slice (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
