package stats

import (
	"sort"
	"sync"
	"time"
)

// Ring records the most recent duration samples in a fixed-size window
// and answers percentile queries over them — the serving-side sibling
// of Timing, which grows without bound and is not concurrency-safe. A
// distribution that only ever accumulates would average a regression
// away under weeks of history; a bounded window of the last N samples
// keeps the percentiles describing the server as it is NOW, in constant
// memory. Safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int // buf index the next Add writes
	n    int // samples held, <= len(buf)
}

// DefaultRingSize is the window used when NewRing is given a
// non-positive capacity: large enough that p99 rests on ~10 samples,
// small enough to be noise in a server's footprint (8 KiB).
const DefaultRingSize = 1024

// NewRing returns a ring holding the last capacity samples
// (DefaultRingSize when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]time.Duration, capacity)}
}

// Add records one sample, evicting the oldest once the window is full.
func (r *Ring) Add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len reports how many samples the window currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Percentiles answers several percentile queries (each in [0, 100])
// over one consistent snapshot of the window, sorted once for all of
// them. Each answer is nearest-rank — an actual recorded sample, never
// an interpolated value. Nil when the window is empty.
func (r *Ring) Percentiles(ps ...float64) []time.Duration {
	r.mu.Lock()
	sorted := append([]time.Duration(nil), r.buf[:r.n]...)
	r.mu.Unlock()
	if len(sorted) == 0 {
		return nil
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]time.Duration, len(ps))
	for i, p := range ps {
		// Nearest-rank: the smallest sample at or below which at least
		// p% of the window falls, rank = ceil(p/100 * n).
		rank := int(float64(len(sorted)) * p / 100)
		if float64(rank) < float64(len(sorted))*p/100 {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		out[i] = sorted[rank-1]
	}
	return out
}
