package stats

import (
	"sync"
	"testing"
	"time"
)

func TestRingPercentiles(t *testing.T) {
	r := NewRing(100)
	// 1ms..100ms: nearest-rank percentiles are exact sample values.
	for i := 1; i <= 100; i++ {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	ps := r.Percentiles(50, 95, 99, 100)
	want := []time.Duration{50 * time.Millisecond, 95 * time.Millisecond,
		99 * time.Millisecond, 100 * time.Millisecond}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("percentile %d: %v, want %v", i, ps[i], want[i])
		}
	}
	if r.Len() != 100 {
		t.Errorf("Len = %d, want 100", r.Len())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 8; i++ {
		r.Add(time.Duration(i) * time.Second)
	}
	// Only 5s..8s survive: the window describes the server NOW.
	if got := r.Percentiles(0)[0]; got != 5*time.Second {
		t.Errorf("min after wrap = %v, want 5s", got)
	}
	if got := r.Percentiles(100)[0]; got != 8*time.Second {
		t.Errorf("max after wrap = %v, want 8s", got)
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0) // default capacity
	if r.Len() != 0 {
		t.Errorf("empty Len = %d", r.Len())
	}
	if ps := r.Percentiles(50, 99); ps != nil {
		t.Errorf("empty Percentiles = %v, want nil", ps)
	}
	r.Add(7 * time.Millisecond)
	// A single sample answers every percentile.
	for _, p := range []float64{0, 50, 99, 100} {
		if got := r.Percentiles(p)[0]; got != 7*time.Millisecond {
			t.Errorf("p%v over one sample = %v", p, got)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(time.Duration(i))
				r.Percentiles(50, 99)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Errorf("Len = %d, want 64", r.Len())
	}
}
