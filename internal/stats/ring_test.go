package stats

import (
	"sync"
	"testing"
	"time"
)

func TestRingPercentiles(t *testing.T) {
	r := NewRing(100)
	// 1ms..100ms: nearest-rank percentiles are exact sample values.
	for i := 1; i <= 100; i++ {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	ps := r.Percentiles(50, 95, 99, 100)
	want := []time.Duration{50 * time.Millisecond, 95 * time.Millisecond,
		99 * time.Millisecond, 100 * time.Millisecond}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("percentile %d: %v, want %v", i, ps[i], want[i])
		}
	}
	if r.Len() != 100 {
		t.Errorf("Len = %d, want 100", r.Len())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 8; i++ {
		r.Add(time.Duration(i) * time.Second)
	}
	// Only 5s..8s survive: the window describes the server NOW.
	if got := r.Percentiles(0)[0]; got != 5*time.Second {
		t.Errorf("min after wrap = %v, want 5s", got)
	}
	if got := r.Percentiles(100)[0]; got != 8*time.Second {
		t.Errorf("max after wrap = %v, want 8s", got)
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0) // default capacity
	if r.Len() != 0 {
		t.Errorf("empty Len = %d", r.Len())
	}
	if ps := r.Percentiles(50, 99); ps != nil {
		t.Errorf("empty Percentiles = %v, want nil", ps)
	}
	r.Add(7 * time.Millisecond)
	// A single sample answers every percentile.
	for _, p := range []float64{0, 50, 99, 100} {
		if got := r.Percentiles(p)[0]; got != 7*time.Millisecond {
			t.Errorf("p%v over one sample = %v", p, got)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(time.Duration(i))
				r.Percentiles(50, 99)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Errorf("Len = %d, want 64", r.Len())
	}
}

// TestRingConcurrentWriters hammers the ring from concurrent writers
// while readers query mid-flight, and checks the answers stay
// well-formed throughout — not just that the race detector stays
// quiet. Every written sample encodes its writer and sequence number,
// so a torn or partially-evicted snapshot would surface as a value
// nobody wrote, and percentile answers must stay monotone in p over a
// single consistent snapshot.
func TestRingConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		perG    = 2000
		stride  = 1 << 20 // writer g writes g*stride + i: values self-identify
		cap     = 128
	)
	r := NewRing(cap)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Add(time.Duration(g*stride + i))
			}
		}(g)
	}

	var readerWG sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if n := r.Len(); n < 0 || n > cap {
					t.Errorf("Len = %d outside [0, %d]", n, cap)
					return
				}
				ps := r.Percentiles(0, 50, 99, 100)
				if ps == nil {
					continue // window still empty
				}
				if len(ps) != 4 {
					t.Errorf("Percentiles returned %d answers, want 4", len(ps))
					return
				}
				for i := 1; i < len(ps); i++ {
					if ps[i] < ps[i-1] {
						t.Errorf("percentiles not monotone: %v", ps)
						return
					}
				}
				for _, v := range ps {
					g, i := int(v)/stride, int(v)%stride
					if g < 0 || g >= writers || i < 0 || i >= perG {
						t.Errorf("percentile answer %d was never written (writer %d, seq %d)", v, g, i)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readerWG.Wait()

	if n := r.Len(); n != cap {
		t.Errorf("Len after %d writes = %d, want full window %d", writers*perG, n, cap)
	}
	// The window now holds the last cap writes; with all writers done,
	// one consistent snapshot must still only contain written values.
	for _, v := range r.Percentiles(0, 25, 50, 75, 99, 100) {
		g, i := int(v)/stride, int(v)%stride
		if g < 0 || g >= writers || i < 0 || i >= perG {
			t.Errorf("final percentile answer %d was never written", v)
		}
	}
}
