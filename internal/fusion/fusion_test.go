package fusion_test

import (
	"fmt"
	"testing"

	"repro/internal/er"
	"repro/internal/fusion"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/paperdata"
	"repro/internal/rule"
	"repro/internal/topk"
)

// TestFusePaperExample: the four Michael Jordan tuples fuse into the
// paper's target, alongside a second planted entity.
func TestFusePaperExample(t *testing.T) {
	schema := paperdata.StatSchema()
	var tuples []*model.Tuple
	for _, tp := range paperdata.Stat().Tuples() {
		nt := model.NewTuple(schema)
		for a := 0; a < schema.Arity(); a++ {
			nt.SetAt(a, tp.At(a))
		}
		tuples = append(tuples, nt)
	}
	// A second entity: Scottie Pippen, two consistent tuples.
	null := model.NullValue()
	tuples = append(tuples,
		model.MustTuple(schema, model.S("Scottie"), null, model.S("Pippen"),
			model.I(10), model.I(170), model.I(33), model.S("NBA"),
			model.S("Chicago Bulls"), model.S("United Center")),
		model.MustTuple(schema, model.S("Scottie"), null, model.S("Pippen"),
			model.I(20), model.I(350), model.I(33), model.S("NBA"),
			model.S("Chicago Bulls"), model.S("United Center")),
	)

	im := paperdata.NBA()
	rules, err := rule.NewSet(schema, im.Schema(), paperdata.Rules()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fusion.Fuse(tuples, schema, fusion.Config{
		ER:     er.Config{KeyAttrs: []string{"LN"}, Threshold: 0.8},
		Rules:  rules,
		Master: im,
		Pref:   topk.Preference{K: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// t1 carries LN = null, which never matches the ER key, so it may
	// end up as its own singleton cluster: 2 or 3 entities are both
	// legitimate resolutions.
	if len(res.Entities) < 2 || len(res.Entities) > 3 {
		t.Fatalf("entities = %d, want 2 or 3", len(res.Entities))
	}
	// The Jordan entity must fuse to the paper target. The ER key (LN)
	// clusters t1 (null LN) with... null keys never match, so t1 may
	// form its own cluster; accept either 2 or 3 clusters by checking
	// the Jordan target is present.
	foundJordan := false
	for _, f := range res.Fused {
		if f.EqualTo(paperdata.Target()) {
			foundJordan = true
		}
	}
	if !foundJordan {
		var got []string
		for _, f := range res.Fused {
			got = append(got, f.String())
		}
		t.Errorf("paper target not among fused tuples: %v", got)
	}
	counts := res.Counts()
	if counts[fusion.Deduced] == 0 {
		t.Errorf("expected deduced entities, got %v", counts)
	}
}

// TestFuseGeneratedDataset: fuse a generated Med-style relation and
// measure accuracy against ground truth.
func TestFuseGeneratedDataset(t *testing.T) {
	cfg := gen.MedConfig()
	cfg.NumEntities = 120
	ds := gen.Generate(cfg)

	// Flatten the dataset back into one dirty relation.
	var tuples []*model.Tuple
	for _, e := range ds.Entities {
		tuples = append(tuples, e.Instance.Tuples()...)
	}
	res, err := fusion.Fuse(tuples, ds.Schema, fusion.Config{
		// The generator's name attribute is the natural ER key.
		ER:     er.Config{KeyAttrs: []string{"name"}, BlockAttr: "name", BlockPrefix: 12, Threshold: 0.95},
		Rules:  ds.Rules,
		Master: ds.Master,
		Pref:   topk.Preference{K: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entities) != len(ds.Entities) {
		t.Fatalf("ER recovered %d entities, want %d", len(res.Entities), len(ds.Entities))
	}
	// Index truth by name and compare fused values.
	truthByName := map[string]*model.Tuple{}
	for _, e := range ds.Entities {
		truthByName[e.ID] = e.Truth
	}
	attrsTotal, attrsCorrect := 0, 0
	for _, f := range res.Fused {
		name, _ := f.Get("name")
		truth := truthByName[name.Str()]
		if truth == nil {
			t.Fatalf("fused tuple with unknown name %v", name)
		}
		for a := 0; a < ds.Schema.Arity(); a++ {
			if f.At(a).IsNull() {
				continue
			}
			attrsTotal++
			if f.At(a).Equal(truth.At(a)) {
				attrsCorrect++
			}
		}
	}
	rate := float64(attrsCorrect) / float64(attrsTotal)
	t.Logf("fused %d entities; non-null attribute accuracy %.3f; statuses %v",
		len(res.Fused), rate, res.Counts())
	if rate < 0.85 {
		t.Errorf("fused accuracy %.3f too low", rate)
	}
	counts := res.Counts()
	if counts[fusion.NotChurchRosser] > 0 {
		t.Errorf("generated dataset should be conflict-free, got %d non-CR", counts[fusion.NotChurchRosser])
	}
	if counts[fusion.Filled] == 0 {
		t.Errorf("expected some top-k-filled entities, got %v", counts)
	}
}

// TestFuseKeepIncomplete: with K=0 and KeepIncomplete, unresolved
// entities surface with nulls.
func TestFuseKeepIncomplete(t *testing.T) {
	s := model.MustSchema("r", "id", "v")
	tuples := []*model.Tuple{
		model.MustTuple(s, model.S("e1"), model.S("x")),
		model.MustTuple(s, model.S("e1"), model.S("y")),
	}
	res, err := fusion.Fuse(tuples, s, fusion.Config{
		ER:             er.Config{KeyAttrs: []string{"id"}},
		Rules:          rule.MustSet(s, nil),
		KeepIncomplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fused) != 1 {
		t.Fatalf("fused = %d", len(res.Fused))
	}
	if v, _ := res.Fused[0].Get("v"); !v.IsNull() {
		t.Errorf("v should stay null, got %v", v)
	}
	if res.Entities[0].Status != fusion.Incomplete {
		t.Errorf("status = %v", res.Entities[0].Status)
	}

	// Without KeepIncomplete the entity is dropped.
	res2, err := fusion.Fuse(tuples, s, fusion.Config{
		ER:    er.Config{KeyAttrs: []string{"id"}},
		Rules: rule.MustSet(s, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Fused) != 0 {
		t.Errorf("incomplete entity should be dropped, got %d", len(res2.Fused))
	}
}

// TestFuseNonCR: an entity with conflicting rules is reported, not
// silently fused.
func TestFuseNonCR(t *testing.T) {
	s := model.MustSchema("r", "id", "v")
	tuples := []*model.Tuple{
		model.MustTuple(s, model.S("e1"), model.I(1)),
		model.MustTuple(s, model.S("e1"), model.I(2)),
	}
	up := &rule.Form1{RuleName: "up",
		LHS: []rule.Pred{rule.Cmp(rule.T1("v"), rule.Lt, rule.T2("v"))}, RHS: "v"}
	down := &rule.Form1{RuleName: "down",
		LHS: []rule.Pred{rule.Cmp(rule.T1("v"), rule.Gt, rule.T2("v"))}, RHS: "v"}
	res, err := fusion.Fuse(tuples, s, fusion.Config{
		ER:    er.Config{KeyAttrs: []string{"id"}},
		Rules: rule.MustSet(s, nil, up, down),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entities[0].Status != fusion.NotChurchRosser || res.Entities[0].Conflict == "" {
		t.Errorf("want NotChurchRosser with conflict, got %v %q",
			res.Entities[0].Status, res.Entities[0].Conflict)
	}
	if len(res.Fused) != 0 {
		t.Errorf("non-CR entity must not be fused")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[fusion.Status]string{
		fusion.Deduced:         "deduced",
		fusion.Filled:          "filled",
		fusion.Incomplete:      "incomplete",
		fusion.NotChurchRosser: "not-church-rosser",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if fmt.Sprint(fusion.Status(99)) == "" {
		t.Errorf("unknown status should render")
	}
}
