// Package fusion applies relative-accuracy reasoning to a whole dirty
// relation, the application the paper motivates in Section 1 ("improve
// the accuracy of data in a database") and lists as ongoing work in its
// conclusion: tuples are grouped into entity instances by entity
// resolution, each instance is chased with the accuracy rules and master
// data, incomplete targets are filled from the top-k search, and the
// result is one fused tuple per entity.
//
// The pipeline is: er.Resolve → chase per entity → topk per incomplete
// entity → fused relation + per-entity report.
package fusion

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/er"
	"repro/internal/model"
	"repro/internal/rule"
	"repro/internal/topk"
)

// Config assembles the pipeline.
type Config struct {
	// ER groups the input tuples into entity instances.
	ER er.Config
	// Rules is the accuracy rule set Σ.
	Rules *rule.Set
	// Master is the optional master relation Im.
	Master *model.MasterRelation
	// Pref ranks candidate values for attributes the chase cannot
	// decide; K = 0 disables candidate filling (incomplete targets are
	// returned with nulls). K = 1 fills with the best verified candidate.
	Pref topk.Preference
	// KeepIncomplete controls whether entities whose target stays
	// incomplete (or whose specification is not Church-Rosser) appear in
	// the fused output; their Status reports why.
	KeepIncomplete bool
}

// Status classifies one entity's outcome.
type Status int

const (
	// Deduced: the chase alone produced a complete target.
	Deduced Status = iota
	// Filled: the target was completed from the top-k candidates.
	Filled
	// Incomplete: some attributes stayed null.
	Incomplete
	// NotChurchRosser: the entity's rules conflicted; no target.
	NotChurchRosser
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Deduced:
		return "deduced"
	case Filled:
		return "filled"
	case Incomplete:
		return "incomplete"
	case NotChurchRosser:
		return "not-church-rosser"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// EntityResult is the outcome for one resolved entity.
type EntityResult struct {
	Instance *model.EntityInstance
	Target   *model.Tuple // nil when NotChurchRosser
	Status   Status
	Conflict string // set when NotChurchRosser
}

// Result is the fused relation plus the per-entity breakdown.
type Result struct {
	Schema   *model.Schema
	Fused    []*model.Tuple
	Entities []EntityResult
}

// Counts tallies entity statuses.
func (r *Result) Counts() map[Status]int {
	out := map[Status]int{}
	for _, e := range r.Entities {
		out[e.Status]++
	}
	return out
}

// Fuse runs the pipeline over the tuples of one relation.
func Fuse(tuples []*model.Tuple, schema *model.Schema, cfg Config) (*Result, error) {
	instances, err := er.Resolve(tuples, schema, cfg.ER)
	if err != nil {
		return nil, err
	}
	res := &Result{Schema: schema}
	for _, ie := range instances {
		er, err := fuseEntity(ie, cfg)
		if err != nil {
			return nil, err
		}
		res.Entities = append(res.Entities, er)
		if er.Target != nil && (er.Target.Complete() || cfg.KeepIncomplete) {
			res.Fused = append(res.Fused, er.Target)
		}
	}
	return res, nil
}

func fuseEntity(ie *model.EntityInstance, cfg Config) (EntityResult, error) {
	g, err := chase.NewGrounding(chase.Spec{Ie: ie, Im: cfg.Master, Rules: cfg.Rules}, chase.Options{})
	if err != nil {
		return EntityResult{}, err
	}
	out := EntityResult{Instance: ie}
	r := g.Run(nil)
	if !r.CR {
		out.Status = NotChurchRosser
		out.Conflict = r.Conflict
		return out, nil
	}
	out.Target = r.Target
	if r.Target.Complete() {
		out.Status = Deduced
		return out, nil
	}
	if cfg.Pref.K > 0 {
		pref := cfg.Pref
		cands, _, err := topk.TopKCT(g, r.Target, pref)
		if err != nil {
			return EntityResult{}, err
		}
		if len(cands) > 0 {
			out.Target = cands[0].Tuple
			out.Status = Filled
			return out, nil
		}
	}
	out.Status = Incomplete
	return out, nil
}
