package gen_test

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/rule"
	"repro/internal/topk"
	"repro/internal/truth"
)

func smallMed() gen.EntityConfig {
	cfg := gen.MedConfig()
	cfg.NumEntities = 300
	return cfg
}

func TestMedShape(t *testing.T) {
	ds := gen.Generate(smallMed())
	if ds.Schema.Arity() != 2+5+12+8+4 {
		t.Errorf("arity = %d", ds.Schema.Arity())
	}
	if len(ds.Entities) != 300 {
		t.Fatalf("entities = %d", len(ds.Entities))
	}
	avg := float64(ds.TotalTuples()) / float64(len(ds.Entities))
	if avg < 2 || avg > 8 {
		t.Errorf("average instance size = %v, want ~4", avg)
	}
	// Master covers non-degraded entities only: ≈ 300 × 0.7 × 0.95.
	if ds.Master.Size() < 160 || ds.Master.Size() > 240 {
		t.Errorf("master size = %d, want ≈ 200", ds.Master.Size())
	}
	f1 := ds.Rules.Form1Only().Len()
	f2 := ds.Rules.Form2Only().Len()
	if f1 == 0 || f2 == 0 || f1 < f2 {
		t.Errorf("rule split f1=%d f2=%d", f1, f2)
	}
}

// TestMedChurchRosserAndQuality: every generated entity must be
// Church-Rosser, a solid majority must deduce complete targets, and the
// deduced values must overwhelmingly match the ground truth.
func TestMedChurchRosserAndQuality(t *testing.T) {
	ds := gen.Generate(smallMed())
	complete := 0
	attrsTotal, attrsDeduced, attrsCorrect := 0, 0, 0
	for _, e := range ds.Entities {
		g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: ds.Master, Rules: ds.Rules}, chase.Options{})
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		res := g.Run(nil)
		if !res.CR {
			t.Fatalf("%s is not Church-Rosser: %s", e.ID, res.Conflict)
		}
		if res.Complete() {
			complete++
		}
		for a := 0; a < ds.Schema.Arity(); a++ {
			attrsTotal++
			v := res.Target.At(a)
			if v.IsNull() {
				continue
			}
			attrsDeduced++
			if v.Equal(e.Truth.At(a)) {
				attrsCorrect++
			}
		}
	}
	completeRate := float64(complete) / float64(len(ds.Entities))
	deducedRate := float64(attrsDeduced) / float64(attrsTotal)
	correctRate := float64(attrsCorrect) / float64(attrsDeduced)
	t.Logf("complete=%.2f deduced=%.2f correct=%.2f", completeRate, deducedRate, correctRate)
	if completeRate < 0.5 || completeRate > 0.9 {
		t.Errorf("complete-target rate = %.2f, want in the paper's regime (~0.66)", completeRate)
	}
	if deducedRate < 0.6 {
		t.Errorf("attribute deduction rate = %.2f, want ≥ 0.6 (~0.73 in the paper)", deducedRate)
	}
	if correctRate < 0.9 {
		t.Errorf("deduced-value correctness = %.2f, want ≥ 0.9", correctRate)
	}
}

// TestMedRuleFormInteraction: the form-(1)-only and form-(2)-only runs
// deduce strictly fewer attributes, and their union is smaller than the
// combined run (the superadditivity of Fig. 6(e)).
func TestMedRuleFormInteraction(t *testing.T) {
	ds := gen.Generate(smallMed())
	rate := func(rules *rule.Set) (float64, float64) {
		deduced, complete, total := 0, 0, 0
		for _, e := range ds.Entities {
			g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: ds.Master, Rules: rules}, chase.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res := g.Run(nil)
			if !res.CR {
				t.Fatalf("not CR under restricted rules")
			}
			if res.Complete() {
				complete++
			}
			for a := 0; a < ds.Schema.Arity(); a++ {
				total++
				if !res.Target.At(a).IsNull() {
					deduced++
				}
			}
		}
		return float64(deduced) / float64(total), float64(complete) / float64(len(ds.Entities))
	}
	both, bothC := rate(ds.Rules)
	f1, f1C := rate(ds.Rules.Form1Only())
	f2, f2C := rate(ds.Rules.Form2Only())
	t.Logf("deduced both=%.2f f1=%.2f f2=%.2f; complete both=%.2f f1=%.2f f2=%.2f",
		both, f1, f2, bothC, f1C, f2C)
	if !(both > f1 && f1 > f2) {
		t.Errorf("want both > form1 > form2, got %.2f %.2f %.2f", both, f1, f2)
	}
	if f1C >= bothC || f2C >= bothC {
		t.Errorf("complete rates: both=%.2f must dominate f1=%.2f f2=%.2f", bothC, f1C, f2C)
	}
}

// TestMedTopKFindsTruth: for entities with incomplete targets, the true
// tuple should usually appear among the top-k candidates (Exp-2).
func TestMedTopKFindsTruth(t *testing.T) {
	ds := gen.Generate(smallMed())
	found, incomplete := 0, 0
	for _, e := range ds.Entities[:150] {
		g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: ds.Master, Rules: ds.Rules}, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := g.Run(nil)
		if !res.CR || res.Complete() {
			continue
		}
		incomplete++
		cands, _, err := topk.TopKCT(g, res.Target, topk.Preference{K: 15})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			if c.Tuple.EqualTo(e.Truth) {
				found++
				break
			}
		}
	}
	if incomplete == 0 {
		t.Fatalf("no incomplete entities in sample")
	}
	rate := float64(found) / float64(incomplete)
	t.Logf("top-15 coverage on incomplete entities: %.2f (%d/%d)", rate, found, incomplete)
	if rate < 0.3 {
		t.Errorf("top-k coverage %.2f too low", rate)
	}
}

func TestCFPGenerates(t *testing.T) {
	ds := gen.Generate(gen.CFPConfig())
	if len(ds.Entities) != 100 {
		t.Fatalf("entities = %d", len(ds.Entities))
	}
	complete := 0
	for _, e := range ds.Entities {
		g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: ds.Master, Rules: ds.Rules}, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := g.Run(nil)
		if !res.CR {
			t.Fatalf("%s not CR: %s", e.ID, res.Conflict)
		}
		if res.Complete() {
			complete++
		}
	}
	t.Logf("CFP complete rate: %d/100", complete)
	if complete < 30 || complete > 95 {
		t.Errorf("CFP complete rate %d out of expected regime", complete)
	}
}

func TestRestShape(t *testing.T) {
	cfg := gen.RestDefault()
	cfg.Restaurants = 300
	ds := gen.GenerateRest(cfg)
	if len(ds.Entities) != 300 {
		t.Fatalf("restaurants = %d", len(ds.Entities))
	}
	if len(ds.Sources) != 1+3+7+2 {
		t.Errorf("sources = %d", len(ds.Sources))
	}
	if len(ds.Claims) == 0 {
		t.Fatalf("no claims")
	}
	closed := 0
	for _, c := range ds.Closed {
		if c {
			closed++
		}
	}
	rate := float64(closed) / 300
	if rate < 0.2 || rate > 0.4 {
		t.Errorf("closed rate = %.2f", rate)
	}
}

// TestRestChaseResolvesViaDated: the chase must be Church-Rosser on
// every restaurant and must resolve closed? correctly exactly where a
// dated source reports.
func TestRestChaseResolvesViaDated(t *testing.T) {
	cfg := gen.RestDefault()
	cfg.Restaurants = 300
	ds := gen.GenerateRest(cfg)
	resolved, correct := 0, 0
	for _, e := range ds.Entities {
		g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Rules: ds.Rules}, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := g.Run(nil)
		if !res.CR {
			t.Fatalf("%s not CR: %s", e.ID, res.Conflict)
		}
		v, _ := res.Target.Get("closed")
		hasDated := false
		for _, tp := range e.Instance.Tuples() {
			if a, _ := tp.Get("asOf"); !a.IsNull() {
				hasDated = true
			}
		}
		if hasDated && v.IsNull() {
			t.Errorf("%s: dated source present but closed unresolved", e.ID)
		}
		if !v.IsNull() {
			resolved++
			if v.Equal(model.B(ds.Closed[e.ID])) {
				correct++
			}
		}
	}
	t.Logf("resolved %d/300, correct %d", resolved, correct)
	if resolved == 0 {
		t.Fatalf("chase resolved nothing")
	}
	if float64(correct)/float64(resolved) < 0.95 {
		t.Errorf("chase-resolved closed values not precise: %d/%d", correct, resolved)
	}
}

// TestRestDeduceOrderPrecision: the currency-only subset (DeduceOrder's
// view) concludes closure rarely but always correctly.
func TestRestDeduceOrderPrecision(t *testing.T) {
	cfg := gen.RestDefault()
	cfg.Restaurants = 300
	ds := gen.GenerateRest(cfg)
	curRules := gen.RestCurrencyRules(ds)
	concluded, correct := 0, 0
	for _, e := range ds.Entities {
		te, err := truth.DeduceOrder(e.Instance, nil, curRules)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := te.Get("closed")
		if v.IsNull() {
			continue
		}
		concluded++
		if v.Equal(model.B(ds.Closed[e.ID])) {
			correct++
		}
	}
	t.Logf("DeduceOrder concluded %d/300, correct %d", concluded, correct)
	if concluded == 0 {
		t.Fatalf("DeduceOrder concluded nothing")
	}
	if correct < concluded*9/10 {
		t.Errorf("DeduceOrder precision too low: %d/%d", correct, concluded)
	}
	if concluded > 200 {
		t.Errorf("DeduceOrder should be conservative, concluded %d/300", concluded)
	}
}

func TestSynGenerates(t *testing.T) {
	cfg := gen.SynDefault()
	cfg.Tuples = 200
	cfg.Im = 50
	ds := gen.GenerateSyn(cfg)
	e := ds.Entities[0]
	if e.Instance.Size() != 200 {
		t.Fatalf("tuples = %d", e.Instance.Size())
	}
	if ds.Master.Size() != 50 {
		t.Fatalf("master = %d", ds.Master.Size())
	}
	if ds.Rules.Len() != 60 {
		t.Fatalf("rules = %d", ds.Rules.Len())
	}
	f2 := ds.Rules.Form2Only().Len()
	if f2 < 10 || f2 > 20 {
		t.Errorf("form-2 share = %d/60, want ≈ 15", f2)
	}

	g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: ds.Master, Rules: ds.Rules}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run(nil)
	if !res.CR {
		t.Fatalf("Syn not CR: %s", res.Conflict)
	}
	if res.Complete() {
		t.Fatalf("Syn target should be incomplete (free attributes)")
	}
	// Version and currency attributes must be resolved to the truth.
	for _, a := range []string{"version", "c0", "m0"} {
		v, _ := res.Target.Get(a)
		w, _ := e.Truth.Get(a)
		if !v.Equal(w) {
			t.Errorf("te[%s] = %v, want %v", a, v, w)
		}
	}

	// The top-k algorithms must run on it.
	cands, _, err := topk.TopKCT(g, res.Target, topk.Preference{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatalf("no candidates on Syn")
	}
}

// TestSynRulePrefixesStayUsable: the ‖Σ‖-scaling experiment truncates
// the rule set; every prefix length must remain Church-Rosser.
func TestSynRulePrefixesStayUsable(t *testing.T) {
	cfg := gen.SynDefault()
	cfg.Tuples = 100
	cfg.Im = 30
	cfg.Rules = 100
	ds := gen.GenerateSyn(cfg)
	e := ds.Entities[0]
	for _, n := range []int{20, 40, 60, 80, 100} {
		g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: ds.Master, Rules: ds.Rules.Truncate(n)}, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res := g.Run(nil); !res.CR {
			t.Errorf("prefix %d not CR: %s", n, res.Conflict)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := gen.Generate(smallMed())
	b := gen.Generate(smallMed())
	if a.TotalTuples() != b.TotalTuples() {
		t.Fatalf("generation not deterministic")
	}
	for i := range a.Entities {
		if !a.Entities[i].Truth.EqualTo(b.Entities[i].Truth) {
			t.Fatalf("truth differs at entity %d", i)
		}
	}
}
