package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/rule"
)

// SynConfig parameterises the synthetic scalability dataset of Section 7
// (Exp-4): a single entity instance of 20 attributes whose size ‖Ie‖,
// master size ‖Im‖ and rule count ‖Σ‖ are varied independently. The
// instance extends the structure of the running example (a version
// chain, currency-correlated attributes, master-covered attributes and
// free attributes) to arbitrary size while remaining Church-Rosser.
type SynConfig struct {
	Tuples int // ‖Ie‖
	Im     int // ‖Im‖ (rows; one of them matches the entity)
	Rules  int // ‖Σ‖ target (75% form 1, 25% form 2, as in the paper)
	Seed   int64
}

// SynDefault is the paper's default operating point (‖Ie‖=900, ‖Im‖=300,
// ‖Σ‖=60).
func SynDefault() SynConfig {
	return SynConfig{Tuples: 900, Im: 300, Rules: 60, Seed: 4}
}

// GenerateSyn builds one synthetic entity. Layout of the 20 attributes:
//
//	name | version | m0..m4 | c0..c8 | f0..f3
//
// name agrees, version is a distinct monotone counter, c* follow a
// change-point process along version, m* are noisy and master-covered
// (master keyed on name), f* are free (so the deduced target is
// incomplete and the top-k algorithms have work to do).
func GenerateSyn(cfg SynConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	attrs := []string{"name", "version"}
	for i := 0; i < 5; i++ {
		attrs = append(attrs, fmt.Sprintf("m%d", i))
	}
	for i := 0; i < 9; i++ {
		attrs = append(attrs, fmt.Sprintf("c%d", i))
	}
	for i := 0; i < 4; i++ {
		attrs = append(attrs, fmt.Sprintf("f%d", i))
	}
	schema := model.MustSchema("Syn", attrs...)

	n := cfg.Tuples
	truth := model.NewTuple(schema)
	truth.Set("name", model.S("syn-entity"))
	truth.Set("version", model.I(int64(n)))
	for i := 0; i < 5; i++ {
		truth.Set(fmt.Sprintf("m%d", i), model.S(fmt.Sprintf("m%d-true", i)))
	}
	for i := 0; i < 9; i++ {
		truth.Set(fmt.Sprintf("c%d", i), model.S(fmt.Sprintf("c%d-true", i)))
	}
	for i := 0; i < 4; i++ {
		truth.Set(fmt.Sprintf("f%d", i), model.S(fmt.Sprintf("f%d-v0", i)))
	}

	// Change points for the currency attributes.
	change := make([]int, 9)
	for i := range change {
		change[i] = 1 + rng.Intn(n)
	}

	ie := model.NewEntityInstance(schema)
	for v := 1; v <= n; v++ {
		t := model.NewTuple(schema)
		t.Set("name", model.S("syn-entity"))
		t.Set("version", model.I(int64(v)))
		for i := 0; i < 9; i++ {
			a := fmt.Sprintf("c%d", i)
			switch {
			case rng.Float64() < 0.05:
				// null
			case v >= change[i]:
				t.Set(a, model.S(fmt.Sprintf("c%d-true", i)))
			default:
				t.Set(a, model.S(fmt.Sprintf("c%d-old", i)))
			}
		}
		for i := 0; i < 5; i++ {
			a := fmt.Sprintf("m%d", i)
			if rng.Float64() < 0.7 {
				t.Set(a, model.S(fmt.Sprintf("m%d-noise%d", i, rng.Intn(20))))
			} else {
				t.Set(a, truthVal(truth, a))
			}
		}
		for i := 0; i < 4; i++ {
			a := fmt.Sprintf("f%d", i)
			// Free attributes draw from a sizeable domain so the ranked
			// candidate lists are non-trivial.
			t.Set(a, model.S(fmt.Sprintf("f%d-v%d", i, rng.Intn(40))))
		}
		ie.MustAdd(t)
	}

	// Master: one matching row plus noise rows for other entities.
	masterAttrs := []string{"name", "m0", "m1", "m2", "m3", "m4"}
	ms := model.MustSchema("Syn_master", masterAttrs...)
	im := model.NewMasterRelation(ms)
	matchAt := 0
	if cfg.Im > 1 {
		matchAt = rng.Intn(cfg.Im)
	}
	for r := 0; r < cfg.Im; r++ {
		row := model.NewTuple(ms)
		if r == matchAt {
			row.Set("name", model.S("syn-entity"))
			for i := 0; i < 5; i++ {
				row.Set(fmt.Sprintf("m%d", i), truthVal(truth, fmt.Sprintf("m%d", i)))
			}
		} else {
			row.Set("name", model.S(fmt.Sprintf("other-%d", r)))
			for i := 0; i < 5; i++ {
				row.Set(fmt.Sprintf("m%d", i), model.S(fmt.Sprintf("m%d-x%d", i, r)))
			}
		}
		im.MustAdd(row)
	}

	return &Dataset{
		Name:     "Syn",
		Schema:   schema,
		Entities: []Entity{{ID: "syn-entity", Instance: ie, Truth: truth}},
		Master:   im,
		Rules:    synRules(schema, ms, cfg.Rules),
	}
}

func truthVal(t *model.Tuple, attr string) model.Value {
	v, _ := t.Get(attr)
	return v
}

// synRules builds ‖Σ‖ rules, 75% form (1) and 25% form (2), cycling
// through rule templates so any prefix (for the ‖Σ‖-scaling experiment)
// is still meaningful.
func synRules(schema, ms *model.Schema, total int) *rule.Set {
	var rules []rule.Rule
	rules = append(rules, &rule.Form1{
		RuleName: "cur-version",
		LHS:      []rule.Pred{rule.Cmp(rule.T1("version"), rule.Lt, rule.T2("version"))},
		RHS:      "version",
	})
	f1 := 1
	f2 := 0
	ci, mi, variant := 0, 0, 0
	for len(rules) < total {
		if f2*4 < len(rules) { // keep ≈25% form (2)
			a := fmt.Sprintf("m%d", mi%5)
			rules = append(rules, &rule.Form2{
				RuleName:   fmt.Sprintf("master-%s-%d", a, mi),
				Conds:      []rule.MasterCond{rule.CondMaster("name", "name")},
				TargetAttr: a,
				MasterAttr: a,
			})
			mi++
			f2++
			continue
		}
		a := fmt.Sprintf("c%d", ci%9)
		var lhs []rule.Pred
		if variant%2 == 0 {
			lhs = []rule.Pred{
				rule.Prec("version"),
				rule.Cmp(rule.T2(a), rule.Ne, rule.C(model.NullValue())),
			}
		} else {
			lhs = []rule.Pred{
				rule.Cmp(rule.T1(a), rule.Eq, rule.C(model.NullValue())),
				rule.Cmp(rule.T2(a), rule.Ne, rule.C(model.NullValue())),
			}
		}
		rules = append(rules, &rule.Form1{
			RuleName: fmt.Sprintf("cur-%s-%d", a, ci),
			LHS:      lhs,
			RHS:      a,
		})
		ci++
		if ci%9 == 0 {
			variant++
		}
		f1++
	}
	_ = f1
	return rule.MustSet(schema, ms, rules...)
}
