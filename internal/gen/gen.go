// Package gen synthesises the paper's evaluation datasets with known
// ground truth. The originals (Med, CFP, Rest — Section 7) are
// proprietary or no longer distributable, so each generator reproduces
// the *structure* the algorithms are sensitive to: per-entity tuple
// multiplicity, attribute classes (master-covered, currency-driven,
// correlated, free), noise processes (staleness along a version chain,
// nulls, typos), master-data coverage, and rule sets with the same
// form-(1)/form-(2) split. See DESIGN.md for the substitution argument.
//
// All generators are deterministic given a seed.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/rule"
)

// Entity is one generated entity: its dirty instance and its true tuple.
type Entity struct {
	ID       string
	Instance *model.EntityInstance
	Truth    *model.Tuple
}

// Dataset bundles everything an experiment needs.
type Dataset struct {
	Name     string
	Schema   *model.Schema
	Entities []Entity
	Master   *model.MasterRelation
	Rules    *rule.Set
}

// TotalTuples sums the entity instance sizes.
func (d *Dataset) TotalTuples() int {
	n := 0
	for _, e := range d.Entities {
		n += e.Instance.Size()
	}
	return n
}

// EntityConfig parameterises the shared Med/CFP-style generator. The
// schema is laid out as:
//
//	name | version | master attrs | currency attrs | paired attrs | free attrs
//
// name agrees across tuples (the entity-resolution key); version is a
// monotone update counter (the paper's rnds); master attrs carry noisy
// values correctable from master data; currency attrs follow a
// change-point process along the version chain (stale before, true
// after); paired attrs come in (primary, dependent) pairs — the primary
// is mostly null except in one tuple (like MN in the running example),
// the dependent is deduced from the primary's order; free attrs have no
// rules and resolve only by agreement.
type EntityConfig struct {
	Name          string
	NumEntities   int
	AvgTuples     int // mean instance size (geometric-ish, min 1)
	MinTuples     int // lower bound on instance size (0 = 1)
	MaxTuples     int
	MasterAttrs   int     // master-covered attributes
	CurrencyAttrs int     // version-correlated attributes
	PairAttrs     int     // number of (primary, dependent) pairs
	FreeAttrs     int     // rule-less attributes
	MasterCover   float64 // fraction of entities present in master data
	// KeyedOnCurrency is how many master attrs additionally require the
	// first currency attribute as a lookup key (the form-(1)/form-(2)
	// interaction of Exp-1).
	KeyedOnCurrency int
	NullRate        float64 // per-cell null probability (currency/master)
	TypoRate        float64 // stray wrong value at the newest version
	FreeWrongRate   float64 // per-tuple wrong-value probability, free attrs
	PairExtraRate   float64 // probability a second tuple also fills a primary
	// MasterDirty is the probability that a master-covered column of an
	// entity is noisy (needs master data to resolve); clean columns
	// agree on the truth and resolve by the equality axiom alone.
	MasterDirty float64
	// DegradedRate is the fraction of entities with degraded quality:
	// no master row, several-fold null rate and heavy disagreement on
	// the free attributes. Degraded entities are the ones whose targets
	// stay incomplete and deduce few attributes — the bimodal profile
	// the paper's Exp-1 numbers imply (66%% fully complete targets yet
	// only 73%% of attributes deduced overall).
	DegradedRate float64
	// RuleVariants pads each semantic rule into this many equivalent
	// variants, mirroring the paper's observation that per-attribute
	// rules share their LHS (3-4 ARs per attribute).
	RuleVariants int
	// FixedTuples, when positive, gives every entity exactly this many
	// tuples (used by the instance-size-bucket experiment of Fig 7(a)).
	FixedTuples int
	Seed        int64
}

// MedConfig mirrors the paper's Med dataset: ~30 attributes, 2.7K
// entities, ~10K tuples, master 2.4K×5, 105 ARs (90 form-1, 15 form-2).
func MedConfig() EntityConfig {
	return EntityConfig{
		Name:            "Med",
		NumEntities:     2700,
		AvgTuples:       4,
		MaxTuples:       83,
		MasterAttrs:     5,
		CurrencyAttrs:   12,
		PairAttrs:       4,
		FreeAttrs:       4,
		MasterCover:     0.95,
		KeyedOnCurrency: 2,
		NullRate:        0.01,
		TypoRate:        0.003,
		FreeWrongRate:   0.008,
		PairExtraRate:   0.15,
		MasterDirty:     0.35,
		DegradedRate:    0.30,
		RuleVariants:    3,
		Seed:            1,
	}
}

// CFPConfig mirrors the paper's CFP dataset: 22 attributes, 100
// entities, ~500 tuples, master 55×17, 43 ARs (28 form-1, 15 form-2).
func CFPConfig() EntityConfig {
	return EntityConfig{
		Name:            "CFP",
		NumEntities:     100,
		AvgTuples:       5,
		MinTuples:       2,
		MaxTuples:       15,
		MasterAttrs:     5,
		CurrencyAttrs:   8,
		PairAttrs:       2,
		FreeAttrs:       4,
		MasterCover:     0.75,
		KeyedOnCurrency: 2,
		NullRate:        0.01,
		TypoRate:        0.003,
		FreeWrongRate:   0.008,
		PairExtraRate:   0.5,
		MasterDirty:     0.45,
		DegradedRate:    0.24,
		RuleVariants:    2,
		Seed:            2,
	}
}

// attrLayout computes the schema layout of a config.
type attrLayout struct {
	name     int
	version  int
	master   []int
	currency []int
	primary  []int
	depend   []int
	free     []int
	attrs    []string
}

func layout(cfg EntityConfig) attrLayout {
	var l attrLayout
	add := func(name string) int {
		l.attrs = append(l.attrs, name)
		return len(l.attrs) - 1
	}
	l.name = add("name")
	l.version = add("version")
	for i := 0; i < cfg.MasterAttrs; i++ {
		l.master = append(l.master, add(fmt.Sprintf("m%d", i)))
	}
	for i := 0; i < cfg.CurrencyAttrs; i++ {
		l.currency = append(l.currency, add(fmt.Sprintf("c%d", i)))
	}
	for i := 0; i < cfg.PairAttrs; i++ {
		l.primary = append(l.primary, add(fmt.Sprintf("p%d", i)))
		l.depend = append(l.depend, add(fmt.Sprintf("d%d", i)))
	}
	for i := 0; i < cfg.FreeAttrs; i++ {
		l.free = append(l.free, add(fmt.Sprintf("f%d", i)))
	}
	return l
}

// Generate builds the dataset of an EntityConfig.
func Generate(cfg EntityConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	l := layout(cfg)
	schema := model.MustSchema(cfg.Name, l.attrs...)

	// Master schema: a key column per lookup key plus the master attrs.
	masterAttrs := []string{"name", "c0"}
	for i := range l.master {
		masterAttrs = append(masterAttrs, fmt.Sprintf("m%d", i))
	}
	masterSchema := model.MustSchema(cfg.Name+"_master", masterAttrs...)
	master := model.NewMasterRelation(masterSchema)

	ds := &Dataset{Name: cfg.Name, Schema: schema, Master: master}

	for e := 0; e < cfg.NumEntities; e++ {
		id := fmt.Sprintf("%s-e%04d", cfg.Name, e)
		truth := model.NewTuple(schema)
		truth.SetAt(l.name, model.S(id))

		// Degraded entities: sparse, noisy and absent from master data.
		degraded := rng.Float64() < cfg.DegradedRate
		nullRate, freeWrong, masterDirty := cfg.NullRate, cfg.FreeWrongRate, cfg.MasterDirty
		if degraded {
			nullRate *= 3
			freeWrong = 0.35
			masterDirty = 0.9
		}

		n := 1 + geometric(rng, cfg.AvgTuples-1)
		if cfg.FixedTuples > 0 {
			n = cfg.FixedTuples
		}
		if n == 1 && rng.Float64() < 0.7 {
			// Singletons carry almost no signal; keep them rare (the
			// paper's instances average 4 tuples).
			n = 1 + geometric(rng, cfg.AvgTuples-1)
		}
		if n < cfg.MinTuples {
			n = cfg.MinTuples
		}
		if n > cfg.MaxTuples {
			n = cfg.MaxTuples
		}
		truth.SetAt(l.version, model.I(int64(n)))

		// True values.
		for _, a := range l.master {
			truth.SetAt(a, val(rng, schema.Attr(a), e, "true"))
		}
		for _, a := range l.currency {
			truth.SetAt(a, val(rng, schema.Attr(a), e, "true"))
		}
		for i := range l.primary {
			truth.SetAt(l.primary[i], val(rng, schema.Attr(l.primary[i]), e, "true"))
			truth.SetAt(l.depend[i], val(rng, schema.Attr(l.depend[i]), e, "true"))
		}
		for _, a := range l.free {
			truth.SetAt(a, val(rng, schema.Attr(a), e, "true"))
		}

		// Change points: currency attr values switch from a stale value
		// to the true one at a random version.
		change := make([]int, len(l.currency))
		stale := make([]model.Value, len(l.currency))
		for i := range l.currency {
			// Values usually change early in an entity's history, so the
			// majority of tuples already carry the current value (this is
			// also what makes plain voting a non-trivial baseline).
			change[i] = 1 + rng.Intn(1+n/3)
			stale[i] = val(rng, schema.Attr(l.currency[i]), e, "old")
		}

		// Which master columns are dirty for this entity, and a small
		// noise pool so dirty cells occasionally agree.
		dirty := make([]bool, len(l.master))
		noisePool := make([][2]model.Value, len(l.master))
		for i := range l.master {
			dirty[i] = rng.Float64() < masterDirty
			a := schema.Attr(l.master[i])
			noisePool[i] = [2]model.Value{val(rng, a, e, "n0x"), val(rng, a, e, "n1x")}
		}

		// Which tuple carries the primaries (MN-like: usually just one).
		primOwner := rng.Intn(n)

		ie := model.NewEntityInstance(schema)
		for v := 1; v <= n; v++ {
			t := model.NewTuple(schema)
			t.SetAt(l.name, model.S(id))
			t.SetAt(l.version, model.I(int64(v)))
			for i, a := range l.currency {
				switch {
				case rng.Float64() < nullRate:
					// leave null
				case v == n && rng.Float64() < cfg.TypoRate:
					t.SetAt(a, val(rng, schema.Attr(a), e, fmt.Sprintf("typo%d", v)))
				case v >= change[i]:
					t.SetAt(a, truth.At(a))
				default:
					t.SetAt(a, stale[i])
				}
			}
			for i, a := range l.master {
				// Clean master columns agree on the truth; dirty ones mix
				// the truth with values from a small noise pool and need
				// the master data (or luck) to resolve.
				r := rng.Float64()
				switch {
				case r < nullRate:
					// null
				case !dirty[i] || r < nullRate+0.35:
					t.SetAt(a, truth.At(a))
				default:
					t.SetAt(a, noisePool[i][rng.Intn(2)])
				}
			}
			for i := range l.primary {
				if v-1 == primOwner || rng.Float64() < cfg.PairExtraRate {
					t.SetAt(l.primary[i], truth.At(l.primary[i]))
					t.SetAt(l.depend[i], truth.At(l.depend[i]))
				} else {
					// Tuples without the primary carry a stale dependent.
					if rng.Float64() > nullRate {
						t.SetAt(l.depend[i], val(rng, schema.Attr(l.depend[i]), e, "old"))
					}
				}
			}
			for _, a := range l.free {
				if rng.Float64() < freeWrong {
					t.SetAt(a, val(rng, schema.Attr(a), e, fmt.Sprintf("alt%d", rng.Intn(2))))
				} else {
					t.SetAt(a, truth.At(a))
				}
			}
			ie.MustAdd(t)
		}

		// The master attributes must not be resolvable by λ to a value
		// that contradicts the master data, or the specification would
		// not be Church-Rosser (the chase's λ value and the form-(2)
		// value would clash). λ resolves an attribute exactly when all
		// non-null cells agree, so whenever they agree on a non-true
		// value, promote one cell to the truth (two distinct values:
		// undecided, master settles it).
		for _, a := range l.master {
			var carriers []int
			distinct := map[string]bool{}
			for i := 0; i < ie.Size(); i++ {
				if v := ie.Value(i, a); !v.IsNull() {
					carriers = append(carriers, i)
					distinct[v.Key()] = true
				}
			}
			if len(distinct) == 1 && !ie.Value(carriers[0], a).Equal(truth.At(a)) {
				ie.Tuple(carriers[0]).SetAt(a, truth.At(a))
			}
		}

		// Master row (covered entities only); master data is correct.
		// Degraded entities are the ones master data has never seen.
		if !degraded && rng.Float64() < cfg.MasterCover {
			row := model.NewTuple(masterSchema)
			row.Set("name", model.S(id))
			row.Set("c0", truth.At(l.currency[0]))
			for i, a := range l.master {
				row.Set(fmt.Sprintf("m%d", i), truth.At(a))
			}
			master.MustAdd(row)
		}

		ds.Entities = append(ds.Entities, Entity{ID: id, Instance: ie, Truth: truth})
	}

	ds.Rules = entityRules(cfg, l, schema, masterSchema)
	return ds
}

// entityRules builds the AR set for an EntityConfig dataset.
func entityRules(cfg EntityConfig, l attrLayout, schema, masterSchema *model.Schema) *rule.Set {
	variants := cfg.RuleVariants
	if variants < 1 {
		variants = 1
	}
	var rules []rule.Rule
	version := schema.Attr(l.version)

	// ϕ1-style: higher version is more current.
	rules = append(rules, &rule.Form1{
		RuleName: "cur-version",
		LHS:      []rule.Pred{rule.Cmp(rule.T1(version), rule.Lt, rule.T2(version))},
		RHS:      version,
	})

	// ϕ2-style: version order propagates to each currency attribute,
	// guarded against nulls (a null in the newer tuple must not beat ϕ7).
	for _, a := range l.currency {
		attr := schema.Attr(a)
		for v := 0; v < variants; v++ {
			var lhs []rule.Pred
			switch v {
			case 0:
				lhs = []rule.Pred{
					rule.Prec(version),
					rule.Cmp(rule.T2(attr), rule.Ne, rule.C(model.NullValue())),
				}
			case 1: // same consequence via the raw version comparison
				lhs = []rule.Pred{
					rule.Cmp(rule.T1(version), rule.Lt, rule.T2(version)),
					rule.Cmp(rule.T2(attr), rule.Ne, rule.C(model.NullValue())),
				}
			default: // explicit null-lowest instance
				lhs = []rule.Pred{
					rule.Cmp(rule.T1(attr), rule.Eq, rule.C(model.NullValue())),
					rule.Cmp(rule.T2(attr), rule.Ne, rule.C(model.NullValue())),
				}
			}
			rules = append(rules, &rule.Form1{
				RuleName: fmt.Sprintf("cur-%s-%d", attr, v),
				LHS:      lhs,
				RHS:      attr,
			})
		}
	}

	// ϕ5/ϕ10-style: a more accurate primary implies a more accurate
	// dependent (primary and dependent "come together").
	for i := range l.primary {
		p, d := schema.Attr(l.primary[i]), schema.Attr(l.depend[i])
		for v := 0; v < variants; v++ {
			var lhs []rule.Pred
			if v == 0 {
				lhs = []rule.Pred{
					rule.Prec(p),
					rule.Cmp(rule.T2(d), rule.Ne, rule.C(model.NullValue())),
				}
			} else {
				lhs = []rule.Pred{
					rule.Cmp(rule.T1(p), rule.Eq, rule.C(model.NullValue())),
					rule.Cmp(rule.T2(p), rule.Ne, rule.C(model.NullValue())),
					rule.Cmp(rule.T2(d), rule.Ne, rule.C(model.NullValue())),
				}
			}
			rules = append(rules, &rule.Form1{
				RuleName: fmt.Sprintf("pair-%s-%d", d, v),
				LHS:      lhs,
				RHS:      d,
			})
		}
	}

	// Form (2): master lookups. The first KeyedOnCurrency attributes also
	// require the deduced c0 (so they need form-(1) reasoning first —
	// the interaction measured in Fig. 6(e)).
	for i := range l.master {
		attr := schema.Attr(l.master[i])
		conds := []rule.MasterCond{rule.CondMaster("name", "name")}
		if i < cfg.KeyedOnCurrency {
			conds = append(conds, rule.CondMaster(schema.Attr(l.currency[0]), "c0"))
		}
		for v := 0; v < 3; v++ {
			rules = append(rules, &rule.Form2{
				RuleName:   fmt.Sprintf("master-%s-%d", attr, v),
				Conds:      conds,
				TargetAttr: attr,
				MasterAttr: fmt.Sprintf("m%d", i),
			})
		}
	}

	return rule.MustSet(schema, masterSchema, rules...)
}

// geometric draws from a geometric-ish distribution with the given mean.
func geometric(rng *rand.Rand, mean int) int {
	if mean <= 0 {
		return 0
	}
	p := 1.0 / float64(mean+1)
	n := 0
	for rng.Float64() > p && n < 1000 {
		n++
	}
	return n
}

// val makes a deterministic-looking string value for (attr, entity, tag).
// The random prefix keeps the lexicographic order of values uncorrelated
// with their truthfulness, so that value comparisons carry no accidental
// accuracy signal (rule mining would otherwise pick it up).
func val(rng *rand.Rand, attr string, entity int, tag string) model.Value {
	return model.S(fmt.Sprintf("%03d-%s.%d.%s", rng.Intn(1000), attr, entity, tag))
}
