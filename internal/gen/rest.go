package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/rule"
	"repro/internal/truth"
)

// RestConfig parameterises the restaurant dataset of Exp-5 (originally
// 8 weekly snapshots of Manhattan restaurants from 12 web sources, with
// copying between sources; only the Boolean closed? attribute is to be
// discovered).
type RestConfig struct {
	Name        string
	Restaurants int
	ClosedRate  float64 // fraction of restaurants truly closed
	Seed        int64

	// Source population. Sources[0] is the aggressive low-quality source
	// that Copiers replicate; Dated sources publish an as-of date and are
	// reliable, enabling the accuracy rules the chase exploits.
	Independents int // reliable independent sources
	Copiers      int // sources copying Sources[0]
	Dated        int // dated, accurate sources (subset of the reliable ones)

	AggressiveFalseClosed float64 // source 0: P(claim closed | open)
	AggressiveFalseOpen   float64 // source 0: P(claim open | closed)
	IndepFalseClosed      float64
	IndepFalseOpen        float64

	CliqueCover float64 // coverage of source 0 and its copiers
	IndepCover  float64 // coverage of each independent source
	DatedCover  float64 // coverage of each dated source
}

// RestDefault mirrors the paper's setting at test-friendly scale
// (scale up Restaurants for benchmarking).
func RestDefault() RestConfig {
	return RestConfig{
		Name:                  "Rest",
		Restaurants:           1000,
		ClosedRate:            0.30,
		Seed:                  3,
		Independents:          7,
		Copiers:               3,
		Dated:                 2,
		AggressiveFalseClosed: 0.60,
		AggressiveFalseOpen:   0.15,
		IndepFalseClosed:      0.12,
		IndepFalseOpen:        0.15,
		CliqueCover:           0.90,
		IndepCover:            0.55,
		DatedCover:            0.35,
	}
}

// RestDataset extends Dataset with the source-attributed claims that
// copyCEF consumes and the Boolean ground truth.
type RestDataset struct {
	Dataset
	// Claims holds one closed?-claim per (source, covered restaurant).
	Claims []truth.Claim
	// Closed maps entity ID to the true closed? value.
	Closed map[string]bool
	// Sources lists all source names.
	Sources []string
}

// GenerateRest builds the restaurant dataset. Schema:
//
//	src | asOf | closed | phone
//
// Each restaurant's entity instance holds the latest snapshot of every
// covering source. Dated sources fill asOf (distinct integers) and are
// accurate on closed?; the accuracy rules order dated tuples by asOf and
// rank undated tuples below dated ones, so the chase resolves closed?
// exactly where a dated source reports — the ARs-beyond-currency effect
// of Exp-5. A currency-only rule subset (for DeduceOrder) is the same
// set minus the dated-beats-undated trust rules; see RestCurrencyRules.
func GenerateRest(cfg RestConfig) *RestDataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := model.MustSchema(cfg.Name, "src", "asOf", "closed", "phone")

	var sources []string
	type src struct {
		name        string
		falseClosed float64
		falseOpen   float64
		cover       float64
		copies      string // name of the copied source, if any
		dated       bool
	}
	var srcs []src
	srcs = append(srcs, src{
		name:        "s0",
		falseClosed: cfg.AggressiveFalseClosed,
		falseOpen:   cfg.AggressiveFalseOpen,
		cover:       cfg.CliqueCover,
	})
	for i := 0; i < cfg.Copiers; i++ {
		srcs = append(srcs, src{
			name:   fmt.Sprintf("copy%d", i),
			cover:  cfg.CliqueCover,
			copies: "s0",
		})
	}
	for i := 0; i < cfg.Independents; i++ {
		srcs = append(srcs, src{
			name:        fmt.Sprintf("ind%d", i),
			falseClosed: cfg.IndepFalseClosed * (0.7 + 0.6*rng.Float64()),
			falseOpen:   cfg.IndepFalseOpen * (0.7 + 0.6*rng.Float64()),
			cover:       cfg.IndepCover,
		})
	}
	for i := 0; i < cfg.Dated; i++ {
		srcs = append(srcs, src{
			name:  fmt.Sprintf("dated%d", i),
			cover: cfg.DatedCover,
			dated: true,
		})
	}
	for _, s := range srcs {
		sources = append(sources, s.name)
	}

	ds := &RestDataset{
		Dataset: Dataset{Name: cfg.Name, Schema: schema},
		Closed:  map[string]bool{},
		Sources: sources,
	}

	for r := 0; r < cfg.Restaurants; r++ {
		id := fmt.Sprintf("rest-%04d", r)
		closed := rng.Float64() < cfg.ClosedRate
		ds.Closed[id] = closed
		phone := fmt.Sprintf("212-%07d", rng.Intn(10000000))

		truthT := model.NewTuple(schema)
		truthT.Set("src", model.S("truth"))
		truthT.Set("closed", model.B(closed))
		truthT.Set("phone", model.S(phone))

		ie := model.NewEntityInstance(schema)
		s0Claim := closed // source 0's claim, replicated by copiers
		if closed {
			if rng.Float64() < cfg.AggressiveFalseOpen {
				s0Claim = false
			}
		} else if rng.Float64() < cfg.AggressiveFalseClosed {
			s0Claim = true
		}
		asOfSeq := int64(1)
		for _, s := range srcs {
			if rng.Float64() >= s.cover {
				continue
			}
			claim := closed
			switch {
			case s.copies != "":
				claim = s0Claim // copiers replicate wholesale
			case s.dated:
				// Dated sources are accurate on closed?.
			default:
				if closed {
					if rng.Float64() < s.falseOpen {
						claim = false
					}
				} else if rng.Float64() < s.falseClosed {
					claim = true
				}
			}
			t := model.NewTuple(schema)
			t.Set("src", model.S(s.name))
			t.Set("closed", model.B(claim))
			if s.dated {
				t.Set("asOf", model.I(asOfSeq))
				asOfSeq++
			}
			if s.dated {
				// Dated sources are curated: their phone is correct (or
				// missing). This also keeps the currency chain
				// value-consistent, as the real curated feeds were.
				if rng.Float64() < 0.85 {
					t.Set("phone", model.S(phone))
				}
			} else if rng.Float64() < 0.8 {
				if rng.Float64() < 0.15 {
					t.Set("phone", model.S(fmt.Sprintf("212-%07d", rng.Intn(10000000))))
				} else {
					t.Set("phone", model.S(phone))
				}
			}
			ie.MustAdd(t)
			ds.Claims = append(ds.Claims, truth.Claim{
				Source: s.name, Entity: id, Attr: "closed", Val: model.B(claim),
			})
		}
		if ie.Size() == 0 {
			// Guarantee at least one observation.
			t := model.NewTuple(schema)
			t.Set("src", model.S("ind0"))
			t.Set("closed", model.B(closed))
			ie.MustAdd(t)
			ds.Claims = append(ds.Claims, truth.Claim{
				Source: "ind0", Entity: id, Attr: "closed", Val: model.B(closed),
			})
		}
		ds.Entities = append(ds.Entities, Entity{ID: id, Instance: ie, Truth: truthT})
	}

	ds.Rules = restRules(schema, true)
	return ds
}

// RestCurrencyRules returns the rule subset available to DeduceOrder:
// genuine currency constraints only (asOf comparisons), without the
// dated-beats-undated source-trust rules — those express relative
// accuracy, which is precisely what [14] cannot state.
func RestCurrencyRules(d *RestDataset) *rule.Set {
	return restRules(d.Schema, false)
}

func restRules(schema *model.Schema, withTrust bool) *rule.Set {
	var rules []rule.Rule
	// A fresher as-of date is by definition more current.
	rules = append(rules, &rule.Form1{
		RuleName: "cur-asOf",
		LHS:      []rule.Pred{rule.Cmp(rule.T1("asOf"), rule.Lt, rule.T2("asOf"))},
		RHS:      "asOf",
	})
	for _, attr := range []string{"closed", "phone"} {
		// Currency: a fresher dated snapshot is more accurate.
		rules = append(rules, &rule.Form1{
			RuleName: "cur-" + attr,
			LHS: []rule.Pred{
				rule.Cmp(rule.T1("asOf"), rule.Lt, rule.T2("asOf")),
				rule.Cmp(rule.T2(attr), rule.Ne, rule.C(model.NullValue())),
			},
			RHS: attr,
		})
		if withTrust {
			// Relative accuracy: dated sources beat undated ones.
			rules = append(rules, &rule.Form1{
				RuleName: "trust-" + attr,
				LHS: []rule.Pred{
					rule.Cmp(rule.T1("asOf"), rule.Eq, rule.C(model.NullValue())),
					rule.Cmp(rule.T2("asOf"), rule.Ne, rule.C(model.NullValue())),
					rule.Cmp(rule.T2(attr), rule.Ne, rule.C(model.NullValue())),
				},
				RHS: attr,
			})
		}
	}
	return rule.MustSet(schema, nil, rules...)
}
