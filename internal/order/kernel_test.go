package order

import (
	"math/bits"
	"math/rand"
	"testing"
)

// kernelSizes crosses the 64-bit word boundaries the word-parallel
// kernels special-case implicitly: one word exactly, one word plus one
// bit, two words, and the small degenerate sizes.
var kernelSizes = []int{0, 1, 2, 3, 7, 63, 64, 65, 127, 128, 129}

// randomRelation drives r (and its mirror, when non-nil) through a
// deterministic random op sequence using only the naive reference
// mutators, so the resulting matrix is trusted ground truth for the
// read-kernel comparisons.
func randomRelation(rng *rand.Rand, n int, density float64) *Relation {
	r := New(n)
	if n == 0 {
		return r
	}
	pairs := int(float64(n*n) * density / float64(n))
	if pairs < 1 {
		pairs = 1
	}
	for k := 0; k < pairs; k++ {
		r.refAdd(rng.Intn(n), rng.Intn(n))
	}
	return r
}

func sameRows(a, b *Relation) bool {
	if a.n != b.n || a.w != b.w || len(a.rows) != len(b.rows) {
		return false
	}
	for i, w := range a.rows {
		if b.rows[i] != w {
			return false
		}
	}
	return true
}

// TestKernelMaxDifferential pits the word-parallel Max against the
// probe-based reference across word-boundary sizes and densities,
// including the all-pairs clique (a maximum exists) and near-empty
// relations (none does).
func TestKernelMaxDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range kernelSizes {
		for _, density := range []float64{0, 0.1, 0.5, 1.5, 8} {
			for trial := 0; trial < 8; trial++ {
				r := randomRelation(rng, n, density)
				if got, want := r.Max(), r.refMax(); got != want {
					t.Fatalf("n=%d density=%v: Max=%d refMax=%d", n, density, got, want)
				}
			}
		}
		// Full clique: every index is maximal; both must pick index 0.
		if n > 0 {
			r := New(n)
			members := make([]int, n)
			for i := range members {
				members[i] = i
			}
			r.SetClique(members)
			if got, want := r.Max(), r.refMax(); got != want || got != 0 {
				t.Fatalf("n=%d clique: Max=%d refMax=%d", n, got, want)
			}
		}
	}
}

// TestKernelColumnCountsDifferential checks the bit-sliced counter
// against the per-bit reference, including the Into variant with an
// oversized reused buffer.
func TestKernelColumnCountsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	buf := make([]int, 200) // shared across all sizes; oversize on purpose
	for _, n := range kernelSizes {
		for trial := 0; trial < 8; trial++ {
			r := randomRelation(rng, n, 0.8)
			want := r.refColumnCounts()
			got := r.ColumnCounts()
			into := r.ColumnCountsInto(buf)
			if len(got) != n || len(into) != n {
				t.Fatalf("n=%d: lengths %d / %d", n, len(got), len(into))
			}
			for j := 0; j < n; j++ {
				if got[j] != want[j] || into[j] != want[j] {
					t.Fatalf("n=%d col %d: ColumnCounts=%d Into=%d ref=%d",
						n, j, got[j], into[j], want[j])
				}
			}
		}
	}
}

// TestKernelLenAndTransitiveDifferential checks the popcount Len and the
// word-subset TransitiveOK against their references, including a
// deliberately broken closure.
func TestKernelLenAndTransitiveDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range kernelSizes {
		for trial := 0; trial < 8; trial++ {
			r := randomRelation(rng, n, 1.2)
			if got, want := r.Len(), r.refLen(); got != want {
				t.Fatalf("n=%d: Len=%d refLen=%d", n, got, want)
			}
			if got, want := r.TransitiveOK(), r.refTransitiveOK(); got != want || !got {
				t.Fatalf("n=%d: TransitiveOK=%v ref=%v (closed relation)", n, got, want)
			}
		}
		if n < 3 {
			continue // can't break closure without a 3-chain
		}
		// Break the closure by hand: derive 0 ⪯ 1 ⪯ 2 then clear 0 ⪯ 2.
		r := New(n)
		r.refAdd(0, 1)
		r.refAdd(1, 2)
		r.rows[0*r.w+(2>>6)] &^= 1 << 2
		if r.TransitiveOK() || r.refTransitiveOK() {
			t.Fatalf("n=%d: broken closure not detected (TransitiveOK=%v ref=%v)",
				n, r.TransitiveOK(), r.refTransitiveOK())
		}
	}
}

// TestKernelAddDifferential drives Add and refAdd with the same pair
// sequence on separate relations and demands identical returned pairs
// (same order) and identical matrices after every step.
func TestKernelAddDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range kernelSizes {
		if n == 0 {
			continue
		}
		fast, ref := New(n), New(n)
		for step := 0; step < 4*n+8; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			got := fast.Add(i, j)
			want := ref.refAdd(i, j)
			if len(got) != len(want) {
				t.Fatalf("n=%d Add(%d,%d): %d pairs, ref %d", n, i, j, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("n=%d Add(%d,%d) pair %d: %v vs ref %v", n, i, j, k, got[k], want[k])
				}
			}
			if !sameRows(fast, ref) {
				t.Fatalf("n=%d Add(%d,%d): matrices diverged", n, i, j)
			}
		}
		if !fast.TransitiveOK() {
			t.Fatalf("n=%d: closure lost after Add sequence", n)
		}
	}
}

// TestKernelAddAllToDifferential drives AddAllTo32 and refAddAllTo32
// with the same groups on separate relations, comparing the visited
// pair sequences and final matrices.
func TestKernelAddAllToDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range kernelSizes {
		if n == 0 {
			continue
		}
		fast, ref := randomRelation(rng, n, 0.5), New(n)
		ref.CopyFrom(fast)
		for step := 0; step < 6; step++ {
			group := make([]int32, 1+rng.Intn(3))
			for k := range group {
				group[k] = int32(rng.Intn(n))
			}
			var got, want []Pair
			fast.AddAllTo32(group, func(f, to int) { got = append(got, Pair{f, to}) })
			ref.refAddAllTo32(group, func(f, to int) { want = append(want, Pair{f, to}) })
			if len(got) != len(want) {
				t.Fatalf("n=%d group %v: %d pairs, ref %d", n, group, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("n=%d group %v pair %d: %v vs ref %v", n, group, k, got[k], want[k])
				}
			}
			if !sameRows(fast, ref) {
				t.Fatalf("n=%d group %v: matrices diverged", n, group)
			}
		}
	}
}

// TestKernelAddDiffs checks AddDiffs' contract directly: the diffs
// expand to exactly refAdd's pair sequence, and the matrix is always
// fully updated before the caller sees them — the engine relies on
// that when a conflict stops it consuming the diffs mid-slice.
func TestKernelAddDiffs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{5, 65, 129} {
		fast, ref := randomRelation(rng, n, 0.4), New(n)
		ref.CopyFrom(fast)
		for step := 0; step < 3*n; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			var got []Pair
			for _, d := range fast.AddDiffs(i, j) {
				if d.Bits == 0 {
					t.Fatalf("n=%d AddDiffs(%d,%d): empty word diff", n, i, j)
				}
				base := int(d.Word) << 6
				for bs := d.Bits; bs != 0; bs &= bs - 1 {
					got = append(got, Pair{From: int(d.Row), To: base + bits.TrailingZeros64(bs)})
				}
			}
			want := ref.refAdd(i, j)
			if len(got) != len(want) {
				t.Fatalf("n=%d AddDiffs(%d,%d): %d pairs, ref %d", n, i, j, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("n=%d AddDiffs(%d,%d) pair %d: %v vs %v", n, i, j, k, got[k], want[k])
				}
			}
			if !sameRows(fast, ref) {
				t.Fatalf("n=%d AddDiffs(%d,%d): matrices diverged", n, i, j)
			}
		}
	}
}

// TestKernelDirtyTracking checks that the word-parallel mutators mark
// exactly the rows they touch, so ResetFrom restores a tracked clone
// bit-for-bit.
func TestKernelDirtyTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 64, 65, 129} {
		base := randomRelation(rng, n, 0.3)
		tr := base.CloneTracked()
		for step := 0; step < 2*n; step++ {
			switch rng.Intn(3) {
			case 0:
				tr.Add(rng.Intn(n), rng.Intn(n))
			case 1:
				group := []int32{int32(rng.Intn(n))}
				tr.AddAllTo32(group, func(int, int) {})
			case 2:
				tr.SetClique([]int{rng.Intn(n), rng.Intn(n)})
			}
		}
		tr.ResetFrom(base)
		if !sameRows(tr, base) {
			t.Fatalf("n=%d: ResetFrom did not restore the base matrix", n)
		}
		if d := tr.DirtyRows(); d != 0 {
			t.Fatalf("n=%d: %d rows still dirty after ResetFrom", n, d)
		}
	}
}

// FuzzRelationOps feeds a byte-string op program to a tracked relation
// and its naive mirror: every mutation runs through both the word-
// parallel kernel and the reference, and after each op the matrices,
// Max, ColumnCounts and closure must agree; at the end the tracked
// relation must restore its base exactly.
func FuzzRelationOps(f *testing.F) {
	f.Add([]byte{65, 0, 1, 2, 3, 1, 4, 5, 2, 6, 7, 8})
	f.Add([]byte{129, 0, 10, 20, 3, 200, 100, 50})
	f.Add([]byte{64, 2, 1, 2, 3})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) < 2 {
			return
		}
		n := int(program[0])%130 + 1
		base := New(n)
		fast := base.CloneTracked()
		ref := New(n)
		program = program[1:]
		for len(program) >= 3 {
			op, a, b := program[0]%3, int(program[1])%n, int(program[2])%n
			program = program[3:]
			switch op {
			case 0: // single pair
				got := fast.Add(a, b)
				want := ref.refAdd(a, b)
				if len(got) != len(want) {
					t.Fatalf("Add(%d,%d): %d pairs vs ref %d", a, b, len(got), len(want))
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("Add(%d,%d) pair %d: %v vs %v", a, b, k, got[k], want[k])
					}
				}
			case 1: // bulk ϕ8 group
				group := []int32{int32(a), int32(b)}
				var got, want []Pair
				fast.AddAllTo32(group, func(x, y int) { got = append(got, Pair{x, y}) })
				ref.refAddAllTo32(group, func(x, y int) { want = append(want, Pair{x, y}) })
				if len(got) != len(want) {
					t.Fatalf("AddAllTo(%v): %d pairs vs ref %d", group, len(got), len(want))
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("AddAllTo(%v) pair %d: %v vs %v", group, k, got[k], want[k])
					}
				}
			case 2: // clique seed (closure-safe only on matching state; use refAdd path)
				got := fast.Add(a, a)
				want := ref.refAdd(a, a)
				if len(got) != len(want) {
					t.Fatalf("Add(%d,%d) reflexive: %d pairs vs ref %d", a, a, len(got), len(want))
				}
			}
			if !sameRows(fast, ref) {
				t.Fatal("matrices diverged")
			}
			if fast.Max() != ref.refMax() {
				t.Fatalf("Max=%d refMax=%d", fast.Max(), ref.refMax())
			}
			fc, rc := fast.ColumnCounts(), ref.refColumnCounts()
			for j := range fc {
				if fc[j] != rc[j] {
					t.Fatalf("col %d: ColumnCounts=%d ref=%d", j, fc[j], rc[j])
				}
			}
			if fast.Len() != ref.refLen() {
				t.Fatalf("Len=%d refLen=%d", fast.Len(), ref.refLen())
			}
			if !fast.TransitiveOK() || !ref.refTransitiveOK() {
				t.Fatal("closure lost")
			}
		}
		fast.ResetFrom(base)
		if !sameRows(fast, base) {
			t.Fatal("ResetFrom did not restore the base matrix")
		}
	})
}
