// Package order implements the accuracy orders of Section 2 of the
// paper: for each attribute Ai, a binary relation ⪯Ai over the tuples of
// an entity instance, kept transitively closed as the chase extends it
// one pair at a time.
//
// The relation stored here is the weak order ⪯Ai ("t1[Ai] = t2[Ai] or
// t1 ≺Ai t2"). The strict order ≺Ai is derived: t1 ≺Ai t2 iff
// t1 ⪯Ai t2 and t1[Ai] ≠ t2[Ai]. A relation becomes *conflicted* — and
// the chase step that caused it invalid — when t1 ⪯ t2 and t2 ⪯ t1 both
// hold for tuples with different Ai values.
//
// Relations are dense bitset matrices: Ie is small in practice (the
// paper reports instances of 1–90 tuples on real data and up to 1500 on
// synthetic data), and bitset rows make transitive-closure maintenance,
// bulk insertion and cloning cheap.
//
// # Kernels
//
// The hot kernels operate on whole 64-bit words, not single bits: Max
// is an AND-accumulation over rows, ColumnCounts a bit-sliced vertical
// addition, Len a popcount sweep, TransitiveOK a word-subset check per
// derived pair, and the closure-restoring insertions (AddDiffs,
// AddAllToWords) hand newly derived pairs back as per-row word masks so
// callers — the chase engine — consume them word-at-a-time. Every
// word-parallel kernel is bit-for-bit equivalent to the naive bit-loop
// reference retained in reference.go; kernel_test.go enforces the
// equivalence differentially.
package order

import "math/bits"

// Pair is an ordered pair (From ⪯ To) of tuple indices.
type Pair struct{ From, To int }

// Relation is the weak accuracy order ⪯ on one attribute over tuples
// 0..n-1 of an entity instance. It maintains its own transitive closure
// incrementally. Create one with New.
type Relation struct {
	n    int
	w    int      // 64-bit words per row
	rows []uint64 // n rows of w words; bit j of row i means i ⪯ j
	// dirty, when non-nil, is a bitset over rows recording which rows
	// have been written since the last ResetFrom. It lets a relation that
	// started as a snapshot of a base relation restore the base state by
	// rewriting only the rows it diverged on — the snapshot-restore
	// scheme behind the chase engine pool.
	dirty []uint64
	// scratch is the reusable one-row mask buffer of the insertion
	// kernels; idx32 backs the []int → []int32 widening of the wrapper
	// methods; pairBuf backs Add's result slice and diffBuf AddDiffs'.
	// Together they make the mutation hot path allocation-free on a
	// long-lived relation.
	scratch []uint64
	idx32   []int32
	mwBuf   []int32
	pairBuf []Pair
	diffBuf []WordDiff
}

// WordDiff is one word of newly derived pairs: for each set bit b of
// Bits, the pair Row ⪯ (Word<<6)+b was just derived. The insertion
// kernels hand derivations back in this shape so the chase engine can
// consume them word-at-a-time instead of pair-at-a-time.
type WordDiff struct {
	Row  int32
	Word int32
	Bits uint64
}

// mask returns the scratch buffer, zeroed and sized to one row.
func (r *Relation) mask() []uint64 {
	if cap(r.scratch) < r.w {
		r.scratch = make([]uint64, r.w)
	} else {
		r.scratch = r.scratch[:r.w]
		for i := range r.scratch {
			r.scratch[i] = 0
		}
	}
	return r.scratch
}

// widen reuses the idx32 buffer to widen an index list for the 32-bit
// bulk kernels, which are the implementation (the chase hands value-ID
// groups over as []int32; the []int wrappers exist for callers and
// tests that index with int). The previous widening copy allocated on
// every SetClique/SetBelow/AddAllTo call; the buffer survives on the
// relation instead. off reserves a prefix so SetBelow can hold two
// lists in the one buffer.
func (r *Relation) widen(xs []int, off int) []int32 {
	need := off + len(xs)
	if cap(r.idx32) < need {
		grown := make([]int32, need)
		copy(grown, r.idx32)
		r.idx32 = grown
	}
	r.idx32 = r.idx32[:need]
	out := r.idx32[off:need]
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}

// New creates an empty relation over n tuples.
func New(n int) *Relation {
	w := (n + 63) / 64
	if w == 0 {
		w = 1
	}
	return &Relation{n: n, w: w, rows: make([]uint64, n*w)}
}

// Size returns the number of tuples the relation ranges over.
func (r *Relation) Size() int { return r.n }

// Has reports whether i ⪯ j has been derived.
func (r *Relation) Has(i, j int) bool {
	return r.rows[i*r.w+(j>>6)]&(1<<(uint(j)&63)) != 0
}

func (r *Relation) set(i, j int) {
	r.rows[i*r.w+(j>>6)] |= 1 << (uint(j) & 63)
	r.markRow(i)
}

// markRow records that row i diverged from the snapshot this relation
// was cloned from; a no-op on untracked relations.
func (r *Relation) markRow(i int) {
	if r.dirty != nil {
		r.dirty[i>>6] |= 1 << (uint(i) & 63)
	}
}

// row returns the slice of words forming row i.
func (r *Relation) row(i int) []uint64 { return r.rows[i*r.w : (i+1)*r.w] }

// Add inserts the pair i ⪯ j and restores transitive closure. It returns
// the pairs that are newly derived, including (i, j) itself; adding an
// already-derived pair returns nil. Reflexive pairs (i == j) are
// permitted and harmless. Conflict detection is the caller's concern:
// inspect the returned pairs with Mutual. The returned slice is backed
// by a per-relation buffer and only valid until the next Add.
func (r *Relation) Add(i, j int) []Pair {
	added := r.pairBuf[:0]
	for _, d := range r.AddDiffs(i, j) {
		base := int(d.Word) << 6
		for bs := d.Bits; bs != 0; bs &= bs - 1 {
			added = append(added, Pair{From: int(d.Row), To: base + bits.TrailingZeros64(bs)})
		}
	}
	r.pairBuf = added
	if len(added) == 0 {
		return nil
	}
	return added
}

// AddDiffs is the word-diff core of Add: it inserts i ⪯ j, fully
// restores transitive closure, and returns every newly derived pair as
// per-row word diffs — one WordDiff per (row, word) whose bits were
// newly set, in exactly the order Add reports pairs (row i first, then
// the predecessors of i ascending; words ascending within a row). An
// already-derived pair returns nil. The matrix is always fully updated
// before AddDiffs returns, so a caller that stops consuming the diffs
// early (the engine, on conflict) leaves the relation closed. The
// returned slice is backed by a per-relation buffer and only valid
// until the next insertion.
//
// The closure propagation iterates only the actual predecessors of i,
// gathered on demand into a bitset and walked via TrailingZeros64,
// instead of running the old p ≠ i, Has(p, i) probe over all n rows
// inside the propagation loop.
func (r *Relation) AddDiffs(i, j int) []WordDiff {
	if r.Has(i, j) {
		return nil
	}
	w := r.w
	// mask = successors of j, plus j itself.
	mask := r.mask()
	copy(mask, r.row(j))
	mask[j>>6] |= 1 << (uint(j) & 63)

	// Only words where mask has bits can yield diffs; list them once so
	// every row visit scans the live words, not all w. A sparse insert —
	// the delta path's staple — has one or two live words per row
	// against fifteen at n = 900.
	mw := r.mwBuf[:0]
	for wi, m := range mask {
		if m != 0 {
			mw = append(mw, int32(wi))
		}
	}
	r.mwBuf = mw

	diffs := r.diffBuf[:0]
	apply := func(p int) {
		row := r.row(p)
		marked := false
		for _, wi := range mw {
			diff := mask[wi] &^ row[wi]
			if diff == 0 {
				continue
			}
			row[wi] |= diff
			if !marked {
				r.markRow(p)
				marked = true
			}
			diffs = append(diffs, WordDiff{Row: int32(p), Word: wi, Bits: diff})
		}
	}
	apply(i)
	// Walk the predecessors of i — the set bits of column i — one
	// 64-row block at a time: gather the block's column bits into a
	// register, then propagate to the block's set rows immediately,
	// while those rows are still cache-resident from the gather. (A
	// full-column gather followed by one walk re-reads every
	// predecessor row cold; the blocked interleaving is worth ~40% on
	// the delta-chase insertion path.) Writes during the walk only OR
	// mask into rows that already carry bit i, so no row's column-i bit
	// changes under the gather and the blocked walk visits exactly the
	// predecessors an upfront gather would.
	iw, ib := i>>6, uint(i)&63
	for base := 0; base < r.n; base += 64 {
		hi := base + 64
		if hi > r.n {
			hi = r.n
		}
		var word uint64
		for p := base; p < hi; p++ {
			word |= (r.rows[p*w+iw] >> ib & 1) << (uint(p) & 63)
		}
		if base == i&^63 {
			word &^= 1 << (uint(i) & 63)
		}
		for ; word != 0; word &= word - 1 {
			apply(base + bits.TrailingZeros64(word))
		}
	}
	r.diffBuf = diffs
	return diffs
}

// AddAllTo bulk-inserts x ⪯ g for every tuple x and every g in group,
// restoring transitive closure, and calls visit for each newly derived
// pair. It implements the axiom ϕ8: once te[A] is known, every tuple is
// at most as accurate as the tuples carrying that value.
func (r *Relation) AddAllTo(group []int, visit func(from, to int)) {
	r.AddAllTo32(r.widen(group, 0), visit)
}

// AddAllTo32 is AddAllTo over an int32 group — the chase's ϕ8 firing
// path hands the value-ID equality class straight through.
func (r *Relation) AddAllTo32(group []int32, visit func(from, to int)) {
	r.AddAllToWords(group, func(p, wi int, diff uint64) bool {
		base := wi << 6
		for d := diff; d != 0; d &= d - 1 {
			visit(p, base+bits.TrailingZeros64(d))
		}
		return true
	})
}

// AddAllToWords is the word-mask form of AddAllTo32: it ORs the group's
// accumulated successor mask into every row and hands the newly derived
// pairs back as per-row word masks, rows then words ascending — the
// shape the chase engine consumes word-at-a-time. Returning false from
// visit stops further visits; the matrix is still fully updated.
func (r *Relation) AddAllToWords(group []int32, visit func(p, wi int, diff uint64) bool) {
	if len(group) == 0 {
		return
	}
	w := r.w
	mask := r.mask()
	for _, g := range group {
		row := r.row(int(g))
		for wi := 0; wi < w; wi++ {
			mask[wi] |= row[wi]
		}
		mask[g>>6] |= 1 << (uint(g) & 63)
	}
	r.addMaskWords(mask, visit)
}

// addMaskWords ORs mask into every row, handing each row's newly
// derived bits to visit word-at-a-time; the closure-restoring core
// shared by the AddAllTo variants.
func (r *Relation) addMaskWords(mask []uint64, visit func(p, wi int, diff uint64) bool) {
	w := r.w
	live := true
	for p := 0; p < r.n; p++ {
		row := r.row(p)
		marked := false
		for wi := 0; wi < w; wi++ {
			diff := mask[wi] &^ row[wi]
			if diff == 0 {
				continue
			}
			row[wi] |= diff
			if !marked {
				r.markRow(p)
				marked = true
			}
			if live && !visit(p, wi, diff) {
				live = false
			}
		}
	}
}

// SetClique marks every ordered pair within members (including reflexive
// pairs) as derived, without closure propagation. It is used to seed the
// initial relation with the value-equality cliques of axiom ϕ9; callers
// must only use it on an empty relation where cliques are closure-safe.
func (r *Relation) SetClique(members []int) {
	r.SetClique32(r.widen(members, 0))
}

// SetClique32 is SetClique over int32 member lists — the value-ID
// groups of the chase index their equality classes as []int32, and the
// seeding hot path should not copy them into []int first.
func (r *Relation) SetClique32(members []int32) {
	if len(members) == 0 {
		return
	}
	w := r.w
	mask := r.mask()
	for _, m := range members {
		mask[m>>6] |= 1 << (uint(m) & 63)
	}
	for _, m := range members {
		row := r.row(int(m))
		for wi := 0; wi < w; wi++ {
			row[wi] |= mask[wi]
		}
		r.markRow(int(m))
	}
}

// SetBelow marks lo ⪯ hi for every lo in los and hi in his, without
// closure propagation. It seeds the initial relation with axiom ϕ7
// (null values have the lowest accuracy); callers must ensure closure
// safety as for SetClique (nulls form a clique that reaches all
// non-null tuples, which have no outgoing edges yet).
func (r *Relation) SetBelow(los, his []int) {
	l := r.widen(los, 0)
	h := r.widen(his, len(los))
	r.SetBelow32(l, h)
}

// SetBelow32 is SetBelow over int32 index lists; see SetClique32.
func (r *Relation) SetBelow32(los, his []int32) {
	if len(los) == 0 || len(his) == 0 {
		return
	}
	w := r.w
	mask := r.mask()
	for _, h := range his {
		mask[h>>6] |= 1 << (uint(h) & 63)
	}
	for _, l := range los {
		row := r.row(int(l))
		for wi := 0; wi < w; wi++ {
			row[wi] |= mask[wi]
		}
		r.markRow(int(l))
	}
}

// Mutual reports whether both i ⪯ j and j ⪯ i hold.
func (r *Relation) Mutual(i, j int) bool {
	return r.Has(i, j) && r.Has(j, i)
}

// Max returns the index of a tuple t such that every other tuple t'
// satisfies t' ⪯ t — the λ function of the chase — or -1 when no such
// maximum exists. With n == 1 the single tuple is vacuously maximal.
// When several tuples dominate all others the smallest index is
// returned; in a conflict-free relation they carry the same value.
//
// The scan is a word-parallel column intersection: AND-accumulate every
// row (with the row's own diagonal bit supplied, since t ⪯ t is not
// required of a maximum), bail out as soon as the accumulator empties,
// and read the answer off the lowest surviving bit — O(n·w) word
// operations instead of O(n²) Has probes.
func (r *Relation) Max() int {
	n := r.n
	if n == 0 {
		return -1
	}
	if n == 1 {
		return 0
	}
	w := r.w
	var accArr [8]uint64
	var acc []uint64
	if w <= len(accArr) {
		acc = accArr[:w]
	} else {
		acc = make([]uint64, w)
	}
	for wi := range acc {
		acc[wi] = ^uint64(0)
	}
	for i := 0; i < n; i++ {
		row := r.rows[i*w : (i+1)*w]
		dw, db := i>>6, uint(i)&63
		diag := acc[dw] & (1 << db)
		var any uint64
		for wi := 0; wi < w; wi++ {
			a := acc[wi] & row[wi]
			acc[wi] = a
			any |= a
		}
		acc[dw] |= diag
		if any|diag == 0 {
			return -1
		}
	}
	for wi, word := range acc {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// ColumnCounts returns, for each tuple j, the number of tuples i ≠ j
// with i ⪯ j. A tuple j is maximal exactly when its count is n-1.
func (r *Relation) ColumnCounts() []int {
	return r.ColumnCountsInto(make([]int, r.n))
}

// ColumnCountsInto is ColumnCounts writing into a caller-supplied
// buffer of length ≥ n (a larger buffer is truncated to n), so a loop
// over many relations of one instance — the settled-target scan of the
// chase — reuses one allocation.
//
// Counting is word-parallel: every row word is added into a bit-sliced
// column accumulator (slice d holds bit d of all 64 running counts of
// that word column), a ripple-carry that costs O(n·w) amortised word
// operations, and the per-column totals are read back at the end —
// instead of iterating every one of the O(n²) set bits.
func (r *Relation) ColumnCountsInto(counts []int) []int {
	n, w := r.n, r.w
	counts = counts[:n]
	for j := range counts {
		counts[j] = 0
	}
	if n == 0 {
		return counts
	}
	depth := bits.Len(uint(n)) // column counts are ≤ n < 1<<depth
	slices := make([]uint64, depth*w)
	carry := make([]uint64, w)
	for i := 0; i < n; i++ {
		copy(carry, r.rows[i*w:(i+1)*w])
		for d := 0; d < depth; d++ {
			s := slices[d*w : (d+1)*w]
			var anyCarry uint64
			for wi := 0; wi < w; wi++ {
				c := carry[wi]
				if c == 0 {
					continue
				}
				t := s[wi] & c
				s[wi] ^= c
				carry[wi] = t
				anyCarry |= t
			}
			if anyCarry == 0 {
				break
			}
		}
	}
	for j := 0; j < n; j++ {
		jw, jb := j>>6, uint(j)&63
		c := 0
		for d := 0; d < depth; d++ {
			c += int(slices[d*w+jw]>>jb&1) << d
		}
		// The accumulator counted every row, including the diagonal;
		// ColumnCounts excludes i == j.
		c -= int(r.rows[j*w+jw] >> jb & 1)
		counts[j] = c
	}
	return counts
}

// VisitPairs calls visit for every derived pair i ⪯ j with i ≠ j.
func (r *Relation) VisitPairs(visit func(i, j int)) {
	for i := 0; i < r.n; i++ {
		row := r.row(i)
		for wi, word := range row {
			for word != 0 {
				b := word & -word
				j := wi<<6 + bits.TrailingZeros64(b)
				if j != i {
					visit(i, j)
				}
				word &= word - 1
			}
		}
	}
}

// Pairs returns every derived pair (i ⪯ j) with i ≠ j in row-major
// order. Intended for tests and debugging.
func (r *Relation) Pairs() []Pair {
	out := make([]Pair, 0, r.Len())
	r.VisitPairs(func(i, j int) { out = append(out, Pair{From: i, To: j}) })
	return out
}

// Len returns the number of derived non-reflexive pairs, as a popcount
// sweep over the rows (minus the set diagonal bits) rather than a
// per-bit enumeration.
func (r *Relation) Len() int {
	c := 0
	w := r.w
	for i := 0; i < r.n; i++ {
		row := r.rows[i*w : (i+1)*w]
		for _, word := range row {
			c += bits.OnesCount64(word)
		}
		c -= int(row[i>>6] >> (uint(i) & 63) & 1)
	}
	return c
}

// Extend returns a new relation over n+m tuples: every derived pair of
// r is carried over and the m appended tuples start with no pairs. The
// receiver is unchanged — snapshots of it, and tracked clones restoring
// from it, stay valid — which is what lets a grounding version absorb
// new evidence tuples while in-flight checkers keep using the previous
// version. The result is untracked; CloneTracked it to obtain dirty-row
// restore against the extended base.
func (r *Relation) Extend(m int) *Relation {
	if m < 0 {
		panic("order: Extend with negative growth")
	}
	out := New(r.n + m)
	if out.w == r.w {
		copy(out.rows, r.rows)
		return out
	}
	for i := 0; i < r.n; i++ {
		copy(out.rows[i*out.w:i*out.w+r.w], r.row(i))
	}
	return out
}

// Clone returns a deep copy of the relation (without dirty tracking).
func (r *Relation) Clone() *Relation {
	out := &Relation{n: r.n, w: r.w, rows: make([]uint64, len(r.rows))}
	copy(out.rows, r.rows)
	return out
}

// CloneTracked returns a deep copy with dirty-row tracking enabled: the
// copy records every row it subsequently writes, and ResetFrom(r)
// restores it to r's state by rewriting only those rows. The base
// relation r must not change while tracked copies restore from it.
func (r *Relation) CloneTracked() *Relation {
	out := r.Clone()
	out.dirty = make([]uint64, (r.n+63)/64)
	return out
}

// CloneInto overwrites dst with a deep copy of r, reusing dst's buffers
// when shapes match (reallocating otherwise). dst's dirty-tracking mode
// is preserved; all rows are marked clean.
func (r *Relation) CloneInto(dst *Relation) {
	if dst.n != r.n || dst.w != r.w || len(dst.rows) != len(r.rows) {
		dst.n, dst.w = r.n, r.w
		dst.rows = make([]uint64, len(r.rows))
		if dst.dirty != nil {
			dst.dirty = make([]uint64, (r.n+63)/64)
		}
	}
	copy(dst.rows, r.rows)
	for i := range dst.dirty {
		dst.dirty[i] = 0
	}
}

// CopyFrom overwrites r with src's contents; the relations must have the
// same size. It lets a chase runner reuse allocations across runs.
func (r *Relation) CopyFrom(src *Relation) {
	copy(r.rows, src.rows)
}

// ResetFrom restores r to the contents of base, rewriting only the rows
// written since the relation was created with CloneTracked (or since the
// previous ResetFrom), and marks every row clean again. On an untracked
// relation it falls back to a full CopyFrom. r must have started as a
// copy of base: only dirty rows are touched.
func (r *Relation) ResetFrom(base *Relation) {
	if r.dirty == nil {
		r.CopyFrom(base)
		return
	}
	w := r.w
	for wi, word := range r.dirty {
		if word == 0 {
			continue
		}
		r.dirty[wi] = 0
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			copy(r.rows[i*w:(i+1)*w], base.rows[i*w:(i+1)*w])
			word &= word - 1
		}
	}
}

// DirtyRows returns the number of rows currently marked dirty; it is
// used by tests and by callers sizing restore work.
func (r *Relation) DirtyRows() int {
	c := 0
	for _, word := range r.dirty {
		c += bits.OnesCount64(word)
	}
	return c
}

// TransitiveOK verifies the relation is transitively closed; it is used
// by property tests. Each derived pair (i, j) contributes one
// word-subset check row_j ⊆ row_i (row_j &^ row_i == 0 word by word) —
// O(pairs·w) instead of the O(n³) probe triple loop.
func (r *Relation) TransitiveOK() bool {
	w := r.w
	for i := 0; i < r.n; i++ {
		ri := r.row(i)
		for wi, word := range ri {
			base := wi << 6
			for ; word != 0; word &= word - 1 {
				j := base + bits.TrailingZeros64(word)
				if j == i {
					continue
				}
				rj := r.row(j)
				for k := 0; k < w; k++ {
					if rj[k]&^ri[k] != 0 {
						return false
					}
				}
			}
		}
	}
	return true
}

// Set is the collection of accuracy orders for all attributes of a
// schema: one Relation per attribute, as in the accuracy instance
// D = (Ie, ⪯A1, ..., ⪯An).
type Set struct {
	n     int
	attrs int
	rels  []*Relation
}

// NewSet creates empty relations for attrs attributes over n tuples.
func NewSet(attrs, n int) *Set {
	s := &Set{n: n, attrs: attrs, rels: make([]*Relation, attrs)}
	for i := range s.rels {
		s.rels[i] = New(n)
	}
	return s
}

// Attrs returns the number of attributes.
func (s *Set) Attrs() int { return s.attrs }

// Size returns the number of tuples each relation ranges over.
func (s *Set) Size() int { return s.n }

// Attr returns the relation for attribute position a.
func (s *Set) Attr(a int) *Relation { return s.rels[a] }

// Clone deep-copies all relations.
func (s *Set) Clone() *Set {
	out := &Set{n: s.n, attrs: s.attrs, rels: make([]*Relation, s.attrs)}
	for i, r := range s.rels {
		out.rels[i] = r.Clone()
	}
	return out
}

// CloneTracked deep-copies all relations with dirty-row tracking
// enabled, so the copy can ResetFrom(s) cheaply after divergence.
func (s *Set) CloneTracked() *Set {
	out := &Set{n: s.n, attrs: s.attrs, rels: make([]*Relation, s.attrs)}
	for i, r := range s.rels {
		out.rels[i] = r.CloneTracked()
	}
	return out
}

// Extend returns a new set over n+m tuples with every relation's pairs
// carried over; see Relation.Extend.
func (s *Set) Extend(m int) *Set {
	out := &Set{n: s.n + m, attrs: s.attrs, rels: make([]*Relation, s.attrs)}
	for i, r := range s.rels {
		out.rels[i] = r.Extend(m)
	}
	return out
}

// CopyFrom overwrites s with src's contents; shapes must match.
func (s *Set) CopyFrom(src *Set) {
	for i, r := range s.rels {
		r.CopyFrom(src.rels[i])
	}
}

// ResetFrom restores every relation to base's contents, touching only
// rows written since the last reset (see Relation.ResetFrom).
func (s *Set) ResetFrom(base *Set) {
	for i, r := range s.rels {
		r.ResetFrom(base.rels[i])
	}
}

// TotalPairs sums Len over all attributes.
func (s *Set) TotalPairs() int {
	t := 0
	for _, r := range s.rels {
		t += r.Len()
	}
	return t
}
