package order

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddBasics(t *testing.T) {
	r := New(3)
	if r.Has(0, 1) {
		t.Fatalf("fresh relation should be empty")
	}
	added := r.Add(0, 1)
	if len(added) != 1 || added[0] != (Pair{0, 1}) {
		t.Fatalf("Add(0,1) = %v", added)
	}
	if !r.Has(0, 1) || r.Has(1, 0) {
		t.Errorf("Has wrong after Add")
	}
	if r.Add(0, 1) != nil {
		t.Errorf("re-adding should return nil")
	}
}

func TestAddTransitivity(t *testing.T) {
	r := New(4)
	r.Add(0, 1)
	r.Add(1, 2)
	if !r.Has(0, 2) {
		t.Errorf("transitive pair 0⪯2 missing")
	}
	added := r.Add(2, 3)
	// 2⪯3 must also derive 0⪯3 and 1⪯3.
	want := map[Pair]bool{{2, 3}: true, {0, 3}: true, {1, 3}: true}
	if len(added) != 3 {
		t.Fatalf("Add(2,3) = %v", added)
	}
	for _, p := range added {
		if !want[p] {
			t.Errorf("unexpected derived pair %v", p)
		}
	}
	if !r.TransitiveOK() {
		t.Errorf("closure violated")
	}
}

func TestReflexiveAdd(t *testing.T) {
	r := New(2)
	added := r.Add(0, 0)
	if len(added) != 1 || !r.Has(0, 0) {
		t.Errorf("reflexive add failed: %v", added)
	}
}

func TestMax(t *testing.T) {
	r := New(3)
	if r.Max() != -1 {
		t.Errorf("empty relation has no max")
	}
	r.Add(0, 2)
	if r.Max() != -1 {
		t.Errorf("partial order has no max yet")
	}
	r.Add(1, 2)
	if r.Max() != 2 {
		t.Errorf("Max = %d, want 2", r.Max())
	}
	if New(1).Max() != 0 {
		t.Errorf("singleton max should be 0")
	}
	if New(0).Max() != -1 {
		t.Errorf("empty-size relation max should be -1")
	}
}

func TestMutual(t *testing.T) {
	r := New(2)
	r.Add(0, 1)
	if r.Mutual(0, 1) {
		t.Errorf("one direction is not mutual")
	}
	r.Add(1, 0)
	if !r.Mutual(0, 1) || !r.Mutual(1, 0) {
		t.Errorf("Mutual failed")
	}
}

func TestColumnCounts(t *testing.T) {
	r := New(3)
	r.Add(0, 2)
	r.Add(1, 2)
	r.Add(0, 0) // reflexive pairs are not counted
	c := r.ColumnCounts()
	if c[0] != 0 || c[1] != 0 || c[2] != 2 {
		t.Errorf("ColumnCounts = %v", c)
	}
}

func TestSetCliqueAndBelow(t *testing.T) {
	r := New(5)
	r.SetClique([]int{0, 1})
	r.SetClique([]int{3, 4})
	r.SetBelow([]int{3, 4}, []int{0, 1, 2})
	if !r.Has(0, 1) || !r.Has(1, 0) || !r.Has(0, 0) {
		t.Errorf("clique pairs missing")
	}
	if !r.Has(3, 2) || !r.Has(4, 0) {
		t.Errorf("below pairs missing")
	}
	if r.Has(2, 3) {
		t.Errorf("unexpected pair 2⪯3")
	}
	if !r.TransitiveOK() {
		t.Errorf("seed state must be closed")
	}
}

func TestAddAllTo(t *testing.T) {
	r := New(4)
	r.SetClique([]int{1, 2}) // the value group
	var derived []Pair
	r.AddAllTo([]int{1, 2}, func(i, j int) { derived = append(derived, Pair{i, j}) })
	for i := 0; i < 4; i++ {
		if !r.Has(i, 1) || !r.Has(i, 2) {
			t.Errorf("tuple %d should reach the group", i)
		}
	}
	if !r.TransitiveOK() {
		t.Errorf("closure violated")
	}
	// Derived pairs must exclude the pre-existing clique pairs.
	for _, p := range derived {
		if (p.From == 1 || p.From == 2) && (p.To == 1 || p.To == 2) {
			t.Errorf("pre-existing pair %v reported as derived", p)
		}
	}
}

func TestAddAllToPropagation(t *testing.T) {
	// Group members already reach 3; everyone must now reach 3 too.
	r := New(4)
	r.Add(1, 3)
	r.AddAllTo([]int{1}, func(int, int) {})
	if !r.Has(0, 3) || !r.Has(2, 3) {
		t.Errorf("AddAllTo must propagate the group's successors")
	}
	if !r.TransitiveOK() {
		t.Errorf("closure violated")
	}
}

func TestCloneCopyFrom(t *testing.T) {
	r := New(3)
	r.Add(0, 1)
	c := r.Clone()
	c.Add(1, 2)
	if r.Has(1, 2) {
		t.Errorf("Clone aliases the original")
	}
	r2 := New(3)
	r2.CopyFrom(c)
	if !r2.Has(0, 2) {
		t.Errorf("CopyFrom lost pairs")
	}
}

func TestPairsLen(t *testing.T) {
	r := New(3)
	r.Add(0, 1)
	r.Add(1, 2)
	if r.Len() != 3 { // 0⪯1, 1⪯2, 0⪯2
		t.Errorf("Len = %d", r.Len())
	}
	if len(r.Pairs()) != 3 {
		t.Errorf("Pairs = %v", r.Pairs())
	}
}

func TestSet(t *testing.T) {
	s := NewSet(2, 3)
	if s.Attrs() != 2 || s.Size() != 3 {
		t.Errorf("shape wrong")
	}
	s.Attr(0).Add(0, 1)
	if s.Attr(1).Has(0, 1) {
		t.Errorf("attributes must be independent")
	}
	c := s.Clone()
	c.Attr(0).Add(1, 2)
	if s.Attr(0).Has(1, 2) {
		t.Errorf("Clone aliases")
	}
	if s.TotalPairs() != 1 {
		t.Errorf("TotalPairs = %d", s.TotalPairs())
	}
}

// TestClosureProperty: after any random sequence of Adds the relation is
// transitively closed, and Has(i,j) matches reachability in the inserted
// edge set.
func TestClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		r := New(n)
		edges := make([][]bool, n)
		for i := range edges {
			edges[i] = make([]bool, n)
		}
		for k := 0; k < 12; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			r.Add(i, j)
			edges[i][j] = true
		}
		if !r.TransitiveOK() {
			return false
		}
		// Floyd-Warshall reference reachability.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), edges[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Has(i, j) != reach[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAddReportsExactlyNewPairs: the pairs returned by Add are exactly
// the delta of the relation.
func TestAddReportsExactlyNewPairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		r := New(n)
		total := 0
		for k := 0; k < 10; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			before := countAll(r)
			added := r.Add(i, j)
			after := countAll(r)
			if after-before != len(added) {
				return false
			}
			total += len(added)
		}
		return total == countAll(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func countAll(r *Relation) int {
	c := 0
	for i := 0; i < r.Size(); i++ {
		for j := 0; j < r.Size(); j++ {
			if r.Has(i, j) {
				c++
			}
		}
	}
	return c
}

func TestLargeRelation(t *testing.T) {
	// Exercise multi-word bitset rows (n > 64).
	n := 200
	r := New(n)
	for i := 0; i < n-1; i++ {
		r.Add(i, i+1)
	}
	if !r.Has(0, n-1) {
		t.Errorf("chain closure missing")
	}
	counts := r.ColumnCounts()
	if counts[n-1] != n-1 {
		t.Errorf("count[%d] = %d, want %d", n-1, counts[n-1], n-1)
	}
	if r.Max() != n-1 {
		t.Errorf("Max = %d", r.Max())
	}
}
