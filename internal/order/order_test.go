package order

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddBasics(t *testing.T) {
	r := New(3)
	if r.Has(0, 1) {
		t.Fatalf("fresh relation should be empty")
	}
	added := r.Add(0, 1)
	if len(added) != 1 || added[0] != (Pair{0, 1}) {
		t.Fatalf("Add(0,1) = %v", added)
	}
	if !r.Has(0, 1) || r.Has(1, 0) {
		t.Errorf("Has wrong after Add")
	}
	if r.Add(0, 1) != nil {
		t.Errorf("re-adding should return nil")
	}
}

func TestAddTransitivity(t *testing.T) {
	r := New(4)
	r.Add(0, 1)
	r.Add(1, 2)
	if !r.Has(0, 2) {
		t.Errorf("transitive pair 0⪯2 missing")
	}
	added := r.Add(2, 3)
	// 2⪯3 must also derive 0⪯3 and 1⪯3.
	want := map[Pair]bool{{2, 3}: true, {0, 3}: true, {1, 3}: true}
	if len(added) != 3 {
		t.Fatalf("Add(2,3) = %v", added)
	}
	for _, p := range added {
		if !want[p] {
			t.Errorf("unexpected derived pair %v", p)
		}
	}
	if !r.TransitiveOK() {
		t.Errorf("closure violated")
	}
}

func TestReflexiveAdd(t *testing.T) {
	r := New(2)
	added := r.Add(0, 0)
	if len(added) != 1 || !r.Has(0, 0) {
		t.Errorf("reflexive add failed: %v", added)
	}
}

func TestMax(t *testing.T) {
	r := New(3)
	if r.Max() != -1 {
		t.Errorf("empty relation has no max")
	}
	r.Add(0, 2)
	if r.Max() != -1 {
		t.Errorf("partial order has no max yet")
	}
	r.Add(1, 2)
	if r.Max() != 2 {
		t.Errorf("Max = %d, want 2", r.Max())
	}
	if New(1).Max() != 0 {
		t.Errorf("singleton max should be 0")
	}
	if New(0).Max() != -1 {
		t.Errorf("empty-size relation max should be -1")
	}
}

func TestMutual(t *testing.T) {
	r := New(2)
	r.Add(0, 1)
	if r.Mutual(0, 1) {
		t.Errorf("one direction is not mutual")
	}
	r.Add(1, 0)
	if !r.Mutual(0, 1) || !r.Mutual(1, 0) {
		t.Errorf("Mutual failed")
	}
}

func TestColumnCounts(t *testing.T) {
	r := New(3)
	r.Add(0, 2)
	r.Add(1, 2)
	r.Add(0, 0) // reflexive pairs are not counted
	c := r.ColumnCounts()
	if c[0] != 0 || c[1] != 0 || c[2] != 2 {
		t.Errorf("ColumnCounts = %v", c)
	}
}

func TestSetCliqueAndBelow(t *testing.T) {
	r := New(5)
	r.SetClique([]int{0, 1})
	r.SetClique([]int{3, 4})
	r.SetBelow([]int{3, 4}, []int{0, 1, 2})
	if !r.Has(0, 1) || !r.Has(1, 0) || !r.Has(0, 0) {
		t.Errorf("clique pairs missing")
	}
	if !r.Has(3, 2) || !r.Has(4, 0) {
		t.Errorf("below pairs missing")
	}
	if r.Has(2, 3) {
		t.Errorf("unexpected pair 2⪯3")
	}
	if !r.TransitiveOK() {
		t.Errorf("seed state must be closed")
	}
}

func TestAddAllTo(t *testing.T) {
	r := New(4)
	r.SetClique([]int{1, 2}) // the value group
	var derived []Pair
	r.AddAllTo([]int{1, 2}, func(i, j int) { derived = append(derived, Pair{i, j}) })
	for i := 0; i < 4; i++ {
		if !r.Has(i, 1) || !r.Has(i, 2) {
			t.Errorf("tuple %d should reach the group", i)
		}
	}
	if !r.TransitiveOK() {
		t.Errorf("closure violated")
	}
	// Derived pairs must exclude the pre-existing clique pairs.
	for _, p := range derived {
		if (p.From == 1 || p.From == 2) && (p.To == 1 || p.To == 2) {
			t.Errorf("pre-existing pair %v reported as derived", p)
		}
	}
}

func TestAddAllToPropagation(t *testing.T) {
	// Group members already reach 3; everyone must now reach 3 too.
	r := New(4)
	r.Add(1, 3)
	r.AddAllTo([]int{1}, func(int, int) {})
	if !r.Has(0, 3) || !r.Has(2, 3) {
		t.Errorf("AddAllTo must propagate the group's successors")
	}
	if !r.TransitiveOK() {
		t.Errorf("closure violated")
	}
}

func TestCloneCopyFrom(t *testing.T) {
	r := New(3)
	r.Add(0, 1)
	c := r.Clone()
	c.Add(1, 2)
	if r.Has(1, 2) {
		t.Errorf("Clone aliases the original")
	}
	r2 := New(3)
	r2.CopyFrom(c)
	if !r2.Has(0, 2) {
		t.Errorf("CopyFrom lost pairs")
	}
}

func TestPairsLen(t *testing.T) {
	r := New(3)
	r.Add(0, 1)
	r.Add(1, 2)
	if r.Len() != 3 { // 0⪯1, 1⪯2, 0⪯2
		t.Errorf("Len = %d", r.Len())
	}
	if len(r.Pairs()) != 3 {
		t.Errorf("Pairs = %v", r.Pairs())
	}
}

func TestSet(t *testing.T) {
	s := NewSet(2, 3)
	if s.Attrs() != 2 || s.Size() != 3 {
		t.Errorf("shape wrong")
	}
	s.Attr(0).Add(0, 1)
	if s.Attr(1).Has(0, 1) {
		t.Errorf("attributes must be independent")
	}
	c := s.Clone()
	c.Attr(0).Add(1, 2)
	if s.Attr(0).Has(1, 2) {
		t.Errorf("Clone aliases")
	}
	if s.TotalPairs() != 1 {
		t.Errorf("TotalPairs = %d", s.TotalPairs())
	}
}

// TestClosureProperty: after any random sequence of Adds the relation is
// transitively closed, and Has(i,j) matches reachability in the inserted
// edge set.
func TestClosureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		r := New(n)
		edges := make([][]bool, n)
		for i := range edges {
			edges[i] = make([]bool, n)
		}
		for k := 0; k < 12; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			r.Add(i, j)
			edges[i][j] = true
		}
		if !r.TransitiveOK() {
			return false
		}
		// Floyd-Warshall reference reachability.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), edges[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Has(i, j) != reach[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAddReportsExactlyNewPairs: the pairs returned by Add are exactly
// the delta of the relation.
func TestAddReportsExactlyNewPairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		r := New(n)
		total := 0
		for k := 0; k < 10; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			before := countAll(r)
			added := r.Add(i, j)
			after := countAll(r)
			if after-before != len(added) {
				return false
			}
			total += len(added)
		}
		return total == countAll(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func countAll(r *Relation) int {
	c := 0
	for i := 0; i < r.Size(); i++ {
		for j := 0; j < r.Size(); j++ {
			if r.Has(i, j) {
				c++
			}
		}
	}
	return c
}

func TestLargeRelation(t *testing.T) {
	// Exercise multi-word bitset rows (n > 64).
	n := 200
	r := New(n)
	for i := 0; i < n-1; i++ {
		r.Add(i, i+1)
	}
	if !r.Has(0, n-1) {
		t.Errorf("chain closure missing")
	}
	counts := r.ColumnCounts()
	if counts[n-1] != n-1 {
		t.Errorf("count[%d] = %d, want %d", n-1, counts[n-1], n-1)
	}
	if r.Max() != n-1 {
		t.Errorf("Max = %d", r.Max())
	}
}

func TestBitIndexBeyondWordBoundary(t *testing.T) {
	// Regression test for the bit-index expression in Has/set: with
	// n > 64 the word offset is i*w + (j>>6); a misparse as
	// (i*w + j) >> 6 would address the wrong word. Exercise bits on both
	// sides of every word boundary.
	n := 130 // three words per row
	r := New(n)
	pairs := [][2]int{{0, 63}, {0, 64}, {0, 65}, {1, 127}, {1, 128}, {2, 129}, {129, 0}}
	for _, p := range pairs {
		r.Add(p[0], p[1])
	}
	for _, p := range pairs {
		if !r.Has(p[0], p[1]) {
			t.Errorf("Has(%d, %d) = false after Add", p[0], p[1])
		}
	}
	// Spot-check neighbouring bits stayed clear (no closure links them).
	for _, p := range [][2]int{{0, 62}, {0, 66}, {1, 126}, {2, 128}, {128, 0}} {
		if r.Has(p[0], p[1]) {
			t.Errorf("Has(%d, %d) = true, never added", p[0], p[1])
		}
	}
}

func TestCloneTrackedResetFrom(t *testing.T) {
	n := 100
	base := New(n)
	base.Add(1, 2)
	base.Add(2, 3)

	r := base.CloneTracked()
	if got := r.DirtyRows(); got != 0 {
		t.Fatalf("fresh tracked clone has %d dirty rows", got)
	}
	r.Add(70, 80)
	r.Add(0, 1) // row 0 gains 1,2,3 by closure
	if r.DirtyRows() == 0 {
		t.Fatal("writes did not mark rows dirty")
	}
	r.ResetFrom(base)
	if got := r.DirtyRows(); got != 0 {
		t.Fatalf("ResetFrom left %d dirty rows", got)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Has(i, j) != base.Has(i, j) {
				t.Fatalf("after ResetFrom, (%d,%d): got %v want %v", i, j, r.Has(i, j), base.Has(i, j))
			}
		}
	}
	// The restored relation is reusable: diverge and restore again.
	r.AddAllTo([]int{5}, func(int, int) {})
	r.SetClique([]int{90, 91})
	r.SetBelow([]int{10}, []int{11})
	r.ResetFrom(base)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Has(i, j) != base.Has(i, j) {
				t.Fatalf("second ResetFrom, (%d,%d): got %v want %v", i, j, r.Has(i, j), base.Has(i, j))
			}
		}
	}
}

func TestSetCloneTrackedResetFrom(t *testing.T) {
	base := NewSet(2, 70)
	base.Attr(0).Add(0, 1)
	base.Attr(1).Add(65, 66)

	s := base.CloneTracked()
	s.Attr(0).Add(2, 3)
	s.Attr(1).Add(0, 69)
	s.ResetFrom(base)
	for a := 0; a < 2; a++ {
		if got, want := s.Attr(a).Len(), base.Attr(a).Len(); got != want {
			t.Errorf("attr %d: Len = %d after reset, want %d", a, got, want)
		}
	}
	if s.Attr(0).Has(2, 3) || s.Attr(1).Has(0, 69) {
		t.Error("diverged pairs survived ResetFrom")
	}
}

func TestCloneInto(t *testing.T) {
	src := New(80)
	src.Add(0, 70)
	dst := New(80)
	src.CloneInto(dst)
	if !dst.Has(0, 70) {
		t.Error("CloneInto did not copy rows")
	}
	// Shape mismatch reallocates.
	small := New(3)
	src.CloneInto(small)
	if small.Size() != 80 || !small.Has(0, 70) {
		t.Error("CloneInto did not adopt source shape")
	}
	// Tracked destinations come back clean.
	tracked := src.CloneTracked()
	tracked.Add(5, 6)
	src.CloneInto(tracked)
	if tracked.DirtyRows() != 0 {
		t.Error("CloneInto left dirty rows")
	}
	if tracked.Has(5, 6) {
		t.Error("CloneInto kept diverged pair")
	}
}

// TestExtend: the append-row operation preserves every derived pair,
// leaves the receiver untouched, and the result composes with closure
// maintenance and dirty-row snapshots like any fresh relation.
func TestExtend(t *testing.T) {
	// Sizes straddling the 64-bit word boundary exercise the row
	// re-striding path.
	for _, n := range []int{3, 60, 64, 100} {
		for _, m := range []int{1, 7, 64} {
			r := New(n)
			rng := rand.New(rand.NewSource(int64(n*1000 + m)))
			for k := 0; k < 2*n; k++ {
				r.Add(rng.Intn(n), rng.Intn(n))
			}
			beforePairs := r.Pairs()
			ext := r.Extend(m)
			if ext.Size() != n+m {
				t.Fatalf("Extend(%d) of %d-relation has size %d", m, n, ext.Size())
			}
			for _, p := range beforePairs {
				if !ext.Has(p.From, p.To) {
					t.Fatalf("n=%d m=%d: pair (%d,%d) lost by Extend", n, m, p.From, p.To)
				}
			}
			if ext.Len() != r.Len() {
				t.Fatalf("n=%d m=%d: Extend added pairs: %d vs %d", n, m, ext.Len(), r.Len())
			}
			for i := n; i < n+m; i++ {
				for j := 0; j < n+m; j++ {
					if ext.Has(i, j) || ext.Has(j, i) {
						t.Fatalf("n=%d m=%d: new tuple %d has pairs", n, m, i)
					}
				}
			}
			// Mutating the extension must not leak into the receiver.
			ext.Add(n+m-1, 0)
			if r.Len() != len(beforePairs) {
				t.Fatalf("n=%d m=%d: Extend shares storage with the receiver", n, m)
			}
			if !ext.TransitiveOK() {
				t.Fatalf("n=%d m=%d: extension lost transitive closure", n, m)
			}
			// Dirty-row snapshots against the extended base behave as
			// against any base.
			snap := ext.CloneTracked()
			snap.Add(0, n+m-1)
			snap.ResetFrom(ext)
			for i := 0; i < n+m; i++ {
				for j := 0; j < n+m; j++ {
					if snap.Has(i, j) != ext.Has(i, j) {
						t.Fatalf("n=%d m=%d: tracked clone of extension failed to restore", n, m)
					}
				}
			}
		}
	}
}

// TestSetExtend: Set.Extend extends every attribute's relation.
func TestSetExtend(t *testing.T) {
	s := NewSet(3, 5)
	s.Attr(0).Add(0, 1)
	s.Attr(2).Add(3, 4)
	ext := s.Extend(2)
	if ext.Size() != 7 || ext.Attrs() != 3 {
		t.Fatalf("Extend shape: %d tuples, %d attrs", ext.Size(), ext.Attrs())
	}
	if !ext.Attr(0).Has(0, 1) || !ext.Attr(2).Has(3, 4) {
		t.Fatal("Set.Extend lost pairs")
	}
	if ext.TotalPairs() != s.TotalPairs() {
		t.Fatalf("Set.Extend pair counts: %d vs %d", ext.TotalPairs(), s.TotalPairs())
	}
}
