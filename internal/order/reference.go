package order

import "math/bits"

// This file retains the naive bit-loop kernels the word-parallel
// implementations in order.go replaced. They are the differential
// reference for kernel_test.go and FuzzRelationOps: every word-parallel
// kernel must stay bit-for-bit equivalent to its reference here (the
// DESIGN.md "order kernel" invariant — the reference is kept and
// tested, not deleted). None of these are called outside tests; they
// favour being obviously faithful to the Section 2 semantics over
// speed.

// refMax is the O(n²) probe-based Max: scan columns left to right and
// return the first column j whose every other row i has i ⪯ j.
func (r *Relation) refMax() int {
	n := r.n
	if n == 0 {
		return -1
	}
	if n == 1 {
		return 0
	}
outer:
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			if !r.Has(i, j) {
				continue outer
			}
		}
		return j
	}
	return -1
}

// refColumnCounts is the per-bit column counter: walk every set bit of
// every row and increment its column, skipping the diagonal.
func (r *Relation) refColumnCounts() []int {
	counts := make([]int, r.n)
	for i := 0; i < r.n; i++ {
		row := r.row(i)
		for wi, word := range row {
			for word != 0 {
				b := word & -word
				j := wi<<6 + bits.TrailingZeros64(b)
				if j != i {
					counts[j]++
				}
				word &= word - 1
			}
		}
	}
	return counts
}

// refLen counts non-reflexive derived pairs by enumerating them.
func (r *Relation) refLen() int {
	c := 0
	r.VisitPairs(func(_, _ int) { c++ })
	return c
}

// refTransitiveOK is the O(n³) probe-based closure check.
func (r *Relation) refTransitiveOK() bool {
	n := r.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !r.Has(i, j) {
				continue
			}
			for k := 0; k < n; k++ {
				if r.Has(j, k) && !r.Has(i, k) {
					return false
				}
			}
		}
	}
	return true
}

// refAdd is the probe-based closure insertion: build the successor mask
// of j, then OR it into row i and into every row p found by probing all
// n rows for p ⪯ i. It allocates its own buffers so a test can drive
// refAdd and Add against relations that share nothing.
func (r *Relation) refAdd(i, j int) []Pair {
	if r.Has(i, j) {
		return nil
	}
	w := r.w
	mask := make([]uint64, w)
	copy(mask, r.row(j))
	mask[j>>6] |= 1 << (uint(j) & 63)

	var added []Pair
	apply := func(p int) {
		row := r.row(p)
		for wi := 0; wi < w; wi++ {
			diff := mask[wi] &^ row[wi]
			if diff == 0 {
				continue
			}
			row[wi] |= diff
			r.markRow(p)
			for diff != 0 {
				b := diff & -diff
				added = append(added, Pair{From: p, To: wi<<6 + bits.TrailingZeros64(b)})
				diff &= diff - 1
			}
		}
	}
	apply(i)
	for p := 0; p < r.n; p++ {
		if p != i && r.Has(p, i) {
			apply(p)
		}
	}
	return added
}

// refAddAllTo32 is the per-pair ϕ8 bulk insertion: accumulate the
// group's successor mask, then OR it into every row, visiting each new
// pair. Like refAdd it allocates its own mask buffer.
func (r *Relation) refAddAllTo32(group []int32, visit func(from, to int)) {
	if len(group) == 0 {
		return
	}
	w := r.w
	mask := make([]uint64, w)
	for _, g := range group {
		row := r.row(int(g))
		for wi := 0; wi < w; wi++ {
			mask[wi] |= row[wi]
		}
		mask[g>>6] |= 1 << (uint(g) & 63)
	}
	for p := 0; p < r.n; p++ {
		row := r.row(p)
		for wi := 0; wi < w; wi++ {
			diff := mask[wi] &^ row[wi]
			if diff == 0 {
				continue
			}
			row[wi] |= diff
			r.markRow(p)
			for diff != 0 {
				b := diff & -diff
				visit(p, wi<<6+bits.TrailingZeros64(b))
				diff &= diff - 1
			}
		}
	}
}
