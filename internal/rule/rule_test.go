package rule_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/rule"
)

func TestOpEval(t *testing.T) {
	cases := []struct {
		a    model.Value
		op   rule.Op
		b    model.Value
		want bool
	}{
		{model.I(1), rule.Eq, model.I(1), true},
		{model.I(1), rule.Ne, model.I(2), true},
		{model.I(1), rule.Lt, model.I(2), true},
		{model.I(2), rule.Le, model.I(2), true},
		{model.I(3), rule.Gt, model.I(2), true},
		{model.I(2), rule.Ge, model.I(3), false},
		{model.NullValue(), rule.Eq, model.NullValue(), true},
		{model.NullValue(), rule.Ne, model.I(1), true},
		{model.NullValue(), rule.Lt, model.I(1), false}, // null incomparable
		{model.S("a"), rule.Lt, model.I(1), false},      // cross-kind incomparable
		{model.S("a"), rule.Lt, model.S("b"), true},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestOpFlip(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := model.I(a), model.I(b)
		for _, op := range []rule.Op{rule.Eq, rule.Ne, rule.Lt, rule.Le, rule.Gt, rule.Ge} {
			if op.Eval(va, vb) != op.Flip().Eval(vb, va) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	want := map[rule.Op]string{
		rule.Eq: "=", rule.Ne: "!=", rule.Lt: "<", rule.Le: "<=", rule.Gt: ">", rule.Ge: ">=",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %q", op, op.String())
		}
	}
}

func schemas(t *testing.T) (*model.Schema, *model.Schema) {
	t.Helper()
	return model.MustSchema("r", "a", "b"), model.MustSchema("m", "a", "x")
}

func TestForm1Validate(t *testing.T) {
	r, rm := schemas(t)
	good := &rule.Form1{RuleName: "g",
		LHS: []rule.Pred{rule.Cmp(rule.T1("a"), rule.Lt, rule.T2("a"))}, RHS: "b"}
	if err := good.Validate(r, rm); err != nil {
		t.Errorf("good rule rejected: %v", err)
	}
	bad := []*rule.Form1{
		{RuleName: "rhs", LHS: nil, RHS: "zz"},
		{RuleName: "op-attr", LHS: []rule.Pred{rule.Prec("zz")}, RHS: "a"},
		{RuleName: "t3", LHS: []rule.Pred{{Kind: rule.CmpPred,
			Left: rule.Operand{Kind: rule.TupleAttr, Tup: 3, Attr: "a"}, Op: rule.Eq,
			Right: rule.C(model.I(1))}}, RHS: "a"},
		{RuleName: "tgt-attr", LHS: []rule.Pred{rule.Cmp(rule.Te("zz"), rule.Eq, rule.C(model.I(1)))}, RHS: "a"},
		{RuleName: "two-tgt", LHS: []rule.Pred{rule.Cmp(rule.Te("a"), rule.Eq, rule.Te("b"))}, RHS: "a"},
		{RuleName: "two-const", LHS: []rule.Pred{rule.Cmp(rule.C(model.I(1)), rule.Eq, rule.C(model.I(1)))}, RHS: "a"},
		{RuleName: "te-null", LHS: []rule.Pred{rule.Cmp(rule.Te("a"), rule.Eq, rule.C(model.NullValue()))}, RHS: "a"},
	}
	for _, b := range bad {
		if err := b.Validate(r, rm); err == nil {
			t.Errorf("rule %s should fail validation", b.RuleName)
		}
	}
	// te != null is the legitimate definedness test.
	ok := &rule.Form1{RuleName: "defined",
		LHS: []rule.Pred{rule.Cmp(rule.Te("a"), rule.Ne, rule.C(model.NullValue()))}, RHS: "a"}
	if err := ok.Validate(r, rm); err != nil {
		t.Errorf("te != null should validate: %v", err)
	}
}

func TestForm2Validate(t *testing.T) {
	r, rm := schemas(t)
	good := &rule.Form2{RuleName: "g",
		Conds:      []rule.MasterCond{rule.CondMaster("a", "a"), rule.CondMasterConst("x", model.I(1))},
		TargetAttr: "b", MasterAttr: "x"}
	if err := good.Validate(r, rm); err != nil {
		t.Errorf("good rule rejected: %v", err)
	}
	bad := []*rule.Form2{
		{RuleName: "tgt", TargetAttr: "zz", MasterAttr: "x"},
		{RuleName: "mattr", TargetAttr: "a", MasterAttr: "zz"},
		{RuleName: "cond-tgt", Conds: []rule.MasterCond{rule.CondMaster("zz", "x")}, TargetAttr: "a", MasterAttr: "x"},
		{RuleName: "cond-m", Conds: []rule.MasterCond{rule.CondMaster("a", "zz")}, TargetAttr: "a", MasterAttr: "x"},
		{RuleName: "cond-null", Conds: []rule.MasterCond{rule.CondConst("a", model.NullValue())}, TargetAttr: "a", MasterAttr: "x"},
		{RuleName: "onm", Conds: []rule.MasterCond{rule.CondMasterConst("zz", model.I(1))}, TargetAttr: "a", MasterAttr: "x"},
	}
	for _, b := range bad {
		if err := b.Validate(r, rm); err == nil {
			t.Errorf("rule %s should fail validation", b.RuleName)
		}
	}
	if err := good.Validate(r, nil); err == nil {
		t.Errorf("form-2 without master schema should fail")
	}
}

func TestSetOperations(t *testing.T) {
	r, rm := schemas(t)
	f1 := &rule.Form1{RuleName: "f1",
		LHS: []rule.Pred{rule.Prec("a")}, RHS: "b"}
	f2 := &rule.Form2{RuleName: "f2",
		Conds: []rule.MasterCond{rule.CondMaster("a", "a")}, TargetAttr: "b", MasterAttr: "x"}
	set, err := rule.NewSet(r, rm, f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Errorf("Len = %d", set.Len())
	}
	if set.Form1Only().Len() != 1 || set.Form2Only().Len() != 1 {
		t.Errorf("form split wrong")
	}
	if set.Truncate(1).Len() != 1 || set.Truncate(5).Len() != 2 {
		t.Errorf("Truncate wrong")
	}
	more, err := set.Append(r, rm, &rule.Form1{RuleName: "f3", LHS: nil, RHS: "a"})
	if err != nil || more.Len() != 3 || set.Len() != 2 {
		t.Errorf("Append wrong: %v %d %d", err, more.Len(), set.Len())
	}
	if _, err := rule.NewSet(r, rm, &rule.Form1{RuleName: "bad", RHS: "zz"}); err == nil {
		t.Errorf("NewSet must validate")
	}
	var nilSet *rule.Set
	if nilSet.Len() != 0 || nilSet.Rules() != nil {
		t.Errorf("nil set should behave as empty")
	}
}

func TestRuleStrings(t *testing.T) {
	f1 := &rule.Form1{RuleName: "phi2", LHS: []rule.Pred{rule.Prec("rnds")}, RHS: "J#"}
	if s := f1.String(); !strings.Contains(s, "phi2:") || !strings.Contains(s, "@ J#") {
		t.Errorf("Form1 string = %q", s)
	}
	f2 := &rule.Form2{RuleName: "phi6",
		Conds: []rule.MasterCond{
			rule.CondMaster("FN", "FN"),
			rule.CondConst("LN", model.S("Jordan")),
			rule.CondMasterConst("season", model.S("1994-95")),
		},
		TargetAttr: "league", MasterAttr: "league"}
	s := f2.String()
	for _, frag := range []string{"master", `te[FN] = tm[FN]`, `te[LN] = "Jordan"`, `tm[season] = "1994-95"`, "-> te[league] = tm[league]"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Form2 string %q missing %q", s, frag)
		}
	}
	empty := &rule.Form1{RuleName: "e", RHS: "a"}
	if !strings.Contains(empty.String(), "true ->") {
		t.Errorf("empty LHS should render as true: %q", empty.String())
	}
}
