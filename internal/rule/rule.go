// Package rule defines accuracy rules (ARs) as introduced in Section 2.1
// of "Determining the Relative Accuracy of Attributes" (SIGMOD 2013).
//
// There are two forms of ARs. Form (1) is defined on pairs of tuples of
// the entity instance:
//
//	∀ t1, t2 (R(t1) ∧ R(t2) ∧ ω → t1 ⪯_Ai t2)
//
// where ω is a conjunction of comparison predicates (t1[Al] op t2[Al],
// ti[Al] op c with c a constant or te[Al]) and order predicates
// (t1 ≺_Al t2 or t1 ⪯_Al t2). Form (2) extracts target values from a
// master relation:
//
//	∀ tm (Rm(tm) ∧ ω → te[Ai] = tm[B])
//
// where ω is a conjunction of te[Al] = c and te[Al] = tm[B'] predicates.
//
// The axioms ϕ7 (null has lowest accuracy), ϕ8 (a defined target value
// has highest accuracy) and ϕ9 (equal values are mutually ⪯) are part of
// every rule set; the chase engine implements them natively, so they are
// not represented as explicit rules here.
package rule

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Op is a comparison operator appearing in rule predicates.
type Op uint8

const (
	Eq Op = iota // =
	Ne           // ≠
	Lt           // <
	Le           // ≤
	Gt           // >
	Ge           // ≥
)

// String returns the ASCII spelling of the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Flip mirrors the operator: a op b  ⟺  b op.Flip() a.
func (o Op) Flip() Op {
	switch o {
	case Lt:
		return Gt
	case Gt:
		return Lt
	case Le:
		return Ge
	case Ge:
		return Le
	default:
		return o
	}
}

// Eval applies the operator to two values. Equality and inequality
// follow Value.Equal (null equals only null). Inequalities are false
// whenever the values are incomparable (including any null operand).
func (o Op) Eval(a, b model.Value) bool {
	switch o {
	case Eq:
		return a.Equal(b)
	case Ne:
		return !a.Equal(b)
	}
	c, ok := a.Compare(b)
	if !ok {
		return false
	}
	switch o {
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// OperandKind distinguishes the three operand shapes in form-(1)
// comparison predicates.
type OperandKind uint8

const (
	// TupleAttr is ti[Al] for i ∈ {1,2}.
	TupleAttr OperandKind = iota
	// Const is a constant value.
	Const
	// TargetAttr is te[Al], a reference to the target template.
	TargetAttr
)

// Operand is one side of a comparison predicate.
type Operand struct {
	Kind OperandKind
	Tup  int         // 1 or 2, for TupleAttr
	Attr string      // attribute name, for TupleAttr and TargetAttr
	Val  model.Value // the constant, for Const
}

// T1 returns the operand t1[attr].
func T1(attr string) Operand { return Operand{Kind: TupleAttr, Tup: 1, Attr: attr} }

// T2 returns the operand t2[attr].
func T2(attr string) Operand { return Operand{Kind: TupleAttr, Tup: 2, Attr: attr} }

// C returns a constant operand.
func C(v model.Value) Operand { return Operand{Kind: Const, Val: v} }

// Te returns the operand te[attr].
func Te(attr string) Operand { return Operand{Kind: TargetAttr, Attr: attr} }

func (o Operand) String() string {
	switch o.Kind {
	case TupleAttr:
		return fmt.Sprintf("t%d[%s]", o.Tup, o.Attr)
	case Const:
		return o.Val.Quote()
	case TargetAttr:
		return fmt.Sprintf("te[%s]", o.Attr)
	default:
		return "?"
	}
}

// PredKind distinguishes comparison predicates from order predicates.
type PredKind uint8

const (
	// CmpPred is Left Op Right over operands.
	CmpPred PredKind = iota
	// OrderPred is t1 ≺_Attr t2 (Strict) or t1 ⪯_Attr t2.
	OrderPred
)

// Pred is one conjunct of a form-(1) rule body.
type Pred struct {
	Kind   PredKind
	Left   Operand
	Op     Op
	Right  Operand
	Attr   string // attribute of an order predicate
	Strict bool   // ≺ vs ⪯
}

// Cmp builds a comparison predicate.
func Cmp(l Operand, op Op, r Operand) Pred {
	return Pred{Kind: CmpPred, Left: l, Op: op, Right: r}
}

// Prec builds the strict order predicate t1 ≺_attr t2.
func Prec(attr string) Pred { return Pred{Kind: OrderPred, Attr: attr, Strict: true} }

// PrecEq builds the weak order predicate t1 ⪯_attr t2.
func PrecEq(attr string) Pred { return Pred{Kind: OrderPred, Attr: attr} }

func (p Pred) String() string {
	if p.Kind == OrderPred {
		sym := "<="
		if p.Strict {
			sym = "<"
		}
		return fmt.Sprintf("t1 %s t2 @ %s", sym, p.Attr)
	}
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// Form1 is a form-(1) accuracy rule: LHS → t1 ⪯_RHS t2.
type Form1 struct {
	RuleName string
	LHS      []Pred
	RHS      string // the attribute Ai of the derived order pair
}

// Form2 is a form-(2) accuracy rule:
// ∀tm (Rm(tm) ∧ conds → te[TargetAttr] = tm[MasterAttr]).
type Form2 struct {
	RuleName   string
	Conds      []MasterCond
	TargetAttr string // Ai of the entity schema
	MasterAttr string // B of the master schema
}

// MasterCond is one conjunct of a form-(2) rule body: te[TargetAttr] =
// Const, te[TargetAttr] = tm[MasterAttr], or — as in the paper's ϕ6,
// where tm[season] = "1994-95" constrains the master tuple alone —
// tm[MasterAttr] = Const (OnMaster true), which folds away when the rule
// is grounded on a concrete master tuple.
type MasterCond struct {
	TargetAttr string
	IsConst    bool
	Const      model.Value
	MasterAttr string
	OnMaster   bool
}

// CondConst builds te[attr] = c.
func CondConst(attr string, c model.Value) MasterCond {
	return MasterCond{TargetAttr: attr, IsConst: true, Const: c}
}

// CondMaster builds te[attr] = tm[masterAttr].
func CondMaster(attr, masterAttr string) MasterCond {
	return MasterCond{TargetAttr: attr, MasterAttr: masterAttr}
}

// CondMasterConst builds tm[masterAttr] = c, a selection on the master
// tuple itself.
func CondMasterConst(masterAttr string, c model.Value) MasterCond {
	return MasterCond{MasterAttr: masterAttr, IsConst: true, Const: c, OnMaster: true}
}

// Rule is either a *Form1 or a *Form2.
type Rule interface {
	// Name returns the rule's label (e.g. "phi1"), for traces and errors.
	Name() string
	// Validate checks the rule is well formed against the entity schema r
	// and master schema rm (rm may be nil when the rule set has no
	// form-(2) rules).
	Validate(r, rm *model.Schema) error
	// String renders the rule in the textual rule language.
	String() string
}

// Name implements Rule.
func (f *Form1) Name() string { return f.RuleName }

// Name implements Rule.
func (f *Form2) Name() string { return f.RuleName }

// Validate implements Rule. It checks attribute references, operand
// shapes, and rejects the unsupported predicate te[A] = null (whose truth
// would not be monotone during the chase).
func (f *Form1) Validate(r, _ *model.Schema) error {
	if f.RHS == "" || !r.Has(f.RHS) {
		return fmt.Errorf("rule %s: RHS attribute %q not in schema %s", f.RuleName, f.RHS, r.Name())
	}
	for i, p := range f.LHS {
		switch p.Kind {
		case OrderPred:
			if !r.Has(p.Attr) {
				return fmt.Errorf("rule %s: order predicate %d references unknown attribute %q", f.RuleName, i, p.Attr)
			}
		case CmpPred:
			for _, op := range []Operand{p.Left, p.Right} {
				switch op.Kind {
				case TupleAttr:
					if op.Tup != 1 && op.Tup != 2 {
						return fmt.Errorf("rule %s: predicate %d references tuple t%d", f.RuleName, i, op.Tup)
					}
					if !r.Has(op.Attr) {
						return fmt.Errorf("rule %s: predicate %d references unknown attribute %q", f.RuleName, i, op.Attr)
					}
				case TargetAttr:
					if !r.Has(op.Attr) {
						return fmt.Errorf("rule %s: predicate %d references unknown target attribute %q", f.RuleName, i, op.Attr)
					}
				}
			}
			if p.Left.Kind == TargetAttr && p.Right.Kind == TargetAttr {
				return fmt.Errorf("rule %s: predicate %d compares two target attributes", f.RuleName, i)
			}
			if p.Left.Kind == Const && p.Right.Kind == Const {
				return fmt.Errorf("rule %s: predicate %d compares two constants", f.RuleName, i)
			}
			// te[A] = null (and te[A] op null in general) is not monotone:
			// it can hold now and fail later as the chase instantiates te.
			if (p.Left.Kind == TargetAttr && p.Right.Kind == Const && p.Right.Val.IsNull() && p.Op != Ne) ||
				(p.Right.Kind == TargetAttr && p.Left.Kind == Const && p.Left.Val.IsNull() && p.Op != Ne) {
				return fmt.Errorf("rule %s: predicate %d tests te[A] = null, which is not supported", f.RuleName, i)
			}
		default:
			return fmt.Errorf("rule %s: predicate %d has unknown kind", f.RuleName, i)
		}
	}
	return nil
}

// Validate implements Rule.
func (f *Form2) Validate(r, rm *model.Schema) error {
	if rm == nil {
		return fmt.Errorf("rule %s: form-(2) rule requires a master schema", f.RuleName)
	}
	if !r.Has(f.TargetAttr) {
		return fmt.Errorf("rule %s: target attribute %q not in schema %s", f.RuleName, f.TargetAttr, r.Name())
	}
	if !rm.Has(f.MasterAttr) {
		return fmt.Errorf("rule %s: master attribute %q not in schema %s", f.RuleName, f.MasterAttr, rm.Name())
	}
	for i, c := range f.Conds {
		if c.OnMaster {
			if !rm.Has(c.MasterAttr) {
				return fmt.Errorf("rule %s: condition %d references unknown master attribute %q", f.RuleName, i, c.MasterAttr)
			}
			continue
		}
		if !r.Has(c.TargetAttr) {
			return fmt.Errorf("rule %s: condition %d references unknown target attribute %q", f.RuleName, i, c.TargetAttr)
		}
		if !c.IsConst && !rm.Has(c.MasterAttr) {
			return fmt.Errorf("rule %s: condition %d references unknown master attribute %q", f.RuleName, i, c.MasterAttr)
		}
		if c.IsConst && c.Const.IsNull() {
			return fmt.Errorf("rule %s: condition %d tests te[A] = null, which is not supported", f.RuleName, i)
		}
	}
	return nil
}

// String implements Rule using the textual rule language of package
// ruledsl: "name: pred, pred, ... -> t1 <= t2 @ attr".
func (f *Form1) String() string {
	parts := make([]string, len(f.LHS))
	for i, p := range f.LHS {
		parts[i] = p.String()
	}
	lhs := strings.Join(parts, " , ")
	if lhs == "" {
		lhs = "true"
	}
	return fmt.Sprintf("%s: %s -> t1 <= t2 @ %s", f.RuleName, lhs, f.RHS)
}

// String implements Rule: "name: master(te[A]=c, te[B]=tm[B']) -> te[Ai] = tm[B]".
func (f *Form2) String() string {
	parts := make([]string, len(f.Conds))
	for i, c := range f.Conds {
		switch {
		case c.OnMaster:
			parts[i] = fmt.Sprintf("tm[%s] = %s", c.MasterAttr, c.Const.Quote())
		case c.IsConst:
			parts[i] = fmt.Sprintf("te[%s] = %s", c.TargetAttr, c.Const.Quote())
		default:
			parts[i] = fmt.Sprintf("te[%s] = tm[%s]", c.TargetAttr, c.MasterAttr)
		}
	}
	lhs := strings.Join(parts, " , ")
	if lhs == "" {
		lhs = "true"
	}
	return fmt.Sprintf("%s: master %s -> te[%s] = tm[%s]", f.RuleName, lhs, f.TargetAttr, f.MasterAttr)
}

// Set is an ordered collection of validated rules sharing one entity
// schema and at most one master schema.
type Set struct {
	rules []Rule
}

// NewSet validates every rule against the schemas and collects them.
func NewSet(r, rm *model.Schema, rules ...Rule) (*Set, error) {
	s := &Set{}
	for _, ru := range rules {
		if err := ru.Validate(r, rm); err != nil {
			return nil, err
		}
		s.rules = append(s.rules, ru)
	}
	return s, nil
}

// MustSet is NewSet but panics on error.
func MustSet(r, rm *model.Schema, rules ...Rule) *Set {
	s, err := NewSet(r, rm, rules...)
	if err != nil {
		panic(err)
	}
	return s
}

// Rules returns the rules in declaration order; callers must not mutate
// the slice.
func (s *Set) Rules() []Rule {
	if s == nil {
		return nil
	}
	return s.rules
}

// Len returns ‖Σ‖, the number of rules.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.rules)
}

// Filter returns a new Set with only the rules for which keep returns
// true; used by the "form (1) only / form (2) only" experiments.
func (s *Set) Filter(keep func(Rule) bool) *Set {
	out := &Set{}
	for _, r := range s.rules {
		if keep(r) {
			out.rules = append(out.rules, r)
		}
	}
	return out
}

// Form1Only keeps only form-(1) rules.
func (s *Set) Form1Only() *Set {
	return s.Filter(func(r Rule) bool { _, ok := r.(*Form1); return ok })
}

// Form2Only keeps only form-(2) rules.
func (s *Set) Form2Only() *Set {
	return s.Filter(func(r Rule) bool { _, ok := r.(*Form2); return ok })
}

// Truncate returns a Set holding only the first n rules (used by the
// ‖Σ‖-scaling experiments).
func (s *Set) Truncate(n int) *Set {
	if n > len(s.rules) {
		n = len(s.rules)
	}
	return &Set{rules: s.rules[:n]}
}

// Append returns a new Set with extra rules validated and added.
func (s *Set) Append(r, rm *model.Schema, rules ...Rule) (*Set, error) {
	out := &Set{rules: append([]Rule(nil), s.rules...)}
	for _, ru := range rules {
		if err := ru.Validate(r, rm); err != nil {
			return nil, err
		}
		out.rules = append(out.rules, ru)
	}
	return out, nil
}
