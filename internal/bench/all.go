package bench

// All runs every experiment in paper order and returns the reports.
// Experiments that fail abort with the error (they share generated
// datasets, so a failure usually means a configuration problem).
func (s *Suite) All() ([]*Report, error) {
	runs := []func() (*Report, error){
		s.Fig6a,
		s.Fig6e,
		s.CompleteByForm,
		s.Exp1Accuracy,
		s.Fig6b,
		s.Fig6f,
		s.Fig6c,
		s.Fig6g,
		s.Fig6d,
		s.Fig6h,
		s.Fig6i,
		s.Fig6j,
		s.Fig6k,
		s.Fig6l,
		s.Fig7a,
		s.Fig7b,
		s.IsCRTiming,
		s.Table4,
		s.Exp5CFP,
	}
	var out []*Report
	for _, run := range runs {
		rep, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}
