package bench

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chase"
	"repro/internal/gen"
	"repro/internal/stats"
	"repro/internal/topk"
)

// synPoint measures the three top-k algorithms (and IsCR) on one
// synthetic configuration. The timings cover the full candidate search
// including every chase-based check, as in Exp-4; grounding
// (Instantiation) is shared preprocessing and reported separately.
func synPoint(cfg gen.SynConfig, k int) (row []string, err error) {
	ds := gen.GenerateSyn(cfg)
	e := ds.Entities[0]

	t0 := time.Now()
	g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: ds.Master, Rules: ds.Rules}, chase.Options{})
	if err != nil {
		return nil, err
	}
	groundT := time.Since(t0)

	t0 = time.Now()
	res := g.Run(nil)
	iscrT := time.Since(t0)
	if !res.CR {
		return nil, fmt.Errorf("bench: Syn point not Church-Rosser: %s", res.Conflict)
	}
	pref := topk.Preference{K: k}

	t0 = time.Now()
	_, _, rjErr := topk.RankJoinCTOpts(g, res.Target, pref, topk.RankJoinOptions{MaxGenerated: rankJoinBudget})
	if rjErr != nil && !errors.Is(rjErr, topk.ErrBudget) {
		return nil, rjErr
	}
	rjT := time.Since(t0)

	t0 = time.Now()
	if _, _, err := topk.TopKCT(g, res.Target, pref); err != nil {
		return nil, err
	}
	ctT := time.Since(t0)

	t0 = time.Now()
	if _, _, err := topk.TopKCTh(g, res.Target, pref); err != nil {
		return nil, err
	}
	hT := time.Since(t0)

	return []string{ms(rjT), ms(ctT), ms(hT), ms(iscrT), ms(groundT)}, nil
}

var synHeaderTail = []string{"RankJoinCT", "TopKCT", "TopKCTh", "IsCR", "Instantiation"}

// rankJoinBudget bounds RankJoinCT's join-state materialisation in the
// timing experiments; overruns are recorded as (lower-bound) timings, as
// the algorithm's blow-up is itself the finding.
const rankJoinBudget = 300_000

// Fig6i sweeps ‖Ie‖ on Syn (paper: 300..1500; at 1500 TopKCTh 159ms,
// TopKCT 271ms, RankJoinCT 1983ms).
func (s *Suite) Fig6i() (*Report, error) {
	rep := &Report{
		ID:     "Fig6i",
		Title:  "Syn: elapsed time vs ‖Ie‖",
		Header: append([]string{"‖Ie‖"}, synHeaderTail...),
	}
	for _, n := range s.Cfg.SynSizes {
		cfg := gen.SynDefault()
		cfg.Tuples = n
		cfg.Im = s.Cfg.SynIm
		cfg.Rules = s.Cfg.SynSigma
		row, err := synPoint(cfg, s.Cfg.SynK)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, append([]string{fmt.Sprintf("%d", n)}, row...))
	}
	rep.Notes = append(rep.Notes, "paper shape: TopKCTh < TopKCT << RankJoinCT, all growing with ‖Ie‖")
	return rep, nil
}

// Fig6j sweeps ‖Σ‖ on Syn (paper: 20..100).
func (s *Suite) Fig6j() (*Report, error) {
	rep := &Report{
		ID:     "Fig6j",
		Title:  "Syn: elapsed time vs ‖Σ‖",
		Header: append([]string{"‖Σ‖"}, synHeaderTail...),
	}
	for _, nr := range s.Cfg.SynSigmas {
		cfg := gen.SynDefault()
		cfg.Tuples = s.Cfg.SynTuples
		cfg.Im = s.Cfg.SynIm
		cfg.Rules = nr
		row, err := synPoint(cfg, s.Cfg.SynK)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, append([]string{fmt.Sprintf("%d", nr)}, row...))
	}
	return rep, nil
}

// Fig6k sweeps ‖Im‖ on Syn (paper: 100..500).
func (s *Suite) Fig6k() (*Report, error) {
	rep := &Report{
		ID:     "Fig6k",
		Title:  "Syn: elapsed time vs ‖Im‖",
		Header: append([]string{"‖Im‖"}, synHeaderTail...),
	}
	for _, im := range s.Cfg.SynIms {
		cfg := gen.SynDefault()
		cfg.Tuples = s.Cfg.SynTuples
		cfg.Im = im
		cfg.Rules = s.Cfg.SynSigma
		row, err := synPoint(cfg, s.Cfg.SynK)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, append([]string{fmt.Sprintf("%d", im)}, row...))
	}
	return rep, nil
}

// Fig6l sweeps k on Syn (paper: 5..25).
func (s *Suite) Fig6l() (*Report, error) {
	rep := &Report{
		ID:     "Fig6l",
		Title:  "Syn: elapsed time vs k",
		Header: append([]string{"k"}, synHeaderTail...),
	}
	for _, k := range s.Cfg.SynKs {
		cfg := gen.SynDefault()
		cfg.Tuples = s.Cfg.SynTuples
		cfg.Im = s.Cfg.SynIm
		cfg.Rules = s.Cfg.SynSigma
		row, err := synPoint(cfg, k)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, append([]string{fmt.Sprintf("%d", k)}, row...))
	}
	return rep, nil
}

// Fig7a buckets Med-style entities by instance size and reports the
// mean per-entity top-k time of the three algorithms at k=15.
func (s *Suite) Fig7a() (*Report, error) {
	rep := &Report{
		ID:     "Fig7a",
		Title:  "Med: elapsed time vs instance size",
		Header: []string{"‖Ie‖ bucket", "RankJoinCT", "TopKCT", "TopKCTh"},
	}
	for _, bucket := range s.Cfg.MedBuckets {
		cfg := gen.MedConfig()
		cfg.NumEntities = 20
		cfg.FixedTuples = (bucket[0] + bucket[1]) / 2
		cfg.Seed = int64(1000 + bucket[0])
		ds := gen.Generate(cfg)
		rj, ct, h, err := s.timedTopK(ds.Entities, func(e gen.Entity) (*chase.Grounding, error) {
			return groundEntity(ds, e)
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("[%d,%d]", bucket[0], bucket[1]),
			ms(rj.Mean()), ms(ct.Mean()), ms(h.Mean()),
		})
	}
	return rep, nil
}

// timedTopK measures the three top-k algorithms per entity at k=15.
// By default the loop is sequential so the timings match the paper's
// methodology; an explicit Config.Workers fans entities out, with each
// entity's segments timed inside its own worker (contention can
// inflate the means, but the comparison between algorithms is
// unaffected since all three run in the same worker back to back).
func (s *Suite) timedTopK(entities []gen.Entity, ground func(gen.Entity) (*chase.Grounding, error)) (rj, ct, h stats.Timing, err error) {
	type sample struct {
		ok         bool
		rj, ct, th time.Duration
	}
	samples := make([]sample, len(entities))
	err = parEachN(s.timingWorkers(), len(entities), func(i int) error {
		e := entities[i]
		g, err := ground(e)
		if err != nil {
			return err
		}
		res := g.Run(nil)
		if !res.CR {
			return nil
		}
		pref := topk.Preference{K: 15}

		t0 := time.Now()
		if _, _, err := topk.RankJoinCTOpts(g, res.Target, pref, topk.RankJoinOptions{MaxGenerated: rankJoinBudget}); err != nil && !errors.Is(err, topk.ErrBudget) {
			return err
		}
		samples[i].rj = time.Since(t0)

		t0 = time.Now()
		if _, _, err := topk.TopKCT(g, res.Target, pref); err != nil {
			return err
		}
		samples[i].ct = time.Since(t0)

		t0 = time.Now()
		if _, _, err := topk.TopKCTh(g, res.Target, pref); err != nil {
			return err
		}
		samples[i].th = time.Since(t0)
		samples[i].ok = true
		return nil
	})
	if err != nil {
		return rj, ct, h, err
	}
	for _, sm := range samples {
		if !sm.ok {
			continue
		}
		rj.Add(sm.rj)
		ct.Add(sm.ct)
		h.Add(sm.th)
	}
	return rj, ct, h, nil
}

// Fig7b reports mean per-entity top-k time on Med as ‖Im‖ grows.
func (s *Suite) Fig7b() (*Report, error) {
	rep := &Report{
		ID:     "Fig7b",
		Title:  "Med: elapsed time vs ‖Im‖ (mean per entity, k=15)",
		Header: []string{"‖Im‖", "RankJoinCT", "TopKCT", "TopKCTh"},
	}
	ds := s.med()
	sample := ds.Entities
	if len(sample) > 150 {
		sample = sample[:150]
	}
	full := ds.Master.Size()
	for i := 0; i <= 4; i++ {
		n := full * i / 4
		im := ds.Master.Truncate(n)
		rj, ct, h, err := s.timedTopK(sample, func(e gen.Entity) (*chase.Grounding, error) {
			return chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: im, Rules: ds.Rules}, chase.Options{})
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n), ms(rj.Mean()), ms(ct.Mean()), ms(h.Mean()),
		})
	}
	return rep, nil
}

// IsCRTiming substantiates the §5 claim that IsCR runs in about 10ms or
// less per entity, on the Med entities.
func (s *Suite) IsCRTiming() (*Report, error) {
	rep := &Report{
		ID:     "IsCR-timing",
		Title:  "IsCR elapsed time per Med entity",
		Header: []string{"metric", "value"},
	}
	ds := s.med()
	durs := make([]time.Duration, len(ds.Entities))
	if err := parEachN(s.timingWorkers(), len(ds.Entities), func(i int) error {
		g, err := groundEntity(ds, ds.Entities[i])
		if err != nil {
			return err
		}
		t0 := time.Now()
		g.Run(nil)
		durs[i] = time.Since(t0)
		return nil
	}); err != nil {
		return nil, err
	}
	var t stats.Timing
	for _, d := range durs {
		t.Add(d)
	}
	rep.Rows = append(rep.Rows, []string{"mean", ms(t.Mean())})
	rep.Rows = append(rep.Rows, []string{"p99", ms(t.Percentile(99))})
	rep.Notes = append(rep.Notes, "paper: IsCR takes at most 10ms")
	return rep, nil
}
