package bench

import (
	"runtime"

	"repro/internal/pipeline"
)

// workers resolves the configured worker count: Config.Workers when
// positive, GOMAXPROCS otherwise. The experiment sweeps evaluate
// thousands of independent entities per configuration; fanning them out
// is what makes the full-scale suite tractable.
func (s *Suite) workers() int {
	if s.Cfg.Workers > 0 {
		return s.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// timingWorkers resolves the worker count for the timing experiments:
// they stay sequential unless Workers is set explicitly, so per-entity
// wall-clock means and percentiles reproduce the paper's sequential
// methodology by default (concurrent siblings would inflate them).
func (s *Suite) timingWorkers() int {
	if s.Cfg.Workers > 0 {
		return s.Cfg.Workers
	}
	return 1
}

// parEach runs f(i) for every i in [0, n) across the suite's worker
// count; it delegates to pipeline.Each, the sharded loop underneath the
// batch pipeline, so the experiment drivers and production batches
// exercise the same scheduler. Iterations must be independent; results
// are communicated through index-addressed slices captured by f, which
// keeps report rows deterministic regardless of scheduling. The
// lowest-index error is returned, matching what a sequential loop would
// have reported.
func (s *Suite) parEach(n int, f func(i int) error) error {
	return pipeline.Each(s.workers(), n, f)
}

// parEachN is parEach with an explicit worker count.
func parEachN(w, n int, f func(i int) error) error {
	return pipeline.Each(w, n, f)
}
