package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves the configured worker count: Config.Workers when
// positive, GOMAXPROCS otherwise. The experiment sweeps evaluate
// thousands of independent entities per configuration; fanning them out
// is what makes the full-scale suite tractable.
func (s *Suite) workers() int {
	if s.Cfg.Workers > 0 {
		return s.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// timingWorkers resolves the worker count for the timing experiments:
// they stay sequential unless Workers is set explicitly, so per-entity
// wall-clock means and percentiles reproduce the paper's sequential
// methodology by default (concurrent siblings would inflate them).
func (s *Suite) timingWorkers() int {
	if s.Cfg.Workers > 0 {
		return s.Cfg.Workers
	}
	return 1
}

// parEach runs f(i) for every i in [0, n) across the suite's worker
// count. Iterations must be independent; results are communicated
// through index-addressed slices captured by f, which keeps report rows
// deterministic regardless of scheduling. The lowest-index error is
// returned, matching what a sequential loop would have reported.
func (s *Suite) parEach(n int, f func(i int) error) error {
	return parEachN(s.workers(), n, f)
}

// parEachN is parEach with an explicit worker count.
func parEachN(w, n int, f func(i int) error) error {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
