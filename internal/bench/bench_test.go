package bench_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestAllExperimentsQuick runs the entire suite at reduced scale and
// sanity-checks the headline shapes the paper reports.
func TestAllExperimentsQuick(t *testing.T) {
	s := bench.NewSuite(bench.Quick())
	reps, err := s.All()
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	byID := map[string]*bench.Report{}
	for _, r := range reps {
		byID[r.ID] = r
		t.Logf("\n%s", r)
	}
	want := []string{"Fig6a", "Fig6e", "Fig6b", "Fig6f", "Fig6c", "Fig6g",
		"Fig6d", "Fig6h", "Fig6i", "Fig6j", "Fig6k", "Fig6l",
		"Fig7a", "Fig7b", "Table4", "Exp5-CFP"}
	for _, id := range want {
		if byID[id] == nil {
			t.Errorf("missing report %s", id)
		}
	}

	// Fig6a: a solid majority of entities complete.
	for _, row := range byID["Fig6a"].Rows {
		if p := parsePct(t, row[1]); p < 40 || p > 95 {
			t.Errorf("Fig6a %s: complete = %v%%", row[0], p)
		}
	}

	// Fig6e: both > form1 > form2 on each dataset.
	for _, row := range byID["Fig6e"].Rows {
		f1, f2, both := parsePct(t, row[1]), parsePct(t, row[2]), parsePct(t, row[3])
		if !(both > f1 && f1 > f2) {
			t.Errorf("Fig6e %s: want both>f1>f2, got %v %v %v", row[0], f1, f2, both)
		}
	}

	// Fig6b: found rate non-decreasing in k for the "both" column.
	last := -1.0
	for _, row := range byID["Fig6b"].Rows {
		v := parsePct(t, row[3])
		if v < last-2 { // small sampling noise tolerated
			t.Errorf("Fig6b: found@k not rising: %v after %v", v, last)
		}
		last = v
	}

	// Fig6c: more master data never hurts much.
	first := parsePct(t, byID["Fig6c"].Rows[0][1])
	lastIm := parsePct(t, byID["Fig6c"].Rows[len(byID["Fig6c"].Rows)-1][1])
	if lastIm+2 < first {
		t.Errorf("Fig6c: quality dropped with more master data: %v -> %v", first, lastIm)
	}

	// Fig6d/h: cumulative interaction curve is non-decreasing and ends high.
	for _, id := range []string{"Fig6d", "Fig6h"} {
		rows := byID[id].Rows
		prev := -1.0
		for _, row := range rows {
			v := parsePct(t, row[1])
			if v < prev {
				t.Errorf("%s: cumulative curve decreased", id)
			}
			prev = v
		}
		if prev < 70 {
			t.Errorf("%s: final found rate %v%% too low", id, prev)
		}
	}

	// Table4: DeduceOrder precision 1.0; TopKCT(copyCEF) has the best F1;
	// every F1 beats DeduceOrder's.
	tbl := byID["Table4"]
	f1 := map[string]float64{}
	prec := map[string]float64{}
	for _, row := range tbl.Rows {
		p, _ := strconv.ParseFloat(row[1], 64)
		f, _ := strconv.ParseFloat(row[3], 64)
		prec[row[0]] = p
		f1[row[0]] = f
	}
	if prec["DeduceOrder"] < 0.99 {
		t.Errorf("Table4: DeduceOrder precision = %v, want 1.0", prec["DeduceOrder"])
	}
	if !(f1["TopKCT (copyCEF pref)"] >= f1["copyCEF"]) {
		t.Errorf("Table4: TopKCT(copyCEF) F1 %v < copyCEF %v", f1["TopKCT (copyCEF pref)"], f1["copyCEF"])
	}
	if !(f1["TopKCT (voting pref)"] >= f1["voting"]) {
		t.Errorf("Table4: TopKCT(voting) F1 %v < voting %v", f1["TopKCT (voting pref)"], f1["voting"])
	}
	if !(f1["voting"] > f1["DeduceOrder"]) {
		t.Errorf("Table4: voting F1 %v <= DeduceOrder %v", f1["voting"], f1["DeduceOrder"])
	}

	// Exp5-CFP: TopKCT > voting > DeduceOrder (≈0).
	cfp := map[string]float64{}
	for _, row := range byID["Exp5-CFP"].Rows {
		cfp[row[0]] = parsePct(t, row[1])
	}
	if !(cfp["TopKCT (k=1)"] > cfp["voting"]+20 && cfp["voting"] >= cfp["DeduceOrder"]) {
		t.Errorf("Exp5-CFP ordering wrong: %v", cfp)
	}
	if cfp["DeduceOrder"] > 10 {
		t.Errorf("Exp5-CFP: DeduceOrder should derive ~0%% complete targets, got %v%%", cfp["DeduceOrder"])
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

// TestReportRendering checks the table formatter.
func TestReportRendering(t *testing.T) {
	r := &bench.Report{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := r.String()
	if !strings.Contains(out, "== X: demo ==") || !strings.Contains(out, "note: hello") {
		t.Errorf("rendering wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}
