package bench

import (
	"fmt"
	"strings"

	"repro/internal/chase"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/rule"
	"repro/internal/stats"
	"repro/internal/topk"
	"repro/internal/truth"
)

// truthCurrencyRules is the rule subset available to DeduceOrder on
// Rest: genuine currency constraints only.
func truthCurrencyRules(ds *gen.RestDataset) *rule.Set {
	return gen.RestCurrencyRules(ds)
}

// cfpCurrencyRules extracts the currency constraints from a generated
// entity dataset (the "cur-" rules), which is what [14] can express.
func cfpCurrencyRules(ds *gen.Dataset) *rule.Set {
	return ds.Rules.Filter(func(r rule.Rule) bool {
		return strings.HasPrefix(r.Name(), "cur-")
	})
}

// Table4 reproduces the truth-discovery comparison on Rest (Exp-5):
// precision/recall/F-measure of concluding which restaurants are
// closed, for DeduceOrder, voting, copyCEF, and TopKCT with the
// preference derived from voting and from copyCEF probabilities (k=1).
func (s *Suite) Table4() (*Report, error) {
	ds := s.rest()
	rep := &Report{
		ID:     "Table4",
		Title:  "truth discovery on Rest (closed?)",
		Header: []string{"method", "precision", "recall", "F-measure"},
	}

	evaluate := func(name string, concludedClosed map[string]bool) {
		tp, fp, fn := 0, 0, 0
		for id, g := range ds.Closed {
			r := concludedClosed[id]
			switch {
			case g && r:
				tp++
			case !g && r:
				fp++
			case g && !r:
				fn++
			}
		}
		m := stats.PRFOf(tp, fp, fn)
		rep.Rows = append(rep.Rows, []string{name,
			fmt.Sprintf("%.2f", m.Precision),
			fmt.Sprintf("%.2f", m.Recall),
			fmt.Sprintf("%.2f", m.F1)})
	}

	boolOf := func(v model.Value) (bool, bool) {
		if v.Kind() == model.Bool {
			return v.Bool(), true
		}
		return false, false
	}

	// DeduceOrder: currency constraints only.
	curRules := truthCurrencyRules(ds)
	deduceClosed := make([]bool, len(ds.Entities))
	if err := s.parEach(len(ds.Entities), func(i int) error {
		te, err := truth.DeduceOrder(ds.Entities[i].Instance, nil, curRules)
		if err != nil {
			return err
		}
		if v, _ := te.Get("closed"); !v.IsNull() {
			if b, ok := boolOf(v); ok && b {
				deduceClosed[i] = true
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	deduceOrder := map[string]bool{}
	for i, e := range ds.Entities {
		if deduceClosed[i] {
			deduceOrder[e.ID] = true
		}
	}
	evaluate("DeduceOrder", deduceOrder)

	// Voting over the per-source claims.
	voting := map[string]bool{}
	votesFor := map[string][2]int{} // closed, open
	for _, c := range ds.Claims {
		b, ok := boolOf(c.Val)
		if !ok {
			continue
		}
		v := votesFor[c.Entity]
		if b {
			v[0]++
		} else {
			v[1]++
		}
		votesFor[c.Entity] = v
	}
	for id, v := range votesFor {
		if v[0] > v[1] {
			voting[id] = true
		}
	}
	evaluate("voting", voting)

	// copyCEF over the same claims.
	cef := truth.CopyCEF(ds.Claims, truth.CopyCEFOptions{})
	cefClosed := map[string]bool{}
	for _, e := range ds.Entities {
		if v, ok := cef.Truth[e.ID]["closed"]; ok {
			if b, ok2 := boolOf(v); ok2 && b {
				cefClosed[e.ID] = true
			}
		}
	}
	evaluate("copyCEF", cefClosed)

	// TopKCT (k=1) with the accuracy rules, preference from voting
	// (value occurrences) or from copyCEF probabilities.
	domains := map[string][]model.Value{"closed": {model.B(true), model.B(false)}}
	run := func(weight func(e string) func(string, model.Value) float64) (map[string]bool, error) {
		closed := make([]bool, len(ds.Entities))
		if err := s.parEach(len(ds.Entities), func(i int) error {
			e := ds.Entities[i]
			g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Rules: ds.Rules}, chase.Options{})
			if err != nil {
				return err
			}
			res := g.Run(nil)
			if !res.CR {
				return nil
			}
			v, _ := res.Target.Get("closed")
			if v.IsNull() {
				pref := topk.Preference{K: 1, Domains: domains}
				if weight != nil {
					pref.Weight = weight(e.ID)
				}
				cands, _, err := topk.TopKCT(g, res.Target, pref)
				if err != nil {
					return err
				}
				if len(cands) > 0 {
					v, _ = cands[0].Tuple.Get("closed")
				}
			}
			if b, ok := boolOf(v); ok && b {
				closed[i] = true
			}
			return nil
		}); err != nil {
			return nil, err
		}
		out := map[string]bool{}
		for i, e := range ds.Entities {
			if closed[i] {
				out[e.ID] = true
			}
		}
		return out, nil
	}
	tkVote, err := run(nil) // occurrence counting == voting preference
	if err != nil {
		return nil, err
	}
	evaluate("TopKCT (voting pref)", tkVote)

	tkCEF, err := run(func(entity string) func(string, model.Value) float64 {
		return func(attr string, v model.Value) float64 {
			if attr == "closed" {
				return cef.Prob(entity, "closed", v)
			}
			return 0
		}
	})
	if err != nil {
		return nil, err
	}
	evaluate("TopKCT (copyCEF pref)", tkCEF)

	rep.Notes = append(rep.Notes,
		"paper: DeduceOrder 1.0/0.15/0.26, voting 0.62/0.92/0.74, copyCEF 0.76/0.85/0.80,",
		"       TopKCT(voting) 0.73/0.95/0.82, TopKCT(copyCEF) 0.81/0.88/0.85")
	return rep, nil
}

// Exp5CFP reproduces the CFP side of Exp-5: the fraction of entities
// whose complete true target is derived by voting, DeduceOrder and
// TopKCT at k=1 (paper: 37%, 0%, 70%).
func (s *Suite) Exp5CFP() (*Report, error) {
	ds := s.cfp()
	rep := &Report{
		ID:     "Exp5-CFP",
		Title:  "CFP: complete true targets derived (k=1)",
		Header: []string{"method", "targets correct"},
	}

	curRules := cfpCurrencyRules(ds)
	type verdicts struct{ vote, dord, tk bool }
	per := make([]verdicts, len(ds.Entities))
	if err := s.parEach(len(ds.Entities), func(i int) error {
		e := ds.Entities[i]
		// Voting.
		per[i].vote = truth.Voting(e.Instance).EqualTo(e.Truth)

		// DeduceOrder with currency rules only.
		te, err := truth.DeduceOrder(e.Instance, nil, curRules)
		if err != nil {
			return err
		}
		per[i].dord = te.EqualTo(e.Truth)

		// TopKCT k=1 with the full rule set.
		g, err := groundEntity(ds, e)
		if err != nil {
			return err
		}
		found, err := foundInTopK(g, e, 1, topkct)
		if err != nil {
			return err
		}
		per[i].tk = found
		return nil
	}); err != nil {
		return nil, err
	}
	var vote, dord, tk stats.Counter
	for _, v := range per {
		vote.Add(v.vote)
		dord.Add(v.dord)
		tk.Add(v.tk)
	}
	rep.Rows = append(rep.Rows, []string{"voting", vote.Percent()})
	rep.Rows = append(rep.Rows, []string{"DeduceOrder", dord.Percent()})
	rep.Rows = append(rep.Rows, []string{"TopKCT (k=1)", tk.Percent()})
	rep.Notes = append(rep.Notes, "paper: voting 37%, DeduceOrder 0%, TopKCT 70%")
	return rep, nil
}
