package bench

import (
	"fmt"

	"repro/internal/framework"
	"repro/internal/gen"
	"repro/internal/topk"
)

// interaction is the body of Fig 6(d)/(h): per entity, simulate the
// user study of Exp-3 — when the deduced target is incomplete and the
// truth is not in the top-k, reveal the accurate value of one open
// attribute and re-run — and report the cumulative fraction of targets
// settled within h rounds.
func (s *Suite) interaction(id string, ds *gen.Dataset, maxRounds int) (*Report, error) {
	rep := &Report{
		ID:     id,
		Title:  fmt.Sprintf("%s: targets found vs interaction rounds (k=15)", ds.Name),
		Header: []string{"rounds h", "targets found"},
	}
	sample := s.sample(ds)
	// rounds[i] holds the rounds entity i needed, or -1 when unresolved.
	rounds := make([]int, len(sample))
	if err := s.parEach(len(sample), func(i int) error {
		e := sample[i]
		rounds[i] = -1
		g, err := groundEntity(ds, e)
		if err != nil {
			return err
		}
		oracle := &framework.GroundTruthOracle{Truth: e.Truth}
		out, err := framework.Run(g, framework.Config{
			Pref:      topk.Preference{K: 15, MaxChecks: 4000},
			MaxRounds: maxRounds,
		}, oracle)
		if err != nil {
			// Not Church-Rosser: counts as never found.
			return nil
		}
		if out.Found && out.Target.EqualTo(e.Truth) {
			rounds[i] = out.Rounds
		}
		return nil
	}); err != nil {
		return nil, err
	}
	roundsNeeded := make([]int, 0, len(sample))
	unresolved := 0
	for _, r := range rounds {
		if r < 0 {
			unresolved++
		} else {
			roundsNeeded = append(roundsNeeded, r)
		}
	}
	total := len(sample)
	for h := 0; h <= maxRounds; h++ {
		found := 0
		for _, r := range roundsNeeded {
			if r <= h {
				found++
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.0f%%", 100*float64(found)/float64(total)),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d of %d entities not settled within %d rounds", unresolved, total, maxRounds),
		"paper: all targets found within 3 rounds (Med) / 4 rounds (CFP)")
	return rep, nil
}

// Fig6d is the Med interaction experiment (paper: ≤3 rounds).
func (s *Suite) Fig6d() (*Report, error) { return s.interaction("Fig6d", s.med(), 3) }

// Fig6h is the CFP interaction experiment (paper: ≤4 rounds).
func (s *Suite) Fig6h() (*Report, error) { return s.interaction("Fig6h", s.cfp(), 4) }
