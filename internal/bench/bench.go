// Package bench regenerates every table and figure of the paper's
// evaluation (Section 7). Each Fig*/Table* function runs the workload
// and returns a Report whose rows mirror the series the paper plots;
// cmd/experiments prints them all and EXPERIMENTS.md records the
// measured values next to the paper's.
//
// Scale is configurable so the full suite can run as unit tests at
// reduced size; Default() matches the paper's dataset sizes. The
// per-entity loops run through package pipeline — the same sharded
// scheduler the production batch path uses — either as full
// deduce → top-k batches (runPipeline) or as raw index loops
// (parEach over pipeline.Each).
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chase"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/topk"
)

// Config scales the experiments.
type Config struct {
	// MedEntities / CFPEntities bound how many entities of each dataset
	// are evaluated (0 = all generated).
	MedEntities int
	CFPEntities int
	// Restaurants for the Rest dataset.
	Restaurants int
	// SynSizes are the ‖Ie‖ points of Fig 6(i); SynDefault* the fixed
	// parameters of the other sweeps.
	SynSizes   []int
	SynSigmas  []int
	SynIms     []int
	SynKs      []int
	SynTuples  int // fixed ‖Ie‖ for 6(j), 6(k), 6(l)
	SynIm      int
	SynSigma   int
	SynK       int
	MedBuckets [][2]int // instance-size buckets of Fig 7(a)
	KValues    []int    // k sweep of Fig 6(b)/(f)
	// QualitySample bounds the number of entities evaluated per
	// configuration in the k/‖Im‖/interaction sweeps (0 = all). The
	// percentages are stable well below the full 2.7K entities, and the
	// sweeps multiply every entity by ~20 configurations.
	QualitySample int
	// Workers bounds how many entities are evaluated concurrently in
	// the per-entity loops. Entities are independent — each gets its
	// own grounding — so the sweeps scale with cores. 0 means
	// GOMAXPROCS for the quality/accuracy sweeps but sequential for the
	// timing experiments (Fig 7a/7b, IsCR timing), whose per-entity
	// wall-clock figures would otherwise be inflated by contention; set
	// Workers explicitly to fan those out too.
	Workers int
}

// Default matches the paper's experimental setting.
func Default() Config {
	return Config{
		MedEntities:   0,
		CFPEntities:   0,
		Restaurants:   1000,
		SynSizes:      []int{300, 600, 900, 1200, 1500},
		SynSigmas:     []int{20, 40, 60, 80, 100},
		SynIms:        []int{100, 200, 300, 400, 500},
		SynKs:         []int{5, 10, 15, 20, 25},
		SynTuples:     900,
		SynIm:         300,
		SynSigma:      60,
		SynK:          15,
		MedBuckets:    [][2]int{{1, 18}, {19, 36}, {37, 54}, {55, 72}, {73, 90}},
		KValues:       []int{5, 10, 15, 20, 25},
		QualitySample: 600,
	}
}

// Quick is a fast configuration for tests.
func Quick() Config {
	return Config{
		MedEntities: 120,
		CFPEntities: 60,
		Restaurants: 200,
		SynSizes:    []int{100, 200},
		SynSigmas:   []int{20, 60},
		SynIms:      []int{50, 100},
		SynKs:       []int{5, 15},
		SynTuples:   150,
		SynIm:       50,
		SynSigma:    40,
		SynK:        5,
		MedBuckets:  [][2]int{{1, 8}, {9, 16}},
		KValues:     []int{5, 15},
		// Force real concurrency in the per-entity loops even on
		// single-core CI machines, so the -race tests exercise it.
		Workers: 4,
	}
}

// Report is one table/figure worth of results.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// dataset caches generated datasets across experiments.
type datasets struct {
	med  *gen.Dataset
	cfp  *gen.Dataset
	rest *gen.RestDataset
}

// Suite runs experiments sharing generated datasets.
type Suite struct {
	Cfg Config
	ds  datasets
}

// NewSuite creates a suite with the given scale.
func NewSuite(cfg Config) *Suite { return &Suite{Cfg: cfg} }

func (s *Suite) med() *gen.Dataset {
	if s.ds.med == nil {
		cfg := gen.MedConfig()
		if s.Cfg.MedEntities > 0 {
			cfg.NumEntities = s.Cfg.MedEntities
		}
		s.ds.med = gen.Generate(cfg)
	}
	return s.ds.med
}

func (s *Suite) cfp() *gen.Dataset {
	if s.ds.cfp == nil {
		cfg := gen.CFPConfig()
		if s.Cfg.CFPEntities > 0 {
			cfg.NumEntities = s.Cfg.CFPEntities
		}
		s.ds.cfp = gen.Generate(cfg)
	}
	return s.ds.cfp
}

// sample returns the entity subset used by the quality sweeps.
func (s *Suite) sample(ds *gen.Dataset) []gen.Entity {
	if s.Cfg.QualitySample > 0 && len(ds.Entities) > s.Cfg.QualitySample {
		return ds.Entities[:s.Cfg.QualitySample]
	}
	return ds.Entities
}

func (s *Suite) rest() *gen.RestDataset {
	if s.ds.rest == nil {
		cfg := gen.RestDefault()
		if s.Cfg.Restaurants > 0 {
			cfg.Restaurants = s.Cfg.Restaurants
		}
		s.ds.rest = gen.GenerateRest(cfg)
	}
	return s.ds.rest
}

// groundEntity is the common per-entity grounding helper.
func groundEntity(ds *gen.Dataset, e gen.Entity) (*chase.Grounding, error) {
	return chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: ds.Master, Rules: ds.Rules}, chase.Options{})
}

// instances extracts the entity instances of a slice of generated
// entities, aligned by index, for the batch pipeline.
func instances(entities []gen.Entity) []*model.EntityInstance {
	out := make([]*model.EntityInstance, len(entities))
	for i, e := range entities {
		out[i] = e.Instance
	}
	return out
}

// runPipeline fans a dataset's entities through the batch pipeline on
// the suite's worker count and surfaces the first per-entity error (the
// experiments generate clean specifications, so any error is a bug).
func runPipeline(s *Suite, ds *gen.Dataset, entities []gen.Entity, cfg pipeline.Config) ([]pipeline.Result, pipeline.Summary, error) {
	cfg.Master = ds.Master
	cfg.Rules = ds.Rules
	if cfg.Workers == 0 {
		cfg.Workers = s.workers()
	}
	results, sum, err := pipeline.Run(instances(entities), cfg)
	if err != nil {
		return nil, sum, err
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, sum, r.Err
		}
	}
	return results, sum, nil
}

// foundInTopK reports whether the entity's truth is recoverable at k:
// a complete deduced target counts when it equals the truth; an
// incomplete one when the truth appears among the top-k candidates.
func foundInTopK(g *chase.Grounding, e gen.Entity, k int, algo func(*chase.Grounding, *topk.Preference) ([]topk.Candidate, error)) (bool, error) {
	res := g.Run(nil)
	if !res.CR {
		return false, nil
	}
	if res.Complete() {
		return res.Target.EqualTo(e.Truth), nil
	}
	pref := topk.Preference{K: k, MaxChecks: 4000}
	cands, err := algo(g, &pref)
	if err != nil {
		return false, err
	}
	for _, c := range cands {
		if c.Tuple.EqualTo(e.Truth) {
			return true, nil
		}
	}
	return false, nil
}

func topkct(g *chase.Grounding, pref *topk.Preference) ([]topk.Candidate, error) {
	res := g.Run(nil)
	cands, _, err := topk.TopKCT(g, res.Target, *pref)
	return cands, err
}

func topkcth(g *chase.Grounding, pref *topk.Preference) ([]topk.Candidate, error) {
	res := g.Run(nil)
	cands, _, err := topk.TopKCTh(g, res.Target, *pref)
	return cands, err
}
