package bench

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/pipeline"
	"repro/internal/rule"
	"repro/internal/stats"
)

// Fig6a measures the percentage of entities for which IsCR deduces a
// complete target tuple automatically (Exp-1; paper: Med 66%, CFP 72%).
// It runs each dataset through the batch pipeline — deduction only —
// and reads the answer off the summary.
func (s *Suite) Fig6a() (*Report, error) {
	rep := &Report{
		ID:     "Fig6a",
		Title:  "IsCR: entities with complete deduced targets",
		Header: []string{"dataset", "complete targets"},
	}
	for _, ds := range []*gen.Dataset{s.med(), s.cfp()} {
		_, sum, err := runPipeline(s, ds, ds.Entities, pipeline.Config{})
		if err != nil {
			return nil, err
		}
		c := stats.Counter{Hits: sum.Complete, Trials: sum.Entities}
		rep.Rows = append(rep.Rows, []string{ds.Name, c.Percent()})
	}
	rep.Notes = append(rep.Notes, "paper: Med 66%, CFP 72%")
	return rep, nil
}

// Fig6e measures the percentage of attributes whose most accurate value
// is deduced, with form-(1) rules only, form-(2) rules only, and both
// (Exp-1; paper Med: 42/20/73, CFP: 55/27/83). The superadditive
// interaction of the two forms is the headline observation.
func (s *Suite) Fig6e() (*Report, error) {
	rep := &Report{
		ID:     "Fig6e",
		Title:  "IsCR: attributes deduced by rule form",
		Header: []string{"dataset", "form (1) only", "form (2) only", "both"},
	}
	for _, ds := range []*gen.Dataset{s.med(), s.cfp()} {
		row := []string{ds.Name}
		for _, rules := range []*rule.Set{ds.Rules.Form1Only(), ds.Rules.Form2Only(), ds.Rules} {
			hits := make([]int, len(ds.Entities))
			if err := s.parEach(len(ds.Entities), func(i int) error {
				g, err := groundEntityRules(ds, ds.Entities[i], rules)
				if err != nil {
					return err
				}
				res := g.Run(nil)
				for a := 0; a < ds.Schema.Arity(); a++ {
					if res.CR && !res.Target.At(a).IsNull() {
						hits[i]++
					}
				}
				return nil
			}); err != nil {
				return nil, err
			}
			c := stats.Counter{Trials: len(ds.Entities) * ds.Schema.Arity()}
			for _, h := range hits {
				c.Hits += h
			}
			row = append(row, c.Percent())
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper: Med 42%/20%/73%, CFP 55%/27%/83%; both forms exceed the sum of the parts",
		"no complete targets are deduced under either single form (see Fig6a code path)")
	return rep, nil
}

// CompleteByForm is the companion check of Fig 6(e)'s remark: with a
// single rule form, (almost) no complete targets are deduced.
func (s *Suite) CompleteByForm() (*Report, error) {
	rep := &Report{
		ID:     "Exp1-complete-by-form",
		Title:  "complete targets by rule form",
		Header: []string{"dataset", "form (1) only", "form (2) only", "both"},
	}
	for _, ds := range []*gen.Dataset{s.med(), s.cfp()} {
		row := []string{ds.Name}
		for _, rules := range []*rule.Set{ds.Rules.Form1Only(), ds.Rules.Form2Only(), ds.Rules} {
			found := make([]bool, len(ds.Entities))
			if err := s.parEach(len(ds.Entities), func(i int) error {
				g, err := groundEntityRules(ds, ds.Entities[i], rules)
				if err != nil {
					return err
				}
				res := g.Run(nil)
				found[i] = res.CR && res.Target.Complete()
				return nil
			}); err != nil {
				return nil, err
			}
			var c stats.Counter
			for _, f := range found {
				c.Add(f)
			}
			row = append(row, c.Percent())
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Exp1Accuracy complements Exp-1 with value correctness against ground
// truth (implicit in the paper's "correctly ... deduce" claims).
func (s *Suite) Exp1Accuracy() (*Report, error) {
	rep := &Report{
		ID:     "Exp1-accuracy",
		Title:  "correctness of deduced attribute values",
		Header: []string{"dataset", "deduced attrs correct"},
	}
	for _, ds := range []*gen.Dataset{s.med(), s.cfp()} {
		results, _, err := runPipeline(s, ds, ds.Entities, pipeline.Config{})
		if err != nil {
			return nil, err
		}
		var c stats.Counter
		for i, r := range results {
			if !r.Deduction.CR {
				continue
			}
			truth := ds.Entities[i].Truth
			for a := 0; a < ds.Schema.Arity(); a++ {
				if v := r.Deduction.Target.At(a); !v.IsNull() {
					c.Trials++
					if v.Equal(truth.At(a)) {
						c.Hits++
					}
				}
			}
		}
		rep.Rows = append(rep.Rows, []string{ds.Name, fmt.Sprintf("%.1f%%", 100*c.Rate())})
	}
	return rep, nil
}
