package bench

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/gen"
	"repro/internal/rule"
	"repro/internal/stats"
	"repro/internal/topk"
)

// topkAlgo runs a top-k search given a grounding and preference.
type topkAlgo = func(*chase.Grounding, *topk.Preference) ([]topk.Candidate, error)

// groundEntityRules grounds one entity under a restricted rule set.
func groundEntityRules(ds *gen.Dataset, e gen.Entity, rules *rule.Set) (*chase.Grounding, error) {
	return chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: ds.Master, Rules: rules}, chase.Options{})
}

// varyK is the body of Fig 6(b)/(f): the fraction of entities whose
// manually-identified (here: generated) target tuple is recovered at
// top-k, for TopKCT under each rule-form restriction and for TopKCTh.
func (s *Suite) varyK(id string, ds *gen.Dataset) (*Report, error) {
	rep := &Report{
		ID:    id,
		Title: fmt.Sprintf("%s: targets found in top-k vs k", ds.Name),
		Header: []string{"k", "TopKCT form(1)", "TopKCT form(2)", "TopKCT both",
			"TopKCTh both"},
	}
	ruleSets := []*rule.Set{ds.Rules.Form1Only(), ds.Rules.Form2Only(), ds.Rules, ds.Rules}
	sample := s.sample(ds)
	for _, k := range s.Cfg.KValues {
		row := []string{fmt.Sprintf("%d", k)}
		for vi, rules := range ruleSets {
			found := make([]bool, len(sample))
			if err := s.parEach(len(sample), func(i int) error {
				e := sample[i]
				g, err := groundEntityRules(ds, e, rules)
				if err != nil {
					return err
				}
				algo := topkct
				if vi == 3 {
					algo = topkcth
				}
				ok, err := foundInTopK(g, e, k, algo)
				if err != nil {
					return err
				}
				found[i] = ok
				return nil
			}); err != nil {
				return nil, err
			}
			var c stats.Counter
			for _, f := range found {
				c.Add(f)
			}
			row = append(row, c.Percent())
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper shape: rising with k; both forms beat single forms; TopKCT slightly above TopKCTh",
		"paper values at k=25: Med 92% (TopKCT) / 91% (TopKCTh); CFP 94% / 87%")
	return rep, nil
}

// Fig6b is the Med k-sweep of Exp-2.
func (s *Suite) Fig6b() (*Report, error) { return s.varyK("Fig6b", s.med()) }

// Fig6f is the CFP k-sweep of Exp-2.
func (s *Suite) Fig6f() (*Report, error) { return s.varyK("Fig6f", s.cfp()) }

// varyIm is the body of Fig 6(c)/(g): quality at k=15 as the master
// relation grows from empty to full.
func (s *Suite) varyIm(id string, ds *gen.Dataset, steps int) (*Report, error) {
	rep := &Report{
		ID:     id,
		Title:  fmt.Sprintf("%s: targets found in top-15 vs ‖Im‖", ds.Name),
		Header: []string{"‖Im‖", "TopKCT", "TopKCTh"},
	}
	sample := s.sample(ds)
	full := ds.Master.Size()
	for i := 0; i <= steps; i++ {
		n := full * i / steps
		im := ds.Master.Truncate(n)
		row := []string{fmt.Sprintf("%d", n)}
		for _, algo := range []topkAlgo{topkct, topkcth} {
			found := make([]bool, len(sample))
			if err := s.parEach(len(sample), func(j int) error {
				e := sample[j]
				g, err := chase.NewGrounding(chase.Spec{Ie: e.Instance, Im: im, Rules: ds.Rules}, chase.Options{})
				if err != nil {
					return err
				}
				ok, err := foundInTopK(g, e, 15, algo)
				if err != nil {
					return err
				}
				found[j] = ok
				return nil
			}); err != nil {
				return nil, err
			}
			var c stats.Counter
			for _, f := range found {
				c.Add(f)
			}
			row = append(row, c.Percent())
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper shape: quality grows with ‖Im‖; still useful at ‖Im‖=0 (Med 63%, CFP 64% at k=15)")
	return rep, nil
}

// Fig6c is the Med master-size sweep.
func (s *Suite) Fig6c() (*Report, error) { return s.varyIm("Fig6c", s.med(), 4) }

// Fig6g is the CFP master-size sweep.
func (s *Suite) Fig6g() (*Report, error) { return s.varyIm("Fig6g", s.cfp(), 4) }
